module pathfinder

go 1.22

// Package tma implements the Top-Down Microarchitecture Analysis method
// (Yasin, ISPASS 2014) — the technique behind Intel VTune that the paper
// positions as the prior solution for pipeline diagnosis (§2.3).  It
// hierarchically attributes pipeline slots to Frontend Bound, Bad
// Speculation, Retiring, and Backend Bound, and drills Backend Bound into
// Core Bound versus Memory Bound with the per-level stall counters.
//
// The package exists as the baseline PathFinder is compared against: TMA
// localizes the bottleneck *level* (e.g. "DRAM bound") but, as the paper
// argues, "cannot associate core-level inefficiencies with off-chip CXL
// memory access" — it has no notion of which memory device, path, or
// FlexBus stage is responsible.  The comparison experiment
// (experiments.RunTMABaseline) demonstrates exactly that blind spot.
package tma

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/pmu"
)

// Level1 is the top split of the pipeline-slot budget.
type Level1 struct {
	Retiring       float64
	FrontendBound  float64
	BadSpeculation float64
	BackendBound   float64
}

// Level2 drills Backend Bound down.
type Level2 struct {
	CoreBound   float64
	MemoryBound float64
}

// Level3 drills Memory Bound down by cache level — the deepest TMA goes;
// note the absence of any per-device or per-path attribution.
type Level3 struct {
	L1Bound    float64 // stalled with L1D misses outstanding, served by L2
	L2Bound    float64
	L3Bound    float64
	DRAMBound  float64 // beyond-LLC stalls: TMA cannot split local vs CXL
	StoreBound float64
}

// Breakdown is a full top-down report for one core set.
type Breakdown struct {
	L1 Level1
	L2 Level2
	L3 Level3
}

// Analyze computes the top-down breakdown from a snapshot.  The simulated
// core is a simplified in-order-issue engine, so Bad Speculation and
// Frontend Bound are structurally zero; the interesting arms — Retiring vs
// Backend Bound and the memory hierarchy drill-down — carry the same
// semantics as on hardware.
func Analyze(s *core.Snapshot, cores []int) Breakdown {
	clk := s.CoreSum(cores, pmu.CPUClkUnhalted)
	var b Breakdown
	if clk == 0 {
		return b
	}

	stL1 := s.CoreSum(cores, pmu.StallsL1DMiss)
	stL2 := s.CoreSum(cores, pmu.StallsL2Miss)
	stL3 := s.CoreSum(cores, pmu.StallsL3Miss)
	fbFull := s.CoreSum(cores, pmu.L1DPendMissFBFull)
	sbStall := s.CoreSum(cores, pmu.ResourceStallsSB) + s.CoreSum(cores, pmu.ExeBoundOnStores)

	memStall := stL1 + fbFull + sbStall
	if memStall > clk {
		memStall = clk
	}
	b.L1.BackendBound = memStall / clk
	b.L1.Retiring = 1 - b.L1.BackendBound

	b.L2.MemoryBound = b.L1.BackendBound
	b.L2.CoreBound = 0

	// Own-level shares by differencing the hierarchical counters.
	own := func(a, c float64) float64 {
		if a > c {
			return (a - c) / clk
		}
		return 0
	}
	b.L3.L1Bound = fbFull / clk // waiting on fill-buffer availability
	b.L3.L2Bound = own(stL1, stL2)
	b.L3.L3Bound = own(stL2, stL3)
	b.L3.DRAMBound = stL3 / clk
	b.L3.StoreBound = sbStall / clk
	return b
}

// Bottleneck names the dominant arm the way a TMA report would — the
// deepest label the method can produce.
func (b Breakdown) Bottleneck() string {
	if b.L1.BackendBound < 0.2 {
		return "Retiring"
	}
	best, name := b.L3.DRAMBound, "Backend.Memory.DRAM_Bound"
	if b.L3.L2Bound > best {
		best, name = b.L3.L2Bound, "Backend.Memory.L2_Bound"
	}
	if b.L3.L3Bound > best {
		best, name = b.L3.L3Bound, "Backend.Memory.L3_Bound"
	}
	if b.L3.L1Bound > best {
		best, name = b.L3.L1Bound, "Backend.Memory.L1_Bound"
	}
	if b.L3.StoreBound > best {
		name = "Backend.Memory.Store_Bound"
	}
	return name
}

// String renders the hierarchy.
func (b Breakdown) String() string {
	return fmt.Sprintf(
		"Retiring %.1f%% | Backend %.1f%% -> Memory %.1f%% -> {L1 %.1f%%, L2 %.1f%%, L3 %.1f%%, DRAM %.1f%%, Store %.1f%%}",
		b.L1.Retiring*100, b.L1.BackendBound*100, b.L2.MemoryBound*100,
		b.L3.L1Bound*100, b.L3.L2Bound*100, b.L3.L3Bound*100,
		b.L3.DRAMBound*100, b.L3.StoreBound*100)
}

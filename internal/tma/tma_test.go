package tma

import (
	"strings"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

func chaseSnapshot(t *testing.T, node mem.NodeID, think uint16) *core.Snapshot {
	t.Helper()
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
	})
	r, err := as.Alloc(32<<20, mem.Fixed(node))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.SPR()
	cfg.Cores = 2
	cfg.LLCSlices = 8
	cfg.LLCSize = 4 << 20
	m := sim.New(cfg, as)
	cap := core.NewCapturer(m)
	m.Attach(0, workload.NewPointerChase(workload.Region{Base: r.Base, Size: r.Size}, think, 5))
	m.Run(3_000_000)
	return cap.Capture()
}

func TestAnalyzeMemoryBoundChase(t *testing.T) {
	b := Analyze(chaseSnapshot(t, 1, 2), []int{0})
	if b.L1.BackendBound < 0.8 {
		t.Fatalf("CXL chase backend-bound = %v, want > 0.8", b.L1.BackendBound)
	}
	if b.L2.MemoryBound != b.L1.BackendBound {
		t.Fatal("memory bound must equal backend bound in this core model")
	}
	if b.L3.DRAMBound < 0.7 {
		t.Fatalf("DRAM bound = %v", b.L3.DRAMBound)
	}
	if got := b.Bottleneck(); got != "Backend.Memory.DRAM_Bound" {
		t.Fatalf("bottleneck = %q", got)
	}
	// The structural blind spot: TMA's verdict is identical for local and
	// CXL placements of the same chase.
	bl := Analyze(chaseSnapshot(t, 0, 2), []int{0})
	if bl.Bottleneck() != b.Bottleneck() {
		t.Fatalf("TMA distinguished placements: %q vs %q — it should not be able to",
			bl.Bottleneck(), b.Bottleneck())
	}
}

func TestAnalyzeComputeBound(t *testing.T) {
	// Huge think time: the core retires, barely touching memory.
	b := Analyze(chaseSnapshot(t, 0, 400), []int{0})
	if b.L1.Retiring < 0.5 {
		t.Fatalf("compute-heavy retiring = %v", b.L1.Retiring)
	}
}

func TestAnalyzeEmptySnapshot(t *testing.T) {
	as := mem.NewAddressSpace(12, []mem.Node{{ID: 0, Kind: mem.LocalDRAM, Capacity: 1 << 30}})
	cfg := sim.SPR()
	cfg.Cores = 1
	cfg.LLCSlices = 2
	m := sim.New(cfg, as)
	cap := core.NewCapturer(m)
	m.Run(1000)
	b := Analyze(cap.Capture(), nil)
	if b.L1.BackendBound != 0 || b.L1.Retiring != 0 {
		t.Fatalf("idle breakdown: %+v", b.L1)
	}
	if b.Bottleneck() != "Retiring" {
		t.Fatalf("idle bottleneck = %q", b.Bottleneck())
	}
}

func TestBreakdownString(t *testing.T) {
	b := Analyze(chaseSnapshot(t, 1, 2), []int{0})
	s := b.String()
	if !strings.Contains(s, "DRAM") || !strings.Contains(s, "Backend") {
		t.Fatalf("String = %q", s)
	}
}

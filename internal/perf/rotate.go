package perf

import (
	"fmt"
	"sort"

	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
)

// RotatedEstimate is one event's multiplexed measurement: the scaled
// estimate, the raw count observed while its group was scheduled, and the
// fraction of time it was scheduled — perf's count/time_enabled/
// time_running triple.
type RotatedEstimate struct {
	Spec        Spec
	Estimate    float64
	Raw         uint64
	RunFraction float64
}

// RunRotated drives the machine for total cycles while time-multiplexing
// the given events across the per-unit counter slots, the way perf rotates
// event groups on a real PMU: each rotation quantum only the scheduled
// group's deltas are observed, and final counts are extrapolated by the
// inverse run fraction.  Unlike Session.Read (which reads the simulator's
// omniscient counters), the estimates carry genuine sampling error for
// bursty workloads.
func RunRotated(m *sim.Machine, total, quantum sim.Cycles, specs ...string) ([]RotatedEstimate, error) {
	if quantum == 0 || total < quantum {
		return nil, fmt.Errorf("perf: rotation needs 0 < quantum <= total")
	}
	s, err := Open(m, specs...)
	if err != nil {
		return nil, err
	}

	// Assign each (bank, event) counter to a rotation group: counters on
	// the same bank fill that unit's slots in spec order, wrapping into
	// later groups.
	type slotKey struct{ bank string }
	groupOf := make([]int, len(s.counters))
	used := map[slotKey]int{}
	nGroups := 1
	for i := range s.counters {
		c := &s.counters[i]
		k := slotKey{c.bank.Name()}
		idx := used[k]
		used[k] = idx + 1
		slots := slotLimits[unitOfBank(c.bank.Name())]
		g := 0
		if slots > 0 {
			g = idx / slots
		}
		groupOf[i] = g
		if g+1 > nGroups {
			nGroups = g + 1
		}
	}

	raw := make([]uint64, len(s.counters))
	scheduled := make([]sim.Cycles, len(s.counters))
	prev := make([]uint64, len(s.counters))
	snap := func() {
		m.Sync()
		for i := range s.counters {
			prev[i] = s.counters[i].bank.Read(s.counters[i].event)
		}
	}
	snap()

	var elapsed sim.Cycles
	for g := 0; elapsed < total; g++ {
		step := quantum
		if total-elapsed < step {
			step = total - elapsed
		}
		m.Run(step)
		m.Sync()
		active := g % nGroups
		for i := range s.counters {
			cur := s.counters[i].bank.Read(s.counters[i].event)
			if groupOf[i] == active {
				raw[i] += cur - prev[i]
				scheduled[i] += step
			}
			prev[i] = cur
		}
		elapsed += step
	}

	out := make([]RotatedEstimate, len(s.specs))
	for i := range out {
		out[i].Spec = s.specs[i]
	}
	for i := range s.counters {
		c := &s.counters[i]
		e := &out[c.spec]
		e.Raw += raw[i]
		frac := float64(scheduled[i]) / float64(total)
		if frac > e.RunFraction {
			e.RunFraction = frac
		}
		if frac > 0 {
			e.Estimate += float64(raw[i]) / frac
		}
	}
	return out, nil
}

// SortEstimates orders estimates by descending estimate (reporting helper).
func SortEstimates(es []RotatedEstimate) {
	sort.Slice(es, func(i, j int) bool { return es[i].Estimate > es[j].Estimate })
}

// groupCountFor reports how many rotation groups n events need on a unit
// (exported for tests via the session; kept here for documentation).
func groupCountFor(u pmu.Unit, n int) int {
	slots := slotLimits[u]
	if slots <= 0 || n <= slots {
		return 1
	}
	return (n + slots - 1) / slots
}

package perf

import (
	"strings"
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

type opList struct {
	ops []workload.Op
	i   int
}

func (g *opList) Next(op *workload.Op) bool {
	if g.i >= len(g.ops) {
		return false
	}
	*op = g.ops[g.i]
	g.i++
	return true
}

func testMachine(t *testing.T, node mem.NodeID) (*sim.Machine, mem.Region) {
	t.Helper()
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 4 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 4 << 30},
	})
	r, err := as.Alloc(4<<20, mem.Fixed(node))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.SPR()
	cfg.Cores = 2
	cfg.LLCSlices = 4
	cfg.LLCSize = 2 << 20
	return sim.New(cfg, as), r
}

func loads(base uint64, n int) []workload.Op {
	ops := make([]workload.Op, n)
	for i := range ops {
		ops[i] = workload.Op{Addr: base + uint64(i)*64, Kind: workload.Load, Think: 2}
	}
	return ops
}

func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		raw     string
		pattern string
		event   string
		wantErr bool
	}{
		{"core0/mem_load_retired.l1_hit/", "core0", "mem_load_retired.l1_hit", false},
		{"cha*/unc_cha_tor_inserts.ia_drd.miss_cxl", "cha*", "unc_cha_tor_inserts.ia_drd.miss_cxl", false},
		{"noslash", "", "", true},
		{"/event/", "", "", true},
		{"bank//", "", "", true},
	} {
		sp, err := ParseSpec(tc.raw)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) succeeded: %+v", tc.raw, sp)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.raw, err)
			continue
		}
		if sp.Pattern != tc.pattern || sp.Event != tc.event {
			t.Errorf("ParseSpec(%q) = %+v", tc.raw, sp)
		}
	}
}

func TestSpecString(t *testing.T) {
	sp := Spec{Pattern: "core1", Event: "inst_retired.any"}
	if got := sp.String(); got != "core1/inst_retired.any/" {
		t.Fatalf("String = %q", got)
	}
}

func TestOpenErrors(t *testing.T) {
	m, _ := testMachine(t, 0)
	if _, err := Open(m, "core0/bogus_event/"); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := Open(m, "core9/inst_retired.any/"); err == nil {
		t.Fatal("unmatched bank accepted")
	}
	if _, err := Open(m, "core0/unc_cha_tor_inserts.ia.all/"); err == nil {
		t.Fatal("CHA event opened on a core bank")
	}
	if _, err := Open(m, "garbage"); err == nil {
		t.Fatal("malformed spec accepted")
	}
}

func TestReadAndDelta(t *testing.T) {
	m, r := testMachine(t, 0)
	s, err := Open(m,
		"core0/mem_inst_retired.all_loads/",
		"core0/inst_retired.any/",
	)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(0, &opList{ops: loads(r.Base, 1000)})
	m.Run(1_000_000)

	vals := s.Read()
	if vals[0] != 1000 {
		t.Fatalf("all_loads = %d, want 1000", vals[0])
	}
	if vals[1] == 0 {
		t.Fatal("inst_retired is zero")
	}
	d1 := s.ReadDelta()
	if d1[0] != 1000 {
		t.Fatalf("first delta = %d", d1[0])
	}
	d2 := s.ReadDelta()
	if d2[0] != 0 {
		t.Fatalf("second delta = %d, want 0 (no further activity)", d2[0])
	}
}

func TestGlobAggregation(t *testing.T) {
	m, r := testMachine(t, 1) // CXL-resident working set
	s, err := Open(m,
		"cha*/unc_cha_tor_inserts.ia_drd.any/",
		"cxl0/unc_cxlcm_rxc_pack_buf_inserts.mem_req/",
	)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(0, &opList{ops: loads(r.Base, 2000)})
	m.Run(20_000_000)
	vals := s.Read()
	if vals[0] == 0 {
		t.Fatal("aggregated TOR inserts are zero")
	}
	if vals[1] == 0 {
		t.Fatal("CXL packing-buffer inserts are zero")
	}
	// The glob must cover all four CHA banks.
	found := 0
	for _, b := range s.Banks() {
		if strings.HasPrefix(b, "cha") {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("glob matched %d CHA banks, want 4", found)
	}
}

func TestMultiplexAccounting(t *testing.T) {
	m, _ := testMachine(t, 0)
	// Open 9 distinct CHA events on one bank: CHA has 4 slots -> 3 groups.
	specs := []string{
		"cha0/unc_cha_tor_inserts.ia.all/",
		"cha0/unc_cha_tor_inserts.ia.hit/",
		"cha0/unc_cha_tor_inserts.ia.miss/",
		"cha0/unc_cha_tor_inserts.ia_drd.any/",
		"cha0/unc_cha_tor_inserts.ia_drd.hit_llc/",
		"cha0/unc_cha_tor_inserts.ia_drd.miss_llc/",
		"cha0/unc_cha_tor_inserts.ia_rfo.any/",
		"cha0/unc_cha_tor_inserts.ia_rfo.hit_llc/",
		"cha0/unc_cha_tor_inserts.ia_rfo.miss_llc/",
	}
	s, err := Open(m, specs...)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxGroups(); got != 3 {
		t.Fatalf("MaxGroups = %d, want 3", got)
	}
	if f := s.RunFraction("cha0"); f < 0.3 || f > 0.34 {
		t.Fatalf("RunFraction = %v, want ~1/3", f)
	}
	// A core bank with few events multiplex-free.
	s2, err := Open(m, "core0/inst_retired.any/")
	if err != nil {
		t.Fatal(err)
	}
	if f := s2.RunFraction("core0"); f != 1 {
		t.Fatalf("unmultiplexed RunFraction = %v", f)
	}
	if s2.MaxGroups() != 1 {
		t.Fatalf("MaxGroups = %d", s2.MaxGroups())
	}
}

func TestSamplingSession(t *testing.T) {
	m, r := testMachine(t, 1)
	ss, err := OpenSampling(m, "core0/mem_load_retired.l1_miss/", 100)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Period() != 100 {
		t.Fatalf("period = %d", ss.Period())
	}
	m.Attach(0, &opList{ops: loads(r.Base, 2000)})
	m.Run(20_000_000)
	samples := ss.Samples()
	if len(samples) == 0 {
		t.Fatal("no overflow samples")
	}
	// Samples arrive in time order with totals at period multiples.
	for i, s := range samples {
		if s.Bank != "core0" {
			t.Fatalf("sample %d from %s", i, s.Bank)
		}
		if s.Total < uint64(i+1)*100 {
			t.Fatalf("sample %d total %d below period boundary", i, s.Total)
		}
		if i > 0 && s.Cycle < samples[i-1].Cycle {
			t.Fatalf("samples out of order at %d", i)
		}
	}
	before := len(samples)
	ss.Close()
	m.Attach(0, &opList{ops: loads(r.Base+1<<20, 2000)})
	m.Run(20_000_000)
	if len(ss.Samples()) != before {
		t.Fatal("sampler fired after Close")
	}
	ss.Close() // idempotent
}

func TestSamplingErrors(t *testing.T) {
	m, _ := testMachine(t, 0)
	if _, err := OpenSampling(m, "core0/mem_load_retired.l1_miss/", 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := OpenSampling(m, "core0/bogus/", 10); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := OpenSampling(m, "nomatch*/inst_retired.any/", 10); err == nil {
		t.Fatal("unmatched pattern accepted")
	}
	if _, err := OpenSampling(m, "junk", 10); err == nil {
		t.Fatal("malformed spec accepted")
	}
}

func TestRunRotatedUnmultiplexed(t *testing.T) {
	m, r := testMachine(t, 0)
	m.Attach(0, &opList{ops: loads(r.Base, 3000)})
	es, err := RunRotated(m, 2_000_000, 100_000,
		"core0/mem_inst_retired.all_loads/")
	if err != nil {
		t.Fatal(err)
	}
	// One event, one group: run fraction 1, estimate exact.
	if es[0].RunFraction != 1 {
		t.Fatalf("run fraction = %v", es[0].RunFraction)
	}
	if es[0].Estimate != 3000 || es[0].Raw != 3000 {
		t.Fatalf("estimate = %v raw = %d, want 3000", es[0].Estimate, es[0].Raw)
	}
}

func TestRunRotatedMultiplexed(t *testing.T) {
	m, r := testMachine(t, 0)
	// Steady looping stream so extrapolation is accurate.
	m.Attach(0, &loopGenPerf{ops: loads(r.Base, 256)})
	// 9 CHA events on one bank: 3 groups of up to 4 slots.
	specs := []string{
		"cha0/unc_cha_tor_inserts.ia.all/",
		"cha0/unc_cha_tor_inserts.ia.hit/",
		"cha0/unc_cha_tor_inserts.ia.miss/",
		"cha0/unc_cha_tor_inserts.ia_drd.any/",
		"cha0/unc_cha_tor_inserts.ia_drd.hit_llc/",
		"cha0/unc_cha_tor_inserts.ia_drd.miss_llc/",
		"cha0/unc_cha_tor_occupancy.ia.all/",
		"cha0/unc_cha_tor_occupancy.ia_drd.any/",
		"cha0/unc_cha_clockticks/",
	}
	es, err := RunRotated(m, 3_000_000, 50_000, specs...)
	if err != nil {
		t.Fatal(err)
	}
	// The clockticks event is in the last group: run fraction ~1/3.
	last := es[len(es)-1]
	if last.RunFraction < 0.25 || last.RunFraction > 0.45 {
		t.Fatalf("multiplexed run fraction = %v, want ~1/3", last.RunFraction)
	}
	// Clockticks accumulate uniformly, so extrapolation lands close.
	if last.Estimate < 2_500_000 || last.Estimate > 3_500_000 {
		t.Fatalf("clocktick estimate = %v, want ~3M", last.Estimate)
	}
}

func TestRunRotatedErrors(t *testing.T) {
	m, _ := testMachine(t, 0)
	if _, err := RunRotated(m, 100, 0, "core0/inst_retired.any/"); err == nil {
		t.Fatal("zero quantum accepted")
	}
	if _, err := RunRotated(m, 100, 200, "core0/inst_retired.any/"); err == nil {
		t.Fatal("quantum > total accepted")
	}
	if _, err := RunRotated(m, 1000, 100, "core0/bogus/"); err == nil {
		t.Fatal("unknown event accepted")
	}
}

type loopGenPerf struct {
	ops []workload.Op
	i   int
}

func (g *loopGenPerf) Next(op *workload.Op) bool {
	*op = g.ops[g.i]
	g.i = (g.i + 1) % len(g.ops)
	return true
}

func TestRotationHelpers(t *testing.T) {
	if groupCountFor(pmu.UnitCHA, 4) != 1 || groupCountFor(pmu.UnitCHA, 9) != 3 {
		t.Fatal("group counting")
	}
	if groupCountFor(pmu.UnitCore, 1) != 1 {
		t.Fatal("single event needs one group")
	}
	es := []RotatedEstimate{{Estimate: 1}, {Estimate: 5}, {Estimate: 3}}
	SortEstimates(es)
	if es[0].Estimate != 5 || es[2].Estimate != 1 {
		t.Fatalf("sort order: %+v", es)
	}
}

// Package perf is the Linux-perf-like event interface over the simulated
// machine's PMU banks: event specs name a module instance (or a glob over
// instances) and a catalog event, sessions read deltas between epochs, and
// per-unit counter-slot limits are tracked the way perf tracks
// time_enabled/time_running under multiplexing.
//
// Spec syntax follows perf's pmu/event/ convention:
//
//	core0/mem_load_retired.l1_hit/
//	cha*/unc_cha_tor_inserts.ia_drd.miss_cxl/
//	cxl0/unc_cxlcm_rxc_pack_buf_inserts.mem_req/
//
// A glob in the instance part aggregates the event across every matching
// bank (like perf's uncore unit aggregation).
package perf

import (
	"fmt"
	"sort"
	"strings"

	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
)

// Spec is one parsed event specification.
type Spec struct {
	Pattern string // bank-name pattern, possibly with a trailing '*'
	Event   string // catalog event name
}

// String formats the spec in perf syntax.
func (s Spec) String() string { return s.Pattern + "/" + s.Event + "/" }

// ParseSpec parses "pattern/event/" (the trailing slash is optional).
func ParseSpec(raw string) (Spec, error) {
	t := strings.TrimSuffix(raw, "/")
	i := strings.IndexByte(t, '/')
	if i <= 0 || i == len(t)-1 {
		return Spec{}, fmt.Errorf("perf: malformed event spec %q (want pmu/event/)", raw)
	}
	return Spec{Pattern: t[:i], Event: t[i+1:]}, nil
}

// matchPattern reports whether a bank name matches a pattern that is either
// exact or has a single trailing '*'.
func matchPattern(pattern, name string) bool {
	if p, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(name, p)
	}
	return pattern == name
}

// slotLimits is the number of programmable counters per PMU unit on the
// modeled parts; opening more events than slots on one bank forces
// multiplexing, which the session surfaces via RunFraction.
var slotLimits = map[pmu.Unit]int{
	pmu.UnitCore:   8,
	pmu.UnitCHA:    4,
	pmu.UnitIMC:    4,
	pmu.UnitM2PCIe: 4,
	pmu.UnitCXL:    8,
}

// CounterBits is the hardware width of the modeled PMU counters: like the
// fixed and general-purpose counters on the modeled parts, they hold 48
// bits and wrap.  The session reads masked values and unwraps them into
// full-width running totals, the way perf accumulates the raw MSR.
const CounterBits = 48

// counterMask keeps the low CounterBits of a raw counter value.
const counterMask = 1<<CounterBits - 1

// counter is one resolved (bank, event) pair of a session.
type counter struct {
	spec  int // index into Session.specs
	bank  *pmu.Bank
	event pmu.Event
	last  uint64 // masked raw value at the previous sync
	total uint64 // unwrapped count accumulated since Open
	prev  uint64 // total at the previous ReadDelta
}

// Session is an open set of event counters over a machine.
type Session struct {
	m        *sim.Machine
	specs    []Spec
	counters []counter
	// groupsPerBank tracks multiplex pressure: bank name -> number of
	// rotation groups needed for the events opened on it.
	groupsPerBank map[string]int
}

// Open resolves the given event specs against the machine's banks.  Every
// spec must match at least one bank and name a cataloged event whose unit
// matches the bank.
func Open(m *sim.Machine, specs ...string) (*Session, error) {
	s, _, err := open(m, false, specs)
	return s, err
}

// OpenLenient resolves event specs like Open but degrades gracefully: a
// spec naming an unknown event or matching no bank is skipped with a
// warning instead of failing the session, the way perf keeps going when an
// event is absent on the running kernel.  Skipped specs keep their index
// and read as zero.  Malformed spec syntax is still an error, as is a
// session in which every spec was skipped.
func OpenLenient(m *sim.Machine, specs ...string) (*Session, []string, error) {
	return open(m, true, specs)
}

func open(m *sim.Machine, lenient bool, specs []string) (*Session, []string, error) {
	s := &Session{m: m, groupsPerBank: make(map[string]int)}
	perBank := make(map[string]int)
	var warnings []string
	skip := func(format string, args ...any) error {
		if !lenient {
			return fmt.Errorf(format, args...)
		}
		warnings = append(warnings, fmt.Sprintf(format, args...))
		return nil
	}
	opened := 0
	for _, raw := range specs {
		sp, err := ParseSpec(raw)
		if err != nil {
			return nil, warnings, err
		}
		idx := len(s.specs)
		s.specs = append(s.specs, sp)
		ev, ok := pmu.Default.Lookup(sp.Event)
		if !ok {
			if err := skip("perf: unknown event %q (skipped)", sp.Event); err != nil {
				return nil, nil, err
			}
			continue
		}
		matched := 0
		for _, b := range m.Banks() {
			if !matchPattern(sp.Pattern, b.Name()) {
				continue
			}
			if !bankHostsUnit(b.Name(), pmu.Default.Info(ev).Unit) {
				continue
			}
			s.counters = append(s.counters, counter{spec: idx, bank: b, event: ev})
			perBank[b.Name()]++
			matched++
		}
		if matched == 0 {
			if err := skip("perf: spec %q matched no PMU bank (skipped)", raw); err != nil {
				return nil, nil, err
			}
			continue
		}
		opened++
	}
	if len(specs) > 0 && opened == 0 {
		return nil, warnings, fmt.Errorf("perf: no spec could be opened (%d skipped)", len(specs))
	}
	for name, n := range perBank {
		unit := unitOfBank(name)
		slots := slotLimits[unit]
		groups := 1
		if slots > 0 && n > slots {
			groups = (n + slots - 1) / slots
		}
		s.groupsPerBank[name] = groups
	}
	return s, warnings, nil
}

// unitOfBank infers the PMU unit from a bank instance name.
func unitOfBank(name string) pmu.Unit {
	switch {
	case strings.HasPrefix(name, "core"):
		return pmu.UnitCore
	case strings.HasPrefix(name, "cha"):
		return pmu.UnitCHA
	case strings.HasPrefix(name, "imc"):
		return pmu.UnitIMC
	case strings.HasPrefix(name, "m2pcie"):
		return pmu.UnitM2PCIe
	default:
		return pmu.UnitCXL
	}
}

// bankHostsUnit reports whether the named bank belongs to the unit.
func bankHostsUnit(name string, u pmu.Unit) bool { return unitOfBank(name) == u }

// Specs returns the parsed specs in open order.
func (s *Session) Specs() []Spec { return s.specs }

// RunFraction returns the fraction of time the events on the named bank
// are scheduled given counter-slot pressure (1.0 when no multiplexing is
// needed), mirroring perf's time_running/time_enabled ratio.
func (s *Session) RunFraction(bank string) float64 {
	g := s.groupsPerBank[bank]
	if g <= 1 {
		return 1
	}
	return 1 / float64(g)
}

// MaxGroups returns the worst multiplex pressure across the session's
// banks (1 = no multiplexing anywhere).
func (s *Session) MaxGroups() int {
	m := 1
	for _, g := range s.groupsPerBank {
		if g > m {
			m = g
		}
	}
	return m
}

// syncCounters folds each counter's masked hardware value into its
// unwrapped running total: the delta since the previous observation is
// computed modulo the counter width, so a counter that wrapped between
// reads contributes the true increment rather than a huge negative-as-
// unsigned jump.  Like real hardware, an increment of 2^48 or more between
// observations is undetectable.
func (s *Session) syncCounters() {
	s.m.Sync()
	for i := range s.counters {
		c := &s.counters[i]
		raw := c.bank.Read(c.event) & counterMask
		c.total += (raw - c.last) & counterMask
		c.last = raw
	}
}

// Read returns the unwrapped running totals per spec, aggregated across
// all banks the spec matched.  It synchronizes the machine's trackers
// first.
func (s *Session) Read() []uint64 {
	s.syncCounters()
	out := make([]uint64, len(s.specs))
	for i := range s.counters {
		c := &s.counters[i]
		out[c.spec] += c.total
	}
	return out
}

// ReadDelta returns per-spec deltas since the previous ReadDelta (or since
// Open), aggregated across matching banks.  Counter wraparound between
// calls is handled by the width-masked unwrapping in syncCounters.
func (s *Session) ReadDelta() []uint64 {
	s.syncCounters()
	out := make([]uint64, len(s.specs))
	for i := range s.counters {
		c := &s.counters[i]
		out[c.spec] += c.total - c.prev
		c.prev = c.total
	}
	return out
}

// Banks returns the sorted set of bank names the session touches.
func (s *Session) Banks() []string {
	seen := make(map[string]bool)
	for i := range s.counters {
		seen[s.counters[i].bank.Name()] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package perf

import (
	"fmt"

	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
)

// Sample is one overflow record from a sampling counter: which bank fired,
// the counter total at overflow, and the machine cycle.
type Sample struct {
	Bank  string
	Total uint64
	Cycle sim.Cycles
}

// SampleSession drives the PMU sampling mode (§3.1's overflow-interrupt
// flavor): an event is armed with a period on every matching bank and each
// period crossing appends a Sample, like perf record's counter sampling.
type SampleSession struct {
	m       *sim.Machine
	spec    Spec
	period  uint64
	banks   []*pmu.Bank
	event   pmu.Event
	samples []Sample
	closed  bool
}

// OpenSampling arms the event named by spec with the given period on every
// matching bank.
func OpenSampling(m *sim.Machine, rawSpec string, period uint64) (*SampleSession, error) {
	if period == 0 {
		return nil, fmt.Errorf("perf: sampling period must be positive")
	}
	sp, err := ParseSpec(rawSpec)
	if err != nil {
		return nil, err
	}
	ev, ok := pmu.Default.Lookup(sp.Event)
	if !ok {
		return nil, fmt.Errorf("perf: unknown event %q", sp.Event)
	}
	ss := &SampleSession{m: m, spec: sp, period: period, event: ev}
	for _, b := range m.Banks() {
		if !matchPattern(sp.Pattern, b.Name()) || !bankHostsUnit(b.Name(), pmu.Default.Info(ev).Unit) {
			continue
		}
		bank := b
		b.Attach(ev, pmu.NewSampler(period, func(total uint64) {
			ss.samples = append(ss.samples, Sample{
				Bank:  bank.Name(),
				Total: total,
				Cycle: m.Now(),
			})
		}))
		ss.banks = append(ss.banks, b)
	}
	if len(ss.banks) == 0 {
		return nil, fmt.Errorf("perf: sampling spec %q matched no PMU bank", rawSpec)
	}
	return ss, nil
}

// Samples returns the overflow records collected so far.
func (ss *SampleSession) Samples() []Sample { return ss.samples }

// Period returns the armed period.
func (ss *SampleSession) Period() uint64 { return ss.period }

// Close detaches the samplers; further counter activity stops recording.
func (ss *SampleSession) Close() {
	if ss.closed {
		return
	}
	ss.closed = true
	for _, b := range ss.banks {
		b.Detach(ss.event)
	}
}

package perf

import (
	"strings"
	"testing"

	"pathfinder/internal/pmu"
)

// TestReadDeltaWraparound forces a 48-bit counter wrap between reads: the
// session must report the true increment, not the huge unsigned-underflow
// value a full-width subtraction would produce.
func TestReadDeltaWraparound(t *testing.T) {
	m, _ := testMachine(t, 0)
	s, err := Open(m, "core0/inst_retired.any/")
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := pmu.Default.Lookup("inst_retired.any")
	bank := m.Bank("core0")

	// Age the counter to just below the wrap point, as if the session had
	// attached to a long-running machine.
	bank.Add(ev, counterMask-99) // masked value: 2^48 - 100
	if d := s.ReadDelta()[0]; d != counterMask-99 {
		t.Fatalf("pre-wrap delta = %d", d)
	}

	// 300 more events carry the masked value across the wrap boundary.
	bank.Add(ev, 300)
	if d := s.ReadDelta()[0]; d != 300 {
		t.Fatalf("delta across wrap = %d, want 300", d)
	}

	// Totals keep accumulating past the hardware width.
	bank.Add(ev, 50)
	want := uint64(counterMask) - 99 + 300 + 50
	if got := s.Read()[0]; got != want {
		t.Fatalf("unwrapped total = %d, want %d", got, want)
	}
	if d := s.ReadDelta()[0]; d != 50 {
		t.Fatalf("post-wrap delta = %d, want 50", d)
	}

	// A second wrap in the same session unwraps too.
	bank.Add(ev, counterMask+1) // exactly one full period: masked value unchanged...
	if d := s.ReadDelta()[0]; d != 0 {
		// ...which is the documented blind spot: a full-period increment
		// between observations is invisible, like real hardware.
		t.Fatalf("full-period increment visible as %d", d)
	}
	bank.Add(ev, 7)
	if d := s.ReadDelta()[0]; d != 7 {
		t.Fatalf("second-wrap delta = %d, want 7", d)
	}
}

func TestOpenLenient(t *testing.T) {
	m, r := testMachine(t, 0)

	s, warns, err := OpenLenient(m,
		"core0/mem_inst_retired.all_loads/",
		"core0/not_a_real_event/",   // unknown event: skipped
		"core9/inst_retired.any/",   // unmatched bank: skipped
		"core0/unc_cha_clockticks/", // wrong unit for bank: skipped
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 3 {
		t.Fatalf("got %d warnings, want 3: %v", len(warns), warns)
	}
	for _, w := range warns {
		if !strings.Contains(w, "skipped") {
			t.Fatalf("warning %q does not say skipped", w)
		}
	}
	if len(s.Specs()) != 4 {
		t.Fatalf("skipped specs lost their slots: %d specs", len(s.Specs()))
	}

	m.Attach(0, &opList{ops: loads(r.Base, 500)})
	m.Run(1_000_000)
	vals := s.Read()
	if vals[0] != 500 {
		t.Fatalf("opened spec read %d, want 500", vals[0])
	}
	for i := 1; i < 4; i++ {
		if vals[i] != 0 {
			t.Fatalf("skipped spec %d read %d, want 0", i, vals[i])
		}
	}

	// Malformed syntax still fails loudly.
	if _, _, err := OpenLenient(m, "garbage"); err == nil {
		t.Fatal("malformed spec accepted leniently")
	}
	// A session with nothing openable fails rather than silently measuring
	// nothing.
	if _, _, err := OpenLenient(m, "core0/bogus_a/", "core0/bogus_b/"); err == nil {
		t.Fatal("all-skipped session accepted")
	}
}

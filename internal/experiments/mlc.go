package experiments

import (
	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// MLCRow is one tier's latency/bandwidth measurement (the §2.3 numbers:
// local 103.2 ns / 131.1 GB/s, NUMA 163.6 ns / 94.4 GB/s, CXL 355.3 ns /
// 17.6 GB/s on the paper's SPR testbed).
type MLCRow struct {
	Tier        string
	LatencyNS   float64
	BandwidthGB float64
}

// MLCResult is the full Intel-MLC-equivalent sweep.
type MLCResult struct {
	Rows []MLCRow
}

// Table renders the result.
func (r *MLCResult) Table() *report.Table {
	t := &report.Table{
		Title: "Intel MLC equivalent: idle latency and peak bandwidth per tier (paper §2.3)",
		Cols:  []string{"tier", "latency (ns)", "bandwidth (GB/s)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Tier, report.Num(row.LatencyNS), report.Num(row.BandwidthGB))
	}
	return t
}

// measureLatency runs a single-core dependent pointer chase over a region
// on the given node and returns the average load-to-use latency in ns.
func measureLatency(cfg sim.Config, node mem.NodeID, cycles sim.Cycles) float64 {
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0 // latency sweep defeats prefetch anyway
	rig := NewRig(RigOptions{Config: cfg})
	reg := rig.Alloc(256*mb, node)
	rig.Machine.Attach(0, workload.NewPointerChase(reg, 1, 7))
	rig.Machine.Run(cycles)
	rig.Machine.Sync()
	b := rig.Machine.Core(0).Bank()
	lat := float64(b.Read(pmu.MemTransLoadLatency))
	cnt := float64(b.Read(pmu.MemTransLoadCount))
	if cnt == 0 {
		return 0
	}
	return rig.cyclesToNS(lat / cnt)
}

// measureBandwidth saturates a node with streaming loads from every core
// and returns the delivered bandwidth in GB/s, measured at the serving
// device's own counters (CAS / link inserts), the way MLC reports it.
func measureBandwidth(cfg sim.Config, node mem.NodeID, cycles sim.Cycles) float64 {
	rig := NewRig(RigOptions{Config: cfg})
	m := rig.Machine
	nCores := m.Config().Cores
	for c := 0; c < nCores; c++ {
		reg := rig.Alloc(32*mb, node)
		g := workload.NewStream(reg, 0, 0, uint64(c+1))
		m.Attach(c, g)
	}
	m.Run(cycles)
	m.Sync()

	var lines float64
	switch node {
	case rig.CXLNode:
		lines = float64(m.Bank("cxl0").Read(pmu.CXLDevCASRd))
	case rig.LocalNode:
		for i := 0; i < m.Config().DRAMChannels; i++ {
			lines += float64(m.Bank(bankName("imc", i)).Read(pmu.CASCountRd))
		}
	default:
		// The remote path has no modeled counters; use core-side loads
		// that missed to remote DRAM.
		for c := 0; c < nCores; c++ {
			b := m.Core(c).Bank()
			lines += float64(b.Read(pmu.OCRDemandDataRd[pmu.ScnMissRemoteDDR]))
			lines += float64(b.Read(pmu.OCRL1DHWPF[pmu.ScnMissRemoteDDR]))
			lines += float64(b.Read(pmu.OCRL2HWPFDRd[pmu.ScnMissRemoteDDR]))
		}
	}
	seconds := float64(cycles) / (m.Config().GHz * 1e9)
	return lines * 64 / seconds / 1e9
}

func bankName(prefix string, i int) string {
	// Small helper avoiding fmt in hot paths.
	const digits = "0123456789"
	if i < 10 {
		return prefix + digits[i:i+1]
	}
	return prefix + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}

// RunMLC performs the latency/bandwidth sweep for all three tiers.
// quick shortens the run for test suites.
func RunMLC(cfg sim.Config, quick bool) *MLCResult {
	latCycles := sim.Cycles(4_000_000)
	bwCycles := sim.Cycles(2_000_000)
	if quick {
		latCycles, bwCycles = 800_000, 500_000
	}
	tiers := []struct {
		name string
		node mem.NodeID
	}{
		{"local DDR", 0},
		{"cross-NUMA DDR", 1},
		{"CXL Type-3", 2},
	}
	res := &MLCResult{Rows: make([]MLCRow, len(tiers))}
	for i, tier := range tiers {
		res.Rows[i].Tier = tier.name
	}
	// Latency and bandwidth rigs are independent: 2 runs per tier,
	// each writing a distinct field of its tier's row.
	runIndexed("mlc", 2*len(tiers), func(i int) {
		tier := tiers[i/2]
		row := &res.Rows[i/2]
		if i%2 == 0 {
			row.LatencyNS = measureLatency(cfg, tier.node, latCycles)
		} else {
			row.BandwidthGB = measureBandwidth(cfg, tier.node, bwCycles)
		}
	})
	return res
}

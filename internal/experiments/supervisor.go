package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The supervised runner wraps the worker pool with failure containment:
// a panicking task becomes a classified TaskOutcome instead of killing
// the pool, transient failures retry with exponential backoff and
// deterministic jitter, and tasks get a cooperative simulated-cycle
// budget.  runIndexed keeps its fail-fast contract for the experiment
// suite; Supervise is the self-healing entry point for long soaks and
// services that must report partial results rather than die.

// FailureClass classifies why a supervised task ended.
type FailureClass uint8

// Task failure classes.
const (
	FailNone      FailureClass = iota // task succeeded
	FailPanic                         // task panicked; recovered by the supervisor
	FailDeadline                      // task exceeded its cycle budget
	FailTransient                     // retryable failure persisted through every attempt
	FailPermanent                     // non-retryable failure
)

// String returns the class mnemonic used in summaries.
func (c FailureClass) String() string {
	switch c {
	case FailNone:
		return "ok"
	case FailPanic:
		return "panic"
	case FailDeadline:
		return "deadline"
	case FailTransient:
		return "transient"
	case FailPermanent:
		return "permanent"
	}
	return fmt.Sprintf("FailureClass(%d)", uint8(c))
}

// ErrBudget is returned by TaskCtx.Charge when a task has consumed its
// simulated-cycle budget; the supervisor classifies it FailDeadline.
var ErrBudget = errors.New("experiments: task exceeded its cycle budget")

// transientError marks a failure as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the supervisor retries the task (with backoff)
// instead of failing it permanently.  A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// panicError carries a recovered panic value and its stack as an error.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// TaskCtx is the per-attempt context handed to a supervised task: the
// attempt number (1-based) and a cooperative simulated-cycle budget.
// Tasks running a Machine call Charge between Run chunks so a runaway
// scenario is cut off deterministically — at the same simulated cycle on
// every host — rather than by wall clock.
type TaskCtx struct {
	Attempt int

	budget uint64
	used   uint64
}

// Charge accounts cycles of simulated work against the task's budget and
// returns ErrBudget once it is exhausted (a zero budget never expires).
func (tc *TaskCtx) Charge(cycles uint64) error {
	tc.used += cycles
	if tc.budget > 0 && tc.used > tc.budget {
		return ErrBudget
	}
	return nil
}

// Remaining returns the unconsumed cycle budget (0 when exhausted or when
// the task is unbudgeted).
func (tc *TaskCtx) Remaining() uint64 {
	if tc.budget == 0 || tc.used >= tc.budget {
		return 0
	}
	return tc.budget - tc.used
}

// SuperviseOptions tunes the supervised runner.  The zero value means: one
// attempt per task, no cycle budget, 1ms base backoff capped at 100ms.
type SuperviseOptions struct {
	Label       string        // experiment label for pprof/metrics
	MaxAttempts int           // attempts per task for transient failures (<=0 means 1)
	Backoff     time.Duration // base retry delay (<=0 means 1ms)
	MaxBackoff  time.Duration // delay cap (<=0 means 100ms)
	Seed        uint64        // jitter seed; same seed -> same retry schedule
	CycleBudget uint64        // per-attempt simulated-cycle budget (0 = unlimited)
}

// TaskOutcome is one task's final disposition.
type TaskOutcome struct {
	Index    int
	Class    FailureClass
	Err      error // nil when Class is FailNone
	Attempts int
}

// OK reports whether the task succeeded.
func (o TaskOutcome) OK() bool { return o.Class == FailNone }

// RunReport aggregates per-task outcomes of one supervised run.  Every
// task has an outcome — partial results survive individual failures.
type RunReport struct {
	Label    string
	Outcomes []TaskOutcome
}

// Failed returns the outcomes of tasks that did not succeed, in index
// order.
func (r *RunReport) Failed() []TaskOutcome {
	var out []TaskOutcome
	for _, o := range r.Outcomes {
		if !o.OK() {
			out = append(out, o)
		}
	}
	return out
}

// Summary renders a one-line result with every failure and its
// classification.
func (r *RunReport) Summary() string {
	ok := 0
	for _, o := range r.Outcomes {
		if o.OK() {
			ok++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d/%d tasks ok", r.Label, ok, len(r.Outcomes))
	for _, o := range r.Outcomes {
		if !o.OK() {
			fmt.Fprintf(&b, "; task %d failed [%s] after %d attempt(s): %v",
				o.Index, o.Class, o.Attempts, o.Err)
		}
	}
	return b.String()
}

// mix64 is the splitmix64 finalizer, used for deterministic retry jitter.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoffDelay computes the pre-retry sleep for (task, attempt):
// exponential in the attempt number, capped, plus up to 50% deterministic
// jitter so retrying tasks do not stampede in lockstep.
func backoffDelay(opt SuperviseOptions, task, attempt int) time.Duration {
	base := opt.Backoff
	if base <= 0 {
		base = time.Millisecond
	}
	cap := opt.MaxBackoff
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	delay := base
	for a := 1; a < attempt && delay < cap; a++ {
		delay *= 2
	}
	if delay > cap {
		delay = cap
	}
	h := mix64(opt.Seed ^ mix64(uint64(task)<<20|uint64(attempt)))
	frac := float64(h>>11) / (1 << 53)
	return delay + time.Duration(float64(delay)/2*frac)
}

// classify maps an attempt error to its failure class.
func classify(err error) FailureClass {
	var pe *panicError
	var te *transientError
	switch {
	case err == nil:
		return FailNone
	case errors.As(err, &pe):
		return FailPanic
	case errors.Is(err, ErrBudget):
		return FailDeadline
	case errors.As(err, &te):
		return FailTransient
	}
	return FailPermanent
}

// runAttempt executes one attempt of fn, converting a panic into a
// *panicError so the worker survives.
func runAttempt(i int, tc *TaskCtx, fn func(i int, tc *TaskCtx) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	return fn(i, tc)
}

// superviseTask drives one task to its final outcome: attempts, backoff,
// classification.
func superviseTask(i int, opt SuperviseOptions, fn func(i int, tc *TaskCtx) error) TaskOutcome {
	maxAttempts := opt.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	out := TaskOutcome{Index: i}
	for attempt := 1; ; attempt++ {
		out.Attempts = attempt
		tc := &TaskCtx{Attempt: attempt, budget: opt.CycleBudget}
		err := runAttempt(i, tc, fn)
		out.Err = err
		out.Class = classify(err)
		if out.Class != FailTransient || attempt >= maxAttempts {
			return out
		}
		time.Sleep(backoffDelay(opt, i, attempt))
	}
}

// Supervise invokes fn(0..n-1) across the worker pool with failure
// containment: a panic, budget expiry, or error in one task is recorded
// as that task's outcome while every other task runs to completion.
// Transient failures (errors wrapped with Transient) retry up to
// opt.MaxAttempts times with exponential backoff and deterministic
// jitter.  Outcomes are indexed by task, so aggregation order matches a
// serial loop regardless of scheduling.
func Supervise(opt SuperviseOptions, n int, fn func(i int, tc *TaskCtx) error) *RunReport {
	label := opt.Label
	if label == "" {
		label = "supervised"
	}
	rep := &RunReport{Label: label, Outcomes: make([]TaskOutcome, n)}
	if n <= 0 {
		return rep
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		tasks, busy := workerMetrics(0)
		pprof.Do(context.Background(), pprof.Labels("experiment", label, "worker", "0"),
			func(context.Context) {
				for i := 0; i < n; i++ {
					t0 := time.Now()
					rep.Outcomes[i] = superviseTask(i, opt, fn)
					busy.Add(uint64(time.Since(t0)))
					tasks.Inc()
				}
			})
		return rep
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			tasks, busy := workerMetrics(w)
			pprof.Do(context.Background(),
				pprof.Labels("experiment", label, "worker", strconv.Itoa(w)),
				func(context.Context) {
					for {
						i := int(next.Add(1)) - 1
						if i >= n {
							return
						}
						t0 := time.Now()
						rep.Outcomes[i] = superviseTask(i, opt, fn)
						busy.Add(uint64(time.Since(t0)))
						tasks.Inc()
					}
				})
		}(w)
	}
	wg.Wait()
	return rep
}

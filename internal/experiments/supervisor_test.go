package experiments

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSupervisePanicIsolation is the acceptance scenario: one task
// panics, the pool survives, every other task completes, and the summary
// names the failure with its classification.
func TestSupervisePanicIsolation(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)

	const n = 8
	var completed atomic.Int64
	rep := Supervise(SuperviseOptions{Label: "panic-test"}, n, func(i int, _ *TaskCtx) error {
		if i == 3 {
			panic("injected experiment bug")
		}
		completed.Add(1)
		return nil
	})

	if got := completed.Load(); got != n-1 {
		t.Fatalf("%d of %d healthy tasks completed", got, n-1)
	}
	for i, o := range rep.Outcomes {
		if i == 3 {
			if o.Class != FailPanic || o.Err == nil {
				t.Fatalf("task 3 outcome %+v, want FailPanic", o)
			}
			continue
		}
		if !o.OK() {
			t.Fatalf("healthy task %d failed: %+v", i, o)
		}
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "7/8 tasks ok") ||
		!strings.Contains(sum, "task 3 failed [panic]") ||
		!strings.Contains(sum, "injected experiment bug") {
		t.Fatalf("summary missing failure detail: %q", sum)
	}
	if len(rep.Failed()) != 1 || rep.Failed()[0].Index != 3 {
		t.Fatalf("Failed() = %+v", rep.Failed())
	}
}

// TestSupervisePanicIsolationSerial proves the serial path (parallelism 1)
// contains panics the same way.
func TestSupervisePanicIsolationSerial(t *testing.T) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)

	var completed atomic.Int64
	rep := Supervise(SuperviseOptions{Label: "serial"}, 4, func(i int, _ *TaskCtx) error {
		if i == 0 {
			panic("boom")
		}
		completed.Add(1)
		return nil
	})
	if completed.Load() != 3 || rep.Outcomes[0].Class != FailPanic {
		t.Fatalf("serial supervision broken: completed=%d outcomes=%+v",
			completed.Load(), rep.Outcomes)
	}
}

func TestSuperviseTransientRetry(t *testing.T) {
	prev := SetParallelism(2)
	defer SetParallelism(prev)

	var tries atomic.Int64
	rep := Supervise(SuperviseOptions{
		Label:       "retry",
		MaxAttempts: 5,
		Backoff:     time.Microsecond,
		MaxBackoff:  10 * time.Microsecond,
		Seed:        7,
	}, 1, func(i int, tc *TaskCtx) error {
		if tries.Add(1) < 3 {
			return Transient(errors.New("flaky backend"))
		}
		return nil
	})
	o := rep.Outcomes[0]
	if !o.OK() || o.Attempts != 3 {
		t.Fatalf("outcome %+v, want success on attempt 3", o)
	}

	// A transient failure that never clears exhausts its attempts and is
	// classified FailTransient.
	rep = Supervise(SuperviseOptions{
		Label: "retry", MaxAttempts: 3, Backoff: time.Microsecond,
	}, 1, func(i int, tc *TaskCtx) error {
		return Transient(errors.New("still down"))
	})
	o = rep.Outcomes[0]
	if o.Class != FailTransient || o.Attempts != 3 {
		t.Fatalf("outcome %+v, want FailTransient after 3 attempts", o)
	}
}

func TestSupervisePermanentNoRetry(t *testing.T) {
	var tries atomic.Int64
	rep := Supervise(SuperviseOptions{Label: "perm", MaxAttempts: 5, Backoff: time.Microsecond},
		1, func(i int, tc *TaskCtx) error {
			tries.Add(1)
			return errors.New("bad config")
		})
	o := rep.Outcomes[0]
	if o.Class != FailPermanent || tries.Load() != 1 {
		t.Fatalf("outcome %+v after %d tries, want FailPermanent with no retry", o, tries.Load())
	}
}

func TestSuperviseCycleBudget(t *testing.T) {
	rep := Supervise(SuperviseOptions{Label: "budget", CycleBudget: 10_000},
		1, func(i int, tc *TaskCtx) error {
			for {
				// A cooperative simulation loop: charge each chunk and stop
				// when the supervisor says the budget is gone.
				if err := tc.Charge(4_000); err != nil {
					return err
				}
			}
		})
	o := rep.Outcomes[0]
	if o.Class != FailDeadline || !errors.Is(o.Err, ErrBudget) {
		t.Fatalf("outcome %+v, want FailDeadline/ErrBudget", o)
	}

	// An unbudgeted context never expires.
	tc := &TaskCtx{}
	if err := tc.Charge(1 << 40); err != nil {
		t.Fatalf("unbudgeted Charge returned %v", err)
	}
	if tc.Remaining() != 0 {
		t.Fatalf("unbudgeted Remaining = %d", tc.Remaining())
	}
}

// TestBackoffDeterministic pins the jitter schedule to the seed.
func TestBackoffDeterministic(t *testing.T) {
	opt := SuperviseOptions{Backoff: time.Millisecond, MaxBackoff: 32 * time.Millisecond, Seed: 9}
	for task := 0; task < 3; task++ {
		for attempt := 1; attempt <= 6; attempt++ {
			a := backoffDelay(opt, task, attempt)
			b := backoffDelay(opt, task, attempt)
			if a != b {
				t.Fatalf("jitter not deterministic for task %d attempt %d", task, attempt)
			}
			if a < time.Millisecond || a > 48*time.Millisecond {
				t.Fatalf("delay %v outside [base, 1.5*cap]", a)
			}
		}
	}
	// Exponential growth up to the cap: attempt 6 >= attempt 1.
	if backoffDelay(opt, 0, 6) < backoffDelay(opt, 0, 1) {
		t.Fatal("backoff did not grow with attempts")
	}
}

package experiments

import (
	"reflect"
	"testing"

	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// TestWarmSweepForkedMatchesScratch: the warm-forked fault matrix must
// produce byte-identical numbers whether every point re-warms from scratch
// or forks from one cached checkpoint, and the cache must actually engage
// (one miss on the first forked run, a hit on the second, one fork per
// point).
func TestWarmSweepForkedMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-sweep matrix")
	}
	prev := SetWarmCache(false)
	defer SetWarmCache(prev)
	ResetCheckpointCache()

	scratch := RunWarmSweep(sim.SPR(), true)
	if s := CheckpointCache(); s.Entries != 0 {
		t.Fatalf("scratch run populated the cache: %+v", s)
	}

	SetWarmCache(true)
	before := CheckpointCache()
	forked := RunWarmSweep(sim.SPR(), true)
	after := CheckpointCache()
	if !reflect.DeepEqual(scratch, forked) {
		t.Errorf("forked sweep diverged from scratch:\nscratch: %+v\nforked:  %+v", scratch, forked)
	}
	if after.Misses != before.Misses+1 || after.Entries != 1 || after.Bytes <= 0 {
		t.Errorf("first forked run should miss once and cache one image: before %+v after %+v", before, after)
	}
	if got := after.Forks - before.Forks; got != uint64(len(forked.Labels)) {
		t.Errorf("forks = %d, want one per point (%d)", got, len(forked.Labels))
	}

	again := RunWarmSweep(sim.SPR(), true)
	final := CheckpointCache()
	if !reflect.DeepEqual(forked, again) {
		t.Errorf("cache-hit sweep diverged from first forked run")
	}
	if final.Hits != after.Hits+1 || final.Entries != 1 {
		t.Errorf("second forked run should hit the cache: %+v -> %+v", after, final)
	}
}

// opaqueGen wraps a generator while hiding its Forkable implementation, so
// Checkpoint must refuse the machine.
type opaqueGen struct{ g workload.Generator }

func (o *opaqueGen) Next(op *workload.Op) bool { return o.g.Next(op) }

// TestSweepScratchFallback: a sweep whose machine cannot be checkpointed
// (non-forkable generator) must transparently degrade to per-point scratch
// warming and still run every point.
func TestSweepScratchFallback(t *testing.T) {
	prev := SetWarmCache(true)
	defer SetWarmCache(prev)
	ResetCheckpointCache()

	ran := make([]int, 4)
	Sweep(SweepSpec{
		Label: "fallback-test",
		Base: func() *sim.Machine {
			rig := NewRig(RigOptions{Cores: 1, Scale: 8})
			rig.Machine.Attach(0, &opaqueGen{workload.NewStream(rig.Alloc(mb, rig.CXLNode), 0, 0, 1)})
			return rig.Machine
		},
		Warm:   10_000,
		Points: len(ran),
		Run: func(i int, m *sim.Machine) {
			m.Run(1000)
			ran[i]++
		},
	})
	for i, n := range ran {
		if n != 1 {
			t.Errorf("point %d ran %d times, want 1", i, n)
		}
	}
	if s := CheckpointCache(); s.Entries != 0 {
		t.Errorf("uncheckpointable sweep cached an image: %+v", s)
	}
}

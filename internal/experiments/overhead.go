package experiments

import (
	"runtime"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// OverheadResult is the §5.9 system-overhead measurement: the extra CPU
// time and memory PathFinder's snapshot-and-analyze loop adds on top of
// running the workload (the paper reports ~1.3% CPU and ~38 MB).
type OverheadResult struct {
	BaseSeconds     float64
	ProfiledSeconds float64
	CPUOverhead     float64 // fraction
	MemOverheadMB   float64
	Epochs          int
}

// RunOverhead measures the profiler's cost over a mixed workload.
func RunOverhead(cfg sim.Config, quick bool) *OverheadResult {
	opt := defaultChar(cfg, quick)
	epochs, epoch := 40, sim.Cycles(1_000_000)
	if quick {
		epochs, epoch = 16, 500_000
	}

	build := func() (*Rig, []core.AppRun) {
		rig := NewRig(RigOptions{Config: opt.cfg})
		apps := []core.AppRun{}
		for i, name := range []string{"LBM", "MCF", "YCSB-C"} {
			app, _ := workload.Lookup(name)
			node := rig.CXLNode
			if i == 0 {
				node = rig.LocalNode
			}
			reg := rig.Alloc(opt.ws/2, node)
			apps = append(apps, core.AppRun{Label: name, Core: i, Gen: app.Generator(reg, uint64(i+1))})
		}
		return rig, apps
	}

	// Baseline: same machine and workloads, no profiling.
	rig, apps := build()
	for _, a := range apps {
		rig.Machine.Attach(a.Core, a.Gen)
	}
	t0 := time.Now()
	for e := 0; e < epochs; e++ {
		rig.Machine.Run(epoch)
	}
	base := time.Since(t0).Seconds()

	// Profiled: full snapshot + PFBuilder + PFEstimator + PFAnalyzer +
	// materializer per epoch.
	rig2, apps2 := build()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	p, err := core.NewProfiler(core.Spec{
		Machine:     rig2.Machine,
		Apps:        apps2,
		EpochCycles: epoch,
		Epochs:      epochs,
	})
	if err != nil {
		panic(err)
	}
	t1 := time.Now()
	if _, err := p.Run(); err != nil {
		panic(err)
	}
	profiled := time.Since(t1).Seconds()
	runtime.ReadMemStats(&after)

	res := &OverheadResult{
		BaseSeconds:     base,
		ProfiledSeconds: profiled,
		Epochs:          epochs,
	}
	if base > 0 {
		res.CPUOverhead = (profiled - base) / base
		if res.CPUOverhead < 0 {
			res.CPUOverhead = 0
		}
	}
	if after.HeapAlloc > before.HeapAlloc {
		res.MemOverheadMB = float64(after.HeapAlloc-before.HeapAlloc) / (1 << 20)
	}
	return res
}

// Table renders the overhead summary.
func (r *OverheadResult) Table() *report.Table {
	t := &report.Table{
		Title: "§5.9 profiler overhead",
		Cols:  []string{"epochs", "base (s)", "profiled (s)", "CPU overhead", "memory (MB)"},
	}
	t.AddRow(report.Num(float64(r.Epochs)), report.Num(r.BaseSeconds),
		report.Num(r.ProfiledSeconds), report.Pct(r.CPUOverhead), report.Num(r.MemOverheadMB))
	return t
}

package experiments

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Table7Result is Case 1: PFBuilder's path classification for
// 649.fotonik3d_s and two snapshots of 602.gcc_s (Table 7).
type Table7Result struct {
	Labels []string // "FOTS", "GCCS-s1", "GCCS-s2"
	Maps   []*core.PathMap

	// Analysis headlines mirroring §5.2.
	FOTSHotCore    core.PathType
	FOTSHotUncore  core.PathType
	FOTSUncoreHWPF float64 // HWPF share of uncore accesses
	GCCSReqGrowth  float64 // total core-request growth s2/s1
}

// RunTable7 reproduces Table 7: both applications run with their working
// sets on CXL memory; PFBuilder classifies the per-path hit distribution
// from SB down to CXL memory.
func RunTable7(cfg sim.Config, quick bool) *Table7Result {
	opt := defaultChar(cfg, quick)

	// FOTS: one long stencil epoch.
	fotsApp, _ := workload.Lookup("FOTS")
	sFots := runPlacement(opt, fotsApp, 2)
	pmFots := core.BuildPathMap(sFots, []int{0})

	// GCCS: phased; profile epochs and pick snapshots from two phases.
	rig := NewRig(RigOptions{Config: opt.cfg})
	reg := rig.Alloc(opt.ws, 2)
	gccApp, _ := workload.Lookup("GCCS")
	p, err := core.NewProfiler(core.Spec{
		Machine:     rig.Machine,
		Apps:        []core.AppRun{{Label: "GCCS", Core: 0, Gen: gccApp.Generator(reg, 42)}},
		EpochCycles: opt.maxCycles / 64,
		Epochs:      16,
	})
	if err != nil {
		panic(err)
	}
	res, err := p.Run()
	if err != nil {
		panic(err)
	}
	// Pick the epoch with the fewest core requests as s1 and the most as
	// s2 — the paper compares a quiet and a busy phase.
	reqs := func(pm *core.PathMap) float64 {
		return pm.PathTotal(core.PathDRd) + pm.PathTotal(core.PathRFO) + pm.PathTotal(core.PathDWr)
	}
	lo, hi := 0, 0
	for i, r := range res {
		if reqs(r.PathMaps["GCCS"]) < reqs(res[lo].PathMaps["GCCS"]) {
			lo = i
		}
		if reqs(r.PathMaps["GCCS"]) > reqs(res[hi].PathMaps["GCCS"]) {
			hi = i
		}
	}
	pmS1 := res[lo].PathMaps["GCCS"]
	pmS2 := res[hi].PathMaps["GCCS"]

	out := &Table7Result{
		Labels: []string{"FOTS", "GCCS-s1", "GCCS-s2"},
		Maps:   []*core.PathMap{pmFots, pmS1, pmS2},
	}
	out.FOTSHotCore = pmFots.HotPathCore()
	out.FOTSHotUncore, out.FOTSUncoreHWPF = pmFots.HotPathUncore()
	if lowReqs := reqs(pmS1); lowReqs > 0 {
		out.GCCSReqGrowth = reqs(pmS2) / lowReqs
	}
	return out
}

// Table renders the Table 7 grid: levels as rows, (path x workload) as
// columns.
func (r *Table7Result) Table() *report.Table {
	t := &report.Table{
		Title: "Table 7: PFBuilder path classification over CXL memory",
		Cols:  []string{"Hit Location"},
	}
	for _, p := range core.Paths() {
		for _, lbl := range r.Labels {
			t.Cols = append(t.Cols, fmt.Sprintf("%s %s", p, lbl))
		}
	}
	for _, l := range core.Levels() {
		row := []string{l.String()}
		any := false
		for _, p := range core.Paths() {
			for _, pm := range r.Maps {
				v := pm.Load[p][l]
				if v != 0 {
					any = true
				}
				row = append(row, report.Num(v))
			}
		}
		if any {
			t.AddRow(row...)
		}
	}
	return t
}

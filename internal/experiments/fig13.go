package experiments

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/mem/tier"
	"pathfinder/internal/pmu"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Fig13App is one Case 7 workload's TPP-off/TPP-on measurement.
type Fig13App struct {
	Name string

	OpsOff, OpsOn             float64 // application work completed
	LocalHitsOff, LocalHitsOn float64 // core-PMU local-DRAM serves (DRd+RFO+HWPF)
	CXLHitsOff, CXLHitsOn     float64 // core-PMU CXL serves
	M2PLoadsOff, M2PLoadsOn   float64 // M2PCIe load responses
	M2PStoresOff, M2PStoresOn float64
	FlexLatOff, FlexLatOn     float64 // FlexBus+MC latency (cycles)
	CulpritQOff, CulpritQOn   float64 // culprit-path queue length
	CulpritStr                string
	Promoted                  int
}

// Fig13Result is Case 7: TPP on/off plus the Colloid comparison on GUPS.
type Fig13Result struct {
	Apps []Fig13App

	// GUPS throughput under plain Colloid vs the PathFinder-guided
	// dynamic variant (the paper reports a 1.1x improvement).
	ColloidOps, GuidedOps float64
}

// tppRun runs one workload over a tiered placement, optionally with a
// tiering manager, and returns the epoch-aggregated snapshot plus app ops.
func tppRun(opt charOptions, k core.Consts, makeGen func(r workload.Region) workload.Generator,
	pol mem.Policy, ws uint64, mode *tier.Config, guided bool,
	epochs int, epoch sim.Cycles) (*core.Snapshot, float64, int) {

	rig := NewRig(RigOptions{Config: opt.cfg})
	wlReg, _ := rig.AllocPolicy(ws, pol)
	counting := workload.NewCounting(makeGen(wlReg))
	rig.Machine.Attach(0, counting)

	var mgr *tier.Manager
	if mode != nil {
		var err error
		mgr, err = tier.NewManager(rig.Space, rig.Machine, rig.LocalNode, rig.CXLNode, *mode)
		if err != nil {
			panic(err)
		}
		rig.Machine.SetAccessHook(func(_ int, la uint64, _ bool) {
			mgr.ObserveAccess(la)
		})
	}

	cap := core.NewCapturer(rig.Machine)
	var agg *core.Snapshot
	for e := 0; e < epochs; e++ {
		rig.Machine.Run(epoch)
		s := cap.Capture()
		if mgr != nil {
			if mode.Mode == tier.ModeColloid {
				localLat, cxlLat, class := tierLatencies(s)
				if !guided {
					// Plain Colloid always uses the DRd latency.
					localLat, cxlLat = classLatency(s, core.PathDRd)
					_ = class
				}
				mgr.SetLatencies(localLat, cxlLat)
			}
			mgr.Tick()
		}
		// Keep only the last epoch's snapshot for steady-state analysis;
		// recycle the rest so the loop runs allocation-free.
		if agg != nil {
			agg.Release()
		}
		agg = s
	}
	promoted := 0
	if mgr != nil {
		promoted = mgr.Stats().Promoted
	}
	return agg, float64(counting.Total()), promoted
}

// classLatency measures the average local and CXL TOR residency of one
// request path from a snapshot.
func classLatency(s *core.Snapshot, p core.PathType) (localLat, cxlLat float64) {
	var occFam, insFam pmu.Family
	var scnLocal, scnCXL int
	switch p {
	case core.PathRFO:
		occFam, insFam = pmu.TOROccupancyIARFO, pmu.TORInsertsIARFO
		scnLocal, scnCXL = pmu.RFOMissLocal, pmu.RFOMissCXL
	case core.PathHWPF:
		occFam, insFam = pmu.TOROccupancyIADRdPref, pmu.TORInsertsIADRdPref
		scnLocal, scnCXL = pmu.ScnMissLocalDDR, pmu.ScnMissCXL
	default:
		occFam, insFam = pmu.TOROccupancyIADRd, pmu.TORInsertsIADRd
		scnLocal, scnCXL = pmu.ScnMissLocalDDR, pmu.ScnMissCXL
	}
	if ins := s.CHASum(insFam[scnLocal]); ins > 0 {
		localLat = s.CHASum(occFam[scnLocal]) / ins
	}
	if ins := s.CHASum(insFam[scnCXL]); ins > 0 {
		cxlLat = s.CHASum(occFam[scnCXL]) / ins
	}
	return localLat, cxlLat
}

// tierLatencies implements the PathFinder-guided selection: use the CHA
// miss ratios to find the dominant request type this phase and return its
// per-tier latency (§5.8's dynamic TPP+Colloid).
func tierLatencies(s *core.Snapshot) (localLat, cxlLat float64, class core.PathType) {
	misses := map[core.PathType]float64{
		core.PathDRd:  s.CHASum(pmu.TORInsertsIADRd[pmu.ScnMiss]),
		core.PathRFO:  s.CHASum(pmu.TORInsertsIARFO[pmu.RFOMiss]),
		core.PathHWPF: s.CHASum(pmu.TORInsertsIADRdPref[pmu.ScnMiss]),
	}
	class = core.PathDRd
	for p, v := range misses {
		if v > misses[class] {
			class = p
		}
	}
	localLat, cxlLat = classLatency(s, class)
	return localLat, cxlLat, class
}

// serveCounts extracts local and CXL serve counts over DRd+RFO+HWPF.
func serveCounts(s *core.Snapshot) (local, cxl float64) {
	for _, fam := range []pmu.Family{pmu.OCRDemandDataRd, pmu.OCRRFO,
		pmu.OCRL1DHWPF, pmu.OCRL2HWPFDRd, pmu.OCRL2HWPFRFO} {
		local += s.CoreFamilySum([]int{0}, fam, pmu.ScnMissLocalDDR)
		cxl += s.CoreFamilySum([]int{0}, fam, pmu.ScnMissCXL)
	}
	return local, cxl
}

// RunFig13 reproduces Figure 13 and the Case 7 analyses.
func RunFig13(cfg sim.Config, quick bool) *Fig13Result {
	opt := defaultChar(cfg, quick)
	k := core.ConstsFor(opt.cfg)
	epochs, epoch := 24, sim.Cycles(2_500_000)
	if quick {
		epochs, epoch = 16, 1_000_000
	}
	tppCfg := tier.DefaultConfig()
	tppCfg.MaxMigrationsPerTick = 256

	type spec struct {
		name string
		gen  func(r workload.Region) workload.Generator
		pol  mem.Policy
		ws   uint64
	}
	specs := []spec{
		{
			name: "YCSB-C (zipf, 4:1)",
			gen: func(r workload.Region) workload.Generator {
				return workload.NewZipf(r, 0.99, 1.0, 4, 20, 3)
			},
			pol: mem.Interleave{A: 0, B: 2, RatioA: 4, RatioB: 1},
			ws:  opt.ws,
		},
		{
			name: "GUPS (24/72 hot set, 90%)",
			gen: func(r workload.Region) workload.Generator {
				g := workload.NewGUPS(r, 2, 1.0/3.0, 0.9, 5)
				g.Batch = 8 // HPCC-style pipelined updates
				return g
			},
			pol: mem.Interleave{A: 0, B: 2, RatioA: 4, RatioB: 1},
			ws:  opt.ws + opt.ws/8,
		},
		{
			name: "649.fotonik3d_s (2:1)",
			gen: func(r workload.Region) workload.Generator {
				g := workload.NewStencil(r, 6, 5)
				g.Reuse = 4
				return g
			},
			pol: mem.Interleave{A: 0, B: 2, RatioA: 2, RatioB: 1},
			ws:  opt.ws,
		},
	}

	out := &Fig13Result{}
	for _, sp := range specs {
		sOff, opsOff, _ := tppRun(opt, k, sp.gen, sp.pol, sp.ws, nil, false, epochs, epoch)
		sOn, opsOn, promoted := tppRun(opt, k, sp.gen, sp.pol, sp.ws, &tppCfg, false, epochs, epoch)

		a := Fig13App{Name: sp.name, OpsOff: opsOff, OpsOn: opsOn, Promoted: promoted}
		a.LocalHitsOff, a.CXLHitsOff = serveCounts(sOff)
		a.LocalHitsOn, a.CXLHitsOn = serveCounts(sOn)
		a.M2PLoadsOff = sOff.M2P(0, pmu.M2PTxInsertsBL)
		a.M2PLoadsOn = sOn.M2P(0, pmu.M2PTxInsertsBL)
		a.M2PStoresOff = sOff.M2P(0, pmu.M2PTxInsertsAK)
		a.M2PStoresOn = sOn.M2P(0, pmu.M2PTxInsertsAK)
		flexLat := func(s *core.Snapshot) float64 {
			if ins := s.M2P(0, pmu.M2PRxInserts); ins > 0 {
				return s.M2P(0, pmu.M2PRxOccupancy)/ins + k.LinkTransit
			}
			return 0
		}
		a.FlexLatOff = flexLat(sOff)
		a.FlexLatOn = flexLat(sOn)
		qrOff := core.AnalyzeQueues(sOff, []int{0}, 0, k)
		qrOn := core.AnalyzeQueues(sOn, []int{0}, 0, k)
		a.CulpritQOff = qrOff.Q[qrOff.CulpritPath][qrOff.CulpritComp]
		a.CulpritQOn = qrOn.Q[qrOff.CulpritPath][qrOff.CulpritComp]
		a.CulpritStr = qrOff.CulpritPath.String() + " on " + qrOff.CulpritComp.String()
		out.Apps = append(out.Apps, a)
	}

	// TPP+Colloid vs PathFinder-guided TPP+Colloid.  The paper's dynamic
	// variant replaces Colloid's fixed DRd latency with the latency of the
	// dominant request type; the difference shows on write-dominated
	// phases, where DRd latency samples are too sparse to steer migration.
	colloidCfg := tppCfg
	colloidCfg.Mode = tier.ModeColloid
	wrGen := func(r workload.Region) workload.Generator {
		g := workload.NewStream(r, 2, 1.0, 9)
		g.Reuse = 2
		return g
	}
	wrPol := mem.Interleave{A: 0, B: 2, RatioA: 4, RatioB: 1}
	_, out.ColloidOps, _ = tppRun(opt, k, wrGen, wrPol, opt.ws, &colloidCfg, false, epochs, epoch)
	_, out.GuidedOps, _ = tppRun(opt, k, wrGen, wrPol, opt.ws, &colloidCfg, true, epochs, epoch)
	return out
}

// Table renders the TPP comparison.
func (r *Fig13Result) Table() *report.Table {
	t := &report.Table{
		Title: "Figure 13 / Case 7: TPP off vs on",
		Cols: []string{"workload", "ops off", "ops on", "speedup",
			"local serves off->on", "CXL serves off->on",
			"M2P loads off->on", "flex lat off->on", "culprit", "culprit Q off->on", "promoted"},
	}
	for _, a := range r.Apps {
		speed := 0.0
		if a.OpsOff > 0 {
			speed = a.OpsOn / a.OpsOff
		}
		t.AddRow(a.Name, report.Num(a.OpsOff), report.Num(a.OpsOn), report.Ratio(speed),
			report.Num(a.LocalHitsOff)+" -> "+report.Num(a.LocalHitsOn),
			report.Num(a.CXLHitsOff)+" -> "+report.Num(a.CXLHitsOn),
			report.Num(a.M2PLoadsOff)+" -> "+report.Num(a.M2PLoadsOn),
			report.Num(a.FlexLatOff)+" -> "+report.Num(a.FlexLatOn),
			a.CulpritStr,
			report.Num(a.CulpritQOff)+" -> "+report.Num(a.CulpritQOn),
			fmt.Sprint(a.Promoted))
	}
	return t
}

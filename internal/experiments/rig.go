// Package experiments contains the reproduction harness: one function per
// table/figure of the paper's characterization (§3) and evaluation (§5)
// sections, shared by cmd/pfbench and the repository's benchmark suite.
// DESIGN.md's per-experiment index maps each function to its paper
// artifact.
package experiments

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Rig is an assembled machine plus its memory regions, ready to run
// workloads placed on either tier.
type Rig struct {
	Machine *sim.Machine
	Space   *mem.AddressSpace
	Consts  core.Consts

	LocalNode, RemoteNode, CXLNode mem.NodeID
}

// RigOptions shape a test machine.
type RigOptions struct {
	Config sim.Config // zero value means sim.SPR()
	Cores  int        // override core count (0 keeps config)
	Scale  int        // LLC/slice shrink factor for fast runs (0 = 1)
}

// NewRig builds a machine with one local, one remote, and one CXL node.
func NewRig(opt RigOptions) *Rig {
	cfg := opt.Config
	if cfg.Name == "" {
		cfg = sim.SPR()
	}
	if opt.Cores > 0 {
		cfg.Cores = opt.Cores
	}
	if opt.Scale > 1 {
		cfg.LLCSize /= opt.Scale
		cfg.LLCSlices /= opt.Scale
		if cfg.LLCSlices < cfg.SNCClusters {
			cfg.LLCSlices = cfg.SNCClusters
		}
	}
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 64 << 30},
		{ID: 1, Kind: mem.RemoteDRAM, Socket: 1, Capacity: 64 << 30},
		{ID: 2, Kind: mem.CXLDRAM, Device: 0, Capacity: 64 << 30},
	})
	m := sim.New(cfg, as)
	m.SetLanes(LaneBudget())
	return &Rig{
		Machine:    m,
		Space:      as,
		Consts:     core.ConstsFor(cfg),
		LocalNode:  0,
		RemoteNode: 1,
		CXLNode:    2,
	}
}

// Alloc reserves a region on one node, panicking on failure (experiment
// rigs size their nodes generously; failure is a programming error).
func (r *Rig) Alloc(size uint64, node mem.NodeID) workload.Region {
	reg, err := r.Space.Alloc(size, mem.Fixed(node))
	if err != nil {
		panic(fmt.Sprintf("experiments: alloc %d on node %d: %v", size, node, err))
	}
	return workload.Region{Base: reg.Base, Size: reg.Size}
}

// AllocPolicy reserves a region with an arbitrary placement policy.
func (r *Rig) AllocPolicy(size uint64, pol mem.Policy) (workload.Region, mem.Region) {
	reg, err := r.Space.Alloc(size, pol)
	if err != nil {
		panic(fmt.Sprintf("experiments: alloc %d: %v", size, err))
	}
	return workload.Region{Base: reg.Base, Size: reg.Size}, reg
}

const (
	kb = uint64(1) << 10
	mb = uint64(1) << 20
)

// cyclesToNS converts cycles to nanoseconds at the rig's clock.
func (r *Rig) cyclesToNS(c float64) float64 {
	return c / r.Machine.Config().GHz
}

package experiments

import (
	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// PoolResult is the pooled-memory extension experiment: the paper's
// introduction motivates multi-device CXL pools; here the same aggregate
// working set is served by one versus two Type-3 devices, and PathFinder's
// estimator attributes stall across the FlexBus root complexes (the
// multi-RC loops of Algorithm 2).
type PoolResult struct {
	Devices    []int
	Bandwidth  []float64 // delivered GB/s
	AvgLatency []float64 // average load-to-use cycles
	DevLoads   [][]string
	StallSplit []float64 // device-0 share of attributed CXL-DIMM stall
}

// RunPool measures bandwidth and latency scaling from one to two pooled
// devices under an aggregate streaming load.
func RunPool(cfg sim.Config, quick bool) *PoolResult {
	epoch := sim.Cycles(4_000_000)
	if quick {
		epoch = 1_500_000
	}
	devCounts := []int{1, 2}
	out := &PoolResult{
		Devices:    make([]int, len(devCounts)),
		Bandwidth:  make([]float64, len(devCounts)),
		AvgLatency: make([]float64, len(devCounts)),
		DevLoads:   make([][]string, len(devCounts)),
		StallSplit: make([]float64, len(devCounts)),
	}
	runIndexed("pool", len(devCounts), func(di int) {
		devs := devCounts[di]
		c := cfg
		c.CXLDevices = devs
		c.LLCSize /= 4
		c.LLCSlices /= 4
		nodes := []mem.Node{{ID: 0, Kind: mem.LocalDRAM, Capacity: 64 << 30}}
		for d := 0; d < devs; d++ {
			nodes = append(nodes, mem.Node{ID: mem.NodeID(d + 1), Kind: mem.CXLDRAM,
				Device: d, Capacity: 64 << 30})
		}
		as := mem.NewAddressSpace(12, nodes)
		m := sim.New(c, as)
		m.SetLanes(LaneBudget())
		k := core.ConstsFor(c)

		// Twelve streaming cores, working sets striped across the pool.
		nCores := 12
		for i := 0; i < nCores; i++ {
			node := mem.NodeID(i%devs + 1)
			reg, err := as.Alloc(16*mb, mem.Fixed(node))
			if err != nil {
				panic(err)
			}
			g := workload.NewStream(workload.Region{Base: reg.Base, Size: reg.Size}, 0, 0, uint64(i+1))
			m.Attach(i, g)
		}
		cap := core.NewCapturer(m)
		m.Run(epoch)
		s := cap.Capture()

		var lines, lat, cnt float64
		for d := 0; d < devs; d++ {
			lines += s.CXL(d, pmu.CXLDevCASRd)
		}
		for i := 0; i < nCores; i++ {
			lat += s.Core(i, pmu.MemTransLoadLatency)
			cnt += s.Core(i, pmu.MemTransLoadCount)
		}
		secs := float64(epoch) / (c.GHz * 1e9)
		out.Devices[di] = devs
		out.Bandwidth[di] = lines * 64 / secs / 1e9
		if cnt > 0 {
			out.AvgLatency[di] = lat / cnt
		}
		var loads []string
		for d := 0; d < devs; d++ {
			loads = append(loads, m.DevLoad(d).String())
		}
		out.DevLoads[di] = loads

		// PFEstimator attributes per-device stall via each RC's counters.
		bd0 := core.EstimateStalls(s, nil, 0, k)
		total := bd0.Stall[core.PathDRd][core.CompCXLDIMM] + bd0.Stall[core.PathHWPF][core.CompCXLDIMM]
		split := 1.0
		if devs == 2 {
			bd1 := core.EstimateStalls(s, nil, 1, k)
			other := bd1.Stall[core.PathDRd][core.CompCXLDIMM] + bd1.Stall[core.PathHWPF][core.CompCXLDIMM]
			if total+other > 0 {
				split = total / (total + other)
			}
		}
		out.StallSplit[di] = split
		s.Release()
	})
	return out
}

// Table renders the pooling comparison.
func (r *PoolResult) Table() *report.Table {
	t := &report.Table{
		Title: "Extension: pooled CXL devices (aggregate stream, 12 cores)",
		Cols:  []string{"devices", "bandwidth (GB/s)", "avg load latency (cyc)", "DevLoad classes", "dev0 stall share"},
	}
	for i := range r.Devices {
		loads := ""
		for j, l := range r.DevLoads[i] {
			if j > 0 {
				loads += ", "
			}
			loads += l
		}
		t.AddRow(report.Num(float64(r.Devices[i])), report.Num(r.Bandwidth[i]),
			report.Num(r.AvgLatency[i]), loads, report.Pct(r.StallSplit[i]))
	}
	return t
}

package experiments

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/tsdb"
	"pathfinder/internal/workload"
)

// Fig11Result is Case 5: bandwidth partitioning among concurrent CXL
// mFlows.  When the FlexBus+MC saturates, each flow's achieved bandwidth
// tracks its CXL request frequency — the paper reports a Pearson
// correlation of 0.998 — so PFBuilder's request counts let PathFinder
// infer runtime bandwidth allocation.
type Fig11Result struct {
	Scenario   string
	Solo       []float64 // MB/s per instance running alone
	Contended  []float64 // MB/s per instance running together
	ReqFreq    []float64 // CXL requests per second per instance (contended)
	Pearson    float64
	CulpritStr string
}

// runFig11Scenario measures four instances of one shape with different
// intensities, solo and contended.  GUPS instances are multi-threaded
// (like the paper's), since a single dependent-update thread cannot reach
// FlexBus saturation.
func runFig11Scenario(opt charOptions, k core.Consts, shape string, epoch sim.Cycles) *Fig11Result {
	thinks := []uint16{24, 16, 8, 0} // intensity ladder
	gupsBatch := []int{4, 8, 16, 16}
	threads := 1
	if shape == "GUPS" {
		threads = 3
	}
	makeGens := func(rig *Rig, i int) []*workload.Counting {
		out := make([]*workload.Counting, threads)
		for th := 0; th < threads; th++ {
			reg := rig.Alloc(opt.ws/8, 2)
			seed := uint64(31 + i*4 + th)
			var g workload.Generator
			if shape == "MBW" {
				st := workload.NewStream(reg, thinks[i], 0.25, seed)
				st.Reuse = 2
				g = st
			} else {
				gu := workload.NewGUPS(reg, thinks[i]/8, 0, 0, seed)
				gu.Batch = gupsBatch[i]
				g = gu
			}
			out[th] = workload.NewCounting(g)
		}
		return out
	}
	secs := func(c sim.Cycles, cfg sim.Config) float64 { return float64(c) / (cfg.GHz * 1e9) }
	bw := func(gens []*workload.Counting, dur sim.Cycles) float64 {
		var bytes float64
		for _, g := range gens {
			bytes += float64(g.Loads+g.Stores) * 64
		}
		return bytes / secs(dur, opt.cfg) / 1e6
	}

	res := &Fig11Result{Scenario: shape}

	// Solo bandwidths: four independent rigs, fanned out.
	res.Solo = make([]float64, 4)
	runIndexed("fig11", 4, func(i int) {
		rig := NewRig(RigOptions{Config: opt.cfg})
		gens := makeGens(rig, i)
		for th, g := range gens {
			rig.Machine.Attach(th, g)
		}
		rig.Machine.Run(epoch)
		res.Solo[i] = bw(gens, epoch)
	})

	// Contended: all four instances share the CXL device.
	rig := NewRig(RigOptions{Config: opt.cfg})
	all := make([][]*workload.Counting, 4)
	for i := 0; i < 4; i++ {
		all[i] = makeGens(rig, i)
		for th, g := range all[i] {
			rig.Machine.Attach(i*threads+th, g)
		}
	}
	cap := core.NewCapturer(rig.Machine)
	rig.Machine.Run(epoch)
	s := cap.Capture()
	for i := 0; i < 4; i++ {
		res.Contended = append(res.Contended, bw(all[i], epoch))
		cores := make([]int, threads)
		for th := range cores {
			cores[th] = i*threads + th
		}
		pm := core.BuildPathMap(s, cores)
		res.ReqFreq = append(res.ReqFreq, pm.CXLTraffic()/secs(epoch, opt.cfg))
	}
	r, err := tsdb.Pearson(res.ReqFreq, res.Contended)
	if err == nil {
		res.Pearson = r
	}
	qr := core.AnalyzeQueues(s, nil, 0, k)
	res.CulpritStr = qr.CulpritPath.String() + " on " + qr.CulpritComp.String()
	s.Release()
	return res
}

// RunFig11 reproduces Figure 11 with the MBW and GUPS contention scenarios.
func RunFig11(cfg sim.Config, quick bool) []*Fig11Result {
	opt := defaultChar(cfg, quick)
	k := core.ConstsFor(opt.cfg)
	epoch := sim.Cycles(6_000_000)
	if quick {
		epoch = 1_500_000
	}
	return []*Fig11Result{
		runFig11Scenario(opt, k, "MBW", epoch),
		runFig11Scenario(opt, k, "GUPS", epoch),
	}
}

// Table renders one scenario.
func (r *Fig11Result) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Figure 11 (%s x4): bandwidth partition; Pearson(req freq, bandwidth) = %.3f; culprit: %s",
			r.Scenario, r.Pearson, r.CulpritStr),
		Cols: []string{"instance", "solo MB/s", "contended MB/s", "degradation", "CXL req/s"},
	}
	for i := range r.Solo {
		deg := 0.0
		if r.Solo[i] > 0 {
			deg = 1 - r.Contended[i]/r.Solo[i]
		}
		t.AddRow(fmt.Sprintf("%s-%d", r.Scenario, i+1),
			report.Num(r.Solo[i]), report.Num(r.Contended[i]),
			report.Pct(deg), report.Num(r.ReqFreq[i]))
	}
	return t
}

package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/obs"
)

// The experiment layer fans independent Machine runs across a worker
// pool.  Every Machine is single-goroutine internally and every rig in
// this package is built fresh per run (own AddressSpace, own PMU banks,
// fixed workload seeds), so runs never share mutable state and each
// one is deterministic in isolation.  Determinism of the *aggregate*
// result then only requires that results land in slots keyed by loop
// index rather than by completion order — which is what runIndexed
// guarantees.  Serial and parallel runs therefore produce byte-identical
// counters (enforced by TestSerialParallelIdentical).

// parallelism is the worker-pool width used by runIndexed.  Zero or
// negative means "one worker per available CPU".
var parallelism atomic.Int64

// SetParallelism sets the number of worker goroutines used to fan out
// independent experiment runs.  n <= 0 restores the default
// (GOMAXPROCS).  It returns the previous setting so callers can
// restore it.
func SetParallelism(n int) int {
	return int(parallelism.Swap(int64(n)))
}

// Parallelism reports the effective worker count.
func Parallelism() int {
	n := int(parallelism.Load())
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// laneOverride pins every rig's window-lane count when nonzero
// (see SetLanes); zero means the auto budget below.
var laneOverride atomic.Int64

// SetLanes overrides the per-machine window-lane setting experiment rigs
// are built with: n > 0 pins that many lanes, -1 forces engine dispatch
// only, and 0 restores the auto budget.  It returns the previous setting.
func SetLanes(n int) int {
	return int(laneOverride.Swap(int64(n)))
}

// LaneBudget is the window-lane count experiment rigs run with.  The
// runner pool already fans Parallelism() machines across the CPUs, so
// under the auto budget each machine gets GOMAXPROCS/Parallelism() worker
// lanes — at least 1, the sequential per-core sweep — rather than every
// machine claiming GOMAXPROCS lanes and oversubscribing the box.  Lane
// count never changes results (digests are lane-invariant by
// construction, DESIGN.md §12), only scheduling.
func LaneBudget() int {
	if n := int(laneOverride.Load()); n != 0 {
		return n
	}
	lanes := runtime.GOMAXPROCS(0) / Parallelism()
	if lanes < 1 {
		lanes = 1
	}
	return lanes
}

// workerMetrics returns the dispatch counter and the per-worker busy-time
// counter of the pool, published to the process-wide registry so
// `pathfinder -serve` exposes runner utilization mid-flight.
func workerMetrics(w int) (tasks, busy *obs.Counter) {
	tasks = obs.Default.Counter("pf_runner_tasks_total", "experiment runs completed by the pool")
	busy = obs.Default.Counter(
		"pf_runner_busy_ns{worker=\""+strconv.Itoa(w)+"\"}",
		"wall-clock nanoseconds each pool worker spent running experiments")
	return tasks, busy
}

// runIndexed invokes fn(0..n-1), possibly concurrently, and returns
// once every call has completed.  Each index runs exactly once; callers
// store results into pre-sized slices at their own index, which keeps
// result ordering identical to a serial loop regardless of scheduling.
// A panic in any fn is re-raised on the calling goroutine (first one
// wins, by index) so experiment bugs surface the same way they would
// serially.
//
// label names the experiment in CPU-profile label sets: pprof labels do
// not cross goroutine spawns, so each worker applies its own
// {experiment, worker} labels — `pfbench -cpuprofile` samples then
// attribute to experiment names.
func runIndexed(label string, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		tasks, busy := workerMetrics(0)
		pprof.Do(context.Background(), pprof.Labels("experiment", label, "worker", "0"),
			func(context.Context) {
				for i := 0; i < n; i++ {
					t0 := time.Now()
					fn(i)
					busy.Add(uint64(time.Since(t0)))
					tasks.Inc()
				}
			})
		return
	}

	panics := make([]any, n)
	var panicked atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			tasks, busy := workerMetrics(w)
			pprof.Do(context.Background(),
				pprof.Labels("experiment", label, "worker", strconv.Itoa(w)),
				func(context.Context) {
					for {
						i := int(next.Add(1)) - 1
						if i >= n {
							return
						}
						func() {
							defer func() {
								if r := recover(); r != nil {
									panics[i] = r
									panicked.Store(true)
								}
							}()
							t0 := time.Now()
							fn(i)
							busy.Add(uint64(time.Since(t0)))
							tasks.Inc()
						}()
					}
				})
		}(w)
	}
	wg.Wait()
	if panicked.Load() {
		for i, p := range panics {
			if p != nil {
				panic(fmt.Sprintf("experiments: run %d of %d panicked: %v", i, n, p))
			}
		}
	}
}

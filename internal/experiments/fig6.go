package experiments

import (
	"pathfinder/internal/core"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// fig6Apps are the six applications of Figure 6.
var fig6Apps = []string{"FFT", "RAY", "BARN", "FRE", "BFS", "RADIX"}

// Fig6Result is Case 2: the PFEstimator breakdown of CXL-induced stall
// cycles across SB, L1D, LFB, L2, LLC, CHA, FlexBus+MC and the CXL DIMM,
// per path, per application.
type Fig6Result struct {
	Apps   []string
	Stalls []*core.StallBreakdown
}

// RunFig6 runs each application with its working set on CXL memory and
// back-propagates the stall attribution.
func RunFig6(cfg sim.Config, quick bool) *Fig6Result {
	opt := defaultChar(cfg, quick)
	k := core.ConstsFor(opt.cfg)
	out := &Fig6Result{Apps: fig6Apps,
		Stalls: make([]*core.StallBreakdown, len(fig6Apps))}
	runIndexed("fig6", len(fig6Apps), func(i int) {
		app, ok := workload.Lookup(fig6Apps[i])
		if !ok {
			panic("experiments: unknown app " + fig6Apps[i])
		}
		s := runPlacement(opt, app, 2)
		out.Stalls[i] = core.EstimateStalls(s, []int{0}, 0, k)
	})
	return out
}

// Table renders per-app, per-path component shares (the Figure 6 bars).
func (r *Fig6Result) Table() *report.Table {
	t := &report.Table{
		Title: "Figure 6: CXL-induced stall breakdown (share per component)",
		Cols:  []string{"app", "path"},
	}
	for _, c := range core.Components() {
		t.Cols = append(t.Cols, c.String())
	}
	for i, app := range r.Apps {
		bd := r.Stalls[i]
		for _, p := range core.Paths() {
			if bd.Total(p) == 0 {
				continue
			}
			row := []string{app, p.String()}
			for _, c := range core.Components() {
				row = append(row, report.Pct(bd.Share(p, c)))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// DownstreamShare returns the average FlexBus+MC + CXL DIMM share of the
// DRd stall across apps — the paper's headline that the uncore dominates.
func (r *Fig6Result) DownstreamShare() float64 {
	var sum float64
	n := 0
	for _, bd := range r.Stalls {
		if bd.Total(core.PathDRd) == 0 {
			continue
		}
		sum += bd.Share(core.PathDRd, core.CompFlexBusMC) + bd.Share(core.PathDRd, core.CompCXLDIMM)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

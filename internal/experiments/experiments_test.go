package experiments

import (
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/sim"
)

// The experiment tests assert the paper's qualitative shapes (who wins, by
// roughly what factor, where crossovers fall) on quick runs.  The slower
// sweeps are skipped under -short.

func TestMLCShape(t *testing.T) {
	r := RunMLC(sim.SPR(), true)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	local, numa, cxl := r.Rows[0], r.Rows[1], r.Rows[2]
	// §2.3: 103.2 ns / 131.1 GB/s local; 163.6 / 94.4 NUMA; 355.3 / 17.6 CXL.
	within := func(got, want, tol float64) bool {
		return got > want*(1-tol) && got < want*(1+tol)
	}
	if !within(local.LatencyNS, 103.2, 0.10) {
		t.Errorf("local latency %.1f ns, want ~103", local.LatencyNS)
	}
	if !within(numa.LatencyNS, 163.6, 0.10) {
		t.Errorf("NUMA latency %.1f ns, want ~164", numa.LatencyNS)
	}
	if !within(cxl.LatencyNS, 355.3, 0.10) {
		t.Errorf("CXL latency %.1f ns, want ~355", cxl.LatencyNS)
	}
	if !within(local.BandwidthGB, 131.1, 0.15) {
		t.Errorf("local bandwidth %.1f GB/s, want ~131", local.BandwidthGB)
	}
	if !within(cxl.BandwidthGB, 17.6, 0.15) {
		t.Errorf("CXL bandwidth %.1f GB/s, want ~17.6", cxl.BandwidthGB)
	}
	if !(cxl.LatencyNS > numa.LatencyNS && numa.LatencyNS > local.LatencyNS) {
		t.Error("latency ordering violated")
	}
	if !(local.BandwidthGB > numa.BandwidthGB && numa.BandwidthGB > cxl.BandwidthGB) {
		t.Error("bandwidth ordering violated")
	}
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep")
	}
	r := RunFig2(sim.SPR(), true)
	// CXL raises miss-outstanding cycles and the response wait (Fig 2 b).
	for _, name := range []string{"cycle_activity.cycles_l1d_miss", "load_resp_wait",
		"cycle_activity.cycles_l2_miss"} {
		idx := r.Main.MetricIndex(name)
		if idx < 0 {
			t.Fatalf("metric %q missing", name)
		}
		if ratio := r.Main.MeanRatio(idx); ratio < 1.2 {
			t.Errorf("%s CXL/local = %.2f, want > 1.2", name, ratio)
		}
	}
	// WR-only SB stalls grow under CXL (paper: ~2x).
	idx := r.WrOnly.MetricIndex("sb_stall_frac")
	if ratio := r.WrOnly.MeanRatio(idx); ratio < 1.5 || ratio > 6 {
		t.Errorf("WR-only SB stall ratio = %.2f, want within [1.5, 6]", ratio)
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep")
	}
	r := RunFig3(sim.SPR(), true)
	// LLC stalls and DRd response grow; DRd misses grow (paper: 2.1x, 1.8x, 4.2x).
	for _, tc := range []struct {
		name string
		min  float64
	}{
		{"cycle_activity.stalls_l3_miss", 1.5},
		{"drd_l3_resp", 1.5},
		{"llc_miss_drd", 1.3},
	} {
		idx := r.MetricIndex(tc.name)
		if idx < 0 {
			t.Fatalf("metric %q missing", tc.name)
		}
		if ratio := r.MeanRatio(idx); ratio < tc.min {
			t.Errorf("%s ratio = %.2f, want > %.1f", tc.name, ratio, tc.min)
		}
	}
	// Misses are served by CXL, not local DRAM, in the CXL placement.
	iLocal := r.MetricIndex("serve_local_dram")
	iCXL := r.MetricIndex("serve_cxl")
	for a := range r.Apps {
		if r.CXL[a][iLocal] != 0 {
			t.Errorf("%s: CXL run served %f from local DRAM", r.Apps[a], r.CXL[a][iLocal])
		}
		if r.CXL[a][iCXL] == 0 {
			t.Errorf("%s: CXL run served nothing from CXL", r.Apps[a])
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep")
	}
	r := RunFig4(sim.SPR(), true)
	// Figure 4-a: CXL streams leave the IMC queues empty.
	iRPQ := r.MetricIndex("imc_rpq_occ")
	for a := range r.Apps {
		if r.CXL[a][iRPQ] != 0 {
			t.Errorf("%s: CXL run queued %f in the IMC RPQ", r.Apps[a], r.CXL[a][iRPQ])
		}
		if r.Local[a][iRPQ] == 0 {
			t.Errorf("%s: local run left the IMC RPQ idle", r.Apps[a])
		}
	}
	// CXL loads flow through the M2PCIe port only in the CXL placement.
	iCXLLoads := r.MetricIndex("cxl_loads")
	for a := range r.Apps {
		if r.Local[a][iCXLLoads] != 0 || r.CXL[a][iCXLLoads] == 0 {
			t.Errorf("%s: cxl_loads local=%f cxl=%f", r.Apps[a],
				r.Local[a][iCXLLoads], r.CXL[a][iCXLLoads])
		}
	}
}

func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep")
	}
	r := RunTable7(sim.SPR(), true)
	// §5.2: FOTS per-core hot path is DRd; HWPF dominates the uncore.
	if r.FOTSHotCore != core.PathDRd {
		t.Errorf("FOTS core hot path = %v, want DRd", r.FOTSHotCore)
	}
	if r.FOTSHotUncore != core.PathHWPF {
		t.Errorf("FOTS uncore hot path = %v, want HW PF", r.FOTSHotUncore)
	}
	if r.FOTSUncoreHWPF < 0.4 {
		t.Errorf("FOTS HWPF uncore share = %.2f, want > 0.4 (paper: 0.59)", r.FOTSUncoreHWPF)
	}
	// GCCS snapshots differ substantially in request volume (paper: 5.8x).
	if r.GCCSReqGrowth < 1.5 {
		t.Errorf("GCCS snapshot growth = %.2f, want > 1.5", r.GCCSReqGrowth)
	}
	// Every workload shows CXL-served traffic on the DRd path.
	for i, pm := range r.Maps {
		if pm.Load[core.PathDRd][core.LvlCXL] == 0 {
			t.Errorf("%s: no CXL DRd traffic", r.Labels[i])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("stall-breakdown sweep")
	}
	r := RunFig6(sim.SPR(), true)
	// Figure 6: FlexBus+MC and the CXL DIMM dominate the DRd stall
	// (paper: e.g. 42.7% + 40.3% for fft).
	if share := r.DownstreamShare(); share < 0.5 {
		t.Errorf("downstream stall share = %.2f, want > 0.5", share)
	}
	// All apps produce a DRd breakdown that sums to 1.
	for i, bd := range r.Stalls {
		if bd.Total(core.PathDRd) == 0 {
			t.Errorf("%s: empty DRd breakdown", r.Apps[i])
			continue
		}
		var sum float64
		for _, c := range core.Components() {
			sum += bd.Share(core.PathDRd, c)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: shares sum to %f", r.Apps[i], sum)
		}
	}
}

func TestFig78Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("interference sweep")
	}
	r := RunFig78(sim.SPR(), true)
	if len(r.Loads) != 5 {
		t.Fatalf("steps = %d", len(r.Loads))
	}
	// In-core CXL-induced stalls grow with the CXL share (paper: 1.7-2.4x).
	if g := r.CoreStallGrowth(); g < 1.5 {
		t.Errorf("core stall growth = %.2f, want > 1.5", g)
	}
	// FlexBus+MC queueing grows with the CXL share (Figure 8-d trend).
	flexIdx := -1
	for i, n := range r.Queues.Names {
		if n == "FlexBus+MC" {
			flexIdx = i
		}
	}
	n := len(r.Queues.X)
	if r.Queues.Y[flexIdx][n-1] <= r.Queues.Y[flexIdx][0] {
		t.Errorf("FlexBus queue did not grow: %v", r.Queues.Y[flexIdx])
	}
}

func TestFig910Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("contention sweep")
	}
	r := RunFig910(sim.SPR(), true)
	// Paper: throughput -77.4%; FlexBus latency 4.3x; L1D queue shrinks.
	if d := r.ThroughputDrop(); d < 0.4 {
		t.Errorf("throughput drop = %.2f, want > 0.4", d)
	}
	if g := r.FlexLatencyGrowth(); g < 1.5 {
		t.Errorf("FlexBus latency growth = %.2f, want > 1.5", g)
	}
	n := len(r.Queues.X)
	if r.Queues.Y[0][n-1] >= r.Queues.Y[0][0] {
		t.Errorf("L1D queue did not shrink under contention: %v", r.Queues.Y[0])
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth-partition sweep")
	}
	rs := RunFig11(sim.SPR(), true)
	for _, r := range rs {
		// Paper: Pearson(request frequency, bandwidth) = 0.998.
		if r.Pearson < 0.9 {
			t.Errorf("%s: Pearson = %.3f, want > 0.9", r.Scenario, r.Pearson)
		}
		// Contention degrades every instance, non-uniformly.
		minDeg, maxDeg := 1.0, 0.0
		for i := range r.Solo {
			if r.Solo[i] <= 0 {
				t.Fatalf("%s-%d: no solo bandwidth", r.Scenario, i)
			}
			d := 1 - r.Contended[i]/r.Solo[i]
			if d < minDeg {
				minDeg = d
			}
			if d > maxDeg {
				maxDeg = d
			}
		}
		if maxDeg < 0.3 {
			t.Errorf("%s: max degradation %.2f, want > 0.3", r.Scenario, maxDeg)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("locality sweep")
	}
	r := RunFig12(sim.SPR(), true)
	if len(r.Runs) != 3 {
		t.Fatalf("scenarios = %d", len(r.Runs))
	}
	for _, run := range r.Runs {
		if run.MissBefore <= 0 {
			t.Errorf("%s: no baseline misses", run.Label)
		}
		if run.Windows < 1 {
			t.Errorf("%s: no locality windows detected", run.Label)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("tiering sweep")
	}
	r := RunFig13(sim.SPR(), true)
	if len(r.Apps) != 3 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	for _, a := range r.Apps {
		// TPP shifts serves from CXL to local (Figure 13-a) and never
		// hurts throughput.
		if a.CXLHitsOn >= a.CXLHitsOff {
			t.Errorf("%s: CXL serves did not drop (%f -> %f)", a.Name, a.CXLHitsOff, a.CXLHitsOn)
		}
		if a.LocalHitsOn <= a.LocalHitsOff {
			t.Errorf("%s: local serves did not rise", a.Name)
		}
		if a.OpsOn < a.OpsOff*0.95 {
			t.Errorf("%s: TPP hurt throughput (%f -> %f)", a.Name, a.OpsOff, a.OpsOn)
		}
		if a.Promoted == 0 {
			t.Errorf("%s: nothing promoted", a.Name)
		}
	}
	// GUPS gains substantially (paper: 3.0x; broad band here).
	if g := r.Apps[1]; g.OpsOn/g.OpsOff < 1.15 {
		t.Errorf("GUPS TPP speedup = %.2f, want > 1.15", g.OpsOn/g.OpsOff)
	}
	// The PathFinder-guided Colloid variant beats plain Colloid (paper: 1.1x).
	if r.GuidedOps <= r.ColloidOps {
		t.Errorf("guided Colloid (%f) did not beat plain (%f)", r.GuidedOps, r.ColloidOps)
	}
}

func TestOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement")
	}
	r := RunOverhead(sim.SPR(), true)
	// The profiler must stay lightweight (paper: 1.3% CPU, 38 MB).  The
	// simulated bound is generous: the analyses must not add more than
	// 30% on top of pure simulation, and memory stays bounded.
	if r.CPUOverhead > 0.30 {
		t.Errorf("CPU overhead = %.1f%%, want < 30%%", r.CPUOverhead*100)
	}
	if r.MemOverheadMB > 200 {
		t.Errorf("memory overhead = %.0f MB, want < 200", r.MemOverheadMB)
	}
}

func TestRigHelpers(t *testing.T) {
	rig := NewRig(RigOptions{Cores: 2, Scale: 4})
	if rig.Machine.Cores() != 2 {
		t.Fatalf("cores = %d", rig.Machine.Cores())
	}
	r := rig.Alloc(mb, rig.CXLNode)
	if r.Size != mb {
		t.Fatalf("alloc size = %d", r.Size)
	}
	if rig.Space.KindOf(r.Base).String() != "cxl" {
		t.Fatal("allocation not on CXL node")
	}
	if ns := rig.cyclesToNS(200); ns != 100 {
		t.Fatalf("cyclesToNS(200) = %v at 2 GHz", ns)
	}
}

func TestTMABaselineShape(t *testing.T) {
	r := RunTMABaseline(sim.SPR(), true)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	local, cxl := r.Rows[0], r.Rows[1]
	// The paper's argument: TMA's verdict is the same memory-bound label
	// for both placements, while PathFinder separates them.
	if local.TMABottleneck != cxl.TMABottleneck {
		t.Fatalf("TMA distinguished placements: %q vs %q", local.TMABottleneck, cxl.TMABottleneck)
	}
	if local.PFCXLFraction != 0 {
		t.Fatalf("PathFinder attributed %v CXL waiting to a local run", local.PFCXLFraction)
	}
	if cxl.PFCXLFraction < 0.8 {
		t.Fatalf("PathFinder CXL share = %v, want > 0.8", cxl.PFCXLFraction)
	}
	if cxl.PFTopComponent != "FlexBus+MC" && cxl.PFTopComponent != "CXL DIMM" {
		t.Fatalf("PF top component = %q", cxl.PFTopComponent)
	}
}

func TestPoolShape(t *testing.T) {
	if testing.Short() {
		t.Skip("pooling sweep")
	}
	r := RunPool(sim.SPR(), true)
	if len(r.Devices) != 2 {
		t.Fatalf("configs = %d", len(r.Devices))
	}
	// Two devices should deliver substantially more bandwidth and lower
	// latency than one under the same aggregate load.
	if r.Bandwidth[1] < r.Bandwidth[0]*1.5 {
		t.Fatalf("pool bandwidth scaling: %v -> %v", r.Bandwidth[0], r.Bandwidth[1])
	}
	if r.AvgLatency[1] >= r.AvgLatency[0] {
		t.Fatalf("pool latency did not improve: %v -> %v", r.AvgLatency[0], r.AvgLatency[1])
	}
	// Stall attribution splits roughly evenly across the two RCs.
	if s := r.StallSplit[1]; s < 0.3 || s > 0.7 {
		t.Fatalf("dev0 stall share = %v, want ~0.5", s)
	}
}

func TestFaultsShape(t *testing.T) {
	r := RunFaults(sim.SPR(), true)
	if len(r.Rates) != len(r.Culprits) || len(r.Rates) != len(r.Sweep.X) {
		t.Fatalf("ragged sweep: %d rates, %d culprits, %d points",
			len(r.Rates), len(r.Culprits), len(r.Sweep.X))
	}
	for i, rate := range r.Rates {
		crc := r.At(i, faultColCRCErrors)
		retries := r.At(i, faultColRetries)
		if rate == 0 {
			if crc != 0 || retries != 0 {
				t.Errorf("healthy link counted %v CRC errors, %v retries", crc, retries)
			}
			continue
		}
		if crc == 0 || retries == 0 {
			t.Errorf("rate %v injected nothing (crc=%v retries=%v)", rate, crc, retries)
		}
		if r.At(i, faultColReplayKiB) == 0 {
			t.Errorf("rate %v replayed no bytes", rate)
		}
	}
	// Fault-domain localization: media-bound when healthy, link-bound once
	// the CRC rate reaches 1e-3.
	if r.Culprits[0] != "CXL DIMM" {
		t.Errorf("healthy culprit = %q, want CXL DIMM", r.Culprits[0])
	}
	for i, rate := range r.Rates {
		if rate >= 1e-3 && r.Culprits[i] != "FlexBus+MC" {
			t.Errorf("culprit at rate %v = %q, want FlexBus+MC", rate, r.Culprits[i])
		}
	}
	// Dev-timeout episodes only fire at the top rate.
	if n := len(r.Rates) - 1; r.At(n, faultColTimeouts) == 0 {
		t.Errorf("no device timeouts at rate %v", r.Rates[n])
	}
	if d := r.ThroughputDrop(); d <= 0.05 {
		t.Errorf("throughput drop = %.3f, want noticeable loss", d)
	}
}

func TestFaultsDeterministic(t *testing.T) {
	a := RunFaults(sim.SPR(), true)
	b := RunFaults(sim.SPR(), true)
	for col := range a.Sweep.Names {
		for i := range a.Sweep.X {
			if a.Sweep.Y[col][i] != b.Sweep.Y[col][i] {
				t.Fatalf("%s at rate %v differs across runs: %v vs %v",
					a.Sweep.Names[col], a.Rates[i], a.Sweep.Y[col][i], b.Sweep.Y[col][i])
			}
		}
	}
	for i := range a.Culprits {
		if a.Culprits[i] != b.Culprits[i] {
			t.Fatalf("culprit at rate %v differs: %q vs %q",
				a.Rates[i], a.Culprits[i], b.Culprits[i])
		}
	}
}

package experiments

import (
	"reflect"
	"testing"

	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// bankValues snapshots every PMU counter of every bank of a machine,
// keyed by bank name, after syncing all trackers.
func bankValues(m *sim.Machine) map[string][]uint64 {
	m.Sync()
	out := make(map[string][]uint64)
	for _, b := range m.Banks() {
		out[b.Name()] = b.Values()
	}
	return out
}

// runFixture builds a rig with a mixed local+CXL workload on several
// cores and runs it for a fixed horizon — enough traffic to exercise
// the engine's timing wheel, overflow heap, and every payload-dispatch
// site.
func runFixture(t *testing.T) map[string][]uint64 {
	t.Helper()
	rig := NewRig(RigOptions{Scale: 4})
	local := rig.Alloc(8*mb, rig.LocalNode)
	cxl := rig.Alloc(8*mb, rig.CXLNode)
	rig.Machine.Attach(0, workload.NewStream(cxl, 0, 0.2, 1))
	rig.Machine.Attach(1, workload.NewStream(local, 2, 0.1, 2))
	rig.Machine.Attach(2, workload.NewPointerChase(cxl, 1, 3))
	rig.Machine.Attach(3, workload.NewGUPS(cxl, 0, 0, 0, 4))
	rig.Machine.Run(400_000)
	return bankValues(rig.Machine)
}

// TestSameSeedIdentical: two machines with identical config, seeds, and
// horizon must produce bit-identical counters in every bank — the
// engine's (when, seq) total order leaves no room for nondeterminism.
func TestSameSeedIdentical(t *testing.T) {
	a := runFixture(t)
	b := runFixture(t)
	if len(a) == 0 {
		t.Fatal("no banks captured")
	}
	for name, av := range a {
		if !reflect.DeepEqual(av, b[name]) {
			t.Errorf("bank %s diverged between identical runs", name)
		}
	}
}

// TestSerialParallelIdentical: experiment entry points must return
// byte-identical results whether the machine runs fan out across one
// worker or many — the runner's index-slotted results make completion
// order invisible.
func TestSerialParallelIdentical(t *testing.T) {
	cfg := sim.SPR()

	prev := SetParallelism(1)
	defer SetParallelism(prev)
	serialFaults := RunFaults(cfg, true)
	serialMLC := RunMLC(cfg, true)

	SetParallelism(4)
	parallelFaults := RunFaults(cfg, true)
	parallelMLC := RunMLC(cfg, true)

	if !reflect.DeepEqual(serialFaults, parallelFaults) {
		t.Errorf("RunFaults diverged: serial %+v vs parallel %+v",
			serialFaults.Sweep.Y, parallelFaults.Sweep.Y)
	}
	if !reflect.DeepEqual(serialMLC, parallelMLC) {
		t.Errorf("RunMLC diverged: serial %+v vs parallel %+v",
			serialMLC.Rows, parallelMLC.Rows)
	}
}

// TestRunIndexedOrdering: results land at their own index regardless of
// worker count, and every index runs exactly once.
func TestRunIndexedOrdering(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		prev := SetParallelism(workers)
		const n = 97
		got := make([]int, n)
		runIndexed("test", n, func(i int) { got[i] = i + 1 })
		SetParallelism(prev)
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, v/(i+1))
			}
		}
	}
}

// TestRunIndexedPanic: a panic inside a worker must surface on the
// caller, not kill the process from a bare goroutine.
func TestRunIndexedPanic(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	defer func() {
		if recover() == nil {
			t.Fatal("panic in worker was swallowed")
		}
	}()
	runIndexed("test", 8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

package experiments

import (
	"sync"
	"sync/atomic"

	"pathfinder/internal/obs"
	"pathfinder/internal/sim"
)

// warmCacheOn gates the checkpoint-fork path of Sweep (see SetWarmCache).
// Off by default: the conservative mode warms every point from scratch,
// and `pfbench -warm-cache` (or a test) opts into forking.
var warmCacheOn atomic.Bool

// SetWarmCache toggles warm-prefix forking for Sweep matrices: when on,
// each sweep warms one machine, checkpoints it (cached under SweepSpec.Key
// for the process lifetime), and forks per config point; when off, every
// point warms from scratch.  Results are byte-identical either way —
// restore-equivalence is proven by digest in the golden suites — only
// wall-clock differs.  Returns the previous setting.
func SetWarmCache(on bool) bool { return warmCacheOn.Swap(on) }

// WarmCacheEnabled reports whether Sweep forks from warmed checkpoints.
func WarmCacheEnabled() bool { return warmCacheOn.Load() }

// SweepSpec describes a warm-then-fork experiment matrix: one machine is
// built and warmed to the barrier cycle, checkpointed once, and every
// config point runs on a fork of the frozen image instead of re-simulating
// the warm prefix from scratch.  The warm prefix amortizes across the whole
// matrix — a 16-point sweep whose points share a long warm phase pays for
// it once.
type SweepSpec struct {
	// Label names the sweep in the pool's pprof label sets and metrics.
	Label string

	// Key identifies the warmed image in the process-wide checkpoint
	// cache.  It must capture everything that determines the image —
	// machine spec, workload selection and seeds, warm cycles — because a
	// cache hit skips Base and Warm entirely.  Empty disables caching:
	// the sweep still warms once and forks per point, it just does not
	// keep the image for later sweeps.
	Key string

	// Base builds the machine and attaches its workloads, positioned at
	// cycle zero.  On a cache hit it is never called.
	Base func() *sim.Machine

	// Warm is the barrier cycle the shared prefix runs to before the
	// checkpoint is taken.
	Warm sim.Cycles

	// Points is the number of config points in the matrix.
	Points int

	// Run executes point i on a machine positioned exactly at the warm
	// barrier.  Runs may execute concurrently on the worker pool, one
	// machine each; the machine is recycled after Run returns, so no
	// references to it may escape.
	Run func(i int, m *sim.Machine)
}

// checkpointCache is the in-process warmed-image cache shared by pfbench's
// figure suite and chaos's run-twice replay.  Entries live for the process
// lifetime (a soak or bench run), keyed by SweepSpec.Key.
var checkpointCache = struct {
	mu sync.Mutex
	m  map[string]*sim.Checkpoint
}{m: make(map[string]*sim.Checkpoint)}

// checkpointMetrics are the pf_checkpoint_* series on the process-wide
// registry; `pathfinder -serve` republishes them under /status so soak runs
// can confirm prefix reuse is engaging.
func checkpointMetrics() (hits, misses, forks *obs.Counter, bytes *obs.Gauge) {
	hits = obs.Default.Counter("pf_checkpoint_cache_hits_total",
		"sweeps that reused a cached warmed checkpoint")
	misses = obs.Default.Counter("pf_checkpoint_cache_misses_total",
		"sweeps that had to warm a machine from scratch")
	forks = obs.Default.Counter("pf_checkpoint_forks_total",
		"machines forked from a warmed checkpoint")
	bytes = obs.Default.Gauge("pf_checkpoint_cache_bytes",
		"hot-state bytes held by cached warmed checkpoints")
	return
}

// CheckpointCacheStats is the /status view of the warmed-image cache.
type CheckpointCacheStats struct {
	Entries int    `json:"entries"`
	Bytes   int    `json:"bytes"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Forks   uint64 `json:"forks"`
}

// CheckpointCache reports the current cache contents and lifetime
// hit/miss/fork totals.
func CheckpointCache() CheckpointCacheStats {
	hits, misses, forks, _ := checkpointMetrics()
	s := CheckpointCacheStats{
		Hits:   hits.Value(),
		Misses: misses.Value(),
		Forks:  forks.Value(),
	}
	checkpointCache.mu.Lock()
	defer checkpointCache.mu.Unlock()
	for _, cp := range checkpointCache.m {
		s.Entries++
		s.Bytes += cp.Bytes()
	}
	return s
}

// ResetCheckpointCache drops every cached image (tests; memory pressure).
func ResetCheckpointCache() {
	checkpointCache.mu.Lock()
	checkpointCache.m = make(map[string]*sim.Checkpoint)
	checkpointCache.mu.Unlock()
	_, _, _, bytes := checkpointMetrics()
	bytes.Set(0)
}

// warmCheckpoint returns the warmed image for spec, from cache when keyed
// and present, else by building, warming, and checkpointing a machine.  A
// nil return means the machine cannot be checkpointed (pending closures or
// a non-forkable generator) and the sweep must run from scratch.
func warmCheckpoint(spec *SweepSpec) *sim.Checkpoint {
	hits, misses, _, bytes := checkpointMetrics()
	if spec.Key != "" {
		checkpointCache.mu.Lock()
		cp := checkpointCache.m[spec.Key]
		checkpointCache.mu.Unlock()
		if cp != nil {
			hits.Inc()
			return cp
		}
	}
	misses.Inc()
	m := spec.Base()
	if spec.Warm > 0 {
		m.Run(spec.Warm)
	}
	cp, err := m.Checkpoint()
	if err != nil {
		return nil
	}
	if spec.Key != "" {
		checkpointCache.mu.Lock()
		checkpointCache.m[spec.Key] = cp
		total := 0
		for _, c := range checkpointCache.m {
			total += c.Bytes()
		}
		checkpointCache.mu.Unlock()
		bytes.Set(float64(total))
	}
	return cp
}

// Sweep fans the config points of a warm-shared matrix across the worker
// pool.  With the warm cache enabled (SetWarmCache), one machine is warmed
// to the barrier, checkpointed, and every point runs on a fork of the
// frozen image; forked machines are recycled through a pool so
// steady-state forks reuse buffers (RestoreInto) instead of rebuilding
// (Restore).  With it disabled (the default), every point warms from
// scratch.
//
// Results are deterministic and identical to warming each point from
// scratch: restore-equivalence is proven by digest in the golden suites,
// and result ordering follows runIndexed's index-keyed contract.  If the
// warmed machine cannot be checkpointed — a pending Schedule closure or a
// generator without workload.Forkable — Sweep transparently degrades to
// per-point scratch warming and still produces identical results.
func Sweep(spec SweepSpec) {
	if spec.Points <= 0 {
		return
	}
	var cp *sim.Checkpoint
	if warmCacheOn.Load() {
		cp = warmCheckpoint(&spec)
	}
	if cp == nil {
		runIndexed(spec.Label, spec.Points, func(i int) {
			m := spec.Base()
			if spec.Warm > 0 {
				m.Run(spec.Warm)
			}
			spec.Run(i, m)
		})
		return
	}
	_, _, forks, _ := checkpointMetrics()
	var machines sync.Pool
	runIndexed(spec.Label, spec.Points, func(i int) {
		var m *sim.Machine
		if v := machines.Get(); v != nil {
			m = v.(*sim.Machine)
			if err := cp.RestoreInto(m); err != nil {
				m = cp.Restore()
			}
		} else {
			m = cp.Restore()
		}
		forks.Inc()
		spec.Run(i, m)
		machines.Put(m)
	})
}

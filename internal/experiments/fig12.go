package experiments

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Fig12Run is one co-location scenario of Case 6: 503.bwaves_r observed by
// PFMaterializer while co-runners launch mid-run.
type Fig12Run struct {
	Label      string
	MissBefore float64 // BWA mean LLC misses per epoch before the launch
	MissAfter  float64 // after
	Windows    int     // locality windows detected across the run
}

// Fig12Result is the full data-locality case study.
type Fig12Result struct {
	Runs []Fig12Run
}

// RunFig12 reproduces Figure 12: 503.bwaves_r runs on CXL memory; halfway
// through, a disturbance launches — (a) 519.lbm_r on local memory, (b)
// 554.roms_r on CXL memory, (c) a combination of three applications on
// both tiers — and PFMaterializer's cross-snapshot clustering reports the
// locality change.
func RunFig12(cfg sim.Config, quick bool) *Fig12Result {
	opt := defaultChar(cfg, quick)
	epochs := 24
	epoch := sim.Cycles(1_500_000)
	if quick {
		epochs = 16
		epoch = 600_000
	}

	type launch struct {
		app  string
		node mem.NodeID
		frac uint64
	}
	scenarios := []struct {
		label    string
		launches []launch
	}{
		{"with 519.lbm_r (local)", []launch{{"LBM", 0, 2}}},
		{"with 554.roms_r (CXL)", []launch{{"ROMS", 2, 2}}},
		{"with lbm+mcf+roms (mixed)", []launch{{"LBM", 0, 4}, {"MCF", 0, 4}, {"ROMS", 2, 4}}},
	}

	out := &Fig12Result{Runs: make([]Fig12Run, len(scenarios))}
	runIndexed("fig12", len(scenarios), func(si int) {
		sc := scenarios[si]
		rig := NewRig(RigOptions{Config: opt.cfg})
		// The observed app's working set is sized near the LLC so it has
		// cache reuse for the co-runners to disturb.
		bwaReg := rig.Alloc(uint64(opt.cfg.LLCSize), 2)
		bwaApp, _ := workload.Lookup("BWA")
		p, err := core.NewProfiler(core.Spec{
			Machine:     rig.Machine,
			Apps:        []core.AppRun{{Label: "BWA", Core: 0, Gen: bwaApp.Generator(bwaReg, 5)}},
			EpochCycles: epoch,
			Epochs:      epochs,
		})
		if err != nil {
			panic(err)
		}

		var missSeries []float64
		half := epochs / 2
		for e := 0; e < epochs; e++ {
			if e == half {
				for i, l := range sc.launches {
					app, _ := workload.Lookup(l.app)
					reg := rig.Alloc(opt.ws/l.frac, l.node)
					rig.Machine.Attach(1+i, app.Generator(reg, uint64(90+i)))
				}
			}
			res, err := p.Step()
			if err != nil {
				panic(err)
			}
			pm := res.PathMaps["BWA"]
			miss := pm.Load[core.PathDRd][core.LvlCXL] +
				pm.Load[core.PathDRd][core.LvlLocalDRAM] +
				pm.Load[core.PathHWPF][core.LvlCXL] +
				pm.Load[core.PathHWPF][core.LvlLocalDRAM]
			// Normalize per unit of BWA work so co-runner-induced
			// slowdown does not masquerade as a locality change.
			loads := res.Snapshot.Core(0, pmu.MemInstAllLoads)
			if loads > 0 {
				miss = miss / loads * 1000 // misses per kilo-load
			}
			missSeries = append(missSeries, miss)
		}

		run := Fig12Run{Label: sc.label}
		for e, v := range missSeries {
			if e < half {
				run.MissBefore += v
			} else {
				run.MissAfter += v
			}
		}
		run.MissBefore /= float64(half)
		run.MissAfter /= float64(epochs - half)
		run.Windows = len(p.Materializer().LocalityWindows("BWA", core.LvlCXL, 0.4))
		out.Runs[si] = run
	})
	return out
}

// Table renders the locality-change summary.
func (r *Fig12Result) Table() *report.Table {
	t := &report.Table{
		Title: "Figure 12: 503.bwaves_r LLC misses per kilo-load around co-runner launch",
		Cols:  []string{"scenario", "miss/kload before", "miss/kload after", "change", "locality windows"},
	}
	for _, run := range r.Runs {
		chg := 0.0
		if run.MissBefore > 0 {
			chg = run.MissAfter/run.MissBefore - 1
		}
		t.AddRow(run.Label, report.Num(run.MissBefore), report.Num(run.MissAfter),
			fmt.Sprintf("%+.1f%%", chg*100), fmt.Sprint(run.Windows))
	}
	return t
}

package experiments

import (
	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Metric is one named counter-derived quantity extracted from a snapshot.
type Metric struct {
	Name string
	Get  func(s *core.Snapshot, cores []int) float64
}

// CompareResult holds a local-vs-CXL counter characterization: one value
// per (application, metric) for each placement.
type CompareResult struct {
	Title   string
	Apps    []string
	Metrics []Metric
	Local   [][]float64 // [app][metric]
	CXL     [][]float64
}

// MeanRatio returns the arithmetic-mean CXL/local ratio of a metric over
// the applications where the local value is nonzero.
func (r *CompareResult) MeanRatio(metric int) float64 {
	var sum float64
	n := 0
	for a := range r.Apps {
		if l := r.Local[a][metric]; l > 0 {
			sum += r.CXL[a][metric] / l
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MetricIndex locates a metric by name (-1 if absent).
func (r *CompareResult) MetricIndex(name string) int {
	for i, m := range r.Metrics {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Table renders per-app local/CXL values and the mean ratio per metric.
func (r *CompareResult) Table() *report.Table {
	t := &report.Table{Title: r.Title,
		Cols: []string{"metric"}}
	for _, a := range r.Apps {
		t.Cols = append(t.Cols, a+" local", a+" cxl")
	}
	t.Cols = append(t.Cols, "mean CXL/local")
	for mi, m := range r.Metrics {
		row := []string{m.Name}
		for ai := range r.Apps {
			row = append(row, report.Num(r.Local[ai][mi]), report.Num(r.CXL[ai][mi]))
		}
		row = append(row, report.Ratio(r.MeanRatio(mi)))
		t.AddRow(row...)
	}
	return t
}

// charOptions are the common knobs of a characterization run.
type charOptions struct {
	cfg sim.Config
	ws  uint64 // working-set bytes per app
	ops uint64 // fixed work per placement (the paper compares equal
	//                  load/store counts between local and CXL runs)
	maxCycles sim.Cycles // safety bound
	genFor    func(app workload.App, r workload.Region) workload.Generator
}

func defaultChar(cfg sim.Config, quick bool) charOptions {
	opt := charOptions{
		cfg:       cfg,
		ws:        64 * mb,
		ops:       2_000_000,
		maxCycles: 800_000_000,
		genFor: func(app workload.App, r workload.Region) workload.Generator {
			return app.Generator(r, 42)
		},
	}
	// Shrink the LLC so the working set spills to memory in bounded time.
	opt.cfg.LLCSize /= 4
	opt.cfg.LLCSlices /= 4
	if quick {
		opt.ws = 32 * mb
		opt.ops = 600_000
		opt.maxCycles = 250_000_000
		opt.cfg.LLCSize /= 2
	}
	return opt
}

// opsFor scales the work budget by access shape: dependent-chase apps cost
// three orders of magnitude more cycles per op, so they get a smaller (but
// still footprint-covering) budget.
func (opt *charOptions) opsFor(app workload.App) uint64 {
	switch app.Shape {
	case workload.ShapeChase, workload.ShapeGUPS, workload.ShapeZipf, workload.ShapeGraph:
		return opt.ops / 4
	}
	return opt.ops
}

// runPlacement runs one application for a fixed amount of work with its
// working set on the given node and snapshots the whole run.
func runPlacement(opt charOptions, app workload.App, node mem.NodeID) *core.Snapshot {
	rig := NewRig(RigOptions{Config: opt.cfg})
	reg := rig.Alloc(opt.ws, node)
	cap := core.NewCapturer(rig.Machine)
	rig.Machine.Attach(0, workload.NewLimit(opt.genFor(app, reg), opt.opsFor(app)))
	deadline := rig.Machine.Now() + opt.maxCycles
	for rig.Machine.Core(0).Running() && rig.Machine.Now() < deadline {
		rig.Machine.Run(200_000)
	}
	return cap.Capture()
}

// RunCompare characterizes the named applications on local versus CXL
// memory with the given metric set.  The 2*len(apps) placements are
// independent machines; they fan out across the experiment worker pool
// with results slotted by (app, placement) index.
func RunCompare(title string, opt charOptions, apps []string, metrics []Metric) *CompareResult {
	res := &CompareResult{Title: title, Apps: apps, Metrics: metrics}
	cores := []int{0}
	res.Local = make([][]float64, len(apps))
	res.CXL = make([][]float64, len(apps))
	runIndexed("compare", 2*len(apps), func(i int) {
		ai := i / 2
		app, ok := workload.Lookup(apps[ai])
		if !ok {
			panic("experiments: unknown app " + apps[ai])
		}
		node := mem.NodeID(0)
		if i%2 == 1 {
			node = 2
		}
		s := runPlacement(opt, app, node)
		vals := make([]float64, len(metrics))
		for mi, m := range metrics {
			vals[mi] = m.Get(s, cores)
		}
		s.Release()
		if i%2 == 0 {
			res.Local[ai] = vals
		} else {
			res.CXL[ai] = vals
		}
	})
	return res
}

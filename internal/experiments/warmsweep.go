package experiments

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/cxl"
	"pathfinder/internal/pmu"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// WarmSweepResult is the warm-forked fault-severity matrix: one warm-heavy
// machine shared by every point, with a different link-fault plan installed
// at the warm barrier per point.  It is the pfbench face of
// experiments.Sweep — with -warm-cache the 16 points fork from one cached
// warmed checkpoint instead of re-simulating the warm prefix 16 times, and
// produce byte-identical numbers either way (restore-equivalence).
type WarmSweepResult struct {
	Labels    []string
	Bandwidth []float64 // delivered CXL GB/s during the measure phase
	AvgLat    []float64 // average load-to-use cycles
	Retries   []float64 // link-layer retries
	Timeouts  []float64 // device timeouts
}

// warmSweepPlans builds the 16-point fault matrix: a CRC-noise ladder
// crossed with timeout-episode shapes, every episode anchored inside the
// measure window [warm, warm+measure).  Index 0 is the healthy link.
func warmSweepPlans(warm, measure uint64) (plans []*cxl.FaultPlan, labels []string) {
	crc := []float64{0, 5e-4, 2e-3, 8e-3}
	timeouts := []string{"none", "one", "periodic", "penalty"}
	for _, rate := range crc {
		for ti, tl := range timeouts {
			p := &cxl.FaultPlan{Seed: 7}
			p.CRCRate[cxl.DirS2M] = rate
			ep := cxl.Episode{Start: warm + measure/4, Len: measure / 8}
			switch tl {
			case "one":
				p.Timeouts = []cxl.Episode{ep}
			case "periodic":
				ep.Period = measure / 3
				p.Timeouts = []cxl.Episode{ep}
			case "penalty":
				p.Timeouts = []cxl.Episode{ep}
				p.TimeoutPenalty = 4 * cxl.DefaultTimeoutPenalty
			}
			if rate == 0 && ti == 0 {
				p = nil // healthy link
			}
			plans = append(plans, p)
			labels = append(labels, fmt.Sprintf("crc=%g timeout=%s", rate, tl))
		}
	}
	return plans, labels
}

// RunWarmSweep measures link-fault severity against a shared warm-heavy
// prefix: four cores (two reuse-heavy CXL streams, a CXL GUPS, a local
// Zipf) warm caches and queues to the barrier, then each point installs
// its fault plan and runs the measure phase.  Under Sweep the prefix is
// simulated once and forked per point; without warm cache every point
// re-warms from scratch — the results are identical by construction.
func RunWarmSweep(cfg sim.Config, quick bool) *WarmSweepResult {
	warm := sim.Cycles(2_000_000)
	measure := sim.Cycles(600_000)
	if quick {
		warm = 600_000
		measure = 200_000
	}
	plans, labels := warmSweepPlans(uint64(warm), uint64(measure))
	nCores := 4

	out := &WarmSweepResult{
		Labels:    labels,
		Bandwidth: make([]float64, len(plans)),
		AvgLat:    make([]float64, len(plans)),
		Retries:   make([]float64, len(plans)),
		Timeouts:  make([]float64, len(plans)),
	}
	Sweep(SweepSpec{
		Label: "warmsweep",
		Key:   fmt.Sprintf("warmsweep:%s:quick=%v", cfg.Name, quick),
		Base: func() *sim.Machine {
			rig := NewRig(RigOptions{Config: cfg, Cores: nCores, Scale: 4})
			for c := 0; c < 2; c++ {
				st := workload.NewStream(rig.Alloc(8*mb, rig.CXLNode), 0, 0.2, uint64(c+1))
				st.Reuse = 4
				rig.Machine.Attach(c, st)
			}
			rig.Machine.Attach(2, workload.NewGUPS(rig.Alloc(8*mb, rig.CXLNode), 0, 0, 0, 3))
			rig.Machine.Attach(3, workload.NewZipf(rig.Alloc(8*mb, rig.LocalNode), 0.9, 0.3, 4, 0, 4))
			return rig.Machine
		},
		Warm:   warm,
		Points: len(plans),
		Run: func(i int, m *sim.Machine) {
			m.SetFaultPlan(0, plans[i])
			cap := core.NewCapturer(m)
			m.Run(measure)
			s := cap.Capture()
			var lat, cnt float64
			for c := 0; c < nCores; c++ {
				lat += s.Core(c, pmu.MemTransLoadLatency)
				cnt += s.Core(c, pmu.MemTransLoadCount)
			}
			secs := float64(measure) / (cfg.GHz * 1e9)
			out.Bandwidth[i] = s.CXL(0, pmu.CXLDevCASRd) * 64 / secs / 1e9
			if cnt > 0 {
				out.AvgLat[i] = lat / cnt
			}
			out.Retries[i] = s.CXL(0, pmu.CXLLinkRetries)
			out.Timeouts[i] = s.CXL(0, pmu.CXLDevTimeouts)
			s.Release()
		},
	})
	return out
}

// Table renders the severity matrix.
func (r *WarmSweepResult) Table() *report.Table {
	t := &report.Table{
		Title: "Warm-forked fault-severity sweep (shared warm prefix, 16 points)",
		Cols:  []string{"point", "CXL GB/s", "avg load lat (cyc)", "retries", "timeouts"},
	}
	for i := range r.Labels {
		t.AddRow(r.Labels[i], report.Num(r.Bandwidth[i]), report.Num(r.AvgLat[i]),
			report.Num(r.Retries[i]), report.Num(r.Timeouts[i]))
	}
	return t
}

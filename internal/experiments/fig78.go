package experiments

import (
	"pathfinder/internal/core"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Fig78Result is Case 3: a local mFlow and a CXL mFlow share one core while
// the CXL traffic share sweeps 20%..100%.  Figure 7 reports CXL-induced
// stall cycles per component; Figure 8 reports component queue lengths.
type Fig78Result struct {
	Loads  []float64 // CXL traffic share per step
	Stall  *report.Series
	Queues *report.Series
}

// RunFig78 reproduces Figures 7 and 8.
func RunFig78(cfg sim.Config, quick bool) *Fig78Result {
	opt := defaultChar(cfg, quick)
	k := core.ConstsFor(opt.cfg)

	out := &Fig78Result{
		Stall: &report.Series{
			Title: "Figure 7: CXL-induced stall cycles vs CXL traffic share",
			XName: "cxl_share",
			Names: []string{"SB", "L1D", "LFB", "L2", "LLC"},
		},
		Queues: &report.Series{
			Title: "Figure 8: component queue length vs CXL traffic share",
			XName: "cxl_share",
			Names: []string{"L1D", "LFB", "L2", "FlexBus+MC", "CHA"},
		},
	}

	shares := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	stallRows := make([][]float64, len(shares))
	queueRows := make([][]float64, len(shares))
	runIndexed("fig78", len(shares), func(i int) {
		share := shares[i]
		rig := NewRig(RigOptions{Config: opt.cfg})
		local := rig.Alloc(opt.ws/2, 0)
		cxl := rig.Alloc(opt.ws/2, 2)
		// One core, two mFlows: a local stream and a CXL stream mixed at
		// the requested CXL share.
		gl := workload.NewStream(local, 2, 0.1, 11)
		gl.Reuse = 4
		gc := workload.NewStream(cxl, 2, 0.1, 13)
		gc.Reuse = 4
		gen := workload.NewLimit(workload.NewMix(gl, gc, share), opt.ops)

		cap := core.NewCapturer(rig.Machine)
		rig.Machine.Attach(0, gen)
		deadline := rig.Machine.Now() + opt.maxCycles
		for rig.Machine.Core(0).Running() && rig.Machine.Now() < deadline {
			rig.Machine.Run(500_000)
		}
		s := cap.Capture()

		bd := core.EstimateStalls(s, []int{0}, 0, k)
		sum := func(c core.Component) float64 {
			var t float64
			for _, p := range core.Paths() {
				t += bd.Stall[p][c]
			}
			return t
		}
		stallRows[i] = []float64{
			sum(core.CompSB), sum(core.CompL1D), sum(core.CompLFB),
			sum(core.CompL2), sum(core.CompLLC)}

		qr := core.AnalyzeQueues(s, []int{0}, 0, k)
		qsum := func(c core.Component) float64 {
			var t float64
			for _, p := range core.Paths() {
				t += qr.Q[p][c]
			}
			return t
		}
		meas := core.MeasuredQueues(s, []int{0}, 0)
		queueRows[i] = []float64{
			qsum(core.CompL1D), meas[core.CompLFB], qsum(core.CompL2),
			meas[core.CompFlexBusMC], meas[core.CompCHA]}
		s.Release()
	})
	for i, share := range shares {
		out.Stall.Add(share, stallRows[i]...)
		out.Queues.Add(share, queueRows[i]...)
		out.Loads = append(out.Loads, share)
	}
	return out
}

// CoreStallGrowth returns the ratio of the summed in-core CXL-induced
// stall at full CXL share versus the 20% point — the paper reports
// 1.7x-2.4x growth across SB/L1D/LFB/L2/LLC.
func (r *Fig78Result) CoreStallGrowth() float64 {
	if len(r.Stall.X) < 2 {
		return 0
	}
	first, last := 0.0, 0.0
	for i := range r.Stall.Names {
		first += r.Stall.Y[i][0]
		last += r.Stall.Y[i][len(r.Stall.X)-1]
	}
	if first == 0 {
		return 0
	}
	return last / first
}

package experiments

import (
	"pathfinder/internal/core"
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// The six applications used by the paper's core/CHA characterization
// figures (Figures 2-3 name 519.lbm_r, 541.leela_r, 554.roms_r,
// 507.cactuBSSN_r among others).
var charApps = []string{"LBM", "ROMS", "CAC", "BWA", "MCF", "LEE"}

func coreMetric(e pmu.Event) Metric {
	return Metric{Name: pmu.Default.Name(e), Get: func(s *core.Snapshot, cores []int) float64 {
		return s.CoreSum(cores, e)
	}}
}

func chaMetric(name string, e pmu.Event) Metric {
	return Metric{Name: name, Get: func(s *core.Snapshot, cores []int) float64 {
		return s.CHASum(e)
	}}
}

// Fig2Result bundles the core-PMU characterization (Figure 2 on SPR,
// Figure 14 on EMR): the RD+WR app comparison plus the write-only SB runs.
type Fig2Result struct {
	Main   *CompareResult // per-app core counters, RD+WR workloads
	WrOnly *CompareResult // SB stalls under write-only streams
}

// RunFig2 reproduces Figure 2: core PMU counters when running on local vs
// CXL memory — SB stalls (a), L1D execution/operations (b, c), LFB (d),
// and L2 execution/operations (e, f).
func RunFig2(cfg sim.Config, quick bool) *Fig2Result {
	opt := defaultChar(cfg, quick)
	main := RunCompare("Figure 2: core PMU, local vs CXL ("+cfg.Name+")", opt, charApps, []Metric{
		// (a) store buffer: both SB-full flavors (loads in flight or not).
		{Name: "sb_stalls", Get: func(s *core.Snapshot, cores []int) float64 {
			return s.CoreSum(cores, pmu.ResourceStallsSB) + s.CoreSum(cores, pmu.ExeBoundOnStores)
		}},
		// (b) L1D execution.
		coreMetric(pmu.StallsL1DMiss),
		coreMetric(pmu.CyclesL1DMiss),
		{Name: "load_resp_wait", Get: func(s *core.Snapshot, cores []int) float64 {
			cnt := s.CoreSum(cores, pmu.MemTransLoadCount)
			if cnt == 0 {
				return 0
			}
			return s.CoreSum(cores, pmu.MemTransLoadLatency) / cnt
		}},
		// (c) L1D operations.
		coreMetric(pmu.MemLoadL1Hit),
		coreMetric(pmu.MemLoadL1Miss),
		coreMetric(pmu.L1DReplacement),
		// (d) LFB.
		coreMetric(pmu.MemLoadFBHit),
		coreMetric(pmu.L1DPendMissFBFull),
		// (e) L2 execution.
		coreMetric(pmu.StallsL2Miss),
		coreMetric(pmu.CyclesL2Miss),
		// (f) L2 operations.
		coreMetric(pmu.L2DemandDataRdHit),
		coreMetric(pmu.L2DemandDataRdMiss),
		coreMetric(pmu.L2RFOHit),
		coreMetric(pmu.L2RFOMiss),
		coreMetric(pmu.L2HWPFHit),
		coreMetric(pmu.L2HWPFMiss),
		coreMetric(pmu.MemStoreL2Hit),
	})

	// Write-only scenario: exe_activity.bound_on_stores dominates when no
	// loads are in flight (Figure 2-a's WR-only bars).
	wrOpt := opt
	wrOpt.genFor = func(app workload.App, r workload.Region) workload.Generator {
		g := workload.NewStream(r, 1, 1.0, 7)
		g.Reuse = 2
		return g
	}
	wr := RunCompare("Figure 2-a (WR-only): SB stall share of cycles, local vs CXL ("+cfg.Name+")",
		wrOpt, charApps, []Metric{
			{Name: "sb_stall_frac", Get: func(s *core.Snapshot, cores []int) float64 {
				clk := s.CoreSum(cores, pmu.CPUClkUnhalted)
				if clk == 0 {
					return 0
				}
				return (s.CoreSum(cores, pmu.ResourceStallsSB) +
					s.CoreSum(cores, pmu.ExeBoundOnStores)) / clk
			}},
		})
	return &Fig2Result{Main: main, WrOnly: wr}
}

// RunFig3 reproduces Figure 3: CHA PMU counters, local vs CXL — core LLC
// stalls (a), hit/miss breakdown (b), miss serve locations (c), hit/miss
// occupancy (d, e), and the LLC operation breakdown (f).
func RunFig3(cfg sim.Config, quick bool) *CompareResult {
	opt := defaultChar(cfg, quick)
	metrics := []Metric{
		// (a) core LLC stalls and DRd response.
		coreMetric(pmu.StallsL3Miss),
		{Name: "drd_l3_resp", Get: func(s *core.Snapshot, cores []int) float64 {
			miss := s.CoreSum(cores, pmu.MemLoadL3Miss)
			if miss == 0 {
				return 0
			}
			return s.CoreSum(cores, pmu.OROL3MissDemandDataRd) / miss
		}},
		// (b) hit/miss per path.
		{Name: "llc_hit_drd", Get: famScn(pmu.OCRDemandDataRd, pmu.ScnHit)},
		{Name: "llc_miss_drd", Get: famScn(pmu.OCRDemandDataRd, pmu.ScnMiss)},
		{Name: "llc_hit_rfo", Get: famScn(pmu.OCRRFO, pmu.ScnHit)},
		{Name: "llc_miss_rfo", Get: famScn(pmu.OCRRFO, pmu.ScnMiss)},
		{Name: "llc_hit_hwpf", Get: pfScnMetric(pmu.ScnHit)},
		{Name: "llc_miss_hwpf", Get: pfScnMetric(pmu.ScnMiss)},
		// (c) where misses are served.
		{Name: "serve_local_dram", Get: famScn(pmu.OCRDemandDataRd, pmu.ScnMissLocalDDR)},
		{Name: "serve_remote", Get: famScn(pmu.OCRDemandDataRd, pmu.ScnMissRemote)},
		{Name: "serve_cxl", Get: famScn(pmu.OCRDemandDataRd, pmu.ScnMissCXL)},
		// (d)/(e) TOR occupancy of hits and misses (socket scope).
		chaMetric("tor_occ_drd_hit", pmu.TOROccupancyIADRd[pmu.ScnHit]),
		chaMetric("tor_occ_drd_miss", pmu.TOROccupancyIADRd[pmu.ScnMiss]),
		chaMetric("tor_occ_rfo_hit", pmu.TOROccupancyIARFO[pmu.RFOHit]),
		chaMetric("tor_occ_rfo_miss", pmu.TOROccupancyIARFO[pmu.RFOMiss]),
		chaMetric("tor_occ_pf_hit", pmu.TOROccupancyIADRdPref[pmu.ScnHit]),
		chaMetric("tor_occ_pf_miss", pmu.TOROccupancyIADRdPref[pmu.ScnMiss]),
		// (f) LLC operation breakdown.
		chaMetric("tor_ins_drd", pmu.TORInsertsIADRd[pmu.ScnAny]),
		chaMetric("tor_ins_rfo", pmu.TORInsertsIARFO[pmu.RFOAny]),
		chaMetric("tor_ins_pf", pmu.TORInsertsIADRdPref[pmu.ScnAny]),
		chaMetric("tor_ins_wb", pmu.TORInsertsIAWB[pmu.WBMToE]),
	}
	return RunCompare("Figure 3: CHA PMU, local vs CXL ("+cfg.Name+")", opt, charApps, metrics)
}

func famScn(f pmu.Family, scn int) func(*core.Snapshot, []int) float64 {
	return func(s *core.Snapshot, cores []int) float64 {
		return s.CoreFamilySum(cores, f, scn)
	}
}

func pfScnMetric(scn int) func(*core.Snapshot, []int) float64 {
	return func(s *core.Snapshot, cores []int) float64 {
		return s.CoreFamilySum(cores, pmu.OCRL1DHWPF, scn) +
			s.CoreFamilySum(cores, pmu.OCRL2HWPFDRd, scn) +
			s.CoreFamilySum(cores, pmu.OCRL2HWPFRFO, scn)
	}
}

// RunFig4 reproduces Figure 4: uncore PMU — IMC RPQ/WPQ occupancy (a) and
// the per-device load/store command breakdown (b).  The paper's headline
// observations: CXL streams leave the IMC queues empty (the device has its
// own MC), and the same profiling window moves ~37% fewer commands on CXL.
func RunFig4(cfg sim.Config, quick bool) *CompareResult {
	opt := defaultChar(cfg, quick)
	metrics := []Metric{
		{Name: "imc_rpq_occ", Get: func(s *core.Snapshot, _ []int) float64 {
			return s.IMCSum(pmu.RPQOccupancy)
		}},
		{Name: "imc_wpq_occ", Get: func(s *core.Snapshot, _ []int) float64 {
			return s.IMCSum(pmu.WPQOccupancy)
		}},
		{Name: "loads_served", Get: func(s *core.Snapshot, _ []int) float64 {
			// Local loads at the IMC plus CXL loads at the M2PCIe egress.
			return s.IMCSum(pmu.CASCountRd) + s.M2P(0, pmu.M2PTxInsertsBL)
		}},
		{Name: "stores_served", Get: func(s *core.Snapshot, _ []int) float64 {
			return s.IMCSum(pmu.CASCountWr) + s.M2P(0, pmu.M2PTxInsertsAK)
		}},
		{Name: "cxl_loads", Get: func(s *core.Snapshot, _ []int) float64 {
			return s.M2P(0, pmu.M2PTxInsertsBL)
		}},
		{Name: "cxl_stores", Get: func(s *core.Snapshot, _ []int) float64 {
			return s.M2P(0, pmu.M2PTxInsertsAK)
		}},
	}
	return RunCompare("Figure 4: uncore PMU, local vs CXL ("+cfg.Name+")", opt, charApps, metrics)
}

package experiments

import (
	"pathfinder/internal/core"
	"pathfinder/internal/cxl"
	"pathfinder/internal/pmu"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// FaultsResult is the link-reliability extension: a YCSB mFlow on CXL
// memory is profiled while the FlexBus link degrades through a sweep of
// CRC-corruption rates (with burst windows and, at the top rate, device
// timeout/throttle episodes).  The sweep shows the profiler localizing
// the fault domain: a healthy setup is media-bound (the CXL DIMM holds
// the dominant downstream queue), while a degrading link shifts the
// culprit to FlexBus+MC as retry replays eat wire bandwidth and requests
// pile up at the M2PCIe ingress instead of the device queues.
type FaultsResult struct {
	Rates    []float64      // CRC corruption probability per flit transfer
	Sweep    *report.Series // throughput, link-fault counters, measured queues
	Culprits []string       // dominant downstream component at each rate
}

// Column indices of FaultsResult.Sweep.
const (
	faultColOps = iota
	faultColCRCErrors
	faultColRetries
	faultColReplayKiB
	faultColTimeouts
	faultColFlexQ
	faultColDIMMQ
)

// faultPlanFor builds the deterministic fault plan of one sweep step: a
// base CRC rate on both directions, periodic burst windows at 200x the
// base rate, and — once the link is clearly sick — device timeout and
// DevLoad-throttle episodes.
func faultPlanFor(rate float64, epoch sim.Cycles) *cxl.FaultPlan {
	plan := &cxl.FaultPlan{Seed: 42}
	if rate == 0 {
		return plan
	}
	plan.CRCRate[cxl.DirM2S] = rate
	plan.CRCRate[cxl.DirS2M] = rate
	burst := 200 * rate
	if burst > 1 {
		burst = 1
	}
	e := uint64(epoch)
	for _, d := range []cxl.Direction{cxl.DirM2S, cxl.DirS2M} {
		plan.Bursts = append(plan.Bursts, cxl.Burst{
			Dir: d, Start: e / 8, Len: e / 16, Period: e / 4, Rate: burst,
		})
	}
	if rate >= 1e-2 {
		plan.Timeouts = append(plan.Timeouts,
			cxl.Episode{Start: e / 2, Len: e / 32, Period: e / 2})
		plan.Throttles = append(plan.Throttles,
			cxl.Episode{Start: e / 3, Len: e / 16, Period: e / 2})
		plan.TimeoutPenalty = cxl.DefaultTimeoutPenalty
	}
	return plan
}

// RunFaults sweeps link CRC-corruption rates under a fixed CXL-bound
// workload.  Everything is keyed off FaultPlan seed 42, so two runs with
// the same configuration produce identical numbers.
func RunFaults(cfg sim.Config, quick bool) *FaultsResult {
	opt := defaultChar(cfg, quick)
	epoch := sim.Cycles(2_000_000)
	if quick {
		epoch = 800_000
	}

	out := &FaultsResult{
		Rates: []float64{0, 1e-4, 1e-3, 1e-2},
		Sweep: &report.Series{
			Title: "Link-fault sweep: YCSB on a degrading CXL link (seed 42)",
			XName: "crc_rate",
			Names: []string{"ops", "crc_errors", "retries", "replay_KiB",
				"dev_timeouts", "flexbus_q", "cxl_dimm_q"},
		},
	}

	rows := make([][]float64, len(out.Rates))
	out.Culprits = make([]string, len(out.Rates))
	runIndexed("faults", len(out.Rates), func(i int) {
		rate := out.Rates[i]
		c := opt.cfg
		c.Faults = faultPlanFor(rate, epoch)
		rig := NewRig(RigOptions{Config: c})
		m := rig.Machine

		ycsbReg := rig.Alloc(opt.ws, 2)
		ycsbApp, _ := workload.Lookup("YCSB-C")
		counting := workload.NewCounting(ycsbApp.Generator(ycsbReg, 21))
		m.Attach(0, counting)

		// Background CXL readers keep the link moderately loaded but not
		// saturated: the healthy bottleneck stays at the device media, so
		// a fault-induced shift toward the link is unambiguous.
		for cr := 1; cr <= 4; cr++ {
			reg := rig.Alloc(opt.ws/2, 2)
			m.Attach(cr, workload.NewStream(reg, 40, 0.1, uint64(cr*7)))
		}

		cap := core.NewCapturer(m)
		m.Run(epoch)
		s := cap.Capture()

		meas := core.MeasuredQueues(s, nil, 0)
		flexQ, dimmQ := meas[core.CompFlexBusMC], meas[core.CompCXLDIMM]
		culprit := core.CompCXLDIMM
		if flexQ > dimmQ {
			culprit = core.CompFlexBusMC
		}
		rows[i] = []float64{
			float64(counting.Total()),
			s.CXL(0, pmu.CXLLinkCRCErrors),
			s.CXL(0, pmu.CXLLinkRetries),
			s.CXL(0, pmu.CXLLinkReplayBytes) / 1024,
			s.CXL(0, pmu.CXLDevTimeouts),
			flexQ, dimmQ,
		}
		out.Culprits[i] = culprit.String()
		s.Release()
	})
	for i, rate := range out.Rates {
		out.Sweep.Add(rate, rows[i]...)
	}
	return out
}

// At returns one sweep column at the i-th rate step.
func (r *FaultsResult) At(i, col int) float64 { return r.Sweep.Y[col][i] }

// ThroughputDrop returns the YCSB throughput loss from the healthy link
// to the sickest one.
func (r *FaultsResult) ThroughputDrop() float64 {
	n := len(r.Rates)
	if n < 2 || r.At(0, faultColOps) == 0 {
		return 0
	}
	return 1 - r.At(n-1, faultColOps)/r.At(0, faultColOps)
}

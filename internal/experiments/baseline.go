package experiments

import (
	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/tma"
	"pathfinder/internal/workload"
)

// BaselineRow contrasts TMA's verdict with PathFinder's for one placement.
type BaselineRow struct {
	Placement      string
	TMABottleneck  string
	TMADRAMBound   float64
	PFCulprit      string
	PFCXLFraction  float64 // PFEstimator's CXL share of offcore waiting
	PFTopComponent string  // component with the largest CXL-induced stall
}

// BaselineResult is the TMA-vs-PathFinder comparison: the same workload on
// local versus CXL memory, analyzed by both tools.  TMA reports "DRAM
// bound" in both cases — it cannot tell which device is responsible —
// while PathFinder separates the placements cleanly (§2.3's argument for
// building an end-to-end profiler).
type BaselineResult struct {
	Rows []BaselineRow
}

// RunTMABaseline runs the comparison with a pointer-chase workload (the
// most memory-bound shape) on each placement.
func RunTMABaseline(cfg sim.Config, quick bool) *BaselineResult {
	opt := defaultChar(cfg, quick)
	k := core.ConstsFor(opt.cfg)
	cases := []struct {
		name string
		node mem.NodeID
	}{
		{"local DDR", 0},
		{"CXL Type-3", 2},
	}
	out := &BaselineResult{Rows: make([]BaselineRow, len(cases))}
	runIndexed("baseline", len(cases), func(ci int) {
		tc := cases[ci]
		rig := NewRig(RigOptions{Config: opt.cfg})
		reg := rig.Alloc(opt.ws, tc.node)
		cap := core.NewCapturer(rig.Machine)
		rig.Machine.Attach(0, workload.NewLimit(
			workload.NewPointerChase(reg, 2, 17), opt.ops/4))
		deadline := rig.Machine.Now() + opt.maxCycles
		for rig.Machine.Core(0).Running() && rig.Machine.Now() < deadline {
			rig.Machine.Run(500_000)
		}
		s := cap.Capture()

		td := tma.Analyze(s, []int{0})
		bd := core.EstimateStalls(s, []int{0}, 0, k)
		qr := core.AnalyzeQueues(s, []int{0}, 0, k)

		topName, topV := "none (no CXL-induced stall)", 0.0
		for _, c := range core.Components() {
			var v float64
			for _, p := range core.Paths() {
				v += bd.Stall[p][c]
			}
			if v > topV {
				topName, topV = c.String(), v
			}
		}
		out.Rows[ci] = BaselineRow{
			Placement:      tc.name,
			TMABottleneck:  td.Bottleneck(),
			TMADRAMBound:   td.L3.DRAMBound,
			PFCulprit:      qr.CulpritPath.String() + " on " + qr.CulpritComp.String(),
			PFCXLFraction:  core.CXLWaitFraction(s),
			PFTopComponent: topName,
		}
		s.Release()
	})
	return out
}

// Table renders the comparison.
func (r *BaselineResult) Table() *report.Table {
	t := &report.Table{
		Title: "Baseline: Top-Down Analysis vs PathFinder on a memory-bound chase",
		Cols: []string{"placement", "TMA verdict", "TMA DRAM-bound",
			"PF CXL share of waiting", "PF top stall component", "PF culprit"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Placement, row.TMABottleneck, report.Pct(row.TMADRAMBound),
			report.Pct(row.PFCXLFraction), row.PFTopComponent, row.PFCulprit)
	}
	return t
}

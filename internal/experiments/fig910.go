package experiments

import (
	"pathfinder/internal/core"
	"pathfinder/internal/pmu"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Fig910Result is Case 4: a YCSB mFlow contends with antagonist CXL mFlows
// from other cores whose aggregate traffic sweeps 20%..100% of saturation.
// Figure 9 reports throughput, per-component CXL-induced stall, and
// CHA/FlexBus latency; Figure 10 reports queue lengths.
type Fig910Result struct {
	Throughput *report.Series // YCSB operations completed per step
	Stall      *report.Series // per-component stall (Figure 9 b-f)
	Latency    *report.Series // CHA and FlexBus+MC latency (Figure 9 g-h)
	Queues     *report.Series // per-component queue length (Figure 10)
	Culprits   []string       // PFAnalyzer culprit at each load step
}

// RunFig910 reproduces Figures 9 and 10.
func RunFig910(cfg sim.Config, quick bool) *Fig910Result {
	opt := defaultChar(cfg, quick)
	k := core.ConstsFor(opt.cfg)
	epoch := sim.Cycles(2_000_000)
	if quick {
		epoch = 800_000
	}

	out := &Fig910Result{
		Throughput: &report.Series{
			Title: "Figure 9-a: YCSB throughput vs antagonist CXL load",
			XName: "cxl_load", Names: []string{"ops"},
		},
		Stall: &report.Series{
			Title: "Figure 9-b..f: YCSB CXL-induced stall cycles",
			XName: "cxl_load",
			Names: []string{"SB", "L1D", "LFB", "L2", "LLC"},
		},
		Latency: &report.Series{
			Title: "Figure 9-g/h: uncore latency under contention (cycles)",
			XName: "cxl_load", Names: []string{"CHA", "FlexBus+MC"},
		},
		Queues: &report.Series{
			Title: "Figure 10: YCSB queue lengths under contention",
			XName: "cxl_load",
			Names: []string{"L1D", "LFB", "L2", "LLC", "FlexBus+MC DRd", "FlexBus+MC HWPF"},
		},
	}

	loads := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	type row struct {
		ops     float64
		stall   []float64
		latency []float64
		queues  []float64
		culprit string
	}
	rows := make([]row, len(loads))
	runIndexed("fig910", len(loads), func(i int) {
		load := loads[i]
		rig := NewRig(RigOptions{Config: opt.cfg})
		m := rig.Machine

		ycsbReg := rig.Alloc(opt.ws, 2)
		ycsbApp, _ := workload.Lookup("YCSB-C")
		counting := workload.NewCounting(ycsbApp.Generator(ycsbReg, 21))
		m.Attach(0, counting)

		// Antagonists: streaming CXL mFlows on eight other cores, their
		// intensity modulated by think time so aggregate traffic scales
		// with the load factor.
		think := uint16((1.0 - load) * 100)
		for c := 1; c <= 8; c++ {
			reg := rig.Alloc(opt.ws/2, 2)
			g := workload.NewStream(reg, think, 0.1, uint64(c*7))
			m.Attach(c, g)
		}

		cap := core.NewCapturer(m)
		m.Run(epoch)
		s := cap.Capture()

		bd := core.EstimateStalls(s, []int{0}, 0, k)
		sumStall := func(c core.Component) float64 {
			var t float64
			for _, p := range core.Paths() {
				t += bd.Stall[p][c]
			}
			return t
		}
		rows[i].ops = float64(counting.Total())
		rows[i].stall = []float64{
			sumStall(core.CompSB), sumStall(core.CompL1D), sumStall(core.CompLFB),
			sumStall(core.CompL2), sumStall(core.CompLLC)}

		// Uncore latencies from residency/throughput (socket scope).
		chaLat := 0.0
		if ins := s.CHASum(pmu.TORInsertsIA[pmu.IAAll]); ins > 0 {
			chaLat = s.CHASum(pmu.TOROccupancyIA[pmu.IAAll]) / ins
		}
		flexLat := 0.0
		if ins := s.M2P(0, pmu.M2PRxInserts); ins > 0 {
			flexLat = s.M2P(0, pmu.M2PRxOccupancy)/ins + k.LinkTransit
		}
		rows[i].latency = []float64{chaLat, flexLat}

		qr := core.AnalyzeQueues(s, []int{0}, 0, k)
		qsum := func(c core.Component) float64 {
			var t float64
			for _, p := range core.Paths() {
				t += qr.Q[p][c]
			}
			return t
		}
		rows[i].queues = []float64{
			qsum(core.CompL1D), qsum(core.CompLFB), qsum(core.CompL2),
			qsum(core.CompLLC),
			qr.Q[core.PathDRd][core.CompFlexBusMC],
			qr.Q[core.PathHWPF][core.CompFlexBusMC]}
		rows[i].culprit = qr.CulpritPath.String() + " on " + qr.CulpritComp.String()
		s.Release()
	})
	for i, load := range loads {
		out.Throughput.Add(load, rows[i].ops)
		out.Stall.Add(load, rows[i].stall...)
		out.Latency.Add(load, rows[i].latency...)
		out.Queues.Add(load, rows[i].queues...)
		out.Culprits = append(out.Culprits, rows[i].culprit)
	}
	return out
}

// ThroughputDrop returns the YCSB throughput loss from the lightest to the
// heaviest antagonist load (the paper reports −77.4% on average).
func (r *Fig910Result) ThroughputDrop() float64 {
	n := len(r.Throughput.X)
	if n < 2 || r.Throughput.Y[0][0] == 0 {
		return 0
	}
	return 1 - r.Throughput.Y[0][n-1]/r.Throughput.Y[0][0]
}

// FlexLatencyGrowth returns the FlexBus+MC latency growth across the sweep
// (the paper reports 4.3x).
func (r *Fig910Result) FlexLatencyGrowth() float64 {
	n := len(r.Latency.X)
	if n < 2 || r.Latency.Y[1][0] == 0 {
		return 0
	}
	return r.Latency.Y[1][n-1] / r.Latency.Y[1][0]
}

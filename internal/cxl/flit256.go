package cxl

import (
	"encoding/binary"
	"fmt"
)

// Mode selects the flit format.  The CXL specification defines 68-byte
// flits (CXL 1.1/2.0), 256-byte flits (CXL 3.x, with stronger FEC/CRC),
// and the PBR variant of the 256-byte format for port-based routing
// through fabrics; this package implements the first two.
type Mode uint8

// Flit modes.
const (
	Mode68  Mode = iota // 68B: 4B header, 4 slots, CRC-16
	Mode256             // 256B: 6B header, 16 slots, 10B CRC/FEC area
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Mode68:
		return "68B"
	case Mode256:
		return "256B"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// geometry describes a flit format.
type geometry struct {
	size        int // total flit bytes
	header      int
	slots       int // 15-byte message slots per protocol flit
	crc         int
	dataPerFlit int // 64B payloads per all-data flit
	protoType   byte
	dataType    byte
}

const (
	flitProtocol256 = 0x3
	flitAllData256  = 0x4
)

func geom(m Mode) geometry {
	switch m {
	case Mode256:
		return geometry{size: 256, header: 6, slots: 16, crc: 10,
			dataPerFlit: 3, protoType: flitProtocol256, dataType: flitAllData256}
	default:
		return geometry{size: FlitSize, header: headerSize, slots: slotCount, crc: crcSize,
			dataPerFlit: 1, protoType: flitProtocol, dataType: flitAllData}
	}
}

// ModePacker packs messages into flits of the selected mode; Mode68
// behaves exactly like Packer.
type ModePacker struct {
	Mode Mode

	pending []Message
	data    [][]byte
	seq     uint8
}

// Push queues a validated message.
func (p *ModePacker) Push(m Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	p.pending = append(p.pending, m)
	return nil
}

// Pending reports queued work.
func (p *ModePacker) Pending() int { return len(p.pending) + len(p.data) }

// Next emits one flit of the configured mode.
func (p *ModePacker) Next() ([]byte, bool) {
	g := geom(p.Mode)
	if len(p.data) > 0 {
		f := make([]byte, g.size)
		f[0] = g.dataType
		f[1] = p.seq
		p.seq++
		n := len(p.data)
		if n > g.dataPerFlit {
			n = g.dataPerFlit
		}
		f[2] = byte(n)
		for i := 0; i < n; i++ {
			copy(f[g.header+i*64:], p.data[i])
		}
		p.data = p.data[n:]
		// 256B data flits carry header slots in their slack (the slot
		// packing of the 3.x format): up to 3 slots fit after 3 payloads.
		if slack := (g.size - g.crc - g.header - g.dataPerFlit*64) / slotSize; slack > 0 {
			h := len(p.pending)
			if h > slack {
				h = slack
			}
			f[3] = byte(h)
			base := g.header + g.dataPerFlit*64
			for i := 0; i < h; i++ {
				m := &p.pending[i]
				encodeSlot(f[base+i*slotSize:base+(i+1)*slotSize], m)
				if m.Op.HasData() {
					p.data = append(p.data, m.Data)
				}
			}
			p.pending = p.pending[h:]
			crc := crc16(f[:g.size-g.crc])
			binary.LittleEndian.PutUint16(f[g.size-g.crc:], crc)
		}
		return f, true
	}
	if len(p.pending) == 0 {
		return nil, false
	}
	f := make([]byte, g.size)
	f[0] = g.protoType
	f[1] = p.seq
	p.seq++
	n := len(p.pending)
	if n > g.slots {
		n = g.slots
	}
	f[2] = byte(n)
	for i := 0; i < n; i++ {
		m := &p.pending[i]
		encodeSlot(f[g.header+i*slotSize:g.header+(i+1)*slotSize], m)
		if m.Op.HasData() {
			p.data = append(p.data, m.Data)
		}
	}
	p.pending = p.pending[n:]
	crc := crc16(f[:g.size-g.crc])
	binary.LittleEndian.PutUint16(f[g.size-g.crc:], crc)
	return f, true
}

// ModeUnpacker reassembles a ModePacker stream; the mode is carried by
// each flit's type byte, so a single unpacker handles either format.
type ModeUnpacker struct {
	out     []Message
	owed    []int
	nextSeq uint8
	started bool
}

// Feed consumes one flit.
func (u *ModeUnpacker) Feed(f []byte) error {
	if len(f) < 3 {
		return fmt.Errorf("cxl: flit too short (%d bytes)", len(f))
	}
	var g geometry
	switch f[0] {
	case flitProtocol, flitAllData:
		g = geom(Mode68)
	case flitProtocol256, flitAllData256:
		g = geom(Mode256)
	default:
		return fmt.Errorf("%w: %#x", ErrBadFlitType, f[0])
	}
	if len(f) != g.size {
		return fmt.Errorf("cxl: %v flit has %d bytes, want %d", Mode(f[0]/3), len(f), g.size)
	}
	if u.started && f[1] != u.nextSeq {
		return fmt.Errorf("%w: got %d want %d", ErrBadSequence, f[1], u.nextSeq)
	}
	u.started = true
	u.nextSeq = f[1] + 1

	if f[0] == g.dataType {
		n := int(f[2])
		if n > g.dataPerFlit {
			return fmt.Errorf("cxl: data flit claims %d payloads", n)
		}
		for i := 0; i < n; i++ {
			if len(u.owed) == 0 {
				return ErrStrayData
			}
			idx := u.owed[0]
			u.owed = u.owed[1:]
			data := make([]byte, 64)
			copy(data, f[g.header+i*64:g.header+(i+1)*64])
			u.out[idx].Data = data
		}
		// Slack header slots of 256B data flits.  68B data flits have no
		// slack (f[3] is covered by no CRC there), and even in 256B mode a
		// corrupted count must not index past the CRC area.
		if h := int(f[3]); h > 0 {
			maxSlack := (g.size - g.crc - g.header - g.dataPerFlit*64) / slotSize
			if maxSlack < 0 {
				maxSlack = 0
			}
			if h > maxSlack {
				return fmt.Errorf("cxl: data flit claims %d slack slots (max %d)", h, maxSlack)
			}
			want := binary.LittleEndian.Uint16(f[g.size-g.crc:])
			if crc16(f[:g.size-g.crc]) != want {
				return ErrBadCRC
			}
			base := g.header + g.dataPerFlit*64
			for i := 0; i < h; i++ {
				m := decodeSlot(f[base+i*slotSize : base+(i+1)*slotSize])
				u.out = append(u.out, m)
				if m.Op.HasData() {
					u.owed = append(u.owed, len(u.out)-1)
				}
			}
		}
		return nil
	}

	want := binary.LittleEndian.Uint16(f[g.size-g.crc:])
	if crc16(f[:g.size-g.crc]) != want {
		return ErrBadCRC
	}
	n := int(f[2])
	if n > g.slots {
		return fmt.Errorf("cxl: slot count %d exceeds %d", n, g.slots)
	}
	for i := 0; i < n; i++ {
		m := decodeSlot(f[g.header+i*slotSize : g.header+(i+1)*slotSize])
		u.out = append(u.out, m)
		if m.Op.HasData() {
			u.owed = append(u.owed, len(u.out)-1)
		}
	}
	return nil
}

// Drain returns the fully reassembled messages so far.
func (u *ModeUnpacker) Drain() []Message {
	cut := len(u.out)
	if len(u.owed) > 0 {
		cut = u.owed[0]
	}
	done := make([]Message, cut)
	copy(done, u.out[:cut])
	u.out = u.out[cut:]
	for i := range u.owed {
		u.owed[i] -= cut
	}
	return done
}

// BytesPerMessageMode is BytesPerMessage for an arbitrary flit mode: the
// amortized wire bytes of one message's header slot, plus its share of an
// all-data flit for payload-carrying opcodes (net of the slack the 256B
// data flit lends back to header slots).
func BytesPerMessageMode(m Mode, op Opcode) float64 {
	g := geom(m)
	b := float64(g.size) / float64(g.slots)
	if op.HasData() {
		slack := g.size - g.crc - g.header - g.dataPerFlit*64
		if slack < 0 {
			slack = 0
		}
		b += float64(g.size-slack) / float64(g.dataPerFlit)
	}
	return b
}

package cxl

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// randomMessages builds n valid messages with deterministic pseudo-random
// fields, mixing payload and header-only opcodes.
func randomMessages(seed int64, n int) []Message {
	rng := rand.New(rand.NewSource(seed))
	ops := []Opcode{MemRd, MemWr, MemInv, MemData, Cmp, MemRdData}
	ms := make([]Message, n)
	for i := range ms {
		op := ops[rng.Intn(len(ops))]
		m := Message{
			Op:   op,
			Tag:  uint16(rng.Intn(1 << 16)),
			Meta: MetaValue(rng.Intn(int(metaCount))),
			Snp:  SnpType(rng.Intn(int(snpCount))),
			LDID: uint8(rng.Intn(16)),
		}
		if op.IsM2S() {
			m.Addr = uint64(rng.Int63n(maxAddr>>6)) << 6
		}
		if op.HasData() {
			m.Data = make([]byte, 64)
			rng.Read(m.Data)
		}
		ms[i] = m
	}
	return ms
}

// sameMessage compares all wire-carried fields including the payload.
func sameMessage(a, b Message) bool {
	return a.Op == b.Op && a.Addr == b.Addr && a.Tag == b.Tag &&
		a.Meta == b.Meta && a.Snp == b.Snp && a.LDID == b.LDID &&
		bytes.Equal(a.Data, b.Data)
}

func TestLinkHealthy(t *testing.T) {
	for _, mode := range []Mode{Mode68, Mode256} {
		l := &Link{Mode: mode}
		sent := randomMessages(1, 100)
		if err := l.Send(sent...); err != nil {
			t.Fatal(err)
		}
		got, err := l.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(sent) {
			t.Fatalf("%v: delivered %d of %d", mode, len(got), len(sent))
		}
		for i := range sent {
			if !sameMessage(got[i], sent[i]) {
				t.Fatalf("%v: message %d: got %+v want %+v", mode, i, got[i], sent[i])
			}
		}
		st := l.Stats()
		if st.CRCErrors != 0 || st.Retries != 0 || st.ReplayBytes != 0 {
			t.Fatalf("%v: healthy link reported faults: %+v", mode, st)
		}
		if st.FlitsSent == 0 || st.FlitsDelivered != st.FlitsSent {
			t.Fatalf("%v: flit accounting: %+v", mode, st)
		}
	}
}

// The tentpole property: under arbitrary fault plans the link delivers
// every message exactly once, in order — no loss, no duplication — while
// actually exercising the replay machinery.
func TestLinkNoLossNoDuplication(t *testing.T) {
	rates := []float64{0.005, 0.05, 0.2}
	var sawRetries, sawCRC bool
	for trial := 0; trial < 12; trial++ {
		rate := rates[trial%len(rates)]
		mode := Mode68
		if trial%2 == 1 {
			mode = Mode256
		}
		plan := &FaultPlan{Seed: uint64(1000 + trial)}
		plan.CRCRate[DirM2S] = rate
		plan.CRCRate[DirS2M] = rate
		l := &Link{Mode: mode, Dir: DirS2M, Plan: plan, RetryBufEntries: 8, AckDelay: 3}
		sent := randomMessages(int64(trial), 200)

		// Interleave sends and flushes to exercise partial drains.
		var got []Message
		for i := 0; i < len(sent); i += 50 {
			if err := l.Send(sent[i : i+50]...); err != nil {
				t.Fatal(err)
			}
			part, err := l.Flush()
			if err != nil {
				t.Fatalf("trial %d (%v rate %g): %v", trial, mode, rate, err)
			}
			got = append(got, part...)
		}

		if len(got) != len(sent) {
			t.Fatalf("trial %d (%v rate %g): delivered %d of %d messages",
				trial, mode, rate, len(got), len(sent))
		}
		for i := range sent {
			if !sameMessage(got[i], sent[i]) {
				t.Fatalf("trial %d: message %d corrupted or reordered:\n got %+v\nwant %+v",
					trial, i, got[i], sent[i])
			}
		}
		st := l.Stats()
		if st.CRCErrors > 0 {
			sawCRC = true
		}
		if st.Retries > 0 {
			sawRetries = true
			if st.ReplayBytes == 0 && st.Timeouts == 0 {
				t.Fatalf("trial %d: retries without replay bytes: %+v", trial, st)
			}
		}
	}
	if !sawCRC || !sawRetries {
		t.Fatalf("fault plans never exercised the retry path (crc=%v retries=%v)", sawCRC, sawRetries)
	}
}

func TestLinkDeterminism(t *testing.T) {
	run := func() LinkStats {
		plan := &FaultPlan{Seed: 77}
		plan.CRCRate[DirM2S] = 0.1
		l := &Link{Mode: Mode68, Dir: DirM2S, Plan: plan}
		if err := l.Send(randomMessages(5, 300)...); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		return l.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different stats:\n%+v\n%+v", a, b)
	}
	if a.CRCErrors == 0 || a.Retries == 0 {
		t.Fatalf("expected faults at rate 0.1: %+v", a)
	}
}

func TestLinkDown(t *testing.T) {
	plan := &FaultPlan{Seed: 3}
	plan.CRCRate[DirM2S] = 1.0
	l := &Link{Mode: Mode68, Dir: DirM2S, Plan: plan, MaxAttempts: 8}
	if err := l.Send(NewRead(0x1000, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Flush(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("total corruption: got %v, want ErrLinkDown", err)
	}
}

func TestLinkBurstRecovers(t *testing.T) {
	// Total corruption for the first 40 slots, clean afterwards: the link
	// must stall through the burst and then deliver everything.
	plan := &FaultPlan{
		Seed:   11,
		Bursts: []Burst{{Dir: DirM2S, Start: 0, Len: 40, Rate: 1.0}},
	}
	l := &Link{Mode: Mode68, Dir: DirM2S, Plan: plan, RetryBufEntries: 4}
	sent := randomMessages(9, 50)
	if err := l.Send(sent...); err != nil {
		t.Fatal(err)
	}
	got, err := l.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sent) {
		t.Fatalf("delivered %d of %d through the burst", len(got), len(sent))
	}
	st := l.Stats()
	if st.CRCErrors == 0 || st.Retries == 0 {
		t.Fatalf("burst left no trace: %+v", st)
	}
	if st.MaxRetryBuf == 0 || st.MaxRetryBuf > 4 {
		t.Fatalf("retry buffer occupancy %d, want 1..4", st.MaxRetryBuf)
	}
}

func TestLinkStatsConservation(t *testing.T) {
	plan := &FaultPlan{Seed: 21}
	plan.CRCRate[DirS2M] = 0.05
	l := &Link{Mode: Mode68, Dir: DirS2M, Plan: plan}
	if err := l.Send(randomMessages(2, 400)...); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	// Every transmission is either delivered in order, corrupted, or a
	// discarded out-of-order flit; replays are a subset of transmissions.
	if st.FlitsSent < st.FlitsDelivered+st.CRCErrors {
		t.Fatalf("conservation violated: %+v", st)
	}
	if st.ReplayFlits >= st.FlitsSent {
		t.Fatalf("more replays than transmissions: %+v", st)
	}
	if st.ReplayBytes != st.ReplayFlits*FlitSize {
		t.Fatalf("replay byte accounting: %+v", st)
	}
}

func ExampleLink() {
	plan, _ := ParseFaultPlan("seed=42,crc=0.5")
	l := &Link{Mode: Mode68, Dir: DirS2M, Plan: plan}
	data := make([]byte, 64)
	_ = l.Send(NewRead(0x40, 1), NewDataResponse(1, data), NewCompletion(2))
	ms, _ := l.Flush()
	st := l.Stats()
	fmt.Printf("delivered %d messages, %d crc errors, %d retries\n",
		len(ms), st.CRCErrors, st.Retries)
	// Output: delivered 3 messages, 3 crc errors, 2 retries
}

package cxl

import (
	"bytes"
	"testing"
)

func modeRoundTrip(t *testing.T, mode Mode, msgs []Message) []Message {
	t.Helper()
	p := ModePacker{Mode: mode}
	for i := range msgs {
		if err := p.Push(msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	var u ModeUnpacker
	var out []Message
	flits := 0
	for {
		f, ok := p.Next()
		if !ok {
			break
		}
		flits++
		if err := u.Feed(f); err != nil {
			t.Fatal(err)
		}
		out = append(out, u.Drain()...)
	}
	t.Logf("mode %v: %d messages in %d flits", mode, len(msgs), flits)
	return out
}

func mixedMessages(n int) []Message {
	var msgs []Message
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			msgs = append(msgs, NewRead(uint64(i)*64, uint16(i)))
		case 1:
			msgs = append(msgs, NewWrite(uint64(i)*64, uint16(i), payload(byte(i))))
		case 2:
			msgs = append(msgs, NewCompletion(uint16(i)))
		}
	}
	return msgs
}

func TestMode256RoundTrip(t *testing.T) {
	msgs := mixedMessages(40)
	got := modeRoundTrip(t, Mode256, msgs)
	if len(got) != len(msgs) {
		t.Fatalf("round-tripped %d of %d", len(got), len(msgs))
	}
	for i := range msgs {
		if got[i].Op != msgs[i].Op || got[i].Addr != msgs[i].Addr ||
			got[i].Tag != msgs[i].Tag || !bytes.Equal(got[i].Data, msgs[i].Data) {
			t.Fatalf("message %d mismatch", i)
		}
	}
}

func TestMode68MatchesLegacyPacker(t *testing.T) {
	msgs := mixedMessages(17)
	got := modeRoundTrip(t, Mode68, msgs)
	if len(got) != len(msgs) {
		t.Fatalf("round-tripped %d of %d", len(got), len(msgs))
	}
}

func TestMode256Density(t *testing.T) {
	countFlits := func(mode Mode, msgs []Message) (flits, bytes int) {
		p := ModePacker{Mode: mode}
		for i := range msgs {
			_ = p.Push(msgs[i])
		}
		for {
			f, ok := p.Next()
			if !ok {
				return flits, bytes
			}
			flits++
			bytes += len(f)
		}
	}
	// 32 header-only reads: 68B mode needs 8 flits, 256B needs 2.
	var reads []Message
	for i := 0; i < 32; i++ {
		reads = append(reads, NewRead(uint64(i)*64, uint16(i)))
	}
	f68, _ := countFlits(Mode68, reads)
	f256, _ := countFlits(Mode256, reads)
	if f68 != 8 || f256 != 2 {
		t.Fatalf("flit counts: 68B=%d (want 8), 256B=%d (want 2)", f68, f256)
	}
	// 9 data responses: 68B needs 9 data flits; 256B needs 3.
	var resp []Message
	for i := 0; i < 9; i++ {
		resp = append(resp, NewDataResponse(uint16(i), payload(byte(i))))
	}
	f68, b68 := countFlits(Mode68, resp)
	f256, b256 := countFlits(Mode256, resp)
	if f68 != 3+9 || f256 != 1+3 {
		t.Fatalf("data flit counts: 68B=%d, 256B=%d", f68, f256)
	}
	// Pure data traffic: near parity in this layout (the real format
	// reaches it through byte-granular slotting); within 30%.
	if float64(b256) > float64(b68)*1.3 {
		t.Fatalf("256B mode data overhead too large: %d vs %d wire bytes", b256, b68)
	}
	// At full occupancy the per-message wire cost is near parity: the
	// 256B format's wins are FEC strength and PBR routing, not raw
	// density.  Large header-only batches land within 10%.
	var many []Message
	for i := 0; i < 160; i++ {
		many = append(many, NewCompletion(uint16(i)))
	}
	_, hb68 := countFlits(Mode68, many)
	_, hb256 := countFlits(Mode256, many)
	if r := float64(hb256) / float64(hb68); r < 0.85 || r > 1.1 {
		t.Fatalf("full-flit header density diverges: 256B/68B = %.2f", r)
	}
}

func TestMode256Errors(t *testing.T) {
	p := ModePacker{Mode: Mode256}
	_ = p.Push(NewRead(0, 1))
	f, _ := p.Next()

	var u ModeUnpacker
	if err := u.Feed(f[:10]); err == nil {
		t.Fatal("short flit accepted")
	}
	bad := append([]byte{}, f...)
	bad[8] ^= 0xff
	if err := u.Feed(bad); err != ErrBadCRC {
		t.Fatalf("corrupted 256B flit: %v", err)
	}
	var junk [256]byte
	junk[0] = 0x9
	if err := u.Feed(junk[:]); err == nil {
		t.Fatal("unknown flit type accepted")
	}
	var u2 ModeUnpacker
	stray := make([]byte, 256)
	stray[0] = flitAllData256
	stray[2] = 1
	if err := u2.Feed(stray); err != ErrStrayData {
		t.Fatalf("stray 256B data flit: %v", err)
	}
}

func TestBytesPerMessageMode(t *testing.T) {
	if BytesPerMessageMode(Mode68, MemRd) != 17 {
		t.Fatal("68B header bytes")
	}
	if got := BytesPerMessageMode(Mode256, MemRd); got != 16 {
		t.Fatalf("256B header bytes = %v", got)
	}
	// Data responses: near parity between the modes in this layout.
	d68 := BytesPerMessageMode(Mode68, MemData)
	d256 := BytesPerMessageMode(Mode256, MemData)
	if d256 > d68*1.3 || d68 > d256*1.3 {
		t.Fatalf("data bytes diverge: 68B=%v 256B=%v", d68, d256)
	}
	if Mode256.String() != "256B" || Mode68.String() != "68B" {
		t.Fatal("mode names")
	}
}

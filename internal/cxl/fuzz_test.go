package cxl

import (
	"bytes"
	"testing"
)

// seedFlits68 returns a few well-formed 68B flits for fuzz corpora.
func seedFlits68() [][FlitSize]byte {
	var p Packer
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	_ = p.Push(NewRead(0x1000, 1))
	_ = p.Push(NewWrite(0x2000, 2, data))
	_ = p.Push(NewCompletion(3))
	var out [][FlitSize]byte
	for {
		f, ok := p.Next()
		if !ok {
			break
		}
		out = append(out, f)
	}
	return out
}

// FuzzFlitDecode feeds arbitrary 68-byte flits (and short prefixes padded
// out) to the 68B Unpacker: it must never panic, only return structured
// errors, and CRC-valid protocol flits must decode to validatable slots.
func FuzzFlitDecode(f *testing.F) {
	for _, fl := range seedFlits68() {
		f.Add(fl[:])
	}
	f.Add(bytes.Repeat([]byte{0xff}, FlitSize))
	f.Add(make([]byte, FlitSize))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var fl [FlitSize]byte
		copy(fl[:], raw)
		var u Unpacker
		if err := u.Feed(fl); err != nil {
			return // structured rejection is the contract
		}
		// Accepted flits must drain without panicking either.
		for _, m := range u.Drain() {
			_ = m.Op.String()
		}

		// A second arbitrary flit after a good one exercises the
		// sequence/owed-payload state machine.
		var fl2 [FlitSize]byte
		if len(raw) > FlitSize {
			copy(fl2[:], raw[FlitSize:])
		} else {
			fl2 = fl
			fl2[1]++ // keep the sequence plausible
		}
		_ = u.Feed(fl2)
		u.Drain()
	})
}

// FuzzFlit256Feed feeds arbitrary byte slices to the mode-dispatching
// unpacker, which must reject malformed 68B and 256B flits (including
// corrupted slack-slot counts on data flits) without panicking.
func FuzzFlit256Feed(f *testing.F) {
	var p ModePacker
	p.Mode = Mode256
	data := make([]byte, 64)
	_ = p.Push(NewWrite(0x4000, 7, data))
	_ = p.Push(NewRead(0x8000, 8))
	for {
		fl, ok := p.Next()
		if !ok {
			break
		}
		f.Add(fl)
	}
	for _, fl := range seedFlits68() {
		f.Add(fl[:])
	}
	// The historical panic: a 68B all-data flit whose f[3] (a payload byte
	// position in that mode) is nonzero, and a 256B data flit overclaiming
	// slack slots.
	crash68 := make([]byte, FlitSize)
	crash68[0] = flitAllData
	crash68[3] = 1
	f.Add(crash68)
	crash256 := make([]byte, 256)
	crash256[0] = flitAllData256
	crash256[3] = 0xff
	f.Add(crash256)
	f.Add([]byte{})
	f.Add([]byte{flitProtocol256})

	f.Fuzz(func(t *testing.T, raw []byte) {
		var u ModeUnpacker
		if err := u.Feed(raw); err != nil {
			return
		}
		u.Drain()
		_ = u.Feed(raw) // sequence-gap path
		u.Drain()
	})
}

// FuzzParseFaultPlan checks the CLI fault-plan grammar never panics, only
// returns validated plans, and that String is a canonical form: whatever
// parses must re-parse from its own String, and that canonical string is a
// fixpoint (printing and re-parsing it changes nothing).  Every failure
// report in the chaos subsystem leans on this round-trip.
func FuzzParseFaultPlan(f *testing.F) {
	f.Add("seed=42,crc=1e-3")
	f.Add("burst=500:100:0.3:1000,timeout=0:10,poison=0x1000:256")
	f.Add("crc-m2s=0.5,crc-s2m=1,throttle=5:5:20,timeout-penalty=9")
	f.Add("seed=7,poison=4096:128,viral=3:50000,remove=200000:8000")
	f.Add("viral=1,remove=1")
	f.Add("healthy")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseFaultPlan(s)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseFaultPlan(%q) returned invalid plan: %v", s, err)
		}
		canon := p.String()
		q, err := ParseFaultPlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if again := q.String(); again != canon {
			t.Fatalf("String not a fixpoint: %q -> %q -> %q", s, canon, again)
		}
	})
}

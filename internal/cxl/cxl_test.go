package cxl

import (
	"bytes"
	"testing"
	"testing/quick"
)

func payload(b byte) []byte {
	d := make([]byte, 64)
	for i := range d {
		d[i] = b + byte(i)
	}
	return d
}

func TestMessageValidate(t *testing.T) {
	good := []Message{
		NewRead(0x1000, 7),
		NewWrite(0x2000, 8, payload(1)),
		NewDataResponse(7, payload(2)),
		NewCompletion(8),
		{Op: MemSpecRd, Addr: 0, Tag: 0},
	}
	for i, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []Message{
		{Op: opcodeCount, Addr: 0},                  // bad opcode
		{Op: MemRd, Addr: maxAddr},                  // address too wide
		{Op: MemRd, Addr: 0x1001},                   // unaligned
		{Op: MemRd, Addr: 0, Meta: metaCount},       // bad meta
		{Op: MemRd, Addr: 0, Snp: snpCount},         // bad snoop
		{Op: MemRd, Addr: 0, LDID: 16},              // LD-ID too wide
		{Op: MemWr, Addr: 0, Data: payload(0)[:63]}, // short payload
		{Op: MemRd, Addr: 0, Data: payload(0)},      // unexpected data
		{Op: MemData, Tag: 1},                       // missing data
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad[%d] (%v) accepted", i, m.Op)
		}
	}
}

func TestOpcodeProperties(t *testing.T) {
	if !MemRd.IsM2S() || !MemWr.IsM2S() || Cmp.IsM2S() || MemData.IsM2S() {
		t.Fatal("direction classification")
	}
	if MemRd.HasData() || !MemWr.HasData() || !MemData.HasData() || Cmp.HasData() {
		t.Fatal("payload classification")
	}
	if MemData.String() != "MemData" || CmpE.String() != "Cmp-E" {
		t.Fatal("mnemonics")
	}
}

func roundTrip(t *testing.T, msgs []Message) []Message {
	t.Helper()
	var p Packer
	for i := range msgs {
		if err := p.Push(msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	var u Unpacker
	var out []Message
	for {
		f, ok := p.Next()
		if !ok {
			break
		}
		if err := u.Feed(f); err != nil {
			t.Fatal(err)
		}
		out = append(out, u.Drain()...)
	}
	return out
}

func TestFlitRoundTripHeaders(t *testing.T) {
	msgs := []Message{
		NewRead(0x4000, 1),
		{Op: MemSpecRd, Addr: 0x8000, Tag: 2, Meta: MetaShared, Snp: SnpData, LDID: 5},
		NewCompletion(3),
		{Op: CmpE, Tag: 4},
		NewRead(0x3ffffffffc0, 5), // max 46-bit address
	}
	got := roundTrip(t, msgs)
	if len(got) != len(msgs) {
		t.Fatalf("round-tripped %d of %d", len(got), len(msgs))
	}
	for i := range msgs {
		g, w := got[i], msgs[i]
		if g.Op != w.Op || g.Addr != w.Addr || g.Tag != w.Tag ||
			g.Meta != w.Meta || g.Snp != w.Snp || g.LDID != w.LDID {
			t.Fatalf("message %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestFlitRoundTripData(t *testing.T) {
	msgs := []Message{
		NewWrite(0x1000, 1, payload(10)),
		NewRead(0x2000, 2),
		NewDataResponse(1, payload(20)),
	}
	got := roundTrip(t, msgs)
	if len(got) != 3 {
		t.Fatalf("got %d messages", len(got))
	}
	if !bytes.Equal(got[0].Data, payload(10)) || !bytes.Equal(got[2].Data, payload(20)) {
		t.Fatal("payload corrupted")
	}
	if got[1].Data != nil {
		t.Fatal("read acquired a payload")
	}
}

func TestFlitPackingDensity(t *testing.T) {
	// Four header-only messages fit one protocol flit.
	var p Packer
	for i := 0; i < 4; i++ {
		if err := p.Push(NewRead(uint64(i)*64, uint16(i))); err != nil {
			t.Fatal(err)
		}
	}
	flits := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		flits++
	}
	if flits != 1 {
		t.Fatalf("4 reads used %d flits, want 1", flits)
	}
	// A write = 1 protocol flit + 1 all-data flit.
	p = Packer{}
	_ = p.Push(NewWrite(0, 0, payload(0)))
	flits = 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		flits++
	}
	if flits != 2 {
		t.Fatalf("1 write used %d flits, want 2", flits)
	}
}

func TestUnpackerErrors(t *testing.T) {
	var p Packer
	_ = p.Push(NewRead(0, 1))
	f, _ := p.Next()

	// CRC corruption.
	bad := f
	bad[5] ^= 0xff
	var u Unpacker
	if err := u.Feed(bad); err == nil {
		t.Fatal("corrupted flit accepted")
	}

	// Sequence gap.
	var u2 Unpacker
	if err := u2.Feed(f); err != nil {
		t.Fatal(err)
	}
	gap := f
	gap[1] = 99
	crc := crc16(gap[:FlitSize-crcSize])
	gap[FlitSize-2] = byte(crc)
	gap[FlitSize-1] = byte(crc >> 8)
	if err := u2.Feed(gap); err == nil {
		t.Fatal("sequence gap accepted")
	}

	// Stray all-data flit.
	var u3 Unpacker
	var stray [FlitSize]byte
	stray[0] = flitAllData
	if err := u3.Feed(stray); err != ErrStrayData {
		t.Fatalf("stray data: %v", err)
	}

	// Unknown flit type.
	var u4 Unpacker
	var junk [FlitSize]byte
	junk[0] = 0x7
	if err := u4.Feed(junk); err == nil {
		t.Fatal("unknown flit type accepted")
	}
}

func TestPushRejectsInvalid(t *testing.T) {
	var p Packer
	if err := p.Push(Message{Op: MemRd, Addr: 1}); err == nil {
		t.Fatal("unaligned address accepted")
	}
	if p.Pending() != 0 {
		t.Fatal("rejected message queued")
	}
}

// Property: any valid message sequence round-trips losslessly.
func TestFlitRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var msgs []Message
		for i, r := range raw {
			if len(msgs) >= 40 {
				break
			}
			addr := uint64(r) * 64 % maxAddr
			tag := uint16(i)
			switch r % 4 {
			case 0:
				msgs = append(msgs, NewRead(addr, tag))
			case 1:
				msgs = append(msgs, NewWrite(addr, tag, payload(byte(r))))
			case 2:
				msgs = append(msgs, NewCompletion(tag))
			case 3:
				msgs = append(msgs, NewDataResponse(tag, payload(byte(r))))
			}
		}
		var p Packer
		for i := range msgs {
			if p.Push(msgs[i]) != nil {
				return false
			}
		}
		var u Unpacker
		var out []Message
		for {
			flit, ok := p.Next()
			if !ok {
				break
			}
			if u.Feed(flit) != nil {
				return false
			}
			out = append(out, u.Drain()...)
		}
		if len(out) != len(msgs) {
			return false
		}
		for i := range msgs {
			if out[i].Op != msgs[i].Op || out[i].Addr != msgs[i].Addr ||
				out[i].Tag != msgs[i].Tag || !bytes.Equal(out[i].Data, msgs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFlitsFor(t *testing.T) {
	cases := []struct{ hdr, data, want int }{
		{1, 0, 1},
		{4, 0, 1},
		{5, 0, 2},
		{1, 1, 2},
		{8, 8, 10},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := FlitsFor(c.hdr, c.data); got != c.want {
			t.Errorf("FlitsFor(%d, %d) = %d, want %d", c.hdr, c.data, got, c.want)
		}
	}
	if BytesPerMessage(MemRd) != 17 {
		t.Fatalf("read header bytes = %v", BytesPerMessage(MemRd))
	}
	if BytesPerMessage(MemWr) != 85 {
		t.Fatalf("write bytes = %v", BytesPerMessage(MemWr))
	}
}

func TestClassifyLoad(t *testing.T) {
	cases := []struct {
		occ  float64
		want DevLoad
	}{
		{0, LightLoad},
		{30, LightLoad},
		{40, OptimalLoad},
		{69, OptimalLoad},
		{75, ModerateOverload},
		{95, SevereOverload},
		{100, SevereOverload},
	}
	for _, c := range cases {
		if got := ClassifyLoad(c.occ, 100); got != c.want {
			t.Errorf("ClassifyLoad(%v) = %v, want %v", c.occ, got, c.want)
		}
	}
	if ClassifyLoad(5, 0) != LightLoad {
		t.Fatal("zero capacity must be light")
	}
	if SevereOverload.String() != "Severe Overload" {
		t.Fatal("class name")
	}
}

func TestLoadTrackerIntegration(t *testing.T) {
	tr := NewLoadTracker(10)
	tr.Update(0, 2)  // light from 0
	tr.Update(50, 5) // 7/10 -> moderate from 50
	tr.Update(80, 3) // 10/10 -> severe from 80
	tr.Advance(100)
	if got := tr.Cycles(LightLoad); got != 50 {
		t.Fatalf("light cycles = %d", got)
	}
	if got := tr.Cycles(ModerateOverload); got != 30 {
		t.Fatalf("moderate cycles = %d", got)
	}
	if got := tr.Cycles(SevereOverload); got != 20 {
		t.Fatalf("severe cycles = %d", got)
	}
	if tr.Dominant() != LightLoad {
		t.Fatalf("dominant = %v", tr.Dominant())
	}
	if tr.Current() != SevereOverload {
		t.Fatalf("current = %v", tr.Current())
	}
	// Draining below zero clamps.
	tr.Update(110, -99)
	if tr.Current() != LightLoad {
		t.Fatal("negative occupancy not clamped")
	}
}

package cxl

import (
	"math"
	"strings"
	"testing"
)

func TestFaultPlanEmpty(t *testing.T) {
	var nilPlan *FaultPlan
	if nilPlan.Corrupts(DirM2S, 0, 0) || nilPlan.TimeoutAt(0) || nilPlan.ThrottledAt(0) || nilPlan.Poisoned(0) {
		t.Fatal("nil plan injected a fault")
	}
	if !nilPlan.Empty() || !(&FaultPlan{Seed: 7}).Empty() {
		t.Fatal("empty plan not reported empty")
	}
	if p := (&FaultPlan{CRCRate: [dirCount]float64{1e-3, 0}}); p.Empty() {
		t.Fatal("plan with faults reported empty")
	}
}

func TestFaultPlanDeterminism(t *testing.T) {
	p := &FaultPlan{Seed: 42, CRCRate: [dirCount]float64{0.1, 0.1}}
	q := &FaultPlan{Seed: 42, CRCRate: [dirCount]float64{0.1, 0.1}}
	for i := uint64(0); i < 1000; i++ {
		if p.Corrupts(DirM2S, i, i) != q.Corrupts(DirM2S, i, i) {
			t.Fatalf("draw %d diverged between identical plans", i)
		}
	}
	r := &FaultPlan{Seed: 43, CRCRate: [dirCount]float64{0.1, 0.1}}
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if p.Corrupts(DirS2M, i, 0) == r.Corrupts(DirS2M, i, 0) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical corruption streams")
	}
}

func TestFaultPlanRateEmpirical(t *testing.T) {
	p := &FaultPlan{Seed: 9, CRCRate: [dirCount]float64{0.1, 0.02}}
	const n = 200000
	hits := [dirCount]int{}
	for i := uint64(0); i < n; i++ {
		for d := Direction(0); d < dirCount; d++ {
			if p.Corrupts(d, i, 0) {
				hits[d]++
			}
		}
	}
	for d, want := range []float64{0.1, 0.02} {
		got := float64(hits[d]) / n
		if math.Abs(got-want) > want*0.15 {
			t.Errorf("%v empirical rate %.4f, want ~%.4f", Direction(d), got, want)
		}
	}
}

func TestFaultPlanBurst(t *testing.T) {
	p := &FaultPlan{
		Seed:   1,
		Bursts: []Burst{{Dir: DirS2M, Start: 100, Len: 50, Period: 200, Rate: 1.0}},
	}
	cases := []struct {
		now  uint64
		want float64
	}{
		{0, 0}, {99, 0}, {100, 1}, {149, 1}, {150, 0},
		{300, 1}, {349, 1}, {350, 0}, {500, 1},
	}
	for _, c := range cases {
		if got := p.Rate(DirS2M, c.now); got != c.want {
			t.Errorf("rate at %d: got %g want %g", c.now, got, c.want)
		}
		if got := p.Rate(DirM2S, c.now); got != 0 {
			t.Errorf("M2S rate at %d leaked from S2M burst: %g", c.now, got)
		}
	}
	// Burst rates stack with the base rate but clamp at 1.
	p.CRCRate[DirS2M] = 0.5
	if got := p.Rate(DirS2M, 120); got != 1 {
		t.Errorf("stacked rate %g, want clamp to 1", got)
	}
}

func TestEpisodeWindows(t *testing.T) {
	p := &FaultPlan{
		Timeouts:  []Episode{{Start: 10, Len: 5}},
		Throttles: []Episode{{Start: 0, Len: 2, Period: 10}},
	}
	if p.TimeoutAt(9) || !p.TimeoutAt(10) || !p.TimeoutAt(14) || p.TimeoutAt(15) {
		t.Fatal("one-shot timeout window wrong")
	}
	for _, now := range []uint64{0, 1, 10, 11, 100, 101} {
		if !p.ThrottledAt(now) {
			t.Errorf("throttle inactive at %d", now)
		}
	}
	for _, now := range []uint64{2, 9, 12, 109} {
		if p.ThrottledAt(now) {
			t.Errorf("throttle active at %d", now)
		}
	}
	if p.Penalty() != DefaultTimeoutPenalty {
		t.Fatalf("default penalty %d", p.Penalty())
	}
	p.TimeoutPenalty = 123
	if p.Penalty() != 123 {
		t.Fatalf("explicit penalty %d", p.Penalty())
	}
}

func TestFaultPlanPoison(t *testing.T) {
	p := &FaultPlan{PoisonBase: 0x1000, PoisonLen: 0x100}
	if p.Poisoned(0xfff) || !p.Poisoned(0x1000) || !p.Poisoned(0x10ff) || p.Poisoned(0x1100) {
		t.Fatal("poison range wrong")
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("seed=42,crc=1e-3,burst=500:100:0.3:1000,timeout=0:10,timeout-penalty=2000,throttle=5:5:20,poison=0x1000:256")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.CRCRate[DirM2S] != 1e-3 || p.CRCRate[DirS2M] != 1e-3 {
		t.Fatalf("parsed %+v", p)
	}
	if len(p.Bursts) != 2 || p.Bursts[0].Period != 1000 || p.Bursts[1].Rate != 0.3 {
		t.Fatalf("bursts %+v", p.Bursts)
	}
	if len(p.Timeouts) != 1 || p.TimeoutPenalty != 2000 || len(p.Throttles) != 1 {
		t.Fatalf("episodes %+v", p)
	}
	if p.PoisonBase != 0x1000 || p.PoisonLen != 256 {
		t.Fatalf("poison %+v", p)
	}
	if s := p.String(); !strings.Contains(s, "seed=42") {
		t.Fatalf("String() = %q", s)
	}

	// Direction-specific rates.
	p, err = ParseFaultPlan("crc-s2m=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if p.CRCRate[DirM2S] != 0 || p.CRCRate[DirS2M] != 0.01 {
		t.Fatalf("directional rates %+v", p.CRCRate)
	}

	for _, bad := range []string{
		"nonsense",
		"frob=1",
		"crc=maybe",
		"crc=2.0",
		"burst=1:2",
		"burst=1:2:rate",
		"timeout=5",
		"poison=1",
		"burst=0:200:0.5:100", // window longer than period
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}

	// Empty string parses to a healthy plan.
	p, err = ParseFaultPlan("")
	if err != nil || !p.Empty() {
		t.Fatalf("empty spec: plan=%v err=%v", p, err)
	}

	// Bad RAS knobs.
	for _, bad := range []string{"viral=0", "viral=x", "remove=0", "remove=1:2:3"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

// TestFaultPlanStringRoundTrip pins the canonical form: a plan using every
// knob class prints to a string that re-parses to the identical plan, and
// an empty plan round-trips through the "healthy" literal.
func TestFaultPlanStringRoundTrip(t *testing.T) {
	p := &FaultPlan{
		Seed:           9,
		CRCRate:        [2]float64{1e-3, 0.25},
		Bursts:         []Burst{{Dir: DirS2M, Start: 100, Len: 50, Rate: 0.5, Period: 400}},
		Timeouts:       []Episode{{Start: 10, Len: 5, Period: 100}},
		TimeoutPenalty: 777,
		Throttles:      []Episode{{Start: 0, Len: 1}},
		PoisonBase:     0x1000,
		PoisonLen:      256,
		ViralThreshold: 4,
		ViralReset:     60_000,
		RemoveAt:       900_000,
		RemovePenalty:  5_000,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.String()
	q, err := ParseFaultPlan(s)
	if err != nil {
		t.Fatalf("String() = %q does not parse: %v", s, err)
	}
	if got := q.String(); got != s {
		t.Fatalf("round trip drift:\n %q\n %q", s, got)
	}
	if q.ViralThreshold != 4 || q.ViralReset != 60_000 || q.RemoveAt != 900_000 || q.RemovePenalty != 5_000 {
		t.Fatalf("RAS knobs lost in round trip: %+v", q)
	}

	healthy := (&FaultPlan{}).String()
	if healthy != "healthy" {
		t.Fatalf("empty plan String() = %q", healthy)
	}
	hp, err := ParseFaultPlan(healthy)
	if err != nil || !hp.Empty() {
		t.Fatalf("healthy literal: plan=%+v err=%v", hp, err)
	}
}

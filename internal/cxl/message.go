// Package cxl implements the CXL.mem protocol substrate the simulator's
// FlexBus transports: M2S request (Req) and request-with-data (RwD)
// messages, S2M no-data (NDR) and data (DRS) responses, their packing into
// 68-byte flits with CRC protection, and the device-load (QoS telemetry)
// classification the CXL 3.x specification derives from the device queue
// state — the paper's §2.1 protocol description and the §3.5 telemetry it
// leaves as future work.
//
// The bit layout is a faithful simplification of the 68B flit mode: a
// 4-byte flit header, four 15-byte slots each carrying one message (a
// 64-byte data payload spans a dedicated all-data flit), and a trailing
// CRC-16.  It is not wire-compatible with real hardware; it preserves the
// fields, the slot/flit structure, and the header/data bandwidth overheads
// that matter for protocol analysis.
package cxl

import "fmt"

// Opcode identifies a CXL.mem message type.
type Opcode uint8

// M2S request opcodes (master to subordinate).
const (
	// MemInv invalidates device-tracked state (BI flows); no data.
	MemInv Opcode = iota
	// MemRd is the Request-without-data read (the paper's Req/M2S read).
	MemRd
	// MemRdData reads with a forward-to-requester hint.
	MemRdData
	// MemSpecRd is a speculative (prefetch-initiated) read.
	MemSpecRd
	// MemWr is the Request-with-Data full-line write (RwD).
	MemWr
	// MemWrPtl is a partial-line write (RwD with byte enables).
	MemWrPtl

	// S2M opcodes (subordinate to master).

	// Cmp is the NDR completion for writes and invalidations.
	Cmp
	// CmpS is the NDR completion granting Shared state.
	CmpS
	// CmpE is the NDR completion granting Exclusive state.
	CmpE
	// MemData is the DRS data response for reads.
	MemData

	opcodeCount
)

// String returns the specification mnemonic.
func (o Opcode) String() string {
	switch o {
	case MemInv:
		return "MemInv"
	case MemRd:
		return "MemRd"
	case MemRdData:
		return "MemRdData"
	case MemSpecRd:
		return "MemSpecRd"
	case MemWr:
		return "MemWr"
	case MemWrPtl:
		return "MemWrPtl"
	case Cmp:
		return "Cmp"
	case CmpS:
		return "Cmp-S"
	case CmpE:
		return "Cmp-E"
	case MemData:
		return "MemData"
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// IsM2S reports whether the opcode travels master-to-subordinate.
func (o Opcode) IsM2S() bool { return o <= MemWrPtl }

// HasData reports whether the message carries a 64-byte payload.
func (o Opcode) HasData() bool {
	return o == MemWr || o == MemWrPtl || o == MemData
}

// MetaValue is the 2-bit coherence metadata of M2S requests (the host
// directory state the device tracks for back-invalidation).
type MetaValue uint8

// Meta states.
const (
	MetaInvalid MetaValue = iota
	MetaAny
	MetaShared
	metaCount
)

// SnpType is the snoop semantic attached to an M2S request.
type SnpType uint8

// Snoop types.
const (
	NoOp SnpType = iota
	SnpData
	SnpCur
	SnpInv
	snpCount
)

// Message is one CXL.mem protocol message.  Addr is line-aligned and
// limited to 46 bits (the HPA field width of the 68B slot format); Tag
// matches requests to responses; LDID selects the logical device of a
// multi-headed module.
type Message struct {
	Op   Opcode
	Addr uint64
	Tag  uint16
	Meta MetaValue
	Snp  SnpType
	LDID uint8 // 4 bits

	// Data is the 64-byte payload for HasData opcodes (nil otherwise).
	Data []byte
}

// maxAddr is the 46-bit HPA limit of the slot format.
const maxAddr = 1 << 46

// Validate checks field ranges and payload presence.
func (m *Message) Validate() error {
	if m.Op >= opcodeCount {
		return fmt.Errorf("cxl: invalid opcode %d", m.Op)
	}
	if m.Addr >= maxAddr {
		return fmt.Errorf("cxl: address %#x exceeds the 46-bit HPA field", m.Addr)
	}
	if m.Addr%64 != 0 {
		return fmt.Errorf("cxl: address %#x is not line aligned", m.Addr)
	}
	if m.Meta >= metaCount {
		return fmt.Errorf("cxl: invalid meta value %d", m.Meta)
	}
	if m.Snp >= snpCount {
		return fmt.Errorf("cxl: invalid snoop type %d", m.Snp)
	}
	if m.LDID > 0xf {
		return fmt.Errorf("cxl: LD-ID %d exceeds 4 bits", m.LDID)
	}
	if m.Op.HasData() {
		if len(m.Data) != 64 {
			return fmt.Errorf("cxl: %v requires a 64-byte payload, got %d", m.Op, len(m.Data))
		}
	} else if m.Data != nil {
		return fmt.Errorf("cxl: %v must not carry data", m.Op)
	}
	return nil
}

// NewRead builds the M2S Req for a demand read.
func NewRead(addr uint64, tag uint16) Message {
	return Message{Op: MemRd, Addr: addr, Tag: tag, Meta: MetaAny, Snp: NoOp}
}

// NewWrite builds the M2S RwD for a full-line write.
func NewWrite(addr uint64, tag uint16, data []byte) Message {
	return Message{Op: MemWr, Addr: addr, Tag: tag, Meta: MetaAny, Snp: NoOp, Data: data}
}

// NewDataResponse builds the S2M DRS answering a read.
func NewDataResponse(tag uint16, data []byte) Message {
	return Message{Op: MemData, Tag: tag, Data: data}
}

// NewCompletion builds the S2M NDR answering a write.
func NewCompletion(tag uint16) Message {
	return Message{Op: Cmp, Tag: tag}
}

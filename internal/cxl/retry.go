package cxl

import (
	"errors"
	"fmt"
)

// Link-layer retry (the CXL LRSM, abstracted): every transmitted flit is
// held in a bounded retry buffer until the far side acknowledges it.  The
// receiver accepts flits strictly in sequence order; a CRC-bad or
// out-of-order flit triggers a single Nak carrying the next expected
// sequence number, which rewinds the sender to that flit (go-back-N
// replay).  Acks are cumulative.  The control channel (Ack/Nak) is modeled
// as reliable but delayed — on real hardware it rides protected flit
// headers — and a sender-side timeout re-arms replay if a Nak'd
// retransmission is itself corrupted.
//
// Time advances in link slots (one flit transmission per slot), so replay
// cost is visible as extra occupied slots: exactly the quantity the
// simulator charges to the FlexBus byte server.

// Retry-link defaults.
const (
	DefaultRetryBufEntries = 32 // flits held awaiting ack
	DefaultAckDelay        = 2  // slots from reception to ack arrival
	DefaultMaxAttempts     = 64 // transmissions per flit before giving up
)

// ErrLinkDown is returned when a flit exhausts its transmission attempts —
// the point where real hardware would escalate to link retraining.
var ErrLinkDown = errors.New("cxl: link retry attempts exhausted")

// LinkStats counts link-layer activity; these feed the unc_cxlcm_link PMU
// events in the simulator.
type LinkStats struct {
	FlitsSent      uint64 // transmissions, including replays
	FlitsDelivered uint64 // flits accepted in order by the receiver
	CRCErrors      uint64 // flits arriving with a bad wire CRC
	Retries        uint64 // replay rewinds (Naks plus timeouts)
	ReplayFlits    uint64 // retransmitted flits
	ReplayBytes    uint64 // wire bytes spent on retransmissions
	Timeouts       uint64 // sender-side replay timeouts
	Slots          uint64 // link slots consumed end to end
	MaxRetryBuf    int    // peak retry-buffer occupancy
}

// ctrlMsg is an Ack or Nak in flight on the (reliable) control channel.
// n is the receiver's next expected absolute flit index; both kinds
// cumulatively acknowledge everything below n.
type ctrlMsg struct {
	due uint64
	nak bool
	n   uint64
}

// bufEntry is one flit parked in the retry buffer.
type bufEntry struct {
	flit     []byte
	wireCRC  uint16 // physical-layer CRC computed at capture
	sent     bool
	attempts int
}

// Link is a simplex retry link: messages go in via Send, survive a faulty
// wire via Ack/Nak replay, and come out of Flush exactly once, in order.
type Link struct {
	Mode Mode       // flit format
	Dir  Direction  // direction key into the fault plan
	Plan *FaultPlan // nil = healthy wire

	RetryBufEntries int    // 0 = DefaultRetryBufEntries (max 128)
	AckDelay        uint64 // 0 = DefaultAckDelay
	MaxAttempts     int    // 0 = DefaultMaxAttempts

	packer   ModePacker
	unpacker ModeUnpacker

	buf        []bufEntry
	sendBase   uint64 // absolute index of buf[0]
	cursor     uint64 // next absolute index to transmit
	txCount    uint64 // total transmissions (fault-plan draw index)
	rxExpected uint64 // receiver's next expected absolute index
	awaitNak   bool   // a Nak for the current gap is outstanding
	ctrl       []ctrlMsg
	now        uint64
	progressAt uint64
	stats      LinkStats
	inited     bool
}

func (l *Link) init() {
	if l.inited {
		return
	}
	if l.RetryBufEntries <= 0 {
		l.RetryBufEntries = DefaultRetryBufEntries
	}
	if l.RetryBufEntries > 128 {
		// The 8-bit wire sequence number disambiguates windows < 256; halve
		// it so ack-vs-replay ambiguity is impossible even mid-rewind.
		l.RetryBufEntries = 128
	}
	if l.AckDelay == 0 {
		l.AckDelay = DefaultAckDelay
	}
	if l.MaxAttempts <= 0 {
		l.MaxAttempts = DefaultMaxAttempts
	}
	l.packer.Mode = l.Mode
	l.inited = true
}

// Send queues messages for transmission.
func (l *Link) Send(ms ...Message) error {
	l.init()
	for _, m := range ms {
		if err := l.packer.Push(m); err != nil {
			return err
		}
	}
	return nil
}

// advance cumulatively acknowledges every flit below n.
func (l *Link) advance(n uint64) {
	for l.sendBase < n && len(l.buf) > 0 {
		l.buf = l.buf[1:]
		l.sendBase++
	}
	if l.cursor < l.sendBase {
		l.cursor = l.sendBase
	}
}

// timeoutWindow is how many slots without receiver progress the sender
// tolerates before rewinding to the oldest unacked flit.
func (l *Link) timeoutWindow() uint64 {
	return 2*l.AckDelay + uint64(l.RetryBufEntries) + 4
}

// step advances the link by one slot.
func (l *Link) step() error {
	l.now++
	l.stats.Slots++

	// Deliver due control messages (FIFO; the channel is in-order).
	for len(l.ctrl) > 0 && l.ctrl[0].due <= l.now {
		c := l.ctrl[0]
		l.ctrl = l.ctrl[1:]
		l.advance(c.n)
		if c.nak {
			l.cursor = c.n
			l.stats.Retries++
		}
		l.progressAt = l.now
	}

	// Pull a fresh flit into the retry buffer when the cursor has caught up
	// and the window has room.
	if l.cursor == l.sendBase+uint64(len(l.buf)) && len(l.buf) < l.RetryBufEntries {
		if f, ok := l.packer.Next(); ok {
			l.buf = append(l.buf, bufEntry{flit: f, wireCRC: crc16(f)})
			if len(l.buf) > l.stats.MaxRetryBuf {
				l.stats.MaxRetryBuf = len(l.buf)
			}
		}
	}

	// Transmit one flit per slot.
	if l.cursor < l.sendBase+uint64(len(l.buf)) {
		e := &l.buf[l.cursor-l.sendBase]
		e.attempts++
		if e.attempts > l.MaxAttempts {
			return fmt.Errorf("%w: flit %d corrupted %d times", ErrLinkDown, l.cursor, e.attempts-1)
		}
		if e.sent {
			l.stats.ReplayFlits++
			l.stats.ReplayBytes += uint64(len(e.flit))
		}
		e.sent = true
		l.stats.FlitsSent++
		wire := e.flit
		if l.Plan.Corrupts(l.Dir, l.txCount, l.now) {
			wire = append([]byte(nil), e.flit...)
			bit := l.Plan.CorruptBit(l.Dir, l.txCount, len(wire))
			wire[bit/8] ^= 1 << (bit % 8)
		}
		l.txCount++
		if err := l.receive(wire, e.wireCRC, l.cursor); err != nil {
			return err
		}
		l.cursor++
	} else if len(l.buf) > 0 && l.now-l.progressAt > l.timeoutWindow() {
		// Window stalled with unacked flits: the Nak'd replay itself was
		// lost.  Rewind and replay from the oldest unacked flit.
		l.cursor = l.sendBase
		l.stats.Timeouts++
		l.stats.Retries++
		l.progressAt = l.now
	}
	return nil
}

// receive models the far side accepting one wire flit.
func (l *Link) receive(wire []byte, wireCRC uint16, absIdx uint64) error {
	if crc16(wire) != wireCRC {
		l.stats.CRCErrors++
		l.nakOnce()
		return nil
	}
	if absIdx != l.rxExpected || wire[1] != byte(l.rxExpected) {
		// In-window replay overshoot (flits after a corrupted one) — or a
		// stale retransmission after the gap already closed.  Discard.
		if absIdx > l.rxExpected {
			l.nakOnce()
		}
		return nil
	}
	if err := l.unpacker.Feed(wire); err != nil {
		// A CRC-clean flit that fails structural decode means the sender is
		// broken, not the wire; surface it.
		return err
	}
	l.rxExpected++
	l.awaitNak = false
	l.stats.FlitsDelivered++
	l.ctrl = append(l.ctrl, ctrlMsg{due: l.now + l.AckDelay, n: l.rxExpected})
	l.progressAt = l.now
	return nil
}

// nakOnce requests replay from the next expected flit, once per gap.
func (l *Link) nakOnce() {
	if l.awaitNak {
		return
	}
	l.awaitNak = true
	l.ctrl = append(l.ctrl, ctrlMsg{due: l.now + l.AckDelay, nak: true, n: l.rxExpected})
}

// Flush drives the link until every queued message is delivered and acked,
// returning the messages the receiver reassembled since the last Flush.
// It fails with ErrLinkDown if any flit exhausts its attempts (e.g. a
// fault plan with corruption rate 1).
func (l *Link) Flush() ([]Message, error) {
	l.init()
	for l.packer.Pending() > 0 || len(l.buf) > 0 || len(l.ctrl) > 0 {
		if err := l.step(); err != nil {
			return nil, err
		}
	}
	return l.unpacker.Drain(), nil
}

// Stats returns a snapshot of link activity counters.
func (l *Link) Stats() LinkStats { return l.stats }

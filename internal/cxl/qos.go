package cxl

import "fmt"

// DevLoad is the CXL 3.x QoS telemetry class a Type-3 device reports in
// S2M responses, derived from its internal queue pressure.  The paper's
// §3.5 notes the packing-buffer counters exist to derive it but that
// shipping DIMMs do not populate it — this package does.
type DevLoad uint8

// Device-load classes of the specification.
const (
	LightLoad DevLoad = iota
	OptimalLoad
	ModerateOverload
	SevereOverload
	devLoadCount
)

// String returns the specification name.
func (d DevLoad) String() string {
	switch d {
	case LightLoad:
		return "Light Load"
	case OptimalLoad:
		return "Optimal Load"
	case ModerateOverload:
		return "Moderate Overload"
	case SevereOverload:
		return "Severe Overload"
	}
	return fmt.Sprintf("DevLoad(%d)", uint8(d))
}

// ClassifyLoad maps a device queue utilization (occupancy/capacity) to a
// DevLoad class with the spec's intent: below ~35% the device has spare
// headroom (light), up to ~70% it runs at its efficiency knee (optimal),
// up to ~90% latency grows superlinearly (moderate overload), beyond that
// requesters should throttle hard (severe overload).
func ClassifyLoad(occupancy, capacity float64) DevLoad {
	if capacity <= 0 {
		return LightLoad
	}
	u := occupancy / capacity
	switch {
	case u < 0.35:
		return LightLoad
	case u < 0.70:
		return OptimalLoad
	case u < 0.90:
		return ModerateOverload
	default:
		return SevereOverload
	}
}

// LoadTracker integrates the time a device spends in each DevLoad class,
// the way an occupancy tracker integrates queue depth: the simulator calls
// Update on every queue transition and reads the per-class cycle totals at
// snapshot time.
type LoadTracker struct {
	capacity float64
	occ      float64
	last     uint64
	cycles   [devLoadCount]uint64
}

// NewLoadTracker returns a tracker for a queue of the given capacity.
func NewLoadTracker(capacity int) *LoadTracker {
	return &LoadTracker{capacity: float64(capacity)}
}

// Update integrates to cycle now and applies the occupancy delta.
func (t *LoadTracker) Update(now uint64, delta int) {
	t.Advance(now)
	t.occ += float64(delta)
	if t.occ < 0 {
		t.occ = 0
	}
}

// Advance integrates the class residency up to cycle now.
func (t *LoadTracker) Advance(now uint64) {
	if now > t.last {
		t.cycles[t.Current()] += now - t.last
		t.last = now
	}
}

// Current returns the instantaneous class.
func (t *LoadTracker) Current() DevLoad {
	return ClassifyLoad(t.occ, t.capacity)
}

// Cycles returns the accumulated cycles spent in class d.
func (t *LoadTracker) Cycles(d DevLoad) uint64 { return t.cycles[d] }

// CopyStateFrom copies src's integration state (occupancy, watermark,
// per-class cycle totals) into t, for the checkpoint/restore layer in
// internal/sim.  Both trackers must watch queues of the same capacity, or
// the class bands would diverge after the copy.
func (t *LoadTracker) CopyStateFrom(src *LoadTracker) {
	if t.capacity != src.capacity {
		panic(fmt.Sprintf("cxl: LoadTracker.CopyStateFrom across capacities %v and %v",
			t.capacity, src.capacity))
	}
	t.occ = src.occ
	t.last = src.last
	t.cycles = src.cycles
}

// Dominant returns the class with the most accumulated cycles.
func (t *LoadTracker) Dominant() DevLoad {
	best := LightLoad
	for d := LightLoad; d < devLoadCount; d++ {
		if t.cycles[d] > t.cycles[best] {
			best = d
		}
	}
	return best
}

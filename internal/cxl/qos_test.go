package cxl

import "testing"

// TestClassifyLoadBoundaries pins the class thresholds exactly at their
// edges: the spec bands are half-open, [0,0.35) light, [0.35,0.70)
// optimal, [0.70,0.90) moderate, [0.90,∞) severe.
func TestClassifyLoadBoundaries(t *testing.T) {
	const capacity = 100.0
	cases := []struct {
		occ  float64
		want DevLoad
	}{
		{0, LightLoad},
		{34.999, LightLoad},
		{35, OptimalLoad}, // boundary belongs to the higher class
		{69.999, OptimalLoad},
		{70, ModerateOverload},
		{89.999, ModerateOverload},
		{90, SevereOverload},
		{100, SevereOverload},
		{250, SevereOverload}, // over-capacity still classifies
	}
	for _, c := range cases {
		if got := ClassifyLoad(c.occ, capacity); got != c.want {
			t.Errorf("ClassifyLoad(%v, %v) = %v, want %v", c.occ, capacity, got, c.want)
		}
	}
}

// TestClassifyLoadDegenerateCapacity: zero or negative capacity can never
// divide; the device reports light load instead of NaN-driven garbage.
func TestClassifyLoadDegenerateCapacity(t *testing.T) {
	for _, capacity := range []float64{0, -1} {
		for _, occ := range []float64{0, 1, 1e9} {
			if got := ClassifyLoad(occ, capacity); got != LightLoad {
				t.Errorf("ClassifyLoad(%v, %v) = %v, want LightLoad", occ, capacity, got)
			}
		}
	}
}

// TestDominantTieBreaking: Dominant uses strict greater-than, so on an
// exact tie the earliest (lightest) class wins — a device is never
// reported more loaded than the evidence supports.
func TestDominantTieBreaking(t *testing.T) {
	tr := NewLoadTracker(10)
	if got := tr.Dominant(); got != LightLoad {
		t.Fatalf("empty tracker Dominant = %v, want LightLoad", got)
	}

	// Equal residency in light and severe: light wins the tie.
	tr = NewLoadTracker(10)
	tr.Update(0, 10) // occ 10/10 -> severe
	tr.Advance(100)  // 100 cycles severe
	tr.Update(100, -10)
	tr.Advance(200) // 100 cycles light
	if tr.Cycles(LightLoad) != tr.Cycles(SevereOverload) {
		t.Fatalf("setup broken: light %d severe %d",
			tr.Cycles(LightLoad), tr.Cycles(SevereOverload))
	}
	if got := tr.Dominant(); got != LightLoad {
		t.Fatalf("tie Dominant = %v, want LightLoad", got)
	}

	// One extra severe cycle breaks the tie the other way.
	tr.Update(200, 10)
	tr.Advance(301)
	if got := tr.Dominant(); got != SevereOverload {
		t.Fatalf("Dominant = %v after severe majority, want SevereOverload", got)
	}
}

// TestLoadTrackerZeroCapacity: a zero-capacity tracker is inert — always
// light, never panics, occupancy clamped — matching ClassifyLoad's
// degenerate-capacity contract.
func TestLoadTrackerZeroCapacity(t *testing.T) {
	tr := NewLoadTracker(0)
	tr.Update(0, 5)
	tr.Advance(1_000)
	tr.Update(1_000, -50) // drives occ negative: clamps to zero
	tr.Advance(2_000)
	if got := tr.Current(); got != LightLoad {
		t.Fatalf("zero-capacity Current = %v, want LightLoad", got)
	}
	if got := tr.Cycles(LightLoad); got != 2_000 {
		t.Fatalf("zero-capacity light residency = %d, want 2000", got)
	}
	for d := OptimalLoad; d < devLoadCount; d++ {
		if tr.Cycles(d) != 0 {
			t.Fatalf("zero-capacity tracker accumulated %d cycles in %v", tr.Cycles(d), d)
		}
	}
	if got := tr.Dominant(); got != LightLoad {
		t.Fatalf("zero-capacity Dominant = %v, want LightLoad", got)
	}
}

// TestLoadTrackerTimeNeverRewinds: Advance with a stale timestamp is a
// no-op rather than an underflow.
func TestLoadTrackerTimeNeverRewinds(t *testing.T) {
	tr := NewLoadTracker(4)
	tr.Update(100, 4)
	tr.Advance(200)
	before := tr.Cycles(SevereOverload)
	tr.Advance(150) // stale
	tr.Update(50, 1)
	if got := tr.Cycles(SevereOverload); got != before {
		t.Fatalf("stale Advance changed residency %d -> %d", before, got)
	}
}

package cxl

import (
	"fmt"
	"strconv"
	"strings"
)

// Link-fault injection: a FaultPlan is a seeded, fully deterministic
// description of everything that can go wrong on a FlexBus link — per-flit
// CRC corruption (with burst windows modeling retry storms), device-timeout
// episodes, DevLoad-throttle episodes, and poisoned media lines.  The same
// plan drives both the protocol-level Link simulation (retry.go) and the
// timing-level cxlPort model in internal/sim, so a profiler experiment and
// a message-integrity property test observe the same fault schedule.
//
// Determinism is load-bearing: corruption decisions are pure functions of
// (Seed, direction, transfer index, time), never of a mutable RNG stream,
// so replaying a run — or resuming one after a snapshot — reproduces the
// identical fault sequence.

// Direction identifies which way a flit travels on the link.
type Direction uint8

// Link directions.
const (
	DirM2S Direction = iota // host -> device (Req/RwD)
	DirS2M                  // device -> host (NDR/DRS)
	dirCount
)

// String returns the direction mnemonic.
func (d Direction) String() string {
	switch d {
	case DirM2S:
		return "M2S"
	case DirS2M:
		return "S2M"
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// Burst is a time window of elevated corruption on one direction — the
// retry-storm shape real links exhibit when a lane margins out.  A zero
// Period makes the window one-shot; otherwise it recurs every Period
// cycles (the window [Start, Start+Len) repeats at Start+k*Period).
type Burst struct {
	Dir    Direction
	Start  uint64 // first cycle of the window
	Len    uint64 // window length in cycles
	Period uint64 // recurrence period (0 = one-shot)
	Rate   float64
}

// Episode is a time window during which a device-side condition (timeout,
// DevLoad throttle) holds.  Period semantics match Burst.
type Episode struct {
	Start  uint64
	Len    uint64
	Period uint64
}

// activeAt reports whether the window covers cycle now.
func (e Episode) activeAt(now uint64) bool {
	if now < e.Start {
		return false
	}
	off := now - e.Start
	if e.Period > 0 {
		off %= e.Period
	}
	return off < e.Len
}

// FaultPlan is a deterministic, seeded link-fault schedule.  The zero value
// (and a nil plan) injects nothing.
type FaultPlan struct {
	Seed uint64

	// CRCRate is the baseline per-flit corruption probability by direction.
	CRCRate [dirCount]float64

	// Bursts are windows of elevated corruption (additive with the base
	// rate, clamped to 1).
	Bursts []Burst

	// Timeouts are device-timeout episodes: requests reaching the device
	// controller during a window stall for TimeoutPenalty cycles before
	// being serviced (the device's internal completion timeout + recovery).
	Timeouts       []Episode
	TimeoutPenalty uint64 // cycles per timeout hit (0 = DefaultTimeoutPenalty)

	// Throttles are DevLoad-throttle episodes: the device sheds load by
	// halving its media service rate while a window is active.
	Throttles []Episode

	// Poison marks the line range [PoisonBase, PoisonBase+PoisonLen) as
	// poisoned media: reads of those lines complete but are flagged and
	// pay an extra media access for the device's internal correction pass.
	PoisonBase, PoisonLen uint64
}

// DefaultTimeoutPenalty is the stall charged per device-timeout hit when
// the plan leaves TimeoutPenalty zero, sized like a controller completion
// timeout (~2 µs at 2 GHz).
const DefaultTimeoutPenalty = 4000

// Validate checks plan invariants.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	for d := Direction(0); d < dirCount; d++ {
		if r := p.CRCRate[d]; r < 0 || r > 1 {
			return fmt.Errorf("cxl: %v CRC rate %g outside [0,1]", d, r)
		}
	}
	for i, b := range p.Bursts {
		if b.Rate < 0 || b.Rate > 1 {
			return fmt.Errorf("cxl: burst %d rate %g outside [0,1]", i, b.Rate)
		}
		if b.Dir >= dirCount {
			return fmt.Errorf("cxl: burst %d has invalid direction %d", i, b.Dir)
		}
		if b.Period > 0 && b.Len > b.Period {
			return fmt.Errorf("cxl: burst %d window %d exceeds its period %d", i, b.Len, b.Period)
		}
	}
	for i, e := range append(append([]Episode{}, p.Timeouts...), p.Throttles...) {
		if e.Period > 0 && e.Len > e.Period {
			return fmt.Errorf("cxl: episode %d window %d exceeds its period %d", i, e.Len, e.Period)
		}
	}
	return nil
}

// mix64 is the splitmix64 finalizer: a high-quality 64-bit mixer used to
// derive independent per-decision randomness from (seed, keys).
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rand01 returns a uniform [0,1) draw that depends only on the plan seed,
// the direction, and the transfer index.
func (p *FaultPlan) rand01(dir Direction, index uint64) float64 {
	h := mix64(p.Seed ^ mix64(uint64(dir)+0x51) ^ mix64(index))
	return float64(h>>11) / (1 << 53)
}

// Rate returns the effective per-flit corruption probability for a flit of
// direction dir transmitted at cycle now.
func (p *FaultPlan) Rate(dir Direction, now uint64) float64 {
	if p == nil {
		return 0
	}
	r := p.CRCRate[dir]
	for _, b := range p.Bursts {
		if b.Dir == dir && (Episode{Start: b.Start, Len: b.Len, Period: b.Period}).activeAt(now) {
			r += b.Rate
		}
	}
	if r > 1 {
		r = 1
	}
	return r
}

// Corrupts decides deterministically whether the index-th transmission in
// direction dir, occurring at cycle now, is corrupted on the wire.
func (p *FaultPlan) Corrupts(dir Direction, index, now uint64) bool {
	if p == nil {
		return false
	}
	r := p.Rate(dir, now)
	if r <= 0 {
		return false
	}
	return p.rand01(dir, index) < r
}

// CorruptBit returns the bit position (within an n-byte flit) a corrupted
// transmission flips, derived from the same deterministic stream.
func (p *FaultPlan) CorruptBit(dir Direction, index uint64, flitBytes int) int {
	if flitBytes <= 0 {
		return 0
	}
	h := mix64(p.Seed ^ mix64(uint64(dir)+0xb7) ^ mix64(index) ^ 0xfeedface)
	return int(h % uint64(flitBytes*8))
}

// TimeoutAt reports whether a device-timeout episode is active at now.
func (p *FaultPlan) TimeoutAt(now uint64) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Timeouts {
		if e.activeAt(now) {
			return true
		}
	}
	return false
}

// Penalty returns the per-hit device-timeout stall in cycles.
func (p *FaultPlan) Penalty() uint64 {
	if p == nil {
		return 0
	}
	if p.TimeoutPenalty > 0 {
		return p.TimeoutPenalty
	}
	return DefaultTimeoutPenalty
}

// ThrottledAt reports whether a DevLoad-throttle episode is active at now.
func (p *FaultPlan) ThrottledAt(now uint64) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Throttles {
		if e.activeAt(now) {
			return true
		}
	}
	return false
}

// Poisoned reports whether the line at address la falls in the poisoned
// media range.
func (p *FaultPlan) Poisoned(la uint64) bool {
	if p == nil || p.PoisonLen == 0 {
		return false
	}
	return la >= p.PoisonBase && la-p.PoisonBase < p.PoisonLen
}

// Empty reports whether the plan injects nothing (a healthy link).
func (p *FaultPlan) Empty() bool {
	if p == nil {
		return true
	}
	return p.CRCRate[DirM2S] == 0 && p.CRCRate[DirS2M] == 0 &&
		len(p.Bursts) == 0 && len(p.Timeouts) == 0 && len(p.Throttles) == 0 &&
		p.PoisonLen == 0
}

// String summarizes the plan for reports and logs.
func (p *FaultPlan) String() string {
	if p.Empty() {
		return "healthy"
	}
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	if p.CRCRate[DirM2S] > 0 {
		parts = append(parts, fmt.Sprintf("crc-m2s=%g", p.CRCRate[DirM2S]))
	}
	if p.CRCRate[DirS2M] > 0 {
		parts = append(parts, fmt.Sprintf("crc-s2m=%g", p.CRCRate[DirS2M]))
	}
	if n := len(p.Bursts); n > 0 {
		parts = append(parts, fmt.Sprintf("bursts=%d", n))
	}
	if n := len(p.Timeouts); n > 0 {
		parts = append(parts, fmt.Sprintf("timeouts=%d", n))
	}
	if n := len(p.Throttles); n > 0 {
		parts = append(parts, fmt.Sprintf("throttles=%d", n))
	}
	if p.PoisonLen > 0 {
		parts = append(parts, fmt.Sprintf("poison=%#x+%d", p.PoisonBase, p.PoisonLen))
	}
	return strings.Join(parts, ",")
}

// ParseFaultPlan parses the CLI fault syntax: a comma list of knobs,
//
//	seed=N                 deterministic seed (default 1)
//	crc=R                  per-flit CRC corruption rate, both directions
//	crc-m2s=R / crc-s2m=R  per-direction rates
//	burst=START:LEN:RATE[:PERIOD]    corruption burst window (both dirs)
//	timeout=START:LEN[:PERIOD]       device-timeout episode
//	timeout-penalty=N                cycles stalled per timeout hit
//	throttle=START:LEN[:PERIOD]      DevLoad-throttle episode
//	poison=BASE:LEN                  poisoned line-address range (bytes)
//
// e.g. "crc=1e-3,seed=42,burst=500000:100000:0.3:1000000".
func ParseFaultPlan(s string) (*FaultPlan, error) {
	p := &FaultPlan{Seed: 1}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("cxl: fault knob %q is not key=value", kv)
		}
		fields := strings.Split(val, ":")
		num := func(i int) (uint64, error) {
			v, err := strconv.ParseUint(fields[i], 0, 64)
			if err != nil {
				return 0, fmt.Errorf("cxl: fault knob %q field %d: %v", kv, i+1, err)
			}
			return v, nil
		}
		switch key {
		case "seed":
			v, err := num(0)
			if err != nil {
				return nil, err
			}
			p.Seed = v
		case "crc", "crc-m2s", "crc-s2m":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("cxl: fault knob %q: %v", kv, err)
			}
			if key != "crc-s2m" {
				p.CRCRate[DirM2S] = r
			}
			if key != "crc-m2s" {
				p.CRCRate[DirS2M] = r
			}
		case "burst":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("cxl: burst wants START:LEN:RATE[:PERIOD], got %q", val)
			}
			start, err := num(0)
			if err != nil {
				return nil, err
			}
			length, err := num(1)
			if err != nil {
				return nil, err
			}
			rate, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("cxl: burst rate %q: %v", fields[2], err)
			}
			var period uint64
			if len(fields) == 4 {
				if period, err = num(3); err != nil {
					return nil, err
				}
			}
			for d := Direction(0); d < dirCount; d++ {
				p.Bursts = append(p.Bursts, Burst{Dir: d, Start: start, Len: length, Period: period, Rate: rate})
			}
		case "timeout", "throttle":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("cxl: %s wants START:LEN[:PERIOD], got %q", key, val)
			}
			start, err := num(0)
			if err != nil {
				return nil, err
			}
			length, err := num(1)
			if err != nil {
				return nil, err
			}
			var period uint64
			if len(fields) == 3 {
				if period, err = num(2); err != nil {
					return nil, err
				}
			}
			e := Episode{Start: start, Len: length, Period: period}
			if key == "timeout" {
				p.Timeouts = append(p.Timeouts, e)
			} else {
				p.Throttles = append(p.Throttles, e)
			}
		case "timeout-penalty":
			v, err := num(0)
			if err != nil {
				return nil, err
			}
			p.TimeoutPenalty = v
		case "poison":
			if len(fields) != 2 {
				return nil, fmt.Errorf("cxl: poison wants BASE:LEN, got %q", val)
			}
			base, err := num(0)
			if err != nil {
				return nil, err
			}
			length, err := num(1)
			if err != nil {
				return nil, err
			}
			p.PoisonBase, p.PoisonLen = base, length
		default:
			return nil, fmt.Errorf("cxl: unknown fault knob %q (want seed, crc, crc-m2s, crc-s2m, burst, timeout, timeout-penalty, throttle, poison)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

package cxl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Link-fault injection: a FaultPlan is a seeded, fully deterministic
// description of everything that can go wrong on a FlexBus link — per-flit
// CRC corruption (with burst windows modeling retry storms), device-timeout
// episodes, DevLoad-throttle episodes, and poisoned media lines.  The same
// plan drives both the protocol-level Link simulation (retry.go) and the
// timing-level cxlPort model in internal/sim, so a profiler experiment and
// a message-integrity property test observe the same fault schedule.
//
// Determinism is load-bearing: corruption decisions are pure functions of
// (Seed, direction, transfer index, time), never of a mutable RNG stream,
// so replaying a run — or resuming one after a snapshot — reproduces the
// identical fault sequence.

// Direction identifies which way a flit travels on the link.
type Direction uint8

// Link directions.
const (
	DirM2S Direction = iota // host -> device (Req/RwD)
	DirS2M                  // device -> host (NDR/DRS)
	dirCount
)

// String returns the direction mnemonic.
func (d Direction) String() string {
	switch d {
	case DirM2S:
		return "M2S"
	case DirS2M:
		return "S2M"
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// Burst is a time window of elevated corruption on one direction — the
// retry-storm shape real links exhibit when a lane margins out.  A zero
// Period makes the window one-shot; otherwise it recurs every Period
// cycles (the window [Start, Start+Len) repeats at Start+k*Period).
type Burst struct {
	Dir    Direction
	Start  uint64 // first cycle of the window
	Len    uint64 // window length in cycles
	Period uint64 // recurrence period (0 = one-shot)
	Rate   float64
}

// Episode is a time window during which a device-side condition (timeout,
// DevLoad throttle) holds.  Period semantics match Burst.
type Episode struct {
	Start  uint64
	Len    uint64
	Period uint64
}

// activeAt reports whether the window covers cycle now.
func (e Episode) activeAt(now uint64) bool {
	if now < e.Start {
		return false
	}
	off := now - e.Start
	if e.Period > 0 {
		off %= e.Period
	}
	return off < e.Len
}

// FaultPlan is a deterministic, seeded link-fault schedule.  The zero value
// (and a nil plan) injects nothing.
type FaultPlan struct {
	Seed uint64

	// CRCRate is the baseline per-flit corruption probability by direction.
	CRCRate [dirCount]float64

	// Bursts are windows of elevated corruption (additive with the base
	// rate, clamped to 1).
	Bursts []Burst

	// Timeouts are device-timeout episodes: requests reaching the device
	// controller during a window stall for TimeoutPenalty cycles before
	// being serviced (the device's internal completion timeout + recovery).
	Timeouts       []Episode
	TimeoutPenalty uint64 // cycles per timeout hit (0 = DefaultTimeoutPenalty)

	// Throttles are DevLoad-throttle episodes: the device sheds load by
	// halving its media service rate while a window is active.
	Throttles []Episode

	// Poison marks the line range [PoisonBase, PoisonBase+PoisonLen) as
	// poisoned media: reads of those lines complete but are flagged and
	// pay an extra media access for the device's internal correction pass.
	PoisonBase, PoisonLen uint64

	// Viral state: after ViralThreshold poisoned reads the device enters
	// viral containment and completes every read as poisoned (CXL 3.0
	// §12.4).  A non-zero ViralReset clears the state that many cycles
	// after entry (a host-initiated device reset); zero is permanent.
	ViralThreshold uint64 // poisoned reads before viral entry (0 = never)
	ViralReset     uint64 // cycles until reset clears viral (0 = permanent)

	// Surprise removal: at cycle RemoveAt the device vanishes from the
	// link.  In-flight requests complete with error after the root port's
	// discovery penalty; once discovered, the host isolates the device and
	// later accesses take a fast-fail path without touching the link.
	RemoveAt      uint64 // removal cycle (0 = never)
	RemovePenalty uint64 // discovery penalty per in-flight hit (0 = DefaultRemovalPenalty)
}

// DefaultTimeoutPenalty is the stall charged per device-timeout hit when
// the plan leaves TimeoutPenalty zero, sized like a controller completion
// timeout (~2 µs at 2 GHz).
const DefaultTimeoutPenalty = 4000

// DefaultRemovalPenalty is the root-port discovery stall charged to each
// request in flight when the device is surprise-removed, sized like a
// completion-timeout-driven hot-remove flow (~6 µs at 2 GHz).
const DefaultRemovalPenalty = 12000

// Validate checks plan invariants.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	for d := Direction(0); d < dirCount; d++ {
		if r := p.CRCRate[d]; math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("cxl: %v CRC rate %g outside [0,1]", d, r)
		}
	}
	for i, b := range p.Bursts {
		if math.IsNaN(b.Rate) || b.Rate < 0 || b.Rate > 1 {
			return fmt.Errorf("cxl: burst %d rate %g outside [0,1]", i, b.Rate)
		}
		if b.Dir >= dirCount {
			return fmt.Errorf("cxl: burst %d has invalid direction %d", i, b.Dir)
		}
		if b.Period > 0 && b.Len > b.Period {
			return fmt.Errorf("cxl: burst %d window %d exceeds its period %d", i, b.Len, b.Period)
		}
	}
	for i, e := range append(append([]Episode{}, p.Timeouts...), p.Throttles...) {
		if e.Period > 0 && e.Len > e.Period {
			return fmt.Errorf("cxl: episode %d window %d exceeds its period %d", i, e.Len, e.Period)
		}
	}
	return nil
}

// mix64 is the splitmix64 finalizer: a high-quality 64-bit mixer used to
// derive independent per-decision randomness from (seed, keys).
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rand01 returns a uniform [0,1) draw that depends only on the plan seed,
// the direction, and the transfer index.
func (p *FaultPlan) rand01(dir Direction, index uint64) float64 {
	h := mix64(p.Seed ^ mix64(uint64(dir)+0x51) ^ mix64(index))
	return float64(h>>11) / (1 << 53)
}

// Rate returns the effective per-flit corruption probability for a flit of
// direction dir transmitted at cycle now.
func (p *FaultPlan) Rate(dir Direction, now uint64) float64 {
	if p == nil {
		return 0
	}
	r := p.CRCRate[dir]
	for _, b := range p.Bursts {
		if b.Dir == dir && (Episode{Start: b.Start, Len: b.Len, Period: b.Period}).activeAt(now) {
			r += b.Rate
		}
	}
	if r > 1 {
		r = 1
	}
	return r
}

// Corrupts decides deterministically whether the index-th transmission in
// direction dir, occurring at cycle now, is corrupted on the wire.
func (p *FaultPlan) Corrupts(dir Direction, index, now uint64) bool {
	if p == nil {
		return false
	}
	r := p.Rate(dir, now)
	if r <= 0 {
		return false
	}
	return p.rand01(dir, index) < r
}

// CorruptBit returns the bit position (within an n-byte flit) a corrupted
// transmission flips, derived from the same deterministic stream.
func (p *FaultPlan) CorruptBit(dir Direction, index uint64, flitBytes int) int {
	if flitBytes <= 0 {
		return 0
	}
	h := mix64(p.Seed ^ mix64(uint64(dir)+0xb7) ^ mix64(index) ^ 0xfeedface)
	return int(h % uint64(flitBytes*8))
}

// TimeoutAt reports whether a device-timeout episode is active at now.
func (p *FaultPlan) TimeoutAt(now uint64) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Timeouts {
		if e.activeAt(now) {
			return true
		}
	}
	return false
}

// Penalty returns the per-hit device-timeout stall in cycles.
func (p *FaultPlan) Penalty() uint64 {
	if p == nil {
		return 0
	}
	if p.TimeoutPenalty > 0 {
		return p.TimeoutPenalty
	}
	return DefaultTimeoutPenalty
}

// ThrottledAt reports whether a DevLoad-throttle episode is active at now.
func (p *FaultPlan) ThrottledAt(now uint64) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Throttles {
		if e.activeAt(now) {
			return true
		}
	}
	return false
}

// Poisoned reports whether the line at address la falls in the poisoned
// media range.
func (p *FaultPlan) Poisoned(la uint64) bool {
	if p == nil || p.PoisonLen == 0 {
		return false
	}
	return la >= p.PoisonBase && la-p.PoisonBase < p.PoisonLen
}

// ViralEnabled reports whether the plan can drive the device viral.
func (p *FaultPlan) ViralEnabled() bool {
	return p != nil && p.ViralThreshold > 0
}

// RemovedBy reports whether the device has been surprise-removed by cycle
// now (the link is dead; requests reaching it complete with error).
func (p *FaultPlan) RemovedBy(now uint64) bool {
	if p == nil || p.RemoveAt == 0 {
		return false
	}
	return now >= p.RemoveAt
}

// RemovalPenalty returns the root-port discovery stall in cycles.
func (p *FaultPlan) RemovalPenalty() uint64 {
	if p == nil {
		return 0
	}
	if p.RemovePenalty > 0 {
		return p.RemovePenalty
	}
	return DefaultRemovalPenalty
}

// IsolatedBy reports whether the host has isolated the removed device by
// cycle now: removal plus one discovery penalty (the first errored request
// tells the root port the device is gone).  Isolation is a pure function
// of the plan and time so replays are byte-identical regardless of request
// issue order.
func (p *FaultPlan) IsolatedBy(now uint64) bool {
	if p == nil || p.RemoveAt == 0 {
		return false
	}
	return now >= p.RemoveAt+p.RemovalPenalty()
}

// Empty reports whether the plan injects nothing (a healthy link).
func (p *FaultPlan) Empty() bool {
	if p == nil {
		return true
	}
	return p.CRCRate[DirM2S] == 0 && p.CRCRate[DirS2M] == 0 &&
		len(p.Bursts) == 0 && len(p.Timeouts) == 0 && len(p.Throttles) == 0 &&
		p.PoisonLen == 0 && p.ViralThreshold == 0 && p.RemoveAt == 0
}

// String renders the plan in the canonical knob syntax accepted by
// ParseFaultPlan, so any plan printed by a report (chaos findings in
// particular) can be pasted back into -fault or -replay verbatim.  The
// round trip Parse(p.String()) yields an equivalent plan.
func (p *FaultPlan) String() string {
	if p.Empty() {
		return "healthy"
	}
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	if p.CRCRate[DirM2S] > 0 {
		parts = append(parts, fmt.Sprintf("crc-m2s=%g", p.CRCRate[DirM2S]))
	}
	if p.CRCRate[DirS2M] > 0 {
		parts = append(parts, fmt.Sprintf("crc-s2m=%g", p.CRCRate[DirS2M]))
	}
	for _, b := range p.Bursts {
		knob := "burst-m2s"
		if b.Dir == DirS2M {
			knob = "burst-s2m"
		}
		if b.Period > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d:%d:%g:%d", knob, b.Start, b.Len, b.Rate, b.Period))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%d:%d:%g", knob, b.Start, b.Len, b.Rate))
		}
	}
	episode := func(knob string, e Episode) string {
		if e.Period > 0 {
			return fmt.Sprintf("%s=%d:%d:%d", knob, e.Start, e.Len, e.Period)
		}
		return fmt.Sprintf("%s=%d:%d", knob, e.Start, e.Len)
	}
	for _, e := range p.Timeouts {
		parts = append(parts, episode("timeout", e))
	}
	if p.TimeoutPenalty > 0 {
		parts = append(parts, fmt.Sprintf("timeout-penalty=%d", p.TimeoutPenalty))
	}
	for _, e := range p.Throttles {
		parts = append(parts, episode("throttle", e))
	}
	if p.PoisonLen > 0 {
		parts = append(parts, fmt.Sprintf("poison=%d:%d", p.PoisonBase, p.PoisonLen))
	}
	if p.ViralThreshold > 0 {
		if p.ViralReset > 0 {
			parts = append(parts, fmt.Sprintf("viral=%d:%d", p.ViralThreshold, p.ViralReset))
		} else {
			parts = append(parts, fmt.Sprintf("viral=%d", p.ViralThreshold))
		}
	}
	if p.RemoveAt > 0 {
		if p.RemovePenalty > 0 {
			parts = append(parts, fmt.Sprintf("remove=%d:%d", p.RemoveAt, p.RemovePenalty))
		} else {
			parts = append(parts, fmt.Sprintf("remove=%d", p.RemoveAt))
		}
	}
	return strings.Join(parts, ",")
}

// ParseFaultPlan parses the CLI fault syntax: a comma list of knobs,
//
//	seed=N                 deterministic seed (default 1)
//	crc=R                  per-flit CRC corruption rate, both directions
//	crc-m2s=R / crc-s2m=R  per-direction rates
//	burst=START:LEN:RATE[:PERIOD]    corruption burst window (both dirs)
//	burst-m2s= / burst-s2m=          per-direction burst windows
//	timeout=START:LEN[:PERIOD]       device-timeout episode
//	timeout-penalty=N                cycles stalled per timeout hit
//	throttle=START:LEN[:PERIOD]      DevLoad-throttle episode
//	poison=BASE:LEN                  poisoned line-address range (bytes)
//	viral=THRESHOLD[:RESET]          viral entry after N poisoned reads,
//	                                 optional reset window in cycles
//	remove=CYCLE[:PENALTY]           surprise removal at CYCLE, optional
//	                                 discovery penalty per in-flight hit
//
// e.g. "crc=1e-3,seed=42,burst=500000:100000:0.3:1000000".  The literal
// "healthy" (what String renders for an empty plan) parses to a no-fault
// plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	p := &FaultPlan{Seed: 1}
	if strings.TrimSpace(s) == "healthy" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("cxl: fault knob %q is not key=value", kv)
		}
		fields := strings.Split(val, ":")
		num := func(i int) (uint64, error) {
			v, err := strconv.ParseUint(fields[i], 0, 64)
			if err != nil {
				return 0, fmt.Errorf("cxl: fault knob %q field %d: %v", kv, i+1, err)
			}
			return v, nil
		}
		switch key {
		case "seed":
			v, err := num(0)
			if err != nil {
				return nil, err
			}
			p.Seed = v
		case "crc", "crc-m2s", "crc-s2m":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("cxl: fault knob %q: %v", kv, err)
			}
			if key != "crc-s2m" {
				p.CRCRate[DirM2S] = r
			}
			if key != "crc-m2s" {
				p.CRCRate[DirS2M] = r
			}
		case "burst", "burst-m2s", "burst-s2m":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("cxl: %s wants START:LEN:RATE[:PERIOD], got %q", key, val)
			}
			start, err := num(0)
			if err != nil {
				return nil, err
			}
			length, err := num(1)
			if err != nil {
				return nil, err
			}
			rate, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("cxl: burst rate %q: %v", fields[2], err)
			}
			var period uint64
			if len(fields) == 4 {
				if period, err = num(3); err != nil {
					return nil, err
				}
			}
			for d := Direction(0); d < dirCount; d++ {
				if (key == "burst-m2s" && d != DirM2S) || (key == "burst-s2m" && d != DirS2M) {
					continue
				}
				p.Bursts = append(p.Bursts, Burst{Dir: d, Start: start, Len: length, Period: period, Rate: rate})
			}
		case "timeout", "throttle":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("cxl: %s wants START:LEN[:PERIOD], got %q", key, val)
			}
			start, err := num(0)
			if err != nil {
				return nil, err
			}
			length, err := num(1)
			if err != nil {
				return nil, err
			}
			var period uint64
			if len(fields) == 3 {
				if period, err = num(2); err != nil {
					return nil, err
				}
			}
			e := Episode{Start: start, Len: length, Period: period}
			if key == "timeout" {
				p.Timeouts = append(p.Timeouts, e)
			} else {
				p.Throttles = append(p.Throttles, e)
			}
		case "timeout-penalty":
			v, err := num(0)
			if err != nil {
				return nil, err
			}
			p.TimeoutPenalty = v
		case "poison":
			if len(fields) != 2 {
				return nil, fmt.Errorf("cxl: poison wants BASE:LEN, got %q", val)
			}
			base, err := num(0)
			if err != nil {
				return nil, err
			}
			length, err := num(1)
			if err != nil {
				return nil, err
			}
			p.PoisonBase, p.PoisonLen = base, length
		case "viral":
			if len(fields) < 1 || len(fields) > 2 {
				return nil, fmt.Errorf("cxl: viral wants THRESHOLD[:RESET], got %q", val)
			}
			threshold, err := num(0)
			if err != nil {
				return nil, err
			}
			if threshold == 0 {
				return nil, fmt.Errorf("cxl: viral threshold must be positive, got %q", val)
			}
			var reset uint64
			if len(fields) == 2 {
				if reset, err = num(1); err != nil {
					return nil, err
				}
			}
			p.ViralThreshold, p.ViralReset = threshold, reset
		case "remove":
			if len(fields) < 1 || len(fields) > 2 {
				return nil, fmt.Errorf("cxl: remove wants CYCLE[:PENALTY], got %q", val)
			}
			at, err := num(0)
			if err != nil {
				return nil, err
			}
			if at == 0 {
				return nil, fmt.Errorf("cxl: removal cycle must be positive, got %q", val)
			}
			var penalty uint64
			if len(fields) == 2 {
				if penalty, err = num(1); err != nil {
					return nil, err
				}
			}
			p.RemoveAt, p.RemovePenalty = at, penalty
		default:
			return nil, fmt.Errorf("cxl: unknown fault knob %q (want seed, crc, crc-m2s, crc-s2m, burst, burst-m2s, burst-s2m, timeout, timeout-penalty, throttle, poison, viral, remove)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

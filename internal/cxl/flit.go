package cxl

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Flit geometry of the 68-byte mode: a 4-byte header, four 15-byte message
// slots, and a 2-byte CRC.  A data payload occupies a dedicated all-data
// flit (4-byte header + 64-byte payload, CRC folded into the header's
// space accounting), which is how the real protocol amortizes headers.
const (
	FlitSize   = 68
	headerSize = 4
	slotSize   = 15
	slotCount  = 4
	crcSize    = 2
)

// flit types carried in the header.
const (
	flitProtocol = 0x1 // slots carry protocol messages
	flitAllData  = 0x2 // 64-byte payload follows the header
)

// slot layout (15 bytes):
//
//	[0]    opcode
//	[1:7]  HPA >> 6 (40 bits used of 48) | meta<<46 semantics packed below
//	[7:9]  tag
//	[9]    meta (2 bits) | snp (2 bits) << 2 | ldid (4 bits) << 4
//	[10:15] reserved (zero)
const slotReserved = 10

// crc16 implements CRC-16/CCITT-FALSE over a byte slice.
func crc16(data []byte) uint16 {
	crc := uint16(0xffff)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// encodeSlot packs a message header into a 15-byte slot.
func encodeSlot(dst []byte, m *Message) {
	dst[0] = byte(m.Op)
	// 46-bit line-aligned address stored as a 40-bit line number.
	line := m.Addr >> 6
	for i := 0; i < 6; i++ {
		dst[1+i] = byte(line >> (8 * i))
	}
	binary.LittleEndian.PutUint16(dst[7:9], m.Tag)
	dst[9] = byte(m.Meta) | byte(m.Snp)<<2 | m.LDID<<4
	for i := slotReserved; i < slotSize; i++ {
		dst[i] = 0
	}
}

// decodeSlot unpacks a slot; a zeroed slot (opcode MemInv with zero
// fields) is distinguished by the packer's slot-count header field, so
// decodeSlot never sees padding.
func decodeSlot(src []byte) Message {
	var line uint64
	for i := 0; i < 6; i++ {
		line |= uint64(src[1+i]) << (8 * i)
	}
	return Message{
		Op:   Opcode(src[0]),
		Addr: line << 6,
		Tag:  binary.LittleEndian.Uint16(src[7:9]),
		Meta: MetaValue(src[9] & 0x3),
		Snp:  SnpType(src[9] >> 2 & 0x3),
		LDID: src[9] >> 4,
	}
}

// Packer accumulates messages and emits 68-byte flits.  Header slots pack
// up to four messages per flit; each data payload is emitted as one
// all-data flit immediately after the flit carrying its header slot.
type Packer struct {
	pending []Message // headers waiting for a slot
	data    [][]byte  // payloads owed after the current protocol flit
	seq     uint8
}

// Push queues a validated message for transmission.
func (p *Packer) Push(m Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	p.pending = append(p.pending, m)
	return nil
}

// Pending reports queued messages not yet emitted.
func (p *Packer) Pending() int { return len(p.pending) + len(p.data) }

// Next emits the next flit, or false when nothing is queued.  Protocol
// flits drain up to four pending headers; owed payloads are emitted as
// all-data flits before further protocol flits.
func (p *Packer) Next() ([FlitSize]byte, bool) {
	var f [FlitSize]byte
	if len(p.data) > 0 {
		payload := p.data[0]
		p.data = p.data[1:]
		f[0] = flitAllData
		f[1] = p.seq
		p.seq++
		copy(f[headerSize:], payload)
		// All-data flits carry no CRC field in this layout; integrity is
		// covered by the link layer of the next protocol flit.
		return f, true
	}
	if len(p.pending) == 0 {
		return f, false
	}
	n := len(p.pending)
	if n > slotCount {
		n = slotCount
	}
	f[0] = flitProtocol
	f[1] = p.seq
	p.seq++
	f[2] = byte(n)
	for i := 0; i < n; i++ {
		m := &p.pending[i]
		encodeSlot(f[headerSize+i*slotSize:headerSize+(i+1)*slotSize], m)
		if m.Op.HasData() {
			p.data = append(p.data, m.Data)
		}
	}
	p.pending = p.pending[n:]
	crc := crc16(f[:FlitSize-crcSize])
	binary.LittleEndian.PutUint16(f[FlitSize-crcSize:], crc)
	return f, true
}

// Unpacker reassembles messages from a flit stream.
type Unpacker struct {
	out     []Message
	owed    []int // indexes into out awaiting payloads
	nextSeq uint8
	started bool
}

// Errors surfaced by the unpacker.
var (
	ErrBadCRC      = errors.New("cxl: flit CRC mismatch")
	ErrBadSequence = errors.New("cxl: flit sequence gap")
	ErrBadFlitType = errors.New("cxl: unknown flit type")
	ErrStrayData   = errors.New("cxl: all-data flit without an owing message")
)

// Feed consumes one flit.
func (u *Unpacker) Feed(f [FlitSize]byte) error {
	if u.started && f[1] != u.nextSeq {
		return fmt.Errorf("%w: got %d want %d", ErrBadSequence, f[1], u.nextSeq)
	}
	u.started = true
	u.nextSeq = f[1] + 1
	switch f[0] {
	case flitAllData:
		if len(u.owed) == 0 {
			return ErrStrayData
		}
		idx := u.owed[0]
		u.owed = u.owed[1:]
		data := make([]byte, 64)
		copy(data, f[headerSize:headerSize+64])
		u.out[idx].Data = data
		return nil
	case flitProtocol:
		want := binary.LittleEndian.Uint16(f[FlitSize-crcSize:])
		if crc16(f[:FlitSize-crcSize]) != want {
			return ErrBadCRC
		}
		n := int(f[2])
		if n > slotCount {
			return fmt.Errorf("cxl: slot count %d exceeds %d", n, slotCount)
		}
		for i := 0; i < n; i++ {
			m := decodeSlot(f[headerSize+i*slotSize : headerSize+(i+1)*slotSize])
			u.out = append(u.out, m)
			if m.Op.HasData() {
				u.owed = append(u.owed, len(u.out)-1)
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: %#x", ErrBadFlitType, f[0])
	}
}

// Drain returns the fully reassembled messages (those not awaiting
// payloads) and retains the rest.
func (u *Unpacker) Drain() []Message {
	// Messages are complete in order until the first owed index.
	cut := len(u.out)
	if len(u.owed) > 0 {
		cut = u.owed[0]
	}
	done := make([]Message, cut)
	copy(done, u.out[:cut])
	u.out = u.out[cut:]
	for i := range u.owed {
		u.owed[i] -= cut
	}
	return done
}

// FlitsFor returns how many 68-byte flits a message set consumes — the
// quantity the simulator charges to the FlexBus.  headerMsgs protocol
// headers share flits four-a-piece; each data payload adds one all-data
// flit.
func FlitsFor(headerMsgs, dataPayloads int) int {
	flits := (headerMsgs + slotCount - 1) / slotCount
	return flits + dataPayloads
}

// BytesPerMessage reports the effective wire bytes of a single message of
// the given opcode when flits are fully packed: a quarter of a protocol
// flit for the header, plus a full all-data flit for payloads.
func BytesPerMessage(op Opcode) float64 {
	b := float64(FlitSize) / slotCount
	if op.HasData() {
		b += FlitSize
	}
	return b
}

// Package core implements PathFinder itself: the Clos-network system model
// over the server's architectural modules (§4.2 of the paper), snapshot
// capture at scheduling-epoch boundaries, and the four analysis techniques —
// PFBuilder (path-map construction, §4.3), PFEstimator (bottom-up
// back-propagation of CXL-induced stall cycles, §4.4), PFAnalyzer
// (Little's-law queue estimation and culprit detection, §4.5), and
// PFMaterializer (cross-snapshot time-series analysis, §4.6).
//
// PathFinder observes the machine exclusively through PMU counters, exactly
// as the hardware version does: every input to the algorithms below is a
// counter delta from a Snapshot.
package core

import "fmt"

// PathType is one of the four architectural request paths that yield
// CXL.mem transactions (§2.2, Figure 1).
type PathType uint8

// The four CXL.mem data paths.
const (
	PathDRd  PathType = iota // demand data read
	PathRFO                  // read for ownership
	PathHWPF                 // hardware prefetch (L1 + L2 engines)
	PathDWr                  // demand write / writeback
	PathCount
)

// String returns the paper's path name.
func (p PathType) String() string {
	switch p {
	case PathDRd:
		return "DRd"
	case PathRFO:
		return "RFO"
	case PathHWPF:
		return "HW PF"
	case PathDWr:
		return "DWr"
	}
	return fmt.Sprintf("PathType(%d)", uint8(p))
}

// Paths lists all path types in display order.
func Paths() []PathType { return []PathType{PathDRd, PathRFO, PathHWPF, PathDWr} }

// Component is an on-path architectural module — the stall-breakdown and
// queue-length columns of Figures 6-10.
type Component uint8

// Stall/queue components from SB down to the CXL DIMM.
const (
	CompSB Component = iota
	CompL1D
	CompLFB
	CompL2
	CompLLC       // the core-observed LLC level
	CompCHA       // CHA/TOR queueing
	CompFlexBusMC // M2PCIe + FlexBus link + device controller
	CompCXLDIMM   // device queues and media
	CompCount
)

// String returns the component name as used in the paper's figures.
func (c Component) String() string {
	switch c {
	case CompSB:
		return "SB"
	case CompL1D:
		return "L1D"
	case CompLFB:
		return "LFB"
	case CompL2:
		return "L2"
	case CompLLC:
		return "LLC"
	case CompCHA:
		return "CHA"
	case CompFlexBusMC:
		return "FlexBus+MC"
	case CompCXLDIMM:
		return "CXL DIMM"
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}

// Components lists all components in pipeline order (SB first).
func Components() []Component {
	return []Component{CompSB, CompL1D, CompLFB, CompL2, CompLLC, CompCHA, CompFlexBusMC, CompCXLDIMM}
}

// Level is a serve location in the path map — the rows of Table 7.
type Level uint8

// Path-map hit levels.
const (
	LvlSB Level = iota
	LvlL1D
	LvlLFB
	LvlL2
	LvlLocalLLC
	LvlSNCLLC
	LvlRemoteLLC
	LvlLocalDRAM
	LvlRemoteDRAM
	LvlCXL
	LevelCount
)

// String returns the Table 7 row label.
func (l Level) String() string {
	switch l {
	case LvlSB:
		return "SB"
	case LvlL1D:
		return "L1D"
	case LvlLFB:
		return "LFB"
	case LvlL2:
		return "L2"
	case LvlLocalLLC:
		return "local LLC"
	case LvlSNCLLC:
		return "snc LLC"
	case LvlRemoteLLC:
		return "remote LLC"
	case LvlLocalDRAM:
		return "local DRAM"
	case LvlRemoteDRAM:
		return "remote DRAM"
	case LvlCXL:
		return "CXL Memory"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Levels lists all serve levels in hierarchy order.
func Levels() []Level {
	return []Level{LvlSB, LvlL1D, LvlLFB, LvlL2, LvlLocalLLC, LvlSNCLLC,
		LvlRemoteLLC, LvlLocalDRAM, LvlRemoteDRAM, LvlCXL}
}

// VertexKind classifies a node of the Clos system model.
type VertexKind uint8

// Vertex kinds of the system graph.
const (
	VtxCore VertexKind = iota
	VtxSB
	VtxLFB
	VtxL1D
	VtxL2
	VtxCHA
	VtxIMC
	VtxM2PCIe
	VtxCXLDIMM
)

// Vertex is one architectural module in the Clos model G = (V, E).
type Vertex struct {
	Kind  VertexKind
	ID    int    // instance (core number, slice number, channel, device)
	Label string // bank name where one exists
}

// Edge is a directed interconnect link between two vertices.
type Edge struct {
	From, To int // vertex indices
}

// Graph is the multi-stage Clos representation of the server (§4.2):
// cores are the ingress stage, CXL DIMMs/IMCs the egress stage, and each
// on-path module an intermediate switch.
type Graph struct {
	Vertices []Vertex
	Edges    []Edge
	adj      [][]int
}

// NewGraph builds the Clos model for a machine shape.
func NewGraph(cores, slices, channels, cxlDevs int) *Graph {
	g := &Graph{}
	add := func(k VertexKind, id int, label string) int {
		g.Vertices = append(g.Vertices, Vertex{Kind: k, ID: id, Label: label})
		return len(g.Vertices) - 1
	}
	link := func(a, b int) { g.Edges = append(g.Edges, Edge{From: a, To: b}) }

	chas := make([]int, slices)
	for i := 0; i < slices; i++ {
		chas[i] = add(VtxCHA, i, fmt.Sprintf("cha%d", i))
	}
	imcs := make([]int, channels)
	for i := 0; i < channels; i++ {
		imcs[i] = add(VtxIMC, i, fmt.Sprintf("imc%d", i))
	}
	var m2ps, dimms []int
	for i := 0; i < cxlDevs; i++ {
		m2ps = append(m2ps, add(VtxM2PCIe, i, fmt.Sprintf("m2pcie%d", i)))
		dimms = append(dimms, add(VtxCXLDIMM, i, fmt.Sprintf("cxl%d", i)))
		link(m2ps[i], dimms[i])
	}
	for c := 0; c < cores; c++ {
		vc := add(VtxCore, c, fmt.Sprintf("core%d", c))
		vsb := add(VtxSB, c, "")
		vl1 := add(VtxL1D, c, "")
		vlfb := add(VtxLFB, c, "")
		vl2 := add(VtxL2, c, "")
		link(vc, vsb)
		link(vc, vl1)
		link(vsb, vl1)
		link(vl1, vlfb)
		link(vlfb, vl2)
		// Any core can reach any CHA (the mesh is the Clos middle stage).
		for _, ch := range chas {
			link(vl2, ch)
		}
	}
	for _, ch := range chas {
		for _, im := range imcs {
			link(ch, im)
		}
		for _, mp := range m2ps {
			link(ch, mp)
		}
	}
	g.adj = make([][]int, len(g.Vertices))
	for _, e := range g.Edges {
		g.adj[e.From] = append(g.adj[e.From], e.To)
	}
	return g
}

// Succ returns the successor vertex indices of v.
func (g *Graph) Succ(v int) []int { return g.adj[v] }

// FindVertex returns the index of the first vertex of the given kind and
// instance, or -1.
func (g *Graph) FindVertex(k VertexKind, id int) int {
	for i, v := range g.Vertices {
		if v.Kind == k && v.ID == id {
			return i
		}
	}
	return -1
}

// ReachableDIMMs returns the CXL-DIMM vertex indices reachable from the
// given core vertex — the destinations a mFlow from that core can have.
func (g *Graph) ReachableDIMMs(core int) []int {
	start := g.FindVertex(VtxCore, core)
	if start < 0 {
		return nil
	}
	seen := make([]bool, len(g.Vertices))
	stack := []int{start}
	var out []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		if g.Vertices[v].Kind == VtxCXLDIMM {
			out = append(out, v)
		}
		stack = append(stack, g.adj[v]...)
	}
	return out
}

// MFlow is a memory flow: all load/store/prefetch traffic between one core
// and one memory node over an application's lifetime (§4.2).  A flow is
// application-dependent, location-sensitive, and bidirectional.
type MFlow struct {
	App    string // application label (the "pid" of the paper's queries)
	Core   int
	Target Level // LvlLocalDRAM, LvlRemoteDRAM, or LvlCXL
	Device int   // CXL device for LvlCXL targets
}

// String formats the flow as Core_i <-> target.
func (f MFlow) String() string {
	return fmt.Sprintf("%s: core%d<->%s", f.App, f.Core, f.Target)
}

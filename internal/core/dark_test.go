package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pathfinder/internal/cxl"
	"pathfinder/internal/obs"
	"pathfinder/internal/workload"
)

// TestAnalyzerDeviceDark drives a CXL-bound workload into a surprise
// removal mid-run and checks the analysis pipeline degrades gracefully:
// post-removal epochs are flagged DeviceDark, every estimate stays finite,
// and the RAS obs metrics surface the isolation.
func TestAnalyzerDeviceDark(t *testing.T) {
	m, _, cxlRegion := testRig(t)
	m.SetFaultPlan(0, &cxl.FaultPlan{Seed: 1, RemoveAt: 500_000})

	reg := obs.NewRegistry()
	p, err := NewProfiler(Spec{
		Machine: m,
		Apps: []AppRun{{
			Label: "stream",
			Core:  0,
			Gen:   workload.NewStream(region(cxlRegion), 0, 0, 1),
		}},
		EpochCycles: 400_000,
		Epochs:      3,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}

	finite := func(epoch int, kind string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("epoch %d %s is %v with a dark device", epoch, kind, v)
		}
	}
	sawDark := false
	for i, r := range res {
		qr, bd := r.Queues["stream"], r.Stalls["stream"]
		if qr.DeviceDark != bd.DeviceDark {
			t.Fatalf("epoch %d: dark flags disagree (queues=%v stalls=%v)",
				i, qr.DeviceDark, bd.DeviceDark)
		}
		sawDark = sawDark || qr.DeviceDark
		for pt := range qr.Q {
			for c := range qr.Q[pt] {
				finite(i, "queue estimate", qr.Q[pt][c])
				finite(i, "stall estimate", bd.Stall[pt][c])
			}
		}
		r.Snapshot.Release()
	}
	if res[0].Queues["stream"].DeviceDark {
		t.Fatal("pre-removal epoch flagged DeviceDark")
	}
	if !sawDark {
		t.Fatal("no epoch flagged DeviceDark after the removal")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"pf_cxl_isolated_devices 1",
		"pf_cxl_fast_fails_total",
		"pf_cxl_error_completions_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

package core

import (
	"fmt"

	"pathfinder/internal/tsdb"
)

// Materializer is PFMaterializer (§4.6): it encapsulates each snapshot as a
// compact record in the internal time-series database and answers
// cross-snapshot questions — phase windows of stable locality, trends and
// seasonality, and correlations between concurrent flows.
//
// Record* calls run every epoch, so the materializer interns each
// (measurement, app, path, destination) tag set into a tsdb.SeriesID once
// and appends through the InsertSeries fast path afterwards — steady-state
// epochs build no per-point tag maps.
type Materializer struct {
	db  *tsdb.DB
	ids map[seriesCacheKey]tsdb.SeriesID
}

// seriesCacheKey identifies one interned series; sub is the dst/comp tag
// value (the measurement fixes which tag name it is).
type seriesCacheKey struct {
	meas, app, path, sub string
}

// NewMaterializer returns a materializer over a fresh database.
func NewMaterializer() *Materializer {
	return &Materializer{
		db:  tsdb.New(),
		ids: make(map[seriesCacheKey]tsdb.SeriesID),
	}
}

// DB exposes the underlying database for ad-hoc queries (the CLI surface).
func (mt *Materializer) DB() *tsdb.DB { return mt.db }

// seriesID resolves (measurement, app, path, subTag=subVal) through the
// intern cache, building the tag map only on first use.
func (mt *Materializer) seriesID(meas, app, path, subTag, subVal string) (tsdb.SeriesID, error) {
	k := seriesCacheKey{meas: meas, app: app, path: path, sub: subVal}
	if id, ok := mt.ids[k]; ok {
		return id, nil
	}
	id, err := mt.db.Series(meas, map[string]string{
		"app":  app,
		"path": path,
		subTag: subVal,
	})
	if err != nil {
		return id, err
	}
	mt.ids[k] = id
	return id, nil
}

// RecordPathMap digests a snapshot's path map into the "path_set"
// measurement: one point per (path, destination level) with the hit load,
// tagged by application and snapshot time.
func (mt *Materializer) RecordPathMap(app string, s *Snapshot, pm *PathMap) error {
	for _, p := range Paths() {
		for _, l := range Levels() {
			v := pm.Load[p][l]
			if v == 0 {
				continue
			}
			id, err := mt.seriesID("path_set", app, p.String(), "dst", l.String())
			if err == nil {
				err = mt.db.InsertSeries(id, s.End, tsdb.F("hits", v))
			}
			if err != nil {
				return fmt.Errorf("core: recording path map: %w", err)
			}
		}
	}
	return nil
}

// RecordStalls digests a stall breakdown into the "stall" measurement.
func (mt *Materializer) RecordStalls(app string, s *Snapshot, bd *StallBreakdown) error {
	for _, p := range Paths() {
		for _, c := range Components() {
			v := bd.Stall[p][c]
			if v == 0 {
				continue
			}
			id, err := mt.seriesID("stall", app, p.String(), "comp", c.String())
			if err == nil {
				err = mt.db.InsertSeries(id, s.End, tsdb.F("cycles", v))
			}
			if err != nil {
				return fmt.Errorf("core: recording stalls: %w", err)
			}
		}
	}
	return nil
}

// RecordQueues digests a queue report into the "queue" measurement.
func (mt *Materializer) RecordQueues(app string, s *Snapshot, qr *QueueReport) error {
	for _, p := range Paths() {
		for _, c := range Components() {
			v := qr.Q[p][c]
			if v == 0 {
				continue
			}
			id, err := mt.seriesID("queue", app, p.String(), "comp", c.String())
			if err == nil {
				err = mt.db.InsertSeries(id, s.End, tsdb.F("len", v))
			}
			if err != nil {
				return fmt.Errorf("core: recording queues: %w", err)
			}
		}
	}
	return nil
}

// LocalityWindow is one stable-locality execution phase of an application.
type LocalityWindow struct {
	Segment tsdb.Segment
	// MeanHits is the mean hit load of the window at the queried level.
	MeanHits float64
}

// LocalityWindows partitions an application's hit history at one level
// into phases of consistent locality (the paper's example query:
// FROM "path_set" WHERE app AND dst=LLC, then time-series clustering).
func (mt *Materializer) LocalityWindows(app string, dst Level, relTol float64) []LocalityWindow {
	series := mt.db.Query("path_set").Where("app", app).Where("dst", dst.String()).Field("hits")
	vals := series.Values()
	if len(vals) == 0 {
		return nil
	}
	segs := tsdb.Segments(vals, relTol, 1)
	out := make([]LocalityWindow, len(segs))
	for i, sg := range segs {
		out[i] = LocalityWindow{Segment: sg, MeanHits: sg.Mean}
	}
	return out
}

// HitTrend returns the moving-average hit series of an application at one
// destination level.
func (mt *Materializer) HitTrend(app string, dst Level, window int) tsdb.Series {
	return mt.db.Query("path_set").Where("app", app).Where("dst", dst.String()).
		Field("hits").MovingAverage(window)
}

// Forecast predicts the next horizon snapshots of an application's hit
// load at a level using Holt-Winters, detecting regular access patterns.
func (mt *Materializer) Forecast(app string, dst Level, period, horizon int) ([]float64, error) {
	vals := mt.db.Query("path_set").Where("app", app).Where("dst", dst.String()).
		Field("hits").Values()
	return tsdb.HoltWinters(vals, tsdb.HWParams{
		Alpha: 0.5, Beta: 0.1, Gamma: 0.3, Period: period,
	}, horizon)
}

// Anomalies flags epochs whose hit load at a level deviates from the local
// trend by more than z standard deviations — the residual/anomaly arm of
// the paper's time-series-analysis workflow.
func (mt *Materializer) Anomalies(app string, dst Level, window int, z float64) []tsdb.Anomaly {
	vals := mt.db.Query("path_set").Where("app", app).Where("dst", dst.String()).
		Field("hits").Values()
	return tsdb.Anomalies(vals, window, z)
}

// Correlate computes the Pearson correlation between two applications'
// hit loads at the same level over their common snapshots — the
// cross-flow locality-impact analysis of §4.6 and the bandwidth inference
// of Case 5.
func (mt *Materializer) Correlate(appA, appB string, dst Level) (float64, error) {
	a := mt.db.Query("path_set").Where("app", appA).Where("dst", dst.String()).Field("hits")
	b := mt.db.Query("path_set").Where("app", appB).Where("dst", dst.String()).Field("hits")
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 2 {
		return 0, fmt.Errorf("core: not enough common snapshots (%d)", n)
	}
	return tsdb.Pearson(a[:n].Values(), b[:n].Values())
}

// CorrelateSeries correlates two raw sample vectors (utility for
// request-frequency-vs-bandwidth analysis).
func CorrelateSeries(a, b []float64) (float64, error) { return tsdb.Pearson(a, b) }

package core

import (
	"strings"
	"testing"

	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("expected string panic, got %T: %v", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	f()
}

// TestSnapshotUnknownBankPanics is the regression test for the old
// silent-zero behaviour: reads of banks the layout does not carry used to
// return 0 and quietly corrupt analyses; they must now panic with the bank
// kind and instance, matching the Machine.Bank convention.
func TestSnapshotUnknownBankPanics(t *testing.T) {
	idx := NewBankIndex([]string{"core0", "core1", "cha0", "imc0", "m2pcie0", "cxl0"}, pmu.Default.Len())
	s := &Snapshot{End: 1000, idx: idx, arena: make([]uint64, idx.ArenaLen())}

	mustPanic(t, `no "core" bank 2`, func() { s.Core(2, pmu.CPUClkUnhalted) })
	mustPanic(t, `no "core" bank 7`, func() { s.CoreSum([]int{0, 7}, pmu.CPUClkUnhalted) })
	mustPanic(t, `no "cha" bank 1`, func() { s.CHA(1, pmu.TORInsertsIA[pmu.IAAll]) })
	mustPanic(t, `no "m2pcie" bank 3`, func() { s.M2P(3, pmu.M2PRxInserts) })
	mustPanic(t, `no "cxl" bank 1`, func() { s.CXL(1, pmu.CXLDevCASRd) })
	mustPanic(t, `no bank "imc9"`, func() { s.bankDelta("imc9") })

	// Plan reads of an absent device panic at the read, not at compile time
	// (BuildPathMap never touches the port, so a portless layout is legal).
	noPort := NewBankIndex([]string{"core0", "cha0", "imc0"}, pmu.Default.Len())
	sp := &Snapshot{End: 1000, idx: noPort, arena: make([]uint64, noPort.ArenaLen())}
	p := NewPlan(noPort, nil, 0)
	mustPanic(t, `no "m2pcie" bank 0`, func() { p.M2P(sp, pmu.M2PRxInserts) })
	mustPanic(t, `no "cxl" bank 0`, func() { p.CXL(sp, pmu.CXLDevCASRd) })

	// Compiling a plan for a core the layout lacks is an immediate bug.
	mustPanic(t, `no "core" bank 5`, func() { NewPlan(idx, []int{5}, 0) })
}

// TestPlanLayoutMismatchPanics: a plan compiled against one machine must
// refuse snapshots captured under another layout.
func TestPlanLayoutMismatchPanics(t *testing.T) {
	idxA := NewBankIndex([]string{"core0", "cha0", "imc0", "m2pcie0", "cxl0"}, pmu.Default.Len())
	idxB := NewBankIndex([]string{"core0", "core1", "cha0", "imc0", "m2pcie0", "cxl0"}, pmu.Default.Len())
	p := NewPlan(idxA, nil, 0)
	s := &Snapshot{End: 1000, idx: idxB, arena: make([]uint64, idxB.ArenaLen())}
	mustPanic(t, "different bank layout", func() {
		var q QueueReport
		p.AnalyzeQueuesInto(s, Consts{}, &q)
	})
}

// TestSnapshotRecycler: Release returns capturer snapshots to the pool, a
// recycled snapshot is reinitialized on the next Capture, double-Release is
// a no-op, and foreign snapshots ignore Release.
func TestSnapshotRecycler(t *testing.T) {
	m, _, cxlReg := testRig(t)
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(cxlReg), 1, 0.2, 1))

	m.Run(100_000)
	s1 := cap.Capture()
	if s1.Seq != 0 || s1.Start != 0 || s1.End == s1.Start {
		t.Fatalf("bad first epoch window: seq=%d [%d,%d)", s1.Seq, s1.Start, s1.End)
	}
	first, end1 := s1, s1.End
	s1.Release()
	s1.Release() // double-Release must not corrupt the pool

	m.Run(100_000)
	s2 := cap.Capture()
	if s2 != first {
		t.Error("capture after Release did not reuse the pooled snapshot")
	}
	if s2.Seq != 1 || s2.Start != end1 {
		t.Fatalf("recycled snapshot not reinitialized: seq=%d start=%d (want 1, %d)",
			s2.Seq, s2.Start, end1)
	}
	if got := s2.Core(0, pmu.CPUClkUnhalted); got <= 0 {
		t.Fatalf("recycled snapshot has no fresh deltas: clk=%v", got)
	}

	// A hand-built snapshot (no pool) must ignore Release.
	idx := NewBankIndex([]string{"core0"}, pmu.Default.Len())
	loose := &Snapshot{idx: idx, arena: make([]uint64, idx.ArenaLen())}
	loose.Release()
}

// TestCaptureSteadyStateAllocs: after warmup, a capture+release epoch loop
// must not allocate.
func TestCaptureSteadyStateAllocs(t *testing.T) {
	m, _, cxlReg := testRig(t)
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(cxlReg), 1, 0.2, 1))
	m.Run(50_000)
	cap.Capture().Release() // warm the pool
	k := ConstsFor(m.Config())
	plan := NewPlan(cap.Index(), []int{0}, 0)
	var pm PathMap
	var bd StallBreakdown
	var qr QueueReport
	buf := make(Digest, 0, 4096)

	// The capture-and-analyze pipeline (simulation excluded — the machine
	// allocates per op) must stay under the issue's <=2 allocs/epoch budget.
	allocs := testing.AllocsPerRun(20, func() {
		s := cap.Capture()
		plan.BuildPathMapInto(s, &pm)
		plan.EstimateStallsInto(s, k, &bd)
		plan.AnalyzeQueuesInto(s, k, &qr)
		buf = AppendDigest(buf[:0], s)
		s.Release()
	})
	if allocs > 2 {
		t.Fatalf("capture epoch loop allocates %.1f allocs/epoch, want <= 2", allocs)
	}
}

package core

import (
	"bytes"
	"fmt"
	"testing"

	"pathfinder/internal/obs"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Windowed-scheduler equivalence: the window-parallel execution mode (the
// sequential per-core sweep at one lane, parallel worker lanes above it)
// must be invisible to every observable, exactly like the run-ahead fast
// path it extends.  Every shared golden scenario runs under each lane
// configuration against the dispatch-only engine and the captured snapshot
// digests must match byte for byte.

// runWindowMode executes a golden scenario with the given lane setting:
// -1 forces every core step through the event engine with run-ahead off
// (the baseline), 1 is the windowed sweep, >=2 enables parallel lanes, and
// 0 is auto.
func runWindowMode(t *testing.T, lanes, epochs int, cyc sim.Cycles, setup fastpathScenario) fastpathRun {
	t.Helper()
	m, localReg, cxlReg := testRig(t)
	if lanes < 0 {
		m.SetRunAhead(false)
	} else {
		m.SetLanes(lanes)
	}
	cleanup := setup(t, m, region(localReg), region(cxlReg))
	cap := NewCapturer(m)
	var out fastpathRun
	for e := 0; e < epochs; e++ {
		m.Run(cyc)
		out.digests = append(out.digests, EncodeDigest(cap.Capture()))
	}
	if cleanup != nil {
		cleanup()
	}
	out.now = m.Now()
	out.inline = m.InlineSteps()
	return out
}

// windowLaneConfigs are the lane settings every scenario is verified
// under: the sequential sweep, two parallel lanes, one lane per core, and
// auto (GOMAXPROCS-resolved).
var windowLaneConfigs = []int{1, 2, 4, 0}

func TestWindowGoldenScenarios(t *testing.T) {
	for _, sc := range goldenScenarios {
		t.Run(sc.name, func(t *testing.T) {
			base := runWindowMode(t, -1, sc.epochs, sc.cyc, sc.setup)
			if base.inline != 0 {
				t.Fatalf("baseline run reported %d inline steps", base.inline)
			}
			for _, lanes := range windowLaneConfigs {
				t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
					got := runWindowMode(t, lanes, sc.epochs, sc.cyc, sc.setup)
					if got.now != base.now {
						t.Fatalf("final clock differs: windowed=%d baseline=%d", got.now, base.now)
					}
					if got.inline == 0 {
						t.Fatal("windowed run executed zero inline steps")
					}
					for e := range got.digests {
						if !bytes.Equal(got.digests[e], base.digests[e]) {
							t.Errorf("epoch %d digest differs from dispatch-only baseline", e)
							diffDigests(t, got.digests[e], base.digests[e])
						}
					}
				})
			}
		})
	}
}

// TestWindowGoldenTracerEnabled runs the sampling-tracer scenario under
// parallel lanes.  An enabled tracer mutates per-op sampling state, so the
// scheduler must fall back to the exact sequential sweep — and the tracer
// must observe the identical request population.
func TestWindowGoldenTracerEnabled(t *testing.T) {
	type stats struct{ committed, dropped uint64 }
	run := func(lanes int) (fastpathRun, stats) {
		var st stats
		out := runWindowMode(t, lanes, 2, 1_000_000,
			func(t *testing.T, m *sim.Machine, local, cxlReg workload.Region) func() {
				tr := obs.NewTracer(1<<14, 4)
				tr.Enable()
				m.SetTracer(tr)
				m.Attach(0, workload.NewStream(cxlReg, 2, 0.2, 5))
				m.Attach(1, workload.NewStream(local, 2, 0.2, 6))
				return func() { _, st.committed, st.dropped = tr.Stats() }
			})
		return out, st
	}
	base, baseStats := run(-1)
	for _, lanes := range windowLaneConfigs {
		got, gotStats := run(lanes)
		if got.now != base.now {
			t.Fatalf("lanes=%d: final clock differs: %d vs %d", lanes, got.now, base.now)
		}
		if gotStats != baseStats {
			t.Fatalf("lanes=%d: tracer stats differ: %+v vs %+v", lanes, gotStats, baseStats)
		}
		for e := range got.digests {
			if !bytes.Equal(got.digests[e], base.digests[e]) {
				t.Errorf("lanes=%d: epoch %d digest differs", lanes, e)
				diffDigests(t, got.digests[e], base.digests[e])
			}
		}
	}
	if baseStats.committed == 0 {
		t.Fatal("tracer committed no records")
	}
}

// TestWindowGoldenFlightEnabled runs an always-on flight recorder under
// every lane configuration.  Unlike the tracer, the recorder must NOT
// force the sequential sweep — lanes defer shared promotion work to the
// window barrier instead — and the PMU digests must stay byte-identical
// with the dispatch-only baseline.  The recorder sees the same request
// population in every mode; promotion decisions may legitimately differ
// across lane configs (the quantile sketch is order-dependent), but never
// the digests.
func TestWindowGoldenFlightEnabled(t *testing.T) {
	run := func(lanes int) (fastpathRun, uint64, sim.WindowStats) {
		var records uint64
		var ws sim.WindowStats
		out := runWindowMode(t, lanes, 2, 1_000_000,
			func(t *testing.T, m *sim.Machine, local, cxlReg workload.Region) func() {
				fl := obs.NewFlight(m.Cores(), 2048, 128)
				fl.Enable()
				m.SetFlight(fl)
				m.Attach(0, workload.NewStream(cxlReg, 2, 0.2, 5))
				m.Attach(1, workload.NewStream(local, 2, 0.2, 6))
				return func() {
					records = fl.RecordsTotal()
					ws = m.WindowStats()
				}
			})
		return out, records, ws
	}
	base, baseRecords, _ := run(-1)
	if baseRecords == 0 {
		t.Fatal("flight recorder filed no records")
	}
	for _, lanes := range []int{1, 2} {
		got, records, ws := run(lanes)
		if got.now != base.now {
			t.Fatalf("lanes=%d: final clock differs: %d vs %d", lanes, got.now, base.now)
		}
		if records != baseRecords {
			t.Fatalf("lanes=%d: flight saw %d records, baseline %d", lanes, records, baseRecords)
		}
		if lanes >= 2 && ws.Windows == 0 {
			t.Fatalf("lanes=%d: flight recorder suppressed parallel windows", lanes)
		}
		for e := range got.digests {
			if !bytes.Equal(got.digests[e], base.digests[e]) {
				t.Errorf("lanes=%d: epoch %d digest differs with flight enabled", lanes, e)
				diffDigests(t, got.digests[e], base.digests[e])
			}
		}
	}
}

// TestWindowStepEquivalence drives the same two-core workload through one
// long Run and through many short slices under parallel lanes: slicing
// re-clips the window horizon constantly, so this pins the H-boundary
// handling (a window must never commit work beyond the Run bound).
func TestWindowStepEquivalence(t *testing.T) {
	run := func(lanes, slices int, each sim.Cycles) Digest {
		m, localReg, cxlReg := testRig(t)
		m.SetLanes(lanes)
		m.Attach(0, workload.NewStream(region(localReg), 2, 0.2, 9))
		m.Attach(1, workload.NewStream(region(cxlReg), 2, 0.1, 10))
		cap := NewCapturer(m)
		for i := 0; i < slices; i++ {
			m.Run(each)
		}
		return EncodeDigest(cap.Capture())
	}
	whole := run(2, 1, 1_200_000)
	sliced := run(2, 1200, 1_000)
	if !bytes.Equal(whole, sliced) {
		t.Fatal("digest differs between one Run and 1200 sliced Runs under lanes=2")
	}
	sweep := run(1, 300, 4_000)
	if !bytes.Equal(whole, sweep) {
		t.Fatal("digest differs between lanes=2 and the sweep under sliced Runs")
	}
}

// TestWindowStatsPopulated checks the scheduler's introspection counters:
// a multi-core run under parallel lanes must open windows and merge at
// barriers, and the sweep must not.
func TestWindowStatsPopulated(t *testing.T) {
	run := func(lanes int) sim.WindowStats {
		m, localReg, cxlReg := testRig(t)
		m.SetLanes(lanes)
		m.Attach(0, workload.NewStream(region(localReg), 2, 0.2, 1))
		m.Attach(1, workload.NewStream(region(cxlReg), 2, 0.3, 2))
		m.Attach(2, workload.NewStream(region(localReg), 2, 0, 3))
		m.Attach(3, workload.NewStream(region(cxlReg), 2, 0.1, 4))
		m.Run(500_000)
		return m.WindowStats()
	}
	par := run(2)
	if par.Windows == 0 {
		t.Fatal("lanes=2 multi-core run opened no parallel windows")
	}
	if par.BarrierMerges != par.Windows {
		t.Fatalf("barrier merges (%d) != windows (%d)", par.BarrierMerges, par.Windows)
	}
	var cycles uint64
	for _, c := range par.WindowCycles {
		cycles += c
	}
	if cycles != par.Windows {
		t.Fatalf("window-cycle histogram total %d != windows %d", cycles, par.Windows)
	}
	sweep := run(1)
	if sweep.Windows != 0 {
		t.Fatalf("sweep run reported %d parallel windows", sweep.Windows)
	}
}

package core

import (
	"testing"
	"testing/quick"

	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

func TestDigestRoundTrip(t *testing.T) {
	m, local, cxl := testRig(t)
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(local), 2, 0.2, 1))
	m.Attach(1, workload.NewStream(region(cxl), 2, 0.2, 2))
	m.Run(1_000_000)
	s := cap.Capture()

	d := EncodeDigest(s)
	got, err := DecodeDigest(d, pmu.Default.Len())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != s.Seq || got.Start != s.Start || got.End != s.End {
		t.Fatalf("header mismatch: %+v vs %+v", got, s)
	}
	if got.NumCores() != s.NumCores() || got.NumCHA() != s.NumCHA() ||
		got.NumCXL() != s.NumCXL() {
		t.Fatal("bank census mismatch")
	}
	for _, name := range s.idx.names {
		if _, ok := got.idx.byName[name]; !ok {
			t.Fatalf("bank %s missing after decode", name)
		}
		want, have := s.bankDelta(name), got.bankDelta(name)
		for e := range want {
			if want[e] != have[e] {
				t.Fatalf("%s[%s] = %d, want %d", name, pmu.Default.Name(pmu.Event(e)), have[e], want[e])
			}
		}
	}
	// The analyses must produce identical results on the decoded snapshot.
	pm1 := BuildPathMap(s, []int{1})
	pm2 := BuildPathMap(got, []int{1})
	if pm1.Load != pm2.Load {
		t.Fatal("path maps differ after digest round trip")
	}
}

func TestDigestCompression(t *testing.T) {
	m, _, cxl := testRig(t)
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(cxl), 2, 0, 1))
	m.Run(500_000)
	s := cap.Capture()

	raw := 8 * len(s.arena)
	d := EncodeDigest(s)
	if len(d) >= raw/4 {
		t.Fatalf("digest %d bytes vs raw %d: expected >4x compression from sparsity", len(d), raw)
	}
}

func TestDigestErrors(t *testing.T) {
	m, local, _ := testRig(t)
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(local), 2, 0, 1))
	m.Run(200_000)
	d := EncodeDigest(cap.Capture())

	if _, err := DecodeDigest(d[:3], pmu.Default.Len()); err == nil {
		t.Fatal("truncated magic accepted")
	}
	bad := append(Digest{}, d...)
	bad[0] = 'X'
	if _, err := DecodeDigest(bad, pmu.Default.Len()); err == nil {
		t.Fatal("bad magic accepted")
	}
	ver := append(Digest{}, d...)
	ver[4] = 99
	if _, err := DecodeDigest(ver, pmu.Default.Len()); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := DecodeDigest(d[:len(d)/2], pmu.Default.Len()); err == nil {
		t.Fatal("truncated body accepted")
	}
	// An index overflowing a smaller catalog is rejected.
	if _, err := DecodeDigest(d, 3); err == nil {
		t.Fatal("oversized event index accepted")
	}
}

// Property: synthetic sparse snapshots round-trip exactly.
func TestDigestProperty(t *testing.T) {
	const nEvents = 64
	f := func(vals []uint64, seq uint16) bool {
		if len(vals) > nEvents {
			vals = vals[:nEvents]
		}
		idx := NewBankIndex([]string{"core0", "cxl0"}, nEvents)
		s := &Snapshot{Seq: int(seq), Start: 10, End: 20,
			idx: idx, arena: make([]uint64, idx.ArenaLen())}
		copy(s.bankDelta("core0"), vals)
		copy(s.bankDelta("cxl0"), vals)
		got, err := DecodeDigest(EncodeDigest(s), nEvents)
		if err != nil {
			return false
		}
		for _, name := range []string{"core0", "cxl0"} {
			want, have := s.bankDelta(name), got.bankDelta(name)
			for i := range want {
				if want[i] != have[i] {
					return false
				}
			}
		}
		return got.Seq == s.Seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

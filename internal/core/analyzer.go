package core

import "pathfinder/internal/pmu"

// QueueReport is PFAnalyzer's output: Little's-law queue-length estimates
// per (path, component), and the culprit — the maximum-occupancy pair that
// bottlenecks the snapshot (Algorithm 1).
type QueueReport struct {
	Q           [PathCount][CompCount]float64
	CulpritPath PathType
	CulpritComp Component
}

// pathHitMiss extracts a path's hit/miss counts at one cache level from the
// snapshot, honoring the PMU blind spots (RFO/HWPF are invisible at L1D).
func pathHitMiss(s *Snapshot, cores []int, p PathType, c Component) (hit, miss float64) {
	switch c {
	case CompL1D:
		if p == PathDRd {
			return s.CoreSum(cores, pmu.MemLoadL1Hit), s.CoreSum(cores, pmu.MemLoadL1Miss)
		}
	case CompL2:
		switch p {
		case PathDRd:
			return s.CoreSum(cores, pmu.L2DemandDataRdHit), s.CoreSum(cores, pmu.L2DemandDataRdMiss)
		case PathRFO:
			return s.CoreSum(cores, pmu.L2RFOHit), s.CoreSum(cores, pmu.L2RFOMiss)
		case PathHWPF:
			return s.CoreSum(cores, pmu.L2HWPFHit), s.CoreSum(cores, pmu.L2HWPFMiss)
		}
	case CompLLC:
		var fams []pmu.Family
		switch p {
		case PathDRd:
			fams = []pmu.Family{pmu.OCRDemandDataRd}
		case PathRFO:
			fams = []pmu.Family{pmu.OCRRFO}
		case PathHWPF:
			fams = []pmu.Family{pmu.OCRL1DHWPF, pmu.OCRL2HWPFDRd, pmu.OCRL2HWPFRFO}
		}
		for _, f := range fams {
			hit += s.CoreFamilySum(cores, f, pmu.ScnHit)
			miss += s.CoreFamilySum(cores, f, pmu.ScnMiss)
		}
		return hit, miss
	}
	return 0, 0
}

// llcMissDelay measures the average TOR residency of missing entries for a
// path — PFAnalyzer's W_miss at the LLC ("missing requests remain in the
// CHA TOR queue until completed", §4.5).
func llcMissDelay(s *Snapshot, p PathType) float64 {
	var occ, ins float64
	switch p {
	case PathDRd:
		occ = s.CHASum(pmu.TOROccupancyIADRd[pmu.ScnMiss])
		ins = s.CHASum(pmu.TORInsertsIADRd[pmu.ScnMiss])
	case PathRFO:
		occ = s.CHASum(pmu.TOROccupancyIARFO[pmu.RFOMiss])
		ins = s.CHASum(pmu.TORInsertsIARFO[pmu.RFOMiss])
	case PathHWPF:
		occ = s.CHASum(pmu.TOROccupancyIADRdPref[pmu.ScnMiss]) +
			s.CHASum(pmu.TOROccupancyIARFOPref[pmu.RFOMiss])
		ins = s.CHASum(pmu.TORInsertsIADRdPref[pmu.ScnMiss]) +
			s.CHASum(pmu.TORInsertsIARFOPref[pmu.RFOMiss])
	}
	if ins == 0 {
		return 0
	}
	return occ / ins
}

// cxlPathReads returns a path's CXL read traffic for the flow.
func cxlPathReads(s *Snapshot, cores []int, p PathType) float64 {
	switch p {
	case PathDRd:
		return s.CoreFamilySum(cores, pmu.OCRDemandDataRd, pmu.ScnMissCXL)
	case PathRFO:
		return s.CoreFamilySum(cores, pmu.OCRRFO, pmu.ScnMissCXL)
	case PathHWPF:
		return s.CoreFamilySum(cores, pmu.OCRL1DHWPF, pmu.ScnMissCXL) +
			s.CoreFamilySum(cores, pmu.OCRL2HWPFDRd, pmu.ScnMissCXL) +
			s.CoreFamilySum(cores, pmu.OCRL2HWPFRFO, pmu.ScnMissCXL)
	}
	return 0
}

// AnalyzeQueues runs PFAnalyzer (Algorithm 1): it models each component as
// an FCFS queue, combines hit/miss rates with hit/tag/miss delays through
// Little's law (L = λ_hit·W_hit + λ_miss·W_miss at L1D/L2/LLC;
// L = λ_hit·W_hit at LFB and the memory devices), and flags the
// maximum-occupancy (path, component) pair as the culprit.
func AnalyzeQueues(s *Snapshot, cores []int, dev int, k Consts) *QueueReport {
	r := &QueueReport{}
	clocks := s.Cycles()
	if clocks == 0 {
		return r
	}

	devReads := s.CXL(dev, pmu.CXLRxPackBufInsertsReq)
	devReadOcc := s.CXL(dev, pmu.CXLDevRPQOccupancy) + s.CXL(dev, pmu.CXLRxPackBufOccReq)
	m2pIns := s.M2P(dev, pmu.M2PRxInserts)
	m2pOcc := s.M2P(dev, pmu.M2PRxOccupancy)

	for _, p := range []PathType{PathDRd, PathRFO, PathHWPF} {
		// L1D, L2: hit/miss with constant tag-lookup miss penalty.
		for _, c := range []Component{CompL1D, CompL2} {
			hit, miss := pathHitMiss(s, cores, p, c)
			wHit, wTag := k.L1Lat, k.L1Tag
			if c == CompL2 {
				wHit, wTag = k.L2Lat, k.L2Tag
			}
			r.Q[p][c] = (hit*wHit + miss*wTag) / clocks
		}
		// LLC: measured miss residency as W_miss.
		hit, miss := pathHitMiss(s, cores, p, CompLLC)
		r.Q[p][CompLLC] = (hit*k.LLCLat + miss*llcMissDelay(s, p)) / clocks

		// LFB (demand-load path only): L = λ_hit · W_hit with the measured
		// average offcore read latency as the fill delay.
		if p == PathDRd {
			fills := s.CoreSum(cores, pmu.MemLoadL1Miss)
			offIns := s.CoreSum(cores, pmu.OffcoreDataRd)
			var wFill float64
			if offIns > 0 {
				wFill = s.CoreSum(cores, pmu.ORODataRd) / offIns
			}
			r.Q[p][CompLFB] = fills * wFill / clocks
		}

		// FlexBus+MC and CXL DIMM: arrival rate x measured per-request
		// residency, apportioned to the path by its CXL traffic share.
		fr := cxlPathReads(s, cores, p)
		if devReads > 0 && fr > 0 {
			var wFlex float64
			if m2pIns > 0 {
				wFlex = m2pOcc/m2pIns + k.LinkTransit
			}
			r.Q[p][CompFlexBusMC] = (fr / clocks) * wFlex
			r.Q[p][CompCXLDIMM] = devReadOcc * (fr / devReads) / clocks
		}
	}

	// Culprit: the maximum estimated queue length.
	best := -1.0
	for _, p := range Paths() {
		for _, c := range Components() {
			if r.Q[p][c] > best {
				best = r.Q[p][c]
				r.CulpritPath, r.CulpritComp = p, c
			}
		}
	}
	return r
}

// MeasuredQueues returns the directly-integrated average queue lengths per
// component from the occupancy counters — the ground truth PFAnalyzer's
// estimates are validated against in tests, and the series plotted in
// Figures 8 and 10.
func MeasuredQueues(s *Snapshot, cores []int, dev int) map[Component]float64 {
	clocks := s.Cycles()
	if clocks == 0 {
		return nil
	}
	out := map[Component]float64{
		CompLFB:       s.CoreSum(cores, pmu.L1DPendMissPending) / clocks,
		CompCHA:       s.CHASum(pmu.TOROccupancyIA[pmu.IAAll]) / clocks,
		CompFlexBusMC: s.M2P(dev, pmu.M2PRxOccupancy) / clocks,
		CompCXLDIMM: (s.CXL(dev, pmu.CXLDevRPQOccupancy) +
			s.CXL(dev, pmu.CXLRxPackBufOccReq) +
			s.CXL(dev, pmu.CXLDevWPQOccupancy) +
			s.CXL(dev, pmu.CXLRxPackBufOccData)) / clocks,
	}
	return out
}

package core

// QueueReport is PFAnalyzer's output: Little's-law queue-length estimates
// per (path, component), and the culprit — the maximum-occupancy pair that
// bottlenecks the snapshot (Algorithm 1).
type QueueReport struct {
	Q           [PathCount][CompCount]float64
	CulpritPath PathType
	CulpritComp Component

	// DeviceDark marks a window in which the profiled CXL device was
	// surprise-removed: its banks stopped counting mid-run, so the CXL
	// rows reflect only the pre-removal fraction of the window.  The
	// estimates stay finite (every divisor is guarded) but should be read
	// as partial.
	DeviceDark bool
}

// AnalyzeQueues runs PFAnalyzer (Algorithm 1): it models each component as
// an FCFS queue, combines hit/miss rates with hit/tag/miss delays through
// Little's law (L = λ_hit·W_hit + λ_miss·W_miss at L1D/L2/LLC;
// L = λ_hit·W_hit at LFB and the memory devices), and flags the
// maximum-occupancy (path, component) pair as the culprit.
//
// This is the compatibility entry point: it compiles a throwaway read plan
// per call.  Epoch loops should hold a Plan and use AnalyzeQueuesInto.
func AnalyzeQueues(s *Snapshot, cores []int, dev int, k Consts) *QueueReport {
	r := &QueueReport{}
	NewPlan(s.idx, cores, dev).AnalyzeQueuesInto(s, k, r)
	return r
}

// MeasuredQueues returns the directly-integrated average queue lengths per
// component from the occupancy counters — the ground truth PFAnalyzer's
// estimates are validated against in tests, and the series plotted in
// Figures 8 and 10.  Epoch loops should use Plan.MeasuredQueuesInto.
func MeasuredQueues(s *Snapshot, cores []int, dev int) map[Component]float64 {
	var q [CompCount]float64
	if !NewPlan(s.idx, cores, dev).MeasuredQueuesInto(s, &q) {
		return nil
	}
	return map[Component]float64{
		CompLFB:       q[CompLFB],
		CompCHA:       q[CompCHA],
		CompFlexBusMC: q[CompFlexBusMC],
		CompCXLDIMM:   q[CompCXLDIMM],
	}
}

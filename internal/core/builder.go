package core

// PathMap is PFBuilder's output: per-path traffic load (request hits) at
// each level of the hierarchy, from the store buffer down to the memory
// devices — the structure of Table 7.
type PathMap struct {
	Cores []int // nil means all cores
	Load  [PathCount][LevelCount]float64
}

// BuildPathMap constructs the path map for the flows originating from the
// given cores (nil = all) by synthesizing the Table 5 counters: per-core
// hit counters for the on-core levels, offcore-response scenario counters
// for the uncore destinations, and device-level ground truth for
// writeback targets.
//
// Documented PMU blind spots are preserved faithfully (§5.9): RFO and DWr
// cannot be observed at L1D/LFB; the L2 RFO counter mixes demand and
// prefetch RFOs; HWPF hits cannot be split between the local and distant
// SNC cluster per-core, so the split is estimated from the DRd ratio.
//
// This is the compatibility entry point: it compiles a throwaway read plan
// per call.  Epoch loops should hold a Plan and use BuildPathMapInto.
func BuildPathMap(s *Snapshot, cores []int) *PathMap {
	pm := &PathMap{}
	NewPlan(s.idx, cores, 0).BuildPathMapInto(s, pm)
	return pm
}

// PathTotal returns the total traffic load of a path across all levels.
func (pm *PathMap) PathTotal(p PathType) float64 {
	var t float64
	for _, v := range pm.Load[p] {
		t += v
	}
	return t
}

// LevelTotal returns the total traffic at one level across all paths.
func (pm *PathMap) LevelTotal(l Level) float64 {
	var t float64
	for p := range pm.Load {
		t += pm.Load[p][l]
	}
	return t
}

// UncoreTotal returns a path's traffic beyond the L2 (the uncore region).
func (pm *PathMap) UncoreTotal(p PathType) float64 {
	var t float64
	for l := LvlLocalLLC; l < LevelCount; l++ {
		t += pm.Load[p][l]
	}
	return t
}

// HotPathCore returns the path with the most on-core traffic (SB..L2).
func (pm *PathMap) HotPathCore() PathType {
	best, bestV := PathDRd, -1.0
	for _, p := range Paths() {
		var v float64
		for l := LvlSB; l <= LvlL2; l++ {
			v += pm.Load[p][l]
		}
		if v > bestV {
			best, bestV = p, v
		}
	}
	return best
}

// HotPathUncore returns the path with the most uncore traffic, and its
// share of all uncore traffic.
func (pm *PathMap) HotPathUncore() (PathType, float64) {
	var total float64
	best, bestV := PathDRd, -1.0
	for _, p := range Paths() {
		v := pm.UncoreTotal(p)
		total += v
		if v > bestV {
			best, bestV = p, v
		}
	}
	if total == 0 {
		return best, 0
	}
	return best, bestV / total
}

// CXLShare returns the fraction of a path's uncore traffic served by CXL
// memory.
func (pm *PathMap) CXLShare(p PathType) float64 {
	u := pm.UncoreTotal(p)
	if u == 0 {
		return 0
	}
	return pm.Load[p][LvlCXL] / u
}

// CXLTraffic returns the total CXL-served traffic across paths — the
// request frequency PFBuilder reports for bandwidth inference (Case 5).
func (pm *PathMap) CXLTraffic() float64 {
	return pm.LevelTotal(LvlCXL)
}

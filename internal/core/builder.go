package core

import "pathfinder/internal/pmu"

// PathMap is PFBuilder's output: per-path traffic load (request hits) at
// each level of the hierarchy, from the store buffer down to the memory
// devices — the structure of Table 7.
type PathMap struct {
	Cores []int // nil means all cores
	Load  [PathCount][LevelCount]float64
}

// BuildPathMap constructs the path map for the flows originating from the
// given cores (nil = all) by synthesizing the Table 5 counters: per-core
// hit counters for the on-core levels, offcore-response scenario counters
// for the uncore destinations, and device-level ground truth for
// writeback targets.
//
// Documented PMU blind spots are preserved faithfully (§5.9): RFO and DWr
// cannot be observed at L1D/LFB; the L2 RFO counter mixes demand and
// prefetch RFOs; HWPF hits cannot be split between the local and distant
// SNC cluster per-core, so the split is estimated from the DRd ratio.
func BuildPathMap(s *Snapshot, cores []int) *PathMap {
	pm := &PathMap{Cores: cores}
	cs := func(e pmu.Event) float64 { return s.CoreSum(cores, e) }
	fam := func(f pmu.Family, scn int) float64 { return s.CoreFamilySum(cores, f, scn) }

	// --- DRd (software prefetches merge into DRd after the L1D, §3.2) ---
	drd := &pm.Load[PathDRd]
	drd[LvlL1D] = cs(pmu.MemLoadL1Hit)
	drd[LvlLFB] = cs(pmu.MemLoadFBHit)
	drd[LvlL2] = cs(pmu.L2DemandDataRdHit) + cs(pmu.L2SWPFHit)
	drd[LvlLocalLLC] = cs(pmu.MemLoadL3HitRetired[0]) + cs(pmu.MemLoadL3HitRetired[3])
	drd[LvlSNCLLC] = cs(pmu.MemLoadL3HitRetired[2])
	drd[LvlRemoteLLC] = cs(pmu.MemLoadL3MissRetired[2])
	drd[LvlLocalDRAM] = fam(pmu.OCRDemandDataRd, pmu.ScnMissLocalDDR)
	drd[LvlRemoteDRAM] = fam(pmu.OCRDemandDataRd, pmu.ScnMissRemoteDDR)
	drd[LvlCXL] = fam(pmu.OCRDemandDataRd, pmu.ScnMissCXL)

	// --- RFO ---
	rfo := &pm.Load[PathRFO]
	rfo[LvlL2] = cs(pmu.L2RFOHit) // includes prefetch RFOs: PMU limitation
	rfo[LvlLocalLLC] = fam(pmu.OCRRFO, pmu.ScnHit)
	rfo[LvlRemoteLLC] = 0 // not observable per-core for RFOs
	rfo[LvlLocalDRAM] = fam(pmu.OCRRFO, pmu.ScnMissLocalDDR)
	rfo[LvlRemoteDRAM] = fam(pmu.OCRRFO, pmu.ScnMissRemoteDDR)
	rfo[LvlCXL] = fam(pmu.OCRRFO, pmu.ScnMissCXL)

	// --- HW PF: the three prefetch OCR matrices combined ---
	hw := &pm.Load[PathHWPF]
	pfScn := func(scn int) float64 {
		return fam(pmu.OCRL1DHWPF, scn) + fam(pmu.OCRL2HWPFDRd, scn) + fam(pmu.OCRL2HWPFRFO, scn)
	}
	hw[LvlL2] = cs(pmu.L2HWPFHit)
	hitLLC := pfScn(pmu.ScnHit)
	// Split LLC hits between the local and distant cluster using the DRd
	// ratio (no per-core prefetch xsnp counters exist).
	if dl, ds := drd[LvlLocalLLC], drd[LvlSNCLLC]; dl+ds > 0 {
		hw[LvlLocalLLC] = hitLLC * dl / (dl + ds)
		hw[LvlSNCLLC] = hitLLC * ds / (dl + ds)
	} else {
		hw[LvlLocalLLC] = hitLLC
	}
	hw[LvlLocalDRAM] = pfScn(pmu.ScnMissLocalDDR)
	hw[LvlRemoteDRAM] = pfScn(pmu.ScnMissRemoteDDR)
	hw[LvlCXL] = pfScn(pmu.ScnMissCXL)

	// --- DWr ---
	dwr := &pm.Load[PathDWr]
	stores := cs(pmu.MemInstAllStores)
	l2StoreHits := cs(pmu.MemStoreL2Hit)
	offcoreRFOs := cs(pmu.L2AllRFO)
	sb := stores - offcoreRFOs
	if sb < 0 {
		sb = 0
	}
	dwr[LvlSB] = sb
	dwr[LvlL2] = l2StoreHits
	dwr[LvlLocalLLC] = cs(pmu.OCRModifiedWriteAny) // L2 dirty victims landing at the LLC

	// Writeback destinations: device-level ground truth (Table 5's
	// M2PCIe/IMC rows), scaled to the flow's share of socket writebacks.
	flowWB := cs(pmu.OCRModifiedWriteAny)
	allWB := s.CoreSum(nil, pmu.OCRModifiedWriteAny)
	share := 1.0
	if allWB > 0 {
		share = flowWB / allWB
	}
	dwr[LvlLocalDRAM] = s.IMCSum(pmu.WPQInserts) * share
	var cxlWr float64
	for d := 0; d < s.NumCXL(); d++ {
		cxlWr += s.CXL(d, pmu.CXLRxPackBufInsertsData)
	}
	dwr[LvlCXL] = cxlWr * share

	return pm
}

// PathTotal returns the total traffic load of a path across all levels.
func (pm *PathMap) PathTotal(p PathType) float64 {
	var t float64
	for _, v := range pm.Load[p] {
		t += v
	}
	return t
}

// LevelTotal returns the total traffic at one level across all paths.
func (pm *PathMap) LevelTotal(l Level) float64 {
	var t float64
	for p := range pm.Load {
		t += pm.Load[p][l]
	}
	return t
}

// UncoreTotal returns a path's traffic beyond the L2 (the uncore region).
func (pm *PathMap) UncoreTotal(p PathType) float64 {
	var t float64
	for l := LvlLocalLLC; l < LevelCount; l++ {
		t += pm.Load[p][l]
	}
	return t
}

// HotPathCore returns the path with the most on-core traffic (SB..L2).
func (pm *PathMap) HotPathCore() PathType {
	best, bestV := PathDRd, -1.0
	for _, p := range Paths() {
		var v float64
		for l := LvlSB; l <= LvlL2; l++ {
			v += pm.Load[p][l]
		}
		if v > bestV {
			best, bestV = p, v
		}
	}
	return best
}

// HotPathUncore returns the path with the most uncore traffic, and its
// share of all uncore traffic.
func (pm *PathMap) HotPathUncore() (PathType, float64) {
	var total float64
	best, bestV := PathDRd, -1.0
	for _, p := range Paths() {
		v := pm.UncoreTotal(p)
		total += v
		if v > bestV {
			best, bestV = p, v
		}
	}
	if total == 0 {
		return best, 0
	}
	return best, bestV / total
}

// CXLShare returns the fraction of a path's uncore traffic served by CXL
// memory.
func (pm *PathMap) CXLShare(p PathType) float64 {
	u := pm.UncoreTotal(p)
	if u == 0 {
		return 0
	}
	return pm.Load[p][LvlCXL] / u
}

// CXLTraffic returns the total CXL-served traffic across paths — the
// request frequency PFBuilder reports for bandwidth inference (Case 5).
func (pm *PathMap) CXLTraffic() float64 {
	return pm.LevelTotal(LvlCXL)
}

package core

import (
	"testing"

	"pathfinder/internal/tsdb"
)

// fakeSnapshot builds a minimal snapshot for materializer unit tests.
func fakeSnapshot(seq int, end uint64) *Snapshot {
	idx := NewBankIndex([]string{"core0"}, 1)
	return &Snapshot{Seq: seq, Start: end - 100, End: end,
		idx: idx, arena: make([]uint64, idx.ArenaLen())}
}

func pathMapWith(p PathType, l Level, v float64) *PathMap {
	pm := &PathMap{}
	pm.Load[p][l] = v
	return pm
}

func TestMaterializerRecordAndQuery(t *testing.T) {
	mt := NewMaterializer()
	for i := 0; i < 10; i++ {
		v := 100.0
		if i >= 5 {
			v = 900.0 // phase change halfway through
		}
		pm := pathMapWith(PathDRd, LvlCXL, v)
		if err := mt.RecordPathMap("app", fakeSnapshot(i, uint64(1000+i*100)), pm); err != nil {
			t.Fatal(err)
		}
	}
	ws := mt.LocalityWindows("app", LvlCXL, 0.3)
	if len(ws) != 2 {
		t.Fatalf("windows = %+v", ws)
	}
	if !(ws[0].MeanHits < 200 && ws[1].MeanHits > 800) {
		t.Fatalf("window means: %+v", ws)
	}
	trend := mt.HitTrend("app", LvlCXL, 2)
	if len(trend) != 10 {
		t.Fatalf("trend points = %d", len(trend))
	}
	// Unknown app: no windows, no trend.
	if mt.LocalityWindows("ghost", LvlCXL, 0.3) != nil {
		t.Fatal("windows for unknown app")
	}
}

func TestMaterializerZeroLoadsSkipped(t *testing.T) {
	mt := NewMaterializer()
	pm := &PathMap{} // all zeros
	if err := mt.RecordPathMap("app", fakeSnapshot(0, 100), pm); err != nil {
		t.Fatal(err)
	}
	if got := mt.DB().Query("path_set").Field("hits"); len(got) != 0 {
		t.Fatalf("zero loads recorded: %d points", len(got))
	}
}

func TestMaterializerStallsAndQueues(t *testing.T) {
	mt := NewMaterializer()
	bd := &StallBreakdown{}
	bd.Stall[PathDRd][CompFlexBusMC] = 4000
	if err := mt.RecordStalls("app", fakeSnapshot(0, 100), bd); err != nil {
		t.Fatal(err)
	}
	qr := &QueueReport{}
	qr.Q[PathHWPF][CompCXLDIMM] = 7.5
	if err := mt.RecordQueues("app", fakeSnapshot(0, 100), qr); err != nil {
		t.Fatal(err)
	}
	s := mt.DB().Query("stall").Where("comp", "FlexBus+MC").Field("cycles")
	if s.Sum() != 4000 {
		t.Fatalf("stall sum = %v", s.Sum())
	}
	q := mt.DB().Query("queue").Where("path", "HW PF").Field("len")
	if q.Sum() != 7.5 {
		t.Fatalf("queue sum = %v", q.Sum())
	}
}

func TestMaterializerForecast(t *testing.T) {
	mt := NewMaterializer()
	// A seasonal hit pattern with period 4.
	base := []float64{100, 300, 500, 300}
	for i := 0; i < 16; i++ {
		pm := pathMapWith(PathDRd, LvlCXL, base[i%4])
		if err := mt.RecordPathMap("app", fakeSnapshot(i, uint64(100+i)), pm); err != nil {
			t.Fatal(err)
		}
	}
	fc, err := mt.Forecast("app", LvlCXL, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The forecast must preserve the seasonal peak position (slot 2).
	if !(fc[2] > fc[0] && fc[2] > fc[3]) {
		t.Fatalf("forecast lost seasonality: %v", fc)
	}
	if _, err := mt.Forecast("ghost", LvlCXL, 4, 2); err == nil {
		t.Fatal("forecast for unknown app succeeded")
	}
}

func TestMaterializerCorrelateErrors(t *testing.T) {
	mt := NewMaterializer()
	pm := pathMapWith(PathDRd, LvlCXL, 5)
	_ = mt.RecordPathMap("only", fakeSnapshot(0, 100), pm)
	if _, err := mt.Correlate("only", "missing", LvlCXL); err == nil {
		t.Fatal("correlation with missing app succeeded")
	}
}

func TestCorrelateSeries(t *testing.T) {
	r, err := CorrelateSeries([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || r < 0.999 {
		t.Fatalf("r=%v err=%v", r, err)
	}
}

func TestMaterializerDBDirect(t *testing.T) {
	mt := NewMaterializer()
	if err := mt.DB().Insert("custom", tsdb.Point{Time: 1, Fields: map[string]float64{"v": 2}}); err != nil {
		t.Fatal(err)
	}
	if got := mt.DB().Query("custom").Field("v").Sum(); got != 2 {
		t.Fatalf("direct insert sum = %v", got)
	}
}

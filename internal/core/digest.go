package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pathfinder/internal/sim"
)

// Digest is the compact on-disk/in-memory form of a Snapshot — the
// "memory-efficient data structure" PFMaterializer stores per scheduling
// epoch (§4.2).  Counter vectors are sparse in practice (most events of
// most banks are zero in any one epoch), so the encoding stores only
// non-zero deltas as (varint event index gap, varint value) pairs per
// bank, preceded by a small header.
//
// Format (all integers unsigned LEB128 varints unless noted):
//
//	magic   "PFSD" (4 bytes)
//	version byte (1)
//	seq, start, end
//	bankCount
//	per bank: nameLen, name bytes, pairCount, then pairCount x
//	          (eventIndexDelta, value) with eventIndexDelta relative to
//	          the previous non-zero index + 1
type Digest []byte

const digestMagic = "PFSD"
const digestVersion = 1

// EncodeDigest serializes a snapshot.
func EncodeDigest(s *Snapshot) Digest {
	return AppendDigest(nil, s)
}

// AppendDigest serializes a snapshot onto buf and returns the extended
// buffer — the allocation-free form for epoch loops that reuse one buffer.
func AppendDigest(buf []byte, s *Snapshot) Digest {
	buf = append(buf, digestMagic...)
	buf = append(buf, digestVersion)
	buf = binary.AppendUvarint(buf, uint64(s.Seq))
	buf = binary.AppendUvarint(buf, s.Start)
	buf = binary.AppendUvarint(buf, s.End)

	idx := s.idx
	ec := idx.eventCount
	buf = binary.AppendUvarint(buf, uint64(len(idx.sorted)))
	for _, slot := range idx.sorted {
		name := idx.names[slot]
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		vals := s.arena[slot*ec : (slot+1)*ec]
		nz := 0
		for _, v := range vals {
			if v != 0 {
				nz++
			}
		}
		buf = binary.AppendUvarint(buf, uint64(nz))
		prev := -1
		for i, v := range vals {
			if v == 0 {
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(i-prev))
			buf = binary.AppendUvarint(buf, v)
			prev = i
		}
	}
	return buf
}

// digestReader walks a digest buffer.
type digestReader struct {
	b   []byte
	off int
}

var errDigestTruncated = errors.New("core: truncated digest")

func (r *digestReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errDigestTruncated
	}
	r.off += n
	return v, nil
}

func (r *digestReader) bytes(n int) ([]byte, error) {
	if r.off+n > len(r.b) {
		return nil, errDigestTruncated
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

// DecodeDigest reconstructs a snapshot.  eventCount is the catalog size
// the digest was produced against (pmu.Default.Len()); counter vectors are
// materialized at that length, under a BankIndex rebuilt from the encoded
// bank names.
func DecodeDigest(d Digest, eventCount int) (*Snapshot, error) {
	r := &digestReader{b: d}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != digestMagic {
		return nil, fmt.Errorf("core: bad digest magic %q", magic)
	}
	ver, err := r.bytes(1)
	if err != nil {
		return nil, err
	}
	if ver[0] != digestVersion {
		return nil, fmt.Errorf("core: unsupported digest version %d", ver[0])
	}
	seq, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	start, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	end, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nBanks, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each encoded bank takes at least two bytes, so a count beyond the
	// buffer length is corrupt — reject before sizing the arena by it.
	if nBanks > uint64(len(d)) {
		return nil, errDigestTruncated
	}
	names := make([]string, 0, nBanks)
	arena := make([]uint64, int(nBanks)*eventCount)
	for b := uint64(0); b < nBanks; b++ {
		nameLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		nameBytes, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		pairs, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		vals := arena[int(b)*eventCount : (int(b)+1)*eventCount]
		idx := -1
		for p := uint64(0); p < pairs; p++ {
			gap, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			idx += int(gap)
			if idx >= eventCount {
				return nil, fmt.Errorf("core: digest event index %d exceeds catalog size %d", idx, eventCount)
			}
			vals[idx] = v
		}
		names = append(names, string(nameBytes))
	}
	return &Snapshot{
		Seq:   int(seq),
		Start: sim.Cycles(start),
		End:   sim.Cycles(end),
		idx:   NewBankIndex(names, eventCount),
		arena: arena,
	}, nil
}

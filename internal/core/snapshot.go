package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
)

// BankIndex is the per-machine columnar layout of snapshots: every PMU bank
// gets one fixed slot, and a snapshot is a single flat []uint64 arena of
// bankCount x eventCount counter deltas.  The index is built once (at
// capturer or digest-decode time); all reads resolve through precomputed
// arena offsets — no name formatting or map lookups on the read path.
type BankIndex struct {
	eventCount int
	names      []string       // slot -> bank name
	byName     map[string]int // bank name -> slot
	sorted     []int          // slots in lexicographic name order (digest order)

	// Typed groups: instance number -> arena offset (slot * eventCount).
	// A hole (offset -1) marks an instance the layout does not carry.
	core, cha, imc, m2p, cxl []int

	nCores, nCHA, nIMC, nCXL int // present (non-hole) banks per group
}

// NewBankIndex builds the columnar layout for an ordered bank-name list.
// Names follow the machine's module naming ("core3", "cha0", "imc1",
// "m2pcie0", "cxl0"); names outside the typed groups (e.g. "rimc0") are
// carried in the arena and reachable by name, just not via typed accessors.
func NewBankIndex(names []string, eventCount int) *BankIndex {
	if eventCount <= 0 {
		panic("core: bank index needs a positive event count")
	}
	idx := &BankIndex{
		eventCount: eventCount,
		names:      append([]string(nil), names...),
		byName:     make(map[string]int, len(names)),
	}
	place := func(group *[]int, inst, slot int) {
		for len(*group) <= inst {
			*group = append(*group, -1)
		}
		(*group)[inst] = slot * eventCount
	}
	for slot, name := range idx.names {
		if _, dup := idx.byName[name]; dup {
			panic(fmt.Sprintf("core: duplicate bank name %q in index", name))
		}
		idx.byName[name] = slot
		if prefix, inst, ok := splitBankName(name); ok {
			switch prefix {
			case "core":
				place(&idx.core, inst, slot)
				idx.nCores++
			case "cha":
				place(&idx.cha, inst, slot)
				idx.nCHA++
			case "imc":
				place(&idx.imc, inst, slot)
				idx.nIMC++
			case "m2pcie":
				place(&idx.m2p, inst, slot)
			case "cxl":
				place(&idx.cxl, inst, slot)
				idx.nCXL++
			}
		}
	}
	idx.sorted = make([]int, len(idx.names))
	for i := range idx.sorted {
		idx.sorted[i] = i
	}
	sort.Slice(idx.sorted, func(a, b int) bool {
		return idx.names[idx.sorted[a]] < idx.names[idx.sorted[b]]
	})
	return idx
}

// IndexFor builds the bank index of a machine's PMU layout.
func IndexFor(m *sim.Machine) *BankIndex {
	banks := m.Banks()
	names := make([]string, len(banks))
	ec := 0
	for i, b := range banks {
		names[i] = b.Name()
		if n := b.Catalog().Len(); n > ec {
			ec = n
		}
	}
	return NewBankIndex(names, ec)
}

// splitBankName parses "cha12" into ("cha", 12, true).
func splitBankName(name string) (prefix string, inst int, ok bool) {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == 0 || i == len(name) {
		return "", 0, false
	}
	n, err := strconv.Atoi(name[i:])
	if err != nil {
		return "", 0, false
	}
	return name[:i], n, true
}

// EventCount returns the catalog size the layout was built against.
func (idx *BankIndex) EventCount() int { return idx.eventCount }

// ArenaLen returns the flat arena length of one snapshot.
func (idx *BankIndex) ArenaLen() int { return len(idx.names) * idx.eventCount }

// NumBanks returns the number of banks in the layout.
func (idx *BankIndex) NumBanks() int { return len(idx.names) }

// offsetIn resolves one typed-group instance to its arena offset, panicking
// descriptively for instances the layout does not carry (the Machine.Bank
// convention: a misaddressed read is a rig bug, not a zero).
func (idx *BankIndex) offsetIn(group []int, kind string, i int) int {
	if i >= 0 && i < len(group) && group[i] >= 0 {
		return group[i]
	}
	panic(fmt.Sprintf("core: snapshot layout has no %q bank %d (have %s)",
		kind, i, strings.Join(idx.names, ", ")))
}

// CoreBank returns the arena offset of core i's delta vector.
func (idx *BankIndex) CoreBank(i int) int { return idx.offsetIn(idx.core, "core", i) }

// CHABank returns the arena offset of CHA slice i's delta vector.
func (idx *BankIndex) CHABank(i int) int { return idx.offsetIn(idx.cha, "cha", i) }

// IMCBank returns the arena offset of IMC channel i's delta vector.
func (idx *BankIndex) IMCBank(i int) int { return idx.offsetIn(idx.imc, "imc", i) }

// M2PBank returns the arena offset of CXL port i's M2PCIe delta vector.
func (idx *BankIndex) M2PBank(i int) int { return idx.offsetIn(idx.m2p, "m2pcie", i) }

// CXLBank returns the arena offset of CXL device i's delta vector.
func (idx *BankIndex) CXLBank(i int) int { return idx.offsetIn(idx.cxl, "cxl", i) }

// Snapshot is one scheduling-epoch observation: per-bank counter deltas
// between two Sync points, tagged with the epoch window.  All PathFinder
// analyses operate on snapshots — never on simulator internals.  The deltas
// live in a single flat arena laid out by the snapshot's BankIndex.
type Snapshot struct {
	Seq        int
	Start, End sim.Cycles
	// Truncated marks a snapshot whose epoch the profiler watchdog cut
	// short; Start/End describe the actual (shortened) window, so derived
	// rates remain valid — consumers may want to weight or flag it.
	Truncated bool

	idx   *BankIndex
	arena []uint64

	pool *sync.Pool // recycler; nil for snapshots not owned by a capturer
}

// Index returns the snapshot's bank layout.
func (s *Snapshot) Index() *BankIndex { return s.idx }

// Release returns the snapshot to its capturer's recycler.  After Release
// the snapshot must not be read again; snapshots that did not come from a
// capturer (decoded digests, hand-built tests) ignore it.
func (s *Snapshot) Release() {
	p := s.pool
	if p == nil {
		return
	}
	s.pool = nil // double-Release is a no-op, not a pool corruption
	p.Put(s)
}

// bankDelta returns the delta vector of a named bank.  Unknown names are a
// rig bug and panic descriptively (they used to read as silent zeros).
func (s *Snapshot) bankDelta(name string) []uint64 {
	slot, ok := s.idx.byName[name]
	if !ok {
		panic(fmt.Sprintf("core: snapshot has no bank %q (have %s)",
			name, strings.Join(s.idx.names, ", ")))
	}
	off := slot * s.idx.eventCount
	return s.arena[off : off+s.idx.eventCount]
}

// Capturer produces snapshots from a machine by differencing bank totals
// between epochs.  It owns the machine's BankIndex, a reused pair of total
// arenas, and a sync.Pool of recycled snapshots, so steady-state epoch
// loops capture without allocating.
type Capturer struct {
	m     *sim.Machine
	idx   *BankIndex
	banks []*pmu.Bank // slot order
	prev  []uint64    // bank totals at the previous capture
	cur   []uint64    // scratch for the current totals
	pool  *sync.Pool
	seq   int
	last  sim.Cycles

	// Pool effectiveness, pushed into the metrics registry by the profiler
	// at epoch boundaries: a miss is a Capture that had to allocate.
	poolHits, poolMisses uint64
}

// NewCapturer returns a capturer rebased at the machine's current time.
func NewCapturer(m *sim.Machine) *Capturer {
	c := &Capturer{
		m:     m,
		idx:   IndexFor(m),
		banks: m.Banks(),
		pool:  &sync.Pool{},
	}
	c.prev = make([]uint64, c.idx.ArenaLen())
	c.cur = make([]uint64, c.idx.ArenaLen())
	m.Sync()
	c.copyTotals(c.prev)
	c.last = m.Now()
	return c
}

// Index returns the machine's bank layout (shared by all captures).
func (c *Capturer) Index() *BankIndex { return c.idx }

// copyTotals snapshots every bank's running totals into the arena dst.
func (c *Capturer) copyTotals(dst []uint64) {
	ec := c.idx.eventCount
	for slot, b := range c.banks {
		b.CopyTo(dst[slot*ec : (slot+1)*ec])
	}
}

// Capture takes a snapshot of the epoch since the previous Capture (or
// since NewCapturer).  The returned snapshot is recycled through Release.
func (c *Capturer) Capture() *Snapshot {
	c.m.Sync()
	now := c.m.Now()
	s, _ := c.pool.Get().(*Snapshot)
	if s == nil {
		c.poolMisses++
		s = &Snapshot{arena: make([]uint64, c.idx.ArenaLen())}
	} else {
		c.poolHits++
		if len(s.arena) != c.idx.ArenaLen() {
			s.arena = make([]uint64, c.idx.ArenaLen())
		}
	}
	s.Seq = c.seq
	s.Start = c.last
	s.End = now
	s.Truncated = false
	s.idx = c.idx
	s.pool = c.pool
	c.seq++
	c.last = now

	c.copyTotals(c.cur)
	cur, prev, arena := c.cur, c.prev, s.arena
	for i := range arena {
		arena[i] = cur[i] - prev[i]
	}
	c.prev, c.cur = cur, prev
	return s
}

// PoolStats reports how many Captures recycled a snapshot versus had to
// allocate one.
func (c *Capturer) PoolStats() (hits, misses uint64) {
	return c.poolHits, c.poolMisses
}

// Cycles returns the epoch length in cycles.
func (s *Snapshot) Cycles() float64 { return float64(s.End - s.Start) }

// NumCores returns the number of core banks in the snapshot.
func (s *Snapshot) NumCores() int { return s.idx.nCores }

// NumCHA returns the number of CHA banks.
func (s *Snapshot) NumCHA() int { return s.idx.nCHA }

// NumCXL returns the number of CXL device banks.
func (s *Snapshot) NumCXL() int { return s.idx.nCXL }

// Core reads an event delta from core i's bank.
func (s *Snapshot) Core(i int, e pmu.Event) float64 {
	return float64(s.arena[s.idx.CoreBank(i)+int(e)])
}

// CoreSum reads an event delta summed over the given cores (all cores when
// the slice is nil).
func (s *Snapshot) CoreSum(cores []int, e pmu.Event) float64 {
	var t uint64
	if cores == nil {
		for _, off := range s.idx.core {
			if off >= 0 {
				t += s.arena[off+int(e)]
			}
		}
		return float64(t)
	}
	for _, i := range cores {
		t += s.arena[s.idx.CoreBank(i)+int(e)]
	}
	return float64(t)
}

// CHA reads an event delta from CHA slice i.
func (s *Snapshot) CHA(i int, e pmu.Event) float64 {
	return float64(s.arena[s.idx.CHABank(i)+int(e)])
}

// CHASum reads an event delta summed over all CHA slices (the per-socket
// scope of the paper's CHA counters).
func (s *Snapshot) CHASum(e pmu.Event) float64 {
	var t uint64
	for _, off := range s.idx.cha {
		if off >= 0 {
			t += s.arena[off+int(e)]
		}
	}
	return float64(t)
}

// IMCSum reads an event delta summed over all IMC channels.
func (s *Snapshot) IMCSum(e pmu.Event) float64 {
	var t uint64
	for _, off := range s.idx.imc {
		if off >= 0 {
			t += s.arena[off+int(e)]
		}
	}
	return float64(t)
}

// M2P reads an event delta from the M2PCIe bank of CXL port dev.
func (s *Snapshot) M2P(dev int, e pmu.Event) float64 {
	return float64(s.arena[s.idx.M2PBank(dev)+int(e)])
}

// CXL reads an event delta from the CXL device bank.
func (s *Snapshot) CXL(dev int, e pmu.Event) float64 {
	return float64(s.arena[s.idx.CXLBank(dev)+int(e)])
}

// CoreFamilySum sums a whole OCR-style family scenario over cores.
func (s *Snapshot) CoreFamilySum(cores []int, fam pmu.Family, scn int) float64 {
	return s.CoreSum(cores, fam.At(scn))
}

package core

import (
	"fmt"
	"strings"

	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
)

// Snapshot is one scheduling-epoch observation: per-bank counter deltas
// between two Sync points, tagged with the epoch window.  All PathFinder
// analyses operate on snapshots — never on simulator internals.
type Snapshot struct {
	Seq        int
	Start, End sim.Cycles
	// Truncated marks a snapshot whose epoch the profiler watchdog cut
	// short; Start/End describe the actual (shortened) window, so derived
	// rates remain valid — consumers may want to weight or flag it.
	Truncated bool
	// deltas holds per-bank counter deltas for the epoch, keyed by bank
	// name, each indexed by pmu.Event.
	deltas map[string][]uint64

	nCores, nCHA, nIMC, nCXL int
}

// Capturer produces snapshots from a machine by differencing bank totals
// between epochs.
type Capturer struct {
	m    *sim.Machine
	prev map[string][]uint64
	seq  int
	last sim.Cycles
}

// NewCapturer returns a capturer rebased at the machine's current time.
func NewCapturer(m *sim.Machine) *Capturer {
	c := &Capturer{m: m, prev: make(map[string][]uint64)}
	m.Sync()
	for _, b := range m.Banks() {
		c.prev[b.Name()] = b.Values()
	}
	c.last = m.Now()
	return c
}

// Capture takes a snapshot of the epoch since the previous Capture (or
// since NewCapturer).
func (c *Capturer) Capture() *Snapshot {
	c.m.Sync()
	now := c.m.Now()
	s := &Snapshot{
		Seq:    c.seq,
		Start:  c.last,
		End:    now,
		deltas: make(map[string][]uint64, len(c.prev)),
	}
	c.seq++
	c.last = now
	for _, b := range c.m.Banks() {
		name := b.Name()
		cur := b.Values()
		prev := c.prev[name]
		d := make([]uint64, len(cur))
		for i := range cur {
			d[i] = cur[i] - prev[i]
		}
		s.deltas[name] = d
		c.prev[name] = cur
		switch {
		case strings.HasPrefix(name, "core"):
			s.nCores++
		case strings.HasPrefix(name, "cha"):
			s.nCHA++
		case strings.HasPrefix(name, "imc"):
			s.nIMC++
		case strings.HasPrefix(name, "cxl"):
			s.nCXL++
		}
	}
	return s
}

// Cycles returns the epoch length in cycles.
func (s *Snapshot) Cycles() float64 { return float64(s.End - s.Start) }

// NumCores returns the number of core banks in the snapshot.
func (s *Snapshot) NumCores() int { return s.nCores }

// NumCHA returns the number of CHA banks.
func (s *Snapshot) NumCHA() int { return s.nCHA }

// NumCXL returns the number of CXL device banks.
func (s *Snapshot) NumCXL() int { return s.nCXL }

// bank returns the delta vector of a named bank, or nil.
func (s *Snapshot) bank(name string) []uint64 { return s.deltas[name] }

// read returns one event delta from a named bank (0 if absent).
func (s *Snapshot) read(name string, e pmu.Event) float64 {
	d := s.deltas[name]
	if d == nil {
		return 0
	}
	return float64(d[e])
}

// Core reads an event delta from core i's bank.
func (s *Snapshot) Core(i int, e pmu.Event) float64 {
	return s.read(fmt.Sprintf("core%d", i), e)
}

// CoreSum reads an event delta summed over the given cores (all cores when
// the slice is nil).
func (s *Snapshot) CoreSum(cores []int, e pmu.Event) float64 {
	if cores == nil {
		var t float64
		for i := 0; i < s.nCores; i++ {
			t += s.Core(i, e)
		}
		return t
	}
	var t float64
	for _, i := range cores {
		t += s.Core(i, e)
	}
	return t
}

// CHA reads an event delta from CHA slice i.
func (s *Snapshot) CHA(i int, e pmu.Event) float64 {
	return s.read(fmt.Sprintf("cha%d", i), e)
}

// CHASum reads an event delta summed over all CHA slices (the per-socket
// scope of the paper's CHA counters).
func (s *Snapshot) CHASum(e pmu.Event) float64 {
	var t float64
	for i := 0; i < s.nCHA; i++ {
		t += s.CHA(i, e)
	}
	return t
}

// IMCSum reads an event delta summed over all IMC channels.
func (s *Snapshot) IMCSum(e pmu.Event) float64 {
	var t float64
	for i := 0; i < s.nIMC; i++ {
		t += s.read(fmt.Sprintf("imc%d", i), e)
	}
	return t
}

// M2P reads an event delta from the M2PCIe bank of CXL port dev.
func (s *Snapshot) M2P(dev int, e pmu.Event) float64 {
	return s.read(fmt.Sprintf("m2pcie%d", dev), e)
}

// CXL reads an event delta from the CXL device bank.
func (s *Snapshot) CXL(dev int, e pmu.Event) float64 {
	return s.read(fmt.Sprintf("cxl%d", dev), e)
}

// CoreFamilySum sums a whole OCR-style family scenario over cores.
func (s *Snapshot) CoreFamilySum(cores []int, fam pmu.Family, scn int) float64 {
	return s.CoreSum(cores, fam.At(scn))
}

package core

import (
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// testRig builds a small machine with a local and a CXL node and two
// allocated regions.
func testRig(t *testing.T) (*sim.Machine, mem.Region, mem.Region) {
	t.Helper()
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
	})
	local, err := as.Alloc(16<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	cxl, err := as.Alloc(16<<20, mem.Fixed(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.SPR()
	cfg.Cores = 4
	cfg.LLCSlices = 8
	cfg.LLCSize = 4 << 20
	return sim.New(cfg, as), local, cxl
}

func region(r mem.Region) workload.Region {
	return workload.Region{Base: r.Base, Size: r.Size}
}

func runProfiler(t *testing.T, m *sim.Machine, apps []AppRun, epochs int) (*Profiler, []*EpochResult) {
	t.Helper()
	p, err := NewProfiler(Spec{
		Machine:     m,
		Apps:        apps,
		EpochCycles: 400_000,
		Epochs:      epochs,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

// --- Model -----------------------------------------------------------------

func TestGraphModel(t *testing.T) {
	g := NewGraph(4, 8, 2, 1)
	if len(g.Vertices) == 0 || len(g.Edges) == 0 {
		t.Fatal("empty graph")
	}
	// Every core reaches the CXL DIMM through the Clos stages.
	for c := 0; c < 4; c++ {
		dimms := g.ReachableDIMMs(c)
		if len(dimms) != 1 {
			t.Fatalf("core %d reaches %d DIMMs", c, len(dimms))
		}
		if g.Vertices[dimms[0]].Kind != VtxCXLDIMM {
			t.Fatal("reachable vertex is not a DIMM")
		}
	}
	if g.FindVertex(VtxCore, 99) != -1 {
		t.Fatal("found nonexistent vertex")
	}
	v := g.FindVertex(VtxCHA, 3)
	if v < 0 || g.Vertices[v].Label != "cha3" {
		t.Fatalf("cha3 lookup: %d", v)
	}
	if g.ReachableDIMMs(99) != nil {
		t.Fatal("unknown core reached DIMMs")
	}
	// A CHA fans out to both IMCs and the M2PCIe port.
	succ := g.Succ(g.FindVertex(VtxCHA, 0))
	if len(succ) != 3 {
		t.Fatalf("CHA out-degree = %d, want 3 (2 IMC + 1 M2P)", len(succ))
	}
}

func TestEnumStrings(t *testing.T) {
	if PathDRd.String() != "DRd" || PathHWPF.String() != "HW PF" {
		t.Fatal("path names")
	}
	if CompFlexBusMC.String() != "FlexBus+MC" || CompCXLDIMM.String() != "CXL DIMM" {
		t.Fatal("component names")
	}
	if LvlSNCLLC.String() != "snc LLC" || LvlCXL.String() != "CXL Memory" {
		t.Fatal("level names")
	}
	f := MFlow{App: "redis", Core: 3, Target: LvlCXL}
	if f.String() != "redis: core3<->CXL Memory" {
		t.Fatalf("flow string: %q", f.String())
	}
	if len(Paths()) != int(PathCount) || len(Components()) != int(CompCount) || len(Levels()) != int(LevelCount) {
		t.Fatal("enum list lengths")
	}
}

// --- Snapshot ---------------------------------------------------------------

func TestSnapshotDeltas(t *testing.T) {
	m, local, _ := testRig(t)
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(local), 2, 0, 1))

	m.Run(200_000)
	s1 := cap.Capture()
	m.Run(200_000)
	s2 := cap.Capture()

	if s1.Seq != 0 || s2.Seq != 1 {
		t.Fatalf("sequence numbers: %d, %d", s1.Seq, s2.Seq)
	}
	if s1.End != s2.Start {
		t.Fatal("epochs not contiguous")
	}
	l1 := s1.Core(0, pmu.MemInstAllLoads)
	l2 := s2.Core(0, pmu.MemInstAllLoads)
	if l1 == 0 || l2 == 0 {
		t.Fatalf("per-epoch loads: %v, %v", l1, l2)
	}
	m.Sync()
	total := float64(m.Core(0).Bank().Read(pmu.MemInstAllLoads))
	if l1+l2 != total {
		t.Fatalf("delta sum %v != total %v", l1+l2, total)
	}
	if s1.NumCores() != 4 || s1.NumCHA() != 8 || s1.NumCXL() != 1 {
		t.Fatalf("bank census: cores=%d cha=%d cxl=%d", s1.NumCores(), s1.NumCHA(), s1.NumCXL())
	}
}

func TestSnapshotScopedSums(t *testing.T) {
	m, local, _ := testRig(t)
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(local), 2, 0, 1))
	m.Attach(1, workload.NewStream(region(local), 2, 0, 2))
	m.Run(300_000)
	s := cap.Capture()
	both := s.CoreSum([]int{0, 1}, pmu.MemInstAllLoads)
	all := s.CoreSum(nil, pmu.MemInstAllLoads)
	only0 := s.CoreSum([]int{0}, pmu.MemInstAllLoads)
	if both != all {
		t.Fatalf("scoped sum %v != all-core sum %v", both, all)
	}
	if only0 == 0 || only0 >= both {
		t.Fatalf("core0 share: %v of %v", only0, both)
	}
}

// --- PFBuilder ---------------------------------------------------------------

func TestPathMapLocalVsCXL(t *testing.T) {
	m, local, cxl := testRig(t)
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(local), 1, 0.2, 1))
	m.Attach(1, workload.NewStream(region(cxl), 1, 0.2, 2))
	m.Run(3_000_000)
	s := cap.Capture()

	pmLocal := BuildPathMap(s, []int{0})
	pmCXL := BuildPathMap(s, []int{1})

	if pmLocal.Load[PathDRd][LvlCXL] != 0 {
		t.Fatalf("local flow shows CXL DRd traffic: %v", pmLocal.Load[PathDRd][LvlCXL])
	}
	if pmLocal.Load[PathDRd][LvlLocalDRAM] == 0 {
		t.Fatal("local flow shows no local-DRAM DRd traffic")
	}
	if pmCXL.Load[PathDRd][LvlCXL] == 0 {
		t.Fatal("CXL flow shows no CXL DRd traffic")
	}
	if pmCXL.Load[PathDRd][LvlLocalDRAM] != 0 {
		t.Fatalf("CXL flow shows local DRd traffic: %v", pmCXL.Load[PathDRd][LvlLocalDRAM])
	}
	// Streaming triggers the prefetchers: HWPF path must carry CXL traffic.
	if pmCXL.Load[PathHWPF][LvlCXL] == 0 {
		t.Fatal("CXL flow shows no HWPF CXL traffic")
	}
	// The L1D absorbs most hits for a sequential sweep.
	if pmCXL.Load[PathDRd][LvlL1D] == 0 {
		t.Fatal("no L1D hits recorded")
	}
	if got := pmCXL.CXLShare(PathDRd); got < 0.5 {
		t.Fatalf("CXL share of DRd uncore traffic = %v, want > 0.5", got)
	}
	if got := pmLocal.CXLShare(PathDRd); got != 0 {
		t.Fatalf("local flow CXL share = %v", got)
	}
}

func TestPathMapStores(t *testing.T) {
	m, _, cxl := testRig(t)
	cap := NewCapturer(m)
	// Write-only stream with word-granular reuse: the first store to each
	// line RFOs it, the rest are absorbed by the SB/L1 (M state).
	g := workload.NewStream(region(cxl), 1, 1.0, 3)
	g.Reuse = 8
	m.Attach(0, g)
	m.Run(5_000_000)
	s := cap.Capture()
	pm := BuildPathMap(s, []int{0})
	if pm.Load[PathDWr][LvlSB] == 0 {
		t.Fatal("no SB-absorbed stores")
	}
	if pm.Load[PathRFO][LvlCXL] == 0 {
		t.Fatal("write stream to CXL produced no RFO CXL traffic")
	}
	if pm.Load[PathDWr][LvlCXL] == 0 {
		t.Fatal("no CXL writebacks recorded")
	}
	if pm.PathTotal(PathDWr) == 0 || pm.LevelTotal(LvlCXL) == 0 {
		t.Fatal("aggregate helpers returned zero")
	}
}

func TestHotPathHelpers(t *testing.T) {
	m, _, cxl := testRig(t)
	cap := NewCapturer(m)
	g := workload.NewStream(region(cxl), 1, 0, 4)
	g.Reuse = 8 // word-granular: demand hits dominate the core levels
	m.Attach(0, g)
	m.Run(3_000_000)
	s := cap.Capture()
	pm := BuildPathMap(s, []int{0})
	if got := pm.HotPathCore(); got != PathDRd {
		t.Fatalf("core hot path = %v, want DRd (L1 hits dominate)", got)
	}
	hot, share := pm.HotPathUncore()
	if share <= 0 || share > 1 {
		t.Fatalf("uncore hot-path share = %v", share)
	}
	// Sequential streaming: prefetch should dominate uncore traffic, as in
	// the paper's 649.fotonik3d_s example (59.3% of uncore accesses).
	if hot != PathHWPF {
		t.Fatalf("uncore hot path = %v, want HW PF", hot)
	}
}

// --- PFEstimator --------------------------------------------------------------

func TestCXLWaitFraction(t *testing.T) {
	m, local, cxl := testRig(t)
	cap := NewCapturer(m)
	m.Attach(0, workload.NewPointerChase(region(local), 2, 1))
	m.Run(2_000_000)
	sLocal := cap.Capture()
	if f := CXLWaitFraction(sLocal); f != 0 {
		t.Fatalf("local-only CXL wait fraction = %v", f)
	}
	m.Detach(0)
	m.Attach(1, workload.NewPointerChase(region(cxl), 2, 2))
	m.Run(2_000_000)
	sCXL := cap.Capture()
	if f := CXLWaitFraction(sCXL); f < 0.5 {
		t.Fatalf("CXL-only wait fraction = %v, want > 0.5", f)
	}
}

func TestStallBreakdownShape(t *testing.T) {
	m, _, cxl := testRig(t)
	k := ConstsFor(m.Config())
	cap := NewCapturer(m)
	m.Attach(0, workload.NewPointerChase(region(cxl), 2, 5))
	m.Run(4_000_000)
	s := cap.Capture()

	bd := EstimateStalls(s, []int{0}, 0, k)
	if bd.Total(PathDRd) == 0 {
		t.Fatal("no DRd stall attributed")
	}
	// The paper's Figure 6: FlexBus+MC and the CXL DIMM dominate the
	// CXL-induced DRd stall (e.g. 42.7% + 40.3% for fft).
	down := bd.Share(PathDRd, CompFlexBusMC) + bd.Share(PathDRd, CompCXLDIMM)
	if down < 0.5 {
		t.Fatalf("downstream stall share = %v, want > 0.5", down)
	}
	// Shares sum to 1.
	var sum float64
	for _, c := range Components() {
		sum += bd.Share(PathDRd, c)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestStallBreakdownLocalFlowIsClean(t *testing.T) {
	m, local, _ := testRig(t)
	k := ConstsFor(m.Config())
	cap := NewCapturer(m)
	m.Attach(0, workload.NewPointerChase(region(local), 2, 6))
	m.Run(2_000_000)
	s := cap.Capture()
	bd := EstimateStalls(s, []int{0}, 0, k)
	for _, p := range Paths() {
		if tot := bd.Total(p); tot != 0 {
			t.Fatalf("local-only flow attributed %v CXL stall on %v", tot, p)
		}
	}
}

// --- PFAnalyzer ---------------------------------------------------------------

func TestAnalyzerCulpritUnderCXLSaturation(t *testing.T) {
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
	})
	cxl, err := as.Alloc(16<<20, mem.Fixed(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.SPR()
	cfg.Cores = 4
	cfg.LLCSlices = 8
	cfg.LLCSize = 4 << 20
	// Wide MLP so the cores are not the bottleneck: the contention must
	// manifest at the shared FlexBus/device, as in the paper's Case 4.
	cfg.LFBEntries = 64
	cfg.PFMaxInFlight = 32
	m := sim.New(cfg, as)
	k := ConstsFor(cfg)
	cap := NewCapturer(m)
	for c := 0; c < 4; c++ {
		m.Attach(c, workload.NewStream(region(cxl), 0, 0, uint64(c+1)))
	}
	m.Run(2_500_000)
	s := cap.Capture()
	qr := AnalyzeQueues(s, nil, 0, k)
	if qr.CulpritComp != CompFlexBusMC && qr.CulpritComp != CompCXLDIMM && qr.CulpritComp != CompLFB {
		t.Fatalf("culprit = %v on %v, want a CXL-pressure component", qr.CulpritPath, qr.CulpritComp)
	}
	// Under device saturation the FlexBus+MC queue must dwarf its
	// light-load value.
	heavy := qr.Q[PathDRd][CompFlexBusMC] + qr.Q[PathHWPF][CompFlexBusMC]
	if heavy <= 0 {
		t.Fatal("no FlexBus+MC queueing under saturation")
	}
	meas := MeasuredQueues(s, nil, 0)
	if meas[CompFlexBusMC]+meas[CompCXLDIMM] < 5 {
		t.Fatalf("device-side measured queues too small under saturation: %v", meas)
	}
}

func TestAnalyzerAgainstMeasured(t *testing.T) {
	m, _, cxl := testRig(t)
	k := ConstsFor(m.Config())
	cap := NewCapturer(m)
	m.Attach(0, workload.NewPointerChase(region(cxl), 1, 7))
	m.Run(4_000_000)
	s := cap.Capture()
	qr := AnalyzeQueues(s, []int{0}, 0, k)
	meas := MeasuredQueues(s, []int{0}, 0)

	// The LFB estimate must land within 3x of the directly-integrated
	// occupancy (Little's law over measured delays).
	est := qr.Q[PathDRd][CompLFB]
	got := meas[CompLFB]
	if got <= 0 || est <= 0 {
		t.Fatalf("LFB queues: est=%v meas=%v", est, got)
	}
	if est > got*3 || est < got/3 {
		t.Fatalf("LFB estimate %v vs measured %v (off by >3x)", est, got)
	}
}

// --- PFMaterializer -------------------------------------------------------------

func TestMaterializerLocalityWindows(t *testing.T) {
	m, local, cxl := testRig(t)
	p, err := NewProfiler(Spec{
		Machine: m,
		Apps: []AppRun{{
			Label: "phased",
			Core:  0,
			Gen: workload.NewPhased(
				workload.Phase{Gen: workload.NewStream(region(local), 1, 0, 1), Ops: 30000},
				workload.Phase{Gen: workload.NewPointerChase(region(cxl), 1, 2), Ops: 30000},
			),
		}},
		EpochCycles: 300_000,
		Epochs:      20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ws := p.Materializer().LocalityWindows("phased", LvlL1D, 0.5)
	if len(ws) < 2 {
		t.Fatalf("phased workload produced %d locality windows, want >= 2", len(ws))
	}
	trend := p.Materializer().HitTrend("phased", LvlL1D, 3)
	if len(trend) == 0 {
		t.Fatal("empty hit trend")
	}
}

func TestMaterializerCorrelate(t *testing.T) {
	m, _, cxl := testRig(t)
	half := cxl.Size / 2
	apps := []AppRun{
		{Label: "a", Core: 0, Gen: workload.NewStream(workload.Region{Base: cxl.Base, Size: half}, 0, 0, 1)},
		{Label: "b", Core: 1, Gen: workload.NewStream(workload.Region{Base: cxl.Base + half, Size: half}, 0, 0, 2)},
	}
	p, res := runProfiler(t, m, apps, 10)
	if len(res) != 10 {
		t.Fatalf("epochs = %d", len(res))
	}
	r, err := p.Materializer().Correlate("a", "b", LvlCXL)
	if err != nil {
		t.Fatal(err)
	}
	if r < -1 || r > 1 {
		t.Fatalf("correlation out of range: %v", r)
	}
}

// --- Profiler -------------------------------------------------------------------

func TestProfilerEndToEnd(t *testing.T) {
	m, local, cxl := testRig(t)
	apps := []AppRun{
		{Label: "loc", Core: 0, Gen: workload.NewStream(region(local), 1, 0.1, 1)},
		{Label: "cxl", Core: 1, Gen: workload.NewStream(region(cxl), 1, 0.1, 2)},
	}
	p, res := runProfiler(t, m, apps, 5)
	for i, r := range res {
		if r.Snapshot.Seq != i {
			t.Fatalf("epoch %d has seq %d", i, r.Snapshot.Seq)
		}
		for _, label := range []string{"loc", "cxl"} {
			if r.PathMaps[label] == nil || r.Stalls[label] == nil || r.Queues[label] == nil {
				t.Fatalf("epoch %d missing analyses for %q", i, label)
			}
		}
	}
	last := res[len(res)-1]
	if last.PathMaps["cxl"].Load[PathDRd][LvlCXL] == 0 {
		t.Fatal("cxl app shows no CXL traffic")
	}
	if last.PathMaps["loc"].Load[PathDRd][LvlCXL] != 0 {
		t.Fatal("local app shows CXL traffic")
	}
	flows := p.Flows("cxl", last.PathMaps["cxl"])
	foundCXL := false
	for _, f := range flows {
		if f.Target == LvlCXL {
			foundCXL = true
		}
	}
	if !foundCXL {
		t.Fatalf("no CXL mFlow derived: %v", flows)
	}
	if got := p.AppCores("cxl"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("AppCores = %v", got)
	}
}

func TestProfilerSpecValidation(t *testing.T) {
	m, local, _ := testRig(t)
	gen := workload.NewStream(region(local), 1, 0, 1)
	cases := []Spec{
		{Apps: []AppRun{{Label: "x", Core: 0, Gen: gen}}, EpochCycles: 1, Epochs: 1},  // nil machine
		{Machine: m, EpochCycles: 1, Epochs: 1},                                       // no apps
		{Machine: m, Apps: []AppRun{{Label: "x", Core: 0, Gen: gen}}, Epochs: 1},      // no epoch len
		{Machine: m, Apps: []AppRun{{Label: "x", Core: 0, Gen: gen}}, EpochCycles: 1}, // no epochs
		{Machine: m, Apps: []AppRun{{Label: "x", Core: 99, Gen: gen}}, EpochCycles: 1, Epochs: 1},
		{Machine: m, Apps: []AppRun{
			{Label: "x", Core: 0, Gen: gen}, {Label: "y", Core: 0, Gen: gen},
		}, EpochCycles: 1, Epochs: 1}, // core conflict
	}
	for i, spec := range cases {
		if _, err := NewProfiler(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestEstimateStallsAll(t *testing.T) {
	m, _, cxl := testRig(t)
	k := ConstsFor(m.Config())
	cap := NewCapturer(m)
	m.Attach(0, workload.NewPointerChase(region(cxl), 2, 5))
	m.Run(2_000_000)
	s := cap.Capture()
	single := EstimateStalls(s, []int{0}, 0, k)
	all := EstimateStallsAll(s, []int{0}, k)
	// One device: identical attribution.
	for _, p := range Paths() {
		for _, c := range Components() {
			if single.Stall[p][c] != all.Stall[p][c] {
				t.Fatalf("single-device mismatch at %v/%v: %v vs %v",
					p, c, single.Stall[p][c], all.Stall[p][c])
			}
		}
	}
}

func TestProfilerMigrate(t *testing.T) {
	m, local, _ := testRig(t)
	p, err := NewProfiler(Spec{
		Machine: m,
		Apps: []AppRun{
			{Label: "a", Core: 0, Gen: workload.NewStream(region(local), 1, 0, 1)},
			{Label: "b", Core: 1, Gen: workload.NewStream(region(local), 1, 0, 2)},
		},
		EpochCycles: 200_000,
		Epochs:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Step(); err != nil {
		t.Fatal(err)
	}
	// Invalid migrations.
	if err := p.Migrate("a", 1); err == nil {
		t.Fatal("migrated onto a busy core")
	}
	if err := p.Migrate("ghost", 2); err == nil {
		t.Fatal("migrated an unknown app")
	}
	if err := p.Migrate("a", 99); err == nil {
		t.Fatal("migrated out of range")
	}
	if err := p.Migrate("a", 0); err != nil {
		t.Fatalf("no-op migration: %v", err)
	}
	// Real migration: traffic moves to core 2.
	if err := p.Migrate("a", 2); err != nil {
		t.Fatal(err)
	}
	r, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.AppCores("a"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("AppCores after migration = %v", got)
	}
	if r.Snapshot.Core(2, pmu.MemInstAllLoads) == 0 {
		t.Fatal("no traffic on the migration target core")
	}
	// The graph is exposed and covers the machine.
	if p.Graph() == nil || p.Graph().FindVertex(VtxCore, 2) < 0 {
		t.Fatal("profiler graph missing")
	}
}

// TestApproximationTracksRealSubstrate cross-validates the statistical
// graph generator against the real CSR BFS: both run on CXL and the
// PFBuilder path maps must agree on the qualitative signature — mixed
// demand and prefetch CXL traffic with a dependent-lookup component.
func TestApproximationTracksRealSubstrate(t *testing.T) {
	run := func(appName string) *PathMap {
		m, _, cxl := testRig(t)
		cap := NewCapturer(m)
		app, ok := workload.Lookup(appName)
		if !ok {
			t.Fatalf("unknown app %q", appName)
		}
		m.Attach(0, workload.NewLimit(app.Generator(region(cxl), 11), 100_000))
		deadline := m.Now() + 300_000_000
		for m.Core(0).Running() && m.Now() < deadline {
			m.Run(2_000_000)
		}
		return BuildPathMap(cap.Capture(), []int{0})
	}
	approx := run("BFS")   // statistical graph shape
	real := run("BFS-CSR") // actual CSR traversal
	for _, pm := range []*PathMap{approx, real} {
		if pm.Load[PathDRd][LvlCXL] == 0 {
			t.Fatal("no demand CXL traffic")
		}
		if pm.Load[PathHWPF][LvlCXL] == 0 {
			t.Fatal("no prefetch CXL traffic (edge scans should prefetch)")
		}
	}
	// The demand-vs-prefetch balance should agree within an order of
	// magnitude between approximation and real algorithm.
	ratio := func(pm *PathMap) float64 {
		return pm.Load[PathHWPF][LvlCXL] / pm.Load[PathDRd][LvlCXL]
	}
	ra, rr := ratio(approx), ratio(real)
	if ra/rr > 10 || rr/ra > 10 {
		t.Fatalf("pf/demand ratio diverges: approx %.2f vs real %.2f", ra, rr)
	}
}

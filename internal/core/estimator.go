package core

import (
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
)

// Consts is the white-box architectural model PathFinder carries for the
// profiled machine: fixed per-hop latencies used where no counter measures
// a segment directly (the paper assigns W_tag "a constant cycle value based
// on the hardware capacity and associativity", §4.5).
type Consts struct {
	L1Lat, L1Tag   float64
	L2Lat, L2Tag   float64
	LLCLat, LLCTag float64
	Mesh           float64
	LinkTransit    float64 // FlexBus round trip + device controller (cycles)
}

// ConstsFor derives the white-box constants from a machine configuration —
// the knowledge an operator has about their own server part.
func ConstsFor(cfg sim.Config) Consts {
	return Consts{
		L1Lat: float64(cfg.L1Lat), L1Tag: float64(cfg.L1TagLat),
		L2Lat: float64(cfg.L2Lat), L2Tag: float64(cfg.L2TagLat),
		LLCLat: float64(cfg.LLCLat), LLCTag: float64(cfg.LLCTagLat),
		Mesh:        float64(cfg.MeshLat),
		LinkTransit: float64(2*cfg.FlexBusLat + cfg.CXLCtrlLat + 2*cfg.M2PLat),
	}
}

// StallBreakdown is PFEstimator's output: CXL-induced stall cycles
// attributed to each component along each path (Figure 6).
type StallBreakdown struct {
	Stall [PathCount][CompCount]float64

	// DeviceDark marks a window in which the profiled CXL device was
	// surprise-removed mid-run; see QueueReport.DeviceDark.
	DeviceDark bool
}

// Total returns a path's total attributed stall cycles.
func (b *StallBreakdown) Total(p PathType) float64 {
	var t float64
	for _, v := range b.Stall[p] {
		t += v
	}
	return t
}

// Share returns the fraction of a path's stall at one component.
func (b *StallBreakdown) Share(p PathType, c Component) float64 {
	t := b.Total(p)
	if t == 0 {
		return 0
	}
	return b.Stall[p][c] / t
}

// CXLWaitFraction estimates the CXL-induced share of all offcore waiting in
// the snapshot from the TOR residency integrals: the occupancy of
// CXL-destined entries over the occupancy of all core-originated entries.
// This is the bottom-up signal PFEstimator uses instead of naive
// miss-target proportions (§5.3).
func CXLWaitFraction(s *Snapshot) float64 {
	all := s.CHASum(pmu.TOROccupancyIA[pmu.IAAll])
	if all <= 0 {
		return 0
	}
	cxl := s.CHASum(pmu.TOROccupancyIA[pmu.IAMissCXL])
	f := cxl / all
	if f > 1 {
		f = 1
	}
	return f
}

// EstimateStallsAll runs the back-propagation across every CXL device in
// the snapshot and sums the attributions — the full outer loop of
// Algorithm 2 over all FlexBus root complexes (pooled configurations).
func EstimateStallsAll(s *Snapshot, cores []int, k Consts) *StallBreakdown {
	out := &StallBreakdown{}
	for dev := 0; dev < s.NumCXL(); dev++ {
		bd := EstimateStalls(s, cores, dev, k)
		for p := range out.Stall {
			for c := range out.Stall[p] {
				out.Stall[p][c] += bd.Stall[p][c]
			}
		}
	}
	// The in-core components were attributed once per device; they are
	// snapshot-global, so keep a single copy.
	if n := float64(s.NumCXL()); n > 1 {
		for _, c := range []Component{CompSB, CompL1D, CompLFB, CompL2, CompLLC} {
			for p := range out.Stall {
				out.Stall[p][c] /= n
			}
		}
	}
	return out
}

// EstimateStalls runs the PFEstimator back-propagation (Algorithm 2) for
// the flows originating at the given cores (nil = all) toward CXL device
// dev.  Starting from the device queue occupancies, stall is distributed
// backward — device -> FlexBus RC -> uncore/CHA -> core components —
// proportionally to each segment's attributable traffic, with each segment
// adding its own measured waiting.
//
// This is the compatibility entry point: it compiles a throwaway read plan
// per call.  Epoch loops should hold a Plan and use EstimateStallsInto.
func EstimateStalls(s *Snapshot, cores []int, dev int, k Consts) *StallBreakdown {
	bd := &StallBreakdown{}
	NewPlan(s.idx, cores, dev).EstimateStallsInto(s, k, bd)
	return bd
}

package core

import (
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
)

// Consts is the white-box architectural model PathFinder carries for the
// profiled machine: fixed per-hop latencies used where no counter measures
// a segment directly (the paper assigns W_tag "a constant cycle value based
// on the hardware capacity and associativity", §4.5).
type Consts struct {
	L1Lat, L1Tag   float64
	L2Lat, L2Tag   float64
	LLCLat, LLCTag float64
	Mesh           float64
	LinkTransit    float64 // FlexBus round trip + device controller (cycles)
}

// ConstsFor derives the white-box constants from a machine configuration —
// the knowledge an operator has about their own server part.
func ConstsFor(cfg sim.Config) Consts {
	return Consts{
		L1Lat: float64(cfg.L1Lat), L1Tag: float64(cfg.L1TagLat),
		L2Lat: float64(cfg.L2Lat), L2Tag: float64(cfg.L2TagLat),
		LLCLat: float64(cfg.LLCLat), LLCTag: float64(cfg.LLCTagLat),
		Mesh:        float64(cfg.MeshLat),
		LinkTransit: float64(2*cfg.FlexBusLat + cfg.CXLCtrlLat + 2*cfg.M2PLat),
	}
}

// StallBreakdown is PFEstimator's output: CXL-induced stall cycles
// attributed to each component along each path (Figure 6).
type StallBreakdown struct {
	Stall [PathCount][CompCount]float64
}

// Total returns a path's total attributed stall cycles.
func (b *StallBreakdown) Total(p PathType) float64 {
	var t float64
	for _, v := range b.Stall[p] {
		t += v
	}
	return t
}

// Share returns the fraction of a path's stall at one component.
func (b *StallBreakdown) Share(p PathType, c Component) float64 {
	t := b.Total(p)
	if t == 0 {
		return 0
	}
	return b.Stall[p][c] / t
}

// CXLWaitFraction estimates the CXL-induced share of all offcore waiting in
// the snapshot from the TOR residency integrals: the occupancy of
// CXL-destined entries over the occupancy of all core-originated entries.
// This is the bottom-up signal PFEstimator uses instead of naive
// miss-target proportions (§5.3).
func CXLWaitFraction(s *Snapshot) float64 {
	all := s.CHASum(pmu.TOROccupancyIA[pmu.IAAll])
	if all <= 0 {
		return 0
	}
	cxl := s.CHASum(pmu.TOROccupancyIA[pmu.IAMissCXL])
	f := cxl / all
	if f > 1 {
		f = 1
	}
	return f
}

// EstimateStallsAll runs the back-propagation across every CXL device in
// the snapshot and sums the attributions — the full outer loop of
// Algorithm 2 over all FlexBus root complexes (pooled configurations).
func EstimateStallsAll(s *Snapshot, cores []int, k Consts) *StallBreakdown {
	out := &StallBreakdown{}
	for dev := 0; dev < s.NumCXL(); dev++ {
		bd := EstimateStalls(s, cores, dev, k)
		for p := range out.Stall {
			for c := range out.Stall[p] {
				out.Stall[p][c] += bd.Stall[p][c]
			}
		}
	}
	// The in-core components were attributed once per device; they are
	// snapshot-global, so keep a single copy.
	if n := float64(s.NumCXL()); n > 1 {
		for _, c := range []Component{CompSB, CompL1D, CompLFB, CompL2, CompLLC} {
			for p := range out.Stall {
				out.Stall[p][c] /= n
			}
		}
	}
	return out
}

// EstimateStalls runs the PFEstimator back-propagation (Algorithm 2) for
// the flows originating at the given cores (nil = all) toward CXL device
// dev.  Starting from the device queue occupancies, stall is distributed
// backward — device -> FlexBus RC -> uncore/CHA -> core components —
// proportionally to each segment's attributable traffic, with each segment
// adding its own measured waiting.
func EstimateStalls(s *Snapshot, cores []int, dev int, k Consts) *StallBreakdown {
	bd := &StallBreakdown{}

	// Per-path CXL read traffic for the flow and for the whole socket.
	flowReads := map[PathType]float64{
		PathDRd: s.CoreFamilySum(cores, pmu.OCRDemandDataRd, pmu.ScnMissCXL),
		PathRFO: s.CoreFamilySum(cores, pmu.OCRRFO, pmu.ScnMissCXL),
		PathHWPF: s.CoreFamilySum(cores, pmu.OCRL1DHWPF, pmu.ScnMissCXL) +
			s.CoreFamilySum(cores, pmu.OCRL2HWPFDRd, pmu.ScnMissCXL) +
			s.CoreFamilySum(cores, pmu.OCRL2HWPFRFO, pmu.ScnMissCXL),
	}
	allReads := map[PathType]float64{
		PathDRd: s.CoreFamilySum(nil, pmu.OCRDemandDataRd, pmu.ScnMissCXL),
		PathRFO: s.CoreFamilySum(nil, pmu.OCRRFO, pmu.ScnMissCXL),
		PathHWPF: s.CoreFamilySum(nil, pmu.OCRL1DHWPF, pmu.ScnMissCXL) +
			s.CoreFamilySum(nil, pmu.OCRL2HWPFDRd, pmu.ScnMissCXL) +
			s.CoreFamilySum(nil, pmu.OCRL2HWPFRFO, pmu.ScnMissCXL),
	}

	// Level 0: CXL DIMM queue buildup (device command queues + ingress
	// packing buffers), split read/write.
	devReadOcc := s.CXL(dev, pmu.CXLDevRPQOccupancy) + s.CXL(dev, pmu.CXLRxPackBufOccReq)
	devWriteOcc := s.CXL(dev, pmu.CXLDevWPQOccupancy) + s.CXL(dev, pmu.CXLRxPackBufOccData)
	devReads := s.CXL(dev, pmu.CXLRxPackBufInsertsReq)
	devWrites := s.CXL(dev, pmu.CXLRxPackBufInsertsData)

	// Level 1: FlexBus RC waiting (M2PCIe ingress occupancy), split by
	// read/write traffic through the port.
	m2pOcc := s.M2P(dev, pmu.M2PRxOccupancy)
	rdResp := s.M2P(dev, pmu.M2PTxInsertsBL)
	wrAck := s.M2P(dev, pmu.M2PTxInsertsAK)
	m2pRead, m2pWrite := m2pOcc, 0.0
	if rdResp+wrAck > 0 {
		m2pRead = m2pOcc * rdResp / (rdResp + wrAck)
		m2pWrite = m2pOcc - m2pRead
	}

	// Per-path TOR residency of CXL-destined entries (socket counters,
	// scaled to the flow's share of that path's CXL traffic).
	torOcc := map[PathType]float64{
		PathDRd: s.CHASum(pmu.TOROccupancyIADRd[pmu.ScnMissCXL]),
		PathRFO: s.CHASum(pmu.TOROccupancyIARFO[pmu.RFOMissCXL]),
		PathHWPF: s.CHASum(pmu.TOROccupancyIADRdPref[pmu.ScnMissCXL]) +
			s.CHASum(pmu.TOROccupancyIARFOPref[pmu.RFOMissCXL]),
	}

	for _, p := range []PathType{PathDRd, PathRFO, PathHWPF} {
		fr := flowReads[p]
		if fr == 0 {
			continue
		}
		devShare := 0.0
		if devReads > 0 {
			devShare = fr / devReads
		}
		flowFrac := 1.0
		if allReads[p] > 0 {
			flowFrac = fr / allReads[p]
		}
		bd.Stall[p][CompCXLDIMM] = devReadOcc * devShare
		bd.Stall[p][CompFlexBusMC] = m2pRead*devShare + fr*k.LinkTransit
		tor := torOcc[p] * flowFrac
		chaOwn := tor - bd.Stall[p][CompCXLDIMM] - bd.Stall[p][CompFlexBusMC] - fr*k.Mesh
		if chaOwn < 0 {
			chaOwn = 0
		}
		bd.Stall[p][CompCHA] = chaOwn
		bd.Stall[p][CompLLC] = fr * k.LLCTag
	}

	// In-core segments for the DRd path: the hierarchical stall counters
	// give own-level stalls by differencing; the CXL-induced portion is
	// the TOR-residency fraction (bottom-up, not miss-count-proportional).
	frac := CXLWaitFraction(s)
	stL1 := s.CoreSum(cores, pmu.StallsL1DMiss)
	stL2 := s.CoreSum(cores, pmu.StallsL2Miss)
	stL3 := s.CoreSum(cores, pmu.StallsL3Miss)
	own := func(a, b float64) float64 {
		if a > b {
			return a - b
		}
		return 0
	}
	bd.Stall[PathDRd][CompL1D] = own(stL1, stL2) * frac
	bd.Stall[PathDRd][CompLFB] = s.CoreSum(cores, pmu.L1DPendMissFBFull) * frac
	bd.Stall[PathDRd][CompL2] = own(stL2, stL3) * frac

	// RFO/HWPF in-core components: only tag-lookup transit is attributable
	// (the core PMU cannot break non-demand stalls down by type, §5.9).
	bd.Stall[PathRFO][CompL1D] = flowReads[PathRFO] * k.L1Tag
	bd.Stall[PathRFO][CompL2] = flowReads[PathRFO] * k.L2Tag
	bd.Stall[PathHWPF][CompL2] = flowReads[PathHWPF] * k.L2Tag

	// DWr path: SB-full stalls scaled by the CXL share of write drain, and
	// the write-side device/FlexBus occupancies.
	sbStall := s.CoreSum(cores, pmu.ResourceStallsSB) + s.CoreSum(cores, pmu.ExeBoundOnStores)
	localWr := s.IMCSum(pmu.WPQInserts)
	wrFrac := 0.0
	if devWrites+localWr > 0 {
		wrFrac = devWrites / (devWrites + localWr)
	}
	flowWB := s.CoreSum(cores, pmu.OCRModifiedWriteAny)
	allWB := s.CoreSum(nil, pmu.OCRModifiedWriteAny)
	wbShare := 1.0
	if allWB > 0 {
		wbShare = flowWB / allWB
	}
	bd.Stall[PathDWr][CompSB] = sbStall * wrFrac
	bd.Stall[PathDWr][CompCHA] = s.CHASum(pmu.TOROccupancyIAWBMToI) * wbShare
	bd.Stall[PathDWr][CompFlexBusMC] = m2pWrite*wbShare + devWrites*wbShare*k.LinkTransit
	bd.Stall[PathDWr][CompCXLDIMM] = devWriteOcc * wbShare

	return bd
}

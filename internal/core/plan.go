package core

import (
	"fmt"

	"pathfinder/internal/pmu"
)

// Plan is a precompiled read plan for one flow: the arena offsets of the
// flow's core banks, the socket-wide core/CHA/IMC banks, and the M2PCIe +
// device banks of one CXL port, all resolved once against a BankIndex.
// The analyses (PFBuilder, PFEstimator, PFAnalyzer) run off a plan as flat
// slice walks — no name formatting, no map lookups, no per-epoch setup.
//
// The profiler builds one plan per application at construction time; the
// free functions (BuildPathMap, EstimateStalls, AnalyzeQueues) build a
// throwaway plan per call for API compatibility.
type Plan struct {
	idx   *BankIndex
	cores []int // the flow's core set as given (nil = all cores)

	flow []int // arena offsets of the flow's core banks
	all  []int // arena offsets of every core bank
	cha  []int // arena offsets of every CHA bank
	imc  []int // arena offsets of every IMC channel bank
	cxl  []int // arena offsets of every CXL device bank

	dev            int // the CXL device the flow is analyzed against
	m2pOff, cxlOff int // that device's M2PCIe and device-bank offsets
}

// NewPlan compiles a read plan for the flow originating at the given cores
// (nil = all cores) toward CXL device dev.  Unknown cores or devices panic
// descriptively, as all misaddressed bank access does.
func NewPlan(idx *BankIndex, cores []int, dev int) *Plan {
	p := &Plan{
		idx:   idx,
		cores: cores,
		all:   presentOffsets(idx.core),
		cha:   presentOffsets(idx.cha),
		imc:   presentOffsets(idx.imc),
		cxl:   presentOffsets(idx.cxl),
		dev:   dev,
		// The device offsets resolve leniently (-1 when absent) so plans
		// that never touch the port — BuildPathMap has no device notion —
		// still compile against partial layouts; an actual M2P/CXL read of
		// a missing bank panics descriptively at that point.
		m2pOff: groupOffset(idx.m2p, dev),
		cxlOff: groupOffset(idx.cxl, dev),
	}
	if cores == nil {
		p.flow = p.all
	} else {
		p.flow = make([]int, len(cores))
		for i, c := range cores {
			p.flow[i] = idx.CoreBank(c)
		}
	}
	return p
}

// presentOffsets collects a group's non-hole arena offsets in instance order.
func presentOffsets(group []int) []int {
	out := make([]int, 0, len(group))
	for _, off := range group {
		if off >= 0 {
			out = append(out, off)
		}
	}
	return out
}

// groupOffset resolves one instance without panicking: -1 when absent.
func groupOffset(group []int, i int) int {
	if i >= 0 && i < len(group) {
		return group[i]
	}
	return -1
}

// check panics when a snapshot was captured under a different layout than
// the plan was compiled for — offsets would silently address wrong banks.
func (p *Plan) check(s *Snapshot) {
	if s.idx != p.idx {
		panic(fmt.Sprintf("core: plan compiled for a different bank layout (%d banks) than snapshot (%d banks)",
			p.idx.NumBanks(), s.idx.NumBanks()))
	}
}

// sumAt adds one event across a precompiled offset list.
func sumAt(arena []uint64, offs []int, e pmu.Event) float64 {
	var t uint64
	for _, off := range offs {
		t += arena[off+int(e)]
	}
	return float64(t)
}

// CoreSum sums an event over the flow's cores.
func (p *Plan) CoreSum(s *Snapshot, e pmu.Event) float64 { return sumAt(s.arena, p.flow, e) }

// AllCoreSum sums an event over every core on the socket.
func (p *Plan) AllCoreSum(s *Snapshot, e pmu.Event) float64 { return sumAt(s.arena, p.all, e) }

// FamilySum sums one scenario of an OCR-style family over the flow's cores.
func (p *Plan) FamilySum(s *Snapshot, fam pmu.Family, scn int) float64 {
	return sumAt(s.arena, p.flow, fam.At(scn))
}

// AllFamilySum sums one scenario of a family over every core.
func (p *Plan) AllFamilySum(s *Snapshot, fam pmu.Family, scn int) float64 {
	return sumAt(s.arena, p.all, fam.At(scn))
}

// CHASum sums an event over all CHA slices.
func (p *Plan) CHASum(s *Snapshot, e pmu.Event) float64 { return sumAt(s.arena, p.cha, e) }

// IMCSum sums an event over all IMC channels.
func (p *Plan) IMCSum(s *Snapshot, e pmu.Event) float64 { return sumAt(s.arena, p.imc, e) }

// M2P reads an event from the plan device's M2PCIe bank.
func (p *Plan) M2P(s *Snapshot, e pmu.Event) float64 {
	if p.m2pOff < 0 {
		p.idx.M2PBank(p.dev) // panics descriptively
	}
	return float64(s.arena[p.m2pOff+int(e)])
}

// CXL reads an event from the plan device's bank.
func (p *Plan) CXL(s *Snapshot, e pmu.Event) float64 {
	if p.cxlOff < 0 {
		p.idx.CXLBank(p.dev) // panics descriptively
	}
	return float64(s.arena[p.cxlOff+int(e)])
}

// cxlSum sums an event over every CXL device bank.
func (p *Plan) cxlSum(s *Snapshot, e pmu.Event) float64 { return sumAt(s.arena, p.cxl, e) }

// --- PFBuilder (§4.3) -------------------------------------------------------

// BuildPathMapInto constructs the flow's path map into pm, overwriting it.
// The algorithm and its documented PMU blind spots are those of
// BuildPathMap; see builder.go.
func (p *Plan) BuildPathMapInto(s *Snapshot, pm *PathMap) {
	p.check(s)
	pm.Cores = p.cores
	pm.Load = [PathCount][LevelCount]float64{}
	cs := func(e pmu.Event) float64 { return p.CoreSum(s, e) }
	fam := func(f pmu.Family, scn int) float64 { return p.FamilySum(s, f, scn) }

	// --- DRd (software prefetches merge into DRd after the L1D, §3.2) ---
	drd := &pm.Load[PathDRd]
	drd[LvlL1D] = cs(pmu.MemLoadL1Hit)
	drd[LvlLFB] = cs(pmu.MemLoadFBHit)
	drd[LvlL2] = cs(pmu.L2DemandDataRdHit) + cs(pmu.L2SWPFHit)
	drd[LvlLocalLLC] = cs(pmu.MemLoadL3HitRetired[0]) + cs(pmu.MemLoadL3HitRetired[3])
	drd[LvlSNCLLC] = cs(pmu.MemLoadL3HitRetired[2])
	drd[LvlRemoteLLC] = cs(pmu.MemLoadL3MissRetired[2])
	drd[LvlLocalDRAM] = fam(pmu.OCRDemandDataRd, pmu.ScnMissLocalDDR)
	drd[LvlRemoteDRAM] = fam(pmu.OCRDemandDataRd, pmu.ScnMissRemoteDDR)
	drd[LvlCXL] = fam(pmu.OCRDemandDataRd, pmu.ScnMissCXL)

	// --- RFO ---
	rfo := &pm.Load[PathRFO]
	rfo[LvlL2] = cs(pmu.L2RFOHit) // includes prefetch RFOs: PMU limitation
	rfo[LvlLocalLLC] = fam(pmu.OCRRFO, pmu.ScnHit)
	rfo[LvlRemoteLLC] = 0 // not observable per-core for RFOs
	rfo[LvlLocalDRAM] = fam(pmu.OCRRFO, pmu.ScnMissLocalDDR)
	rfo[LvlRemoteDRAM] = fam(pmu.OCRRFO, pmu.ScnMissRemoteDDR)
	rfo[LvlCXL] = fam(pmu.OCRRFO, pmu.ScnMissCXL)

	// --- HW PF: the three prefetch OCR matrices combined ---
	hw := &pm.Load[PathHWPF]
	pfScn := func(scn int) float64 {
		return fam(pmu.OCRL1DHWPF, scn) + fam(pmu.OCRL2HWPFDRd, scn) + fam(pmu.OCRL2HWPFRFO, scn)
	}
	hw[LvlL2] = cs(pmu.L2HWPFHit)
	hitLLC := pfScn(pmu.ScnHit)
	// Split LLC hits between the local and distant cluster using the DRd
	// ratio (no per-core prefetch xsnp counters exist).
	if dl, ds := drd[LvlLocalLLC], drd[LvlSNCLLC]; dl+ds > 0 {
		hw[LvlLocalLLC] = hitLLC * dl / (dl + ds)
		hw[LvlSNCLLC] = hitLLC * ds / (dl + ds)
	} else {
		hw[LvlLocalLLC] = hitLLC
	}
	hw[LvlLocalDRAM] = pfScn(pmu.ScnMissLocalDDR)
	hw[LvlRemoteDRAM] = pfScn(pmu.ScnMissRemoteDDR)
	hw[LvlCXL] = pfScn(pmu.ScnMissCXL)

	// --- DWr ---
	dwr := &pm.Load[PathDWr]
	stores := cs(pmu.MemInstAllStores)
	l2StoreHits := cs(pmu.MemStoreL2Hit)
	offcoreRFOs := cs(pmu.L2AllRFO)
	sb := stores - offcoreRFOs
	if sb < 0 {
		sb = 0
	}
	dwr[LvlSB] = sb
	dwr[LvlL2] = l2StoreHits
	dwr[LvlLocalLLC] = cs(pmu.OCRModifiedWriteAny) // L2 dirty victims landing at the LLC

	// Writeback destinations: device-level ground truth (Table 5's
	// M2PCIe/IMC rows), scaled to the flow's share of socket writebacks.
	flowWB := cs(pmu.OCRModifiedWriteAny)
	allWB := p.AllCoreSum(s, pmu.OCRModifiedWriteAny)
	share := 1.0
	if allWB > 0 {
		share = flowWB / allWB
	}
	dwr[LvlLocalDRAM] = p.IMCSum(s, pmu.WPQInserts) * share
	cxlWr := p.cxlSum(s, pmu.CXLRxPackBufInsertsData)
	dwr[LvlCXL] = cxlWr * share
}

// --- PFAnalyzer (§4.5) ------------------------------------------------------

// pathHitMiss extracts a path's hit/miss counts at one cache level from the
// snapshot, honoring the PMU blind spots (RFO/HWPF are invisible at L1D).
func (p *Plan) pathHitMiss(s *Snapshot, pt PathType, c Component) (hit, miss float64) {
	switch c {
	case CompL1D:
		if pt == PathDRd {
			return p.CoreSum(s, pmu.MemLoadL1Hit), p.CoreSum(s, pmu.MemLoadL1Miss)
		}
	case CompL2:
		switch pt {
		case PathDRd:
			return p.CoreSum(s, pmu.L2DemandDataRdHit), p.CoreSum(s, pmu.L2DemandDataRdMiss)
		case PathRFO:
			return p.CoreSum(s, pmu.L2RFOHit), p.CoreSum(s, pmu.L2RFOMiss)
		case PathHWPF:
			return p.CoreSum(s, pmu.L2HWPFHit), p.CoreSum(s, pmu.L2HWPFMiss)
		}
	case CompLLC:
		var fams []pmu.Family
		switch pt {
		case PathDRd:
			fams = ocrFamsDRd
		case PathRFO:
			fams = ocrFamsRFO
		case PathHWPF:
			fams = ocrFamsHWPF
		}
		for _, f := range fams {
			hit += p.FamilySum(s, f, pmu.ScnHit)
			miss += p.FamilySum(s, f, pmu.ScnMiss)
		}
		return hit, miss
	}
	return 0, 0
}

// The OCR family groupings per path, shared by the LLC hit/miss and the
// CXL-read extraction.
var (
	ocrFamsDRd  = []pmu.Family{pmu.OCRDemandDataRd}
	ocrFamsRFO  = []pmu.Family{pmu.OCRRFO}
	ocrFamsHWPF = []pmu.Family{pmu.OCRL1DHWPF, pmu.OCRL2HWPFDRd, pmu.OCRL2HWPFRFO}
)

// llcMissDelay measures the average TOR residency of missing entries for a
// path — PFAnalyzer's W_miss at the LLC ("missing requests remain in the
// CHA TOR queue until completed", §4.5).
func (p *Plan) llcMissDelay(s *Snapshot, pt PathType) float64 {
	var occ, ins float64
	switch pt {
	case PathDRd:
		occ = p.CHASum(s, pmu.TOROccupancyIADRd[pmu.ScnMiss])
		ins = p.CHASum(s, pmu.TORInsertsIADRd[pmu.ScnMiss])
	case PathRFO:
		occ = p.CHASum(s, pmu.TOROccupancyIARFO[pmu.RFOMiss])
		ins = p.CHASum(s, pmu.TORInsertsIARFO[pmu.RFOMiss])
	case PathHWPF:
		occ = p.CHASum(s, pmu.TOROccupancyIADRdPref[pmu.ScnMiss]) +
			p.CHASum(s, pmu.TOROccupancyIARFOPref[pmu.RFOMiss])
		ins = p.CHASum(s, pmu.TORInsertsIADRdPref[pmu.ScnMiss]) +
			p.CHASum(s, pmu.TORInsertsIARFOPref[pmu.RFOMiss])
	}
	if ins == 0 {
		return 0
	}
	return occ / ins
}

// cxlPathReads returns a path's CXL read traffic for the flow.
func (p *Plan) cxlPathReads(s *Snapshot, pt PathType) float64 {
	switch pt {
	case PathDRd:
		return p.FamilySum(s, pmu.OCRDemandDataRd, pmu.ScnMissCXL)
	case PathRFO:
		return p.FamilySum(s, pmu.OCRRFO, pmu.ScnMissCXL)
	case PathHWPF:
		return p.FamilySum(s, pmu.OCRL1DHWPF, pmu.ScnMissCXL) +
			p.FamilySum(s, pmu.OCRL2HWPFDRd, pmu.ScnMissCXL) +
			p.FamilySum(s, pmu.OCRL2HWPFRFO, pmu.ScnMissCXL)
	}
	return 0
}

// readPaths are the read-side paths the analyzer and estimator iterate.
var readPaths = [...]PathType{PathDRd, PathRFO, PathHWPF}

// AnalyzeQueuesInto runs PFAnalyzer (Algorithm 1) into r, overwriting it:
// each component is modeled as an FCFS queue, hit/miss rates combine with
// hit/tag/miss delays through Little's law (L = λ_hit·W_hit + λ_miss·W_miss
// at L1D/L2/LLC; L = λ_hit·W_hit at LFB and the memory devices), and the
// maximum-occupancy (path, component) pair is flagged as the culprit.
func (p *Plan) AnalyzeQueuesInto(s *Snapshot, k Consts, r *QueueReport) {
	p.check(s)
	*r = QueueReport{}
	r.DeviceDark = p.deviceDark(s)
	clocks := s.Cycles()
	if clocks == 0 {
		return
	}

	devReads := p.CXL(s, pmu.CXLRxPackBufInsertsReq)
	devReadOcc := p.CXL(s, pmu.CXLDevRPQOccupancy) + p.CXL(s, pmu.CXLRxPackBufOccReq)
	m2pIns := p.M2P(s, pmu.M2PRxInserts)
	m2pOcc := p.M2P(s, pmu.M2PRxOccupancy)

	for _, pt := range readPaths {
		// L1D, L2: hit/miss with constant tag-lookup miss penalty.
		for _, c := range [...]Component{CompL1D, CompL2} {
			hit, miss := p.pathHitMiss(s, pt, c)
			wHit, wTag := k.L1Lat, k.L1Tag
			if c == CompL2 {
				wHit, wTag = k.L2Lat, k.L2Tag
			}
			r.Q[pt][c] = (hit*wHit + miss*wTag) / clocks
		}
		// LLC: measured miss residency as W_miss.
		hit, miss := p.pathHitMiss(s, pt, CompLLC)
		r.Q[pt][CompLLC] = (hit*k.LLCLat + miss*p.llcMissDelay(s, pt)) / clocks

		// LFB (demand-load path only): L = λ_hit · W_hit with the measured
		// average offcore read latency as the fill delay.
		if pt == PathDRd {
			fills := p.CoreSum(s, pmu.MemLoadL1Miss)
			offIns := p.CoreSum(s, pmu.OffcoreDataRd)
			var wFill float64
			if offIns > 0 {
				wFill = p.CoreSum(s, pmu.ORODataRd) / offIns
			}
			r.Q[pt][CompLFB] = fills * wFill / clocks
		}

		// FlexBus+MC and CXL DIMM: arrival rate x measured per-request
		// residency, apportioned to the path by its CXL traffic share.
		fr := p.cxlPathReads(s, pt)
		if devReads > 0 && fr > 0 {
			var wFlex float64
			if m2pIns > 0 {
				wFlex = m2pOcc/m2pIns + k.LinkTransit
			}
			r.Q[pt][CompFlexBusMC] = (fr / clocks) * wFlex
			r.Q[pt][CompCXLDIMM] = devReadOcc * (fr / devReads) / clocks
		}
	}

	// Culprit: the maximum estimated queue length.
	best := -1.0
	for _, pt := range Paths() {
		for _, c := range Components() {
			if r.Q[pt][c] > best {
				best = r.Q[pt][c]
				r.CulpritPath, r.CulpritComp = pt, c
			}
		}
	}
}

// MeasuredQueuesInto writes the directly-integrated average queue length of
// each instrumented component into q (zeroing the rest) — the ground truth
// PFAnalyzer's estimates are validated against.  It reports false when the
// snapshot window is empty.
func (p *Plan) MeasuredQueuesInto(s *Snapshot, q *[CompCount]float64) bool {
	p.check(s)
	*q = [CompCount]float64{}
	clocks := s.Cycles()
	if clocks == 0 {
		return false
	}
	q[CompLFB] = p.CoreSum(s, pmu.L1DPendMissPending) / clocks
	q[CompCHA] = p.CHASum(s, pmu.TOROccupancyIA[pmu.IAAll]) / clocks
	q[CompFlexBusMC] = p.M2P(s, pmu.M2PRxOccupancy) / clocks
	q[CompCXLDIMM] = (p.CXL(s, pmu.CXLDevRPQOccupancy) +
		p.CXL(s, pmu.CXLRxPackBufOccReq) +
		p.CXL(s, pmu.CXLDevWPQOccupancy) +
		p.CXL(s, pmu.CXLRxPackBufOccData)) / clocks
	return true
}

// deviceDark reports whether the profiled device vanished during the
// snapshot window: the root port discovered a surprise removal or
// fast-failed isolated accesses, so the device bank stopped counting.
func (p *Plan) deviceDark(s *Snapshot) bool {
	return p.M2P(s, pmu.M2PDevRemoved) > 0 || p.M2P(s, pmu.M2PFastFails) > 0
}

// --- PFEstimator (§4.4) -----------------------------------------------------

// CXLWaitShare estimates the CXL-induced share of all offcore waiting from
// the TOR residency integrals (see CXLWaitFraction).
func (p *Plan) CXLWaitShare(s *Snapshot) float64 {
	all := p.CHASum(s, pmu.TOROccupancyIA[pmu.IAAll])
	if all <= 0 {
		return 0
	}
	cxl := p.CHASum(s, pmu.TOROccupancyIA[pmu.IAMissCXL])
	f := cxl / all
	if f > 1 {
		f = 1
	}
	return f
}

// EstimateStallsInto runs the PFEstimator back-propagation (Algorithm 2)
// into bd, overwriting it: starting from the device queue occupancies,
// stall is distributed backward — device -> FlexBus RC -> uncore/CHA ->
// core components — proportionally to each segment's attributable traffic,
// with each segment adding its own measured waiting.
func (p *Plan) EstimateStallsInto(s *Snapshot, k Consts, bd *StallBreakdown) {
	p.check(s)
	*bd = StallBreakdown{}
	bd.DeviceDark = p.deviceDark(s)

	// Per-path CXL read traffic for the flow and for the whole socket.
	var flowReads, allReads [PathCount]float64
	flowReads[PathDRd] = p.FamilySum(s, pmu.OCRDemandDataRd, pmu.ScnMissCXL)
	flowReads[PathRFO] = p.FamilySum(s, pmu.OCRRFO, pmu.ScnMissCXL)
	flowReads[PathHWPF] = p.FamilySum(s, pmu.OCRL1DHWPF, pmu.ScnMissCXL) +
		p.FamilySum(s, pmu.OCRL2HWPFDRd, pmu.ScnMissCXL) +
		p.FamilySum(s, pmu.OCRL2HWPFRFO, pmu.ScnMissCXL)
	allReads[PathDRd] = p.AllFamilySum(s, pmu.OCRDemandDataRd, pmu.ScnMissCXL)
	allReads[PathRFO] = p.AllFamilySum(s, pmu.OCRRFO, pmu.ScnMissCXL)
	allReads[PathHWPF] = p.AllFamilySum(s, pmu.OCRL1DHWPF, pmu.ScnMissCXL) +
		p.AllFamilySum(s, pmu.OCRL2HWPFDRd, pmu.ScnMissCXL) +
		p.AllFamilySum(s, pmu.OCRL2HWPFRFO, pmu.ScnMissCXL)

	// Level 0: CXL DIMM queue buildup (device command queues + ingress
	// packing buffers), split read/write.
	devReadOcc := p.CXL(s, pmu.CXLDevRPQOccupancy) + p.CXL(s, pmu.CXLRxPackBufOccReq)
	devWriteOcc := p.CXL(s, pmu.CXLDevWPQOccupancy) + p.CXL(s, pmu.CXLRxPackBufOccData)
	devReads := p.CXL(s, pmu.CXLRxPackBufInsertsReq)
	devWrites := p.CXL(s, pmu.CXLRxPackBufInsertsData)

	// Level 1: FlexBus RC waiting (M2PCIe ingress occupancy), split by
	// read/write traffic through the port.
	m2pOcc := p.M2P(s, pmu.M2PRxOccupancy)
	rdResp := p.M2P(s, pmu.M2PTxInsertsBL)
	wrAck := p.M2P(s, pmu.M2PTxInsertsAK)
	m2pRead, m2pWrite := m2pOcc, 0.0
	if rdResp+wrAck > 0 {
		m2pRead = m2pOcc * rdResp / (rdResp + wrAck)
		m2pWrite = m2pOcc - m2pRead
	}

	// Per-path TOR residency of CXL-destined entries (socket counters,
	// scaled to the flow's share of that path's CXL traffic).
	var torOcc [PathCount]float64
	torOcc[PathDRd] = p.CHASum(s, pmu.TOROccupancyIADRd[pmu.ScnMissCXL])
	torOcc[PathRFO] = p.CHASum(s, pmu.TOROccupancyIARFO[pmu.RFOMissCXL])
	torOcc[PathHWPF] = p.CHASum(s, pmu.TOROccupancyIADRdPref[pmu.ScnMissCXL]) +
		p.CHASum(s, pmu.TOROccupancyIARFOPref[pmu.RFOMissCXL])

	for _, pt := range readPaths {
		fr := flowReads[pt]
		if fr == 0 {
			continue
		}
		devShare := 0.0
		if devReads > 0 {
			devShare = fr / devReads
		}
		flowFrac := 1.0
		if allReads[pt] > 0 {
			flowFrac = fr / allReads[pt]
		}
		bd.Stall[pt][CompCXLDIMM] = devReadOcc * devShare
		bd.Stall[pt][CompFlexBusMC] = m2pRead*devShare + fr*k.LinkTransit
		tor := torOcc[pt] * flowFrac
		chaOwn := tor - bd.Stall[pt][CompCXLDIMM] - bd.Stall[pt][CompFlexBusMC] - fr*k.Mesh
		if chaOwn < 0 {
			chaOwn = 0
		}
		bd.Stall[pt][CompCHA] = chaOwn
		bd.Stall[pt][CompLLC] = fr * k.LLCTag
	}

	// In-core segments for the DRd path: the hierarchical stall counters
	// give own-level stalls by differencing; the CXL-induced portion is
	// the TOR-residency fraction (bottom-up, not miss-count-proportional).
	frac := p.CXLWaitShare(s)
	stL1 := p.CoreSum(s, pmu.StallsL1DMiss)
	stL2 := p.CoreSum(s, pmu.StallsL2Miss)
	stL3 := p.CoreSum(s, pmu.StallsL3Miss)
	own := func(a, b float64) float64 {
		if a > b {
			return a - b
		}
		return 0
	}
	bd.Stall[PathDRd][CompL1D] = own(stL1, stL2) * frac
	bd.Stall[PathDRd][CompLFB] = p.CoreSum(s, pmu.L1DPendMissFBFull) * frac
	bd.Stall[PathDRd][CompL2] = own(stL2, stL3) * frac

	// RFO/HWPF in-core components: only tag-lookup transit is attributable
	// (the core PMU cannot break non-demand stalls down by type, §5.9).
	bd.Stall[PathRFO][CompL1D] = flowReads[PathRFO] * k.L1Tag
	bd.Stall[PathRFO][CompL2] = flowReads[PathRFO] * k.L2Tag
	bd.Stall[PathHWPF][CompL2] = flowReads[PathHWPF] * k.L2Tag

	// DWr path: SB-full stalls scaled by the CXL share of write drain, and
	// the write-side device/FlexBus occupancies.
	sbStall := p.CoreSum(s, pmu.ResourceStallsSB) + p.CoreSum(s, pmu.ExeBoundOnStores)
	localWr := p.IMCSum(s, pmu.WPQInserts)
	wrFrac := 0.0
	if devWrites+localWr > 0 {
		wrFrac = devWrites / (devWrites + localWr)
	}
	flowWB := p.CoreSum(s, pmu.OCRModifiedWriteAny)
	allWB := p.AllCoreSum(s, pmu.OCRModifiedWriteAny)
	wbShare := 1.0
	if allWB > 0 {
		wbShare = flowWB / allWB
	}
	bd.Stall[PathDWr][CompSB] = sbStall * wrFrac
	bd.Stall[PathDWr][CompCHA] = p.CHASum(s, pmu.TOROccupancyIAWBMToI) * wbShare
	bd.Stall[PathDWr][CompFlexBusMC] = m2pWrite*wbShare + devWrites*wbShare*k.LinkTransit
	bd.Stall[PathDWr][CompCXLDIMM] = devWriteOcc * wbShare
}

package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"testing"

	"pathfinder/internal/cxl"
	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

// Golden equivalence: the columnar arena conversion must be behaviour
// preserving.  This file carries a verbatim copy of the seed (pre-arena)
// string-keyed snapshot read path and analysis bodies; the tests run
// fixed-seed workloads and require the arena analyzer, estimator, builder,
// and digest outputs to be bit-identical to the legacy computation.

// legacySnap is the seed Snapshot layout: per-bank delta vectors keyed by
// name, with reads resolved by Sprintf + map lookup and sums accumulated
// in float64 — exactly as the pre-arena code did.
type legacySnap struct {
	start, end               uint64
	deltas                   map[string][]uint64
	nCores, nCHA, nIMC, nCXL int
}

// legacyView rebuilds the seed layout from an arena snapshot.  The arena
// capturer differences bank totals with the same uint64 subtraction the
// seed capturer used, so the per-bank vectors are the seed vectors.
func legacyView(s *Snapshot) *legacySnap {
	ls := &legacySnap{
		start:  s.Start,
		end:    s.End,
		deltas: make(map[string][]uint64, s.idx.NumBanks()),
	}
	for _, name := range s.idx.names {
		v := make([]uint64, s.idx.eventCount)
		copy(v, s.bankDelta(name))
		ls.deltas[name] = v
		switch {
		case strings.HasPrefix(name, "core"):
			ls.nCores++
		case strings.HasPrefix(name, "cha"):
			ls.nCHA++
		case strings.HasPrefix(name, "imc"):
			ls.nIMC++
		case strings.HasPrefix(name, "cxl"):
			ls.nCXL++
		}
	}
	return ls
}

func (s *legacySnap) cycles() float64 { return float64(s.end - s.start) }

func (s *legacySnap) read(name string, e pmu.Event) float64 {
	d := s.deltas[name]
	if d == nil {
		return 0
	}
	return float64(d[e])
}

func (s *legacySnap) core(i int, e pmu.Event) float64 {
	return s.read(fmt.Sprintf("core%d", i), e)
}

func (s *legacySnap) coreSum(cores []int, e pmu.Event) float64 {
	if cores == nil {
		var t float64
		for i := 0; i < s.nCores; i++ {
			t += s.core(i, e)
		}
		return t
	}
	var t float64
	for _, i := range cores {
		t += s.core(i, e)
	}
	return t
}

func (s *legacySnap) chaSum(e pmu.Event) float64 {
	var t float64
	for i := 0; i < s.nCHA; i++ {
		t += s.read(fmt.Sprintf("cha%d", i), e)
	}
	return t
}

func (s *legacySnap) imcSum(e pmu.Event) float64 {
	var t float64
	for i := 0; i < s.nIMC; i++ {
		t += s.read(fmt.Sprintf("imc%d", i), e)
	}
	return t
}

func (s *legacySnap) m2p(dev int, e pmu.Event) float64 {
	return s.read(fmt.Sprintf("m2pcie%d", dev), e)
}

func (s *legacySnap) cxlRead(dev int, e pmu.Event) float64 {
	return s.read(fmt.Sprintf("cxl%d", dev), e)
}

func (s *legacySnap) famSum(cores []int, fam pmu.Family, scn int) float64 {
	return s.coreSum(cores, fam.At(scn))
}

// legacyBuildPathMap is the seed PFBuilder body.
func legacyBuildPathMap(s *legacySnap, cores []int) *PathMap {
	pm := &PathMap{Cores: cores}
	cs := func(e pmu.Event) float64 { return s.coreSum(cores, e) }
	fam := func(f pmu.Family, scn int) float64 { return s.famSum(cores, f, scn) }

	drd := &pm.Load[PathDRd]
	drd[LvlL1D] = cs(pmu.MemLoadL1Hit)
	drd[LvlLFB] = cs(pmu.MemLoadFBHit)
	drd[LvlL2] = cs(pmu.L2DemandDataRdHit) + cs(pmu.L2SWPFHit)
	drd[LvlLocalLLC] = cs(pmu.MemLoadL3HitRetired[0]) + cs(pmu.MemLoadL3HitRetired[3])
	drd[LvlSNCLLC] = cs(pmu.MemLoadL3HitRetired[2])
	drd[LvlRemoteLLC] = cs(pmu.MemLoadL3MissRetired[2])
	drd[LvlLocalDRAM] = fam(pmu.OCRDemandDataRd, pmu.ScnMissLocalDDR)
	drd[LvlRemoteDRAM] = fam(pmu.OCRDemandDataRd, pmu.ScnMissRemoteDDR)
	drd[LvlCXL] = fam(pmu.OCRDemandDataRd, pmu.ScnMissCXL)

	rfo := &pm.Load[PathRFO]
	rfo[LvlL2] = cs(pmu.L2RFOHit)
	rfo[LvlLocalLLC] = fam(pmu.OCRRFO, pmu.ScnHit)
	rfo[LvlRemoteLLC] = 0
	rfo[LvlLocalDRAM] = fam(pmu.OCRRFO, pmu.ScnMissLocalDDR)
	rfo[LvlRemoteDRAM] = fam(pmu.OCRRFO, pmu.ScnMissRemoteDDR)
	rfo[LvlCXL] = fam(pmu.OCRRFO, pmu.ScnMissCXL)

	hw := &pm.Load[PathHWPF]
	pfScn := func(scn int) float64 {
		return fam(pmu.OCRL1DHWPF, scn) + fam(pmu.OCRL2HWPFDRd, scn) + fam(pmu.OCRL2HWPFRFO, scn)
	}
	hw[LvlL2] = cs(pmu.L2HWPFHit)
	hitLLC := pfScn(pmu.ScnHit)
	if dl, ds := drd[LvlLocalLLC], drd[LvlSNCLLC]; dl+ds > 0 {
		hw[LvlLocalLLC] = hitLLC * dl / (dl + ds)
		hw[LvlSNCLLC] = hitLLC * ds / (dl + ds)
	} else {
		hw[LvlLocalLLC] = hitLLC
	}
	hw[LvlLocalDRAM] = pfScn(pmu.ScnMissLocalDDR)
	hw[LvlRemoteDRAM] = pfScn(pmu.ScnMissRemoteDDR)
	hw[LvlCXL] = pfScn(pmu.ScnMissCXL)

	dwr := &pm.Load[PathDWr]
	stores := cs(pmu.MemInstAllStores)
	l2StoreHits := cs(pmu.MemStoreL2Hit)
	offcoreRFOs := cs(pmu.L2AllRFO)
	sb := stores - offcoreRFOs
	if sb < 0 {
		sb = 0
	}
	dwr[LvlSB] = sb
	dwr[LvlL2] = l2StoreHits
	dwr[LvlLocalLLC] = cs(pmu.OCRModifiedWriteAny)

	flowWB := cs(pmu.OCRModifiedWriteAny)
	allWB := s.coreSum(nil, pmu.OCRModifiedWriteAny)
	share := 1.0
	if allWB > 0 {
		share = flowWB / allWB
	}
	dwr[LvlLocalDRAM] = s.imcSum(pmu.WPQInserts) * share
	var cxlWr float64
	for d := 0; d < s.nCXL; d++ {
		cxlWr += s.cxlRead(d, pmu.CXLRxPackBufInsertsData)
	}
	dwr[LvlCXL] = cxlWr * share

	return pm
}

// legacyEstimateStalls is the seed PFEstimator body.
func legacyEstimateStalls(s *legacySnap, cores []int, dev int, k Consts) *StallBreakdown {
	bd := &StallBreakdown{}

	flowReads := map[PathType]float64{
		PathDRd: s.famSum(cores, pmu.OCRDemandDataRd, pmu.ScnMissCXL),
		PathRFO: s.famSum(cores, pmu.OCRRFO, pmu.ScnMissCXL),
		PathHWPF: s.famSum(cores, pmu.OCRL1DHWPF, pmu.ScnMissCXL) +
			s.famSum(cores, pmu.OCRL2HWPFDRd, pmu.ScnMissCXL) +
			s.famSum(cores, pmu.OCRL2HWPFRFO, pmu.ScnMissCXL),
	}
	allReads := map[PathType]float64{
		PathDRd: s.famSum(nil, pmu.OCRDemandDataRd, pmu.ScnMissCXL),
		PathRFO: s.famSum(nil, pmu.OCRRFO, pmu.ScnMissCXL),
		PathHWPF: s.famSum(nil, pmu.OCRL1DHWPF, pmu.ScnMissCXL) +
			s.famSum(nil, pmu.OCRL2HWPFDRd, pmu.ScnMissCXL) +
			s.famSum(nil, pmu.OCRL2HWPFRFO, pmu.ScnMissCXL),
	}

	devReadOcc := s.cxlRead(dev, pmu.CXLDevRPQOccupancy) + s.cxlRead(dev, pmu.CXLRxPackBufOccReq)
	devWriteOcc := s.cxlRead(dev, pmu.CXLDevWPQOccupancy) + s.cxlRead(dev, pmu.CXLRxPackBufOccData)
	devReads := s.cxlRead(dev, pmu.CXLRxPackBufInsertsReq)
	devWrites := s.cxlRead(dev, pmu.CXLRxPackBufInsertsData)

	m2pOcc := s.m2p(dev, pmu.M2PRxOccupancy)
	rdResp := s.m2p(dev, pmu.M2PTxInsertsBL)
	wrAck := s.m2p(dev, pmu.M2PTxInsertsAK)
	m2pRead, m2pWrite := m2pOcc, 0.0
	if rdResp+wrAck > 0 {
		m2pRead = m2pOcc * rdResp / (rdResp + wrAck)
		m2pWrite = m2pOcc - m2pRead
	}

	torOcc := map[PathType]float64{
		PathDRd: s.chaSum(pmu.TOROccupancyIADRd[pmu.ScnMissCXL]),
		PathRFO: s.chaSum(pmu.TOROccupancyIARFO[pmu.RFOMissCXL]),
		PathHWPF: s.chaSum(pmu.TOROccupancyIADRdPref[pmu.ScnMissCXL]) +
			s.chaSum(pmu.TOROccupancyIARFOPref[pmu.RFOMissCXL]),
	}

	for _, p := range []PathType{PathDRd, PathRFO, PathHWPF} {
		fr := flowReads[p]
		if fr == 0 {
			continue
		}
		devShare := 0.0
		if devReads > 0 {
			devShare = fr / devReads
		}
		flowFrac := 1.0
		if allReads[p] > 0 {
			flowFrac = fr / allReads[p]
		}
		bd.Stall[p][CompCXLDIMM] = devReadOcc * devShare
		bd.Stall[p][CompFlexBusMC] = m2pRead*devShare + fr*k.LinkTransit
		tor := torOcc[p] * flowFrac
		chaOwn := tor - bd.Stall[p][CompCXLDIMM] - bd.Stall[p][CompFlexBusMC] - fr*k.Mesh
		if chaOwn < 0 {
			chaOwn = 0
		}
		bd.Stall[p][CompCHA] = chaOwn
		bd.Stall[p][CompLLC] = fr * k.LLCTag
	}

	all := s.chaSum(pmu.TOROccupancyIA[pmu.IAAll])
	frac := 0.0
	if all > 0 {
		frac = s.chaSum(pmu.TOROccupancyIA[pmu.IAMissCXL]) / all
		if frac > 1 {
			frac = 1
		}
	}
	stL1 := s.coreSum(cores, pmu.StallsL1DMiss)
	stL2 := s.coreSum(cores, pmu.StallsL2Miss)
	stL3 := s.coreSum(cores, pmu.StallsL3Miss)
	own := func(a, b float64) float64 {
		if a > b {
			return a - b
		}
		return 0
	}
	bd.Stall[PathDRd][CompL1D] = own(stL1, stL2) * frac
	bd.Stall[PathDRd][CompLFB] = s.coreSum(cores, pmu.L1DPendMissFBFull) * frac
	bd.Stall[PathDRd][CompL2] = own(stL2, stL3) * frac

	bd.Stall[PathRFO][CompL1D] = flowReads[PathRFO] * k.L1Tag
	bd.Stall[PathRFO][CompL2] = flowReads[PathRFO] * k.L2Tag
	bd.Stall[PathHWPF][CompL2] = flowReads[PathHWPF] * k.L2Tag

	sbStall := s.coreSum(cores, pmu.ResourceStallsSB) + s.coreSum(cores, pmu.ExeBoundOnStores)
	localWr := s.imcSum(pmu.WPQInserts)
	wrFrac := 0.0
	if devWrites+localWr > 0 {
		wrFrac = devWrites / (devWrites + localWr)
	}
	flowWB := s.coreSum(cores, pmu.OCRModifiedWriteAny)
	allWB := s.coreSum(nil, pmu.OCRModifiedWriteAny)
	wbShare := 1.0
	if allWB > 0 {
		wbShare = flowWB / allWB
	}
	bd.Stall[PathDWr][CompSB] = sbStall * wrFrac
	bd.Stall[PathDWr][CompCHA] = s.chaSum(pmu.TOROccupancyIAWBMToI) * wbShare
	bd.Stall[PathDWr][CompFlexBusMC] = m2pWrite*wbShare + devWrites*wbShare*k.LinkTransit
	bd.Stall[PathDWr][CompCXLDIMM] = devWriteOcc * wbShare

	return bd
}

// legacyPathHitMiss, legacyLLCMissDelay, legacyCXLPathReads, and
// legacyAnalyzeQueues are the seed PFAnalyzer bodies.
func legacyPathHitMiss(s *legacySnap, cores []int, p PathType, c Component) (hit, miss float64) {
	switch c {
	case CompL1D:
		if p == PathDRd {
			return s.coreSum(cores, pmu.MemLoadL1Hit), s.coreSum(cores, pmu.MemLoadL1Miss)
		}
	case CompL2:
		switch p {
		case PathDRd:
			return s.coreSum(cores, pmu.L2DemandDataRdHit), s.coreSum(cores, pmu.L2DemandDataRdMiss)
		case PathRFO:
			return s.coreSum(cores, pmu.L2RFOHit), s.coreSum(cores, pmu.L2RFOMiss)
		case PathHWPF:
			return s.coreSum(cores, pmu.L2HWPFHit), s.coreSum(cores, pmu.L2HWPFMiss)
		}
	case CompLLC:
		var fams []pmu.Family
		switch p {
		case PathDRd:
			fams = []pmu.Family{pmu.OCRDemandDataRd}
		case PathRFO:
			fams = []pmu.Family{pmu.OCRRFO}
		case PathHWPF:
			fams = []pmu.Family{pmu.OCRL1DHWPF, pmu.OCRL2HWPFDRd, pmu.OCRL2HWPFRFO}
		}
		for _, f := range fams {
			hit += s.famSum(cores, f, pmu.ScnHit)
			miss += s.famSum(cores, f, pmu.ScnMiss)
		}
		return hit, miss
	}
	return 0, 0
}

func legacyLLCMissDelay(s *legacySnap, p PathType) float64 {
	var occ, ins float64
	switch p {
	case PathDRd:
		occ = s.chaSum(pmu.TOROccupancyIADRd[pmu.ScnMiss])
		ins = s.chaSum(pmu.TORInsertsIADRd[pmu.ScnMiss])
	case PathRFO:
		occ = s.chaSum(pmu.TOROccupancyIARFO[pmu.RFOMiss])
		ins = s.chaSum(pmu.TORInsertsIARFO[pmu.RFOMiss])
	case PathHWPF:
		occ = s.chaSum(pmu.TOROccupancyIADRdPref[pmu.ScnMiss]) +
			s.chaSum(pmu.TOROccupancyIARFOPref[pmu.RFOMiss])
		ins = s.chaSum(pmu.TORInsertsIADRdPref[pmu.ScnMiss]) +
			s.chaSum(pmu.TORInsertsIARFOPref[pmu.RFOMiss])
	}
	if ins == 0 {
		return 0
	}
	return occ / ins
}

func legacyCXLPathReads(s *legacySnap, cores []int, p PathType) float64 {
	switch p {
	case PathDRd:
		return s.famSum(cores, pmu.OCRDemandDataRd, pmu.ScnMissCXL)
	case PathRFO:
		return s.famSum(cores, pmu.OCRRFO, pmu.ScnMissCXL)
	case PathHWPF:
		return s.famSum(cores, pmu.OCRL1DHWPF, pmu.ScnMissCXL) +
			s.famSum(cores, pmu.OCRL2HWPFDRd, pmu.ScnMissCXL) +
			s.famSum(cores, pmu.OCRL2HWPFRFO, pmu.ScnMissCXL)
	}
	return 0
}

func legacyAnalyzeQueues(s *legacySnap, cores []int, dev int, k Consts) *QueueReport {
	r := &QueueReport{}
	clocks := s.cycles()
	if clocks == 0 {
		return r
	}

	devReads := s.cxlRead(dev, pmu.CXLRxPackBufInsertsReq)
	devReadOcc := s.cxlRead(dev, pmu.CXLDevRPQOccupancy) + s.cxlRead(dev, pmu.CXLRxPackBufOccReq)
	m2pIns := s.m2p(dev, pmu.M2PRxInserts)
	m2pOcc := s.m2p(dev, pmu.M2PRxOccupancy)

	for _, p := range []PathType{PathDRd, PathRFO, PathHWPF} {
		for _, c := range []Component{CompL1D, CompL2} {
			hit, miss := legacyPathHitMiss(s, cores, p, c)
			wHit, wTag := k.L1Lat, k.L1Tag
			if c == CompL2 {
				wHit, wTag = k.L2Lat, k.L2Tag
			}
			r.Q[p][c] = (hit*wHit + miss*wTag) / clocks
		}
		hit, miss := legacyPathHitMiss(s, cores, p, CompLLC)
		r.Q[p][CompLLC] = (hit*k.LLCLat + miss*legacyLLCMissDelay(s, p)) / clocks

		if p == PathDRd {
			fills := s.coreSum(cores, pmu.MemLoadL1Miss)
			offIns := s.coreSum(cores, pmu.OffcoreDataRd)
			var wFill float64
			if offIns > 0 {
				wFill = s.coreSum(cores, pmu.ORODataRd) / offIns
			}
			r.Q[p][CompLFB] = fills * wFill / clocks
		}

		fr := legacyCXLPathReads(s, cores, p)
		if devReads > 0 && fr > 0 {
			var wFlex float64
			if m2pIns > 0 {
				wFlex = m2pOcc/m2pIns + k.LinkTransit
			}
			r.Q[p][CompFlexBusMC] = (fr / clocks) * wFlex
			r.Q[p][CompCXLDIMM] = devReadOcc * (fr / devReads) / clocks
		}
	}

	best := -1.0
	for _, p := range Paths() {
		for _, c := range Components() {
			if r.Q[p][c] > best {
				best = r.Q[p][c]
				r.CulpritPath, r.CulpritComp = p, c
			}
		}
	}
	return r
}

// legacyEncodeDigest is the seed digest encoder over the map layout.
func legacyEncodeDigest(seq int, s *legacySnap) Digest {
	var buf []byte
	buf = append(buf, digestMagic...)
	buf = append(buf, digestVersion)
	buf = binary.AppendUvarint(buf, uint64(seq))
	buf = binary.AppendUvarint(buf, s.start)
	buf = binary.AppendUvarint(buf, s.end)

	names := make([]string, 0, len(s.deltas))
	for name := range s.deltas {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		vals := s.deltas[name]
		nz := 0
		for _, v := range vals {
			if v != 0 {
				nz++
			}
		}
		buf = binary.AppendUvarint(buf, uint64(nz))
		prev := -1
		for i, v := range vals {
			if v == 0 {
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(i-prev))
			buf = binary.AppendUvarint(buf, v)
			prev = i
		}
	}
	return buf
}

// goldenCompare runs every analysis on both layouts and requires
// bit-identical output.
func goldenCompare(t *testing.T, name string, s *Snapshot, cores []int, k Consts) {
	t.Helper()
	ls := legacyView(s)

	pmNew := BuildPathMap(s, cores)
	pmOld := legacyBuildPathMap(ls, cores)
	if pmNew.Load != pmOld.Load {
		t.Fatalf("%s: path map diverged\nnew: %+v\nold: %+v", name, pmNew.Load, pmOld.Load)
	}

	bdNew := EstimateStalls(s, cores, 0, k)
	bdOld := legacyEstimateStalls(ls, cores, 0, k)
	if bdNew.Stall != bdOld.Stall {
		t.Fatalf("%s: stall breakdown diverged\nnew: %+v\nold: %+v", name, bdNew.Stall, bdOld.Stall)
	}

	qrNew := AnalyzeQueues(s, cores, 0, k)
	qrOld := legacyAnalyzeQueues(ls, cores, 0, k)
	if qrNew.Q != qrOld.Q {
		t.Fatalf("%s: queue report diverged\nnew: %+v\nold: %+v", name, qrNew.Q, qrOld.Q)
	}
	if qrNew.CulpritPath != qrOld.CulpritPath || qrNew.CulpritComp != qrOld.CulpritComp {
		t.Fatalf("%s: culprit diverged: %v/%v vs %v/%v", name,
			qrNew.CulpritPath, qrNew.CulpritComp, qrOld.CulpritPath, qrOld.CulpritComp)
	}

	dNew := EncodeDigest(s)
	dOld := legacyEncodeDigest(s.Seq, ls)
	if !bytes.Equal(dNew, dOld) {
		t.Fatalf("%s: digest bytes diverged (%d vs %d bytes)", name, len(dNew), len(dOld))
	}
}

func TestGoldenEquivalenceStream(t *testing.T) {
	m, local, cxlReg := testRig(t)
	k := ConstsFor(m.Config())
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(local), 1, 0.2, 1))
	m.Attach(1, workload.NewStream(region(cxlReg), 1, 0.3, 2))
	for e := 0; e < 3; e++ {
		m.Run(1_000_000)
		s := cap.Capture()
		goldenCompare(t, fmt.Sprintf("stream epoch %d", e), s, []int{1}, k)
		goldenCompare(t, fmt.Sprintf("stream epoch %d (all cores)", e), s, nil, k)
	}
}

func TestGoldenEquivalenceChase(t *testing.T) {
	m, _, cxlReg := testRig(t)
	k := ConstsFor(m.Config())
	cap := NewCapturer(m)
	app, ok := workload.Lookup("BFS")
	if !ok {
		t.Fatal("unknown app BFS")
	}
	m.Attach(0, app.Generator(region(cxlReg), 11))
	m.Attach(1, workload.NewPointerChase(region(cxlReg), 2, 5))
	for e := 0; e < 2; e++ {
		m.Run(2_000_000)
		s := cap.Capture()
		goldenCompare(t, fmt.Sprintf("chase epoch %d", e), s, []int{0}, k)
	}
}

func TestGoldenEquivalenceFaultPlan(t *testing.T) {
	m, _, cxlReg := testRig(t)
	k := ConstsFor(m.Config())
	m.SetFaultPlan(0, &cxl.FaultPlan{
		Seed:    7,
		CRCRate: [2]float64{0.01, 0.01},
		Bursts: []cxl.Burst{
			{Dir: cxl.DirS2M, Start: 200_000, Len: 100_000, Period: 500_000, Rate: 0.4},
		},
		Timeouts: []cxl.Episode{{Start: 400_000, Len: 50_000, Period: 600_000}},
	})
	cap := NewCapturer(m)
	m.Attach(0, workload.NewStream(region(cxlReg), 2, 0.2, 3))
	m.Attach(2, workload.NewStream(region(cxlReg), 2, 0.2, 4))
	for e := 0; e < 3; e++ {
		m.Run(1_500_000)
		s := cap.Capture()
		goldenCompare(t, fmt.Sprintf("faulty epoch %d", e), s, []int{0}, k)
		goldenCompare(t, fmt.Sprintf("faulty epoch %d (all cores)", e), s, nil, k)
	}
}

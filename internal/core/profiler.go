package core

import (
	"errors"
	"fmt"
	"time"

	"pathfinder/internal/obs"
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// AppRun binds one application (or one thread of one) to a core — the
// pinned-core running environment of the profiling task specification
// (Figure 5-a).
type AppRun struct {
	Label string
	Core  int
	Gen   workload.Generator
}

// Mode selects how the profiler reports (Figure 5-a's profiler spec).
type Mode uint8

// Profiling modes.
const (
	ModeAggregated Mode = iota // analyze each epoch, keep all epoch results
	ModeContinuous             // also stream records into the materializer
)

// Spec is the profiling task specification: applications with their
// pinned cores, the machine, the snapshot granularity, and the run length.
type Spec struct {
	Machine     *sim.Machine
	Apps        []AppRun
	EpochCycles sim.Cycles // scheduling-epoch (snapshot) length
	Epochs      int
	CXLDevice   int
	Mode        Mode

	// Watchdog bounds the wall-clock time one epoch may take to simulate
	// (0 disables it).  An epoch that exceeds the budget — a fault-storm
	// pathology, a runaway workload — is cut short and its snapshot
	// flagged Truncated instead of wedging the whole profiling run; the
	// shortened window stays internally consistent because analyses use
	// the snapshot's actual Start/End cycles.
	Watchdog time.Duration

	// Metrics, when non-nil, receives the epoch loop's observability
	// series (pf_profiler_*, pf_engine_*, pf_snapshot_*, pf_cxl_link_*).
	// All publishing happens at epoch-sync boundaries from the profiler's
	// own goroutine, so a concurrent scrape only ever reads atomics.
	Metrics *obs.Registry

	// Flight, when non-nil, is stamped with the running epoch ordinal
	// (1-based) before each epoch, so promoted tail records carry the
	// profiler context they happened under.
	Flight *obs.Flight

	// FlightDump, when set, is fired with a trigger name when an epoch
	// trips the watchdog — the run is misbehaving, so the flight
	// recorder's tail is dumped as a postmortem bundle while the evidence
	// is fresh.  A dump failure is reported in the epoch Note, never as a
	// run error.
	FlightDump func(trigger string) error
}

// EpochResult bundles one epoch's snapshot with the per-application
// analyses produced from it.
type EpochResult struct {
	Snapshot *Snapshot
	PathMaps map[string]*PathMap
	Stalls   map[string]*StallBreakdown
	Queues   map[string]*QueueReport

	// Truncated marks an epoch the watchdog cut short; Note carries the
	// human-readable reason for a shortened window (watchdog expiry, or
	// the workload running dry before the epoch ended).
	Truncated bool
	Note      string
}

// Profiler drives snapshot-based path-driven profiling: run an epoch, snap
// all PMUs, classify transactions by path, and analyze interleaving — the
// workflow of Figure 5-c.
type Profiler struct {
	spec   Spec
	cap    *Capturer
	mat    *Materializer
	consts Consts
	cores  map[string][]int
	gens   map[string]workload.Generator
	graph  *Graph

	// plans holds one precompiled read plan per application, built once
	// against the capturer's bank layout (and rebuilt on Migrate) so the
	// per-epoch analyses are flat arena walks with no per-call setup.
	plans map[string]*Plan

	met *profMetrics // nil when Spec.Metrics is nil

	epoch uint64 // epochs started, 1-based; stamped into the flight recorder
}

// profMetrics holds the epoch loop's registry handles.  Counters are
// advanced by snapshot deltas, gauges by the latest value — both from the
// single-owner Step path.
type profMetrics struct {
	epochs      *obs.Counter
	truncated   *obs.Counter
	watchdog    *obs.Counter
	idle        *obs.Counter
	epochCycles *obs.Gauge
	heapDepth   *obs.Gauge
	inlineSteps *obs.Counter
	dispatched  *obs.Counter
	barrierMrg  *obs.Counter
	windowHist  *obs.Histogram
	laneBusy    []*obs.Counter // one per lane, registered on first sight
	reg         *obs.Registry
	poolHits    *obs.Counter
	poolMisses  *obs.Counter
	linkRetries *obs.Counter
	linkCRC     *obs.Counter
	replayBytes *obs.Counter
	viral       *obs.Counter
	errComps    *obs.Counter
	fastFails   *obs.Counter
	isolated    *obs.Gauge

	lastHits, lastMisses     uint64
	lastInline, lastDispatch uint64
	lastWindow               sim.WindowStats
}

// windowBuckets are the pf_engine_window_cycles histogram bounds: one per
// power of two, matching the scheduler's log2 span histogram.
func windowBuckets() []float64 {
	b := make([]float64, 24)
	for i := range b {
		b[i] = float64(uint64(1) << uint(i))
	}
	return b
}

func newProfMetrics(reg *obs.Registry) *profMetrics {
	return &profMetrics{
		reg: reg,
		barrierMrg: reg.Counter("pf_engine_barrier_merges",
			"parallel-window barrier merge passes completed"),
		windowHist: reg.Histogram("pf_engine_window_cycles",
			"consumed span, in cycles, of closed parallel windows", windowBuckets()),
		epochs:      reg.Counter("pf_profiler_epochs_total", "scheduling epochs run"),
		truncated:   reg.Counter("pf_profiler_epochs_truncated_total", "epochs cut short by the watchdog"),
		watchdog:    reg.Counter("pf_profiler_watchdog_expiries_total", "watchdog budget expiries"),
		idle:        reg.Counter("pf_profiler_epochs_idle_total", "epochs ended early with every workload idle"),
		epochCycles: reg.Gauge("pf_profiler_epoch_cycles", "cycles simulated in the latest epoch"),
		heapDepth:   reg.Gauge("pf_engine_events_pending", "event-engine depth (timing wheel + heap)"),
		inlineSteps: reg.Counter("pf_engine_inline_steps", "workload ops executed inline by the run-ahead fast path"),
		dispatched:  reg.Counter("pf_engine_dispatched_events", "events dispatched through the engine"),
		poolHits:    reg.Counter("pf_snapshot_pool_hits_total", "captures served from the snapshot pool"),
		poolMisses:  reg.Counter("pf_snapshot_pool_misses_total", "captures that allocated a snapshot"),
		linkRetries: reg.Counter("pf_cxl_link_retries_total", "LRSM link retries"),
		linkCRC:     reg.Counter("pf_cxl_link_crc_errors_total", "link CRC errors detected"),
		replayBytes: reg.Counter("pf_cxl_link_replay_bytes_total", "wire bytes retransmitted by LRSM replay"),
		viral:       reg.Counter("pf_cxl_viral_entries_total", "device entries into viral containment"),
		errComps:    reg.Counter("pf_cxl_error_completions_total", "requests completed with error (viral poison + removal)"),
		fastFails:   reg.Counter("pf_cxl_fast_fails_total", "accesses fast-failed while the device was isolated"),
		isolated:    reg.Gauge("pf_cxl_isolated_devices", "CXL devices currently isolated after surprise removal"),
	}
}

// NewProfiler validates the spec and prepares a profiler.  Workloads are
// attached to their cores immediately; the machine must not be running
// other work on those cores.
func NewProfiler(spec Spec) (*Profiler, error) {
	if spec.Machine == nil {
		return nil, errors.New("core: spec needs a machine")
	}
	if len(spec.Apps) == 0 {
		return nil, errors.New("core: spec needs at least one application")
	}
	if spec.EpochCycles == 0 {
		return nil, errors.New("core: epoch length must be positive")
	}
	if spec.Epochs <= 0 {
		return nil, errors.New("core: need at least one epoch")
	}
	used := make(map[int]string)
	cores := make(map[string][]int)
	for _, a := range spec.Apps {
		if a.Core < 0 || a.Core >= spec.Machine.Cores() {
			return nil, fmt.Errorf("core: app %q pinned to invalid core %d", a.Label, a.Core)
		}
		if prev, busy := used[a.Core]; busy {
			return nil, fmt.Errorf("core: core %d claimed by both %q and %q", a.Core, prev, a.Label)
		}
		used[a.Core] = a.Label
		cores[a.Label] = append(cores[a.Label], a.Core)
	}
	cfg := spec.Machine.Config()
	p := &Profiler{
		spec:   spec,
		mat:    NewMaterializer(),
		consts: ConstsFor(cfg),
		cores:  cores,
		gens:   make(map[string]workload.Generator, len(spec.Apps)),
		graph:  NewGraph(cfg.Cores, cfg.LLCSlices, cfg.DRAMChannels, cfg.CXLDevices),
	}
	for _, a := range spec.Apps {
		spec.Machine.Attach(a.Core, a.Gen)
		p.gens[a.Label] = a.Gen
	}
	p.cap = NewCapturer(spec.Machine)
	p.plans = make(map[string]*Plan, len(cores))
	for label, cs := range cores {
		p.plans[label] = NewPlan(p.cap.Index(), cs, spec.CXLDevice)
	}
	if spec.Metrics != nil {
		p.met = newProfMetrics(spec.Metrics)
	}
	return p, nil
}

// Graph returns the Clos system model of the profiled machine (§4.2).
func (p *Profiler) Graph() *Graph { return p.graph }

// Migrate moves an application's thread to another core, modeling the
// location-sensitivity of mFlows (§4.2): the old flows end and new ones
// begin at the next snapshot.  The target core must be free.
func (p *Profiler) Migrate(label string, to int) error {
	cores, ok := p.cores[label]
	if !ok || len(cores) != 1 {
		return fmt.Errorf("core: cannot migrate %q (unknown or multi-threaded)", label)
	}
	if to < 0 || to >= p.spec.Machine.Cores() {
		return fmt.Errorf("core: migration target core %d out of range", to)
	}
	for other, cs := range p.cores {
		for _, c := range cs {
			if c == to && other != label {
				return fmt.Errorf("core: core %d is running %q", to, other)
			}
		}
	}
	from := cores[0]
	if from == to {
		return nil
	}
	p.spec.Machine.Detach(from)
	p.spec.Machine.Attach(to, p.gens[label])
	p.cores[label] = []int{to}
	p.plans[label] = NewPlan(p.cap.Index(), p.cores[label], p.spec.CXLDevice)
	return nil
}

// Consts returns the white-box constants in use.
func (p *Profiler) Consts() Consts { return p.consts }

// Materializer returns the cross-snapshot analysis store.
func (p *Profiler) Materializer() *Materializer { return p.mat }

// AppCores returns the cores running the labeled application.
func (p *Profiler) AppCores(label string) []int { return p.cores[label] }

// watchdogChunks is how many slices a watchdog-guarded epoch is run in;
// the deadline is checked between slices.
const watchdogChunks = 16

// runEpoch advances the machine by the epoch length, honoring the
// watchdog.  It reports whether the epoch was truncated, the full
// truncation context — chunks completed and cycles simulated, not just the
// last chunk's reason — and how many cycles actually ran.
func (p *Profiler) runEpoch() (truncated bool, note string, ran sim.Cycles) {
	m := p.spec.Machine
	if p.spec.Watchdog <= 0 {
		m.Run(p.spec.EpochCycles)
		return false, "", p.spec.EpochCycles
	}
	deadline := time.Now().Add(p.spec.Watchdog)
	chunk := p.spec.EpochCycles / watchdogChunks
	if chunk == 0 {
		chunk = 1
	}
	var done sim.Cycles
	chunks := 0
	for done < p.spec.EpochCycles {
		step := chunk
		if rest := p.spec.EpochCycles - done; rest < step {
			step = rest
		}
		m.Run(step)
		done += step
		chunks++
		if done == p.spec.EpochCycles {
			return false, "", done
		}
		if m.Idle() {
			// Every workload ran dry: finishing the window would only
			// accumulate idle cycles.  Not a fault — just noted.
			return false, fmt.Sprintf(
				"core: workloads idle after %d of %d chunks, %d of %d epoch cycles simulated",
				chunks, watchdogChunks, done, p.spec.EpochCycles), done
		}
		if time.Now().After(deadline) {
			return true, fmt.Sprintf(
				"core: watchdog truncated epoch after %d of %d chunks, %d of %d cycles simulated (budget %v)",
				chunks, watchdogChunks, done, p.spec.EpochCycles, p.spec.Watchdog), done
		}
	}
	return false, "", done
}

// publishWindows pushes the windowed scheduler's counters: barrier merges,
// the window-span histogram (bucket deltas via ObserveN at the bucket's
// lower bound), and per-lane busy-time counters, registered lazily the
// first time a lane reports.
func (mt *profMetrics) publishWindows(ws sim.WindowStats) {
	mt.barrierMrg.Add(ws.BarrierMerges - mt.lastWindow.BarrierMerges)
	for i, n := range ws.WindowCycles {
		var prev uint64
		if i < len(mt.lastWindow.WindowCycles) {
			prev = mt.lastWindow.WindowCycles[i]
		}
		mt.windowHist.ObserveN(float64(uint64(1)<<uint(i)), n-prev)
	}
	for i, ns := range ws.LaneBusyNs {
		for len(mt.laneBusy) <= i {
			mt.laneBusy = append(mt.laneBusy, mt.reg.Counter(
				fmt.Sprintf("pf_engine_lane_busy_ns{lane=%q}", fmt.Sprint(len(mt.laneBusy))),
				"wall-clock nanoseconds each worker lane spent executing window work"))
		}
		var prev uint64
		if i < len(mt.lastWindow.LaneBusyNs) {
			prev = mt.lastWindow.LaneBusyNs[i]
		}
		if ns > prev {
			mt.laneBusy[i].Add(ns - prev)
		}
	}
	mt.lastWindow = ws
}

// publish pushes one epoch's observability series into the registry.  It
// runs on the profiler's goroutine at an epoch-sync boundary; scrapers see
// only the atomic handles.
func (p *Profiler) publish(snap *Snapshot, truncated bool, note string, ran sim.Cycles) {
	mt := p.met
	if mt == nil {
		return
	}
	mt.epochs.Inc()
	if truncated {
		mt.truncated.Inc()
		mt.watchdog.Inc()
	} else if note != "" {
		mt.idle.Inc()
	}
	mt.epochCycles.Set(float64(ran))
	mt.heapDepth.Set(float64(p.spec.Machine.PendingEvents()))
	in, ev := p.spec.Machine.InlineSteps(), p.spec.Machine.DispatchedEvents()
	mt.inlineSteps.Add(in - mt.lastInline)
	mt.dispatched.Add(ev - mt.lastDispatch)
	mt.lastInline, mt.lastDispatch = in, ev
	mt.publishWindows(p.spec.Machine.WindowStats())
	hits, misses := p.cap.PoolStats()
	mt.poolHits.Add(hits - mt.lastHits)
	mt.poolMisses.Add(misses - mt.lastMisses)
	mt.lastHits, mt.lastMisses = hits, misses
	if dev := p.spec.CXLDevice; dev >= 0 && dev < snap.NumCXL() {
		mt.linkRetries.Add(uint64(snap.CXL(dev, pmu.CXLLinkRetries)))
		mt.linkCRC.Add(uint64(snap.CXL(dev, pmu.CXLLinkCRCErrors)))
		mt.replayBytes.Add(uint64(snap.CXL(dev, pmu.CXLLinkReplayBytes)))
		mt.viral.Add(uint64(snap.CXL(dev, pmu.CXLDevViralEntries)))
		mt.errComps.Add(uint64(snap.CXL(dev, pmu.CXLDevErrCompletions) +
			snap.M2P(dev, pmu.M2PErrCompletions)))
		mt.fastFails.Add(uint64(snap.M2P(dev, pmu.M2PFastFails)))
	}
	iso := 0
	for dev := 0; dev < snap.NumCXL(); dev++ {
		if p.spec.Machine.DeviceIsolated(dev) {
			iso++
		}
	}
	mt.isolated.Set(float64(iso))
}

// Step runs one scheduling epoch and returns its analyzed result.
func (p *Profiler) Step() (*EpochResult, error) {
	p.epoch++
	if p.spec.Flight != nil {
		p.spec.Flight.SetEpoch(p.epoch)
	}
	truncated, note, ran := p.runEpoch()
	if truncated && p.spec.FlightDump != nil {
		if err := p.spec.FlightDump("watchdog"); err != nil {
			note += fmt.Sprintf("; flight bundle dump failed: %v", err)
		} else {
			note += "; flight bundle dumped (watchdog)"
		}
	}
	snap := p.cap.Capture()
	p.publish(snap, truncated, note, ran)
	snap.Truncated = truncated
	res := &EpochResult{
		Snapshot:  snap,
		PathMaps:  make(map[string]*PathMap, len(p.cores)),
		Stalls:    make(map[string]*StallBreakdown, len(p.cores)),
		Queues:    make(map[string]*QueueReport, len(p.cores)),
		Truncated: truncated,
		Note:      note,
	}
	for label, plan := range p.plans {
		pm := &PathMap{}
		bd := &StallBreakdown{}
		qr := &QueueReport{}
		plan.BuildPathMapInto(snap, pm)
		plan.EstimateStallsInto(snap, p.consts, bd)
		plan.AnalyzeQueuesInto(snap, p.consts, qr)
		res.PathMaps[label] = pm
		res.Stalls[label] = bd
		res.Queues[label] = qr
		if err := p.mat.RecordPathMap(label, snap, pm); err != nil {
			return nil, err
		}
		if err := p.mat.RecordStalls(label, snap, res.Stalls[label]); err != nil {
			return nil, err
		}
		if err := p.mat.RecordQueues(label, snap, res.Queues[label]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Run executes the configured number of epochs, returning every epoch's
// result.
func (p *Profiler) Run() ([]*EpochResult, error) {
	out := make([]*EpochResult, 0, p.spec.Epochs)
	for i := 0; i < p.spec.Epochs; i++ {
		r, err := p.Step()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Flows derives the active mFlows of an application from a path map: one
// flow per memory destination with traffic, bounded by cores x targets
// (§4.2).
func (p *Profiler) Flows(label string, pm *PathMap) []MFlow {
	var flows []MFlow
	for _, c := range p.cores[label] {
		for _, tgt := range []Level{LvlLocalDRAM, LvlRemoteDRAM, LvlCXL} {
			if pm.LevelTotal(tgt) > 0 {
				f := MFlow{App: label, Core: c, Target: tgt}
				if tgt == LvlCXL {
					f.Device = p.spec.CXLDevice
				}
				flows = append(flows, f)
			}
		}
	}
	return flows
}

package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pathfinder/internal/obs"
	"pathfinder/internal/workload"
)

// TestWatchdogTruncatesEpoch gives the watchdog a budget no epoch can
// meet: the epoch must be cut short, flagged, and still produce a
// consistent, analyzable snapshot.
func TestWatchdogTruncatesEpoch(t *testing.T) {
	m, _, cxlr := testRig(t)
	p, err := NewProfiler(Spec{
		Machine:     m,
		Apps:        []AppRun{{Label: "chase", Core: 0, Gen: workload.NewPointerChase(region(cxlr), 0, 7)}},
		EpochCycles: 50_000_000,
		Epochs:      1,
		Watchdog:    time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !res.Snapshot.Truncated {
		t.Fatalf("nanosecond watchdog did not truncate (note=%q)", res.Note)
	}
	if !strings.Contains(res.Note, "watchdog") {
		t.Fatalf("note = %q", res.Note)
	}
	win := res.Snapshot.End - res.Snapshot.Start
	if win == 0 || win >= 50_000_000 {
		t.Fatalf("truncated window spans %d cycles", win)
	}
	// The shortened snapshot still analyzes: rates derive from the actual
	// window, so the epoch is usable rather than garbage.
	if res.Queues["chase"] == nil || res.Stalls["chase"] == nil {
		t.Fatal("truncated epoch skipped analysis")
	}
}

// TestWatchdogIdleStopsEarly runs a finite workload inside a long epoch:
// the profiler should notice the machine went idle and close the window
// early without flagging a fault.
func TestWatchdogIdleStopsEarly(t *testing.T) {
	m, local, _ := testRig(t)
	gen := workload.NewLimit(workload.NewStream(region(local), 2, 0, 3), 100)
	p, err := NewProfiler(Spec{
		Machine:     m,
		Apps:        []AppRun{{Label: "short", Core: 0, Gen: gen}},
		EpochCycles: 200_000_000,
		Epochs:      1,
		Watchdog:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("idle run flagged as truncated: %q", res.Note)
	}
	if !strings.Contains(res.Note, "idle") {
		t.Fatalf("note = %q, want idle notice", res.Note)
	}
	if win := res.Snapshot.End - res.Snapshot.Start; win >= 200_000_000 {
		t.Fatalf("idle epoch ran the full %d-cycle window", win)
	}
}

// TestWatchdogTripDumpsFlightBundle: a watchdog truncation is exactly the
// moment the flight recorder's evidence matters, so the profiler fires the
// FlightDump hook and stamps the outcome into the epoch note.  The epoch
// ordinal must already be stamped on the recorder when the dump runs.
func TestWatchdogTripDumpsFlightBundle(t *testing.T) {
	m, _, cxlr := testRig(t)
	fl := obs.NewFlight(m.Cores(), 256, 32)
	fl.Enable()
	m.SetFlight(fl)
	var triggers []string
	var epochAtDump uint64
	p, err := NewProfiler(Spec{
		Machine:     m,
		Apps:        []AppRun{{Label: "chase", Core: 0, Gen: workload.NewPointerChase(region(cxlr), 0, 7)}},
		EpochCycles: 50_000_000,
		Epochs:      1,
		Watchdog:    time.Nanosecond,
		Flight:      fl,
		FlightDump: func(trigger string) error {
			triggers = append(triggers, trigger)
			epochAtDump = fl.Epoch()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatalf("nanosecond watchdog did not truncate (note=%q)", res.Note)
	}
	if len(triggers) != 1 || triggers[0] != "watchdog" {
		t.Fatalf("dump triggers = %v, want one watchdog trip", triggers)
	}
	if epochAtDump != 1 {
		t.Fatalf("recorder epoch at dump = %d, want 1 (stamped before the epoch ran)", epochAtDump)
	}
	if !strings.Contains(res.Note, "flight bundle dumped") {
		t.Fatalf("note = %q, want flight-dump notice", res.Note)
	}
}

// A failing dump must degrade to a note, never a run error.
func TestWatchdogFlightDumpFailureIsNonFatal(t *testing.T) {
	m, _, cxlr := testRig(t)
	p, err := NewProfiler(Spec{
		Machine:     m,
		Apps:        []AppRun{{Label: "chase", Core: 0, Gen: workload.NewPointerChase(region(cxlr), 0, 7)}},
		EpochCycles: 50_000_000,
		Epochs:      1,
		Watchdog:    time.Nanosecond,
		FlightDump:  func(string) error { return errors.New("disk full") },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Step()
	if err != nil {
		t.Fatalf("dump failure escalated to a run error: %v", err)
	}
	if !res.Truncated {
		t.Fatalf("watchdog did not truncate (note=%q)", res.Note)
	}
	if !strings.Contains(res.Note, "flight bundle dump failed") || !strings.Contains(res.Note, "disk full") {
		t.Fatalf("note = %q, want dump-failure notice", res.Note)
	}
}

// TestWatchdogDisabledRunsFull checks the zero value keeps the historical
// behavior: full-length epochs, never truncated.
func TestWatchdogDisabledRunsFull(t *testing.T) {
	m, local, _ := testRig(t)
	p, err := NewProfiler(Spec{
		Machine:     m,
		Apps:        []AppRun{{Label: "s", Core: 0, Gen: workload.NewStream(region(local), 2, 0, 3)}},
		EpochCycles: 300_000,
		Epochs:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Truncated || r.Note != "" {
			t.Fatalf("epoch %d: truncated=%v note=%q", i, r.Truncated, r.Note)
		}
		if win := r.Snapshot.End - r.Snapshot.Start; win != 300_000 {
			t.Fatalf("epoch %d spans %d cycles", i, win)
		}
	}
}

package core

import (
	"bytes"
	"testing"

	"pathfinder/internal/sim"
)

// Checkpoint restore-equivalence golden suite: for every fastpath golden
// scenario — including the fault-plan, viral-escalation, and surprise-
// removal cases — a machine restored from a warm checkpoint must produce
// byte-identical per-epoch snapshot digests to a scratch machine that ran
// the same span, across every core-step scheduling mode.  The Capturer is
// delta-based, so both machines get their capturer attached at the warm
// barrier and only suffix epochs are compared.

// runCheckpointGolden runs scenario `name` three ways — scratch, source
// continued past its own checkpoint, and a fork restored on lane mode
// `lanes` — and requires identical digests from all three.
func runCheckpointGolden(t *testing.T, name string, lanes int) {
	epochs, cyc, setup := goldenScenario(t, name)
	warm := cyc // first epoch's worth of cycles is the shared prefix

	scratchDigests := func() []Digest {
		m, localReg, cxlReg := testRig(t)
		cleanup := setup(t, m, region(localReg), region(cxlReg))
		m.Run(warm)
		cap := NewCapturer(m)
		var out []Digest
		for e := 0; e < epochs; e++ {
			m.Run(cyc)
			out = append(out, EncodeDigest(cap.Capture()))
		}
		if cleanup != nil {
			cleanup()
		}
		return out
	}
	want := scratchDigests()

	src, localReg, cxlReg := testRig(t)
	cleanup := setup(t, src, region(localReg), region(cxlReg))
	src.Run(warm)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}

	// The source continues unperturbed.
	srcCap := NewCapturer(src)
	for e := 0; e < epochs; e++ {
		src.Run(cyc)
		got := EncodeDigest(srcCap.Capture())
		if !bytes.Equal(want[e], got) {
			t.Errorf("scenario %s: source epoch %d digest diverged after Checkpoint", name, e)
			diffDigests(t, want[e], got)
		}
	}
	if cleanup != nil {
		cleanup()
	}

	// The fork runs the identical suffix on the requested lane mode.
	fork := cp.Restore()
	fork.SetLanes(lanes)
	forkCap := NewCapturer(fork)
	for e := 0; e < epochs; e++ {
		fork.Run(cyc)
		got := EncodeDigest(forkCap.Capture())
		if !bytes.Equal(want[e], got) {
			t.Errorf("scenario %s lanes %d: restored epoch %d digest differs from scratch", name, lanes, e)
			diffDigests(t, want[e], got)
		}
	}
}

func checkpointGoldenAllLanes(t *testing.T, name string) {
	t.Helper()
	for _, lanes := range []int{-1, 1, 2} {
		runCheckpointGolden(t, name, lanes)
	}
}

func TestCheckpointGoldenSingleCoreLocal(t *testing.T) {
	checkpointGoldenAllLanes(t, "SingleCoreLocal")
}

func TestCheckpointGoldenSingleCoreCXL(t *testing.T) {
	checkpointGoldenAllLanes(t, "SingleCoreCXL")
}

func TestCheckpointGoldenMultiCoreMixed(t *testing.T) {
	checkpointGoldenAllLanes(t, "MultiCoreMixed")
}

func TestCheckpointGoldenFaultPlan(t *testing.T) {
	checkpointGoldenAllLanes(t, "FaultPlan")
}

func TestCheckpointGoldenSurpriseRemoval(t *testing.T) {
	checkpointGoldenAllLanes(t, "SurpriseRemoval")
}

// TestCheckpointGoldenLaneTransitions pins restore-then-SetLanes ordering:
// switching scheduling modes between suffix epochs on a restored machine
// must match a fresh machine making the same transitions at the same
// cycles.
func TestCheckpointGoldenLaneTransitions(t *testing.T) {
	const name = "MultiCoreMixed"
	epochs, cyc, setup := goldenScenario(t, name)
	warm := cyc
	transitions := []int{2, -1, 1, 2}

	run := func(m *sim.Machine) []Digest {
		cap := NewCapturer(m)
		var out []Digest
		for e := 0; e < epochs; e++ {
			m.SetLanes(transitions[e%len(transitions)])
			m.Run(cyc)
			out = append(out, EncodeDigest(cap.Capture()))
		}
		return out
	}

	fresh, localReg, cxlReg := testRig(t)
	setup(t, fresh, region(localReg), region(cxlReg))
	fresh.Run(warm)
	want := run(fresh)

	src, localReg2, cxlReg2 := testRig(t)
	setup(t, src, region(localReg2), region(cxlReg2))
	src.Run(warm)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	got := run(cp.Restore())
	for e := range want {
		if !bytes.Equal(want[e], got[e]) {
			t.Errorf("epoch %d digest differs across restore-then-SetLanes transitions", e)
			diffDigests(t, want[e], got[e])
		}
	}
}

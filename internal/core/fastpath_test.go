package core

import (
	"bytes"
	"testing"

	"pathfinder/internal/cxl"
	"pathfinder/internal/obs"
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Run-ahead equivalence: the core-stepping fast path executes
// hit-dominated op runs inline, advancing the engine clock without
// event-engine round-trips.  It must be invisible to every observable:
// these tests run identical fixed-seed scenarios with the fast path on
// and forced off, and require the captured snapshot digests — every PMU
// counter of every bank, serialized — to be byte-identical per epoch.

// fastpathScenario configures a freshly built rig (workloads, fault
// plans, tracer).  It runs twice per test, once per engine mode, so both
// machines see identical construction order and workload seeds.  The
// returned cleanup (may be nil) runs after each machine finishes.
type fastpathScenario func(t *testing.T, m *sim.Machine, local, cxlReg workload.Region) func()

type fastpathRun struct {
	digests []Digest
	now     sim.Cycles
	inline  uint64
}

func runFastpath(t *testing.T, fast bool, epochs int, cyc sim.Cycles, setup fastpathScenario) fastpathRun {
	t.Helper()
	m, localReg, cxlReg := testRig(t)
	m.SetRunAhead(fast)
	cleanup := setup(t, m, region(localReg), region(cxlReg))
	cap := NewCapturer(m)
	var out fastpathRun
	for e := 0; e < epochs; e++ {
		m.Run(cyc)
		out.digests = append(out.digests, EncodeDigest(cap.Capture()))
	}
	if cleanup != nil {
		cleanup()
	}
	out.now = m.Now()
	out.inline = m.InlineSteps()
	return out
}

// fastpathGolden asserts byte-identical digests between the two modes and
// that the fast-path run actually exercised inline stepping.
func fastpathGolden(t *testing.T, epochs int, cyc sim.Cycles, setup fastpathScenario) {
	t.Helper()
	on := runFastpath(t, true, epochs, cyc, setup)
	off := runFastpath(t, false, epochs, cyc, setup)
	if on.now != off.now {
		t.Fatalf("final clock differs: fast=%d dispatch=%d", on.now, off.now)
	}
	if on.inline == 0 {
		t.Fatal("fast-path run executed zero inline steps; scenario does not exercise run-ahead")
	}
	if off.inline != 0 {
		t.Fatalf("dispatch-only run reported %d inline steps", off.inline)
	}
	for e := range on.digests {
		if !bytes.Equal(on.digests[e], off.digests[e]) {
			t.Errorf("epoch %d digest differs between run-ahead and dispatch-only engines", e)
			diffDigests(t, on.digests[e], off.digests[e])
		}
	}
}

// diffDigests decodes both digests and reports the first few differing
// counters, so a divergence points at the responsible subsystem instead
// of an opaque byte offset.
func diffDigests(t *testing.T, a, b Digest) {
	t.Helper()
	sa, ea := DecodeDigest(a, pmu.Default.Len())
	sb, eb := DecodeDigest(b, pmu.Default.Len())
	if ea != nil || eb != nil {
		t.Logf("decode failed: %v / %v", ea, eb)
		return
	}
	shown := 0
	for _, name := range sa.idx.names {
		da, db := sa.bankDelta(name), sb.bankDelta(name)
		for e := range da {
			if da[e] != db[e] && shown < 8 {
				t.Logf("  %s[%d]: fast=%d dispatch=%d", name, e, da[e], db[e])
				shown++
			}
		}
	}
}

// goldenScenarios is the shared scenario table: every engine-equivalence
// suite — run-ahead fastpath (this file) and the windowed sweep/parallel
// lane modes (window_test.go) — runs each entry against the dispatch-only
// baseline and requires byte-identical digests.  The tracer scenario stays
// a standalone test in both files because it captures tracer statistics.
var goldenScenarios = []struct {
	name   string
	epochs int
	cyc    sim.Cycles
	setup  fastpathScenario
}{
	{"SingleCoreLocal", 3, 1_000_000,
		func(t *testing.T, m *sim.Machine, local, _ workload.Region) func() {
			m.Attach(0, workload.NewStream(local, 2, 0.2, 1))
			return nil
		}},
	{"SingleCoreCXL", 3, 1_000_000,
		func(t *testing.T, m *sim.Machine, _, cxlReg workload.Region) func() {
			m.Attach(0, workload.NewStream(cxlReg, 2, 0.2, 2))
			return nil
		}},
	{"MultiCoreMixed", 3, 1_500_000,
		func(t *testing.T, m *sim.Machine, local, cxlReg workload.Region) func() {
			m.Attach(0, workload.NewStream(local, 2, 0.2, 1))
			m.Attach(1, workload.NewStream(cxlReg, 2, 0.3, 2))
			m.Attach(2, workload.NewPointerChase(cxlReg, 2, 3))
			m.Attach(3, workload.NewStream(local, 0, 0, 4))
			return nil
		}},
	{"FaultPlan", 3, 1_500_000,
		func(t *testing.T, m *sim.Machine, local, cxlReg workload.Region) func() {
			m.SetFaultPlan(0, &cxl.FaultPlan{
				Seed:    7,
				CRCRate: [2]float64{0.01, 0.01},
				Bursts: []cxl.Burst{
					{Dir: cxl.DirS2M, Start: 200_000, Len: 100_000, Period: 500_000, Rate: 0.4},
				},
				Timeouts:       []cxl.Episode{{Start: 400_000, Len: 50_000, Period: 600_000}},
				PoisonBase:     0,
				PoisonLen:      1 << 10,
				ViralThreshold: 64,
				ViralReset:     300_000,
			})
			m.Attach(0, workload.NewStream(cxlReg, 2, 0.2, 3))
			m.Attach(2, workload.NewStream(local, 2, 0.2, 4))
			return nil
		}},
	{"SurpriseRemoval", 3, 800_000,
		func(t *testing.T, m *sim.Machine, local, cxlReg workload.Region) func() {
			m.SetFaultPlan(0, &cxl.FaultPlan{Seed: 1, RemoveAt: 500_000})
			m.Attach(0, workload.NewStream(cxlReg, 0, 0, 1))
			m.Attach(1, workload.NewStream(local, 2, 0.2, 2))
			return nil
		}},
}

// goldenScenario returns the named entry of goldenScenarios.
func goldenScenario(t *testing.T, name string) (int, sim.Cycles, fastpathScenario) {
	t.Helper()
	for _, s := range goldenScenarios {
		if s.name == name {
			return s.epochs, s.cyc, s.setup
		}
	}
	t.Fatalf("unknown golden scenario %q", name)
	return 0, 0, nil
}

func TestFastpathGoldenSingleCoreLocal(t *testing.T) {
	e, c, s := goldenScenario(t, "SingleCoreLocal")
	fastpathGolden(t, e, c, s)
}

func TestFastpathGoldenSingleCoreCXL(t *testing.T) {
	e, c, s := goldenScenario(t, "SingleCoreCXL")
	fastpathGolden(t, e, c, s)
}

func TestFastpathGoldenMultiCoreMixed(t *testing.T) {
	e, c, s := goldenScenario(t, "MultiCoreMixed")
	fastpathGolden(t, e, c, s)
}

func TestFastpathGoldenFaultPlan(t *testing.T) {
	e, c, s := goldenScenario(t, "FaultPlan")
	fastpathGolden(t, e, c, s)
}

func TestFastpathGoldenSurpriseRemoval(t *testing.T) {
	e, c, s := goldenScenario(t, "SurpriseRemoval")
	fastpathGolden(t, e, c, s)
}

func TestFastpathGoldenTracerAttached(t *testing.T) {
	var stats [2]struct {
		committed, dropped uint64
	}
	i := 0
	fastpathGolden(t, 2, 1_000_000,
		func(t *testing.T, m *sim.Machine, local, cxlReg workload.Region) func() {
			// Sampling every 4th op mixes traced (dispatch-forced) and
			// untraced (inline-eligible) ops in the same run.
			tr := obs.NewTracer(1<<14, 4)
			tr.Enable()
			m.SetTracer(tr)
			m.Attach(0, workload.NewStream(cxlReg, 2, 0.2, 5))
			m.Attach(1, workload.NewStream(local, 2, 0.2, 6))
			slot := &stats[i]
			i++
			return func() {
				_, slot.committed, slot.dropped = tr.Stats()
			}
		})
	// The tracer must observe the same request population in both modes.
	if stats[0] != stats[1] {
		t.Fatalf("tracer stats differ: fast=%+v dispatch=%+v", stats[0], stats[1])
	}
	if stats[0].committed == 0 {
		t.Fatal("tracer committed no records")
	}
}

// TestFastpathGoldenFlightAttached: the always-on flight recorder files a
// record for every completed request, so unlike the sampling tracer it is
// active on the inline fast path itself.  Digests must stay byte-identical
// with it enabled, and the recorder must see the identical request
// population in both engine modes.
func TestFastpathGoldenFlightAttached(t *testing.T) {
	var stats [2]struct {
		records, promoted uint64
	}
	i := 0
	fastpathGolden(t, 2, 1_000_000,
		func(t *testing.T, m *sim.Machine, local, cxlReg workload.Region) func() {
			fl := obs.NewFlight(m.Cores(), 2048, 128)
			fl.Enable()
			m.SetFlight(fl)
			m.Attach(0, workload.NewStream(cxlReg, 2, 0.2, 5))
			m.Attach(1, workload.NewStream(local, 2, 0.2, 6))
			slot := &stats[i]
			i++
			return func() {
				slot.records = fl.RecordsTotal()
				slot.promoted = fl.Promoted()
			}
		})
	if stats[0] != stats[1] {
		t.Fatalf("flight stats differ: fast=%+v dispatch=%+v", stats[0], stats[1])
	}
	if stats[0].records == 0 {
		t.Fatal("flight recorder filed no records")
	}
	if stats[0].promoted == 0 {
		t.Fatal("no promotions over a mixed local/CXL run; threshold pipeline dead")
	}
}

// TestFastpathStepEquivalence drives the same workload via one big
// RunUntil (run-ahead eligible) and via repeated short Run slices (which
// constantly re-clips the horizon), requiring identical digests.  This
// pins the horizon-clipping bail-out: inline stepping must never cross a
// RunUntil boundary in an observable way.
func TestFastpathStepEquivalence(t *testing.T) {
	run := func(slices int, each sim.Cycles) Digest {
		m, localReg, cxlReg := testRig(t)
		m.Attach(0, workload.NewStream(region(localReg), 2, 0.2, 9))
		m.Attach(1, workload.NewStream(region(cxlReg), 2, 0.1, 10))
		cap := NewCapturer(m)
		for i := 0; i < slices; i++ {
			m.Run(each)
		}
		return EncodeDigest(cap.Capture())
	}
	whole := run(1, 1_200_000)
	sliced := run(1200, 1_000)
	if !bytes.Equal(whole, sliced) {
		t.Fatal("digest differs between one RunUntil and 1200 sliced Runs")
	}
	finer := run(300, 4_000)
	if !bytes.Equal(whole, finer) {
		t.Fatal("digest differs between one RunUntil and 300 sliced Runs")
	}
}

// TestFastpathCounters checks the introspection counters behave as
// documented: inline steps dominate dispatches on a hit-heavy stream, and
// disabling run-ahead routes every op through the engine.
func TestFastpathCounters(t *testing.T) {
	m, localReg, _ := testRig(t)
	m.Attach(0, workload.NewStream(region(localReg), 2, 0.2, 1))
	m.Run(500_000)
	in, ev := m.InlineSteps(), m.DispatchedEvents()
	if in == 0 {
		t.Fatal("no inline steps on a hit-dominated stream")
	}
	if in < ev {
		t.Errorf("inline steps (%d) should dominate dispatched events (%d) on a local stream", in, ev)
	}
	m2, localReg2, _ := testRig(t)
	m2.SetRunAhead(false)
	m2.Attach(0, workload.NewStream(region(localReg2), 2, 0.2, 1))
	m2.Run(500_000)
	if m2.InlineSteps() != 0 {
		t.Fatalf("run-ahead disabled but %d inline steps recorded", m2.InlineSteps())
	}
	if m2.DispatchedEvents() == 0 {
		t.Fatal("dispatch-only run recorded no dispatched events")
	}
}

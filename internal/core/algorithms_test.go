package core

import (
	"testing"

	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
)

// Synthetic-snapshot tests: exercise PFEstimator and PFAnalyzer directly
// against hand-built counter vectors so the attribution arithmetic is
// pinned down independently of the simulator.

// synthRig builds an empty snapshot with the given module census and a
// setter for individual counters.
type synthRig struct {
	s *Snapshot
}

func newSynthRig(cores, chas, imcs, cxls int, cycles sim.Cycles) *synthRig {
	var names []string
	for i := 0; i < cores; i++ {
		names = append(names, bankName("core", i))
	}
	for i := 0; i < chas; i++ {
		names = append(names, bankName("cha", i))
	}
	for i := 0; i < imcs; i++ {
		names = append(names, bankName("imc", i))
	}
	for i := 0; i < cxls; i++ {
		names = append(names, bankName("m2pcie", i))
		names = append(names, bankName("cxl", i))
	}
	idx := NewBankIndex(names, pmu.Default.Len())
	s := &Snapshot{Start: 0, End: cycles, idx: idx, arena: make([]uint64, idx.ArenaLen())}
	return &synthRig{s: s}
}

func bankName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func (r *synthRig) set(bank string, e pmu.Event, v uint64) *synthRig {
	r.s.bankDelta(bank)[e] = v
	return r
}

func testConsts() Consts {
	return Consts{L1Lat: 5, L1Tag: 4, L2Lat: 14, L2Tag: 10,
		LLCLat: 33, LLCTag: 12, Mesh: 18, LinkTransit: 400}
}

func TestEstimatorArithmetic(t *testing.T) {
	// One core sends 100 CXL DRd reads; another core sends 300.  The
	// device saw 400 requests with a read-queue occupancy integral of
	// 8000; the M2PCIe ingress integral is 2000, all reads.
	r := newSynthRig(2, 2, 1, 1, 1_000_000)
	r.set("core0", pmu.OCRDemandDataRd[pmu.ScnMissCXL], 100)
	r.set("core1", pmu.OCRDemandDataRd[pmu.ScnMissCXL], 300)
	r.set("cxl0", pmu.CXLRxPackBufInsertsReq, 400)
	r.set("cxl0", pmu.CXLDevRPQOccupancy, 8000)
	r.set("m2pcie0", pmu.M2PRxOccupancy, 2000)
	r.set("m2pcie0", pmu.M2PRxInserts, 400)
	r.set("m2pcie0", pmu.M2PTxInsertsBL, 400) // all responses are data
	// TOR residency of the DRd CXL entries, socket-wide.
	r.set("cha0", pmu.TOROccupancyIADRd[pmu.ScnMissCXL], 300_000)
	r.set("cha0", pmu.TOROccupancyIA[pmu.IAAll], 300_000)
	r.set("cha0", pmu.TOROccupancyIA[pmu.IAMissCXL], 300_000)

	k := testConsts()
	bd := EstimateStalls(r.s, []int{0}, 0, k)

	// Device stall distributed by flow share: 100/400 of 8000.
	if got := bd.Stall[PathDRd][CompCXLDIMM]; got != 2000 {
		t.Fatalf("device stall = %v, want 2000", got)
	}
	// FlexBus: ingress share (100/400 of 2000) + transit (100 * 400).
	if got := bd.Stall[PathDRd][CompFlexBusMC]; got != 500+40_000 {
		t.Fatalf("flexbus stall = %v, want 40500", got)
	}
	// CHA own share: flow-scaled TOR residency minus downstream and mesh.
	// flowFrac = 100/400 -> 75000; minus 2000 (DIMM), 40500 (flex),
	// 100*18 (mesh) = 30700.
	if got := bd.Stall[PathDRd][CompCHA]; got != 30_700 {
		t.Fatalf("CHA stall = %v, want 30700", got)
	}
	if got := bd.Stall[PathDRd][CompLLC]; got != 100*12 {
		t.Fatalf("LLC stall = %v, want 1200", got)
	}

	// The other flow takes the remaining 3/4 of the device stall.
	bd1 := EstimateStalls(r.s, []int{1}, 0, k)
	if got := bd1.Stall[PathDRd][CompCXLDIMM]; got != 6000 {
		t.Fatalf("core1 device stall = %v, want 6000", got)
	}
	// Attribution is conservative: flow shares of the device stall sum to
	// the whole.
	if bd.Stall[PathDRd][CompCXLDIMM]+bd1.Stall[PathDRd][CompCXLDIMM] != 8000 {
		t.Fatal("device stall not conserved across flows")
	}
}

func TestEstimatorInCoreAttribution(t *testing.T) {
	// All offcore waiting is CXL (frac = 1): the hierarchical stall
	// counters split into own-level components by differencing.
	r := newSynthRig(1, 1, 1, 1, 1_000_000)
	r.set("core0", pmu.OCRDemandDataRd[pmu.ScnMissCXL], 10)
	r.set("cxl0", pmu.CXLRxPackBufInsertsReq, 10)
	r.set("cha0", pmu.TOROccupancyIA[pmu.IAAll], 5000)
	r.set("cha0", pmu.TOROccupancyIA[pmu.IAMissCXL], 5000)
	r.set("core0", pmu.StallsL1DMiss, 1000)
	r.set("core0", pmu.StallsL2Miss, 700)
	r.set("core0", pmu.StallsL3Miss, 400)
	r.set("core0", pmu.L1DPendMissFBFull, 50)

	bd := EstimateStalls(r.s, []int{0}, 0, testConsts())
	if got := bd.Stall[PathDRd][CompL1D]; got != 300 {
		t.Fatalf("L1D own stall = %v, want 1000-700", got)
	}
	if got := bd.Stall[PathDRd][CompL2]; got != 300 {
		t.Fatalf("L2 own stall = %v, want 700-400", got)
	}
	if got := bd.Stall[PathDRd][CompLFB]; got != 50 {
		t.Fatalf("LFB stall = %v", got)
	}
}

func TestEstimatorHalfCXLFraction(t *testing.T) {
	// Half the TOR residency is CXL-destined: in-core stalls are halved.
	r := newSynthRig(1, 1, 1, 1, 1_000_000)
	r.set("core0", pmu.OCRDemandDataRd[pmu.ScnMissCXL], 10)
	r.set("cxl0", pmu.CXLRxPackBufInsertsReq, 10)
	r.set("cha0", pmu.TOROccupancyIA[pmu.IAAll], 8000)
	r.set("cha0", pmu.TOROccupancyIA[pmu.IAMissCXL], 4000)
	r.set("core0", pmu.StallsL1DMiss, 1000)

	if f := CXLWaitFraction(r.s); f != 0.5 {
		t.Fatalf("wait fraction = %v", f)
	}
	bd := EstimateStalls(r.s, []int{0}, 0, testConsts())
	if got := bd.Stall[PathDRd][CompL1D]; got != 500 {
		t.Fatalf("half-scaled L1D stall = %v", got)
	}
}

func TestAnalyzerLittlesLaw(t *testing.T) {
	// L1D: 1000 hits at W=5 plus 500 misses at W_tag=4 over 10k cycles:
	// L = (1000*5 + 500*4) / 10000 = 0.7.
	r := newSynthRig(1, 1, 1, 1, 10_000)
	r.set("core0", pmu.MemLoadL1Hit, 1000)
	r.set("core0", pmu.MemLoadL1Miss, 500)
	qr := AnalyzeQueues(r.s, []int{0}, 0, testConsts())
	if got := qr.Q[PathDRd][CompL1D]; got != 0.7 {
		t.Fatalf("L1D queue = %v, want 0.7", got)
	}

	// LLC W_miss comes from the measured TOR residency per miss:
	// occupancy 120000 over 200 inserts -> 600 cycles each.
	r2 := newSynthRig(1, 1, 1, 1, 10_000)
	r2.set("core0", pmu.OCRDemandDataRd[pmu.ScnHit], 100)
	r2.set("core0", pmu.OCRDemandDataRd[pmu.ScnMiss], 200)
	r2.set("cha0", pmu.TOROccupancyIADRd[pmu.ScnMiss], 120_000)
	r2.set("cha0", pmu.TORInsertsIADRd[pmu.ScnMiss], 200)
	qr2 := AnalyzeQueues(r2.s, []int{0}, 0, testConsts())
	want := (100*33.0 + 200*600.0) / 10_000
	if got := qr2.Q[PathDRd][CompLLC]; got != want {
		t.Fatalf("LLC queue = %v, want %v", got, want)
	}
	if qr2.CulpritPath != PathDRd || qr2.CulpritComp != CompLLC {
		t.Fatalf("culprit = %v on %v", qr2.CulpritPath, qr2.CulpritComp)
	}
}

func TestAnalyzerZeroCycles(t *testing.T) {
	r := newSynthRig(1, 1, 1, 1, 0)
	qr := AnalyzeQueues(r.s, []int{0}, 0, testConsts())
	for _, p := range Paths() {
		for _, c := range Components() {
			if qr.Q[p][c] != 0 {
				t.Fatalf("zero-length epoch produced Q[%v][%v]=%v", p, c, qr.Q[p][c])
			}
		}
	}
	if MeasuredQueues(r.s, nil, 0) != nil {
		t.Fatal("measured queues on a zero-length epoch")
	}
}

func TestBuilderSyntheticRows(t *testing.T) {
	r := newSynthRig(1, 1, 1, 1, 10_000)
	r.set("core0", pmu.MemLoadL1Hit, 111)
	r.set("core0", pmu.MemLoadFBHit, 22)
	r.set("core0", pmu.L2DemandDataRdHit, 33)
	r.set("core0", pmu.MemLoadL3HitRetired[0], 7)
	r.set("core0", pmu.MemLoadL3HitRetired[2], 3)
	r.set("core0", pmu.OCRDemandDataRd[pmu.ScnMissLocalDDR], 40)
	r.set("core0", pmu.OCRDemandDataRd[pmu.ScnMissCXL], 50)

	pm := BuildPathMap(r.s, []int{0})
	want := map[Level]float64{
		LvlL1D: 111, LvlLFB: 22, LvlL2: 33,
		LvlLocalLLC: 7, LvlSNCLLC: 3, LvlLocalDRAM: 40, LvlCXL: 50,
	}
	for l, w := range want {
		if got := pm.Load[PathDRd][l]; got != w {
			t.Fatalf("DRd[%v] = %v, want %v", l, got, w)
		}
	}
	if got := pm.PathTotal(PathDRd); got != 266 {
		t.Fatalf("DRd total = %v", got)
	}
	if got := pm.CXLShare(PathDRd); got != 50.0/100.0 {
		t.Fatalf("CXL share = %v", got)
	}
}

package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// TestSpanResidencyMatchesQueueAnalysis is the tracer's ground-truth check:
// for a pure pointer chase on CXL memory traced at sample=1, the directly
// observed per-stage residency must agree with the Little's-law queue
// estimates AnalyzeQueues derives from the PMU occupancy integrals — the
// CXL-path acceptance criterion (within 10%).
func TestSpanResidencyMatchesQueueAnalysis(t *testing.T) {
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
	})
	cxl, err := as.Alloc(16<<20, mem.Fixed(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.SPR()
	cfg.Cores = 4
	cfg.LLCSlices = 8
	cfg.LLCSize = 4 << 20
	// Demand-only traffic: with prefetchers on, untraced prefetch requests
	// would widen the PMU integrals relative to the traced demand spans.
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	m := sim.New(cfg, as)

	tr := obs.NewTracer(1<<14, 1)
	tr.Enable()
	m.SetTracer(tr)
	m.Attach(0, workload.NewPointerChase(region(cxl), 2, 7))

	c := NewCapturer(m)
	m.Run(2_000_000)
	snap := c.Capture()
	k := ConstsFor(cfg)
	plan := NewPlan(c.Index(), []int{0}, 0)
	var qr QueueReport
	plan.AnalyzeQueuesInto(snap, k, &qr)

	stats, committed, _ := tr.Stats()
	if committed == 0 {
		t.Fatal("no records traced")
	}
	clocks := snap.Cycles()

	within := func(name string, got, want, tol float64) {
		t.Helper()
		if want == 0 {
			t.Fatalf("%s: estimate is zero (got %g observed)", name, got)
		}
		if rel := math.Abs(got-want) / want; rel > tol {
			t.Fatalf("%s: observed %.4f vs estimated %.4f (%.1f%% off, tol %.0f%%)",
				name, got, want, rel*100, tol*100)
		}
	}

	// CXL DIMM queue: the estimate prices Σ(data - devArrive) through the
	// RPQ + packing-buffer occupancy integrals; the tracer observed the
	// same interval directly as cxl_devq + cxl_media spans.
	obsDIMM := float64(stats[obs.StageCXLDevQ].Cycles+stats[obs.StageCXLMedia].Cycles) / clocks
	within("CXL DIMM queue", obsDIMM, qr.Q[PathDRd][CompCXLDIMM], 0.10)

	// FlexBus+MC: estimate is rate x (M2PCIe ingress residency + link
	// transit); the observed analog uses the traced m2pcie spans and the
	// traced request count.
	nReads := float64(stats[obs.StageM2PCIe].Spans)
	obsFlex := float64(stats[obs.StageM2PCIe].Cycles)/clocks + (nReads/clocks)*k.LinkTransit
	within("FlexBus+MC queue", obsFlex, qr.Q[PathDRd][CompFlexBusMC], 0.10)
}

// TestProfilerPublishesMetrics checks the epoch loop's registry series:
// epochs, idle/truncation accounting with the accumulated note, pool
// effectiveness, and engine depth.
func TestProfilerPublishesMetrics(t *testing.T) {
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
	})
	cxl, err := as.Alloc(1<<20, mem.Fixed(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.SPR()
	cfg.Cores = 2
	cfg.LLCSlices = 2
	cfg.LLCSize = 1 << 20
	m := sim.New(cfg, as)

	reg := obs.NewRegistry()
	p, err := NewProfiler(Spec{
		Machine:     m,
		Apps:        []AppRun{{Label: "chase", Core: 0, Gen: workload.NewPointerChase(region(cxl), 2, 3)}},
		EpochCycles: 100_000,
		Epochs:      3,
		Watchdog:    time.Minute,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		r.Snapshot.Release() // recycle so later captures hit the pool
	}

	if got := reg.Counter("pf_profiler_epochs_total", "").Value(); got != 3 {
		t.Fatalf("pf_profiler_epochs_total = %d, want 3", got)
	}
	if got := reg.Counter("pf_profiler_epochs_truncated_total", "").Value(); got != 0 {
		t.Fatalf("unexpected truncations: %d", got)
	}
	hits := reg.Counter("pf_snapshot_pool_hits_total", "").Value()
	misses := reg.Counter("pf_snapshot_pool_misses_total", "").Value()
	if hits+misses != 3 {
		t.Fatalf("pool hits+misses = %d+%d, want 3 captures", hits, misses)
	}
	if hits < 2 {
		t.Fatalf("released snapshots not recycled: hits=%d misses=%d", hits, misses)
	}
	if reg.Gauge("pf_profiler_epoch_cycles", "").Value() != 100_000 {
		t.Fatalf("pf_profiler_epoch_cycles = %v", reg.Gauge("pf_profiler_epoch_cycles", "").Value())
	}
}

// TestWatchdogNoteAccumulatesContext pins the satellite bugfix: an epoch
// ended early must carry chunks completed AND cycles simulated in its note.
func TestWatchdogNoteAccumulatesContext(t *testing.T) {
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
	})
	local, err := as.Alloc(1<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.SPR()
	cfg.Cores = 2
	cfg.LLCSlices = 2
	cfg.LLCSize = 1 << 20
	m := sim.New(cfg, as)

	// A tiny finite workload that runs dry almost immediately inside a huge
	// epoch: the run-dry path must report both chunk and cycle progress.
	gen := &workload.Limit{G: workload.NewPointerChase(region(local), 1, 1), N: 64}
	reg := obs.NewRegistry()
	p, err := NewProfiler(Spec{
		Machine:     m,
		Apps:        []AppRun{{Label: "short", Core: 0, Gen: gen}},
		EpochCycles: 50_000_000,
		Epochs:      1,
		Watchdog:    time.Minute,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Step()
	if err != nil {
		t.Fatal(err)
	}
	if r.Truncated {
		t.Fatal("idle run-dry must not be flagged truncated")
	}
	if !strings.Contains(r.Note, "chunks") || !strings.Contains(r.Note, "cycles simulated") {
		t.Fatalf("note lacks accumulated context: %q", r.Note)
	}
	if got := reg.Counter("pf_profiler_epochs_idle_total", "").Value(); got != 1 {
		t.Fatalf("pf_profiler_epochs_idle_total = %d, want 1", got)
	}
}

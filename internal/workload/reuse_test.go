package workload

import "testing"

func TestStreamReuse(t *testing.T) {
	r := Region{Size: mb}
	g := NewStream(r, 0, 0, 1)
	g.Reuse = 4
	ops := drain(t, g, r, 12)
	// Four consecutive accesses to each line before advancing.
	for i := 0; i < 4; i++ {
		if ops[i].Addr != r.Base {
			t.Fatalf("op %d addr = %#x", i, ops[i].Addr)
		}
	}
	if ops[4].Addr != r.Base+64 {
		t.Fatalf("line advance: %#x", ops[4].Addr)
	}
	if ops[8].Addr != r.Base+128 {
		t.Fatalf("second advance: %#x", ops[8].Addr)
	}
}

func TestStreamReusePrefetchDistance(t *testing.T) {
	r := Region{Size: mb}
	g := NewStream(r, 0, 0, 1)
	g.Reuse = 2
	g.SWPF = 4
	ops := drain(t, g, r, 2)
	// The prefetch targets the line 4 lines ahead of the *line* cursor.
	if ops[0].Kind != Prefetch || ops[0].Addr != ops[1].Addr+4*64 {
		t.Fatalf("prefetch pairing: %+v %+v", ops[0], ops[1])
	}
}

func TestStencilReuse(t *testing.T) {
	r := Region{Size: 4 * mb}
	g := NewStencil(r, 2, 0)
	g.Reuse = 2
	ops := drain(t, g, r, 8)
	// Arrays alternate (load from first half, store to second half); the
	// line advances only every Reuse grid points.
	if ops[0].Addr != ops[2].Addr {
		t.Fatalf("reuse 2: point 0 and 1 loads differ: %#x vs %#x", ops[0].Addr, ops[2].Addr)
	}
	if ops[4].Addr != ops[0].Addr+64 {
		t.Fatalf("line advance after reuse: %#x vs %#x", ops[4].Addr, ops[0].Addr)
	}
}

func TestGUPSBatch(t *testing.T) {
	r := Region{Size: mb}
	g := NewGUPS(r, 0, 0, 0, 3)
	g.Batch = 4
	deps := 0
	ops := drain(t, g, r, 80) // 40 load/store pairs
	loads := 0
	for _, op := range ops {
		if op.Kind == Load {
			loads++
			if op.Dep {
				deps++
			}
		}
	}
	if loads != 40 {
		t.Fatalf("loads = %d", loads)
	}
	// Every 4th load is dependent.
	if deps != 10 {
		t.Fatalf("dependent loads = %d of %d, want 10", deps, loads)
	}
}

func TestGUPSBatchDefaultFullyDependent(t *testing.T) {
	r := Region{Size: mb}
	g := NewGUPS(r, 0, 0, 0, 3)
	ops := drain(t, g, r, 20)
	for _, op := range ops {
		if op.Kind == Load && !op.Dep {
			t.Fatal("default GUPS load not dependent")
		}
	}
}

func TestPhasedZeroOps(t *testing.T) {
	r := Region{Size: mb}
	p := NewPhased(
		Phase{Gen: NewStream(r, 0, 0, 1), Ops: 0},
		Phase{Gen: NewStream(r, 0, 0, 2), Ops: 0},
	)
	var op Op
	if p.Next(&op) {
		t.Fatal("all-zero phases produced an op")
	}
	// A zero phase among nonzero ones is skipped.
	p2 := NewPhased(
		Phase{Gen: NewStream(r, 0, 0, 1), Ops: 0},
		Phase{Gen: NewPointerChase(r, 0, 2), Ops: 2},
	)
	if !p2.Next(&op) || !op.Dep {
		t.Fatal("zero phase not skipped")
	}
}

func TestMixExhaustedSide(t *testing.T) {
	r := Region{Size: mb}
	// B is finite: once exhausted, Mix falls back to A.
	m := NewMix(NewStream(r, 0, 0, 1), NewLimit(NewPointerChase(r, 0, 2), 3), 0.5)
	var op Op
	deps := 0
	for i := 0; i < 20; i++ {
		if !m.Next(&op) {
			t.Fatalf("mix ended at %d", i)
		}
		if op.Dep {
			deps++
		}
	}
	if deps != 3 {
		t.Fatalf("dependent (B) ops = %d, want exactly 3", deps)
	}
}

package workload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	r := Region{Base: 0x10000, Size: 8 * mb}
	src := NewZipf(r, 0.99, 0.8, 2, 5, 11)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, src, 5000); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000 {
		t.Fatalf("decoded %d ops", len(got))
	}
	// The same generator seed reproduces the recorded stream.
	ref := NewZipf(r, 0.99, 0.8, 2, 5, 11)
	var op Op
	for i := range got {
		ref.Next(&op)
		if got[i] != op {
			t.Fatalf("op %d: got %+v want %+v", i, got[i], op)
		}
	}
}

func TestTraceCompact(t *testing.T) {
	r := Region{Size: 8 * mb}
	g := NewStream(r, 3, 0.2, 7)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 10000); err != nil {
		t.Fatal(err)
	}
	// Sequential streams delta-encode to a few bytes per op (raw Op is 16).
	if perOp := float64(buf.Len()) / 10000; perOp > 6 {
		t.Fatalf("trace uses %.1f bytes/op, want < 6", perOp)
	}
}

func TestTraceErrors(t *testing.T) {
	r := Region{Size: mb}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewStream(r, 0, 0, 1), 100); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := ReadTrace(bytes.NewReader(raw[:2])); err == nil {
		t.Fatal("truncated magic accepted")
	}
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	ver := append([]byte{}, raw...)
	ver[4] = 9
	if _, err := ReadTrace(bytes.NewReader(ver)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated body accepted")
	}

	// A finite generator that ends early aborts recording.
	lim := NewLimit(NewStream(r, 0, 0, 1), 10)
	if err := WriteTrace(&bytes.Buffer{}, lim, 100); err == nil {
		t.Fatal("short generator accepted")
	}
}

func TestReplay(t *testing.T) {
	ops := []Op{
		{Addr: 0, Kind: Load, Think: 1},
		{Addr: 64, Kind: Store, Think: 2},
	}
	rp := NewReplay(ops, false)
	var op Op
	n := 0
	for rp.Next(&op) {
		n++
	}
	if n != 2 {
		t.Fatalf("replayed %d ops", n)
	}
	loop := NewReplay(ops, true)
	for i := 0; i < 7; i++ {
		if !loop.Next(&op) {
			t.Fatal("looping replay ended")
		}
	}
	if op != ops[0] {
		t.Fatalf("loop position: %+v", op)
	}
}

func TestReplayReader(t *testing.T) {
	r := Region{Size: mb}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewPointerChase(r, 2, 3), 50); err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayReader(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	var op Op
	n := 0
	for rp.Next(&op) {
		if !op.Dep {
			t.Fatal("chase op lost its dependency flag")
		}
		n++
	}
	if n != 50 {
		t.Fatalf("replayed %d", n)
	}

	// Empty trace rejected.
	var empty bytes.Buffer
	if err := WriteTrace(&empty, NewStream(r, 0, 0, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplayReader(&empty, false); err != ErrEmptyTrace {
		t.Fatalf("empty trace: %v", err)
	}
}

// Property: arbitrary op sequences round-trip through the trace format.
func TestTracePropertyRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		ops := make([]Op, len(raw))
		for i, r := range raw {
			ops[i] = Op{
				Addr:  uint64(r) * 64,
				Kind:  Kind(r % 3),
				Dep:   r%5 == 0,
				Think: uint16(r % 1000),
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, NewReplay(ops, false), uint64(len(ops))); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(ops) {
			return false
		}
		for i := range ops {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package workload

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"strings"
	"testing"
)

// validTrace records a small trace to corrupt in the tests below.
func validTrace(t *testing.T, n uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := Region{Base: 0, Size: 1 << 20}
	if err := WriteTrace(&buf, NewStream(r, 3, 0.25, 9), n); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceTruncationSweep feeds every prefix of a valid trace to
// ReadTrace: each must either decode cleanly or return a descriptive
// error — never panic, never return garbage alongside a nil error.
func TestTraceTruncationSweep(t *testing.T) {
	raw := validTrace(t, 64)
	for cut := 0; cut < len(raw); cut++ {
		ops, err := ReadTrace(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at byte %d of %d decoded %d ops without error",
				cut, len(raw), len(ops))
		}
		if !strings.Contains(err.Error(), "workload:") {
			t.Fatalf("truncation at byte %d: undescriptive error %q", cut, err)
		}
	}
	if _, err := ReadTrace(bytes.NewReader(raw)); err != nil {
		t.Fatalf("untruncated trace failed: %v", err)
	}
}

// TestTraceByteFlipSweep flips each byte of a valid trace in turn.  A flip
// may still decode (the format has no checksum), but it must never panic,
// and structured violations must surface as errors.
func TestTraceByteFlipSweep(t *testing.T) {
	raw := validTrace(t, 32)
	for i := range raw {
		for _, flip := range []byte{0xff, 0x80, 0x01} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= flip
			ops, err := ReadTrace(bytes.NewReader(mut))
			if err == nil && uint64(len(ops)) > uint64(len(mut)) {
				t.Fatalf("flip 0x%02x at byte %d decoded more ops (%d) than input bytes (%d)",
					flip, i, len(ops), len(mut))
			}
		}
	}
}

// TestTraceCorruptKind rejects the one flags encoding no writer produces.
func TestTraceCorruptKind(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("PFTR")
	buf.WriteByte(1)   // version
	buf.WriteByte(1)   // count = 1
	buf.WriteByte(0x3) // flags: kind 3 (invalid, writers emit 0-2)
	buf.WriteByte(0)   // address delta 0
	buf.WriteByte(0)   // think 0
	_, err := ReadTrace(&buf)
	if err == nil || !strings.Contains(err.Error(), "invalid kind") {
		t.Fatalf("corrupt kind error = %v", err)
	}
}

// TestTraceThinkOverflow rejects a think value that cannot fit Op.Think.
func TestTraceThinkOverflow(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("PFTR")
	buf.WriteByte(1)
	buf.WriteByte(1)
	buf.WriteByte(0)
	buf.WriteByte(0)
	var scratch [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(scratch[:], 1<<20)
	buf.Write(scratch[:k])
	_, err := ReadTrace(&buf)
	if err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("think overflow error = %v", err)
	}
}

// TestTraceHugeClaimedCount hands ReadTrace a 12-byte file whose header
// claims a billion ops.  It must fail fast on the missing data without
// first allocating a billion-entry slice for the claimed count.
func TestTraceHugeClaimedCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("PFTR")
	buf.WriteByte(1)
	var scratch [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(scratch[:], 1<<30) // at the sanity bound
	buf.Write(scratch[:k])

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadTrace(&buf)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("empty body with huge claimed count decoded")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 100<<20 {
		t.Fatalf("claimed-count preallocation burned %d MiB", grew>>20)
	}

	// Above the sanity bound the count itself is rejected.
	buf.Reset()
	buf.WriteString("PFTR")
	buf.WriteByte(1)
	k = binary.PutUvarint(scratch[:], 1<<40)
	buf.Write(scratch[:k])
	_, err = ReadTrace(&buf)
	if err == nil || !strings.Contains(err.Error(), "claims") {
		t.Fatalf("over-bound claimed count error = %v", err)
	}
}

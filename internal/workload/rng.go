package workload

// rng is a small, fast, deterministic xorshift64* generator.  Workload
// streams must be reproducible across runs for the simulator's determinism
// guarantees, so generators carry their own state rather than sharing
// math/rand globals.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// uint64n returns a uniform value in [0, n).
func (r *rng) uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

package workload

// HashKV is a real open-addressing hash table laid out in the simulated
// address space — the Redis/YCSB substrate upgraded from a statistical
// Zipf approximation to actual probe sequences: a bucket-array lookup with
// linear probing, then the record body read (and rewritten for updates).
type HashKV struct {
	r          Region
	buckets    int
	recordSize uint64 // bytes per record body

	bucketBase uint64
	recordBase uint64
	occupied   []uint32 // key id + 1 stored per bucket (0 = empty)
	keys       int
}

// HashKVSize returns the region bytes needed for n keys with the given
// record size at 50% table load.
func HashKVSize(keys int, recordSize uint64) uint64 {
	return uint64(keys*2)*8 + uint64(keys)*recordSize
}

// NewHashKV builds a table with the given key count (shrinking to fit the
// region) and inserts every key.
func NewHashKV(r Region, keys int, recordSize uint64, seed uint64) *HashKV {
	if recordSize < 64 {
		recordSize = 64
	}
	for HashKVSize(keys, recordSize) > r.Size && keys > 16 {
		keys /= 2
	}
	kv := &HashKV{
		r:          r,
		buckets:    keys * 2,
		recordSize: recordSize,
		bucketBase: r.Base,
		recordBase: r.Base + uint64(keys*2)*8,
		occupied:   make([]uint32, keys*2),
		keys:       keys,
	}
	for k := 0; k < keys; k++ {
		b := kv.bucketOf(uint32(k))
		for kv.occupied[b] != 0 {
			b = (b + 1) % kv.buckets
		}
		kv.occupied[b] = uint32(k) + 1
	}
	return kv
}

// bucketOf hashes a key id to its home bucket.
func (kv *HashKV) bucketOf(key uint32) int {
	h := uint64(key)*0x9e3779b97f4a7c15 + 0x1234567
	h ^= h >> 29
	return int(h % uint64(kv.buckets))
}

// probeSequence returns the bucket indices visited when looking up key.
func (kv *HashKV) probeSequence(key uint32) []int {
	var seq []int
	b := kv.bucketOf(key)
	for {
		seq = append(seq, b)
		if kv.occupied[b] == key+1 {
			return seq
		}
		if kv.occupied[b] == 0 {
			return seq // not found (never happens for inserted keys)
		}
		b = (b + 1) % kv.buckets
	}
}

// bucketAddr returns the address of bucket b.
func (kv *HashKV) bucketAddr(b int) uint64 { return kv.bucketBase + uint64(b)*8 }

// recordAddr returns the base address of key k's record body.
func (kv *HashKV) recordAddr(k uint32) uint64 {
	return kv.recordBase + uint64(k)*kv.recordSize
}

// KVGen issues GET/PUT requests against a HashKV with Zipfian key
// popularity: each request walks the real probe chain (dependent loads),
// then streams the record body, storing it back for updates.
type KVGen struct {
	KV       *HashKV
	ReadFrac float64
	Think    uint16 // request-processing think time

	zipf    *Zipf // used only as a key-rank sampler
	rnd     rng
	pending []Op
}

// NewKVGen returns a key-value request generator over kv.
func NewKVGen(kv *HashKV, theta, readFrac float64, think uint16, seed uint64) *KVGen {
	// A Zipf sampler over the key space; its own region is irrelevant.
	z := NewZipf(Region{Base: 0, Size: uint64(kv.keys) * 64}, theta, 1.0, 1, 0, seed)
	return &KVGen{KV: kv, ReadFrac: readFrac, Think: think, zipf: z, rnd: newRNG(seed ^ 0xabcdef)}
}

// Next implements Generator.
func (g *KVGen) Next(op *Op) bool {
	if len(g.pending) > 0 {
		*op = g.pending[0]
		g.pending = g.pending[1:]
		return true
	}
	key := uint32(g.zipf.sample()) % uint32(g.KV.keys)
	isWrite := g.rnd.float64() >= g.ReadFrac

	// Probe chain: each bucket load depends on the previous comparison.
	seq := g.KV.probeSequence(key)
	for i, b := range seq {
		think := uint16(1)
		if i == 0 {
			think = g.Think // per-request processing happens up front
		}
		g.pending = append(g.pending, Op{
			Addr: g.KV.bucketAddr(b), Kind: Load, Dep: true, Think: think,
		})
	}
	// Record body: line-granular sequential access, written back on PUT.
	base := g.KV.recordAddr(key)
	for off := uint64(0); off < g.KV.recordSize; off += 64 {
		kind := Load
		if isWrite {
			kind = Store
		}
		dep := off == 0 // the body address depends on the probe result
		g.pending = append(g.pending, Op{Addr: base + off, Kind: kind, Dep: dep && kind == Load, Think: 1})
	}

	*op = g.pending[0]
	g.pending = g.pending[1:]
	return true
}

package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace recording and replay: capture a generator's op stream into a
// compact binary form and play it back later — the way hardware-trace
// methodologies feed recorded access streams to simulators.  Addresses are
// zigzag-delta encoded (streams move in small steps), so traces compress
// well.
//
// Format: magic "PFTR", version byte, varint op count, then per op a flags
// byte (bits 0-1 kind, bit 2 dep), a signed-varint address delta from the
// previous op, and a varint think.

const traceMagic = "PFTR"
const traceVersion = 1

// WriteTrace records n operations from g into w.
func WriteTrace(w io.Writer, g Generator, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	if err := put(n); err != nil {
		return err
	}
	var op Op
	var prev uint64
	for i := uint64(0); i < n; i++ {
		if !g.Next(&op) {
			return fmt.Errorf("workload: generator ended after %d of %d ops", i, n)
		}
		flags := byte(op.Kind) & 0x3
		if op.Dep {
			flags |= 0x4
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		delta := int64(op.Addr) - int64(prev)
		k := binary.PutVarint(scratch[:], delta)
		if _, err := bw.Write(scratch[:k]); err != nil {
			return err
		}
		prev = op.Addr
		if err := put(uint64(op.Think)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace decodes a full trace into memory.
func ReadTrace(r io.Reader) ([]Op, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace version: %w", err)
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d", ver)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace op count: %w", err)
	}
	const sanityMax = 1 << 30
	if n > sanityMax {
		return nil, fmt.Errorf("workload: trace claims %d ops", n)
	}
	// Preallocate conservatively: the count is attacker-controlled (a short
	// header can claim 2^30 ops), so trust it only up to a modest bound and
	// let append grow the slice if the data really is there.
	preAlloc := n
	if preAlloc > 1<<20 {
		preAlloc = 1 << 20
	}
	ops := make([]Op, 0, preAlloc)
	var prev uint64
	for i := uint64(0); i < n; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("workload: op %d: %w", i, err)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("workload: op %d address: %w", i, err)
		}
		think, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("workload: op %d think: %w", i, err)
		}
		if think > 0xffff {
			return nil, fmt.Errorf("workload: op %d think %d overflows", i, think)
		}
		addr := uint64(int64(prev) + delta)
		prev = addr
		kind := Kind(flags & 0x3)
		if kind > Prefetch {
			return nil, fmt.Errorf("workload: op %d has invalid kind %d", i, kind)
		}
		ops = append(ops, Op{
			Addr:  addr,
			Kind:  kind,
			Dep:   flags&0x4 != 0,
			Think: uint16(think),
		})
	}
	return ops, nil
}

// Replay plays back a recorded op slice, optionally looping forever.
type Replay struct {
	Ops  []Op
	Loop bool

	i int
}

// NewReplay wraps ops as a generator.
func NewReplay(ops []Op, loop bool) *Replay { return &Replay{Ops: ops, Loop: loop} }

// ErrEmptyTrace is returned by NewReplayReader for zero-op traces.
var ErrEmptyTrace = errors.New("workload: empty trace")

// NewReplayReader decodes a trace from r and wraps it for replay.
func NewReplayReader(r io.Reader, loop bool) (*Replay, error) {
	ops, err := ReadTrace(r)
	if err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, ErrEmptyTrace
	}
	return NewReplay(ops, loop), nil
}

// Next implements Generator.
func (r *Replay) Next(op *Op) bool {
	if r.i >= len(r.Ops) {
		if !r.Loop || len(r.Ops) == 0 {
			return false
		}
		r.i = 0
	}
	*op = r.Ops[r.i]
	r.i++
	return true
}

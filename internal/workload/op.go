// Package workload generates the memory-access streams that drive the
// simulator: synthetic kernels reproducing the access shape of the paper's
// benchmark suites (SPEC CPU2017, PARSEC, SPLASH-2x, GAP, Redis/YCSB) plus
// the MBW and GUPS microbenchmarks used in the evaluation, and a catalog of
// the 77 applications of Table 6 with their working-set sizes.
package workload

// Kind is the architectural kind of one memory operation.
type Kind uint8

// Operation kinds.
const (
	Load     Kind = iota // demand data read
	Store                // demand data write
	Prefetch             // explicit software prefetch (PREFETCHT0-style)
)

// Op is one memory operation of an instruction stream.  Think is the number
// of non-memory instructions executed before this operation (modeling
// compute between accesses); Dep marks a load whose result the next
// instruction depends on (pointer-chase style), which forces the core to
// wait for its completion rather than overlapping it.
type Op struct {
	Addr  uint64
	Kind  Kind
	Dep   bool
	Think uint16
}

// Generator produces an operation stream.  Next fills op and reports
// whether the stream continues; generators are infinite unless documented
// otherwise (the simulator bounds runs by cycles, not by op count).
type Generator interface {
	Next(op *Op) bool
}

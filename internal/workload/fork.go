package workload

import "fmt"

// Forkable is a Generator whose mutable state can be duplicated, so a
// warmed workload can continue independently on several simulated machines
// (the checkpoint/fork layer in internal/sim).  Fork returns a new
// generator of the same concrete type positioned exactly where the
// receiver is: both produce byte-identical op streams from this point on.
// Immutable substrate (CSR graphs, hash tables, recorded traces) is shared
// by reference — forking costs the mutable state only.
//
// Fork returns nil when the generator cannot be forked (a composed
// generator wrapping a non-Forkable); callers should use the package-level
// Fork, which turns that into a descriptive error.
//
// CopyStateTo copies the receiver's mutable state into dst, reusing dst's
// existing buffers, and reports whether dst was compatible (same concrete
// type and composition shape).  It exists so a restore-into-existing-machine
// path can re-position an already-allocated generator without allocating.
type Forkable interface {
	Generator
	Fork() Generator
	CopyStateTo(dst Generator) bool
}

// Fork duplicates g, returning a descriptive error when g (or any
// generator it wraps) does not implement Forkable.
func Fork(g Generator) (Generator, error) {
	if g == nil {
		return nil, nil
	}
	f, ok := g.(Forkable)
	if !ok {
		return nil, fmt.Errorf("workload: generator %T is not Forkable", g)
	}
	c := f.Fork()
	if c == nil {
		return nil, fmt.Errorf("workload: generator %T wraps a non-Forkable generator", g)
	}
	return c, nil
}

// CopyState copies src's mutable state into dst (see Forkable.CopyStateTo),
// reporting whether dst was compatible.  Both nil counts as success.
func CopyState(src, dst Generator) bool {
	if src == nil || dst == nil {
		return src == nil && dst == nil
	}
	f, ok := src.(Forkable)
	if !ok {
		return false
	}
	return f.CopyStateTo(dst)
}

// ---------------------------------------------------------------------------
// Leaf generators: pure value state, so a dereferenced copy forks them.
// ---------------------------------------------------------------------------

// Fork implements Forkable.
func (g *Stream) Fork() Generator { c := *g; return &c }

// CopyStateTo implements Forkable.
func (g *Stream) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*Stream)
	if !ok {
		return false
	}
	*d = *g
	return true
}

// Fork implements Forkable.
func (g *Stencil) Fork() Generator { c := *g; return &c }

// CopyStateTo implements Forkable.
func (g *Stencil) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*Stencil)
	if !ok {
		return false
	}
	*d = *g
	return true
}

// Fork implements Forkable.
func (g *PointerChase) Fork() Generator { c := *g; return &c }

// CopyStateTo implements Forkable.
func (g *PointerChase) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*PointerChase)
	if !ok {
		return false
	}
	*d = *g
	return true
}

// Fork implements Forkable.
func (g *GUPS) Fork() Generator { c := *g; return &c }

// CopyStateTo implements Forkable.
func (g *GUPS) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*GUPS)
	if !ok {
		return false
	}
	*d = *g
	return true
}

// Fork implements Forkable.
func (g *Zipf) Fork() Generator { c := *g; return &c }

// CopyStateTo implements Forkable.
func (g *Zipf) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*Zipf)
	if !ok {
		return false
	}
	*d = *g
	return true
}

// Fork implements Forkable.
func (g *Graph) Fork() Generator { c := *g; return &c }

// CopyStateTo implements Forkable.
func (g *Graph) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*Graph)
	if !ok {
		return false
	}
	*d = *g
	return true
}

// ---------------------------------------------------------------------------
// Composed generators: fork the wrapped generators, share immutable tables.
// ---------------------------------------------------------------------------

// Fork implements Forkable.
func (m *Mix) Fork() Generator {
	a, err := Fork(m.A)
	if err != nil {
		return nil
	}
	b, err := Fork(m.B)
	if err != nil {
		return nil
	}
	c := *m
	c.A, c.B = a, b
	return &c
}

// CopyStateTo implements Forkable.
func (m *Mix) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*Mix)
	if !ok || !CopyState(m.A, d.A) || !CopyState(m.B, d.B) {
		return false
	}
	d.Frac = m.Frac
	d.acc = m.acc
	return true
}

// Fork implements Forkable.
func (p *Phased) Fork() Generator {
	c := *p
	c.Phases = make([]Phase, len(p.Phases))
	for i, ph := range p.Phases {
		g, err := Fork(ph.Gen)
		if err != nil {
			return nil
		}
		c.Phases[i] = Phase{Gen: g, Ops: ph.Ops}
	}
	return &c
}

// CopyStateTo implements Forkable.
func (p *Phased) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*Phased)
	if !ok || len(d.Phases) != len(p.Phases) {
		return false
	}
	for i := range p.Phases {
		if !CopyState(p.Phases[i].Gen, d.Phases[i].Gen) {
			return false
		}
		d.Phases[i].Ops = p.Phases[i].Ops
	}
	d.idx = p.idx
	d.left = p.left
	return true
}

// Fork implements Forkable.
func (l *Limit) Fork() Generator {
	g, err := Fork(l.G)
	if err != nil {
		return nil
	}
	c := *l
	c.G = g
	return &c
}

// CopyStateTo implements Forkable.
func (l *Limit) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*Limit)
	if !ok || !CopyState(l.G, d.G) {
		return false
	}
	d.N = l.N
	d.done = l.done
	return true
}

// Fork implements Forkable.
func (c *Counting) Fork() Generator {
	g, err := Fork(c.G)
	if err != nil {
		return nil
	}
	n := *c
	n.G = g
	return &n
}

// CopyStateTo implements Forkable.
func (c *Counting) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*Counting)
	if !ok || !CopyState(c.G, d.G) {
		return false
	}
	d.Loads, d.Stores, d.Prefetches = c.Loads, c.Stores, c.Prefetches
	return true
}

// ---------------------------------------------------------------------------
// Table-backed generators: the substrate (CSR graph, hash table, recorded
// trace) is immutable after construction and shared; only traversal state
// is copied.
// ---------------------------------------------------------------------------

// Fork implements Forkable.  The CSR graph is shared (BFSGen never writes
// it); the visited set and frontier queue are deep-copied.
func (b *BFSGen) Fork() Generator {
	c := *b
	c.visited = append([]bool(nil), b.visited...)
	c.queue = append([]int(nil), b.queue...)
	return &c
}

// CopyStateTo implements Forkable.
func (b *BFSGen) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*BFSGen)
	if !ok {
		return false
	}
	vis, q := d.visited, d.queue
	*d = *b
	d.visited = append(vis[:0], b.visited...)
	d.queue = append(q[:0], b.queue...)
	return true
}

// Fork implements Forkable.  The hash table is shared (KVGen never writes
// it); the key sampler and pending-op queue are deep-copied.
func (g *KVGen) Fork() Generator {
	c := *g
	if g.zipf != nil {
		z := *g.zipf
		c.zipf = &z
	}
	c.pending = append([]Op(nil), g.pending...)
	return &c
}

// CopyStateTo implements Forkable.
func (g *KVGen) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*KVGen)
	if !ok || (g.zipf == nil) != (d.zipf == nil) {
		return false
	}
	z, pend := d.zipf, d.pending
	*d = *g
	if g.zipf != nil {
		*z = *g.zipf
		d.zipf = z
	}
	d.pending = append(pend[:0], g.pending...)
	return true
}

// Fork implements Forkable.  The decoded op slice is shared.
func (r *Replay) Fork() Generator { c := *r; return &c }

// CopyStateTo implements Forkable.
func (r *Replay) CopyStateTo(dst Generator) bool {
	d, ok := dst.(*Replay)
	if !ok {
		return false
	}
	*d = *r
	return true
}

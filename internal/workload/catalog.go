package workload

import "fmt"

// Archetype is the memory-access shape class of an application.  The
// catalog maps each of the paper's 77 applications (Table 6) to an
// archetype with per-application parameters, reproducing the suite's
// locality structure, read/write mix, and prefetch-friendliness.
type Archetype uint8

// Access-shape archetypes.
const (
	ShapeStream  Archetype = iota // sequential sweeps (STREAM/MBW-like)
	ShapeStencil                  // multi-array structured-grid sweeps
	ShapeChase                    // dependent pointer chasing
	ShapeGraph                    // edge scans + random vertex lookups
	ShapeZipf                     // keyed KV access, Zipfian popularity
	ShapeGUPS                     // random read-modify-write updates
	ShapePhased                   // alternating stream/chase phases
	ShapeBFSReal                  // actual BFS over a CSR graph in the region
	ShapeKVReal                   // actual open-addressing hash-table KV store
)

// String returns the archetype name.
func (a Archetype) String() string {
	switch a {
	case ShapeStream:
		return "stream"
	case ShapeStencil:
		return "stencil"
	case ShapeChase:
		return "chase"
	case ShapeGraph:
		return "graph"
	case ShapeZipf:
		return "zipf"
	case ShapeGUPS:
		return "gups"
	case ShapePhased:
		return "phased"
	case ShapeBFSReal:
		return "bfs-csr"
	case ShapeKVReal:
		return "kv-hash"
	}
	return fmt.Sprintf("Archetype(%d)", uint8(a))
}

// App is one catalog entry.
type App struct {
	Name         string  // Table 6 short code (e.g. "FOTS", "BFS", "MBW")
	Full         string  // full benchmark name
	Suite        string  // originating suite
	WorkingSetMB float64 // Table 6 working-set size
	Shape        Archetype

	Think     uint16  // non-memory instructions between accesses
	StoreFrac float64 // store fraction (stream)
	Arrays    int     // stencil arrays
	ReadFrac  float64 // zipf read fraction
	RunLen    int     // graph edge-scan run length
}

// Generator instantiates the application's access stream over region r.
func (a App) Generator(r Region, seed uint64) Generator {
	switch a.Shape {
	case ShapeStencil:
		arrays := a.Arrays
		if arrays == 0 {
			arrays = 4
		}
		g := NewStencil(r, arrays, a.Think)
		g.Reuse = 4 // word-granular grid sweeps
		return g
	case ShapeChase:
		return NewPointerChase(r, a.Think, seed)
	case ShapeGraph:
		run := a.RunLen
		if run == 0 {
			run = 12
		}
		return NewGraph(r, run, a.Think, seed)
	case ShapeZipf:
		rf := a.ReadFrac
		if rf == 0 {
			rf = 0.95
		}
		return NewZipf(r, 0.99, rf, 4, a.Think, seed)
	case ShapeGUPS:
		return NewGUPS(r, a.Think, 0, 0, seed)
	case ShapeBFSReal:
		// Size the graph to the region: ~24 bytes per vertex per unit
		// degree across the three arrays.
		deg := a.RunLen
		if deg == 0 {
			deg = 12
		}
		v := int(r.Size / (uint64(deg)*8 + 16))
		g := NewCSRGraph(r, v, deg, seed)
		return NewBFS(g, a.Think, seed)
	case ShapeKVReal:
		rec := uint64(256)
		keys := int(r.Size / (rec + 16))
		kv := NewHashKV(r, keys, rec, seed)
		rf := a.ReadFrac
		if rf == 0 {
			rf = 0.95
		}
		return NewKVGen(kv, 0.99, rf, a.Think, seed)
	case ShapePhased:
		return NewPhased(
			Phase{Gen: NewStream(r, a.Think, a.StoreFrac, seed), Ops: 20000},
			Phase{Gen: NewPointerChase(r, a.Think, seed+1), Ops: 8000},
			Phase{Gen: NewStream(r, a.Think, a.StoreFrac+0.3, seed+2), Ops: 12000},
		)
	default:
		g := NewStream(r, a.Think, a.StoreFrac, seed)
		g.Reuse = 4 // word-granular sequential access
		return g
	}
}

// catalog is the full Table 6 application list plus the Redis/YCSB and
// microbenchmark entries the evaluation uses.
var catalog = []App{
	// SPEC CPU2017 rate.
	{Name: "PER", Full: "500.perlbench_r", Suite: "SPECrate2017", WorkingSetMB: 202.5, Shape: ShapePhased, Think: 14, StoreFrac: 0.2},
	{Name: "GCC", Full: "502.gcc_r", Suite: "SPECrate2017", WorkingSetMB: 1366.9, Shape: ShapePhased, Think: 10, StoreFrac: 0.15},
	{Name: "BWA", Full: "503.bwaves_r", Suite: "SPECrate2017", WorkingSetMB: 822.3, Shape: ShapeStencil, Think: 6, Arrays: 5},
	{Name: "MCF", Full: "505.mcf_r", Suite: "SPECrate2017", WorkingSetMB: 609.1, Shape: ShapeChase, Think: 6},
	{Name: "CAC", Full: "507.cactuBSSN_r", Suite: "SPECrate2017", WorkingSetMB: 789.5, Shape: ShapeStencil, Think: 10, Arrays: 8},
	{Name: "NAM", Full: "508.namd_r", Suite: "SPECrate2017", WorkingSetMB: 162.5, Shape: ShapeStream, Think: 18, StoreFrac: 0.1},
	{Name: "PAR", Full: "510.parest_r", Suite: "SPECrate2017", WorkingSetMB: 419.4, Shape: ShapeStencil, Think: 12, Arrays: 3},
	{Name: "POV", Full: "511.povray_r", Suite: "SPECrate2017", WorkingSetMB: 7.0, Shape: ShapeStream, Think: 30, StoreFrac: 0.1},
	{Name: "LBM", Full: "519.lbm_r", Suite: "SPECrate2017", WorkingSetMB: 410.5, Shape: ShapeStencil, Think: 4, Arrays: 2},
	{Name: "OMN", Full: "520.omnetpp_r", Suite: "SPECrate2017", WorkingSetMB: 242.0, Shape: ShapeChase, Think: 12},
	{Name: "WRF", Full: "521.wrf_r", Suite: "SPECrate2017", WorkingSetMB: 178.8, Shape: ShapeStencil, Think: 12, Arrays: 6},
	{Name: "XAL", Full: "523.xalancbmk_r", Suite: "SPECrate2017", WorkingSetMB: 481.0, Shape: ShapeChase, Think: 10},
	{Name: "X264", Full: "525.x264_r", Suite: "SPECrate2017", WorkingSetMB: 156.0, Shape: ShapeStream, Think: 16, StoreFrac: 0.3},
	{Name: "BLE", Full: "526.blender_r", Suite: "SPECrate2017", WorkingSetMB: 633.7, Shape: ShapeStream, Think: 20, StoreFrac: 0.2},
	{Name: "CAM", Full: "527.cam4_r", Suite: "SPECrate2017", WorkingSetMB: 856.0, Shape: ShapeStencil, Think: 10, Arrays: 6},
	{Name: "DEEP", Full: "531.deepsjeng_r", Suite: "SPECrate2017", WorkingSetMB: 699.5, Shape: ShapeChase, Think: 16},
	{Name: "IMA", Full: "538.imagick_r", Suite: "SPECrate2017", WorkingSetMB: 286.5, Shape: ShapeStream, Think: 22, StoreFrac: 0.25},
	{Name: "LEE", Full: "541.leela_r", Suite: "SPECrate2017", WorkingSetMB: 24.7, Shape: ShapeChase, Think: 24},
	{Name: "NAB", Full: "544.nab_r", Suite: "SPECrate2017", WorkingSetMB: 146.3, Shape: ShapeStream, Think: 18, StoreFrac: 0.15},
	{Name: "EXC", Full: "548.exchange2_r", Suite: "SPECrate2017", WorkingSetMB: 2.5, Shape: ShapeStream, Think: 34, StoreFrac: 0.2},
	{Name: "FOT", Full: "549.fotonik3d_r", Suite: "SPECrate2017", WorkingSetMB: 848.4, Shape: ShapeStencil, Think: 5, Arrays: 6},
	{Name: "ROMS", Full: "554.roms_r", Suite: "SPECrate2017", WorkingSetMB: 841.6, Shape: ShapeStencil, Think: 6, Arrays: 7},
	{Name: "XZ", Full: "557.xz_r", Suite: "SPECrate2017", WorkingSetMB: 775.4, Shape: ShapeStream, Think: 12, StoreFrac: 0.35},

	// SPEC CPU2017 speed.
	{Name: "PERS", Full: "600.perlbench_s", Suite: "SPECspeed2017", WorkingSetMB: 202.5, Shape: ShapePhased, Think: 14, StoreFrac: 0.2},
	{Name: "GCCS", Full: "602.gcc_s", Suite: "SPECspeed2017", WorkingSetMB: 7620.2, Shape: ShapePhased, Think: 10, StoreFrac: 0.15},
	{Name: "BWAS", Full: "603.bwaves_s", Suite: "SPECspeed2017", WorkingSetMB: 11467.1, Shape: ShapeStencil, Think: 6, Arrays: 5},
	{Name: "MCFS", Full: "605.mcf_s", Suite: "SPECspeed2017", WorkingSetMB: 3960.8, Shape: ShapeChase, Think: 6},
	{Name: "CACS", Full: "607.cactuBSSN_s", Suite: "SPECspeed2017", WorkingSetMB: 6724.0, Shape: ShapeStencil, Think: 10, Arrays: 8},
	{Name: "LBMS", Full: "619.lbm_s", Suite: "SPECspeed2017", WorkingSetMB: 3224.5, Shape: ShapeStencil, Think: 4, Arrays: 2},
	{Name: "OMNS", Full: "620.omnetpp_s", Suite: "SPECspeed2017", WorkingSetMB: 242.3, Shape: ShapeChase, Think: 12},
	{Name: "WRFS", Full: "621.wrf_s", Suite: "SPECspeed2017", WorkingSetMB: 177.8, Shape: ShapeStencil, Think: 12, Arrays: 6},
	{Name: "XALS", Full: "623.xalancbmk_s", Suite: "SPECspeed2017", WorkingSetMB: 481.8, Shape: ShapeChase, Think: 10},
	{Name: "X264S", Full: "625.x264_s", Suite: "SPECspeed2017", WorkingSetMB: 156.0, Shape: ShapeStream, Think: 16, StoreFrac: 0.3},
	{Name: "CAMS", Full: "627.cam4_s", Suite: "SPECspeed2017", WorkingSetMB: 873.6, Shape: ShapeStencil, Think: 10, Arrays: 6},
	{Name: "POPS", Full: "628.pop2_s", Suite: "SPECspeed2017", WorkingSetMB: 1434.3, Shape: ShapeStencil, Think: 10, Arrays: 6},
	{Name: "DEES", Full: "631.deepsjeng_s", Suite: "SPECspeed2017", WorkingSetMB: 6879.5, Shape: ShapeChase, Think: 16},
	{Name: "IMAS", Full: "638.imagick_s", Suite: "SPECspeed2017", WorkingSetMB: 7007.8, Shape: ShapeStream, Think: 22, StoreFrac: 0.25},
	{Name: "LEES", Full: "641.leela_s", Suite: "SPECspeed2017", WorkingSetMB: 25.0, Shape: ShapeChase, Think: 24},
	{Name: "NABS", Full: "644.nab_s", Suite: "SPECspeed2017", WorkingSetMB: 561.3, Shape: ShapeStream, Think: 18, StoreFrac: 0.15},
	{Name: "EXCS", Full: "648.exchange2_s", Suite: "SPECspeed2017", WorkingSetMB: 2.5, Shape: ShapeStream, Think: 34, StoreFrac: 0.2},
	{Name: "FOTS", Full: "649.fotonik3d_s", Suite: "SPECspeed2017", WorkingSetMB: 9642.8, Shape: ShapeStencil, Think: 5, Arrays: 6},
	{Name: "ROMSS", Full: "654.roms_s", Suite: "SPECspeed2017", WorkingSetMB: 10386.9, Shape: ShapeStencil, Think: 6, Arrays: 7},
	{Name: "XZS", Full: "657.xz_s", Suite: "SPECspeed2017", WorkingSetMB: 15344.0, Shape: ShapeStream, Think: 12, StoreFrac: 0.35},

	// PARSEC.
	{Name: "BLACK", Full: "blackscholes", Suite: "PARSEC", WorkingSetMB: 612.0, Shape: ShapeStream, Think: 20, StoreFrac: 0.15},
	{Name: "BODY", Full: "bodytrack", Suite: "PARSEC", WorkingSetMB: 32.9, Shape: ShapeStream, Think: 24, StoreFrac: 0.2},
	{Name: "FACE", Full: "facesim", Suite: "PARSEC", WorkingSetMB: 304.3, Shape: ShapeStencil, Think: 10, Arrays: 5},
	{Name: "FER", Full: "ferret", Suite: "PARSEC", WorkingSetMB: 97.9, Shape: ShapeGraph, Think: 14, RunLen: 10},
	{Name: "FLU", Full: "fluidanimate", Suite: "PARSEC", WorkingSetMB: 519.5, Shape: ShapeStencil, Think: 8, Arrays: 4},
	{Name: "FRE", Full: "freqmine", Suite: "PARSEC", WorkingSetMB: 631.9, Shape: ShapeChase, Think: 10},
	{Name: "RAY", Full: "raytrace", Suite: "PARSEC", WorkingSetMB: 1282.7, Shape: ShapeGraph, Think: 14, RunLen: 6},
	{Name: "SWA", Full: "swaptions", Suite: "PARSEC", WorkingSetMB: 5.5, Shape: ShapeStream, Think: 30, StoreFrac: 0.15},
	{Name: "PVIPS", Full: "vips", Suite: "PARSEC", WorkingSetMB: 37.5, Shape: ShapeStream, Think: 16, StoreFrac: 0.3},
	{Name: "PX264", Full: "x264", Suite: "PARSEC", WorkingSetMB: 80.0, Shape: ShapeStream, Think: 16, StoreFrac: 0.3},
	{Name: "CAN", Full: "canneal", Suite: "PARSEC", WorkingSetMB: 850.5, Shape: ShapeChase, Think: 8},
	{Name: "DEDUP", Full: "dedup", Suite: "PARSEC", WorkingSetMB: 1443.0, Shape: ShapeStream, Think: 10, StoreFrac: 0.4},
	{Name: "STREAM", Full: "streamcluster", Suite: "PARSEC", WorkingSetMB: 109.0, Shape: ShapeStream, Think: 8, StoreFrac: 0.1},

	// SPLASH-2x.
	{Name: "BARN", Full: "barnes", Suite: "SPLASH2X", WorkingSetMB: 1584.0, Shape: ShapeGraph, Think: 12, RunLen: 8},
	{Name: "OCEAN", Full: "ocean_cp", Suite: "SPLASH2X", WorkingSetMB: 3546.5, Shape: ShapeStencil, Think: 6, Arrays: 6},
	{Name: "RADIO", Full: "radiosity", Suite: "SPLASH2X", WorkingSetMB: 1442.5, Shape: ShapeGraph, Think: 14, RunLen: 6},
	{Name: "SRAY", Full: "raytrace", Suite: "SPLASH2X", WorkingSetMB: 22.5, Shape: ShapeGraph, Think: 16, RunLen: 6},
	{Name: "VOL", Full: "volrend", Suite: "SPLASH2X", WorkingSetMB: 54.0, Shape: ShapeGraph, Think: 14, RunLen: 10},
	{Name: "WATN", Full: "water_nsquared", Suite: "SPLASH2X", WorkingSetMB: 28.5, Shape: ShapeStream, Think: 20, StoreFrac: 0.2},
	{Name: "WATS", Full: "water_spatial", Suite: "SPLASH2X", WorkingSetMB: 669.5, Shape: ShapeStencil, Think: 14, Arrays: 4},
	{Name: "FFT", Full: "fft", Suite: "SPLASH2X", WorkingSetMB: 12291.0, Shape: ShapeStencil, Think: 6, Arrays: 2},
	{Name: "LUCB", Full: "lu_cb", Suite: "SPLASH2X", WorkingSetMB: 502.0, Shape: ShapeStencil, Think: 8, Arrays: 3},
	{Name: "LUNCB", Full: "lu_ncb", Suite: "SPLASH2X", WorkingSetMB: 501.5, Shape: ShapeStencil, Think: 8, Arrays: 3},
	{Name: "RADIX", Full: "radix", Suite: "SPLASH2X", WorkingSetMB: 4097.5, Shape: ShapeGUPS, Think: 4},

	// GAP benchmark suite.
	{Name: "BFS", Full: "Breadth-First Search", Suite: "GAPBS", WorkingSetMB: 15778.0, Shape: ShapeGraph, Think: 4, RunLen: 2},
	{Name: "SSSP", Full: "Single-Source Shortest Paths", Suite: "GAPBS", WorkingSetMB: 36456.3, Shape: ShapeGraph, Think: 6, RunLen: 2},
	{Name: "PR", Full: "PageRank", Suite: "GAPBS", WorkingSetMB: 12616.1, Shape: ShapeGraph, Think: 4, RunLen: 32},
	{Name: "CC", Full: "Connected Components", Suite: "GAPBS", WorkingSetMB: 12381.1, Shape: ShapeGraph, Think: 4, RunLen: 2},
	{Name: "BC", Full: "Betweenness Centrality", Suite: "GAPBS", WorkingSetMB: 13394.5, Shape: ShapeGraph, Think: 6, RunLen: 2},
	{Name: "TC", Full: "Triangle Counting", Suite: "GAPBS", WorkingSetMB: 21027.0, Shape: ShapeGraph, Think: 4, RunLen: 3},

	// Key-value serving (Redis + YCSB core workloads).
	{Name: "REDIS", Full: "redis", Suite: "KV", WorkingSetMB: 2048.0, Shape: ShapeZipf, Think: 40, ReadFrac: 0.9},
	{Name: "YCSB-A", Full: "YCSB workload A (50/50)", Suite: "KV", WorkingSetMB: 4096.0, Shape: ShapeZipf, Think: 30, ReadFrac: 0.5},
	{Name: "YCSB-B", Full: "YCSB workload B (95/5)", Suite: "KV", WorkingSetMB: 4096.0, Shape: ShapeZipf, Think: 30, ReadFrac: 0.95},
	{Name: "YCSB-C", Full: "YCSB workload C (read only)", Suite: "KV", WorkingSetMB: 4096.0, Shape: ShapeZipf, Think: 30, ReadFrac: 1.0},

	// Real-algorithm substrates: an actual BFS over an in-region CSR graph
	// and an actual open-addressing hash-table KV store (the GAP and
	// Redis/YCSB substrates beyond their statistical approximations).
	{Name: "BFS-CSR", Full: "BFS over a CSR graph", Suite: "GAPBS", WorkingSetMB: 15778.0, Shape: ShapeBFSReal, Think: 4, RunLen: 16},
	{Name: "PR-CSR", Full: "PageRank-shaped CSR sweep", Suite: "GAPBS", WorkingSetMB: 12616.1, Shape: ShapeBFSReal, Think: 4, RunLen: 32},
	{Name: "REDIS-HT", Full: "redis over a hash table", Suite: "KV", WorkingSetMB: 2048.0, Shape: ShapeKVReal, Think: 40, ReadFrac: 0.9},
	{Name: "YCSB-A-HT", Full: "YCSB A over a hash table", Suite: "KV", WorkingSetMB: 4096.0, Shape: ShapeKVReal, Think: 30, ReadFrac: 0.5},
	{Name: "YCSB-C-HT", Full: "YCSB C over a hash table", Suite: "KV", WorkingSetMB: 4096.0, Shape: ShapeKVReal, Think: 30, ReadFrac: 1.0},

	// Microbenchmarks used by the evaluation (Cases 5 and 7).
	{Name: "MBW", Full: "memory bandwidth sweep", Suite: "micro", WorkingSetMB: 1024.0, Shape: ShapeStream, Think: 0, StoreFrac: 0.25},
	{Name: "GUPS", Full: "giga-updates per second", Suite: "micro", WorkingSetMB: 4096.0, Shape: ShapeGUPS, Think: 0},
}

// Catalog returns the application catalog (shared; callers must not
// modify).
func Catalog() []App { return catalog }

// Lookup finds an application by its short code.
func Lookup(name string) (App, bool) {
	for _, a := range catalog {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Names returns all short codes in catalog order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, a := range catalog {
		out[i] = a.Name
	}
	return out
}

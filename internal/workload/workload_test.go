package workload

import (
	"testing"
	"testing/quick"
)

const (
	kb = 1 << 10
	mb = 1 << 20
)

// drain pulls n ops from g, failing the test if the stream ends early, and
// checks every address stays inside r.
func drain(t *testing.T, g Generator, r Region, n int) []Op {
	t.Helper()
	out := make([]Op, 0, n)
	var op Op
	for i := 0; i < n; i++ {
		if !g.Next(&op) {
			t.Fatalf("stream ended after %d ops", i)
		}
		if op.Addr < r.Base || op.Addr >= r.Base+r.Size {
			t.Fatalf("op %d escaped region: addr=%#x region=[%#x,%#x)", i, op.Addr, r.Base, r.Base+r.Size)
		}
		out = append(out, op)
	}
	return out
}

func TestStreamSequential(t *testing.T) {
	r := Region{Base: 0x1000, Size: 64 * kb}
	g := NewStream(r, 3, 0, 1)
	ops := drain(t, g, r, 100)
	for i, op := range ops {
		if op.Kind != Load || op.Dep {
			t.Fatalf("op %d: %+v", i, op)
		}
		if op.Addr != r.Base+uint64(i)*64 {
			t.Fatalf("op %d addr = %#x", i, op.Addr)
		}
	}
}

func TestStreamWraps(t *testing.T) {
	r := Region{Base: 0, Size: 4 * 64}
	g := NewStream(r, 0, 0, 1)
	ops := drain(t, g, r, 9)
	if ops[4].Addr != ops[0].Addr {
		t.Fatalf("no wraparound: %#x vs %#x", ops[4].Addr, ops[0].Addr)
	}
}

func TestStreamStoreFraction(t *testing.T) {
	r := Region{Size: mb}
	g := NewStream(r, 0, 0.3, 7)
	stores := 0
	ops := drain(t, g, r, 10000)
	for _, op := range ops {
		if op.Kind == Store {
			stores++
		}
	}
	if stores < 2500 || stores > 3500 {
		t.Fatalf("store fraction: %d/10000", stores)
	}
}

func TestStreamSWPF(t *testing.T) {
	r := Region{Size: mb}
	g := NewStream(r, 0, 0, 1)
	g.SWPF = 8
	ops := drain(t, g, r, 10)
	if ops[0].Kind != Prefetch || ops[1].Kind != Load {
		t.Fatalf("prefetch interleave broken: %+v %+v", ops[0], ops[1])
	}
	if ops[0].Addr != ops[1].Addr+8*64 {
		t.Fatalf("prefetch distance: pf=%#x load=%#x", ops[0].Addr, ops[1].Addr)
	}
}

func TestStencilPattern(t *testing.T) {
	r := Region{Size: 4 * mb}
	g := NewStencil(r, 4, 2)
	ops := drain(t, g, r, 8)
	// Three loads then one store, from four distinct quarters.
	for i := 0; i < 3; i++ {
		if ops[i].Kind != Load {
			t.Fatalf("op %d kind = %v", i, ops[i].Kind)
		}
	}
	if ops[3].Kind != Store {
		t.Fatalf("op 3 kind = %v", ops[3].Kind)
	}
	quarter := r.Size / 4
	for i := 0; i < 4; i++ {
		if ops[i].Addr/quarter != uint64(i) {
			t.Fatalf("op %d in wrong array: addr=%#x", i, ops[i].Addr)
		}
	}
	// Second grid point advances each stream by one line.
	if ops[4].Addr != ops[0].Addr+64 {
		t.Fatalf("grid advance: %#x -> %#x", ops[0].Addr, ops[4].Addr)
	}
}

func TestPointerChaseDependent(t *testing.T) {
	r := Region{Size: 16 * mb}
	g := NewPointerChase(r, 5, 3)
	ops := drain(t, g, r, 1000)
	distinct := make(map[uint64]bool)
	for _, op := range ops {
		if op.Kind != Load || !op.Dep {
			t.Fatalf("chase op: %+v", op)
		}
		distinct[op.Addr] = true
	}
	if len(distinct) < 900 {
		t.Fatalf("chase revisits too much: %d distinct of 1000", len(distinct))
	}
}

func TestGUPSReadModifyWrite(t *testing.T) {
	r := Region{Size: mb}
	g := NewGUPS(r, 1, 0, 0, 11)
	ops := drain(t, g, r, 100)
	for i := 0; i < 100; i += 2 {
		if ops[i].Kind != Load || !ops[i].Dep {
			t.Fatalf("op %d: %+v", i, ops[i])
		}
		if ops[i+1].Kind != Store || ops[i+1].Addr != ops[i].Addr {
			t.Fatalf("RMW pair broken at %d: %+v %+v", i, ops[i], ops[i+1])
		}
	}
}

func TestGUPSHotSet(t *testing.T) {
	r := Region{Size: 8 * mb}
	g := NewGUPS(r, 0, 0.25, 0.9, 5)
	hot := uint64(float64(r.Size) * 0.25)
	inHot := 0
	ops := drain(t, g, r, 20000)
	for _, op := range ops {
		if op.Kind == Load && op.Addr < r.Base+hot {
			inHot++
		}
	}
	// ~90% of the 10000 loads should fall into the hot quarter.
	if inHot < 8500 || inHot > 9800 {
		t.Fatalf("hot-set loads = %d of 10000", inHot)
	}
}

func TestZipfSkew(t *testing.T) {
	r := Region{Size: 64 * mb}
	g := NewZipf(r, 0.99, 1.0, 1, 0, 9)
	counts := make(map[uint64]int)
	var op Op
	for i := 0; i < 50000; i++ {
		g.Next(&op)
		counts[op.Addr]++
	}
	// Zipf: the hottest key should take a large share; distinct keys far
	// fewer than accesses.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 1000 {
		t.Fatalf("hottest key only %d/50000 accesses (not skewed)", maxC)
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct keys (too skewed)", len(counts))
	}
}

func TestZipfReadWriteMix(t *testing.T) {
	r := Region{Size: 16 * mb}
	g := NewZipf(r, 0.99, 0.5, 1, 0, 21)
	stores := 0
	ops := drain(t, g, r, 20000)
	for _, op := range ops {
		if op.Kind == Store {
			stores++
		}
	}
	if stores < 8000 || stores > 12000 {
		t.Fatalf("50/50 mix: %d stores of 20000", stores)
	}
}

func TestZipfMultiLineRecords(t *testing.T) {
	r := Region{Size: 16 * mb}
	g := NewZipf(r, 0.99, 1.0, 4, 0, 2)
	ops := drain(t, g, r, 8)
	// Each record access touches 4 consecutive lines.
	for i := 1; i < 4; i++ {
		if ops[i].Addr != ops[0].Addr+uint64(i)*64 {
			t.Fatalf("record not contiguous: %#x vs %#x", ops[i].Addr, ops[0].Addr)
		}
	}
}

func TestGraphShape(t *testing.T) {
	r := Region{Size: 32 * mb}
	g := NewGraph(r, 8, 2, 13)
	ops := drain(t, g, r, 900)
	deps := 0
	for _, op := range ops {
		if op.Dep {
			deps++
		}
	}
	// One dependent jump per 9 ops.
	if deps < 80 || deps > 120 {
		t.Fatalf("dependent jumps = %d of 900", deps)
	}
}

func TestMixRatio(t *testing.T) {
	rA := Region{Base: 0, Size: mb}
	rB := Region{Base: mb, Size: mb}
	m := NewMix(NewStream(rA, 0, 0, 1), NewStream(rB, 0, 0, 2), 0.3)
	var op Op
	fromB := 0
	for i := 0; i < 1000; i++ {
		m.Next(&op)
		if op.Addr >= mb {
			fromB++
		}
	}
	// Deterministic spread: within one op of the exact share (floating
	// accumulation may lag a single step).
	if fromB < 299 || fromB > 301 {
		t.Fatalf("B share = %d/1000, want ~300", fromB)
	}
}

func TestMixClamping(t *testing.T) {
	r := Region{Size: mb}
	m := NewMix(NewStream(r, 0, 0, 1), NewStream(r, 0, 0, 2), 1.7)
	if m.Frac != 1 {
		t.Fatalf("Frac = %v", m.Frac)
	}
	m2 := NewMix(NewStream(r, 0, 0, 1), NewStream(r, 0, 0, 2), -0.5)
	if m2.Frac != 0 {
		t.Fatalf("Frac = %v", m2.Frac)
	}
}

func TestPhasedCycles(t *testing.T) {
	r := Region{Size: mb}
	p := NewPhased(
		Phase{Gen: NewStream(r, 1, 0, 1), Ops: 3},
		Phase{Gen: NewPointerChase(r, 1, 2), Ops: 2},
	)
	var op Op
	kinds := make([]bool, 10) // dep flags
	for i := 0; i < 10; i++ {
		p.Next(&op)
		kinds[i] = op.Dep
	}
	want := []bool{false, false, false, true, true, false, false, false, true, true}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("phase pattern at %d: got %v want %v (%v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestLimit(t *testing.T) {
	r := Region{Size: mb}
	l := NewLimit(NewStream(r, 0, 0, 1), 5)
	var op Op
	n := 0
	for l.Next(&op) {
		n++
		if n > 10 {
			t.Fatal("limit not enforced")
		}
	}
	if n != 5 || l.Emitted() != 5 {
		t.Fatalf("emitted %d (counter %d)", n, l.Emitted())
	}
}

func TestCounting(t *testing.T) {
	r := Region{Size: mb}
	g := NewStream(r, 0, 0, 1)
	g.SWPF = 4
	c := NewCounting(NewLimit(g, 10))
	var op Op
	for c.Next(&op) {
	}
	if c.Total() != 10 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Prefetches != 5 || c.Loads != 5 {
		t.Fatalf("loads=%d stores=%d pf=%d", c.Loads, c.Stores, c.Prefetches)
	}
}

func TestCatalogComplete(t *testing.T) {
	apps := Catalog()
	// Table 6 apps (73) + Redis + 3 YCSB + MBW + GUPS.
	if len(apps) < 77 {
		t.Fatalf("catalog has %d apps, want >= 77", len(apps))
	}
	seen := make(map[string]bool)
	for _, a := range apps {
		if seen[a.Name] {
			t.Fatalf("duplicate app %q", a.Name)
		}
		seen[a.Name] = true
		if a.WorkingSetMB <= 0 {
			t.Fatalf("%s has no working set", a.Name)
		}
		if a.Suite == "" || a.Full == "" {
			t.Fatalf("%s missing metadata", a.Name)
		}
	}
	for _, name := range []string{"FOTS", "GCCS", "LBM", "ROMS", "BWA", "MCF",
		"FFT", "BARN", "FRE", "RAY", "BFS", "RADIX", "YCSB-C", "GUPS", "MBW"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("NOPE"); ok {
		t.Error("Lookup of unknown app succeeded")
	}
	if len(Names()) != len(apps) {
		t.Error("Names length mismatch")
	}
}

func TestCatalogGeneratorsStayInRegion(t *testing.T) {
	r := Region{Base: 0x40000, Size: 8 * mb}
	for _, a := range Catalog() {
		g := a.Generator(r, 42)
		var op Op
		for i := 0; i < 2000; i++ {
			if !g.Next(&op) {
				t.Fatalf("%s: stream ended", a.Name)
			}
			if op.Addr < r.Base || op.Addr >= r.Base+r.Size {
				t.Fatalf("%s: escaped region at op %d: %#x", a.Name, i, op.Addr)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	r := Region{Size: 8 * mb}
	for _, a := range Catalog()[:20] {
		g1 := a.Generator(r, 99)
		g2 := a.Generator(r, 99)
		var o1, o2 Op
		for i := 0; i < 500; i++ {
			g1.Next(&o1)
			g2.Next(&o2)
			if o1 != o2 {
				t.Fatalf("%s: diverged at op %d: %+v vs %+v", a.Name, i, o1, o2)
			}
		}
	}
}

// Property: rng.uint64n stays within bounds.
func TestRNGBounds(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := newRNG(seed)
		for i := 0; i < 50; i++ {
			if r.uint64n(n) >= n {
				return false
			}
			v := r.float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package workload

import "testing"

func TestCSRGraphLayout(t *testing.T) {
	r := Region{Base: 0x100000, Size: CSRSize(1000, 8)}
	g := NewCSRGraph(r, 1000, 8, 7)
	if g.Vertices != 1000 {
		t.Fatalf("vertices = %d", g.Vertices)
	}
	// Offsets are monotone and the edge budget is fully used.
	for v := 0; v < g.Vertices; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			t.Fatalf("offsets not monotone at %d", v)
		}
	}
	if int(g.offsets[g.Vertices]) != 1000*8 {
		t.Fatalf("edge budget = %d", g.offsets[g.Vertices])
	}
	// All edges point at valid vertices.
	for i, e := range g.edges {
		if int(e) >= g.Vertices {
			t.Fatalf("edge %d -> %d out of range", i, e)
		}
	}
	// The three arrays stay inside the region and do not overlap.
	if g.offAddr(g.Vertices) > g.edgeBase || g.edgeAddr(len(g.edges)) > g.propBase {
		t.Fatal("array overlap")
	}
	if g.propAddr(g.Vertices-1)+8 > r.Base+r.Size {
		t.Fatal("graph exceeds region")
	}
}

func TestCSRGraphShrinksToFit(t *testing.T) {
	r := Region{Size: CSRSize(100, 4)}
	g := NewCSRGraph(r, 100000, 4, 1)
	if CSRSize(g.Vertices, g.Degree) > r.Size {
		t.Fatalf("graph of %d vertices does not fit", g.Vertices)
	}
}

func TestBFSVisitsEverything(t *testing.T) {
	r := Region{Base: 0x40000, Size: CSRSize(500, 8)}
	g := NewCSRGraph(r, 500, 8, 3)
	b := NewBFS(g, 1, 9)
	var op Op
	loads, stores, deps := 0, 0, 0
	for i := 0; i < 60000 && b.Rounds < 2; i++ {
		if !b.Next(&op) {
			t.Fatal("BFS stream ended")
		}
		if op.Addr < r.Base || op.Addr >= r.Base+r.Size {
			t.Fatalf("BFS escaped region: %#x", op.Addr)
		}
		switch op.Kind {
		case Load:
			loads++
			if op.Dep {
				deps++
			}
		case Store:
			stores++
		}
	}
	if b.Rounds < 2 {
		t.Fatalf("BFS did not complete sweeps (rounds=%d)", b.Rounds)
	}
	if stores == 0 {
		t.Fatal("no visited-marking stores")
	}
	// The mix: dependent vertex lookups and independent edge scans.
	if deps == 0 || deps >= loads {
		t.Fatalf("dependency mix: %d of %d loads dependent", deps, loads)
	}
}

func TestBFSDeterminism(t *testing.T) {
	r := Region{Size: CSRSize(300, 6)}
	mk := func() []Op {
		g := NewCSRGraph(r, 300, 6, 5)
		b := NewBFS(g, 1, 5)
		out := make([]Op, 2000)
		for i := range out {
			b.Next(&out[i])
		}
		return out
	}
	a, bb := mk(), mk()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestHashKVProbes(t *testing.T) {
	r := Region{Base: 0x200000, Size: HashKVSize(1000, 256)}
	kv := NewHashKV(r, 1000, 256, 3)
	if kv.keys != 1000 {
		t.Fatalf("keys = %d", kv.keys)
	}
	// Every inserted key is findable and its probe chain terminates at it.
	longest := 0
	for k := 0; k < kv.keys; k++ {
		seq := kv.probeSequence(uint32(k))
		if kv.occupied[seq[len(seq)-1]] != uint32(k)+1 {
			t.Fatalf("key %d probe chain ends elsewhere", k)
		}
		if len(seq) > longest {
			longest = len(seq)
		}
	}
	if longest < 2 {
		t.Fatal("no collisions at 50% load — hash is suspicious")
	}
	if longest > 64 {
		t.Fatalf("pathological probe chain: %d", longest)
	}
}

func TestKVGenStream(t *testing.T) {
	r := Region{Base: 0x200000, Size: HashKVSize(2000, 256)}
	kv := NewHashKV(r, 2000, 256, 3)
	g := NewKVGen(kv, 0.99, 0.7, 10, 11)
	var op Op
	loads, stores, deps := 0, 0, 0
	for i := 0; i < 30000; i++ {
		if !g.Next(&op) {
			t.Fatal("KV stream ended")
		}
		if op.Addr < r.Base || op.Addr >= r.Base+r.Size {
			t.Fatalf("KV escaped region: %#x", op.Addr)
		}
		switch op.Kind {
		case Load:
			loads++
			if op.Dep {
				deps++
			}
		case Store:
			stores++
		}
	}
	if stores == 0 || loads == 0 {
		t.Fatalf("mix: %d loads, %d stores", loads, stores)
	}
	// 30% writes x 4 lines per record ~ a third of ops are stores.
	frac := float64(stores) / float64(loads+stores)
	if frac < 0.1 || frac > 0.5 {
		t.Fatalf("store fraction = %v", frac)
	}
	if deps == 0 {
		t.Fatal("no dependent probe loads")
	}
}

func TestHashKVShrinks(t *testing.T) {
	r := Region{Size: HashKVSize(100, 128)}
	kv := NewHashKV(r, 1_000_000, 128, 1)
	if HashKVSize(kv.keys, 128) > r.Size {
		t.Fatalf("%d keys do not fit", kv.keys)
	}
}

package workload

import "math"

// Region is the address window a generator walks.  Generators never touch
// memory outside [Base, Base+Size).
type Region struct {
	Base, Size uint64
}

func (r Region) lines() uint64 { return r.Size / 64 }

// clampLine returns the address of line index i within the region.
func (r Region) lineAddr(i uint64) uint64 { return r.Base + (i%r.lines())*64 }

// ---------------------------------------------------------------------------
// Stream: sequential sweep with an optional store fraction — the shape of
// STREAM/MBW and of bandwidth-bound SPEC codes.
// ---------------------------------------------------------------------------

// Stream sweeps the region sequentially.  Reuse sets the number of
// word-granular accesses per cache line (real sequential code touches
// every word, so most accesses hit the line brought in by the first);
// the default of 1 advances a full line per access.
type Stream struct {
	R         Region
	Think     uint16  // non-memory instructions between accesses
	StoreFrac float64 // fraction of accesses that are stores
	SWPF      int     // software-prefetch distance in lines (0 = none)
	Reuse     int     // accesses per line (default 1)

	i   uint64
	rnd rng
	pfq bool // emit the prefetch before the next access
}

// NewStream returns a sequential sweep generator.
func NewStream(r Region, think uint16, storeFrac float64, seed uint64) *Stream {
	return &Stream{R: r, Think: think, StoreFrac: storeFrac, rnd: newRNG(seed), Reuse: 1}
}

// line returns the line index of the i-th access under the reuse factor.
func (g *Stream) line(i uint64) uint64 {
	reuse := uint64(1)
	if g.Reuse > 1 {
		reuse = uint64(g.Reuse)
	}
	return i / reuse
}

// Next implements Generator.
func (g *Stream) Next(op *Op) bool {
	if g.SWPF > 0 && !g.pfq {
		g.pfq = true
		*op = Op{Addr: g.R.lineAddr(g.line(g.i) + uint64(g.SWPF)), Kind: Prefetch, Think: 0}
		return true
	}
	g.pfq = false
	kind := Load
	if g.StoreFrac > 0 && g.rnd.float64() < g.StoreFrac {
		kind = Store
	}
	*op = Op{Addr: g.R.lineAddr(g.line(g.i)), Kind: kind, Think: g.Think}
	g.i++
	return true
}

// ---------------------------------------------------------------------------
// Stencil: n parallel sequential streams (k read arrays, one written array),
// the shape of lbm/roms/bwaves/fotonik3d and other structured-grid codes.
// ---------------------------------------------------------------------------

// Stencil sweeps k+1 equal sub-arrays in lockstep: k loads then one store
// per grid point.  Reuse sets grid points per cache line (default 1).
type Stencil struct {
	R      Region
	Arrays int // total arrays (>= 2); the last one is written
	Think  uint16
	Reuse  int // grid points per line (default 1)

	i   uint64 // grid point
	arr int
}

// NewStencil returns a structured-grid sweep over the region split into the
// given number of arrays.
func NewStencil(r Region, arrays int, think uint16) *Stencil {
	if arrays < 2 {
		arrays = 2
	}
	return &Stencil{R: r, Arrays: arrays, Think: think, Reuse: 1}
}

// Next implements Generator.
func (g *Stencil) Next(op *Op) bool {
	sub := g.R.Size / uint64(g.Arrays)
	lines := sub / 64
	if lines == 0 {
		lines = 1
	}
	reuse := uint64(1)
	if g.Reuse > 1 {
		reuse = uint64(g.Reuse)
	}
	base := g.R.Base + uint64(g.arr)*sub
	addr := base + ((g.i/reuse)%lines)*64
	if g.arr == g.Arrays-1 {
		*op = Op{Addr: addr, Kind: Store, Think: g.Think}
		g.arr = 0
		g.i++
	} else {
		*op = Op{Addr: addr, Kind: Load, Think: g.Think}
		g.arr++
	}
	return true
}

// ---------------------------------------------------------------------------
// PointerChase: dependent random walk — mcf/omnetpp/xalancbmk-style and the
// latency side of Intel MLC.
// ---------------------------------------------------------------------------

// PointerChase emits dependent loads whose addresses form a pseudo-random
// walk over the region, defeating prefetchers and exposing raw latency.
type PointerChase struct {
	R     Region
	Think uint16

	cur rng
}

// NewPointerChase returns a dependent random-walk generator.
func NewPointerChase(r Region, think uint16, seed uint64) *PointerChase {
	return &PointerChase{R: r, Think: think, cur: newRNG(seed)}
}

// Next implements Generator.
func (g *PointerChase) Next(op *Op) bool {
	*op = Op{Addr: g.R.lineAddr(g.cur.next()), Kind: Load, Dep: true, Think: g.Think}
	return true
}

// ---------------------------------------------------------------------------
// GUPS: random read-modify-write updates (the HPCC benchmark used in the
// paper's Case 7).
// ---------------------------------------------------------------------------

// GUPS performs random updates: a load followed by a store to the same
// line.  HotFrac of accesses touch the first HotFrac of the region (the
// paper's "90% hot set access probability" configuration).  Batch models
// the software pipelining of the HPCC benchmark: only every Batch-th load
// is dependent, so up to Batch updates overlap (memory-level parallelism).
type GUPS struct {
	R       Region
	Think   uint16
	HotFrac float64 // fraction of the region that is hot (0 or 1 = uniform)
	HotProb float64 // probability an access goes to the hot subset
	Batch   int     // updates in flight (default 1: fully dependent)

	rnd     rng
	pending uint64 // store address waiting to be emitted
	hasPend bool
	issued  int
}

// NewGUPS returns a random-update generator.
func NewGUPS(r Region, think uint16, hotFrac, hotProb float64, seed uint64) *GUPS {
	return &GUPS{R: r, Think: think, HotFrac: hotFrac, HotProb: hotProb, Batch: 1, rnd: newRNG(seed)}
}

// Next implements Generator.
func (g *GUPS) Next(op *Op) bool {
	if g.hasPend {
		g.hasPend = false
		*op = Op{Addr: g.pending, Kind: Store, Think: 0}
		return true
	}
	lines := g.R.lines()
	var idx uint64
	if g.HotFrac > 0 && g.HotFrac < 1 && g.rnd.float64() < g.HotProb {
		hot := uint64(float64(lines) * g.HotFrac)
		if hot == 0 {
			hot = 1
		}
		idx = g.rnd.uint64n(hot)
	} else {
		idx = g.rnd.uint64n(lines)
	}
	addr := g.R.Base + idx*64
	g.pending = addr
	g.hasPend = true
	g.issued++
	dep := g.Batch <= 1 || g.issued%g.Batch == 0
	*op = Op{Addr: addr, Kind: Load, Dep: dep, Think: g.Think}
	return true
}

// ---------------------------------------------------------------------------
// Zipf: YCSB/Redis-style keyed record access with a Zipfian popularity
// distribution (Gray et al. incremental method, as in YCSB).
// ---------------------------------------------------------------------------

// Zipf models a key-value service: records of RecordLines cache lines,
// picked Zipfian-hot, read with probability ReadFrac and rewritten
// otherwise, with per-request processing think time.
type Zipf struct {
	R           Region
	Theta       float64
	ReadFrac    float64
	RecordLines int
	Think       uint16

	n                 uint64
	zetan, eta, alpha float64
	rnd               rng
	recAddr           uint64
	recLeft           int
	recStore          bool
}

// NewZipf returns a Zipfian key-value access generator over n records.
func NewZipf(r Region, theta, readFrac float64, recordLines int, think uint16, seed uint64) *Zipf {
	if recordLines < 1 {
		recordLines = 1
	}
	n := r.lines() / uint64(recordLines)
	if n == 0 {
		n = 1
	}
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	z := &Zipf{R: r, Theta: theta, ReadFrac: readFrac, RecordLines: recordLines,
		Think: think, n: n, rnd: newRNG(seed)}
	z.zetan = zeta(n, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Cap the exact sum for very large n; the tail contributes little and
	// record counts beyond a few million do not change the distribution
	// shape meaningfully.
	const maxExact = 1 << 21
	m := n
	if m > maxExact {
		m = maxExact
	}
	var z float64
	for i := uint64(1); i <= m; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	if n > m {
		// Integral approximation of the remaining tail.
		z += (math.Pow(float64(n), 1-theta) - math.Pow(float64(m), 1-theta)) / (1 - theta)
	}
	return z
}

// sample draws a Zipfian rank in [0, n).
func (g *Zipf) sample() uint64 {
	u := g.rnd.float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, g.Theta) {
		return 1
	}
	r := uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	if r >= g.n {
		r = g.n - 1
	}
	return r
}

// Next implements Generator.
func (g *Zipf) Next(op *Op) bool {
	if g.recLeft > 0 {
		g.recLeft--
		kind := Load
		if g.recStore {
			kind = Store
		}
		*op = Op{Addr: g.recAddr, Kind: kind, Think: 2}
		g.recAddr += 64
		return true
	}
	rank := g.sample()
	// Scramble the rank so hot records spread over the region.
	h := rank*0x9e3779b97f4a7c15 + 0x7f4a7c15
	h ^= h >> 29
	rec := h % g.n
	g.recAddr = g.R.Base + rec*uint64(g.RecordLines)*64
	g.recLeft = g.RecordLines - 1
	g.recStore = g.rnd.float64() >= g.ReadFrac
	kind := Load
	if g.recStore {
		kind = Store
	}
	*op = Op{Addr: g.recAddr, Kind: kind, Dep: true, Think: g.Think}
	g.recAddr += 64
	return true
}

// ---------------------------------------------------------------------------
// Graph: frontier-driven traversal — sequential edge-list scans punctuated
// by random dependent vertex lookups (BFS/SSSP/PR shape from GAP).
// ---------------------------------------------------------------------------

// Graph interleaves short sequential runs (edge scans) with dependent
// random accesses (vertex property lookups).
type Graph struct {
	R      Region
	RunLen int // edges scanned per vertex
	Think  uint16

	rnd    rng
	run    int
	cursor uint64
}

// NewGraph returns a graph-traversal-shaped generator.
func NewGraph(r Region, runLen int, think uint16, seed uint64) *Graph {
	if runLen < 1 {
		runLen = 8
	}
	return &Graph{R: r, RunLen: runLen, Think: think, rnd: newRNG(seed)}
}

// Next implements Generator.
func (g *Graph) Next(op *Op) bool {
	if g.run > 0 {
		g.run--
		g.cursor++
		*op = Op{Addr: g.R.lineAddr(g.cursor), Kind: Load, Think: g.Think}
		return true
	}
	// Jump to a random vertex: a dependent lookup, then scan its edges.
	g.cursor = g.rnd.uint64n(g.R.lines())
	g.run = g.RunLen
	*op = Op{Addr: g.R.lineAddr(g.cursor), Kind: Load, Dep: true, Think: g.Think}
	return true
}

// ---------------------------------------------------------------------------
// Composition.
// ---------------------------------------------------------------------------

// Mix interleaves two generators: a fraction Frac of operations come from B
// (deterministically spread, not random, so traffic ratios are exact) —
// used for the paper's local-vs-CXL interference sweeps.
type Mix struct {
	A, B Generator
	Frac float64 // fraction of ops drawn from B, in [0, 1]

	acc float64
}

// NewMix returns a deterministic two-way interleaver.
func NewMix(a, b Generator, frac float64) *Mix {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return &Mix{A: a, B: b, Frac: frac}
}

// Next implements Generator.
func (m *Mix) Next(op *Op) bool {
	m.acc += m.Frac
	if m.acc >= 1 {
		m.acc -= 1
		if m.B.Next(op) {
			return true
		}
		return m.A.Next(op)
	}
	if m.A.Next(op) {
		return true
	}
	return m.B.Next(op)
}

// Phase is one stage of a phased workload.
type Phase struct {
	Gen Generator
	Ops uint64 // operations before moving to the next phase
}

// Phased cycles through phases — the shape of gcc-like multi-phase codes
// whose working behavior shifts between snapshots.
type Phased struct {
	Phases []Phase

	idx  int
	left uint64
}

// NewPhased returns a generator cycling through the given phases.
func NewPhased(phases ...Phase) *Phased {
	p := &Phased{Phases: phases}
	if len(phases) > 0 {
		p.left = phases[0].Ops
	}
	return p
}

// Next implements Generator.
func (p *Phased) Next(op *Op) bool {
	if len(p.Phases) == 0 {
		return false
	}
	for tries := 0; p.left == 0; tries++ {
		if tries > len(p.Phases) {
			return false // every phase is zero-length
		}
		p.idx = (p.idx + 1) % len(p.Phases)
		p.left = p.Phases[p.idx].Ops
	}
	p.left--
	return p.Phases[p.idx].Gen.Next(op)
}

// Limit truncates a generator after N operations — useful for finite runs
// and throughput measurement.
type Limit struct {
	G Generator
	N uint64

	done uint64
}

// NewLimit wraps g so it ends after n operations.
func NewLimit(g Generator, n uint64) *Limit { return &Limit{G: g, N: n} }

// Next implements Generator.
func (l *Limit) Next(op *Op) bool {
	if l.done >= l.N {
		return false
	}
	l.done++
	return l.G.Next(op)
}

// Emitted reports how many operations the limiter has passed through.
func (l *Limit) Emitted() uint64 { return l.done }

// Counting wraps a generator and counts operations by kind — the
// application-level "throughput" observable the evaluation reports.
type Counting struct {
	G Generator

	Loads, Stores, Prefetches uint64
}

// NewCounting wraps g with operation counting.
func NewCounting(g Generator) *Counting { return &Counting{G: g} }

// Next implements Generator.
func (c *Counting) Next(op *Op) bool {
	if !c.G.Next(op) {
		return false
	}
	switch op.Kind {
	case Load:
		c.Loads++
	case Store:
		c.Stores++
	case Prefetch:
		c.Prefetches++
	}
	return true
}

// Total returns all operations emitted.
func (c *Counting) Total() uint64 { return c.Loads + c.Stores + c.Prefetches }

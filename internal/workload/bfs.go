package workload

// CSRGraph is a compressed-sparse-row graph laid out in the simulated
// address space the way GAP lays it out: an offsets array, an edge array,
// and per-vertex property/state arrays.  BFSGen walks it with a real
// breadth-first search, emitting the actual address stream the algorithm
// would issue — sequential edge-range scans from the edge array,
// random-access visited checks, and frontier queue appends — rather than a
// statistical approximation of it.
type CSRGraph struct {
	Vertices int
	Degree   int // average out-degree

	offBase  uint64 // offsets array: (V+1) x 8 bytes
	edgeBase uint64 // edge array: V*Degree x 8 bytes
	propBase uint64 // per-vertex state: V x 8 bytes

	offsets []uint32 // edge-array index per vertex (synthetic, uniform-ish)
	edges   []uint32 // destination vertex ids
}

// CSRSize returns the region bytes needed for a graph of v vertices and
// average degree d.
func CSRSize(v, d int) uint64 {
	return uint64(v+1)*8 + uint64(v*d)*8 + uint64(v)*8
}

// NewCSRGraph synthesizes a random graph with the given shape inside
// region r (which must be at least CSRSize bytes).
func NewCSRGraph(r Region, vertices, degree int, seed uint64) *CSRGraph {
	if vertices < 2 {
		vertices = 2
	}
	if degree < 1 {
		degree = 1
	}
	need := CSRSize(vertices, degree)
	for r.Size < need && vertices > 2 {
		vertices /= 2
	}
	g := &CSRGraph{
		Vertices: vertices,
		Degree:   degree,
		offBase:  r.Base,
		edgeBase: r.Base + uint64(vertices+1)*8,
		propBase: r.Base + uint64(vertices+1)*8 + uint64(vertices*degree)*8,
	}
	rnd := newRNG(seed)
	g.offsets = make([]uint32, vertices+1)
	g.edges = make([]uint32, vertices*degree)
	// Degrees vary ±50% around the mean, redistributing the edge budget.
	total := vertices * degree
	pos := 0
	for v := 0; v < vertices; v++ {
		g.offsets[v] = uint32(pos)
		d := degree/2 + int(rnd.uint64n(uint64(degree)+1))
		if pos+d > total {
			d = total - pos
		}
		if v == vertices-1 {
			d = total - pos
		}
		for e := 0; e < d; e++ {
			g.edges[pos] = uint32(rnd.uint64n(uint64(vertices)))
			pos++
		}
	}
	g.offsets[vertices] = uint32(pos)
	return g
}

// offAddr returns the address of offsets[v].
func (g *CSRGraph) offAddr(v int) uint64 { return g.offBase + uint64(v)*8 }

// edgeAddr returns the address of edges[i].
func (g *CSRGraph) edgeAddr(i int) uint64 { return g.edgeBase + uint64(i)*8 }

// propAddr returns the address of the state word of vertex v.
func (g *CSRGraph) propAddr(v int) uint64 { return g.propBase + uint64(v)*8 }

// bfsState is the traversal position of BFSGen.
type bfsState int

const (
	bfsPopVertex bfsState = iota // read offsets[v], offsets[v+1]
	bfsScanEdges                 // stream the edge range
	bfsVisitDst                  // check/mark the destination's state
)

// BFSGen emits the memory accesses of repeated breadth-first searches over
// a CSR graph.  Each op sequence per frontier vertex: two offset loads
// (usually same line), a sequential edge-array scan, and for every edge a
// dependent load of the destination's visited word plus a store when newly
// visited — the irregular-plus-streaming mix that makes graph analytics
// the canonical CXL-painful workload.
type BFSGen struct {
	G     *CSRGraph
	Think uint16

	visited []bool
	queue   []int
	qHead   int

	state    bfsState
	cur      int // current vertex
	edgeIdx  int // next edge index
	edgeEnd  int
	dst      int
	needMark bool
	rnd      rng
	Rounds   uint64 // completed BFS sweeps
}

// NewBFS returns a traversal generator over g.
func NewBFS(g *CSRGraph, think uint16, seed uint64) *BFSGen {
	b := &BFSGen{G: g, Think: think, rnd: newRNG(seed)}
	b.reset()
	return b
}

// reset starts a new BFS from a random root.
func (b *BFSGen) reset() {
	b.visited = make([]bool, b.G.Vertices)
	root := int(b.rnd.uint64n(uint64(b.G.Vertices)))
	b.visited[root] = true
	b.queue = b.queue[:0]
	b.queue = append(b.queue, root)
	b.qHead = 0
	b.state = bfsPopVertex
}

// Next implements Generator.  The traversal is infinite: when a BFS
// exhausts its frontier, a new sweep starts from a fresh root.
func (b *BFSGen) Next(op *Op) bool {
	for {
		switch b.state {
		case bfsPopVertex:
			if b.qHead >= len(b.queue) {
				b.Rounds++
				b.reset()
				continue
			}
			b.cur = b.queue[b.qHead]
			b.qHead++
			b.edgeIdx = int(b.G.offsets[b.cur])
			b.edgeEnd = int(b.G.offsets[b.cur+1])
			b.state = bfsScanEdges
			// The offsets load: dependent (the scan cannot start before
			// the bounds arrive).
			*op = Op{Addr: b.G.offAddr(b.cur), Kind: Load, Dep: true, Think: b.Think}
			return true

		case bfsScanEdges:
			if b.edgeIdx >= b.edgeEnd {
				b.state = bfsPopVertex
				continue
			}
			b.dst = int(b.G.edges[b.edgeIdx])
			addr := b.G.edgeAddr(b.edgeIdx)
			b.edgeIdx++
			b.state = bfsVisitDst
			// Sequential edge load: prefetcher-friendly, independent.
			*op = Op{Addr: addr, Kind: Load, Think: b.Think}
			return true

		case bfsVisitDst:
			b.state = bfsScanEdges
			if b.needMark {
				b.needMark = false
				*op = Op{Addr: b.G.propAddr(b.dst), Kind: Store, Think: 0}
				return true
			}
			if !b.visited[b.dst] {
				b.visited[b.dst] = true
				b.queue = append(b.queue, b.dst)
				b.needMark = true
				b.state = bfsVisitDst // emit the mark store next
			}
			// The visited check: a dependent random access.
			*op = Op{Addr: b.G.propAddr(b.dst), Kind: Load, Dep: true, Think: b.Think}
			return true
		}
	}
}

package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pathfinder
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimCXLStream-8   	  300000	       992.9 ns/op	      43 B/op	       1 allocs/op
BenchmarkCaptureSnapshot-8	    9337	    125968 ns/op	    2906 B/op	      88 allocs/op
BenchmarkEpochLoop-8      	   53414	     22706 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	pathfinder	15.294s
`

func parseSample(t *testing.T) *Doc {
	t.Helper()
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParse(t *testing.T) {
	doc := parseSample(t)
	if doc.GoOS != "linux" || doc.GoArch != "amd64" || doc.Pkg != "pathfinder" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks", len(doc.Benchmarks))
	}
	b := doc.Find("BenchmarkSimCXLStream")
	if b == nil {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if b.Iterations != 300000 || b.Metrics["ns/op"] != 992.9 || b.Metrics["allocs/op"] != 1 {
		t.Fatalf("parsed: %+v", b)
	}
	if b.SimOpsSec < 1e6 || b.SimOpsSec > 1.1e6 {
		t.Fatalf("sim_ops_per_sec = %v", b.SimOpsSec)
	}
	if doc.Find("BenchmarkMissing") != nil {
		t.Fatal("Find invented a benchmark")
	}
}

func TestParseCapturesGoMaxProcs(t *testing.T) {
	doc := parseSample(t)
	if doc.GoMaxProcs != 8 {
		t.Fatalf("GoMaxProcs = %d, want 8 (from the -8 name suffix)", doc.GoMaxProcs)
	}

	// go test omits the suffix entirely when GOMAXPROCS is 1.
	doc, err := Parse(strings.NewReader("BenchmarkSimCXLStream   300000   992.9 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoMaxProcs != 1 {
		t.Fatalf("suffixless GoMaxProcs = %d, want 1", doc.GoMaxProcs)
	}

	// No benchmark lines at all: the run's GOMAXPROCS is unknown, not 1.
	doc, err = Parse(strings.NewReader("goos: linux\n"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoMaxProcs != 0 {
		t.Fatalf("empty-run GoMaxProcs = %d, want 0", doc.GoMaxProcs)
	}
}

func TestLaneMismatch(t *testing.T) {
	base := &Doc{GoMaxProcs: 8, Lanes: "auto"}
	cur := &Doc{GoMaxProcs: 8, Lanes: "auto"}
	if err := LaneMismatch(base, cur); err != nil {
		t.Fatalf("matching configs refused: %v", err)
	}

	if err := LaneMismatch(base, &Doc{GoMaxProcs: 1, Lanes: "auto"}); err == nil {
		t.Fatal("GOMAXPROCS 8 vs 1 accepted")
	}
	if err := LaneMismatch(base, &Doc{GoMaxProcs: 8, Lanes: "2"}); err == nil {
		t.Fatal("lanes auto vs 2 accepted")
	}

	// Sides that predate the fields are unknown, not mismatched: old
	// baselines must age out gracefully rather than brick the gate.
	if err := LaneMismatch(&Doc{}, cur); err != nil {
		t.Fatalf("legacy baseline refused: %v", err)
	}
	if err := LaneMismatch(base, &Doc{}); err != nil {
		t.Fatalf("unknown current refused: %v", err)
	}
}

func TestBestCollapsesRepetitions(t *testing.T) {
	doc := parseSample(t)
	noisy, _ := ParseLine("BenchmarkSimCXLStream-8   200000   1250.0 ns/op   53 B/op   1 allocs/op")
	doc.Benchmarks = append(doc.Benchmarks, noisy)
	if got := doc.Best("BenchmarkSimCXLStream").Metrics["ns/op"]; got != 992.9 {
		t.Fatalf("Best picked %v ns/op, want the 992.9 run", got)
	}
	if doc.Best("BenchmarkMissing") != nil {
		t.Fatal("Best invented a benchmark")
	}
}

func TestCompare(t *testing.T) {
	base := parseSample(t)
	cur := parseSample(t)
	watch := []string{"BenchmarkSimCXLStream", "BenchmarkCaptureSnapshot"}

	if regs := Compare(base, cur, watch, 0.20); len(regs) != 0 {
		t.Fatalf("identical runs flagged: %v", regs)
	}

	// +25% on one watched benchmark crosses the 20% gate.
	cur.Find("BenchmarkSimCXLStream").Metrics["ns/op"] = 992.9 * 1.25
	regs := Compare(base, cur, watch, 0.20)
	if len(regs) != 1 || regs[0].Name != "BenchmarkSimCXLStream" {
		t.Fatalf("regressions: %v", regs)
	}
	if regs[0].Growth < 0.24 || regs[0].Growth > 0.26 {
		t.Fatalf("growth = %v", regs[0].Growth)
	}

	// +25% under a 30% tolerance passes.
	if regs := Compare(base, cur, watch, 0.30); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}

	// A watched benchmark missing from either side fails loudly rather than
	// silently passing the gate.
	regs = Compare(base, cur, []string{"BenchmarkNotInBaseline"}, 0.20)
	if len(regs) != 1 || !regs[0].MissingBaseline {
		t.Fatalf("missing-baseline: %v", regs)
	}
	cur.Benchmarks = cur.Benchmarks[:1] // drop CaptureSnapshot from the current run
	regs = Compare(base, cur, []string{"BenchmarkCaptureSnapshot"}, 0.20)
	if len(regs) != 1 || !regs[0].MissingCurrent {
		t.Fatalf("missing-current: %v", regs)
	}
}

func TestComparePairs(t *testing.T) {
	cur := parseSample(t)
	v := *cur.Find("BenchmarkSimCXLStream")
	v.Name = "BenchmarkSimCXLStreamTracerOff"
	v.Metrics = map[string]float64{"ns/op": 992.9 * 1.01}
	cur.Benchmarks = append(cur.Benchmarks, v)
	pair := []string{"BenchmarkSimCXLStreamTracerOff=BenchmarkSimCXLStream"}

	// +1% passes a 2% pair gate.
	regs, err := ComparePairs(cur, pair, 0.02)
	if err != nil || len(regs) != 0 {
		t.Fatalf("within-tolerance pair flagged: %v %v", regs, err)
	}

	// +5% fails it, reporting both sides.
	cur.Find("BenchmarkSimCXLStreamTracerOff").Metrics["ns/op"] = 992.9 * 1.05
	regs, err = ComparePairs(cur, pair, 0.02)
	if err != nil || len(regs) != 1 {
		t.Fatalf("pair regression missed: %v %v", regs, err)
	}
	if regs[0].Growth < 0.04 || regs[0].Growth > 0.06 {
		t.Fatalf("pair growth = %v", regs[0].Growth)
	}

	// A missing side fails loudly.
	regs, err = ComparePairs(cur, []string{"BenchmarkNope=BenchmarkSimCXLStream"}, 0.02)
	if err != nil || len(regs) != 1 || !regs[0].MissingCurrent {
		t.Fatalf("missing variant: %v %v", regs, err)
	}
	regs, err = ComparePairs(cur, []string{"BenchmarkSimCXLStreamTracerOff=BenchmarkNope"}, 0.02)
	if err != nil || len(regs) != 1 || !regs[0].MissingBaseline {
		t.Fatalf("missing base: %v %v", regs, err)
	}

	// A malformed pair is a usage error, not a silent skip.
	if _, err := ComparePairs(cur, []string{"NoEqualsSign"}, 0.02); err == nil {
		t.Fatal("malformed pair accepted")
	}
}

// TestComparePairsNegativeTolerance: a negative tolerance demands the
// variant be FASTER than its base by at least that fraction — the shape of
// the `make bench-sweep` gate, where the forked sweep must run at most
// half the scratch sweep's ns/op.
func TestComparePairsNegativeTolerance(t *testing.T) {
	cur := parseSample(t)
	v := *cur.Find("BenchmarkSimCXLStream")
	v.Name = "BenchmarkForked"
	v.Metrics = map[string]float64{"ns/op": 992.9 * 0.30}
	cur.Benchmarks = append(cur.Benchmarks, v)
	pair := []string{"BenchmarkForked=BenchmarkSimCXLStream"}

	// 3.3x faster passes a "must be ≥2x faster" (-0.5) gate.
	regs, err := ComparePairs(cur, pair, -0.5)
	if err != nil || len(regs) != 0 {
		t.Fatalf("fast variant flagged: %v %v", regs, err)
	}

	// Only 1.4x faster fails it.
	cur.Find("BenchmarkForked").Metrics["ns/op"] = 992.9 * 0.70
	regs, err = ComparePairs(cur, pair, -0.5)
	if err != nil || len(regs) != 1 {
		t.Fatalf("insufficient speedup passed the gate: %v %v", regs, err)
	}
}

func TestCompareMax(t *testing.T) {
	cur := parseSample(t)

	// 43 B/op under a 64 ceiling passes.
	regs, err := CompareMax(cur, []string{"BenchmarkSimCXLStream:B/op:64"})
	if err != nil || len(regs) != 0 {
		t.Fatalf("within-ceiling flagged: %v %v", regs, err)
	}

	// 43 B/op over a 32 ceiling fails with the asserted unit.
	regs, err = CompareMax(cur, []string{"BenchmarkSimCXLStream:B/op:32"})
	if err != nil || len(regs) != 1 || regs[0].Metric != "B/op" || regs[0].CurNS != 43 {
		t.Fatalf("ceiling breach missed: %v %v", regs, err)
	}

	// Repetitions collapse to the fastest run, matching Compare.
	noisy, _ := ParseLine("BenchmarkSimCXLStream-8   200000   900.0 ns/op   20 B/op   1 allocs/op")
	cur.Benchmarks = append(cur.Benchmarks, noisy)
	regs, err = CompareMax(cur, []string{"BenchmarkSimCXLStream:B/op:32"})
	if err != nil || len(regs) != 0 {
		t.Fatalf("fastest-run collapse failed: %v %v", regs, err)
	}

	// A missing benchmark or unreported metric fails loudly.
	regs, err = CompareMax(cur, []string{"BenchmarkNope:B/op:32"})
	if err != nil || len(regs) != 1 || !regs[0].MissingCurrent {
		t.Fatalf("missing benchmark: %v %v", regs, err)
	}
	regs, err = CompareMax(cur, []string{"BenchmarkSimCXLStream:J/op:32"})
	if err != nil || len(regs) != 1 || !regs[0].MissingCurrent {
		t.Fatalf("unreported metric: %v %v", regs, err)
	}

	// Malformed specs are usage errors.
	for _, bad := range []string{"NoColons", "Name:B/op", "Name:B/op:abc"} {
		if _, err := CompareMax(cur, []string{bad}); err == nil {
			t.Fatalf("malformed spec %q accepted", bad)
		}
	}
}

// Package benchparse parses `go test -bench` output and the BENCH_*.json
// snapshots emitted by cmd/benchjson, and compares the two for perf
// regressions.  It is shared by cmd/benchjson (text -> JSON) and
// cmd/benchregress (current run vs committed baseline).
package benchparse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	SimOpsSec  float64            `json:"sim_ops_per_sec,omitempty"`
}

// Doc is one benchmark snapshot (the BENCH_<date>.json layout).
//
// GoMaxProcs and Lanes pin the lane configuration the run measured:
// GOMAXPROCS decides how many worker lanes the window scheduler gets under
// the "auto" policy, so ns/op from different lane configs are different
// experiments and must never be compared (see LaneMismatch).
type Doc struct {
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	Lanes      string      `json:"lanes,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Find returns the named benchmark, or nil.
func (d *Doc) Find(name string) *Benchmark {
	for i := range d.Benchmarks {
		if d.Benchmarks[i].Name == name {
			return &d.Benchmarks[i]
		}
	}
	return nil
}

// Best returns the named benchmark's fastest run (minimum ns/op) when the
// output holds -count repetitions, or nil.  Gating on the best run filters
// scheduler noise: interference only ever inflates ns/op.
func (d *Doc) Best(name string) *Benchmark {
	var best *Benchmark
	for i := range d.Benchmarks {
		b := &d.Benchmarks[i]
		if b.Name != name {
			continue
		}
		if best == nil || b.Metrics["ns/op"] < best.Metrics["ns/op"] {
			best = b
		}
	}
	return best
}

// Parse reads `go test -bench` text output into a Doc.  Header lines
// (goos/goarch/pkg/cpu) fill the Doc fields; Benchmark result lines are
// parsed with ParseLine.  The -N name suffix go test appends (the run's
// GOMAXPROCS) is recorded into doc.GoMaxProcs; go test omits the suffix
// entirely when GOMAXPROCS is 1, so any parsed result without one means 1.
func Parse(in io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := ParseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
				if p := lineProcs(strings.Fields(line)[0]); p > doc.GoMaxProcs {
					doc.GoMaxProcs = p
				}
			}
		}
	}
	if len(doc.Benchmarks) > 0 && doc.GoMaxProcs == 0 {
		doc.GoMaxProcs = 1
	}
	return doc, sc.Err()
}

// lineProcs extracts the -GOMAXPROCS suffix from a benchmark name, or 0.
func lineProcs(name string) int {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// ParseLine parses one result line:
//
//	BenchmarkSimCXLStream-8   300000   671.0 ns/op   43 B/op   1 allocs/op
//
// Every "<value> <unit>" pair is kept; a derived sim_ops_per_sec is added
// for benchmarks reporting ns/op.  The -GOMAXPROCS suffix is stripped from
// the name (it is not part of the identity).
func ParseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
		b.SimOpsSec = 1e9 / ns
	}
	return b, true
}

// ReadDoc loads a BENCH_*.json snapshot.
func ReadDoc(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc := &Doc{}
	if err := json.NewDecoder(f).Decode(doc); err != nil {
		return nil, fmt.Errorf("benchparse: %s: %w", path, err)
	}
	return doc, nil
}

// LatestBaseline returns the lexicographically last BENCH_*.json in dir —
// the dated naming makes that the most recent committed snapshot.
func LatestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("benchparse: no BENCH_*.json baseline in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// LaneMismatch reports why base and cur must not be compared: a different
// GOMAXPROCS or -lanes configuration changes how many worker lanes the
// window scheduler runs, which moves ns/op for reasons that are not
// regressions.  A side that predates the fields (zero/empty) is unknown
// and allowed through — old baselines age out, they don't brick the gate.
func LaneMismatch(base, cur *Doc) error {
	if base.GoMaxProcs != 0 && cur.GoMaxProcs != 0 && base.GoMaxProcs != cur.GoMaxProcs {
		return fmt.Errorf("benchparse: GOMAXPROCS mismatch: baseline ran with %d, current with %d — rerun with GOMAXPROCS=%d or record a new baseline",
			base.GoMaxProcs, cur.GoMaxProcs, base.GoMaxProcs)
	}
	if base.Lanes != "" && cur.Lanes != "" && base.Lanes != cur.Lanes {
		return fmt.Errorf("benchparse: lane config mismatch: baseline measured lanes=%s, current lanes=%s — rerun with the baseline's lane config or record a new baseline",
			base.Lanes, cur.Lanes)
	}
	return nil
}

// Regression is one watched benchmark whose ns/op grew beyond tolerance,
// or (Metric set) whose absolute metric value exceeded a pinned ceiling.
type Regression struct {
	Name            string
	BaseNS, CurNS   float64
	Growth          float64 // (cur-base)/base
	Metric          string  // set by CompareMax: the asserted unit
	MissingBaseline bool    // watched name absent from the baseline
	MissingCurrent  bool    // watched name absent from the current run
}

func (r Regression) String() string {
	switch {
	case r.MissingBaseline:
		return fmt.Sprintf("%s: not in baseline (cannot gate)", r.Name)
	case r.MissingCurrent:
		return fmt.Sprintf("%s: missing from current run", r.Name)
	case r.Metric != "":
		return fmt.Sprintf("%s: %g %s exceeds pinned ceiling %g",
			r.Name, r.CurNS, r.Metric, r.BaseNS)
	}
	return fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%+.1f%%)",
		r.Name, r.BaseNS, r.CurNS, r.Growth*100)
}

// CompareMax gates absolute metric ceilings within the current run: each
// spec is "Name:metric:limit" (e.g. "BenchmarkSimCXLStream:B/op:64") and
// fails when the benchmark's metric exceeds the limit.  It pins
// known-amortized costs — a B/op residual that is one-time buffer growth
// spread over b.N stays documented and bounded instead of silently turning
// into a real per-op allocation.  Repeated runs are collapsed to the
// fastest, matching Compare.
func CompareMax(cur *Doc, specs []string) ([]Regression, error) {
	var out []Regression
	for _, s := range specs {
		s = strings.TrimSpace(s)
		name, rest, ok := strings.Cut(s, ":")
		if !ok {
			return nil, fmt.Errorf("benchparse: bad max spec %q (want Name:metric:limit)", s)
		}
		metric, limStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("benchparse: bad max spec %q (want Name:metric:limit)", s)
		}
		limit, err := strconv.ParseFloat(limStr, 64)
		if err != nil {
			return nil, fmt.Errorf("benchparse: bad max spec %q: %v", s, err)
		}
		b := cur.Best(name)
		if b == nil {
			out = append(out, Regression{Name: name + " " + metric, Metric: metric, MissingCurrent: true})
			continue
		}
		v, ok := b.Metrics[metric]
		if !ok {
			// A watched metric the run did not report (e.g. -benchmem
			// missing) must fail loudly, not pass silently.
			out = append(out, Regression{Name: name + " " + metric, Metric: metric, MissingCurrent: true})
			continue
		}
		if v > limit {
			out = append(out, Regression{Name: name, Metric: metric, BaseNS: limit, CurNS: v})
		}
	}
	return out, nil
}

// ComparePairs gates variant benchmarks against their base WITHIN one run:
// each pair is "Variant=Base", and the variant's ns/op may exceed the
// base's by at most tolerance.  Because both sides come from the same
// `go test -bench` invocation on the same machine, the gate is immune to
// the environment drift that plagues committed-baseline comparisons —
// which is what makes a tolerance as tight as 2% enforceable.
func ComparePairs(cur *Doc, pairs []string, tolerance float64) ([]Regression, error) {
	var out []Regression
	for _, p := range pairs {
		variant, base, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("benchparse: bad pair %q (want Variant=Base)", p)
		}
		variant, base = strings.TrimSpace(variant), strings.TrimSpace(base)
		name := variant + " (vs " + base + ")"
		v, b := cur.Best(variant), cur.Best(base)
		switch {
		case b == nil:
			out = append(out, Regression{Name: name, MissingBaseline: true})
			continue
		case v == nil:
			out = append(out, Regression{Name: name, MissingCurrent: true})
			continue
		}
		baseNS, varNS := b.Metrics["ns/op"], v.Metrics["ns/op"]
		if baseNS <= 0 || varNS <= 0 {
			continue
		}
		if growth := (varNS - baseNS) / baseNS; growth > tolerance {
			out = append(out, Regression{Name: name, BaseNS: baseNS, CurNS: varNS, Growth: growth})
		}
	}
	return out, nil
}

// Compare gates the watched benchmarks: any whose current ns/op exceeds the
// baseline by more than tolerance (0.20 = +20%) is returned.  Repeated runs
// (-count) are collapsed to their fastest on both sides.  A watched
// benchmark missing from either side is also returned — silently skipping
// the gate would read as a pass.
func Compare(base, cur *Doc, watch []string, tolerance float64) []Regression {
	var out []Regression
	for _, name := range watch {
		b, c := base.Best(name), cur.Best(name)
		switch {
		case b == nil:
			out = append(out, Regression{Name: name, MissingBaseline: true})
			continue
		case c == nil:
			out = append(out, Regression{Name: name, MissingCurrent: true})
			continue
		}
		baseNS, curNS := b.Metrics["ns/op"], c.Metrics["ns/op"]
		if baseNS <= 0 || curNS <= 0 {
			continue
		}
		if growth := (curNS - baseNS) / baseNS; growth > tolerance {
			out = append(out, Regression{Name: name, BaseNS: baseNS, CurNS: curNS, Growth: growth})
		}
	}
	return out
}

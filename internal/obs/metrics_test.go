package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pf_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("pf_test_depth", "depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	// Get-or-create returns the same handle.
	if r.Counter("pf_test_ops_total", "ops") != c {
		t.Fatal("Counter did not return existing handle")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pf_test_lat_cycles", "latency", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5555 {
		t.Fatalf("sum = %v, want 5555", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`pf_test_lat_cycles_bucket{le="10"} 1`,
		`pf_test_lat_cycles_bucket{le="100"} 2`,
		`pf_test_lat_cycles_bucket{le="1000"} 3`,
		`pf_test_lat_cycles_bucket{le="+Inf"} 4`,
		`pf_test_lat_cycles_sum 5555`,
		`pf_test_lat_cycles_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramBucketInvariants is the table-driven le-label contract for
// WritePrometheus: buckets render in ascending le order, counts are
// cumulative and nondecreasing, the explicit +Inf bucket is always present,
// and it equals _count.
func TestHistogramBucketInvariants(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		samples []float64
	}{
		{"empty", []float64{1, 10, 100}, nil},
		{"all_underflow", []float64{10, 100}, []float64{1, 2, 3}},
		{"all_overflow", []float64{10, 100}, []float64{1000, 2000}},
		{"on_boundaries", []float64{10, 100, 1000}, []float64{10, 100, 1000}},
		{"spread", []float64{8, 64, 512, 4096}, []float64{1, 9, 70, 600, 5000, 5000, 100000}},
		{"single_bucket", []float64{50}, []float64{25, 75}},
		{"unsorted_bounds", []float64{100, 1, 10}, []float64{0.5, 5, 50, 500}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.Histogram("pf_inv_cycles", "invariant probe", tc.bounds)
			for _, v := range tc.samples {
				h.Observe(v)
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}

			var les []string
			var cums []uint64
			var count uint64
			haveCount := false
			for _, line := range strings.Split(sb.String(), "\n") {
				if strings.HasPrefix(line, "pf_inv_cycles_bucket{le=") {
					var le string
					var n uint64
					if _, err := fmt.Sscanf(line, "pf_inv_cycles_bucket{le=%q} %d", &le, &n); err != nil {
						t.Fatalf("unparseable bucket line %q: %v", line, err)
					}
					les = append(les, le)
					cums = append(cums, n)
				}
				if strings.HasPrefix(line, "pf_inv_cycles_count ") {
					if _, err := fmt.Sscanf(line, "pf_inv_cycles_count %d", &count); err != nil {
						t.Fatalf("unparseable count line %q: %v", line, err)
					}
					haveCount = true
				}
			}

			if want := len(tc.bounds) + 1; len(les) != want {
				t.Fatalf("rendered %d buckets, want %d (bounds + explicit +Inf)", len(les), want)
			}
			if les[len(les)-1] != "+Inf" {
				t.Fatalf("last bucket le = %q, want +Inf", les[len(les)-1])
			}
			for i := 0; i+1 < len(les)-1; i++ {
				a, errA := strconv.ParseFloat(les[i], 64)
				b, errB := strconv.ParseFloat(les[i+1], 64)
				if errA != nil || errB != nil {
					t.Fatalf("non-numeric finite le labels %q, %q", les[i], les[i+1])
				}
				if a >= b {
					t.Fatalf("le labels not ascending: %q then %q", les[i], les[i+1])
				}
			}
			for i := 1; i < len(cums); i++ {
				if cums[i] < cums[i-1] {
					t.Fatalf("cumulative counts decrease at bucket %d: %v", i, cums)
				}
			}
			if !haveCount {
				t.Fatal("no _count series rendered")
			}
			if inf := cums[len(cums)-1]; inf != count || inf != uint64(len(tc.samples)) {
				t.Fatalf("+Inf bucket %d, _count %d, observations %d — all must match",
					inf, count, len(tc.samples))
			}
			// Per-bucket counts recovered from the cumulative rendering must
			// match the histogram's own non-cumulative view.
			raw := h.BucketCounts()
			prev := uint64(0)
			for i, c := range cums {
				if got := c - prev; got != raw[i] {
					t.Fatalf("bucket %d: rendered delta %d, BucketCounts %d", i, got, raw[i])
				}
				prev = c
			}
		})
	}
}

func TestWritePrometheusGroupsLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter(`pf_runner_busy_ns{worker="1"}`, "busy time").Add(10)
	r.Counter(`pf_runner_busy_ns{worker="0"}`, "busy time").Add(20)
	r.GaugeFunc("pf_engine_heap_depth", "heap depth", func() float64 { return 7 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE pf_runner_busy_ns counter"); n != 1 {
		t.Errorf("want exactly one TYPE header for labeled family, got %d:\n%s", n, out)
	}
	i0 := strings.Index(out, `pf_runner_busy_ns{worker="0"} 20`)
	i1 := strings.Index(out, `pf_runner_busy_ns{worker="1"} 10`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Errorf("labeled series missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "pf_engine_heap_depth 7") {
		t.Errorf("gauge func not rendered:\n%s", out)
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("pf_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("pf_x_total", "")
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("pf_conc_total", "")
			h := r.Histogram("pf_conc_hist", "", []float64{1, 2})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 3))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("pf_conc_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("pf_conc_hist", "", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace_event "complete" event ("ph":"X") — the
// format Perfetto and chrome://tracing load directly.  Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int32          `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders records as Chrome trace_event JSON: one track
// per (core, request), one complete event per span, cycles converted to
// microseconds at ghz.  The output loads in Perfetto (ui.perfetto.dev) as a
// per-request latency waterfall.
func WriteChromeTrace(w io.Writer, recs []ReqRec, ghz float64) error {
	if ghz <= 0 {
		ghz = 1
	}
	us := func(cycles uint64) float64 { return float64(cycles) / (ghz * 1e3) }
	doc := chromeDoc{DisplayTimeUnit: "ns", TraceEvents: make([]chromeEvent, 0, len(recs)*4)}
	for i := range recs {
		r := &recs[i]
		for _, sp := range r.Spans() {
			ev := chromeEvent{
				Name: sp.Stage.String(),
				Cat:  "cxl-path",
				Ph:   "X",
				TS:   us(sp.Start),
				Dur:  us(sp.End - sp.Start),
				PID:  r.Core,
				TID:  r.ID,
			}
			if sp.Stage == StageReq {
				ev.Args = map[string]any{
					"addr":  r.Addr,
					"class": r.Class,
					"loc":   r.Loc,
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Flight is the always-on flight recorder: every completed memory request
// leaves a compact fixed-size record in a per-core ring buffer, and the
// requests whose end-to-end latency lands beyond an adaptive per-class
// threshold (an online p99 estimate from a streaming P² quantile sketch)
// are promoted into a bounded tail store together with their promotion
// context.  Unlike the 1-in-N tracer, which samples uniformly and almost
// never catches a p99.9 event with its waterfall, the flight recorder sees
// every request and keeps exactly the ones that form the tail.
//
// The recorder is strictly an observer: it never touches engine, cache, or
// PMU state, so simulated timing is byte-identical with it attached (the
// golden digest suites prove this across fastpath scenarios and window
// lane modes).  The hot path is allocation-free: records are packed value
// structs, rings and pending buffers are sized up front, and the quantile
// sketch is five fixed markers.
//
// Window-lane safety mirrors the §12 observer-buffer design: outside a
// parallel window the machine calls Record, which files the ring entry and
// runs the shared promotion pipeline inline; inside a window each lane
// calls Defer, which only touches that core's own lane state, and the
// barrier drains the pending buffers through MergeDeferred in core order —
// deterministic for a given schedule.  Promotion decisions therefore
// depend on the (deterministic) processing order of a given lane config;
// PMU digests never do.

// Flight workload classes: demand loads and demand stores track separate
// latency populations (a CXL store commit and a CXL load miss live on
// different paths with different tails).
const (
	FlightLoad  = 0
	FlightStore = 1

	flightClasses = 2

	// flightWarmup is the per-class observation count before the sketch
	// estimate is trusted for promotion: too early and the p99 markers
	// are still startup noise, promoting everything.
	flightWarmup = 32
)

// FlightClassName maps a FlightRec.Class ordinal to the request-class
// label the tracer and path maps use.
func FlightClassName(c uint8) string {
	if c&1 == FlightStore {
		return "DWr"
	}
	return "DRd"
}

// flightBounds is the latency histogram (and exemplar) bucketing in core
// cycles: L1 hits land in the first buckets, local DRAM around 200-400,
// healthy CXL at 700-1500, and the retry/viral pathologies beyond.
var flightBounds = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// FlightRec is the packed per-request record (48 bytes, no pointers, no
// heap).  Stage timestamps are cycle deltas from Issue so the struct stays
// compact; a zero delta means the request never reached that stage (an L1
// hit has no L2 entry).  Loc is the sim-side ServeLoc ordinal — obs cannot
// import the simulator, so the CLI tools map it back to a name.
type FlightRec struct {
	Addr  uint64 `json:"addr"`
	Issue uint64 `json:"issue"`
	Done  uint64 `json:"done"`

	L2Start  uint32 `json:"l2_start"`  // delta from Issue; 0 = not reached
	TOREnter uint32 `json:"tor_enter"` // delta from Issue; 0 = not reached
	MemEnter uint32 `json:"mem_enter"` // delta from Issue; 0 = not reached
	Seq      uint32 `json:"seq"`       // promotion-pipeline sequence number

	Core  uint16 `json:"core"`
	Class uint8  `json:"class"` // FlightLoad or FlightStore
	Loc   uint8  `json:"loc"`   // ServeLoc ordinal

	LFB uint8 `json:"lfb"` // core LFB occupancy at completion
	SB  uint8 `json:"sb"`  // core store-buffer occupancy at completion
}

// Latency is the end-to-end request latency in cycles.
func (r *FlightRec) Latency() uint64 { return r.Done - r.Issue }

// TailRec is a promoted record: the full FlightRec plus the context the
// promotion pipeline stamps at decision time.
type TailRec struct {
	FlightRec
	Epoch     uint64  `json:"epoch"`          // profiler epoch at promotion
	Pending   int32   `json:"pending_events"` // engine events in flight (-1 = unknown)
	Threshold float64 `json:"threshold"`      // the p99 estimate the record beat
}

// p2 is the Jain/Chlamtac P² streaming quantile estimator: five markers,
// O(1) per observation, no allocation.  It tracks a single quantile p.
type p2 struct {
	q   [5]float64 // marker heights
	n   [5]int     // marker positions
	np  [5]float64 // desired positions
	dnp [5]float64 // desired-position increments
	cnt int
}

func newP2(p float64) p2 {
	var s p2
	s.dnp = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return s
}

func (s *p2) observe(x float64) {
	if s.cnt < 5 {
		s.q[s.cnt] = x
		s.cnt++
		if s.cnt == 5 {
			q := s.q[:]
			sort.Float64s(q)
			p := s.dnp[2]
			s.n = [5]int{1, 2, 3, 4, 5}
			s.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	s.cnt++
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x < s.q[1]:
		k = 0
	case x < s.q[2]:
		k = 1
	case x < s.q[3]:
		k = 2
	case x <= s.q[4]:
		k = 3
	default:
		s.q[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		s.n[i]++
	}
	for i := range s.np {
		s.np[i] += s.dnp[i]
	}
	for i := 1; i <= 3; i++ {
		d := s.np[i] - float64(s.n[i])
		if (d >= 1 && s.n[i+1]-s.n[i] > 1) || (d <= -1 && s.n[i-1]-s.n[i] < -1) {
			sign := 1
			if d < 0 {
				sign = -1
			}
			qn := s.parabolic(i, sign)
			if s.q[i-1] < qn && qn < s.q[i+1] {
				s.q[i] = qn
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.n[i] += sign
		}
	}
}

func (s *p2) parabolic(i, d int) float64 {
	fd := float64(d)
	return s.q[i] + fd/float64(s.n[i+1]-s.n[i-1])*
		((float64(s.n[i]-s.n[i-1])+fd)*(s.q[i+1]-s.q[i])/float64(s.n[i+1]-s.n[i])+
			(float64(s.n[i+1]-s.n[i])-fd)*(s.q[i]-s.q[i-1])/float64(s.n[i]-s.n[i-1]))
}

func (s *p2) linear(i, d int) float64 {
	return s.q[i] + float64(d)*(s.q[i+d]-s.q[i])/float64(s.n[i+d]-s.n[i])
}

// estimate returns the current quantile estimate; with fewer than five
// observations it falls back to the max seen so far (conservative: early
// records do not promote spuriously).
func (s *p2) estimate() float64 {
	if s.cnt == 0 {
		return 0
	}
	if s.cnt < 5 {
		max := s.q[0]
		for _, v := range s.q[1:s.cnt] {
			if v > max {
				max = v
			}
		}
		return max
	}
	return s.q[2]
}

// flightLane is one core's slice of the recorder: a ring of the last
// ringCap records and the pending buffer parallel window lanes defer
// shared-state work into.  The mutex orders the single sim-side writer
// against HTTP-side snapshot readers; it is never contended between lanes
// because each core's lane state is written only by the goroutine stepping
// that core.
type flightLane struct {
	mu   sync.Mutex
	ring []FlightRec
	n    uint64 // total records ever filed on this core
	pend []FlightRec
}

func (ln *flightLane) push(r FlightRec) {
	if len(ln.ring) < cap(ln.ring) {
		ln.ring = append(ln.ring, r)
	} else {
		ln.ring[ln.n%uint64(cap(ln.ring))] = r
	}
	ln.n++
}

// flightAgg is the per-class aggregate stage residency over every record
// seen (not just promoted ones): the same segmentation the tail waterfalls
// use, so a bundle can compare its promoted spans against the population.
type flightAgg struct {
	records     uint64
	promoted    uint64
	totalCycles uint64
	coreCycles  uint64 // issue -> L2 entry, or the whole latency pre-L2
	l2Cycles    uint64 // L2 entry -> TOR entry
	chaCycles   uint64 // TOR entry -> memory-path entry
	devCycles   uint64 // memory-path entry -> done (IMC or M2PCIe/CXL + return)
	byLoc       [16]uint64
	devByLoc    [16]uint64
}

// Flight owns the per-core rings, the promotion pipeline (quantile
// sketches, tail store, exemplars), and the epoch/engine context stamps.
type Flight struct {
	enabled atomic.Bool
	epoch   atomic.Uint64

	lanes   []flightLane
	ringCap int
	tailCap int

	mu        sync.Mutex
	seq       uint32
	sketch    [flightClasses]p2
	agg       [flightClasses]flightAgg
	hist      [flightClasses]*Histogram
	tail      []TailRec
	tailN     uint64
	pendingFn func() int // engine-depth probe; only called outside windows
}

// NewFlight sizes the recorder at attach time: cores per-core rings of
// ringCap records each, and a tail store bounded at tailCap promotions
// (older promotions are overwritten).
func NewFlight(cores, ringCap, tailCap int) *Flight {
	if cores < 1 || ringCap < 1 || tailCap < 1 {
		panic(fmt.Sprintf("obs: NewFlight(%d, %d, %d): all sizes must be positive",
			cores, ringCap, tailCap))
	}
	f := &Flight{
		lanes:   make([]flightLane, cores),
		ringCap: ringCap,
		tailCap: tailCap,
		tail:    make([]TailRec, 0, tailCap),
	}
	for i := range f.lanes {
		f.lanes[i].ring = make([]FlightRec, 0, ringCap)
		f.lanes[i].pend = make([]FlightRec, 0, ringCap)
	}
	for c := range f.sketch {
		f.sketch[c] = newP2(0.99)
		f.hist[c] = NewHistogram(flightBounds)
		f.hist[c].AttachExemplars(NewExemplarSet(flightBounds))
	}
	return f
}

// Enabled reports whether the recorder is capturing.  It is safe on a nil
// receiver and cheap enough to sit on the per-op fast path: the machine
// checks it inline before building a record.
func (f *Flight) Enabled() bool { return f != nil && f.enabled.Load() }

// Enable starts capture.
func (f *Flight) Enable() { f.enabled.Store(true) }

// Disable stops capture; rings and tail keep their contents.
func (f *Flight) Disable() { f.enabled.Store(false) }

// Cores returns the number of per-core rings.
func (f *Flight) Cores() int { return len(f.lanes) }

// SetEpoch stamps the profiler epoch promotions record from now on.
func (f *Flight) SetEpoch(e uint64) { f.epoch.Store(e) }

// Epoch returns the current epoch stamp.
func (f *Flight) Epoch() uint64 { return f.epoch.Load() }

// SetPendingProbe installs the engine-depth probe stamped into promotion
// context.  The probe is only invoked from inline Record processing and
// from MergeDeferred — both outside parallel windows — so it may read
// engine state.
func (f *Flight) SetPendingProbe(fn func() int) {
	f.mu.Lock()
	f.pendingFn = fn
	f.mu.Unlock()
}

// Record files a completed request inline: ring entry plus the shared
// promotion pipeline.  It must not be called from inside a parallel
// window; lanes use Defer instead.
func (f *Flight) Record(core int, r FlightRec) {
	ln := f.lane(core)
	ln.mu.Lock()
	ln.push(r)
	ln.mu.Unlock()
	f.mu.Lock()
	f.process(&r)
	f.mu.Unlock()
}

// Defer files a completed request from a window lane: the ring entry is
// core-private, and the shared promotion work is parked in the core's
// pending buffer until the window barrier calls MergeDeferred.
func (f *Flight) Defer(core int, r FlightRec) {
	ln := f.lane(core)
	ln.mu.Lock()
	ln.push(r)
	ln.pend = append(ln.pend, r)
	ln.mu.Unlock()
}

// MergeDeferred drains every core's pending buffer through the shared
// promotion pipeline, in core order with each core's records in file
// order — deterministic for a deterministic schedule.  The window barrier
// calls it after the lane-observer merge.
func (f *Flight) MergeDeferred() {
	f.mu.Lock()
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.mu.Lock()
		for j := range ln.pend {
			f.process(&ln.pend[j])
		}
		ln.pend = ln.pend[:0]
		ln.mu.Unlock()
	}
	f.mu.Unlock()
}

func (f *Flight) lane(core int) *flightLane {
	if core < 0 || core >= len(f.lanes) {
		panic(fmt.Sprintf("obs: Flight core %d out of range (recorder sized for %d cores)",
			core, len(f.lanes)))
	}
	return &f.lanes[core]
}

// process runs one record through the shared pipeline: aggregates, the
// latency histogram, the quantile sketch, and the promotion decision.
// Caller holds f.mu.
func (f *Flight) process(r *FlightRec) {
	cls := int(r.Class & 1)
	f.seq++
	r.Seq = f.seq
	lat := r.Latency()

	a := &f.agg[cls]
	a.records++
	a.totalCycles += lat
	l2 := uint64(r.L2Start)
	tor := uint64(r.TOREnter)
	mem := uint64(r.MemEnter)
	switch {
	case l2 == 0:
		a.coreCycles += lat
	default:
		a.coreCycles += l2
	}
	if tor > l2 && l2 > 0 {
		a.l2Cycles += tor - l2
	}
	if mem > tor && tor > 0 {
		a.chaCycles += mem - tor
	}
	if mem > 0 && lat > mem {
		dev := lat - mem
		a.devCycles += dev
		a.devByLoc[r.Loc&15] += dev
	}
	a.byLoc[r.Loc&15]++

	f.hist[cls].Observe(float64(lat))

	sk := &f.sketch[cls]
	warm := sk.cnt >= flightWarmup
	thr := 0.0
	if warm {
		thr = sk.estimate()
	}
	sk.observe(float64(lat))
	if warm && float64(lat) >= thr {
		f.promote(r, cls, thr)
	}
}

// promote copies the record into the tail store with its context and pins
// it as the exemplar of its latency bucket.  Caller holds f.mu.
func (f *Flight) promote(r *FlightRec, cls int, thr float64) {
	t := TailRec{FlightRec: *r, Epoch: f.epoch.Load(), Pending: -1, Threshold: thr}
	if f.pendingFn != nil {
		t.Pending = int32(f.pendingFn())
	}
	if len(f.tail) < cap(f.tail) {
		f.tail = append(f.tail, t)
	} else {
		f.tail[f.tailN%uint64(cap(f.tail))] = t
	}
	f.tailN++
	f.agg[cls].promoted++
	f.hist[cls].MarkExemplar(float64(r.Latency()), r.Seq, r.Done)
}

// RecordsTotal is the count of records ever filed across all cores.
func (f *Flight) RecordsTotal() uint64 {
	var n uint64
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.mu.Lock()
		n += ln.n
		ln.mu.Unlock()
	}
	return n
}

// Promoted is the count of records ever promoted to the tail store.
func (f *Flight) Promoted() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tailN
}

// Seen returns the per-class record count through the promotion pipeline.
func (f *Flight) Seen(class int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.agg[class&1].records
}

// Threshold returns the current promotion threshold (p99 estimate) for a
// class, 0 while the sketch is still warming up.
func (f *Flight) Threshold(class int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	sk := &f.sketch[class&1]
	if sk.cnt < flightWarmup {
		return 0
	}
	return sk.estimate()
}

// TailRecs returns the promoted records, oldest first.
func (f *Flight) TailRecs() []TailRec {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tailLocked()
}

func (f *Flight) tailLocked() []TailRec {
	out := make([]TailRec, 0, len(f.tail))
	if f.tailN > uint64(len(f.tail)) {
		// Ring has wrapped: oldest entry sits at the write position.
		pos := f.tailN % uint64(cap(f.tail))
		out = append(out, f.tail[pos:]...)
		out = append(out, f.tail[:pos]...)
	} else {
		out = append(out, f.tail...)
	}
	return out
}

// CoreRecords returns one core's ring contents, oldest first.
func (f *Flight) CoreRecords(core int) []FlightRec {
	ln := f.lane(core)
	ln.mu.Lock()
	defer ln.mu.Unlock()
	out := make([]FlightRec, 0, len(ln.ring))
	if ln.n > uint64(len(ln.ring)) {
		pos := ln.n % uint64(cap(ln.ring))
		out = append(out, ln.ring[pos:]...)
		out = append(out, ln.ring[:pos]...)
	} else {
		out = append(out, ln.ring...)
	}
	return out
}

// FlightHist is a histogram snapshot with its exemplars.
type FlightHist struct {
	Bounds    []float64  `json:"bounds"`
	Counts    []uint64   `json:"counts"` // len(bounds)+1; last bucket is overflow
	Sum       float64    `json:"sum"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// FlightClassStats is the per-class slice of a snapshot.
type FlightClassStats struct {
	Name        string     `json:"name"`
	Records     uint64     `json:"records"`
	Promoted    uint64     `json:"promoted"`
	Threshold   float64    `json:"threshold_cycles"`
	TotalCycles uint64     `json:"total_cycles"`
	CoreCycles  uint64     `json:"core_cycles"`
	L2Cycles    uint64     `json:"l2_cycles"`
	CHACycles   uint64     `json:"cha_cycles"`
	DevCycles   uint64     `json:"dev_cycles"`
	ByLoc       []uint64   `json:"by_loc"`
	DevByLoc    []uint64   `json:"dev_cycles_by_loc"`
	Hist        FlightHist `json:"hist"`
}

// FlightSnapshot is the /flight JSON document and the flight section of a
// postmortem bundle.
type FlightSnapshot struct {
	Enabled  bool               `json:"enabled"`
	Epoch    uint64             `json:"epoch"`
	Cores    int                `json:"cores"`
	RingCap  int                `json:"ring_cap"`
	TailCap  int                `json:"tail_cap"`
	Records  uint64             `json:"records"`
	Promoted uint64             `json:"promoted"`
	Classes  []FlightClassStats `json:"classes"`
	Tail     []TailRec          `json:"tail"`
}

// Snapshot captures the recorder state for /flight and bundles.  It
// allocates; it is not for the sim hot path.
func (f *Flight) Snapshot() FlightSnapshot {
	s := FlightSnapshot{
		Enabled: f.Enabled(),
		Epoch:   f.epoch.Load(),
		Cores:   len(f.lanes),
		RingCap: f.ringCap,
		TailCap: f.tailCap,
		Records: f.RecordsTotal(),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s.Promoted = f.tailN
	s.Tail = f.tailLocked()
	s.Classes = make([]FlightClassStats, flightClasses)
	for c := 0; c < flightClasses; c++ {
		a := &f.agg[c]
		cs := &s.Classes[c]
		cs.Name = FlightClassName(uint8(c))
		cs.Records = a.records
		cs.Promoted = a.promoted
		if f.sketch[c].cnt >= flightWarmup {
			cs.Threshold = f.sketch[c].estimate()
		}
		cs.TotalCycles = a.totalCycles
		cs.CoreCycles = a.coreCycles
		cs.L2Cycles = a.l2Cycles
		cs.CHACycles = a.chaCycles
		cs.DevCycles = a.devCycles
		cs.ByLoc = append([]uint64(nil), a.byLoc[:]...)
		cs.DevByLoc = append([]uint64(nil), a.devByLoc[:]...)
		h := f.hist[c]
		cs.Hist = FlightHist{
			Bounds: append([]float64(nil), flightBounds...),
			Counts: h.BucketCounts(),
			Sum:    h.Sum(),
		}
		if es := h.Exemplars(); es != nil {
			cs.Hist.Exemplars = es.Snapshot()
		}
	}
	return s
}

// RegisterMetrics exposes the recorder's headline numbers on a metrics
// registry; values are read at scrape time.
func (f *Flight) RegisterMetrics(reg *Registry) {
	reg.GaugeFunc("pf_flight_records_total", "flight records filed",
		func() float64 { return float64(f.RecordsTotal()) })
	reg.GaugeFunc("pf_flight_promoted_total", "flight records promoted to the tail store",
		func() float64 { return float64(f.Promoted()) })
	for c := 0; c < flightClasses; c++ {
		c := c
		reg.GaugeFunc(
			fmt.Sprintf("pf_flight_threshold_cycles{class=%q}", FlightClassName(uint8(c))),
			"current promotion threshold (online p99)",
			func() float64 { return f.Threshold(c) })
	}
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// StatusFunc supplies the /status payload: any JSON-marshalable value.  It
// is called from serving goroutines, so implementations must be safe for
// concurrent use (the cmd binaries publish through an atomic.Value).
type StatusFunc func() any

// Server is the live introspection endpoint of a run:
//
//	/metrics      Prometheus text exposition of a Registry
//	/status       JSON snapshot from the StatusFunc
//	/trace        request-path spans as Chrome trace_event JSON (Perfetto)
//	/flight       flight-recorder snapshot (tail store, thresholds, exemplars)
//	/flight/dump  a full postmortem bundle, assembled on demand
//	/debug/pprof  the standard Go profiling handlers
//
// Everything is stdlib; there are no external dependencies.
type Server struct {
	reg    *Registry
	tracer *Tracer
	status StatusFunc
	ghz    float64

	flight *Flight
	plan   string // canonical FaultPlan string for bundles, "" = healthy

	mu     sync.Mutex
	closed bool
	http   *http.Server
	addr   net.Addr
}

// NewServer builds a server over the given registry, tracer, and status
// source.  tracer and status may be nil (the endpoints then report 404 and
// an empty object respectively); ghz scales trace timestamps.
func NewServer(reg *Registry, tracer *Tracer, status StatusFunc, ghz float64) *Server {
	if reg == nil {
		reg = Default
	}
	return &Server{reg: reg, tracer: tracer, status: status, ghz: ghz}
}

// SetFlight attaches a flight recorder (and the fault-plan string bundles
// should carry) so /flight and /flight/dump serve content.  Call before
// Start.
func (s *Server) SetFlight(f *Flight, faultPlan string) {
	s.flight = f
	s.plan = faultPlan
}

// Handler returns the introspection mux (useful for tests and embedding).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/flight/dump", s.handleFlightDump)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "pathfinder introspection: /metrics /status /trace /flight /flight/dump /debug/pprof/\n")
	})
	return mux
}

// Start begins serving on addr (e.g. ":6060", "127.0.0.1:0") in a
// background goroutine and returns the bound address.  Use Close to stop.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.addr = ln.Addr()
	s.http = srv
	s.closed = false
	s.mu.Unlock()
	go func() {
		// ErrServerClosed after Close is the clean shutdown path; any other
		// serve error leaves the endpoints dark but must not kill the run.
		_ = srv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() net.Addr { return s.addr }

// stop claims the one-shot teardown: it returns the server to tear down
// exactly once, and nil on every later call.  Close and Shutdown both go
// through it, so Close-after-Shutdown, Shutdown-after-Close, and doubled
// calls are all idempotent no-ops instead of racing on the listener.
func (s *Server) stop() *http.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.http == nil || s.closed {
		return nil
	}
	s.closed = true
	return s.http
}

// Close stops the server immediately, dropping in-flight requests.  It is
// idempotent, including after a Shutdown.
func (s *Server) Close() error {
	srv := s.stop()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Shutdown stops accepting new connections and waits up to timeout for
// in-flight requests (a /metrics scrape, a /trace dump) to finish before
// forcing the remaining connections closed.  It returns nil on a clean
// drain and the context error when the timeout forced the close.  Repeat
// calls (and a Close that follows) are no-ops.
func (s *Server) Shutdown(timeout time.Duration) error {
	srv := s.stop()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err != nil {
		// The drain deadline passed with requests still in flight; force
		// them closed so the caller is never stuck behind a slow scraper.
		srv.Close()
	}
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var v any = map[string]any{}
	if s.status != nil {
		if got := s.status(); got != nil {
			v = got
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.tracer == nil {
		http.Error(w, "no tracer attached (run with tracing enabled)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="pathfinder-spans.json"`)
	_ = WriteChromeTrace(w, s.tracer.Records(), s.ghz)
}

func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	if s.flight == nil {
		http.Error(w, "no flight recorder attached (run with -flight)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(s.flight.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleFlightDump(w http.ResponseWriter, _ *http.Request) {
	if s.flight == nil {
		http.Error(w, "no flight recorder attached (run with -flight)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="pathfinder-flight-bundle.json"`)
	err := DumpBundle(w, BundleOpts{
		Trigger:   "http",
		Flight:    s.flight,
		Metrics:   s.reg,
		Status:    s.status,
		FaultPlan: s.plan,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

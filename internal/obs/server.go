package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StatusFunc supplies the /status payload: any JSON-marshalable value.  It
// is called from serving goroutines, so implementations must be safe for
// concurrent use (the cmd binaries publish through an atomic.Value).
type StatusFunc func() any

// Server is the live introspection endpoint of a run:
//
//	/metrics      Prometheus text exposition of a Registry
//	/status       JSON snapshot from the StatusFunc
//	/trace        request-path spans as Chrome trace_event JSON (Perfetto)
//	/debug/pprof  the standard Go profiling handlers
//
// Everything is stdlib; there are no external dependencies.
type Server struct {
	reg    *Registry
	tracer *Tracer
	status StatusFunc
	ghz    float64

	http *http.Server
	addr net.Addr
}

// NewServer builds a server over the given registry, tracer, and status
// source.  tracer and status may be nil (the endpoints then report 404 and
// an empty object respectively); ghz scales trace timestamps.
func NewServer(reg *Registry, tracer *Tracer, status StatusFunc, ghz float64) *Server {
	if reg == nil {
		reg = Default
	}
	return &Server{reg: reg, tracer: tracer, status: status, ghz: ghz}
}

// Handler returns the introspection mux (useful for tests and embedding).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "pathfinder introspection: /metrics /status /trace /debug/pprof/\n")
	})
	return mux
}

// Start begins serving on addr (e.g. ":6060", "127.0.0.1:0") in a
// background goroutine and returns the bound address.  Use Close to stop.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.addr = ln.Addr()
	s.http = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// ErrServerClosed after Close is the clean shutdown path; any other
		// serve error leaves the endpoints dark but must not kill the run.
		_ = s.http.Serve(ln)
	}()
	return s.addr, nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() net.Addr { return s.addr }

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

// Shutdown stops accepting new connections and waits up to timeout for
// in-flight requests (a /metrics scrape, a /trace dump) to finish before
// forcing the remaining connections closed.  It returns nil on a clean
// drain and the context error when the timeout forced the close.
func (s *Server) Shutdown(timeout time.Duration) error {
	if s.http == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.http.Shutdown(ctx)
	if err != nil {
		// The drain deadline passed with requests still in flight; force
		// them closed so the caller is never stuck behind a slow scraper.
		s.http.Close()
	}
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var v any = map[string]any{}
	if s.status != nil {
		if got := s.status(); got != nil {
			v = got
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.tracer == nil {
		http.Error(w, "no tracer attached (run with tracing enabled)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="pathfinder-spans.json"`)
	_ = WriteChromeTrace(w, s.tracer.Records(), s.ghz)
}

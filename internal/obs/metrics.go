// Package obs is the observability layer of the reproduction: a metrics
// registry (counters, gauges, histograms with a Prometheus text endpoint),
// a sampled request-path tracer that records per-request span waterfalls as
// requests traverse SB/LFB -> L1D/L2 -> CHA -> IMC / M2PCIe / CXL, and a
// live introspection HTTP server (/metrics, /status, /trace, /debug/pprof).
//
// Design contract: everything on a simulator or profiler hot path is
// allocation-free and guarded by one atomic flag, so attached-but-disabled
// instrumentation costs a nil-check plus an atomic load (proved ≤2% by the
// paired TracerOff benchmarks gated in `make bench-regress`).  Simulator
// state that is not atomically updatable (engine depth, PMU counters) is
// *pushed* into the registry at epoch-sync boundaries by the single-owner
// profiler loop — readers (the HTTP server) only ever see atomic values, so
// a metrics scrape is race-free and snapshot-consistent by construction.
//
// Metric naming follows pf_<subsystem>_<name>_<unit>; an optional
// {label="value"} suffix distinguishes instances (e.g. per-worker runner
// counters).  See DESIGN.md §9.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.  All methods are safe for
// concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.  Values are float64 so rates
// and ratios (pool hit rate, utilization) publish directly.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram.  Observe is
// allocation-free and safe for concurrent use.
type Histogram struct {
	bounds []float64       // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
	ex     atomic.Pointer[ExemplarSet] // optional; nil unless attached
}

// NewHistogram builds a standalone histogram with the given upper bucket
// bounds (ascending) — for subsystems like the flight recorder that own
// their histograms instead of registering them by name.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveN records n samples of value v in one shot — the bulk form used
// when a subsystem keeps its own bucketed counts (the engine's window-span
// histogram) and publishes per-epoch deltas.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the overflow (+Inf) bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// AttachExemplars hangs an exemplar set off the histogram; MarkExemplar
// becomes a no-op again when called with nil.  The set should share the
// histogram's bucket bounds so exemplars land in the buckets they
// annotate.
func (h *Histogram) AttachExemplars(es *ExemplarSet) { h.ex.Store(es) }

// Exemplars returns the attached exemplar set, or nil.
func (h *Histogram) Exemplars() *ExemplarSet { return h.ex.Load() }

// MarkExemplar pins (seq, cycle) as the exemplar of the bucket v falls
// into, without recording an observation — callers Observe every sample
// and Mark only the promoted ones.
func (h *Histogram) MarkExemplar(v float64, seq uint32, cycle uint64) {
	if es := h.ex.Load(); es != nil {
		es.Mark(v, seq, cycle)
	}
}

// metric is one registered series with its rendering behavior.
type metric struct {
	name string // full series name, may carry a {label="v"} suffix
	base string // name with any label suffix stripped
	help string
	typ  string // counter | gauge | histogram

	counter *Counter
	gauge   *Gauge
	gfunc   func() float64
	hist    *Histogram
}

// Registry holds named metrics and renders them in Prometheus text format.
// Get-or-create accessors take a lock; the returned handles are lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Default is the process-wide registry that subsystems without an explicit
// registry (the experiment runner pool, cmd binaries) publish into.
var Default = NewRegistry()

// baseOf strips a {label="v"} suffix from a series name.
func baseOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register installs m under its name, panicking on a same-name metric of a
// different kind (a naming bug, not a runtime condition).
func (r *Registry) register(name, help, typ string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, m.typ))
		}
		return m
	}
	m := &metric{name: name, base: baseOf(name), help: help, typ: typ}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, "counter")
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, "gauge")
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.gauge == nil && m.gfunc == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.  The
// function must be safe to call from the HTTP serving goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, "gauge")
	r.mu.Lock()
	defer r.mu.Unlock()
	m.gfunc = fn
	m.gauge = nil
}

// Histogram returns the named histogram, creating it with the given upper
// bucket bounds (ascending) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, "histogram")
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		m.hist = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	return m.hist
}

// Len reports the number of registered series.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), grouped by base name with one HELP/TYPE header
// per group, series sorted by name for deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, name := range r.order {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].base != ms[j].base {
			return ms[i].base < ms[j].base
		}
		return ms[i].name < ms[j].name
	})

	var b strings.Builder
	lastBase := ""
	for _, m := range ms {
		if m.base != lastBase {
			lastBase = m.base
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.base, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.base, m.typ)
		}
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case m.gfunc != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gfunc()))
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gauge.Value()))
		case m.hist != nil:
			h := m.hist
			var cum uint64
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(ub), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, h.Count())
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a metric value the way Prometheus expects: shortest
// round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

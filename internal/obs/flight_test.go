package obs

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

// flightRec builds a load record with the given issue/latency and a full
// set of stage deltas carved proportionally out of the latency.
func flightRec(core int, issue, lat uint64) FlightRec {
	return FlightRec{
		Addr:     0x1000 + issue,
		Issue:    issue,
		Done:     issue + lat,
		Core:     uint16(core),
		Class:    FlightLoad,
		Loc:      9, // SrvCXL ordinal on the sim side
		L2Start:  uint32(lat / 10),
		TOREnter: uint32(lat / 5),
		MemEnter: uint32(lat / 2),
	}
}

// lcg is a tiny deterministic generator for latency populations.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 { l.s = l.s*6364136223846793005 + 1442695040888963407; return l.s }

func TestP2TracksQuantile(t *testing.T) {
	// A uniform population on [0, 10000): the p99 marker should converge
	// near 9900.  P² is an approximation; 5% of the range is plenty tight
	// for a promotion threshold.
	sk := newP2(0.99)
	r := &lcg{s: 42}
	var all []float64
	for i := 0; i < 20000; i++ {
		v := float64(r.next() % 10000)
		all = append(all, v)
		sk.observe(v)
	}
	sort.Float64s(all)
	exact := all[len(all)*99/100]
	got := sk.estimate()
	if math.Abs(got-exact) > 500 {
		t.Fatalf("p99 estimate %.0f too far from exact %.0f", got, exact)
	}
}

func TestP2EarlyEstimateIsMax(t *testing.T) {
	sk := newP2(0.99)
	if got := sk.estimate(); got != 0 {
		t.Fatalf("empty sketch estimate = %g, want 0", got)
	}
	sk.observe(5)
	sk.observe(80)
	sk.observe(12)
	if got := sk.estimate(); got != 80 {
		t.Fatalf("pre-fill estimate = %g, want max 80", got)
	}
}

func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(1, 4, 8)
	f.Enable()
	for i := uint64(0); i < 10; i++ {
		f.Record(0, flightRec(0, i*100, 50))
	}
	recs := f.CoreRecords(0)
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want cap 4", len(recs))
	}
	// Oldest-first: the surviving records are issues 600, 700, 800, 900.
	for i, r := range recs {
		want := uint64(600 + i*100)
		if r.Issue != want {
			t.Fatalf("ring[%d].Issue = %d, want %d (oldest first)", i, r.Issue, want)
		}
	}
	if got := f.RecordsTotal(); got != 10 {
		t.Fatalf("RecordsTotal = %d, want 10", got)
	}
}

func TestFlightWarmupBlocksPromotion(t *testing.T) {
	f := NewFlight(1, 64, 8)
	f.Enable()
	// Alternating latencies so the sketch markers spread out; nothing may
	// promote during the warmup window no matter how extreme the sample.
	for i := 0; i < flightWarmup; i++ {
		lat := uint64(100 + (i%2)*100000)
		f.Record(0, flightRec(0, uint64(i)*1000, lat))
	}
	if got := f.Promoted(); got != 0 {
		t.Fatalf("promoted %d records during warmup, want 0", got)
	}
	if thr := f.Threshold(FlightLoad); thr == 0 {
		t.Fatalf("threshold still 0 after %d records", flightWarmup)
	}
	// Post-warmup outlier far beyond every prior sample must promote.
	f.Record(0, flightRec(0, 1<<20, 1<<30))
	if got := f.Promoted(); got != 1 {
		t.Fatalf("outlier promoted %d times, want 1", got)
	}
	tail := f.TailRecs()
	if len(tail) != 1 || tail[0].Latency() != 1<<30 {
		t.Fatalf("tail = %+v, want the single outlier", tail)
	}
	if tail[0].Threshold <= 0 {
		t.Fatalf("promoted record carries threshold %g, want > 0", tail[0].Threshold)
	}
	if tail[0].Pending != -1 {
		t.Fatalf("pending = %d, want -1 with no probe installed", tail[0].Pending)
	}
}

func TestFlightTailRingKeepsNewest(t *testing.T) {
	f := NewFlight(1, 256, 4)
	f.Enable()
	r := &lcg{s: 7}
	// Warm with a low-latency population, then drive promotions with a
	// run of escalating outliers.
	for i := 0; i < 2*flightWarmup; i++ {
		f.Record(0, flightRec(0, uint64(i)*10, 50+r.next()%20))
	}
	base := f.Promoted()
	for i := uint64(0); i < 8; i++ {
		f.Record(0, flightRec(0, 1<<20+i*1000, 1<<20+i))
	}
	if got := f.Promoted(); got != base+8 {
		t.Fatalf("promoted %d outliers, want 8", got-base)
	}
	tail := f.TailRecs()
	if len(tail) != 4 {
		t.Fatalf("tail holds %d records, want cap 4", len(tail))
	}
	// Chronological (oldest first) and the newest four of the run.
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq <= tail[i-1].Seq {
			t.Fatalf("tail not chronological: seq %d after %d", tail[i].Seq, tail[i-1].Seq)
		}
	}
	if got, want := tail[len(tail)-1].Latency(), uint64(1<<20+7); got != want {
		t.Fatalf("newest tail latency = %d, want %d", got, want)
	}
}

func TestFlightExemplarPinned(t *testing.T) {
	f := NewFlight(1, 64, 8)
	f.Enable()
	for i := 0; i < 2*flightWarmup; i++ {
		f.Record(0, flightRec(0, uint64(i)*10, 100))
	}
	f.Record(0, flightRec(0, 1<<20, 5000))
	if f.Promoted() == 0 {
		t.Fatal("outlier did not promote")
	}
	snap := f.Snapshot()
	exs := snap.Classes[FlightLoad].Hist.Exemplars
	if len(exs) == 0 {
		t.Fatal("no exemplars after promotion")
	}
	bounds := flightBounds
	found := false
	for _, e := range exs {
		if e.Value == 5000 {
			found = true
			// 5000 falls in the (4096, 8192] bucket.
			want := sort.SearchFloat64s(bounds, 5000)
			if e.Bucket != want {
				t.Fatalf("exemplar bucket = %d, want %d", e.Bucket, want)
			}
			if e.Cycle != 1<<20+5000 {
				t.Fatalf("exemplar cycle = %d, want completion cycle %d", e.Cycle, 1<<20+5000)
			}
		}
	}
	if !found {
		t.Fatalf("no exemplar for the promoted latency; got %+v", exs)
	}
}

func TestFlightClassesSeparate(t *testing.T) {
	f := NewFlight(1, 64, 8)
	f.Enable()
	ld := flightRec(0, 0, 100)
	st := flightRec(0, 0, 900)
	st.Class = FlightStore
	f.Record(0, ld)
	f.Record(0, st)
	if got := f.Seen(FlightLoad); got != 1 {
		t.Fatalf("load class saw %d records, want 1", got)
	}
	if got := f.Seen(FlightStore); got != 1 {
		t.Fatalf("store class saw %d records, want 1", got)
	}
	if FlightClassName(FlightLoad) != "DRd" || FlightClassName(FlightStore) != "DWr" {
		t.Fatalf("class names = %q/%q", FlightClassName(FlightLoad), FlightClassName(FlightStore))
	}
}

func TestFlightMergeDeferredCoreOrder(t *testing.T) {
	f := NewFlight(3, 16, 8)
	f.Enable()
	// File in scrambled core order, as racing lanes would.
	f.Defer(2, flightRec(2, 10, 100))
	f.Defer(0, flightRec(0, 20, 100))
	f.Defer(1, flightRec(1, 30, 100))
	f.Defer(0, flightRec(0, 40, 100))
	if got := f.Seen(FlightLoad); got != 0 {
		t.Fatalf("deferred records hit the pipeline before the barrier: %d", got)
	}
	f.MergeDeferred()
	if got := f.Seen(FlightLoad); got != 4 {
		t.Fatalf("pipeline saw %d records after merge, want 4", got)
	}
	// Sequence numbers are assigned in core order, file order within a
	// core: core0's two records first, then core1, then core2.
	wantOrder := []struct {
		core  int
		issue uint64
		seq   uint32
	}{{0, 20, 1}, {0, 40, 2}, {1, 30, 3}, {2, 10, 4}}
	for _, w := range wantOrder {
		recs := f.CoreRecords(w.core)
		found := false
		for _, r := range recs {
			if r.Issue == w.issue {
				found = true
			}
		}
		if !found {
			t.Fatalf("core %d ring missing issue %d", w.core, w.issue)
		}
	}
	// A second merge with nothing pending is a no-op.
	f.MergeDeferred()
	if got := f.Seen(FlightLoad); got != 4 {
		t.Fatalf("empty merge changed record count to %d", got)
	}
}

func TestFlightRecordAllocFree(t *testing.T) {
	f := NewFlight(1, 64, 8)
	f.Enable()
	// Warm the sketch so the steady-state path includes promotion checks.
	r := &lcg{s: 3}
	for i := 0; i < 4*flightWarmup; i++ {
		f.Record(0, flightRec(0, uint64(i)*10, 100+r.next()%1000))
	}
	i := uint64(0)
	if got := testing.AllocsPerRun(1000, func() {
		i++
		f.Record(0, flightRec(0, i*10, 100+(i%900)))
	}); got != 0 {
		t.Fatalf("Record allocates %.1f per op in steady state, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() {
		i++
		f.Defer(0, flightRec(0, i*10, 100+(i%900)))
		f.MergeDeferred()
	}); got != 0 {
		t.Fatalf("Defer+MergeDeferred allocates %.1f per op in steady state, want 0", got)
	}
}

func TestFlightEnabledNilSafe(t *testing.T) {
	var f *Flight
	if f.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	g := NewFlight(1, 4, 4)
	if g.Enabled() {
		t.Fatal("fresh recorder starts enabled")
	}
	g.Enable()
	if !g.Enabled() {
		t.Fatal("Enable did not stick")
	}
	g.Disable()
	if g.Enabled() {
		t.Fatal("Disable did not stick")
	}
}

func TestFlightCoreOutOfRangePanics(t *testing.T) {
	f := NewFlight(2, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range core did not panic")
		}
	}()
	f.Record(2, FlightRec{})
}

func TestBundleRoundTrip(t *testing.T) {
	f := NewFlight(2, 32, 8)
	f.Enable()
	f.SetEpoch(7)
	for i := 0; i < 2*flightWarmup; i++ {
		f.Record(i%2, flightRec(i%2, uint64(i)*10, 200))
	}
	f.Record(0, flightRec(0, 1<<16, 50000))

	reg := NewRegistry()
	reg.Counter("pf_test_total", "test counter").Add(5)
	var buf bytes.Buffer
	err := DumpBundle(&buf, BundleOpts{
		Trigger:   "test",
		Flight:    f,
		Metrics:   reg,
		Status:    func() any { return map[string]string{"state": "done"} },
		FaultPlan: "seed=1,crc=1e-3",
		Aux:       map[string]float64{"clocks": 123},
	})
	if err != nil {
		t.Fatalf("DumpBundle: %v", err)
	}

	b, err := ReadBundle(&buf)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if b.Schema != BundleSchema || b.Trigger != "test" || b.Epoch != 7 {
		t.Fatalf("header = %+v", b)
	}
	if b.Flight.Records != f.RecordsTotal() {
		t.Fatalf("bundle records %d != recorder %d", b.Flight.Records, f.RecordsTotal())
	}
	if b.Flight.Promoted == 0 || len(b.Flight.Tail) == 0 {
		t.Fatal("bundle lost the promoted tail")
	}
	if !bytes.Contains([]byte(b.Metrics), []byte("pf_test_total 5")) {
		t.Fatalf("metrics snapshot missing counter:\n%s", b.Metrics)
	}
	if !bytes.Contains(b.Status, []byte(`"state"`)) {
		t.Fatalf("status lost: %s", b.Status)
	}
	if b.FaultPlan != "seed=1,crc=1e-3" {
		t.Fatalf("fault plan = %q", b.FaultPlan)
	}
	if !bytes.Contains(b.Aux, []byte(`"clocks"`)) {
		t.Fatalf("aux lost: %s", b.Aux)
	}
}

func TestDumpBundleRequiresFlight(t *testing.T) {
	var buf bytes.Buffer
	if err := DumpBundle(&buf, BundleOpts{Trigger: "test"}); err == nil {
		t.Fatal("DumpBundle without a recorder did not error")
	}
}

func TestReadBundleRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadBundle(bytes.NewReader([]byte(`{"schema": 99}`))); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestFlightRegisterMetrics(t *testing.T) {
	f := NewFlight(1, 16, 4)
	f.Enable()
	reg := NewRegistry()
	f.RegisterMetrics(reg)
	f.Record(0, flightRec(0, 0, 100))
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"pf_flight_records_total 1",
		"pf_flight_promoted_total 0",
		`pf_flight_threshold_cycles{class="DRd"}`,
		`pf_flight_threshold_cycles{class="DWr"}`,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func commitOne(t *Tracer, core int, addr uint64, stages ...Span) {
	r := t.Begin(core, addr, "DRd")
	for _, sp := range stages {
		r.Span(sp.Stage, sp.Start, sp.End)
	}
	t.Commit(r)
}

func TestTracerDisabledSamplesNothing(t *testing.T) {
	tr := NewTracer(8, 1)
	for i := 0; i < 100; i++ {
		if tr.Sample() {
			t.Fatal("disabled tracer sampled a request")
		}
	}
	if recs := tr.Records(); len(recs) != 0 {
		t.Fatalf("got %d records from disabled tracer", len(recs))
	}
}

func TestTracerSamplingRate(t *testing.T) {
	tr := NewTracer(1024, 10)
	tr.Enable()
	hits := 0
	for i := 0; i < 1000; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-10 sampling over 1000: got %d hits, want 100", hits)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4, 1)
	tr.Enable()
	for i := uint64(1); i <= 10; i++ {
		commitOne(tr, 0, i*64, Span{Stage: StageReq, Start: i, End: i + 100})
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	// Oldest-first commit order: records 7..10 survive.
	for i, want := range []uint64{7, 8, 9, 10} {
		if recs[i].ID != want {
			t.Fatalf("recs[%d].ID = %d, want %d", i, recs[i].ID, want)
		}
	}
	stats, committed, dropped := tr.Stats()
	if committed != 10 || dropped != 6 {
		t.Fatalf("committed=%d dropped=%d, want 10/6", committed, dropped)
	}
	if stats[StageReq].Spans != 10 || stats[StageReq].Cycles != 1000 {
		t.Fatalf("StageReq stats = %+v, want 10 spans / 1000 cycles", stats[StageReq])
	}
}

func TestReqRecDropsBadAndOverflowSpans(t *testing.T) {
	var r ReqRec
	r.Span(StageL2, 10, 10) // zero-length: dropped
	r.Span(StageL2, 10, 5)  // inverted: dropped
	for i := 0; i < maxSpans+4; i++ {
		r.Span(StageCXLLink, uint64(i), uint64(i)+1)
	}
	if len(r.Spans()) != maxSpans {
		t.Fatalf("got %d spans, want cap %d", len(r.Spans()), maxSpans)
	}
}

func TestSealMem(t *testing.T) {
	var r ReqRec
	if r.MemSealed() {
		t.Fatal("fresh record sealed")
	}
	r.SealMem()
	if !r.MemSealed() {
		t.Fatal("SealMem did not seal")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8, 1)
	tr.Enable()
	r := tr.Begin(2, 0x1000, "DRd")
	r.Loc = "cxl"
	r.Span(StageReq, 100, 400)
	r.Span(StageCXLLink, 150, 250)
	tr.Commit(r)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Records(), 2.0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int32          `json:"pid"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "req" || ev.Ph != "X" || ev.PID != 2 || ev.TID != 1 {
		t.Fatalf("bad req event: %+v", ev)
	}
	// 100 cycles at 2 GHz = 50 ns = 0.05 µs start; 300 cycles = 0.15 µs dur.
	if ev.TS != 0.05 || ev.Dur != 0.15 {
		t.Fatalf("ts/dur = %v/%v, want 0.05/0.15", ev.TS, ev.Dur)
	}
	if ev.Args["loc"] != "cxl" || ev.Args["class"] != "DRd" {
		t.Fatalf("req args = %v", ev.Args)
	}
	if doc.TraceEvents[1].Name != "cxl_link" {
		t.Fatalf("second event = %q, want cxl_link", doc.TraceEvents[1].Name)
	}
}

package obs

import "sync"

// Exemplar pins the most recent promoted request that landed in one
// histogram bucket: the promotion sequence number and completion cycle are
// enough to find the exact record in a flight bundle's tail store.
// Prometheus text 0.0.4 has no exemplar syntax, so exemplars travel on the
// /flight JSON document and in bundles instead of on /metrics.
type Exemplar struct {
	Bucket int     `json:"bucket"` // index into the bounds; len(bounds) = overflow
	Seq    uint32  `json:"seq"`    // promotion sequence of the pinned request
	Cycle  uint64  `json:"cycle"`  // completion cycle of the pinned request
	Value  float64 `json:"value"`  // the observed value that was pinned
	Count  uint64  `json:"count"`  // promotions that have hit this bucket
}

// ExemplarSet holds one exemplar slot per histogram bucket (the bounds
// plus the overflow bucket).  Updates are rare — one per promotion, not
// one per observation — so a plain mutex is fine.
type ExemplarSet struct {
	mu     sync.Mutex
	bounds []float64
	slots  []Exemplar
}

// NewExemplarSet builds a set over the same bucket bounds as the
// histogram it annotates.
func NewExemplarSet(bounds []float64) *ExemplarSet {
	return &ExemplarSet{
		bounds: append([]float64(nil), bounds...),
		slots:  make([]Exemplar, len(bounds)+1),
	}
}

// Bounds returns the bucket upper bounds (the overflow bucket is implied).
func (s *ExemplarSet) Bounds() []float64 {
	return append([]float64(nil), s.bounds...)
}

// Mark pins (seq, cycle) as the exemplar of the bucket v falls into,
// replacing any previous exemplar there.
func (s *ExemplarSet) Mark(v float64, seq uint32, cycle uint64) {
	b := len(s.bounds)
	for i, ub := range s.bounds {
		if v <= ub {
			b = i
			break
		}
	}
	s.mu.Lock()
	sl := &s.slots[b]
	sl.Bucket = b
	sl.Seq = seq
	sl.Cycle = cycle
	sl.Value = v
	sl.Count++
	s.mu.Unlock()
}

// Snapshot returns the populated exemplar slots in bucket order.
func (s *ExemplarSet) Snapshot() []Exemplar {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Exemplar, 0, len(s.slots))
	for _, sl := range s.slots {
		if sl.Count > 0 {
			out = append(out, sl)
		}
	}
	return out
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("pf_profiler_epochs_total", "epochs run").Add(3)
	tr := NewTracer(8, 1)
	tr.Enable()
	commitOne(tr, 0, 0x40, Span{Stage: StageReq, Start: 0, End: 10})
	status := func() any {
		return map[string]any{"epoch": 3, "flows": []string{"stream"}}
	}
	srv := httptest.NewServer(NewServer(reg, tr, status, 2.0).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetrics(t *testing.T) {
	srv := newTestServer(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "pf_profiler_epochs_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
}

func TestServerStatus(t *testing.T) {
	srv := newTestServer(t)
	code, body := get(t, srv.URL+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status status = %d", code)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if v["epoch"] != float64(3) {
		t.Fatalf("/status epoch = %v", v["epoch"])
	}
}

func TestServerTrace(t *testing.T) {
	srv := newTestServer(t)
	code, body := get(t, srv.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("/trace has %d events, want 1", len(doc.TraceEvents))
	}
}

func TestServerPprofIndex(t *testing.T) {
	srv := newTestServer(t)
	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/ index missing profile list")
	}
}

func TestServerStartStop(t *testing.T) {
	s := NewServer(nil, nil, nil, 1)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, _ := get(t, "http://"+addr.String()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("live /metrics status = %d", code)
	}
	// nil tracer: /trace is 404, not a crash.
	code, _ = get(t, "http://"+addr.String()+"/trace")
	if code != http.StatusNotFound {
		t.Fatalf("/trace without tracer = %d, want 404", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

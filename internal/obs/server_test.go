package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("pf_profiler_epochs_total", "epochs run").Add(3)
	tr := NewTracer(8, 1)
	tr.Enable()
	commitOne(tr, 0, 0x40, Span{Stage: StageReq, Start: 0, End: 10})
	status := func() any {
		return map[string]any{"epoch": 3, "flows": []string{"stream"}}
	}
	srv := httptest.NewServer(NewServer(reg, tr, status, 2.0).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetrics(t *testing.T) {
	srv := newTestServer(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "pf_profiler_epochs_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
}

func TestServerStatus(t *testing.T) {
	srv := newTestServer(t)
	code, body := get(t, srv.URL+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status status = %d", code)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if v["epoch"] != float64(3) {
		t.Fatalf("/status epoch = %v", v["epoch"])
	}
}

func TestServerTrace(t *testing.T) {
	srv := newTestServer(t)
	code, body := get(t, srv.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("/trace has %d events, want 1", len(doc.TraceEvents))
	}
}

func TestServerPprofIndex(t *testing.T) {
	srv := newTestServer(t)
	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/ index missing profile list")
	}
}

func TestServerStartStop(t *testing.T) {
	s := NewServer(nil, nil, nil, 1)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, _ := get(t, "http://"+addr.String()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("live /metrics status = %d", code)
	}
	// nil tracer: /trace is 404, not a crash.
	code, _ = get(t, "http://"+addr.String()+"/trace")
	if code != http.StatusNotFound {
		t.Fatalf("/trace without tracer = %d, want 404", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerGracefulShutdown proves Shutdown drains an in-flight request
// before returning, and that the port stops accepting afterwards.
func TestServerGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	inHandler := make(chan struct{}, 1)
	status := func() any {
		inHandler <- struct{}{}
		<-release // simulate a slow scraper mid-request
		return map[string]any{"ok": true}
	}
	s := NewServer(NewRegistry(), nil, status, 1)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + addr.String() + "/status")
		if err != nil {
			got <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got <- resp.StatusCode
	}()
	<-inHandler // the request is now in flight

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(5 * time.Second) }()
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}
	if code := <-got; code != http.StatusOK {
		t.Fatalf("in-flight request got %d, want 200", code)
	}
	if _, err := http.Get("http://" + addr.String() + "/status"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}

// TestServerShutdownTimeout proves a stuck request cannot wedge Shutdown:
// the deadline forces the connection closed and the error reports it.
func TestServerShutdownTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	inHandler := make(chan struct{}, 1)
	status := func() any {
		inHandler <- struct{}{}
		<-release
		return nil
	}
	s := NewServer(NewRegistry(), nil, status, 1)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Get("http://" + addr.String() + "/status")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler
	if err := s.Shutdown(20 * time.Millisecond); err == nil {
		t.Fatal("Shutdown returned nil despite a wedged request")
	}
}

// Shutdown before Start is a no-op, mirroring Close.
func TestServerShutdownUnstarted(t *testing.T) {
	s := NewServer(nil, nil, nil, 1)
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
}

// Regression: Close after Shutdown (and doubled Shutdown/Close in any
// order) must be idempotent no-ops.  The old code let a late Close race
// the listener Shutdown had already torn down.
func TestServerTeardownIdempotent(t *testing.T) {
	s := NewServer(nil, nil, nil, 1)
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}

	// Close-first ordering on a fresh listen cycle.
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("restart after teardown: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown after Close: %v", err)
	}
}

func TestServerFlightEndpoints(t *testing.T) {
	// Without a recorder both endpoints 404.
	bare := httptest.NewServer(NewServer(NewRegistry(), nil, nil, 1).Handler())
	defer bare.Close()
	if code, _ := get(t, bare.URL+"/flight"); code != http.StatusNotFound {
		t.Fatalf("/flight without recorder = %d, want 404", code)
	}
	if code, _ := get(t, bare.URL+"/flight/dump"); code != http.StatusNotFound {
		t.Fatalf("/flight/dump without recorder = %d, want 404", code)
	}

	fl := NewFlight(1, 16, 4)
	fl.Enable()
	fl.Record(0, flightRec(0, 0, 123))
	reg := NewRegistry()
	reg.Counter("pf_epochs_total", "epochs").Add(2)
	s := NewServer(reg, nil, func() any { return map[string]int{"epoch": 2} }, 1)
	s.SetFlight(fl, "seed=9,crc=1e-4")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/flight")
	if code != http.StatusOK {
		t.Fatalf("/flight status = %d", code)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/flight not a snapshot: %v\n%s", err, body)
	}
	if !snap.Enabled || snap.Records != 1 {
		t.Fatalf("/flight snapshot = %+v", snap)
	}

	code, body = get(t, srv.URL+"/flight/dump")
	if code != http.StatusOK {
		t.Fatalf("/flight/dump status = %d", code)
	}
	b, err := ReadBundle(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/flight/dump not a bundle: %v", err)
	}
	if b.Trigger != "http" || b.FaultPlan != "seed=9,crc=1e-4" {
		t.Fatalf("bundle header = trigger %q plan %q", b.Trigger, b.FaultPlan)
	}
	if !strings.Contains(b.Metrics, "pf_epochs_total 2") {
		t.Fatalf("bundle metrics missing counter:\n%s", b.Metrics)
	}
	if !strings.Contains(string(b.Status), `"epoch"`) {
		t.Fatalf("bundle status lost: %s", b.Status)
	}
}

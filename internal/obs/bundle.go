package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// BundleSchema versions the bundle document so readers can refuse formats
// they do not understand.
const BundleSchema = 1

// Bundle is the postmortem artifact: the flight recorder's tail store and
// stats, a Prometheus text snapshot of the metrics registry, the /status
// JSON, and the active fault plan, all in one self-describing JSON file.
// Status and Aux stay raw on the read side so tools can pass them through
// without knowing their shape.
type Bundle struct {
	Schema    int             `json:"schema"`
	Trigger   string          `json:"trigger"`
	Epoch     uint64          `json:"epoch"`
	Flight    FlightSnapshot  `json:"flight"`
	Metrics   string          `json:"metrics,omitempty"`
	Status    json.RawMessage `json:"status,omitempty"`
	FaultPlan string          `json:"fault_plan,omitempty"`
	Aux       json.RawMessage `json:"aux,omitempty"`
}

// BundleOpts names the sources a bundle is assembled from; every field
// except Trigger and Flight is optional.
type BundleOpts struct {
	Trigger   string     // what fired the dump: "sigquit", "http", "chaos-violation", "watchdog", ...
	Flight    *Flight    // the recorder to snapshot
	Metrics   *Registry  // rendered as a Prometheus text snapshot
	Status    func() any // the same provider the /status endpoint uses
	FaultPlan string     // canonical FaultPlan string, "" when healthy
	Aux       any        // caller-specific context (chaos queue estimates, ...)
}

// DumpBundle assembles and writes a postmortem bundle.  It is safe to call
// while the simulation is running: the flight snapshot and metrics render
// take their own locks.
func DumpBundle(w io.Writer, o BundleOpts) error {
	if o.Flight == nil {
		return fmt.Errorf("obs: DumpBundle: no flight recorder attached")
	}
	b := Bundle{
		Schema:    BundleSchema,
		Trigger:   o.Trigger,
		Epoch:     o.Flight.Epoch(),
		Flight:    o.Flight.Snapshot(),
		FaultPlan: o.FaultPlan,
	}
	if o.Metrics != nil {
		var sb strings.Builder
		if err := o.Metrics.WritePrometheus(&sb); err != nil {
			return fmt.Errorf("obs: DumpBundle: metrics snapshot: %w", err)
		}
		b.Metrics = sb.String()
	}
	if o.Status != nil {
		if v := o.Status(); v != nil {
			raw, err := json.Marshal(v)
			if err != nil {
				return fmt.Errorf("obs: DumpBundle: status: %w", err)
			}
			b.Status = raw
		}
	}
	if o.Aux != nil {
		raw, err := json.Marshal(o.Aux)
		if err != nil {
			return fmt.Errorf("obs: DumpBundle: aux: %w", err)
		}
		b.Aux = raw
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&b)
}

// WriteBundleFile dumps a bundle to path, truncating any previous one.
func WriteBundleFile(path string, o BundleOpts) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := DumpBundle(f, o)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ReadBundle parses a bundle document.
func ReadBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("obs: bundle: %w", err)
	}
	if b.Schema != BundleSchema {
		return nil, fmt.Errorf("obs: bundle schema %d not supported (want %d)", b.Schema, BundleSchema)
	}
	return &b, nil
}

// ReadBundleFile parses a bundle from disk.
func ReadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBundle(f)
}

package obs

import (
	"sync"
	"sync/atomic"
)

// Stage identifies one segment of a request's traversal of the machine —
// the waterfall rows of the paper's §2.2 data paths.  Stage boundaries are
// the reqTimes crossings the simulator already computes, so tracing adds no
// timing model of its own.
type Stage uint8

// Stages, in path order.
const (
	StageReq      Stage = iota // whole request: issue -> data return
	StageSB                    // store-buffer full wait (stores)
	StageLFB                   // line-fill-buffer allocation / merge wait
	StageL2                    // L2 lookup segment
	StageCHA                   // CHA/TOR dispatch segment (mesh + LLC lookup)
	StageIMC                   // IMC channel: RPQ/WPQ + DRAM media
	StageM2PCIe                // M2PCIe ingress: mesh -> link credit wait
	StageCXLLink               // FlexBus serialization + flight, host -> device
	StageCXLDevQ               // device packing buffer + controller + RPQ/WPQ wait
	StageCXLMedia              // device media access
	StageCXLRet                // response: device -> host link + M2PCIe egress
	StageLRSM                  // LRSM retry/replay detour (CRC-corrupted transfer)
	StageCount
)

var stageNames = [StageCount]string{
	"req", "sb", "lfb", "l2", "cha", "imc",
	"m2pcie", "cxl_link", "cxl_devq", "cxl_media", "cxl_return", "lrsm_replay",
}

// String returns the stage's waterfall/export name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// Span is one timestamped segment of a traced request, in simulated cycles.
type Span struct {
	Stage      Stage
	Start, End uint64
}

// maxSpans bounds a record: path stages plus a few LRSM detours.  Overflow
// spans are dropped (never reallocated) so tracing stays allocation-free.
const maxSpans = 16

// ReqRec is one traced request: identity plus its recorded spans.  Class
// and Loc are the simulator's static names (no per-request formatting).
type ReqRec struct {
	ID    uint64
	Core  int32
	Addr  uint64
	Class string // "DRd", "RFO", ...
	Loc   string // serve location, set at completion

	spans  [maxSpans]Span
	nspans int32
	sealed bool // memory-device stages recorded (guards prefetch pollution)
}

// Span records one segment; zero-length and overflow spans are dropped.
func (r *ReqRec) Span(st Stage, start, end uint64) {
	if end <= start || int(r.nspans) >= maxSpans {
		return
	}
	r.spans[r.nspans] = Span{Stage: st, Start: start, End: end}
	r.nspans++
}

// Spans returns the recorded segments.
func (r *ReqRec) Spans() []Span { return r.spans[:r.nspans] }

// MemSealed reports whether the record already holds its memory-device
// stages.  The simulator seals a record after the demand request's own
// device visit so prefetches and victim writebacks issued while the record
// is current do not overwrite the waterfall.
func (r *ReqRec) MemSealed() bool { return r.sealed }

// SealMem marks the memory-device stages recorded.
func (r *ReqRec) SealMem() { r.sealed = true }

// StageStat is the running aggregate of one stage across every committed
// record — the waterfall summary does not depend on ring capacity.
type StageStat struct {
	Spans  uint64
	Cycles uint64
}

// Tracer is a sampled request-path tracer: 1-in-Every requests get a
// ReqRec; committed records land in a bounded ring (oldest overwritten)
// and fold into per-stage aggregates.  The simulator side (Sample, Begin,
// the ReqRec methods) is single-goroutine by the Machine's own contract;
// Commit and the readers (Records, Stats, WriteChromeTrace) synchronize on
// an internal mutex so a live /trace download mid-run is race-free.
//
// When disabled, Sample is one atomic load — the only cost tracing adds to
// an untraced run.
type Tracer struct {
	enabled atomic.Bool
	every   uint64

	tick    uint64 // sampling countdown (simulator goroutine only)
	nextID  uint64
	scratch ReqRec

	mu    sync.Mutex
	ring  []ReqRec
	n     uint64 // total committed
	stats [StageCount]StageStat
	drops uint64 // committed records that overwrote an unread slot
}

// NewTracer returns a tracer keeping the last capacity records, sampling
// one in every requests.  capacity < 1 and every < 1 are clamped to 1.
func NewTracer(capacity int, every int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	if every < 1 {
		every = 1
	}
	return &Tracer{every: uint64(every), ring: make([]ReqRec, 0, capacity)}
}

// Enable turns sampling on.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable turns sampling off; records already committed are kept.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether the tracer is sampling.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Every returns the sampling rate (1-in-N).
func (t *Tracer) Every() int { return int(t.every) }

// Sample reports whether the next request should be traced, advancing the
// sampling counter.  The fast path (disabled) is a single atomic load.
func (t *Tracer) Sample() bool {
	if !t.enabled.Load() {
		return false
	}
	t.tick++
	if t.tick < t.every {
		return false
	}
	t.tick = 0
	return true
}

// Begin starts a record for a sampled request.  The returned record is the
// tracer's scratch slot — valid until Commit; never retained.
func (t *Tracer) Begin(core int, addr uint64, class string) *ReqRec {
	t.nextID++
	r := &t.scratch
	*r = ReqRec{ID: t.nextID, Core: int32(core), Addr: addr, Class: class}
	return r
}

// Commit finalizes a record into the ring and the per-stage aggregates.
func (t *Tracer) Commit(r *ReqRec) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, *r)
	} else {
		t.ring[t.n%uint64(cap(t.ring))] = *r
		t.drops++
	}
	t.n++
	for _, sp := range r.Spans() {
		t.stats[sp.Stage].Spans++
		t.stats[sp.Stage].Cycles += sp.End - sp.Start
	}
	t.mu.Unlock()
}

// Records returns a copy of the retained records in commit order
// (oldest first).
func (t *Tracer) Records() []ReqRec {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ReqRec, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	head := int(t.n % uint64(cap(t.ring)))
	out = append(out, t.ring[head:]...)
	return append(out, t.ring[:head]...)
}

// Stats returns the per-stage aggregates over every committed record, the
// total committed count, and how many records were overwritten in the ring.
func (t *Tracer) Stats() (stats [StageCount]StageStat, committed, dropped uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats, t.n, t.drops
}

package report

import (
	"fmt"

	"pathfinder/internal/core"
)

// This file renders one profiling epoch's per-application analyses — the
// PFBuilder path map, PFEstimator stall breakdown, and PFAnalyzer queue
// estimates — as the tables cmd/pathfinder prints.  Pulling the rendering
// out of the CLI keeps the text format pinned by a golden test: the table
// layout is part of the tool's observable interface.

// ComponentCols returns the stall/queue component column headers.
func ComponentCols() []string {
	var out []string
	for _, c := range core.Components() {
		out = append(out, c.String())
	}
	return out
}

// PathMapTable renders a PFBuilder path map (requests per path and level).
func PathMapTable(pm *core.PathMap) *Table {
	t := &Table{Title: "PFBuilder path map (last epoch)",
		Cols: []string{"level", "DRd", "RFO", "HW PF", "DWr"}}
	for _, l := range core.Levels() {
		if pm.LevelTotal(l) == 0 {
			continue
		}
		t.AddRow(l.String(),
			Num(pm.Load[core.PathDRd][l]), Num(pm.Load[core.PathRFO][l]),
			Num(pm.Load[core.PathHWPF][l]), Num(pm.Load[core.PathDWr][l]))
	}
	return t
}

// StallTable renders a PFEstimator CXL-induced stall breakdown as
// per-component shares; paths with no attributed stalls are omitted.
func StallTable(bd *core.StallBreakdown) *Table {
	t := &Table{Title: "PFEstimator CXL-induced stall breakdown",
		Cols: append([]string{"path"}, ComponentCols()...)}
	for _, pt := range core.Paths() {
		if bd.Total(pt) == 0 {
			continue
		}
		row := []string{pt.String()}
		for _, c := range core.Components() {
			row = append(row, Pct(bd.Share(pt, c)))
		}
		t.AddRow(row...)
	}
	return t
}

// QueueTable renders PFAnalyzer's queue estimates with the culprit
// (path, component) pair in the title; all-zero paths are omitted.
func QueueTable(qr *core.QueueReport) *Table {
	t := &Table{Title: "PFAnalyzer queue estimates (culprit: " +
		qr.CulpritPath.String() + " on " + qr.CulpritComp.String() + ")",
		Cols: append([]string{"path"}, ComponentCols()...)}
	for _, pt := range core.Paths() {
		row := []string{pt.String()}
		any := false
		for _, c := range core.Components() {
			if qr.Q[pt][c] > 0 {
				any = true
			}
			row = append(row, Num(qr.Q[pt][c]))
		}
		if any {
			t.AddRow(row...)
		}
	}
	return t
}

// Epoch renders the full per-application report for one epoch result:
// path map, stall breakdown, and queue estimates, in that order.
func Epoch(label string, r *core.EpochResult) string {
	pm := r.PathMaps[label]
	bd := r.Stalls[label]
	qr := r.Queues[label]
	out := ""
	if pm != nil {
		out += PathMapTable(pm).String() + "\n"
	}
	if bd != nil {
		out += StallTable(bd).String() + "\n"
	}
	if qr != nil {
		out += QueueTable(qr).String() + "\n"
	}
	if r.Note != "" {
		out += fmt.Sprintf("note: %s\n", r.Note)
	}
	return out
}

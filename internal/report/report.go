// Package report renders experiment results as aligned ASCII tables and
// series — the textual equivalents of the paper's tables and figures that
// cmd/pfbench and the benchmark harness print.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Series is figure-style data: a shared X axis and one or more named Y
// columns.
type Series struct {
	Title string
	XName string
	Names []string
	X     []float64
	Y     [][]float64 // Y[i] aligns with Names[i]; each aligns with X
}

// Add appends one X point with its Y values (one per named column).
func (s *Series) Add(x float64, ys ...float64) {
	s.X = append(s.X, x)
	if s.Y == nil {
		s.Y = make([][]float64, len(ys))
	}
	for i, y := range ys {
		s.Y[i] = append(s.Y[i], y)
	}
}

// String renders the series as aligned columns.
func (s *Series) String() string {
	t := Table{Title: s.Title, Cols: append([]string{s.XName}, s.Names...)}
	for i, x := range s.X {
		row := []string{Num(x)}
		for j := range s.Names {
			v := 0.0
			if j < len(s.Y) && i < len(s.Y[j]) {
				v = s.Y[j][i]
			}
			row = append(row, Num(v))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Num formats a value compactly: fixed-point for small magnitudes,
// scientific (Table 7 style) for large ones.
func Num(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.1E", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Ratio formats a multiplicative factor ("2.1x").
func Ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Cols: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("separator = %q", lines[2])
	}
	// Column alignment: "value" starts at the same offset in every row.
	off := strings.Index(lines[1], "value")
	if lines[3][off:off+1] != "1" && lines[4][off:off+2] != "22" {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := &Table{Cols: []string{"x"}}
	tb.AddRow("1")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("leading newline without title")
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Title: "sweep", XName: "load", Names: []string{"a", "b"}}
	s.Add(0.2, 1, 10)
	s.Add(0.4, 2, 20)
	out := s.String()
	if !strings.Contains(out, "load") || !strings.Contains(out, "0.4000") {
		t.Fatalf("series output:\n%s", out)
	}
	if len(s.X) != 2 || s.Y[1][1] != 20 {
		t.Fatalf("series data: %+v", s)
	}
}

func TestNumFormats(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.1234, "0.1234"},
		{5.5, "5.50"},
		{123, "123"},
		{1.5e8, "1.5E+08"},
		{-2e6, "-2.0E+06"},
	}
	for _, c := range cases {
		if got := Num(c.in); got != c.want {
			t.Errorf("Num(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPctRatio(t *testing.T) {
	if got := Pct(0.427); got != "42.7%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Ratio(2.145); got != "2.15x" {
		t.Fatalf("Ratio = %q", got)
	}
}

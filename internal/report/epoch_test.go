package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pathfinder/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// cannedEpoch builds a fully deterministic EpochResult: the values are
// arbitrary but chosen to exercise every formatting branch (zero rows
// omitted, percentage and scientific rendering, the culprit title).
func cannedEpoch() *core.EpochResult {
	pm := &core.PathMap{}
	for i, l := range core.Levels() {
		pm.Load[core.PathDRd][l] = float64((i + 1) * 12345)
		pm.Load[core.PathRFO][l] = float64(i * 7)
		pm.Load[core.PathHWPF][l] = float64(i) * 0.5
	}
	pm.Load[core.PathDWr][core.LvlCXL] = 2.5e7 // scientific notation branch

	bd := &core.StallBreakdown{}
	for i, c := range core.Components() {
		bd.Stall[core.PathDRd][c] = float64((i + 1) * 100)
		bd.Stall[core.PathHWPF][c] = float64(i * 10)
	}
	// PathRFO left all-zero: its row must be omitted.

	qr := &core.QueueReport{CulpritPath: core.PathDRd, CulpritComp: core.CompCXLDIMM}
	for i, c := range core.Components() {
		qr.Q[core.PathDRd][c] = float64(i+1) * 0.125
	}

	return &core.EpochResult{
		PathMaps: map[string]*core.PathMap{"CANNED": pm},
		Stalls:   map[string]*core.StallBreakdown{"CANNED": bd},
		Queues:   map[string]*core.QueueReport{"CANNED": qr},
		Note:     "core: workloads idle after 3 of 8 chunks, 750000 of 2000000 epoch cycles simulated",
	}
}

// TestEpochGolden pins the rendered epoch report byte-for-byte against the
// committed fixture: the table text is part of the CLI's interface.
// Regenerate deliberately with `go test ./internal/report -run Golden -update`.
func TestEpochGolden(t *testing.T) {
	got := Epoch("CANNED", cannedEpoch())
	golden := filepath.Join("testdata", "epoch.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if got != string(want) {
		t.Fatalf("rendered epoch report drifted from %s\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}

// TestEpochSkipsMissingSections: a label with no analyses renders only the
// note, not empty tables.
func TestEpochSkipsMissingSections(t *testing.T) {
	r := &core.EpochResult{Note: "n"}
	if got := Epoch("nope", r); got != "note: n\n" {
		t.Fatalf("Epoch on empty result = %q", got)
	}
}

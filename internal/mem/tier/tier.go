// Package tier implements the memory-tiering mechanisms PathFinder's Case 7
// evaluates: TPP-style transparent page placement (hot-page promotion from
// the CXL tier plus cold-page demotion under local-memory pressure),
// Colloid's latency-balancing gate on top of it, and the PathFinder-guided
// dynamic variant that feeds Colloid the latency of the currently dominant
// request type instead of a fixed DRd latency.
package tier

import (
	"errors"
	"sort"

	"pathfinder/internal/mem"
)

// Migrator moves a page between NUMA nodes; *sim.Machine implements it
// (charging the transfer to the device counters).
type Migrator interface {
	MigratePage(addr uint64, dst mem.NodeID) error
}

// Mode selects the promotion policy.
type Mode uint8

// Tiering modes.
const (
	ModeTPP     Mode = iota // always promote hot CXL pages (TPP)
	ModeColloid             // promote only while CXL access latency exceeds local
)

// Config tunes the manager.
type Config struct {
	Mode Mode
	// PromoteThreshold is the sampled-access count that marks a CXL page
	// hot (TPP promotes on the second touch: 2).
	PromoteThreshold int
	// LocalHighWatermark is the local-node utilization above which cold
	// local pages are demoted to make promotion headroom.
	LocalHighWatermark float64
	// MaxMigrationsPerTick bounds migration bandwidth.
	MaxMigrationsPerTick int
	// DecayShift halves (>>1 per tick when 1) the heat counters each
	// tick; 0 disables decay.
	DecayShift uint
}

// DefaultConfig returns the TPP configuration used by the paper's Case 7.
func DefaultConfig() Config {
	return Config{
		Mode:                 ModeTPP,
		PromoteThreshold:     2,
		LocalHighWatermark:   0.95,
		MaxMigrationsPerTick: 64,
		DecayShift:           1,
	}
}

// Stats accumulates manager activity.
type Stats struct {
	Promoted, Demoted int
	SampledAccesses   uint64
}

// Manager tracks page heat from sampled memory accesses and migrates pages
// between the local and CXL tiers.
type Manager struct {
	as    *mem.AddressSpace
	mig   Migrator
	local mem.NodeID
	cxl   mem.NodeID
	cfg   Config

	heat      map[uint64]uint32 // page base -> decayed access count
	lastTouch map[uint64]uint64 // local page base -> logical time of last touch
	clock     uint64

	// Colloid latency inputs (nanoseconds), updated by the caller from
	// measurement (PFEstimator in the PathFinder-guided variant).
	localLat, cxlLat float64

	stats Stats
}

// NewManager builds a tiering manager over the address space.
func NewManager(as *mem.AddressSpace, mig Migrator, local, cxl mem.NodeID, cfg Config) (*Manager, error) {
	if as == nil || mig == nil {
		return nil, errors.New("tier: need an address space and a migrator")
	}
	if cfg.PromoteThreshold <= 0 {
		cfg.PromoteThreshold = 2
	}
	if cfg.MaxMigrationsPerTick <= 0 {
		cfg.MaxMigrationsPerTick = 64
	}
	if cfg.LocalHighWatermark <= 0 || cfg.LocalHighWatermark > 1 {
		cfg.LocalHighWatermark = 0.95
	}
	return &Manager{
		as:        as,
		mig:       mig,
		local:     local,
		cxl:       cxl,
		cfg:       cfg,
		heat:      make(map[uint64]uint32),
		lastTouch: make(map[uint64]uint64),
	}, nil
}

// Stats returns a copy of the activity counters.
func (t *Manager) Stats() Stats { return t.stats }

// SetLatencies feeds the per-tier access latencies (in any consistent
// unit) that gate Colloid-mode promotion.  In the PathFinder-guided
// variant the caller passes the latency of the dominant request type.
func (t *Manager) SetLatencies(localLat, cxlLat float64) {
	t.localLat, t.cxlLat = localLat, cxlLat
}

// ObserveAccess records one sampled memory access (the sim access hook).
func (t *Manager) ObserveAccess(lineAddr uint64) {
	t.stats.SampledAccesses++
	page := t.as.PageBase(lineAddr)
	switch t.as.NodeOf(page) {
	case t.cxl:
		t.heat[page]++
	case t.local:
		t.lastTouch[page] = t.clock
	}
	t.clock++
}

// promotionAllowed applies the mode gate.
func (t *Manager) promotionAllowed() bool {
	if t.cfg.Mode == ModeTPP {
		return true
	}
	// Colloid: balance access latencies — promote only while the CXL tier
	// is the slower one.
	return t.cxlLat > t.localLat
}

// Tick performs one migration pass: demote cold local pages if the local
// node is over its watermark, then promote hot CXL pages within the
// migration budget.  It returns the number of pages moved.
func (t *Manager) Tick() (promoted, demoted int) {
	budget := t.cfg.MaxMigrationsPerTick

	// Demotion under pressure: pick the least-recently-touched local pages.
	localCap := float64(t.as.Node(t.local).Capacity)
	if float64(t.as.Used(t.local)) > t.cfg.LocalHighWatermark*localCap && len(t.lastTouch) > 0 {
		type cand struct {
			page  uint64
			touch uint64
		}
		cands := make([]cand, 0, len(t.lastTouch))
		for p, at := range t.lastTouch {
			if t.as.NodeOf(p) == t.local {
				cands = append(cands, cand{p, at})
			} else {
				delete(t.lastTouch, p)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].touch < cands[j].touch })
		for _, c := range cands {
			if demoted >= budget/2 {
				break
			}
			if float64(t.as.Used(t.local)) <= t.cfg.LocalHighWatermark*localCap {
				break
			}
			if err := t.mig.MigratePage(c.page, t.cxl); err == nil {
				demoted++
				delete(t.lastTouch, c.page)
			}
		}
	}

	// Promotion of hot CXL pages.
	if t.promotionAllowed() {
		for page, h := range t.heat {
			if promoted >= budget {
				break
			}
			if int(h) < t.cfg.PromoteThreshold {
				continue
			}
			if t.as.NodeOf(page) != t.cxl {
				delete(t.heat, page)
				continue
			}
			if err := t.mig.MigratePage(page, t.local); err != nil {
				// Local node full: demote next tick, stop promoting now.
				break
			}
			promoted++
			delete(t.heat, page)
			t.lastTouch[page] = t.clock
		}
	}

	// Decay heat so stale hotness does not trigger late promotions.
	if t.cfg.DecayShift > 0 {
		for p, h := range t.heat {
			h >>= t.cfg.DecayShift
			if h == 0 {
				delete(t.heat, p)
			} else {
				t.heat[p] = h
			}
		}
	}

	t.stats.Promoted += promoted
	t.stats.Demoted += demoted
	return promoted, demoted
}

package tier

import (
	"testing"

	"pathfinder/internal/mem"
)

// fakeMigrator moves pages directly in the address space and records moves.
type fakeMigrator struct {
	as    *mem.AddressSpace
	moves int
	fail  bool
}

func (f *fakeMigrator) MigratePage(addr uint64, dst mem.NodeID) error {
	if f.fail {
		return mem.ErrNoCapacity
	}
	if err := f.as.MovePage(addr, dst); err != nil {
		return err
	}
	f.moves++
	return nil
}

func tierSpace(t *testing.T, localCap uint64) (*mem.AddressSpace, mem.Region) {
	t.Helper()
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: localCap},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 1 << 30},
	})
	r, err := as.Alloc(64*4096, mem.Fixed(1)) // 64 pages, all CXL
	if err != nil {
		t.Fatal(err)
	}
	return as, r
}

func TestNewManagerValidation(t *testing.T) {
	as, _ := tierSpace(t, 1<<30)
	if _, err := NewManager(nil, &fakeMigrator{as: as}, 0, 1, DefaultConfig()); err == nil {
		t.Fatal("nil space accepted")
	}
	if _, err := NewManager(as, nil, 0, 1, DefaultConfig()); err == nil {
		t.Fatal("nil migrator accepted")
	}
	m, err := NewManager(as, &fakeMigrator{as: as}, 0, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.PromoteThreshold != 2 || m.cfg.MaxMigrationsPerTick != 64 {
		t.Fatalf("defaults not applied: %+v", m.cfg)
	}
}

func TestTPPPromotesHotPages(t *testing.T) {
	as, r := tierSpace(t, 1<<30)
	mig := &fakeMigrator{as: as}
	m, err := NewManager(as, mig, 0, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Touch the first 4 pages repeatedly (hot), the rest once (cold).
	for pass := 0; pass < 3; pass++ {
		for p := uint64(0); p < 4; p++ {
			m.ObserveAccess(r.Base + p*4096 + 64)
		}
	}
	for p := uint64(4); p < 64; p++ {
		m.ObserveAccess(r.Base + p*4096)
	}
	promoted, demoted := m.Tick()
	if promoted != 4 {
		t.Fatalf("promoted %d pages, want 4", promoted)
	}
	if demoted != 0 {
		t.Fatalf("demoted %d with ample local capacity", demoted)
	}
	for p := uint64(0); p < 4; p++ {
		if as.NodeOf(r.Base+p*4096) != 0 {
			t.Fatalf("hot page %d not on local node", p)
		}
	}
	if as.NodeOf(r.Base+10*4096) != 1 {
		t.Fatal("cold page promoted")
	}
	if m.Stats().Promoted != 4 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestPromotionBudget(t *testing.T) {
	as, r := tierSpace(t, 1<<30)
	cfg := DefaultConfig()
	cfg.MaxMigrationsPerTick = 3
	m, _ := NewManager(as, &fakeMigrator{as: as}, 0, 1, cfg)
	for pass := 0; pass < 3; pass++ {
		for p := uint64(0); p < 10; p++ {
			m.ObserveAccess(r.Base + p*4096)
		}
	}
	promoted, _ := m.Tick()
	if promoted != 3 {
		t.Fatalf("promoted %d, want budget 3", promoted)
	}
}

func TestDemotionUnderPressure(t *testing.T) {
	// Local node fits only 8 pages; fill it, then promote hot CXL pages.
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 * 4096},
		{ID: 1, Kind: mem.CXLDRAM, Capacity: 1 << 30},
	})
	local, err := as.Alloc(8*4096, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	cxl, err := as.Alloc(8*4096, mem.Fixed(1))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewManager(as, &fakeMigrator{as: as}, 0, 1, DefaultConfig())

	// Touch local pages (establish recency), then hot CXL pages.
	for p := uint64(0); p < 8; p++ {
		m.ObserveAccess(local.Base + p*4096)
	}
	for pass := 0; pass < 3; pass++ {
		for p := uint64(0); p < 4; p++ {
			m.ObserveAccess(cxl.Base + p*4096)
		}
	}
	// First tick: local is at 100% > watermark -> demote coldest local
	// pages, freeing room for promotion.
	promoted, demoted := m.Tick()
	if demoted == 0 {
		t.Fatal("no demotion despite full local node")
	}
	if promoted == 0 {
		t.Fatal("no promotion after demotion freed room")
	}
	// The demoted pages are the least recently touched ones (0, 1, ...).
	if as.NodeOf(local.Base) != 1 {
		t.Fatal("coldest local page not demoted")
	}
}

func TestColloidGate(t *testing.T) {
	as, r := tierSpace(t, 1<<30)
	cfg := DefaultConfig()
	cfg.Mode = ModeColloid
	m, _ := NewManager(as, &fakeMigrator{as: as}, 0, 1, cfg)
	for pass := 0; pass < 3; pass++ {
		m.ObserveAccess(r.Base)
	}
	// Local latency exceeds CXL (contended local): promotion must pause.
	m.SetLatencies(500, 355)
	if p, _ := m.Tick(); p != 0 {
		t.Fatalf("promoted %d while local is slower", p)
	}
	// Heat decays each tick, so re-heat and flip the balance.
	for pass := 0; pass < 3; pass++ {
		m.ObserveAccess(r.Base)
	}
	m.SetLatencies(103, 355)
	if p, _ := m.Tick(); p != 1 {
		t.Fatalf("promoted %d with CXL slower, want 1", p)
	}
}

func TestHeatDecay(t *testing.T) {
	as, r := tierSpace(t, 1<<30)
	cfg := DefaultConfig()
	cfg.PromoteThreshold = 4
	m, _ := NewManager(as, &fakeMigrator{as: as}, 0, 1, cfg)
	// Two touches per tick never reaches threshold 4 with decay 1.
	for tick := 0; tick < 5; tick++ {
		m.ObserveAccess(r.Base)
		m.ObserveAccess(r.Base)
		if p, _ := m.Tick(); p != 0 {
			t.Fatalf("tick %d promoted a lukewarm page", tick)
		}
	}
	// Four touches in one tick promotes.
	for i := 0; i < 4; i++ {
		m.ObserveAccess(r.Base)
	}
	if p, _ := m.Tick(); p != 1 {
		t.Fatal("hot page not promoted")
	}
}

func TestMigrationFailureStopsPromotion(t *testing.T) {
	as, r := tierSpace(t, 1<<30)
	mig := &fakeMigrator{as: as, fail: true}
	m, _ := NewManager(as, mig, 0, 1, DefaultConfig())
	for pass := 0; pass < 3; pass++ {
		m.ObserveAccess(r.Base)
	}
	if p, _ := m.Tick(); p != 0 {
		t.Fatal("promotion succeeded despite migrator failure")
	}
}

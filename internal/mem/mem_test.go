package mem

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func testNodes() []Node {
	return []Node{
		{ID: 0, Kind: LocalDRAM, Socket: 0, Capacity: 1 << 30},
		{ID: 1, Kind: RemoteDRAM, Socket: 1, Capacity: 1 << 30},
		{ID: 2, Kind: CXLDRAM, Socket: 0, Device: 0, Capacity: 1 << 30},
	}
}

func TestAllocFixed(t *testing.T) {
	as := NewAddressSpace(12, testNodes())
	r, err := as.Alloc(10*4096+1, Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 11*4096 {
		t.Fatalf("Size = %d, want 11 pages", r.Size)
	}
	if as.Used(2) != r.Size {
		t.Fatalf("Used(cxl) = %d", as.Used(2))
	}
	for a := r.Base; a < r.End(); a += 4096 {
		if as.NodeOf(a) != 2 || as.KindOf(a) != CXLDRAM {
			t.Fatalf("page %#x on node %d", a, as.NodeOf(a))
		}
	}
}

func TestAllocSequentialRegions(t *testing.T) {
	as := NewAddressSpace(12, testNodes())
	r1, err := as.Alloc(4096, Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := as.Alloc(4096, Fixed(1))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Base != r1.End() {
		t.Fatalf("regions not contiguous: %#x vs %#x", r2.Base, r1.End())
	}
	if as.NodeOf(r1.Base) != 0 || as.NodeOf(r2.Base) != 1 {
		t.Fatal("placement crossed regions")
	}
}

func TestAllocZeroAndOverCapacity(t *testing.T) {
	as := NewAddressSpace(12, testNodes())
	if _, err := as.Alloc(0, Fixed(0)); err == nil {
		t.Fatal("zero-size alloc succeeded")
	}
	if _, err := as.Alloc(2<<30, Fixed(0)); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("over-capacity alloc: err = %v", err)
	}
	// A failed alloc must leave no residue.
	if as.Used(0) != 0 || as.PageCount() != 0 {
		t.Fatal("failed alloc left residue")
	}
}

func TestInterleavePolicy(t *testing.T) {
	as := NewAddressSpace(12, testNodes())
	r, err := as.Alloc(100*4096, Interleave{A: 0, B: 2, RatioA: 4, RatioB: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := as.ResidentPages(r)
	if res[0] != 80 || res[2] != 20 {
		t.Fatalf("4:1 interleave got %v", res)
	}
	// First four pages local, fifth CXL.
	for i := 0; i < 4; i++ {
		if as.NodeOf(r.Base+uint64(i)*4096) != 0 {
			t.Fatalf("page %d not local", i)
		}
	}
	if as.NodeOf(r.Base+4*4096) != 2 {
		t.Fatal("page 4 not CXL")
	}
}

func TestHotColdPolicy(t *testing.T) {
	as := NewAddressSpace(12, testNodes())
	r, err := as.Alloc(64*4096, HotCold{Hot: 0, Cold: 2, HotFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	res := as.ResidentPages(r)
	if res[0] != 16 || res[2] != 48 {
		t.Fatalf("hot/cold split got %v", res)
	}
}

func TestMovePage(t *testing.T) {
	as := NewAddressSpace(12, testNodes())
	r, err := as.Alloc(2*4096, Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := as.MovePage(r.Base+100, 0); err != nil {
		t.Fatal(err)
	}
	if as.NodeOf(r.Base) != 0 {
		t.Fatal("page not migrated")
	}
	if as.NodeOf(r.Base+4096) != 2 {
		t.Fatal("wrong page migrated")
	}
	if as.Used(0) != 4096 || as.Used(2) != 4096 {
		t.Fatalf("residency accounting: local=%d cxl=%d", as.Used(0), as.Used(2))
	}
	// No-op move.
	if err := as.MovePage(r.Base, 0); err != nil {
		t.Fatal(err)
	}
	if as.Used(0) != 4096 {
		t.Fatal("no-op move changed accounting")
	}
}

func TestMovePageCapacity(t *testing.T) {
	nodes := testNodes()
	nodes[0].Capacity = 4096
	as := NewAddressSpace(12, nodes)
	r, err := as.Alloc(2*4096, Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := as.MovePage(r.Base, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.MovePage(r.Base+4096, 0); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("over-capacity move: err = %v", err)
	}
}

func TestUnallocatedAccessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unallocated access did not panic")
		}
	}()
	as := NewAddressSpace(12, testNodes())
	as.NodeOf(0)
}

func TestNodeByKind(t *testing.T) {
	as := NewAddressSpace(12, testNodes())
	n, ok := as.NodeByKind(CXLDRAM)
	if !ok || n.ID != 2 {
		t.Fatalf("NodeByKind(CXL) = %+v, %v", n, ok)
	}
	as2 := NewAddressSpace(12, testNodes()[:1])
	if _, ok := as2.NodeByKind(CXLDRAM); ok {
		t.Fatal("found CXL node in DRAM-only space")
	}
}

// Property: page residency totals always equal allocation totals after any
// sequence of moves.
func TestResidencyConservation(t *testing.T) {
	f := func(moves []uint16) bool {
		as := NewAddressSpace(12, testNodes())
		r, err := as.Alloc(32*4096, Interleave{A: 0, B: 2, RatioA: 1, RatioB: 1})
		if err != nil {
			return false
		}
		for _, m := range moves {
			page := uint64(m%32) * 4096
			dst := NodeID(m % 3)
			_ = as.MovePage(r.Base+page, dst)
		}
		var total uint64
		for id := range as.Nodes() {
			total += as.Used(NodeID(id))
		}
		return total == r.Size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSpread(t *testing.T) {
	const nSlices = 32
	counts := make([]int, nSlices)
	for i := 0; i < 1<<16; i++ {
		counts[SliceOf(uint64(i)*LineSize, nSlices)]++
	}
	want := float64(1<<16) / nSlices
	for s, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Fatalf("slice %d has %d lines, want ~%.0f (uneven spread)", s, c, want)
		}
	}
	// Same address always hashes to the same slice.
	if SliceOf(0x12340, nSlices) != SliceOf(0x12340, nSlices) {
		t.Fatal("SliceOf not deterministic")
	}
	// Addresses within one line map to one slice.
	if SliceOf(0x12340, nSlices) != SliceOf(0x1237f, nSlices) {
		t.Fatal("SliceOf split a cache line")
	}
	if SliceOf(123, 1) != 0 {
		t.Fatal("single slice must be 0")
	}
}

func TestChannelInterleave(t *testing.T) {
	if ChannelOf(0, 2) != 0 || ChannelOf(LineSize, 2) != 1 || ChannelOf(2*LineSize, 2) != 0 {
		t.Fatal("channels not line-interleaved")
	}
	if ChannelOf(777, 1) != 0 {
		t.Fatal("single channel must be 0")
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr = %#x", LineAddr(0x1234))
	}
}

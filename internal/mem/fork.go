package mem

import "fmt"

// Clone returns an independent copy of the address space: the page table,
// per-node residency, and allocation high-water mark are duplicated so the
// clone can Alloc and MovePage without affecting the original, while the
// node descriptor table — immutable after NewAddressSpace — is shared by
// reference.  This is the copy-on-write boundary the checkpoint layer in
// internal/sim relies on.
func (as *AddressSpace) Clone() *AddressSpace {
	return &AddressSpace{
		pageShift: as.pageShift,
		nodes:     as.nodes,
		pages:     append([]NodeID(nil), as.pages...),
		used:      append([]uint64(nil), as.used...),
		brk:       as.brk,
	}
}

// CopyStateFrom copies src's mutable placement state (page table, per-node
// residency, high-water mark) into as, reusing as's buffers.  Both spaces
// must have the same page size and node count; they then share the same
// immutable node table semantics, so the copy re-positions as exactly where
// src is.
func (as *AddressSpace) CopyStateFrom(src *AddressSpace) {
	if as.pageShift != src.pageShift || len(as.nodes) != len(src.nodes) {
		panic(fmt.Sprintf("mem: CopyStateFrom across incompatible spaces (pageShift %d/%d, nodes %d/%d)",
			as.pageShift, src.pageShift, len(as.nodes), len(src.nodes)))
	}
	as.pages = append(as.pages[:0], src.pages...)
	as.used = append(as.used[:0], src.used...)
	as.brk = src.brk
}

// Package mem models the physical memory layout of the simulated server:
// NUMA nodes (local DDR5, the cross-socket node, and CPU-less CXL Type-3
// nodes), page-granular placement of allocations across nodes, and the
// address-hash functions that spread lines over LLC slices and memory
// channels.
//
// The CXL node mirrors the paper's setup (§5.1): the Type-3 device "appears
// as a CPU-less NUMA node", so placement policies (all-local, all-CXL,
// ratio interleaving, hot/cold split) select which pages resolve to which
// node, and the tiering layer (mem/tier) migrates pages between nodes at
// run time.
package mem

import (
	"errors"
	"fmt"
)

// Kind classifies a NUMA node by its position in the memory hierarchy.
type Kind uint8

// Node kinds.
const (
	LocalDRAM  Kind = iota // DDR attached to the socket running the workload
	RemoteDRAM             // DDR attached to the other socket (cross-NUMA)
	CXLDRAM                // CXL Type-3 device memory behind FlexBus
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case LocalDRAM:
		return "local"
	case RemoteDRAM:
		return "remote"
	case CXLDRAM:
		return "cxl"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NodeID identifies a NUMA node within an AddressSpace.
type NodeID uint8

// Node describes one NUMA node.
type Node struct {
	ID       NodeID
	Kind     Kind
	Socket   int    // owning socket for DRAM nodes; attach point for CXL
	Device   int    // CXL device index for CXLDRAM nodes
	Capacity uint64 // bytes
}

// Region is a contiguous allocation in the simulated physical space.
type Region struct {
	Base uint64
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.Base+r.Size }

// Policy decides the initial node of each page of an allocation.
type Policy interface {
	// PlacePage returns the node for page index i of n total pages.
	PlacePage(i, n int) NodeID
}

// Fixed places every page on a single node.
type Fixed NodeID

// PlacePage implements Policy.
func (f Fixed) PlacePage(i, n int) NodeID { return NodeID(f) }

// Interleave places pages on A and B in a repeating ratio of RatioA pages
// on A followed by RatioB pages on B — e.g. the paper's "local/CXL memory
// ratio of 4:1" (Case 7) is Interleave{A: local, B: cxl, RatioA: 4, RatioB: 1}.
type Interleave struct {
	A, B           NodeID
	RatioA, RatioB int
}

// PlacePage implements Policy.
func (iv Interleave) PlacePage(i, n int) NodeID {
	period := iv.RatioA + iv.RatioB
	if period <= 0 {
		return iv.A
	}
	if i%period < iv.RatioA {
		return iv.A
	}
	return iv.B
}

// HotCold places the first HotFrac of pages on Hot and the rest on Cold,
// matching hot-set/total-working-set workload configurations such as the
// paper's GUPS "24GB hot set, 72GB total" (Case 7).
type HotCold struct {
	Hot, Cold NodeID
	HotFrac   float64
}

// PlacePage implements Policy.
func (hc HotCold) PlacePage(i, n int) NodeID {
	if n > 0 && float64(i) < hc.HotFrac*float64(n) {
		return hc.Hot
	}
	return hc.Cold
}

// AddressSpace is the simulated physical memory map: a bump allocator over
// a flat address range with page-granular node placement.
type AddressSpace struct {
	pageShift uint
	nodes     []Node
	pages     []NodeID // node of each allocated page
	used      []uint64 // bytes resident per node
	brk       uint64   // allocation high-water mark
}

// ErrNoCapacity is returned when an allocation or migration would exceed a
// node's capacity.
var ErrNoCapacity = errors.New("mem: node capacity exceeded")

// NewAddressSpace returns an empty address space with the given page size
// (1 << pageShift bytes) over the given nodes.  Node IDs must be dense and
// match their slice index.
func NewAddressSpace(pageShift uint, nodes []Node) *AddressSpace {
	if pageShift < 6 || pageShift > 30 {
		panic("mem: unreasonable page shift")
	}
	for i, n := range nodes {
		if n.ID != NodeID(i) {
			panic(fmt.Sprintf("mem: node %d has ID %d; IDs must be dense", i, n.ID))
		}
	}
	ns := make([]Node, len(nodes))
	copy(ns, nodes)
	return &AddressSpace{
		pageShift: pageShift,
		nodes:     ns,
		used:      make([]uint64, len(nodes)),
	}
}

// PageSize returns the page size in bytes.
func (as *AddressSpace) PageSize() uint64 { return 1 << as.pageShift }

// Nodes returns the node table (shared; callers must not modify).
func (as *AddressSpace) Nodes() []Node { return as.nodes }

// Node returns the descriptor of node id.
func (as *AddressSpace) Node(id NodeID) Node { return as.nodes[id] }

// NodeByKind returns the first node of the given kind, or false.
func (as *AddressSpace) NodeByKind(k Kind) (Node, bool) {
	for _, n := range as.nodes {
		if n.Kind == k {
			return n, true
		}
	}
	return Node{}, false
}

// Used returns the bytes currently resident on node id.
func (as *AddressSpace) Used(id NodeID) uint64 { return as.used[id] }

// Alloc reserves size bytes (rounded up to whole pages) placed per pol.
// It fails with ErrNoCapacity if any target node would exceed its capacity.
func (as *AddressSpace) Alloc(size uint64, pol Policy) (Region, error) {
	if size == 0 {
		return Region{}, errors.New("mem: zero-size allocation")
	}
	ps := as.PageSize()
	n := int((size + ps - 1) / ps)

	// Pre-check capacity so a failed allocation leaves no residue.
	need := make([]uint64, len(as.nodes))
	placement := make([]NodeID, n)
	for i := 0; i < n; i++ {
		id := pol.PlacePage(i, n)
		if int(id) >= len(as.nodes) {
			return Region{}, fmt.Errorf("mem: policy placed page on unknown node %d", id)
		}
		placement[i] = id
		need[id] += ps
	}
	for id, nd := range as.nodes {
		if as.used[id]+need[id] > nd.Capacity {
			return Region{}, fmt.Errorf("%w: node %d (%s)", ErrNoCapacity, id, nd.Kind)
		}
	}

	base := as.brk
	as.brk += uint64(n) * ps
	as.pages = append(as.pages, placement...)
	for id := range as.nodes {
		as.used[id] += need[NodeID(id)]
	}
	return Region{Base: base, Size: uint64(n) * ps}, nil
}

// pageIndex returns the page index of addr, panicking on unallocated
// addresses: touching unmapped memory is a simulator bug.
func (as *AddressSpace) pageIndex(addr uint64) int {
	i := int(addr >> as.pageShift)
	if i >= len(as.pages) {
		panic(fmt.Sprintf("mem: access to unallocated address %#x", addr))
	}
	return i
}

// NodeOf returns the node currently backing addr.
func (as *AddressSpace) NodeOf(addr uint64) NodeID {
	return as.pages[as.pageIndex(addr)]
}

// KindOf returns the kind of the node backing addr.
func (as *AddressSpace) KindOf(addr uint64) Kind {
	return as.nodes[as.NodeOf(addr)].Kind
}

// PageBase returns the base address of the page containing addr.
func (as *AddressSpace) PageBase(addr uint64) uint64 {
	return addr &^ (as.PageSize() - 1)
}

// PageCount returns the number of allocated pages.
func (as *AddressSpace) PageCount() int { return len(as.pages) }

// MovePage migrates the page containing addr to node dst, updating
// residency accounting.  It fails with ErrNoCapacity when dst is full.
// Moving a page to its current node is a no-op.
func (as *AddressSpace) MovePage(addr uint64, dst NodeID) error {
	i := as.pageIndex(addr)
	src := as.pages[i]
	if src == dst {
		return nil
	}
	ps := as.PageSize()
	if as.used[dst]+ps > as.nodes[dst].Capacity {
		return fmt.Errorf("%w: node %d (%s)", ErrNoCapacity, dst, as.nodes[dst].Kind)
	}
	as.pages[i] = dst
	as.used[src] -= ps
	as.used[dst] += ps
	return nil
}

// ForEachPage calls fn for every page of r with the page base address and
// its current node.
func (as *AddressSpace) ForEachPage(r Region, fn func(pageBase uint64, node NodeID)) {
	ps := as.PageSize()
	for a := r.Base; a < r.End(); a += ps {
		fn(a, as.pages[as.pageIndex(a)])
	}
}

// ResidentPages counts the pages of r on each node, indexed by NodeID.
func (as *AddressSpace) ResidentPages(r Region) []int {
	out := make([]int, len(as.nodes))
	as.ForEachPage(r, func(_ uint64, id NodeID) { out[id]++ })
	return out
}

package mem

// LineSize is the cache-line size of the simulated machines (64 bytes).
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// LineAddr returns the cache-line-aligned address of addr.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// hashLine mixes the line address so that sequential lines still spread
// across slices/channels the way the physical hash on Xeon parts does.
// It is a 64-bit finalizer (splitmix64-style) over the line number.
func hashLine(addr uint64) uint64 {
	x := addr >> LineShift
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SliceOf returns the LLC slice serving addr among nSlices slices.  Intel
// parts hash the physical address over the CHA mesh stops; a multiplicative
// hash preserves the uniform-spread property PFBuilder relies on.
func SliceOf(addr uint64, nSlices int) int {
	if nSlices <= 1 {
		return 0
	}
	return int(hashLine(addr) % uint64(nSlices))
}

// ChannelOf returns the memory channel serving addr among nChannels
// channels, interleaved at line granularity like the IMC.
func ChannelOf(addr uint64, nChannels int) int {
	if nChannels <= 1 {
		return 0
	}
	return int((addr >> LineShift) % uint64(nChannels))
}

package pmu

// Sampler implements the PMU sampling mode (§3.1 of the paper): a counter
// is armed with a period and fires an overflow callback every time the
// counter advances past another period boundary.  The profiler uses this
// for load-latency style sampling; the continuous mode is plain Bank reads.
type Sampler struct {
	period   uint64
	next     uint64
	overflow func(total uint64)
	fired    uint64
}

// NewSampler returns a sampler that invokes overflow each time the observed
// counter crosses a multiple of period.  period must be positive.
func NewSampler(period uint64, overflow func(total uint64)) *Sampler {
	if period == 0 {
		panic("pmu: sampler period must be positive")
	}
	return &Sampler{period: period, next: period, overflow: overflow}
}

// Fired reports how many overflow interrupts the sampler has delivered.
func (s *Sampler) Fired() uint64 { return s.fired }

// observe is called by the owning bank with the counter's new total.
func (s *Sampler) observe(total uint64) {
	for total >= s.next {
		s.fired++
		if s.overflow != nil {
			s.overflow(total)
		}
		s.next += s.period
	}
}

package pmu

// OccTracker integrates the occupancy of a queue-like structure over time,
// feeding three counter flavors at once: an occupancy accumulator
// (occupancy x cycles), a not-empty cycle counter, and an optional full
// cycle counter.  This is how the "*_occupancy", "*_cycles_ne" and
// "*_pack_buf_full" families are produced without per-cycle ticking: the
// simulator calls Update at every arrival/departure and the tracker
// integrates the piecewise-constant occupancy between updates.
type OccTracker struct {
	bank *Bank
	occ  Event // occupancy accumulator; <0 disables
	ne   Event // not-empty cycles; <0 disables
	full Event // full cycles; <0 disables

	capacity int // for full detection; 0 means unbounded
	cur      int
	last     uint64   // cycle of the previous update
	rel      []uint64 // queued falling edges (Release cycles), sorted
}

// NewOccTracker returns a tracker over bank feeding the given events.  Pass
// -1 for any event the caller does not need.  capacity 0 disables full
// tracking.
func NewOccTracker(bank *Bank, occ, ne, full Event, capacity int) *OccTracker {
	return &OccTracker{bank: bank, occ: occ, ne: ne, full: full, capacity: capacity}
}

// Len returns the current queue occupancy.
func (t *OccTracker) Len() int { return t.cur }

// Full reports whether the queue is at capacity (always false when the
// tracker is unbounded).
func (t *OccTracker) Full() bool { return t.capacity > 0 && t.cur >= t.capacity }

// Advance integrates the counters up to cycle now without changing the
// occupancy.
func (t *OccTracker) Advance(now uint64) {
	if n := len(t.rel); n > 0 && t.rel[0] <= now {
		k := 0
		for k < n && t.rel[k] <= now {
			t.integrate(t.rel[k])
			t.cur--
			k++
		}
		if t.cur < 0 {
			panic("pmu: negative queue occupancy")
		}
		m := copy(t.rel, t.rel[k:])
		t.rel = t.rel[:m]
	}
	t.integrate(now)
}

// integrate accumulates the counters up to now at the current level.
func (t *OccTracker) integrate(now uint64) {
	if now <= t.last {
		return
	}
	d := now - t.last
	t.last = now
	if t.cur > 0 {
		if t.occ >= 0 {
			t.bank.Add(t.occ, uint64(t.cur)*d)
		}
		if t.ne >= 0 {
			t.bank.Add(t.ne, d)
		}
		if t.full >= 0 && t.capacity > 0 && t.cur >= t.capacity {
			t.bank.Add(t.full, d)
		}
	}
}

// Release schedules a falling edge at cycle `at`: the tracker integrates
// up to `at` at the current level and then decrements, exactly as an
// Update(at, -1) issued when that cycle is reached would.  Pairing an
// Update(+1) with a Release halves the event traffic of every
// enter/leave-shaped residency.
func (t *OccTracker) Release(at uint64) {
	t.rel = append(t.rel, at)
	for i := len(t.rel) - 1; i > 0 && t.rel[i-1] > at; i-- {
		t.rel[i], t.rel[i-1] = t.rel[i-1], t.rel[i]
	}
}

// Update integrates up to now and then applies delta to the occupancy.
// A negative resulting occupancy indicates a simulator bug and panics.
func (t *OccTracker) Update(now uint64, delta int) {
	t.Advance(now)
	t.cur += delta
	if t.cur < 0 {
		panic("pmu: negative queue occupancy")
	}
}

// Reset clears the occupancy and rebases the tracker at cycle now.
func (t *OccTracker) Reset(now uint64) {
	t.cur = 0
	t.last = now
	t.rel = t.rel[:0]
}

// BusyTracker accumulates cycles during which a condition holds (e.g. a
// core is stalled on an L1D miss).  The simulator brackets each busy
// interval with Begin/End; overlapping intervals are reference-counted so
// concurrent causes of the same condition are not double counted.
type BusyTracker struct {
	bank  *Bank
	event Event
	depth int
	since uint64
	rel   []uint64 // queued End cycles, sorted ascending
}

// NewBusyTracker returns a tracker feeding event on bank.
func NewBusyTracker(bank *Bank, event Event) *BusyTracker {
	return &BusyTracker{bank: bank, event: event}
}

// Active reports whether the condition currently holds.
func (t *BusyTracker) Active() bool { return t.depth > 0 }

// Begin marks the condition as holding from cycle now.
func (t *BusyTracker) Begin(now uint64) {
	if len(t.rel) > 0 && t.rel[0] <= now {
		t.drainRel(now)
	}
	if t.depth == 0 {
		t.since = now
	}
	t.depth++
}

// Release schedules an End at cycle `at`, exactly as an End call issued
// when that cycle is reached would behave.
func (t *BusyTracker) Release(at uint64) {
	t.rel = append(t.rel, at)
	for i := len(t.rel) - 1; i > 0 && t.rel[i-1] > at; i-- {
		t.rel[i], t.rel[i-1] = t.rel[i-1], t.rel[i]
	}
}

// drainRel applies queued Ends due at or before now, in time order.
func (t *BusyTracker) drainRel(now uint64) {
	k := 0
	for k < len(t.rel) && t.rel[k] <= now {
		t.end(t.rel[k])
		k++
	}
	n := copy(t.rel, t.rel[k:])
	t.rel = t.rel[:n]
}

// End marks one cause of the condition as cleared at cycle now, accumulating
// the busy interval when the last cause clears.
func (t *BusyTracker) End(now uint64) {
	if len(t.rel) > 0 && t.rel[0] <= now {
		t.drainRel(now)
	}
	t.end(now)
}

func (t *BusyTracker) end(now uint64) {
	if t.depth == 0 {
		panic("pmu: BusyTracker.End without Begin")
	}
	t.depth--
	if t.depth == 0 && now > t.since {
		t.bank.Add(t.event, now-t.since)
	}
}

// Flush accumulates any open interval up to now and restarts it, so that
// snapshots taken mid-interval observe the cycles spent so far.
func (t *BusyTracker) Flush(now uint64) {
	if len(t.rel) > 0 && t.rel[0] <= now {
		t.drainRel(now)
	}
	if t.depth > 0 && now > t.since {
		t.bank.Add(t.event, now-t.since)
		t.since = now
	}
}

package pmu

import (
	"math/rand"
	"sort"
	"testing"
)

// The Release queues let the simulator schedule a tracker's falling edge
// at enter time (one observer entry per residency instead of two).  These
// tests pin their defining property: a tracker fed Update(+1)+Release(at)
// pulses is indistinguishable from one fed the equivalent explicit edges
// in global time order.

func TestOccTrackerReleaseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		ba := NewBank(Default, "imc0ch0")
		bb := NewBank(Default, "imc0ch0")
		pulsed := NewOccTracker(ba, RPQOccupancy, RPQCyclesNE, CXLRxPackBufFullReq, 4)
		explicit := NewOccTracker(bb, RPQOccupancy, RPQCyclesNE, CXLRxPackBufFullReq, 4)

		type edge struct {
			at    uint64
			delta int
		}
		var edges []edge
		now := uint64(0)
		for i := 0; i < 40; i++ {
			now += uint64(rng.Intn(20))
			hold := uint64(1 + rng.Intn(50))
			pulsed.Update(now, +1)
			pulsed.Release(now + hold)
			edges = append(edges, edge{now, +1}, edge{now + hold, -1})
		}
		sort.SliceStable(edges, func(i, j int) bool { return edges[i].at < edges[j].at })
		for _, e := range edges {
			explicit.Update(e.at, e.delta)
		}
		horizon := now + 100
		pulsed.Advance(horizon)
		explicit.Advance(horizon)

		for _, ev := range []Event{RPQOccupancy, RPQCyclesNE, CXLRxPackBufFullReq} {
			if ga, gb := ba.Read(ev), bb.Read(ev); ga != gb {
				t.Fatalf("trial %d: %s = %d (pulsed) vs %d (explicit)",
					trial, Default.Name(ev), ga, gb)
			}
		}
		if pulsed.Len() != explicit.Len() {
			t.Fatalf("trial %d: Len %d vs %d", trial, pulsed.Len(), explicit.Len())
		}
	}
}

// Mid-stream reads: Advance between pulses must settle due releases, so
// Len reflects only residencies still open at that cycle.
func TestOccTrackerReleaseMidstream(t *testing.T) {
	b := NewBank(Default, "imc0ch0")
	tr := NewOccTracker(b, RPQOccupancy, -1, -1, 0)
	tr.Update(10, +1)
	tr.Release(30)
	tr.Update(20, +1)
	tr.Release(60)
	tr.Advance(40)
	if tr.Len() != 1 {
		t.Fatalf("Len at 40 = %d, want 1 (release at 30 is due)", tr.Len())
	}
	// 1*(20-10) + 2*(30-20) + 1*(40-30) = 40
	if got := b.Read(RPQOccupancy); got != 40 {
		t.Fatalf("occupancy integral at 40 = %d, want 40", got)
	}
	tr.Advance(70)
	if tr.Len() != 0 {
		t.Fatalf("Len at 70 = %d, want 0", tr.Len())
	}
	// + 1*(60-40) = 60
	if got := b.Read(RPQOccupancy); got != 60 {
		t.Fatalf("occupancy integral at 70 = %d, want 60", got)
	}
}

func TestBusyTrackerReleaseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ba := NewBank(Default, "core0")
		bb := NewBank(Default, "core0")
		pulsed := NewBusyTracker(ba, CyclesL1DMiss)
		explicit := NewBusyTracker(bb, CyclesL1DMiss)

		type edge struct {
			at    uint64
			begin bool
		}
		var edges []edge
		now := uint64(0)
		for i := 0; i < 40; i++ {
			now += uint64(rng.Intn(20))
			hold := uint64(1 + rng.Intn(50))
			pulsed.Begin(now)
			pulsed.Release(now + hold)
			edges = append(edges, edge{now, true}, edge{now + hold, false})
		}
		// Begins before Ends at equal cycles: zero-width pulses must not
		// trip the depth-0 panic in either feeding order.
		sort.SliceStable(edges, func(i, j int) bool {
			if edges[i].at != edges[j].at {
				return edges[i].at < edges[j].at
			}
			return edges[i].begin && !edges[j].begin
		})
		for _, e := range edges {
			if e.begin {
				explicit.Begin(e.at)
			} else {
				explicit.End(e.at)
			}
		}
		horizon := now + 100
		pulsed.Flush(horizon)
		explicit.Flush(horizon)

		if ga, gb := ba.Read(CyclesL1DMiss), bb.Read(CyclesL1DMiss); ga != gb {
			t.Fatalf("trial %d: busy cycles = %d (pulsed) vs %d (explicit)", trial, ga, gb)
		}
		if pulsed.Active() != explicit.Active() {
			t.Fatalf("trial %d: Active %v vs %v", trial, pulsed.Active(), explicit.Active())
		}
	}
}

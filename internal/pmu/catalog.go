package pmu

import (
	"fmt"
	"sort"
)

// Catalog is an immutable-after-init registry of PMU events.  A single
// Default catalog mirrors the paper's counter tables; Banks are allocated
// against a catalog and indexed by Event.
type Catalog struct {
	infos  []Info
	byName map[string]Event
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]Event)}
}

// Register adds an event to the catalog and returns its handle.  It panics
// on duplicate names: the catalog is assembled at init time and a duplicate
// is a programming error.
func (c *Catalog) Register(name string, unit Unit, scope Scope, kind Kind, desc string) Event {
	if _, dup := c.byName[name]; dup {
		panic("pmu: duplicate event " + name)
	}
	e := Event(len(c.infos))
	c.infos = append(c.infos, Info{Name: name, Unit: unit, Scope: scope, Kind: kind, Desc: desc})
	c.byName[name] = e
	return e
}

// Len reports the number of registered events.
func (c *Catalog) Len() int { return len(c.infos) }

// Info returns the metadata for e.
func (c *Catalog) Info(e Event) Info { return c.infos[e] }

// Name returns the event name for e.
func (c *Catalog) Name(e Event) string { return c.infos[e].Name }

// Lookup resolves an event by its catalog name.
func (c *Catalog) Lookup(name string) (Event, bool) {
	e, ok := c.byName[name]
	return e, ok
}

// MustLookup resolves an event by name, panicking if it is unknown.
func (c *Catalog) MustLookup(name string) Event {
	e, ok := c.byName[name]
	if !ok {
		panic("pmu: unknown event " + name)
	}
	return e
}

// Names returns all registered event names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.infos))
	for _, in := range c.infos {
		out = append(out, in.Name)
	}
	sort.Strings(out)
	return out
}

// UnitEvents returns the events belonging to the given PMU block, in
// registration order.
func (c *Catalog) UnitEvents(u Unit) []Event {
	var out []Event
	for i, in := range c.infos {
		if in.Unit == u {
			out = append(out, Event(i))
		}
	}
	return out
}

// Default is the catalog used throughout the simulator and profiler.  It is
// populated below with the counters of the paper's Tables 1-4 plus the
// sub-events those tables enumerate in parentheses.
var Default = NewCatalog()

func reg(name string, unit Unit, scope Scope, kind Kind, desc string) Event {
	return Default.Register(name, unit, scope, kind, desc)
}

// Family is a group of sibling sub-events sharing a prefix, e.g. the nine
// response scenarios of ocr.demand_data_rd.  Sub-events are addressed by a
// small scenario index with named constants below.
type Family []Event

// At returns the i-th sub-event of the family.
func (f Family) At(i int) Event { return f[i] }

func regFamily(prefix string, unit Unit, scope Scope, kind Kind, subs []string, desc string) Family {
	f := make(Family, len(subs))
	for i, s := range subs {
		f[i] = reg(prefix+"."+s, unit, scope, kind, fmt.Sprintf("%s (%s)", desc, s))
	}
	return f
}

// Response-scenario sub-event indices for the nine-way OCR / TOR DRd
// families (Table 5): where a request was ultimately served from.
const (
	ScnAny           = iota // any type of response
	ScnHit                  // hit LLC (or snooped on-socket core cache)
	ScnMiss                 // missed LLC (all local caches)
	ScnMissDDR              // miss, target any DDR
	ScnMissLocal            // miss, target local (close SNC cluster)
	ScnMissLocalDDR         // miss, target local DDR
	ScnMissRemote           // miss, target remote (distant SNC cluster / socket)
	ScnMissRemoteDDR        // miss, target remote DDR
	ScnMissCXL              // miss, supplied by CXL DRAM
	ScnCount
)

var drdSubs = []string{
	"any", "hit_llc", "miss_llc", "miss_ddr", "miss_local",
	"miss_local_ddr", "miss_remote", "miss_remote_ddr", "miss_cxl",
}

// Six-way RFO scenario indices (Table 5).
const (
	RFOAny = iota
	RFOHit
	RFOMiss
	RFOMissLocal
	RFOMissRemote
	RFOMissCXL
	RFOScnCount
)

var rfoSubs = []string{"any", "hit_llc", "miss_llc", "miss_local", "miss_remote", "miss_cxl"}

// Write-back coherence-transition indices for unc_cha_tor_inserts.ia_wb.
const (
	WBEFToE = iota
	WBEFToI
	WBMToE
	WBMToI
	WBSToI
	WBScnCount
)

var wbSubs = []string{"ef_to_e", "ef_to_i", "m_to_e", "m_to_i", "s_to_i"}

// Four-way IA TOR scenario indices.
const (
	IAAll = iota
	IAHit
	IAMiss
	IAMissCXL
	IAScnCount
)

var iaSubs = []string{"all", "hit", "miss", "miss_cxl"}

// ---------------------------------------------------------------------------
// Core PMU (Table 1)
// ---------------------------------------------------------------------------

var (
	// Fixed counters.
	CPUClkUnhalted = reg("cpu_clk_unhalted.thread", UnitCore, PerCore, KindCycles,
		"Core clock cycles while the thread is not halted")
	InstRetiredAny = reg("inst_retired.any", UnitCore, PerCore, KindEvent,
		"Retired instructions")

	// Store buffer.
	ResourceStallsSB = reg("resource_stalls.sb", UnitCore, PerCore, KindCycles,
		"Stall cycles caused by the store buffer being full while loads are still issued")
	ExeBoundOnStores = reg("exe_activity.bound_on_stores", UnitCore, PerCore, KindCycles,
		"Cycles where the store buffer was full and no loads caused an execution stall")

	// L1D.
	CyclesL1DMiss = reg("cycle_activity.cycles_l1d_miss", UnitCore, PerCore, KindCycles,
		"Cycles while an L1D miss demand load is outstanding")
	StallsL1DMiss = reg("memory_activity.stalls_l1d_miss", UnitCore, PerCore, KindCycles,
		"Execution stall cycles while an L1D miss demand load is outstanding")
	L1DReplacement = reg("l1d.replacement", UnitCore, PerCore, KindEvent,
		"L1D data line evictions")
	MemLoadL1Hit = reg("mem_load_retired.l1_hit", UnitCore, PerCore, KindEvent,
		"Retired load instructions that hit the L1D cache")
	MemLoadL1Miss = reg("mem_load_retired.l1_miss", UnitCore, PerCore, KindEvent,
		"Retired load instructions that missed the L1D cache")
	MemLoadFBHit = reg("mem_load_retired.l1_fb_hit", UnitCore, PerCore, KindEvent,
		"Retired loads that missed L1 but hit an LFB entry allocated by a preceding miss to the same line")

	// Line fill buffer.
	L1DPendMissFBFull = reg("l1d_pend_miss.fb_full", UnitCore, PerCore, KindCycles,
		"Cycles a demand request waited because no line-fill-buffer entry was available")
	L1DPendMissPending = reg("l1d_pend_miss.pending", UnitCore, PerCore, KindOccupancy,
		"Outstanding L1D misses accumulated each cycle (LFB occupancy)")
	L1DPendMissCycles = reg("l1d_pend_miss.pending_cycles", UnitCore, PerCore, KindCycles,
		"Cycles with at least one outstanding L1D miss")

	// L2.
	MemLoadL2Hit = reg("mem_load_retired.l2_hit", UnitCore, PerCore, KindEvent,
		"Retired load instructions with L2 cache hits as data source")
	MemLoadL2Miss = reg("mem_load_retired.l2_miss", UnitCore, PerCore, KindEvent,
		"Retired load instructions that missed the L2 cache")
	MemStoreL2Hit = reg("mem_store_retired.l2_hit", UnitCore, PerCore, KindEvent,
		"Retired store instructions that hit the L2 cache")
	L2References = reg("l2_rqsts.references", UnitCore, PerCore, KindEvent,
		"All requests that hit or true-missed the L2 cache")
	L2AllDemandRefs = reg("l2_rqsts.all_demand_references", UnitCore, PerCore, KindEvent,
		"Demand requests to the L2 cache")
	L2AllDemandMiss = reg("l2_rqsts.all_demand_miss", UnitCore, PerCore, KindEvent,
		"Demand requests that missed the L2 cache")
	L2Miss = reg("l2_rqsts.miss", UnitCore, PerCore, KindEvent,
		"Read requests of any type with a true miss in the L2 cache")
	L2AllDemandDataRd = reg("l2_rqsts.all_demand_data_rd", UnitCore, PerCore, KindEvent,
		"Demand data read requests accessing the L2 cache")
	L2DemandDataRdHit = reg("l2_rqsts.demand_data_rd_hit", UnitCore, PerCore, KindEvent,
		"Demand data read requests that hit the L2 cache")
	L2DemandDataRdMiss = reg("l2_rqsts.demand_data_rd_miss", UnitCore, PerCore, KindEvent,
		"Demand data read requests with a true miss in the L2 cache")
	L2AllRFO = reg("l2_rqsts.all_rfo", UnitCore, PerCore, KindEvent,
		"RFO requests to the L2 cache, including L1D RFO misses and prefetch RFOs")
	L2RFOHit = reg("l2_rqsts.rfo_hit", UnitCore, PerCore, KindEvent,
		"RFO requests that hit the L2 cache")
	L2RFOMiss = reg("l2_rqsts.rfo_miss", UnitCore, PerCore, KindEvent,
		"RFO requests that missed the L2 cache")
	L2SWPFHit = reg("l2_rqsts.swpf_hit", UnitCore, PerCore, KindEvent,
		"Software prefetch requests that hit the L2 cache")
	L2SWPFMiss = reg("l2_rqsts.swpf_miss", UnitCore, PerCore, KindEvent,
		"Software prefetch requests that missed the L2 cache")
	L2HWPFHit = reg("l2_rqsts.hwpf_hit", UnitCore, PerCore, KindEvent,
		"Hardware prefetch requests that hit the L2 cache")
	L2HWPFMiss = reg("l2_rqsts.hwpf_miss", UnitCore, PerCore, KindEvent,
		"Hardware prefetch requests that missed the L2 cache")
	StallsL2Miss = reg("memory_activity.stalls_l2_miss", UnitCore, PerCore, KindCycles,
		"Execution stalls while an L2 miss demand cacheable load is outstanding")
	CyclesL2Miss = reg("cycle_activity.cycles_l2_miss", UnitCore, PerCore, KindCycles,
		"Cycles while an L2 miss demand load is outstanding")

	// Offcore request events.
	OffcoreAllRequests = reg("offcore_requests.all_requests", UnitCore, PerCore, KindEvent,
		"Memory transactions that reached the super queue")
	OffcoreDataRd = reg("offcore_requests.data_rd", UnitCore, PerCore, KindEvent,
		"Demand and prefetch data reads sent offcore")
	OffcoreDemandDataRd = reg("offcore_requests.demand_data_rd", UnitCore, PerCore, KindEvent,
		"Demand data read requests sent to the uncore")

	// Offcore requests outstanding (latency events).
	ORODataRd = reg("offcore_requests_outstanding.data_rd", UnitCore, PerCore, KindOccupancy,
		"Outstanding data read requests accumulated each cycle")
	OROCyclesDataRd = reg("offcore_requests_outstanding.cycles_with_data_rd", UnitCore, PerCore, KindCycles,
		"Cycles with at least one outstanding data read request")
	ORODemandDataRd = reg("offcore_requests_outstanding.demand_data_rd", UnitCore, PerCore, KindOccupancy,
		"Outstanding demand data read requests accumulated each cycle")
	OROCyclesDemandDataRd = reg("offcore_requests_outstanding.cycles_with_demand_data_rd", UnitCore, PerCore, KindCycles,
		"Cycles with at least one outstanding demand data read request")
	OROCyclesDemandRFO = reg("offcore_requests_outstanding.cycles_with_demand_rfo", UnitCore, PerCore, KindCycles,
		"Cycles with at least one outstanding demand RFO request")

	// Retired-transaction latency accumulation.
	MemTransLoadLatency = reg("mem_trans_retired.load_latency", UnitCore, PerCore, KindLatency,
		"Accumulated load latency from cache access until data return")
	MemTransLoadCount = reg("mem_trans_retired.load_count", UnitCore, PerCore, KindEvent,
		"Loads sampled by the load-latency facility")
	MemTransStoreSample = reg("mem_trans_retired.store_sample", UnitCore, PerCore, KindLatency,
		"Accumulated store latency from L1D access until write completion")
	MemTransStoreCount = reg("mem_trans_retired.store_count", UnitCore, PerCore, KindEvent,
		"Stores sampled by the store-latency facility")

	// Instruction mix.
	MemInstAllLoads = reg("mem_inst_retired.all_loads", UnitCore, PerCore, KindEvent,
		"Retired load instructions")
	MemInstAllStores = reg("mem_inst_retired.all_stores", UnitCore, PerCore, KindEvent,
		"Retired store instructions")
	SWPrefetchT0 = reg("sw_prefetch_access.t0", UnitCore, PerCore, KindEvent,
		"PREFETCHT0 instructions executed")
	SWPrefetchNTA = reg("sw_prefetch_access.nta", UnitCore, PerCore, KindEvent,
		"PREFETCHNTA instructions executed")
	SWPrefetchT1T2 = reg("sw_prefetch_access.t1_t2", UnitCore, PerCore, KindEvent,
		"PREFETCHT1/T2 instructions executed")
	SWPrefetchW = reg("sw_prefetch_access.prefetchw", UnitCore, PerCore, KindEvent,
		"PREFETCHW instructions executed")
)

// ---------------------------------------------------------------------------
// Core-scope LLC counters (Table 2, per-core rows)
// ---------------------------------------------------------------------------

var (
	StallsL3Miss = reg("cycle_activity.stalls_l3_miss", UnitCore, PerCore, KindCycles,
		"Execution stalls while an L3 miss demand load is outstanding")
	OROL3MissDemandDataRd = reg("offcore_requests_outstanding.l3_miss_demand_data_rd", UnitCore, PerCore, KindOccupancy,
		"Outstanding demand data reads known to have missed the L3, accumulated each cycle")
	MemLoadL3Hit = reg("mem_load_retired.l3_hit", UnitCore, PerCore, KindEvent,
		"Retired loads with at least one uop that hit in the L3")
	MemLoadL3Miss = reg("mem_load_retired.l3_miss", UnitCore, PerCore, KindEvent,
		"Retired loads with at least one uop that missed in the L3")
	LongestLatCacheMiss = reg("longest_lat_cache.miss", UnitCore, PerCore, KindEvent,
		"Core-originated cacheable requests that missed the L3")
	LongestLatCacheRef = reg("longest_lat_cache.reference", UnitCore, PerCore, KindEvent,
		"Core-originated cacheable requests to the L3")
	OCRModifiedWriteAny = reg("ocr.modified_write.any_response", UnitCore, PerCore, KindEvent,
		"Writebacks of modified cache lines and streaming stores with any response")

	// mem_load_l3_hit_retired(4): where an L3 hit was served from.
	MemLoadL3HitRetired = regFamily("mem_load_l3_hit_retired", UnitCore, PerCore, KindEvent,
		[]string{"xsnp_none", "xsnp_miss", "xsnp_no_fwd", "xsnp_fwd"},
		"Retired loads served by the L3 with the given cross-snoop outcome")

	// mem_load_l3_miss_retired(4): where an L3 miss was served from.
	MemLoadL3MissRetired = regFamily("mem_load_l3_miss_retired", UnitCore, PerCore, KindEvent,
		[]string{"local_dram", "remote_dram", "remote_fwd", "remote_hitm"},
		"Retired loads that missed the L3, by serving location")

	// Offcore response matrices (nine response scenarios each, Table 5).
	OCRDemandDataRd = regFamily("ocr.demand_data_rd", UnitCore, PerCore, KindEvent,
		drdSubs, "Offcore demand data reads by response scenario")
	OCRRFO = regFamily("ocr.rfo", UnitCore, PerCore, KindEvent,
		drdSubs, "Offcore demand RFOs by response scenario")
	OCRL1DHWPF = regFamily("ocr.l1d_hw_pf", UnitCore, PerCore, KindEvent,
		drdSubs, "Offcore L1D hardware prefetches by response scenario")
	OCRL2HWPFDRd = regFamily("ocr.l2_hw_pf_drd", UnitCore, PerCore, KindEvent,
		drdSubs, "Offcore L2 hardware prefetch data reads by response scenario")
	OCRL2HWPFRFO = regFamily("ocr.l2_hw_pf_rfo", UnitCore, PerCore, KindEvent,
		drdSubs, "Offcore L2 hardware prefetch RFOs by response scenario")
)

// ---------------------------------------------------------------------------
// CHA socket-scope counters (Table 2, per-socket rows)
// ---------------------------------------------------------------------------

var (
	CHAClockticks = reg("unc_cha_clockticks", UnitCHA, PerSocket, KindCycles,
		"CHA uncore clock ticks")

	TORInsertsIA = regFamily("unc_cha_tor_inserts.ia", UnitCHA, PerSocket, KindEvent,
		iaSubs, "TOR entries inserted from cores")
	TORInsertsIADRd = regFamily("unc_cha_tor_inserts.ia_drd", UnitCHA, PerSocket, KindEvent,
		drdSubs, "Demand data read TOR inserts from cores")
	TORInsertsIADRdPref = regFamily("unc_cha_tor_inserts.ia_drd_pref", UnitCHA, PerSocket, KindEvent,
		drdSubs, "Data read prefetch TOR inserts from cores")
	TORInsertsIARFO = regFamily("unc_cha_tor_inserts.ia_rfo", UnitCHA, PerSocket, KindEvent,
		rfoSubs, "RFO TOR inserts from cores")
	TORInsertsIARFOPref = regFamily("unc_cha_tor_inserts.ia_rfo_pref", UnitCHA, PerSocket, KindEvent,
		rfoSubs, "RFO prefetch TOR inserts from cores")
	TORInsertsIAWB = regFamily("unc_cha_tor_inserts.ia_wb", UnitCHA, PerSocket, KindEvent,
		wbSubs, "Write-back TOR inserts from cores, by coherence transition")

	TOROccupancyIA = regFamily("unc_cha_tor_occupancy.ia", UnitCHA, PerSocket, KindOccupancy,
		iaSubs, "Valid core-originated TOR entries accumulated each cycle")
	TOROccupancyIADRd = regFamily("unc_cha_tor_occupancy.ia_drd", UnitCHA, PerSocket, KindOccupancy,
		drdSubs, "Valid DRd TOR entries accumulated each cycle")
	TOROccupancyIADRdPref = regFamily("unc_cha_tor_occupancy.ia_drd_pref", UnitCHA, PerSocket, KindOccupancy,
		drdSubs, "Valid DRd prefetch TOR entries accumulated each cycle")
	TOROccupancyIARFO = regFamily("unc_cha_tor_occupancy.ia_rfo", UnitCHA, PerSocket, KindOccupancy,
		rfoSubs, "Valid RFO TOR entries accumulated each cycle")
	TOROccupancyIARFOPref = regFamily("unc_cha_tor_occupancy.ia_rfo_pref", UnitCHA, PerSocket, KindOccupancy,
		rfoSubs, "Valid RFO prefetch TOR entries accumulated each cycle")
	TOROccupancyIAWBMToI = reg("unc_cha_tor_occupancy.ia_wbmtoi", UnitCHA, PerSocket, KindOccupancy,
		"Valid write-back M-to-I TOR entries accumulated each cycle")

	TORCyclesNEIA = regFamily("unc_cha_tor_cycles_ne.ia", UnitCHA, PerSocket, KindCycles,
		iaSubs, "Cycles the TOR held core-originated entries of the given class")
	TORCyclesNEIADRd = regFamily("unc_cha_tor_cycles_ne.ia_drd", UnitCHA, PerSocket, KindCycles,
		drdSubs, "Cycles the TOR held DRd entries of the given class")
	TORCyclesNEIADRdPref = regFamily("unc_cha_tor_cycles_ne.ia_drd_pref", UnitCHA, PerSocket, KindCycles,
		drdSubs, "Cycles the TOR held DRd prefetch entries of the given class")
	TORCyclesNEIARFO = regFamily("unc_cha_tor_cycles_ne.ia_rfo", UnitCHA, PerSocket, KindCycles,
		rfoSubs, "Cycles the TOR held RFO entries of the given class")
	TORCyclesNEIARFOPref = regFamily("unc_cha_tor_cycles_ne.ia_rfo_pref", UnitCHA, PerSocket, KindCycles,
		rfoSubs, "Cycles the TOR held RFO prefetch entries of the given class")

	// LLC lookup / victim events.
	LLCLookupDataRead = reg("unc_cha_llc_lookup.data_read", UnitCHA, PerSocket, KindEvent,
		"LLC lookups for data reads")
	LLCLookupWrite = reg("unc_cha_llc_lookup.write", UnitCHA, PerSocket, KindEvent,
		"LLC lookups for writes")
	LLCLookupRFO = reg("unc_cha_llc_lookup.rfo", UnitCHA, PerSocket, KindEvent,
		"LLC lookups for RFOs")
	LLCLookupPrefetch = reg("unc_cha_llc_lookup.prefetch", UnitCHA, PerSocket, KindEvent,
		"LLC lookups for prefetches")
	LLCLookupAll = reg("unc_cha_llc_lookup.all", UnitCHA, PerSocket, KindEvent,
		"All LLC lookups")
	LLCVictimsM = reg("unc_cha_llc_victims.m_state", UnitCHA, PerSocket, KindEvent,
		"LLC victims in M state (dirty writebacks)")
	LLCVictimsE = reg("unc_cha_llc_victims.e_state", UnitCHA, PerSocket, KindEvent,
		"LLC victims in E state")
	LLCVictimsS = reg("unc_cha_llc_victims.s_state", UnitCHA, PerSocket, KindEvent,
		"LLC victims in S state")
	LLCVictimsTotal = reg("unc_cha_llc_victims.total", UnitCHA, PerSocket, KindEvent,
		"All LLC victims")

	// Cache-coherence event counters (the paper's "10 event counters
	// monitoring cache coherence").
	SnoopsSentLocal = reg("unc_cha_snoops_sent.local", UnitCHA, PerSocket, KindEvent,
		"Snoops sent to cores in the local SNC cluster")
	SnoopsSentRemote = reg("unc_cha_snoops_sent.remote", UnitCHA, PerSocket, KindEvent,
		"Snoops sent across SNC clusters or sockets")
	SnoopRespHitFwd = reg("unc_cha_snoop_resp.hit_fwd", UnitCHA, PerSocket, KindEvent,
		"Snoop responses that hit clean and forwarded data")
	SnoopRespHitM = reg("unc_cha_snoop_resp.hitm", UnitCHA, PerSocket, KindEvent,
		"Snoop responses that hit modified data")
	SnoopRespMiss = reg("unc_cha_snoop_resp.miss", UnitCHA, PerSocket, KindEvent,
		"Snoop responses that missed")
	SFEvictionM = reg("unc_cha_sf_eviction.m_state", UnitCHA, PerSocket, KindEvent,
		"Snoop-filter evictions of M-state lines")
	SFEvictionE = reg("unc_cha_sf_eviction.e_state", UnitCHA, PerSocket, KindEvent,
		"Snoop-filter evictions of E-state lines")
	SFEvictionS = reg("unc_cha_sf_eviction.s_state", UnitCHA, PerSocket, KindEvent,
		"Snoop-filter evictions of S-state lines")
	DirUpdateHA = reg("unc_cha_dir_update.ha", UnitCHA, PerSocket, KindEvent,
		"Coherence-directory updates from the home agent")
	DirUpdateTOR = reg("unc_cha_dir_update.tor", UnitCHA, PerSocket, KindEvent,
		"Coherence-directory updates from TOR pipeline passes")
)

// ---------------------------------------------------------------------------
// Uncore IMC counters (Table 3).  One bank is allocated per memory channel,
// so the names are unsuffixed; the pseudo-channel is the bank identity.
// ---------------------------------------------------------------------------

var (
	IMCClockticks = reg("unc_m_clockticks", UnitIMC, PerChannel, KindCycles,
		"IMC DCLK ticks")
	RPQCyclesNE = reg("unc_m_rpq_cycles_ne", UnitIMC, PerChannel, KindCycles,
		"Cycles the read pending queue is not empty")
	RPQInserts = reg("unc_m_rpq_inserts", UnitIMC, PerChannel, KindEvent,
		"Allocations into the read pending queue")
	RPQOccupancy = reg("unc_m_rpq_occupancy", UnitIMC, PerChannel, KindOccupancy,
		"Read-pending-queue occupancy accumulated each cycle")
	WPQCyclesNE = reg("unc_m_wpq_cycles_ne", UnitIMC, PerChannel, KindCycles,
		"Cycles the write pending queue is not empty")
	WPQInserts = reg("unc_m_wpq_inserts", UnitIMC, PerChannel, KindEvent,
		"Allocations into the write pending queue")
	WPQOccupancy = reg("unc_m_wpq_occupancy", UnitIMC, PerChannel, KindOccupancy,
		"Write-pending-queue occupancy accumulated each cycle")
	CASCountAll = reg("unc_m_cas_count.all", UnitIMC, PerChannel, KindEvent,
		"All DRAM CAS commands issued")
	CASCountRd = reg("unc_m_cas_count.rd", UnitIMC, PerChannel, KindEvent,
		"DRAM read CAS commands issued")
	CASCountWr = reg("unc_m_cas_count.wr", UnitIMC, PerChannel, KindEvent,
		"DRAM write CAS commands issued")
)

// ---------------------------------------------------------------------------
// Uncore M2PCIe / FlexBus counters (Table 3).  One bank per FlexBus root
// port (per attached CXL device).
// ---------------------------------------------------------------------------

var (
	M2PClockticks = reg("unc_m2p_clockticks", UnitM2PCIe, PerSocket, KindCycles,
		"M2PCIe uncore clock ticks")
	M2PRxCyclesNE = reg("unc_m2p_rxc_cycles_ne.all", UnitM2PCIe, PerSocket, KindCycles,
		"Cycles the M2PCIe ingress queue is not empty")
	M2PRxInserts = reg("unc_m2p_rxc_inserts.all", UnitM2PCIe, PerSocket, KindEvent,
		"Entries inserted into the M2PCIe ingress queue from the mesh")
	M2PRxOccupancy = reg("unc_m2p_rxc_occupancy.all", UnitM2PCIe, PerSocket, KindOccupancy,
		"M2PCIe ingress-queue occupancy accumulated each cycle")
	M2PTxInsertsAK = reg("unc_m2p_txc_inserts.ak", UnitM2PCIe, PerSocket, KindEvent,
		"Acknowledgement entries inserted into the M2PCIe egress queue (CXL store acks)")
	M2PTxInsertsBL = reg("unc_m2p_txc_inserts.bl", UnitM2PCIe, PerSocket, KindEvent,
		"Block-data entries inserted into the M2PCIe egress queue (CXL load data)")
	M2PTxCyclesNE = reg("unc_m2p_txc_cycles_ne.all", UnitM2PCIe, PerSocket, KindCycles,
		"Cycles the M2PCIe egress queue is not empty")
)

// ---------------------------------------------------------------------------
// CXL Type-3 device counters (Table 4) plus the device-side memory
// controller queues the paper references in §3.4/§4.4.  One bank per device.
// ---------------------------------------------------------------------------

var (
	CXLClockticks = reg("unc_cxlcm_clockticks", UnitCXL, PerDevice, KindCycles,
		"CXL link-layer clock ticks")

	CXLRxPackBufInsertsReq = reg("unc_cxlcm_rxc_pack_buf_inserts.mem_req", UnitCXL, PerDevice, KindEvent,
		"Allocations to the Mem Request ingress packing buffer (M2S Req)")
	CXLRxPackBufInsertsData = reg("unc_cxlcm_rxc_pack_buf_inserts.mem_data", UnitCXL, PerDevice, KindEvent,
		"Allocations to the Mem Data ingress packing buffer (M2S RwD)")
	CXLRxPackBufFullReq = reg("unc_cxlcm_rxc_pack_buf_full.mem_req", UnitCXL, PerDevice, KindCycles,
		"Cycles the Mem Request packing buffer is full")
	CXLRxPackBufFullData = reg("unc_cxlcm_rxc_pack_buf_full.mem_data", UnitCXL, PerDevice, KindCycles,
		"Cycles the Mem Data packing buffer is full")
	CXLRxPackBufNEReq = reg("unc_cxlcm_rxc_pack_buf_ne.mem_req", UnitCXL, PerDevice, KindCycles,
		"Cycles the Mem Request packing buffer is not empty")
	CXLRxPackBufNEData = reg("unc_cxlcm_rxc_pack_buf_ne.mem_data", UnitCXL, PerDevice, KindCycles,
		"Cycles the Mem Data packing buffer is not empty")
	CXLTxPackBufInsertsReq = reg("unc_cxlcm_txc_pack_buf_inserts.mem_req", UnitCXL, PerDevice, KindEvent,
		"Allocations to the Mem Request egress packing buffer (S2M NDR)")
	CXLTxPackBufInsertsData = reg("unc_cxlcm_txc_pack_buf_inserts.mem_data", UnitCXL, PerDevice, KindEvent,
		"Allocations to the Mem Data egress packing buffer (S2M DRS)")

	CXLRxPackBufOccReq = reg("unc_cxlcm_rxc_pack_buf_occupancy.mem_req", UnitCXL, PerDevice, KindOccupancy,
		"Mem Request packing-buffer occupancy accumulated each cycle")
	CXLRxPackBufOccData = reg("unc_cxlcm_rxc_pack_buf_occupancy.mem_data", UnitCXL, PerDevice, KindOccupancy,
		"Mem Data packing-buffer occupancy accumulated each cycle")

	// Device-side memory-controller queues (the CXL DIMM "encloses
	// device-side command queues", §3.4).
	CXLDevRPQInserts = reg("unc_cxldimm_rpq_inserts", UnitCXL, PerDevice, KindEvent,
		"Allocations into the device-side read pending queue")
	CXLDevRPQOccupancy = reg("unc_cxldimm_rpq_occupancy", UnitCXL, PerDevice, KindOccupancy,
		"Device-side read-pending-queue occupancy accumulated each cycle")
	CXLDevRPQCyclesNE = reg("unc_cxldimm_rpq_cycles_ne", UnitCXL, PerDevice, KindCycles,
		"Cycles the device-side read pending queue is not empty")
	CXLDevWPQInserts = reg("unc_cxldimm_wpq_inserts", UnitCXL, PerDevice, KindEvent,
		"Allocations into the device-side write pending queue")
	CXLDevWPQOccupancy = reg("unc_cxldimm_wpq_occupancy", UnitCXL, PerDevice, KindOccupancy,
		"Device-side write-pending-queue occupancy accumulated each cycle")
	CXLDevWPQCyclesNE = reg("unc_cxldimm_wpq_cycles_ne", UnitCXL, PerDevice, KindCycles,
		"Cycles the device-side write pending queue is not empty")
	CXLDevCASRd = reg("unc_cxldimm_cas_count.rd", UnitCXL, PerDevice, KindEvent,
		"Device media read commands issued")
	CXLDevCASWr = reg("unc_cxldimm_cas_count.wr", UnitCXL, PerDevice, KindEvent,
		"Device media write commands issued")

	// QoS telemetry residency (CXL 3.x DevLoad classes, derived from the
	// packing-buffer and device-queue pressure — §3.5's future work).
	CXLQoS = regFamily("unc_cxlcm_qos", UnitCXL, PerDevice, KindCycles,
		[]string{"light", "optimal", "moderate", "severe"},
		"Cycles the device reported the given DevLoad class")

	// Link-layer reliability counters: CRC detection, LRSM replay activity,
	// and the retry buffer holding unacknowledged flits.  These make a
	// degraded FlexBus link observable the same way queue counters make
	// congestion observable.
	CXLLinkCRCErrors = reg("unc_cxlcm_link.crc_errors", UnitCXL, PerDevice, KindEvent,
		"Flits received with a CRC mismatch (either direction)")
	CXLLinkRetries = reg("unc_cxlcm_link.retries", UnitCXL, PerDevice, KindEvent,
		"Link-layer retry (replay) sequences initiated")
	CXLLinkReplayBytes = reg("unc_cxlcm_link.replay_bytes", UnitCXL, PerDevice, KindEvent,
		"Wire bytes spent retransmitting flits during replay")
	CXLLinkRetryBufOcc = reg("unc_cxlcm_link.retry_buf_occupancy", UnitCXL, PerDevice, KindOccupancy,
		"Link retry-buffer (unacknowledged flit) occupancy accumulated each cycle")
	CXLLinkRetryBufNE = reg("unc_cxlcm_link.retry_buf_cycles_ne", UnitCXL, PerDevice, KindCycles,
		"Cycles the link retry buffer holds unacknowledged flits")
	CXLDevTimeouts = reg("unc_cxldimm_dev_timeouts", UnitCXL, PerDevice, KindEvent,
		"Requests hit by a device completion-timeout episode")
	CXLDevThrottled = reg("unc_cxldimm_throttled_cycles", UnitCXL, PerDevice, KindCycles,
		"Cycles the device media ran rate-limited by a DevLoad throttle episode")
	CXLDevPoisonRd = reg("unc_cxldimm_poison_reads", UnitCXL, PerDevice, KindEvent,
		"Reads returning data flagged poisoned by the device")

	// RAS escalation beyond the link (CXL 3.0 §12): viral containment on
	// the device, surprise removal discovered by the root port, and the
	// host-side fast-fail path once the device is isolated.  Removal and
	// isolation counters live on the M2PCIe (host) bank because the device
	// bank goes dark the moment the device vanishes.
	CXLDevViralEntries = reg("unc_cxldimm_viral_entries", UnitCXL, PerDevice, KindEvent,
		"Times the device entered viral containment (poison threshold crossed)")
	CXLDevErrCompletions = reg("unc_cxldimm_err_completions", UnitCXL, PerDevice, KindEvent,
		"Reads the device completed as poisoned while in viral containment")
	M2PDevRemoved = reg("unc_m2p_dev_removed", UnitM2PCIe, PerSocket, KindEvent,
		"Surprise device removals discovered by the root port")
	M2PErrCompletions = reg("unc_m2p_err_completions", UnitM2PCIe, PerSocket, KindEvent,
		"In-flight requests the root port completed with error after removal")
	M2PFastFails = reg("unc_m2p_fast_fails", UnitM2PCIe, PerSocket, KindEvent,
		"Accesses fast-failed by the host while the device was isolated")
)

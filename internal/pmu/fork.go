package pmu

import "fmt"

// The CopyStateFrom family duplicates a tracker's mutable run state into a
// structurally-identical tracker on another machine, for the checkpoint/
// restore layer in internal/sim.  The destination keeps its own bank and
// event wiring (set at construction) — only integration state moves.  All
// copies reuse the destination's buffers, so a restore into an existing
// machine allocates only when a pending-release queue outgrew its capacity.

// CopyStateFrom copies src's occupancy-integration state (current level,
// integration watermark, pending falling edges) into t.
func (t *OccTracker) CopyStateFrom(src *OccTracker) {
	t.cur = src.cur
	t.last = src.last
	t.rel = append(t.rel[:0], src.rel...)
}

// CopyStateFrom copies src's busy-interval state (reference-count depth,
// open-interval start, pending End edges) into t.
func (t *BusyTracker) CopyStateFrom(src *BusyTracker) {
	t.depth = src.depth
	t.since = src.since
	t.rel = append(t.rel[:0], src.rel...)
}

// CopyCountersFrom copies every counter value from src, which must be
// allocated against a catalog of the same length.  Samplers attached to b
// are kept as-is and are not fired by the bulk copy: a restore re-positions
// the bank, it does not replay the increments that got it there.
func (b *Bank) CopyCountersFrom(src *Bank) {
	if len(b.vals) != len(src.vals) {
		panic(fmt.Sprintf("pmu: bank %s: CopyCountersFrom src %s holds %d values, want %d",
			b.name, src.name, len(src.vals), len(b.vals)))
	}
	copy(b.vals, src.vals)
}

package pmu

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogSize(t *testing.T) {
	// The paper identifies 232 counters to dissect CXL.mem execution (§1).
	if got := Default.Len(); got < 232 {
		t.Fatalf("Default catalog has %d events, want >= 232", got)
	}
}

func TestCatalogLookup(t *testing.T) {
	for _, name := range []string{
		"resource_stalls.sb",
		"mem_load_retired.l1_fb_hit",
		"l1d_pend_miss.fb_full",
		"l2_rqsts.demand_data_rd_miss",
		"ocr.demand_data_rd.miss_cxl",
		"unc_cha_tor_inserts.ia_drd.miss_cxl",
		"unc_cha_tor_inserts.ia_wb.m_to_i",
		"unc_m_rpq_cycles_ne",
		"unc_m2p_rxc_cycles_ne.all",
		"unc_m2p_txc_inserts.bl",
		"unc_cxlcm_rxc_pack_buf_full.mem_req",
		"unc_cxldimm_rpq_occupancy",
	} {
		e, ok := Default.Lookup(name)
		if !ok {
			t.Errorf("Lookup(%q) failed", name)
			continue
		}
		if got := Default.Name(e); got != name {
			t.Errorf("Name(Lookup(%q)) = %q", name, got)
		}
	}
	if _, ok := Default.Lookup("no_such_event"); ok {
		t.Error("Lookup of unknown event succeeded")
	}
}

func TestCatalogDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	c := NewCatalog()
	c.Register("x", UnitCore, PerCore, KindEvent, "")
	c.Register("x", UnitCore, PerCore, KindEvent, "")
}

func TestCatalogUnitPartition(t *testing.T) {
	total := 0
	for u := Unit(0); u < unitCount; u++ {
		evs := Default.UnitEvents(u)
		total += len(evs)
		for _, e := range evs {
			if Default.Info(e).Unit != u {
				t.Fatalf("event %s reported under unit %s", Default.Name(e), u)
			}
		}
	}
	if total != Default.Len() {
		t.Fatalf("unit partition covers %d events, catalog has %d", total, Default.Len())
	}
}

func TestCatalogNamingConventions(t *testing.T) {
	for _, e := range Default.UnitEvents(UnitCHA) {
		if name := Default.Name(e); !strings.HasPrefix(name, "unc_cha_") {
			t.Errorf("CHA event %q does not carry the unc_cha_ prefix", name)
		}
	}
	for _, e := range Default.UnitEvents(UnitIMC) {
		if name := Default.Name(e); !strings.HasPrefix(name, "unc_m_") {
			t.Errorf("IMC event %q does not carry the unc_m_ prefix", name)
		}
	}
	for _, e := range Default.UnitEvents(UnitM2PCIe) {
		if name := Default.Name(e); !strings.HasPrefix(name, "unc_m2p_") {
			t.Errorf("M2PCIe event %q does not carry the unc_m2p_ prefix", name)
		}
	}
	for _, e := range Default.UnitEvents(UnitCXL) {
		if name := Default.Name(e); !strings.HasPrefix(name, "unc_cxl") {
			t.Errorf("CXL event %q does not carry the unc_cxl prefix", name)
		}
	}
}

func TestFamilyScenarios(t *testing.T) {
	if len(OCRDemandDataRd) != ScnCount {
		t.Fatalf("ocr.demand_data_rd has %d sub-events, want %d", len(OCRDemandDataRd), ScnCount)
	}
	if len(TORInsertsIARFO) != RFOScnCount {
		t.Fatalf("tor_inserts.ia_rfo has %d sub-events, want %d", len(TORInsertsIARFO), RFOScnCount)
	}
	if len(TORInsertsIAWB) != WBScnCount {
		t.Fatalf("tor_inserts.ia_wb has %d sub-events, want %d", len(TORInsertsIAWB), WBScnCount)
	}
	if got := Default.Name(TORInsertsIADRd.At(ScnMissCXL)); got != "unc_cha_tor_inserts.ia_drd.miss_cxl" {
		t.Fatalf("ScnMissCXL name = %q", got)
	}
}

func TestBankBasics(t *testing.T) {
	b := NewBank(Default, "core0")
	if b.Name() != "core0" {
		t.Fatalf("Name = %q", b.Name())
	}
	b.Inc(MemLoadL1Hit)
	b.Add(MemLoadL1Hit, 4)
	if got := b.Read(MemLoadL1Hit); got != 5 {
		t.Fatalf("Read = %d, want 5", got)
	}
	v, err := b.ReadName("mem_load_retired.l1_hit")
	if err != nil || v != 5 {
		t.Fatalf("ReadName = %d, %v", v, err)
	}
	if _, err := b.ReadName("bogus"); err == nil {
		t.Fatal("ReadName of unknown event succeeded")
	}
	b.Reset()
	if got := b.Read(MemLoadL1Hit); got != 0 {
		t.Fatalf("after Reset, Read = %d", got)
	}
}

func TestBankValuesIsCopy(t *testing.T) {
	b := NewBank(Default, "core0")
	b.Add(InstRetiredAny, 7)
	vals := b.Values()
	vals[InstRetiredAny] = 99
	if got := b.Read(InstRetiredAny); got != 7 {
		t.Fatalf("Values aliases bank storage: Read = %d", got)
	}
}

func TestBankCopyIntoReuse(t *testing.T) {
	b := NewBank(Default, "core0")
	b.Add(InstRetiredAny, 3)
	buf := make([]uint64, 0, Default.Len())
	buf = b.CopyInto(buf)
	if buf[InstRetiredAny] != 3 {
		t.Fatalf("CopyInto missed value: %d", buf[InstRetiredAny])
	}
	b.Add(InstRetiredAny, 1)
	buf2 := b.CopyInto(buf)
	if &buf2[0] != &buf[0] {
		t.Fatal("CopyInto reallocated despite sufficient capacity")
	}
	if buf2[InstRetiredAny] != 4 {
		t.Fatalf("CopyInto stale value: %d", buf2[InstRetiredAny])
	}
}

func TestOccTrackerIntegration(t *testing.T) {
	b := NewBank(Default, "imc0ch0")
	tr := NewOccTracker(b, RPQOccupancy, RPQCyclesNE, -1, 0)

	tr.Update(10, +1) // one entry from cycle 10
	tr.Update(20, +1) // two entries from cycle 20
	tr.Update(35, -1) // one entry from cycle 35
	tr.Update(50, -1) // empty from cycle 50
	tr.Advance(70)    // stays empty

	// occupancy = 1*(20-10) + 2*(35-20) + 1*(50-35) = 10 + 30 + 15 = 55
	if got := b.Read(RPQOccupancy); got != 55 {
		t.Fatalf("occupancy integral = %d, want 55", got)
	}
	// not-empty cycles = 50 - 10 = 40
	if got := b.Read(RPQCyclesNE); got != 40 {
		t.Fatalf("not-empty cycles = %d, want 40", got)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestOccTrackerFullCycles(t *testing.T) {
	b := NewBank(Default, "cxl0")
	tr := NewOccTracker(b, -1, -1, CXLRxPackBufFullReq, 2)
	tr.Update(0, +1)
	if tr.Full() {
		t.Fatal("Full at occupancy 1 of 2")
	}
	tr.Update(5, +1)
	if !tr.Full() {
		t.Fatal("not Full at capacity")
	}
	tr.Update(25, -1) // full from 5 to 25
	tr.Update(30, -1)
	if got := b.Read(CXLRxPackBufFullReq); got != 20 {
		t.Fatalf("full cycles = %d, want 20", got)
	}
}

func TestOccTrackerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative occupancy did not panic")
		}
	}()
	b := NewBank(Default, "x")
	tr := NewOccTracker(b, -1, -1, -1, 0)
	tr.Update(0, -1)
}

// Property: for any sequence of enqueue/dequeue deltas at increasing times,
// the occupancy integral and busy cycles match a direct reference model.
func TestOccTrackerProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		b := NewBank(Default, "q")
		tr := NewOccTracker(b, RPQOccupancy, RPQCyclesNE, -1, 0)
		var (
			now      uint64
			occ      int
			wantOcc  uint64
			wantBusy uint64
		)
		for _, r := range raw {
			step := uint64(r%13) + 1
			// Integrate reference model over [now, now+step).
			wantOcc += uint64(occ) * step
			if occ > 0 {
				wantBusy += step
			}
			now += step
			delta := 1
			if r%2 == 1 && occ > 0 {
				delta = -1
			}
			occ += delta
			tr.Update(now, delta)
		}
		tr.Advance(now + 1)
		if occ > 0 {
			wantOcc += uint64(occ)
			wantBusy++
		}
		return b.Read(RPQOccupancy) == wantOcc && b.Read(RPQCyclesNE) == wantBusy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusyTrackerNesting(t *testing.T) {
	b := NewBank(Default, "core0")
	tr := NewBusyTracker(b, StallsL1DMiss)
	tr.Begin(100)
	tr.Begin(110) // overlapping cause
	tr.End(140)
	if got := b.Read(StallsL1DMiss); got != 0 {
		t.Fatalf("counted before last End: %d", got)
	}
	tr.End(160)
	if got := b.Read(StallsL1DMiss); got != 60 {
		t.Fatalf("busy cycles = %d, want 60", got)
	}
}

func TestBusyTrackerFlush(t *testing.T) {
	b := NewBank(Default, "core0")
	tr := NewBusyTracker(b, StallsL1DMiss)
	tr.Begin(0)
	tr.Flush(40)
	if got := b.Read(StallsL1DMiss); got != 40 {
		t.Fatalf("after Flush = %d, want 40", got)
	}
	tr.End(100)
	if got := b.Read(StallsL1DMiss); got != 100 {
		t.Fatalf("after End = %d, want 100", got)
	}
}

func TestBusyTrackerUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("End without Begin did not panic")
		}
	}()
	tr := NewBusyTracker(NewBank(Default, "x"), StallsL1DMiss)
	tr.End(1)
}

func TestSamplerOverflow(t *testing.T) {
	var fired []uint64
	s := NewSampler(10, func(total uint64) { fired = append(fired, total) })
	b := NewBank(Default, "core0")
	b.Attach(MemLoadL1Miss, s)

	b.Add(MemLoadL1Miss, 9)
	if len(fired) != 0 {
		t.Fatalf("fired early: %v", fired)
	}
	b.Add(MemLoadL1Miss, 1)  // total 10
	b.Add(MemLoadL1Miss, 25) // total 35 -> crossings at 20, 30
	if len(fired) != 3 {
		t.Fatalf("fired %d times, want 3 (%v)", len(fired), fired)
	}
	if s.Fired() != 3 {
		t.Fatalf("Fired() = %d", s.Fired())
	}
	b.Detach(MemLoadL1Miss)
	b.Add(MemLoadL1Miss, 100)
	if len(fired) != 3 {
		t.Fatal("sampler fired after Detach")
	}
}

func TestSamplerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	NewSampler(0, nil)
}

// Package pmu models the performance-monitoring-unit layer PathFinder is
// built on.  It provides a catalog of named hardware events (mirroring the
// counter tables of the PathFinder paper), fixed-size counter banks that
// architectural modules increment during simulation, occupancy/busy
// integrators for the "*_occupancy" and "*_cycles_ne" counter families,
// and an overflow-driven sampling mode.
//
// The catalog names, scopes and semantics follow Tables 1-5 of
// "Understanding and Profiling CXL.mem Using PathFinder" (SIGCOMM 2025) so
// that the profiler layers above (internal/perf, internal/core) are
// programmed against the same counter vocabulary as the paper's hardware.
package pmu

import "fmt"

// Event is a dense index into a Catalog.  The zero value is the first
// registered event; use Lookup to resolve an event by name.
type Event int32

// Unit identifies the PMU block an event belongs to.
type Unit uint8

// PMU blocks, following the paper's four-way split (§3.1).
const (
	UnitCore   Unit = iota // core PMU: SB, L1D, LFB, L2, latency events
	UnitCHA                // caching-and-home-agent / LLC PMU
	UnitIMC                // integrated memory controller (uncore)
	UnitM2PCIe             // mesh-to-PCIe / FlexBus (uncore)
	UnitCXL                // CXL Type-3 device counters
	unitCount
)

// String returns the conventional lower-case block name ("core", "cha", ...).
func (u Unit) String() string {
	switch u {
	case UnitCore:
		return "core"
	case UnitCHA:
		return "cha"
	case UnitIMC:
		return "imc"
	case UnitM2PCIe:
		return "m2pcie"
	case UnitCXL:
		return "cxl"
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// Scope describes the granularity at which an event is collected.
type Scope uint8

// Scopes used by the paper's counter tables.
const (
	PerCore Scope = iota
	PerSocket
	PerChannel
	PerDevice
)

// String returns the scope name as it appears in the paper's tables.
func (s Scope) String() string {
	switch s {
	case PerCore:
		return "per-core"
	case PerSocket:
		return "per-socket"
	case PerChannel:
		return "per-channel"
	case PerDevice:
		return "per-device"
	}
	return fmt.Sprintf("scope(%d)", uint8(s))
}

// Kind describes what an event measures; the paper's §3.1 taxonomy.
type Kind uint8

// Event kinds.
const (
	KindEvent     Kind = iota // occurrence counts (hits, misses, inserts)
	KindCycles                // stall / not-empty / full cycle counts
	KindOccupancy             // occupancy integrated over cycles
	KindLatency               // accumulated request latency in cycles
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindEvent:
		return "event"
	case KindCycles:
		return "cycles"
	case KindOccupancy:
		return "occupancy"
	case KindLatency:
		return "latency"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Info is the immutable metadata of a cataloged event.
type Info struct {
	Name  string
	Unit  Unit
	Scope Scope
	Kind  Kind
	Desc  string
}

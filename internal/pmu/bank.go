package pmu

import "fmt"

// Bank is a fixed-size array of counters allocated against a catalog.  Each
// simulated architectural module (core, CHA, IMC channel, M2PCIe port, CXL
// device) owns one bank.  Banks are not safe for concurrent use: the
// simulator is single-threaded by design (discrete-event), matching how a
// hardware PMU belongs to exactly one block.
type Bank struct {
	cat  *Catalog
	name string
	vals []uint64

	// samplers is dense, indexed by Event, and nil until the first Attach:
	// the common no-sampler increment pays one length test, never a map
	// lookup.
	samplers []*Sampler
}

// NewBank allocates a zeroed bank over cat.  The name identifies the owning
// module instance (e.g. "core7", "cha0", "imc0ch1", "cxl0") and is the
// address prefix used by the perf layer.
func NewBank(cat *Catalog, name string) *Bank {
	return &Bank{cat: cat, name: name, vals: make([]uint64, cat.Len())}
}

// Name returns the module-instance name of the bank.
func (b *Bank) Name() string { return b.name }

// Catalog returns the catalog the bank is allocated against.
func (b *Bank) Catalog() *Catalog { return b.cat }

// Add increments event e by n.
func (b *Bank) Add(e Event, n uint64) {
	b.vals[e] += n
	if int(e) < len(b.samplers) {
		if s := b.samplers[e]; s != nil {
			s.observe(b.vals[e])
		}
	}
}

// Inc increments event e by one.
func (b *Bank) Inc(e Event) { b.Add(e, 1) }

// Read returns the current value of event e.
func (b *Bank) Read(e Event) uint64 { return b.vals[e] }

// ReadName returns the current value of the event with the given catalog
// name.  It returns an error for unknown names rather than panicking so the
// perf layer can surface bad event specs to the user.
func (b *Bank) ReadName(name string) (uint64, error) {
	e, ok := b.cat.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("pmu: bank %s: unknown event %q", b.name, name)
	}
	return b.vals[e], nil
}

// Reset zeroes every counter in the bank.
func (b *Bank) Reset() {
	for i := range b.vals {
		b.vals[i] = 0
	}
}

// Values returns a copy of all counter values, indexed by Event.
func (b *Bank) Values() []uint64 {
	out := make([]uint64, len(b.vals))
	copy(out, b.vals)
	return out
}

// CopyInto copies all counter values into dst, growing it if needed, and
// returns dst.  It exists so the snapshot hot path can reuse buffers.
func (b *Bank) CopyInto(dst []uint64) []uint64 {
	if cap(dst) < len(b.vals) {
		dst = make([]uint64, len(b.vals))
	}
	dst = dst[:len(b.vals)]
	copy(dst, b.vals)
	return dst
}

// CopyTo copies all counter values into dst, which must hold exactly
// Catalog().Len() values.  Unlike CopyInto it never reallocates, so the
// snapshot arena can hand out fixed per-bank windows.
func (b *Bank) CopyTo(dst []uint64) {
	if len(dst) != len(b.vals) {
		panic(fmt.Sprintf("pmu: bank %s: CopyTo dst holds %d values, want %d",
			b.name, len(dst), len(b.vals)))
	}
	copy(dst, b.vals)
}

// Attach registers a sampler on event e.  A later Attach for the same event
// replaces the earlier sampler.
func (b *Bank) Attach(e Event, s *Sampler) {
	if int(e) >= len(b.samplers) {
		grown := make([]*Sampler, b.cat.Len())
		copy(grown, b.samplers)
		b.samplers = grown
	}
	b.samplers[e] = s
}

// Detach removes any sampler from event e.
func (b *Bank) Detach(e Event) {
	if int(e) < len(b.samplers) {
		b.samplers[e] = nil
	}
}

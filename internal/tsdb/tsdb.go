// Package tsdb is the embedded time-series database behind PFMaterializer
// (§4.6 of the paper): snapshot digests become tagged points; a fluent
// query interface provides the windowed aggregation, moving averages,
// Holt-Winters forecasting, Pearson correlation, and phase-window
// clustering the paper performs with InfluxDB Flux queries.
//
// Storage is columnar: each series holds one timestamp column plus one
// float64 column per field (NaN marks a field absent at a timestamp).
// Writers on the epoch hot path intern their tag set once into a SeriesID
// and append through InsertSeries without building per-point maps.
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one record: a measurement name, identifying tags, and numeric
// fields at a timestamp (simulated cycles).  It is the convenience insert
// form; hot paths use SeriesID + InsertSeries instead.
type Point struct {
	Time   uint64
	Tags   map[string]string
	Fields map[string]float64
}

// seriesKey identifies a (measurement, canonical tag set) series.
type seriesKey string

func keyOf(measurement string, tags map[string]string) seriesKey {
	if len(tags) == 0 {
		return seriesKey(measurement)
	}
	names := make([]string, 0, len(tags))
	for k := range tags {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(measurement)
	for _, k := range names {
		b.WriteByte(',')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(tags[k])
	}
	return seriesKey(b.String())
}

// series is the stored form: a timestamp column plus one value column per
// field, all the same length.  NaN marks "field not set at this time".
type series struct {
	tags  map[string]string
	times []uint64
	cols  map[string][]float64
}

// append adds one timestamp row; field columns are filled by the caller and
// padded to the new length afterwards.
func (s *series) appendRow(t uint64, key seriesKey) error {
	if n := len(s.times); n > 0 && t < s.times[n-1] {
		return fmt.Errorf("tsdb: out-of-order insert into %s at t=%d", key, t)
	}
	s.times = append(s.times, t)
	return nil
}

// padCols brings every column up to the timestamp column's length with NaN.
func (s *series) padCols() {
	n := len(s.times)
	for f, col := range s.cols {
		for len(col) < n {
			col = append(col, math.NaN())
		}
		s.cols[f] = col
	}
}

// setField writes a value into the current (last) row of a field column,
// creating the column NaN-padded if this is its first appearance.
func (s *series) setField(name string, v float64) {
	col := s.cols[name]
	n := len(s.times)
	for len(col) < n-1 {
		col = append(col, math.NaN())
	}
	if len(col) < n {
		col = append(col, v)
	} else {
		col[n-1] = v
	}
	s.cols[name] = col
}

// SeriesID is an interned handle to one series of one measurement: writers
// resolve their tag set once (DB.Series) and then append points through
// InsertSeries with no per-point tag handling.  The zero SeriesID is
// invalid.
type SeriesID struct {
	s   *series
	key seriesKey
}

// Valid reports whether the ID refers to a series.
func (id SeriesID) Valid() bool { return id.s != nil }

// FieldValue is one (field name, value) pair for InsertSeries.
type FieldValue struct {
	Name  string
	Value float64
}

// F is shorthand for a FieldValue.
func F(name string, v float64) FieldValue { return FieldValue{Name: name, Value: v} }

// DB is an in-memory time-series store.  It is not safe for concurrent use;
// the profiler is single-threaded.
type DB struct {
	data map[string]map[seriesKey]*series // measurement -> series
}

// New returns an empty database.
func New() *DB {
	return &DB{data: make(map[string]map[seriesKey]*series)}
}

// Series interns a (measurement, tag set) into a stable SeriesID, creating
// the series if it does not exist.  The tags map is copied; the caller may
// reuse it.
func (db *DB) Series(measurement string, tags map[string]string) (SeriesID, error) {
	if measurement == "" {
		return SeriesID{}, fmt.Errorf("tsdb: empty measurement name")
	}
	mm := db.data[measurement]
	if mm == nil {
		mm = make(map[seriesKey]*series)
		db.data[measurement] = mm
	}
	k := keyOf(measurement, tags)
	s := mm[k]
	if s == nil {
		tc := make(map[string]string, len(tags))
		for kk, v := range tags {
			tc[kk] = v
		}
		s = &series{tags: tc, cols: make(map[string][]float64)}
		mm[k] = s
	}
	return SeriesID{s: s, key: k}, nil
}

// InsertSeries appends one point to an interned series — the allocation-free
// epoch hot path (amortized: column growth still reallocates on capacity
// edges).  Fields must be passed as F(name, value) pairs; times must be
// non-decreasing per series.
func (db *DB) InsertSeries(id SeriesID, t uint64, fields ...FieldValue) error {
	if id.s == nil {
		return fmt.Errorf("tsdb: insert through zero SeriesID")
	}
	if err := id.s.appendRow(t, id.key); err != nil {
		return err
	}
	for _, fv := range fields {
		id.s.setField(fv.Name, fv.Value)
	}
	id.s.padCols()
	return nil
}

// Insert appends a point to the given measurement.  Points must be
// inserted in non-decreasing time order per series (snapshots are).
func (db *DB) Insert(measurement string, p Point) error {
	id, err := db.Series(measurement, p.Tags)
	if err != nil {
		return err
	}
	if err := id.s.appendRow(p.Time, id.key); err != nil {
		return err
	}
	for name, v := range p.Fields {
		id.s.setField(name, v)
	}
	id.s.padCols()
	return nil
}

// Measurements returns the sorted measurement names.
func (db *DB) Measurements() []string {
	out := make([]string, 0, len(db.data))
	for m := range db.data {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Query starts a fluent query over a measurement, in the spirit of
// `FROM "measurement" WHERE ...`.
func (db *DB) Query(measurement string) *Query {
	return &Query{db: db, measurement: measurement, t1: ^uint64(0)}
}

// Query is a filter/projection builder over one measurement.
type Query struct {
	db          *DB
	measurement string
	where       []func(tags map[string]string) bool
	t0, t1      uint64
}

// Where restricts to series whose tag equals value.
func (q *Query) Where(tag, value string) *Query {
	q.where = append(q.where, func(tags map[string]string) bool {
		return tags[tag] == value
	})
	return q
}

// WhereIn restricts to series whose tag is one of the values.
func (q *Query) WhereIn(tag string, values ...string) *Query {
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[v] = true
	}
	q.where = append(q.where, func(tags map[string]string) bool {
		return set[tags[tag]]
	})
	return q
}

// Range restricts to points with t0 <= Time < t1.
func (q *Query) Range(t0, t1 uint64) *Query {
	q.t0, q.t1 = t0, t1
	return q
}

func (q *Query) matchSeries() []*series {
	var out []*series
	for _, s := range q.db.data[q.measurement] {
		ok := true
		for _, f := range q.where {
			if !f(s.tags) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	// Deterministic order for merging.
	sort.Slice(out, func(i, j int) bool {
		return keyOf(q.measurement, out[i].tags) < keyOf(q.measurement, out[j].tags)
	})
	return out
}

// Field extracts one field as a merged, time-sorted series.  Points from
// multiple matching series at the same timestamp are summed (the natural
// aggregation for counter digests).
func (q *Query) Field(name string) Series {
	type acc struct {
		t uint64
		v float64
	}
	var merged []acc
	for _, s := range q.matchSeries() {
		col, ok := s.cols[name]
		if !ok {
			continue
		}
		for i, t := range s.times {
			if t < q.t0 || t >= q.t1 {
				continue
			}
			v := col[i]
			if math.IsNaN(v) {
				continue
			}
			merged = append(merged, acc{t, v})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].t < merged[j].t })
	var out Series
	for _, a := range merged {
		if n := len(out); n > 0 && out[n-1].T == a.t {
			out[n-1].V += a.v
			continue
		}
		out = append(out, Sample{T: a.t, V: a.v})
	}
	return out
}

// Tags returns the distinct values of a tag across matching series, sorted.
func (q *Query) Tags(tag string) []string {
	seen := make(map[string]bool)
	for _, s := range q.matchSeries() {
		if v, ok := s.tags[tag]; ok {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Sample is one (time, value) observation.
type Sample struct {
	T uint64
	V float64
}

// Series is a time-ordered sequence of samples.
type Series []Sample

// Values returns just the values.
func (s Series) Values() []float64 {
	out := make([]float64, len(s))
	for i, p := range s {
		out[i] = p.V
	}
	return out
}

// Min returns the minimum value (0 for an empty series).
func (s Series) Min() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0].V
	for _, p := range s[1:] {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Max returns the maximum value (0 for an empty series).
func (s Series) Max() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0].V
	for _, p := range s[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Sum returns the sum of values.
func (s Series) Sum() float64 {
	var t float64
	for _, p := range s {
		t += p.V
	}
	return t
}

// Mean returns the arithmetic mean (0 for an empty series).
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s))
}

// MovingAverage returns the k-point trailing moving average, aligned to the
// source timestamps (the first k-1 points average what is available).
func (s Series) MovingAverage(k int) Series {
	if k <= 1 || len(s) == 0 {
		out := make(Series, len(s))
		copy(out, s)
		return out
	}
	out := make(Series, len(s))
	var window float64
	for i, p := range s {
		window += p.V
		n := k
		if i+1 < k {
			n = i + 1
		} else if i >= k {
			window -= s[i-k].V
		}
		out[i] = Sample{T: p.T, V: window / float64(n)}
	}
	return out
}

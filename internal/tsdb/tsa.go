package tsdb

import (
	"errors"
	"math"
)

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples.  It returns 0 when either side has zero variance and an error on
// mismatched or too-short inputs.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("tsdb: Pearson inputs differ in length")
	}
	n := len(a)
	if n < 2 {
		return 0, errors.New("tsdb: Pearson needs at least two samples")
	}
	var ma, mb float64
	for i := 0; i < n; i++ {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(va*vb), nil
}

// HWParams are Holt-Winters (triple exponential smoothing) parameters.
type HWParams struct {
	Alpha  float64 // level smoothing in (0,1]
	Beta   float64 // trend smoothing in [0,1]
	Gamma  float64 // seasonal smoothing in [0,1]
	Period int     // season length in samples (>= 2)
}

// HoltWinters fits an additive Holt-Winters model to vals and forecasts
// horizon further samples.  It requires at least two full periods of data.
func HoltWinters(vals []float64, p HWParams, horizon int) ([]float64, error) {
	m := p.Period
	switch {
	case m < 2:
		return nil, errors.New("tsdb: Holt-Winters period must be >= 2")
	case len(vals) < 2*m:
		return nil, errors.New("tsdb: Holt-Winters needs two full periods of history")
	case p.Alpha <= 0 || p.Alpha > 1 || p.Beta < 0 || p.Beta > 1 || p.Gamma < 0 || p.Gamma > 1:
		return nil, errors.New("tsdb: Holt-Winters smoothing factors out of range")
	case horizon < 0:
		return nil, errors.New("tsdb: negative forecast horizon")
	}

	// Initial level/trend from the first two periods; initial seasonal
	// indices from per-slot deviations of the first period.
	var s1, s2 float64
	for i := 0; i < m; i++ {
		s1 += vals[i]
		s2 += vals[m+i]
	}
	s1 /= float64(m)
	s2 /= float64(m)
	level := s1
	trend := (s2 - s1) / float64(m)
	season := make([]float64, m)
	for i := 0; i < m; i++ {
		season[i] = vals[i] - s1
	}

	for t := m; t < len(vals); t++ {
		si := t % m
		prevLevel := level
		level = p.Alpha*(vals[t]-season[si]) + (1-p.Alpha)*(level+trend)
		trend = p.Beta*(level-prevLevel) + (1-p.Beta)*trend
		season[si] = p.Gamma*(vals[t]-level) + (1-p.Gamma)*season[si]
	}

	out := make([]float64, horizon)
	for h := 1; h <= horizon; h++ {
		si := (len(vals) + h - 1) % m
		out[h-1] = level + float64(h)*trend + season[si]
	}
	return out, nil
}

// Decomposition splits a series into trend, seasonal, and residual
// components (classical additive decomposition).
type Decomposition struct {
	Trend    []float64
	Seasonal []float64
	Residual []float64
}

// Decompose performs additive decomposition with the given season period.
// Trend is a centered moving average of one period; the seasonal component
// is the per-slot mean of the detrended values.
func Decompose(vals []float64, period int) (Decomposition, error) {
	if period < 2 {
		return Decomposition{}, errors.New("tsdb: decomposition period must be >= 2")
	}
	n := len(vals)
	if n < 2*period {
		return Decomposition{}, errors.New("tsdb: decomposition needs two full periods")
	}
	d := Decomposition{
		Trend:    make([]float64, n),
		Seasonal: make([]float64, n),
		Residual: make([]float64, n),
	}
	// Centered moving average; edges reuse the nearest computed value.
	half := period / 2
	for i := range vals {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += vals[j]
		}
		d.Trend[i] = sum / float64(hi-lo+1)
	}
	slotSum := make([]float64, period)
	slotCnt := make([]int, period)
	for i := range vals {
		slotSum[i%period] += vals[i] - d.Trend[i]
		slotCnt[i%period]++
	}
	for i := range vals {
		d.Seasonal[i] = slotSum[i%period] / float64(slotCnt[i%period])
		d.Residual[i] = vals[i] - d.Trend[i] - d.Seasonal[i]
	}
	return d, nil
}

// Segment is a contiguous run of samples with a consistent level — the
// "window with similar hits" of the paper's locality analysis.  End is
// exclusive.
type Segment struct {
	Start, End int
	Mean       float64
}

// Len returns the number of samples in the segment.
func (s Segment) Len() int { return s.End - s.Start }

// Segments partitions vals into phase windows: a new window starts when a
// value deviates from the running window mean by more than relTol
// (relative) or absTol (absolute), whichever bound is larger.  This is the
// time-series clustering step PFMaterializer uses to find stable execution
// phases.
func Segments(vals []float64, relTol, absTol float64) []Segment {
	if len(vals) == 0 {
		return nil
	}
	var out []Segment
	start := 0
	sum := vals[0]
	for i := 1; i < len(vals); i++ {
		mean := sum / float64(i-start)
		bound := relTol * math.Abs(mean)
		if absTol > bound {
			bound = absTol
		}
		if math.Abs(vals[i]-mean) > bound {
			out = append(out, Segment{Start: start, End: i, Mean: mean})
			start = i
			sum = vals[i]
			continue
		}
		sum += vals[i]
	}
	out = append(out, Segment{Start: start, End: len(vals), Mean: sum / float64(len(vals)-start)})
	return out
}

package tsdb

import "math"

// Anomaly is one sample flagged by residual analysis: its index, observed
// value, the local expectation (trailing moving average), and the z-score
// of the residual — the "residual (or anomaly)" component of the paper's
// §4.6 time-series analysis.
type Anomaly struct {
	Index    int
	Value    float64
	Expected float64
	Score    float64
}

// Anomalies detrends vals with a trailing moving average of the given
// window and flags samples whose residual exceeds zThresh standard
// deviations of the residual distribution.  It returns nil when the series
// is too short or has no residual variance.
func Anomalies(vals []float64, window int, zThresh float64) []Anomaly {
	if window < 2 {
		window = 2
	}
	if len(vals) < window+2 || zThresh <= 0 {
		return nil
	}
	// Trailing moving average as the local expectation (excluding the
	// current point so a spike does not mask itself).
	expected := make([]float64, len(vals))
	var sum float64
	for i, v := range vals {
		if i == 0 {
			expected[i] = v
		} else {
			n := i
			if n > window {
				n = window
			}
			expected[i] = sum / float64(n)
		}
		sum += v
		if i >= window {
			sum -= vals[i-window]
		}
	}
	// Residual standard deviation.
	var mean, m2 float64
	n := 0
	for i := 1; i < len(vals); i++ {
		r := vals[i] - expected[i]
		n++
		d := r - mean
		mean += d / float64(n)
		m2 += d * (r - mean)
	}
	if n < 2 {
		return nil
	}
	std := math.Sqrt(m2 / float64(n-1))
	if std == 0 {
		return nil
	}
	var out []Anomaly
	for i := 1; i < len(vals); i++ {
		z := (vals[i] - expected[i] - mean) / std
		if math.Abs(z) > zThresh {
			out = append(out, Anomaly{Index: i, Value: vals[i], Expected: expected[i], Score: z})
		}
	}
	return out
}

package tsdb

import (
	"math"
	"testing"
	"testing/quick"
)

func mustInsert(t *testing.T, db *DB, m string, p Point) {
	t.Helper()
	if err := db.Insert(m, p); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndQuery(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		mustInsert(t, db, "path_set", Point{
			Time:   uint64(i * 100),
			Tags:   map[string]string{"pid": "1", "dst": "LLC"},
			Fields: map[string]float64{"hits": float64(i)},
		})
	}
	s := db.Query("path_set").Where("pid", "1").Where("dst", "LLC").Field("hits")
	if len(s) != 10 {
		t.Fatalf("got %d points", len(s))
	}
	if s.Sum() != 45 {
		t.Fatalf("Sum = %v", s.Sum())
	}
	if s.Min() != 0 || s.Max() != 9 || s.Mean() != 4.5 {
		t.Fatalf("min/max/mean = %v/%v/%v", s.Min(), s.Max(), s.Mean())
	}
}

func TestQueryFilters(t *testing.T) {
	db := New()
	for i, dst := range []string{"LLC", "CXL", "LLC", "DRAM"} {
		mustInsert(t, db, "m", Point{
			Time:   uint64(i),
			Tags:   map[string]string{"dst": dst},
			Fields: map[string]float64{"v": 1},
		})
	}
	if got := db.Query("m").Where("dst", "LLC").Field("v").Sum(); got != 2 {
		t.Fatalf("Where sum = %v", got)
	}
	if got := db.Query("m").WhereIn("dst", "LLC", "CXL").Field("v").Sum(); got != 3 {
		t.Fatalf("WhereIn sum = %v", got)
	}
	if got := db.Query("m").Where("dst", "none").Field("v"); len(got) != 0 {
		t.Fatalf("unmatched filter returned %d points", len(got))
	}
	if got := db.Query("nope").Field("v"); len(got) != 0 {
		t.Fatal("unknown measurement returned points")
	}
}

func TestQueryRange(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		mustInsert(t, db, "m", Point{Time: uint64(i), Fields: map[string]float64{"v": 1}})
	}
	if got := db.Query("m").Range(2, 5).Field("v").Sum(); got != 3 {
		t.Fatalf("Range sum = %v", got)
	}
}

func TestSameTimestampMerge(t *testing.T) {
	db := New()
	// Two series (different tags) sampled at the same instants merge by sum.
	for i := 0; i < 4; i++ {
		mustInsert(t, db, "m", Point{Time: uint64(i), Tags: map[string]string{"core": "0"},
			Fields: map[string]float64{"v": 1}})
		mustInsert(t, db, "m", Point{Time: uint64(i), Tags: map[string]string{"core": "1"},
			Fields: map[string]float64{"v": 2}})
	}
	s := db.Query("m").Field("v")
	if len(s) != 4 {
		t.Fatalf("merged to %d points", len(s))
	}
	for _, p := range s {
		if p.V != 3 {
			t.Fatalf("merged value = %v", p.V)
		}
	}
}

func TestOutOfOrderInsertRejected(t *testing.T) {
	db := New()
	mustInsert(t, db, "m", Point{Time: 10, Fields: map[string]float64{"v": 1}})
	if err := db.Insert("m", Point{Time: 5, Fields: map[string]float64{"v": 1}}); err == nil {
		t.Fatal("out-of-order insert accepted")
	}
	if err := db.Insert("", Point{Time: 1}); err == nil {
		t.Fatal("empty measurement accepted")
	}
}

func TestTagsEnumeration(t *testing.T) {
	db := New()
	for _, pid := range []string{"9", "3", "9"} {
		mustInsert(t, db, "m", Point{Tags: map[string]string{"pid": pid},
			Fields: map[string]float64{"v": 1}})
	}
	got := db.Query("m").Tags("pid")
	if len(got) != 2 || got[0] != "3" || got[1] != "9" {
		t.Fatalf("Tags = %v", got)
	}
}

func TestMovingAverage(t *testing.T) {
	s := Series{{0, 2}, {1, 4}, {2, 6}, {3, 8}}
	ma := s.MovingAverage(2)
	want := []float64{2, 3, 5, 7}
	for i, w := range want {
		if ma[i].V != w {
			t.Fatalf("ma[%d] = %v, want %v (full: %v)", i, ma[i].V, w, ma)
		}
	}
	// k<=1 is the identity.
	id := s.MovingAverage(1)
	for i := range s {
		if id[i] != s[i] {
			t.Fatal("MovingAverage(1) is not identity")
		}
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(a, b)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation: r=%v err=%v", r, err)
	}
	c := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(a, c)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation: r=%v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	r, err = Pearson(a, flat)
	if err != nil || r != 0 {
		t.Fatalf("zero-variance side: r=%v err=%v", r, err)
	}
	if _, err := Pearson(a, b[:3]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson(a[:1], b[:1]); err == nil {
		t.Fatal("single sample accepted")
	}
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(raw[i])
			b[i] = float64(raw[n+i])
		}
		r1, err1 := Pearson(a, b)
		r2, err2 := Pearson(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1-r2) < 1e-9 && r1 >= -1.0000001 && r1 <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHoltWintersSeasonal(t *testing.T) {
	// Seasonal signal: period 4, rising trend.
	base := []float64{10, 20, 30, 20}
	var vals []float64
	for c := 0; c < 6; c++ {
		for _, v := range base {
			vals = append(vals, v+float64(c)) // slow upward trend
		}
	}
	fc, err := HoltWinters(vals, HWParams{Alpha: 0.5, Beta: 0.1, Gamma: 0.3, Period: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 4 {
		t.Fatalf("forecast length %d", len(fc))
	}
	// The forecast must preserve the seasonal shape: slot 2 is the peak.
	if !(fc[2] > fc[0] && fc[2] > fc[1] && fc[2] > fc[3]) {
		t.Fatalf("forecast lost seasonality: %v", fc)
	}
	// And stay in a sane band around the last cycle's level.
	for _, v := range fc {
		if v < 5 || v > 45 {
			t.Fatalf("forecast diverged: %v", fc)
		}
	}
}

func TestHoltWintersErrors(t *testing.T) {
	vals := make([]float64, 20)
	if _, err := HoltWinters(vals, HWParams{Alpha: 0.5, Period: 1}, 1); err == nil {
		t.Fatal("period 1 accepted")
	}
	if _, err := HoltWinters(vals[:5], HWParams{Alpha: 0.5, Period: 4}, 1); err == nil {
		t.Fatal("short history accepted")
	}
	if _, err := HoltWinters(vals, HWParams{Alpha: 0, Period: 4}, 1); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := HoltWinters(vals, HWParams{Alpha: 0.5, Period: 4}, -1); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestDecompose(t *testing.T) {
	// Flat trend + strict period-2 alternation.
	vals := []float64{10, 20, 10, 20, 10, 20, 10, 20}
	d, err := Decompose(vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Seasonal slots must differ by ~10 with opposite signs.
	if !(d.Seasonal[1]-d.Seasonal[0] > 5) {
		t.Fatalf("seasonal = %v", d.Seasonal[:2])
	}
	if _, err := Decompose(vals[:3], 2); err == nil {
		t.Fatal("short series accepted")
	}
	if _, err := Decompose(vals, 1); err == nil {
		t.Fatal("period 1 accepted")
	}
}

func TestSegments(t *testing.T) {
	vals := []float64{
		100, 102, 98, 101, // phase A
		500, 505, 498, // phase B
		100, 99, // phase C (back down)
	}
	segs := Segments(vals, 0.2, 0)
	if len(segs) != 3 {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0].Len() != 4 || segs[1].Len() != 3 || segs[2].Len() != 2 {
		t.Fatalf("segment lengths: %+v", segs)
	}
	if segs[1].Mean < 400 {
		t.Fatalf("phase B mean = %v", segs[1].Mean)
	}
}

func TestSegmentsDegenerate(t *testing.T) {
	if got := Segments(nil, 0.1, 0); got != nil {
		t.Fatal("nil input produced segments")
	}
	one := Segments([]float64{7}, 0.1, 0)
	if len(one) != 1 || one[0].Mean != 7 {
		t.Fatalf("single sample: %+v", one)
	}
	// All-zero series with absolute tolerance stays one window.
	z := Segments(make([]float64, 50), 0.1, 1)
	if len(z) != 1 {
		t.Fatalf("zero series split into %d windows", len(z))
	}
}

// Property: segments exactly tile the input.
func TestSegmentsTileProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		segs := Segments(vals, 0.3, 2)
		if len(vals) == 0 {
			return segs == nil
		}
		pos := 0
		for _, s := range segs {
			if s.Start != pos || s.End <= s.Start {
				return false
			}
			pos = s.End
		}
		return pos == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeasurements(t *testing.T) {
	db := New()
	mustInsert(t, db, "b", Point{Fields: map[string]float64{"v": 1}})
	mustInsert(t, db, "a", Point{Fields: map[string]float64{"v": 1}})
	got := db.Measurements()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Measurements = %v", got)
	}
}

func TestAnomaliesDetectSpike(t *testing.T) {
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 100 + float64(i%3)
	}
	vals[25] = 900 // spike
	got := Anomalies(vals, 5, 4)
	if len(got) == 0 {
		t.Fatal("spike not detected")
	}
	found := false
	for _, a := range got {
		if a.Index == 25 {
			found = true
			if a.Score < 4 {
				t.Fatalf("spike score %v", a.Score)
			}
		}
		// The recovery sample right after the spike may also flag; nothing
		// far away should.
		if a.Index < 24 || a.Index > 27 {
			t.Fatalf("false positive at %d (%+v)", a.Index, a)
		}
	}
	if !found {
		t.Fatal("spike index not flagged")
	}
}

func TestAnomaliesDegenerate(t *testing.T) {
	if got := Anomalies(nil, 5, 3); got != nil {
		t.Fatal("nil input flagged")
	}
	if got := Anomalies([]float64{1, 2}, 5, 3); got != nil {
		t.Fatal("short input flagged")
	}
	flat := make([]float64, 50)
	if got := Anomalies(flat, 5, 3); got != nil {
		t.Fatal("zero-variance series flagged")
	}
	if got := Anomalies(flat, 5, 0); got != nil {
		t.Fatal("non-positive threshold flagged")
	}
}

func TestSeriesInterning(t *testing.T) {
	db := New()
	id1, err := db.Series("path_set", map[string]string{"app": "bfs", "dst": "CXL"})
	if err != nil {
		t.Fatal(err)
	}
	// Same tag set through a different map instance must intern to the same
	// series, not create a second one.
	id2, err := db.Series("path_set", map[string]string{"dst": "CXL", "app": "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatal("same-tag Series calls interned to different IDs")
	}
	if !id1.Valid() {
		t.Fatal("interned ID reports invalid")
	}

	// Repeated inserts through the interned ID land in one series and skip
	// tag hashing entirely.
	for i := 0; i < 100; i++ {
		if err := db.InsertSeries(id1, uint64(i), F("hits", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	pts := db.Query("path_set").Where("app", "bfs").Field("hits")
	if len(pts) != 100 {
		t.Fatalf("interned inserts produced %d points across series, want 100 in one", len(pts))
	}

	// Steady state: an insert through an interned ID allocates only for
	// amortized column growth — preallocate past the measurement window and
	// the hot path is allocation-free.
	id1.s.times = append(make([]uint64, 0, 4096), id1.s.times...)
	id1.s.cols["hits"] = append(make([]float64, 0, 4096), id1.s.cols["hits"]...)
	next := uint64(100)
	allocs := testing.AllocsPerRun(200, func() {
		if err := db.InsertSeries(id1, next, F("hits", 1)); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs != 0 {
		t.Fatalf("interned insert allocates %.1f allocs/point, want 0", allocs)
	}
}

func TestInsertSeriesZeroID(t *testing.T) {
	db := New()
	if err := db.InsertSeries(SeriesID{}, 0, F("x", 1)); err == nil {
		t.Fatal("insert through zero SeriesID accepted")
	}
	if _, err := db.Series("", nil); err == nil {
		t.Fatal("empty measurement accepted")
	}
}

package chaos

import "pathfinder/internal/cxl"

// The shrinker is a greedy delta-debugger over FaultPlan structure: it
// proposes candidate plans with one knob removed (or simplified), keeps
// the first candidate that still reproduces the target violation, and
// iterates to a fixpoint.  The result is a locally-minimal plan: removing
// any single remaining knob makes the violation disappear.

// clonePlan deep-copies a plan so candidates never alias slices.
func clonePlan(p *cxl.FaultPlan) *cxl.FaultPlan {
	q := *p
	q.Bursts = append([]cxl.Burst(nil), p.Bursts...)
	q.Timeouts = append([]cxl.Episode(nil), p.Timeouts...)
	q.Throttles = append([]cxl.Episode(nil), p.Throttles...)
	return &q
}

// candidates proposes one-step simplifications of the plan, ordered from
// most to least structural.
func candidates(p *cxl.FaultPlan) []*cxl.FaultPlan {
	var out []*cxl.FaultPlan
	for i := range p.Bursts {
		q := clonePlan(p)
		q.Bursts = append(q.Bursts[:i:i], q.Bursts[i+1:]...)
		out = append(out, q)
	}
	for i := range p.Timeouts {
		q := clonePlan(p)
		q.Timeouts = append(q.Timeouts[:i:i], q.Timeouts[i+1:]...)
		out = append(out, q)
	}
	for i := range p.Throttles {
		q := clonePlan(p)
		q.Throttles = append(q.Throttles[:i:i], q.Throttles[i+1:]...)
		out = append(out, q)
	}
	if p.RemoveAt > 0 {
		q := clonePlan(p)
		q.RemoveAt, q.RemovePenalty = 0, 0
		out = append(out, q)
	}
	if p.ViralThreshold > 0 {
		q := clonePlan(p)
		q.ViralThreshold, q.ViralReset = 0, 0
		out = append(out, q)
	}
	if p.PoisonLen > 0 {
		q := clonePlan(p)
		q.PoisonBase, q.PoisonLen = 0, 0
		// Poison without viral makes no sense to keep around.
		q.ViralThreshold, q.ViralReset = 0, 0
		out = append(out, q)
	}
	for d := cxl.Direction(0); d < 2; d++ {
		if p.CRCRate[d] > 0 {
			q := clonePlan(p)
			q.CRCRate[d] = 0
			out = append(out, q)
		}
	}
	if p.TimeoutPenalty > 0 {
		q := clonePlan(p)
		q.TimeoutPenalty = 0
		out = append(out, q)
	}
	if p.ViralReset > 0 {
		q := clonePlan(p)
		q.ViralReset = 0
		out = append(out, q)
	}
	if p.RemoveAt > 0 && p.RemovePenalty > 0 {
		q := clonePlan(p)
		q.RemovePenalty = 0
		out = append(out, q)
	}
	return out
}

// Shrink minimizes c.Plan while runs keep tripping the named invariant.
// reproduce runs a candidate case and reports whether the violation
// recurs; maxRuns bounds the total candidate runs (a shrink is best
// effort — the incoming case already reproduces).  It returns the
// minimized case and how many candidate runs were spent.
func Shrink(c Case, invariant string, maxRuns int, reproduce func(Case) bool) (Case, int) {
	if maxRuns <= 0 {
		maxRuns = 64
	}
	runs := 0
	best := c
	best.Plan = clonePlan(c.Plan)
	for {
		progressed := false
		for _, cand := range candidates(best.Plan) {
			if runs >= maxRuns {
				return best, runs
			}
			candCase := best
			candCase.Plan = cand
			runs++
			if reproduce(candCase) {
				best = candCase
				progressed = true
				break // restart candidate generation from the smaller plan
			}
		}
		if !progressed {
			return best, runs
		}
	}
}

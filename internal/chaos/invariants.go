package chaos

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
)

// Probe is everything an invariant monitor may inspect: the case, the
// rig configuration, the end-of-run snapshot, and the analysis outputs
// computed from it.
type Probe struct {
	Case     Case
	Cfg      sim.Config
	Snapshot *core.Snapshot
	Queues   *core.QueueReport
	Stalls   *core.StallBreakdown
	Measured map[core.Component]float64
}

// Invariant is one monitor: Check returns "" when the invariant holds,
// otherwise a human-readable violation detail.
type Invariant struct {
	Name  string
	Check func(*Probe) string
}

// caseCores are the cores the chaos rig profiles.
var caseCores = []int{0, 1}

func newProbe(c Case, cfg sim.Config, m *sim.Machine, snap *core.Snapshot) *Probe {
	k := core.ConstsFor(cfg)
	return &Probe{
		Case:     c,
		Cfg:      cfg,
		Snapshot: snap,
		Queues:   core.AnalyzeQueues(snap, caseCores, 0, k),
		Stalls:   core.EstimateStalls(snap, caseCores, 0, k),
		Measured: core.MeasuredQueues(snap, caseCores, 0),
	}
}

// invariants returns the built-in monitor list.  (A fresh slice per call:
// Run appends the caller's extras to it.)
func invariants() []Invariant {
	return []Invariant{
		{Name: "pmu-conservation", Check: checkConservation},
		{Name: "queue-residency", Check: checkQueueResidency},
		{Name: "no-nan", Check: checkNoNaN},
	}
}

// checkConservation verifies flow conservation through the CXL port's
// counters: queue inserts minus completions must leave a residue within
// the queue's capacity, and the link's CRC/retry pair must move in
// lockstep.
func checkConservation(p *Probe) string {
	s := p.Snapshot
	rpqIns := s.CXL(0, pmu.CXLDevRPQInserts)
	casRd := s.CXL(0, pmu.CXLDevCASRd)
	if resident := rpqIns - casRd; resident < 0 || resident > float64(p.Cfg.CXLRPQEntries) {
		return fmt.Sprintf("RPQ inserts %.0f - reads served %.0f = %.0f resident, outside [0, %d]",
			rpqIns, casRd, resident, p.Cfg.CXLRPQEntries)
	}
	wpqIns := s.CXL(0, pmu.CXLDevWPQInserts)
	casWr := s.CXL(0, pmu.CXLDevCASWr)
	if resident := wpqIns - casWr; resident < 0 || resident > float64(p.Cfg.CXLWPQEntries) {
		return fmt.Sprintf("WPQ inserts %.0f - writes served %.0f = %.0f resident, outside [0, %d]",
			wpqIns, casWr, resident, p.Cfg.CXLWPQEntries)
	}
	// Every RPQ/WPQ insert passed through a packing buffer first.
	if packReq := s.CXL(0, pmu.CXLRxPackBufInsertsReq); packReq < rpqIns {
		return fmt.Sprintf("RPQ inserts %.0f exceed packing-buffer req inserts %.0f", rpqIns, packReq)
	}
	if packData := s.CXL(0, pmu.CXLRxPackBufInsertsData); packData < wpqIns {
		return fmt.Sprintf("WPQ inserts %.0f exceed packing-buffer data inserts %.0f", wpqIns, packData)
	}
	if crc, retries := s.CXL(0, pmu.CXLLinkCRCErrors), s.CXL(0, pmu.CXLLinkRetries); crc != retries {
		return fmt.Sprintf("CRC errors %.0f != link retries %.0f", crc, retries)
	}
	return ""
}

// checkQueueResidency verifies the measured occupancy integrals respect
// the configured queue capacities — the time-averaged length of a bounded
// queue can never exceed its entry count — and that the AnalyzeQueues
// estimates stay non-negative.
func checkQueueResidency(p *Probe) string {
	s := p.Snapshot
	clocks := s.Cycles()
	if clocks == 0 {
		return ""
	}
	caps := []struct {
		name string
		occ  pmu.Event
		cap  int
	}{
		{"device RPQ", pmu.CXLDevRPQOccupancy, p.Cfg.CXLRPQEntries},
		{"device WPQ", pmu.CXLDevWPQOccupancy, p.Cfg.CXLWPQEntries},
		{"pack buf req", pmu.CXLRxPackBufOccReq, p.Cfg.PackBufEntries},
		{"pack buf data", pmu.CXLRxPackBufOccData, p.Cfg.PackBufEntries},
	}
	const slack = 1e-6
	for _, c := range caps {
		if avg := s.CXL(0, c.occ) / clocks; avg > float64(c.cap)+slack {
			return fmt.Sprintf("%s average occupancy %.3f exceeds capacity %d", c.name, avg, c.cap)
		}
	}
	if p.Measured != nil {
		bound := float64(p.Cfg.CXLRPQEntries + p.Cfg.CXLWPQEntries + 2*p.Cfg.PackBufEntries)
		if got := p.Measured[core.CompCXLDIMM]; got > bound+slack {
			return fmt.Sprintf("measured CXL DIMM queue %.3f exceeds total capacity %.0f", got, bound)
		}
		lfbBound := float64(p.Cfg.LFBEntries * p.Cfg.Cores)
		if got := p.Measured[core.CompLFB]; got > lfbBound+slack {
			return fmt.Sprintf("measured LFB queue %.3f exceeds %d entries x %d cores",
				got, p.Cfg.LFBEntries, p.Cfg.Cores)
		}
	}
	for pt := range p.Queues.Q {
		for c, v := range p.Queues.Q[pt] {
			if v < 0 {
				return fmt.Sprintf("AnalyzeQueues estimate Q[%d][%d] = %g is negative", pt, c, v)
			}
		}
	}
	return ""
}

// checkNoNaN walks every analysis output for NaN/Inf — the signature of
// an unguarded division when counters go dark mid-run.
func checkNoNaN(p *Probe) string {
	for pt := range p.Queues.Q {
		for c, v := range p.Queues.Q[pt] {
			if !finite(v) {
				return fmt.Sprintf("queue estimate Q[%d][%d] = %v", pt, c, v)
			}
		}
	}
	for pt := range p.Stalls.Stall {
		for c, v := range p.Stalls.Stall[pt] {
			if !finite(v) {
				return fmt.Sprintf("stall estimate [%d][%d] = %v", pt, c, v)
			}
		}
	}
	for _, c := range core.Components() {
		if v, ok := p.Measured[c]; ok && !finite(v) {
			return fmt.Sprintf("measured queue %v = %v", c, v)
		}
	}
	return ""
}

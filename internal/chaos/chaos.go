// Package chaos soaks the simulator's fault machinery: it generates
// seeded random FaultPlans (including viral and surprise-removal
// episodes), runs them against a matrix of workloads under invariant
// monitors, and shrinks any violating plan to a minimal reproducer.  The
// goal is to find simulator bugs — conservation breaks, queue-bound
// violations, NaNs, nondeterminism, panics — before users do.
//
// Everything is deterministic: a case is fully described by (seed, plan
// string), the rig is rebuilt from scratch per run, and every failure
// report prints the seed and the canonical plan string so `pfbench
// -replay 'seed,plan'` reproduces the identical violation byte for byte.
package chaos

import (
	"bytes"
	"fmt"
	"math"

	"pathfinder/internal/core"
	"pathfinder/internal/cxl"
	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// Case is one chaos scenario: a fault plan driven by a workload for a
// fixed number of simulated cycles.  Workload is derived from Seed, so
// (Seed, Plan, Cycles) replays exactly.
type Case struct {
	Seed     uint64
	Plan     *cxl.FaultPlan
	Workload string
	Cycles   uint64
}

// DefaultCycles is the per-case simulated-run length: long enough to
// cross episode windows and removal cycles, short enough to soak hundreds
// of cases in seconds.
const DefaultCycles = 1_500_000

// Violation is one tripped invariant.
type Violation struct {
	Invariant string
	Detail    string
}

// Result is the outcome of running one case.
type Result struct {
	Violations []Violation
	Digest     core.Digest

	// Bundle is the flight-recorder postmortem (obs.Bundle JSON) dumped
	// automatically when the case tripped an invariant; nil on a clean run.
	// Its aux section carries the case's AnalyzeQueues estimates so the
	// promoted tail spans can be cross-checked offline.
	Bundle []byte
}

// Violates reports whether the result tripped the named invariant.
func (r *Result) Violates(name string) bool {
	for _, v := range r.Violations {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

// mix64 is the splitmix64 finalizer (the same mixer the fault plans use),
// so case generation is a pure function of the seed.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rng is a counter-mode deterministic generator over mix64.
type rng struct{ seed, n uint64 }

func (r *rng) next() uint64 { r.n++; return mix64(r.seed ^ r.n*0x9e3779b97f4a7c15) }
func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *rng) below(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}
func (r *rng) chance(p float64) bool { return r.f64() < p }

// chaosConfig is the fixed small rig every case runs on: 2 cores, a
// trimmed LLC, one CXL device.
func chaosConfig(plan *cxl.FaultPlan) sim.Config {
	cfg := sim.SPR()
	cfg.Cores = 2
	cfg.LLCSlices = 4
	cfg.LLCSize = 2 << 20
	cfg.Faults = plan
	return cfg
}

// chaosSpace builds the case address space: one local node and one CXL
// node with a region allocated on each.  Construction is deterministic,
// so region bounds are identical on every call.
func chaosSpace() (*mem.AddressSpace, mem.Region, mem.Region, error) {
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 1 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 1 << 30},
	})
	local, err := as.Alloc(4<<20, mem.Fixed(0))
	if err != nil {
		return nil, mem.Region{}, mem.Region{}, err
	}
	cxlRegion, err := as.Alloc(4<<20, mem.Fixed(1))
	if err != nil {
		return nil, mem.Region{}, mem.Region{}, err
	}
	return as, local, cxlRegion, nil
}

// workloadNames is the workload matrix cases cycle through.  The
// "multicore" row drives both cores under parallel window lanes (DESIGN.md
// §12), so fault plans soak the lane scheduler's bail-out and barrier
// paths, not just the single-core sweep.
var workloadNames = [...]string{"stream", "chase", "zipf", "multicore"}

// workloadFor derives the case's workload from its seed.
func workloadFor(seed uint64) string {
	return workloadNames[mix64(seed^0x3c6ef372fe94f82a)%uint64(len(workloadNames))]
}

// buildWorkloads constructs the named case's per-core generators.  Single
// workload names drive core 0 over the CXL region; the "multicore" row
// returns one generator per core — a CXL stream racing a mostly-local
// Zipf — which Run schedules on parallel window lanes.
func buildWorkloads(name string, local, cxlr workload.Region, seed uint64) ([]workload.Generator, error) {
	switch name {
	case "stream":
		return []workload.Generator{workload.NewStream(cxlr, 0, 0.2, seed)}, nil
	case "chase":
		return []workload.Generator{workload.NewPointerChase(cxlr, 0, seed)}, nil
	case "zipf":
		return []workload.Generator{workload.NewZipf(cxlr, 0.9, 0.8, 4, 0, seed)}, nil
	case "multicore":
		return []workload.Generator{
			workload.NewStream(cxlr, 1, 0.2, seed),
			workload.NewZipf(local, 0.9, 0.3, 4, 1, seed+1),
		}, nil
	}
	return nil, fmt.Errorf("chaos: unknown workload %q", name)
}

// GenCase derives a full chaos case from a seed: a random fault plan
// exercising every knob class (CRC noise, bursts, timeouts, throttles,
// poison, viral, surprise removal) with probabilities tuned so most cases
// combine at least two failure modes.
func GenCase(seed uint64, cycles uint64) (Case, error) {
	if cycles == 0 {
		cycles = DefaultCycles
	}
	_, _, cxlRegion, err := chaosSpace()
	if err != nil {
		return Case{}, err
	}
	r := &rng{seed: mix64(seed ^ 0xc4a05)}
	p := &cxl.FaultPlan{Seed: seed}

	if r.chance(0.5) {
		p.CRCRate[cxl.DirM2S] = 0.05 * r.f64() * r.f64()
	}
	if r.chance(0.5) {
		p.CRCRate[cxl.DirS2M] = 0.05 * r.f64() * r.f64()
	}
	for i := uint64(0); i < r.below(3); i++ {
		b := cxl.Burst{
			Dir:   cxl.Direction(r.below(2)),
			Start: r.below(cycles),
			Len:   1_000 + r.below(cycles/4),
			Rate:  0.8 * r.f64(),
		}
		if r.chance(0.5) {
			b.Period = b.Len * (2 + r.below(6))
		}
		p.Bursts = append(p.Bursts, b)
	}
	episode := func() cxl.Episode {
		e := cxl.Episode{Start: r.below(cycles), Len: 1_000 + r.below(cycles/8)}
		if r.chance(0.5) {
			e.Period = e.Len * (2 + r.below(6))
		}
		return e
	}
	if r.chance(0.4) {
		p.Timeouts = append(p.Timeouts, episode())
		if r.chance(0.5) {
			p.TimeoutPenalty = 500 + r.below(8_000)
		}
	}
	if r.chance(0.4) {
		p.Throttles = append(p.Throttles, episode())
	}
	if r.chance(0.4) {
		off := r.below(cxlRegion.Size / 2)
		p.PoisonBase = cxlRegion.Base + off
		p.PoisonLen = 64 + r.below(cxlRegion.Size/4)
		if r.chance(0.5) {
			p.ViralThreshold = 1 + r.below(8)
			if r.chance(0.5) {
				p.ViralReset = 20_000 + r.below(200_000)
			}
		}
	}
	if r.chance(0.25) {
		p.RemoveAt = cycles/4 + r.below(cycles/2)
		if r.chance(0.5) {
			p.RemovePenalty = 2_000 + r.below(20_000)
		}
	}
	if err := p.Validate(); err != nil {
		return Case{}, fmt.Errorf("chaos: generated invalid plan for seed %d: %v", seed, err)
	}
	return Case{Seed: seed, Plan: p, Workload: workloadFor(seed), Cycles: cycles}, nil
}

// CaseFor assembles a replay case from a seed and a plan string (the pair
// every failure report prints).
func CaseFor(seed uint64, planStr string, cycles uint64) (Case, error) {
	if cycles == 0 {
		cycles = DefaultCycles
	}
	plan, err := cxl.ParseFaultPlan(planStr)
	if err != nil {
		return Case{}, err
	}
	return Case{Seed: seed, Plan: plan, Workload: workloadFor(seed), Cycles: cycles}, nil
}

// runChunks is how many slices a case run is split into; the charge hook
// is consulted between slices so supervised soaks can cut off runaways at
// a deterministic simulated cycle.
const runChunks = 8

// forkProbe threads the run-twice replay through a case run: the straight
// leg checkpoints the machine at its midpoint chunk boundary and records
// the suffix PMU digest from there to completion; the forked leg restores
// the image and replays the same suffix.  Byte-identical suffix digests
// prove both determinism and restore-equivalence on this exact case; skip
// records why no checkpoint could be taken (the caller then falls back to
// a full same-seed re-run).
type forkProbe struct {
	at       uint64 // simulated cycle the checkpoint was taken at
	cp       *sim.Checkpoint
	skip     error
	straight core.Digest
	forked   core.Digest
}

// Run executes one case: build the rig fresh, drive the workload through
// the fault plan, snapshot every PMU, evaluate the invariant monitors
// (plus any extras), and digest the counters.  A panic anywhere inside
// the simulator or analyzer becomes a "panic" violation rather than
// taking the process down.  charge, when non-nil, is called with the
// simulated cycles of each chunk and aborts the run when it errors.
func Run(c Case, extra []Invariant, charge func(uint64) error) (*Result, error) {
	return runCase(c, extra, charge, nil)
}

// runCase is Run plus the optional mid-run fork probe.
func runCase(c Case, extra []Invariant, charge func(uint64) error, fp *forkProbe) (res *Result, err error) {
	res = &Result{}
	defer func() {
		if r := recover(); r != nil {
			res.Violations = append(res.Violations,
				Violation{Invariant: "panic", Detail: fmt.Sprint(r)})
		}
	}()

	as, local, cxlRegion, err := chaosSpace()
	if err != nil {
		return res, err
	}
	gens, err := buildWorkloads(c.Workload,
		workload.Region{Base: local.Base, Size: local.Size},
		workload.Region{Base: cxlRegion.Base, Size: cxlRegion.Size}, c.Seed)
	if err != nil {
		return res, err
	}
	cfg := chaosConfig(c.Plan)
	m := sim.New(cfg, as)
	// Every case runs with the flight recorder attached and enabled: when
	// an invariant trips, the tail-latency evidence is already captured and
	// ships with the result as a postmortem bundle.
	fl := obs.NewFlight(cfg.Cores, flightRingCap, flightTailCap)
	fl.Enable()
	m.SetFlight(fl)
	if len(gens) > 1 {
		// Multi-core rows run on parallel lanes regardless of GOMAXPROCS,
		// so every soak exercises the window scheduler under faults.
		m.SetLanes(len(gens))
	}
	for i, g := range gens {
		m.Attach(i, g)
	}
	// Baseline the capturer before the run: Capture() returns the delta
	// since construction, so building it afterwards would hand the
	// invariant monitors an all-zero snapshot with an empty cycle window —
	// every counter-based check would pass vacuously.
	cap := core.NewCapturer(m)

	chunk := c.Cycles / runChunks
	if chunk == 0 {
		chunk = c.Cycles
	}
	var suffixCap *core.Capturer
	var done uint64
	for done < c.Cycles {
		step := chunk
		if rest := c.Cycles - done; rest < step {
			step = rest
		}
		m.Run(sim.Cycles(step))
		done += step
		if charge != nil {
			if err := charge(step); err != nil {
				return res, err
			}
		}
		// Midpoint checkpoint for the run-twice replay: taken at a chunk
		// boundary (never inside an open window) with suffix cycles left to
		// replay.  A machine that cannot be checkpointed records why, and
		// the caller falls back to a full second run.
		if fp != nil && fp.cp == nil && fp.skip == nil && done >= c.Cycles/2 {
			if done == c.Cycles {
				fp.skip = fmt.Errorf("chaos: case too short to fork (%d cycles)", c.Cycles)
			} else if cp, cerr := m.Checkpoint(); cerr != nil {
				fp.skip = cerr
			} else {
				fp.at = done
				fp.cp = cp
				suffixCap = core.NewCapturer(m)
			}
		}
	}
	m.Sync()

	if suffixCap != nil {
		ssnap := suffixCap.Capture()
		fp.straight = core.EncodeDigest(ssnap)
		ssnap.Release()
		if err := runForkedSuffix(fp, c.Cycles, chunk, charge); err != nil {
			return res, err
		}
	}

	snap := cap.Capture()
	defer snap.Release()

	probe := newProbe(c, cfg, m, snap)
	for _, inv := range append(invariants(), extra...) {
		if detail := inv.Check(probe); detail != "" {
			res.Violations = append(res.Violations,
				Violation{Invariant: inv.Name, Detail: detail})
		}
	}
	res.Digest = core.EncodeDigest(snap)
	if len(res.Violations) > 0 {
		res.Bundle = violationBundle(c, fl, probe, snap.Cycles())
	}
	return res, nil
}

// runForkedSuffix replays the case suffix on a fork restored from the
// midpoint checkpoint, filling fp.forked with the suffix PMU digest.  The
// fork carries the straight leg's lane setting and fault-plan state by
// construction; the flight recorder is deliberately left detached (it does
// not influence PMU counters).  Charging mirrors the straight leg's chunk
// cadence so supervised soaks account the replayed cycles.
func runForkedSuffix(fp *forkProbe, cycles, chunk uint64, charge func(uint64) error) error {
	m := fp.cp.Restore()
	cap := core.NewCapturer(m)
	for done := fp.at; done < cycles; {
		step := chunk
		if rest := cycles - done; rest < step {
			step = rest
		}
		m.Run(sim.Cycles(step))
		done += step
		if charge != nil {
			if err := charge(step); err != nil {
				return err
			}
		}
	}
	m.Sync()
	snap := cap.Capture()
	fp.forked = core.EncodeDigest(snap)
	snap.Release()
	return nil
}

// Flight-recorder sizing for chaos rigs: cases are short, so modest rings
// and a tail store deep enough to hold the whole pathology window.
const (
	flightRingCap = 1024
	flightTailCap = 256
)

// violationBundle assembles the postmortem for a tripped case.  The aux
// section carries the DRd-path AnalyzeQueues estimates and the run length,
// making the bundle self-sufficient for residency cross-checks.  Bundling
// is best-effort: a marshaling failure returns nil rather than masking the
// violation itself.
func violationBundle(c Case, fl *obs.Flight, probe *Probe, clocks float64) []byte {
	aux := map[string]any{
		"clocks": clocks,
		"queues": map[string]float64{
			"drd_flexbus_mc": probe.Queues.Q[core.PathDRd][core.CompFlexBusMC],
			"drd_cxl_dimm":   probe.Queues.Q[core.PathDRd][core.CompCXLDIMM],
		},
	}
	plan := ""
	if c.Plan != nil {
		plan = c.Plan.String()
	}
	var buf bytes.Buffer
	err := obs.DumpBundle(&buf, obs.BundleOpts{
		Trigger:   "chaos-violation",
		Flight:    fl,
		FaultPlan: plan,
		Aux:       aux,
	})
	if err != nil {
		return nil
	}
	return buf.Bytes()
}

// finite reports whether v is a usable number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

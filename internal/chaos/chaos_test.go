package chaos

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/cxl"
	"pathfinder/internal/obs"
	"pathfinder/internal/sim"
)

const testCycles = 250_000

// TestGenCaseDeterministic: a case is a pure function of its seed.
func TestGenCaseDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 20; seed++ {
		a, err := GenCase(seed, testCycles)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, _ := GenCase(seed, testCycles)
		if a.Plan.String() != b.Plan.String() || a.Workload != b.Workload {
			t.Fatalf("seed %d not deterministic: %q/%s vs %q/%s",
				seed, a.Plan.String(), a.Workload, b.Plan.String(), b.Workload)
		}
		// The printed plan must round-trip so replay sees the same case.
		rt, err := cxl.ParseFaultPlan(a.Plan.String())
		if err != nil {
			t.Fatalf("seed %d: plan %q does not re-parse: %v", seed, a.Plan.String(), err)
		}
		if rt.String() != a.Plan.String() {
			t.Fatalf("seed %d: plan round-trip drift %q -> %q", seed, a.Plan.String(), rt.String())
		}
	}
}

// TestSoakClean: a short soak of the real simulator finds nothing — the
// built-in invariants hold under generated fault plans.
func TestSoakClean(t *testing.T) {
	rep, err := Soak(Options{Cases: 4, BaseSeed: 100, Cycles: testCycles})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("unexpected finding [%s] seed=%d plan=%q: %s",
			f.Violation.Invariant, f.Case.Seed, f.Case.Plan.String(), f.Violation.Detail)
	}
	if failed := rep.Tasks.Failed(); len(failed) > 0 {
		t.Fatalf("supervision failures: %s", rep.Tasks.Summary())
	}
}

// TestRunTwiceForkEngages: the run-twice replay must actually fork from a
// midpoint checkpoint on every workload row — including the multicore row
// under parallel lanes — not silently fall back to a full second run, and
// the forked suffix digest must match the straight leg byte for byte.
func TestRunTwiceForkEngages(t *testing.T) {
	covered := map[string]bool{}
	for seed := uint64(1); seed < 40 && len(covered) < len(workloadNames); seed++ {
		c, err := GenCase(seed, testCycles)
		if err != nil {
			t.Fatal(err)
		}
		if covered[c.Workload] {
			continue
		}
		covered[c.Workload] = true
		fp := &forkProbe{}
		res, err := runCase(c, nil, nil, fp)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, c.Workload, err)
		}
		if fp.cp == nil {
			t.Fatalf("seed %d (%s): no midpoint checkpoint taken: %v", seed, c.Workload, fp.skip)
		}
		if fp.at == 0 || fp.at >= c.Cycles {
			t.Fatalf("seed %d (%s): checkpoint at cycle %d of %d", seed, c.Workload, fp.at, c.Cycles)
		}
		if len(fp.straight) == 0 || !bytes.Equal(fp.straight, fp.forked) {
			t.Fatalf("seed %d (%s): forked suffix digest diverged (%d vs %d bytes)",
				seed, c.Workload, len(fp.straight), len(fp.forked))
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d (%s): unexpected violation [%s]: %s", seed, c.Workload, v.Invariant, v.Detail)
		}
	}
	for _, w := range workloadNames {
		if !covered[w] {
			t.Errorf("workload row %q never generated in 40 seeds", w)
		}
	}
}

// TestSoakShrinkAndReplay drives the full failure pipeline with a
// synthetic invariant that trips whenever M2S CRC noise is enabled: the
// soak must report the violation with seed and plan, the shrinker must
// strip every knob except the culprit, and replaying the shrunk plan must
// reproduce the identical violation.
func TestSoakShrinkAndReplay(t *testing.T) {
	crcTrip := Invariant{Name: "synthetic-crc", Check: func(p *Probe) string {
		if p.Case.Plan.CRCRate[cxl.DirM2S] > 0 {
			return "m2s crc noise present"
		}
		return ""
	}}

	// A deliberately over-stuffed case: the culprit knob plus noise the
	// shrinker should remove.
	plan := &cxl.FaultPlan{Seed: 42}
	plan.CRCRate[cxl.DirM2S] = 0.01
	plan.CRCRate[cxl.DirS2M] = 0.01
	plan.Bursts = []cxl.Burst{{Dir: cxl.DirS2M, Start: 10_000, Len: 5_000, Rate: 0.5}}
	plan.Timeouts = []cxl.Episode{{Start: 50_000, Len: 4_000}}
	plan.RemoveAt = 200_000
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Case{Seed: 42, Plan: plan, Workload: workloadFor(42), Cycles: testCycles}

	res, err := Run(c, []Invariant{crcTrip}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violates("synthetic-crc") {
		t.Fatalf("synthetic invariant did not trip: %+v", res.Violations)
	}

	shrunk, runs := Shrink(c, "synthetic-crc", 64, func(cand Case) bool {
		r, rerr := Run(cand, []Invariant{crcTrip}, nil)
		return rerr == nil && r.Violates("synthetic-crc")
	})
	if runs == 0 {
		t.Fatal("shrinker did not run any candidates")
	}
	p := shrunk.Plan
	if p.CRCRate[cxl.DirM2S] == 0 {
		t.Fatalf("shrinker removed the culprit knob: %q", p.String())
	}
	if p.CRCRate[cxl.DirS2M] != 0 || len(p.Bursts) != 0 || len(p.Timeouts) != 0 || p.RemoveAt != 0 {
		t.Fatalf("shrinker left irrelevant knobs: %q", p.String())
	}

	// The shrunk (seed, plan) pair replays to the identical violation,
	// byte for byte across two invocations.
	var out1, out2 bytes.Buffer
	if _, err := Replay(&out1, shrunk.Seed, p.String(), shrunk.Cycles, []Invariant{crcTrip}); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(&out2, shrunk.Seed, p.String(), shrunk.Cycles, []Invariant{crcTrip}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatalf("replay output not byte-identical:\n%s\n----\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "VIOLATION [synthetic-crc]") ||
		!strings.Contains(out1.String(), "seed=42") ||
		!strings.Contains(out1.String(), "digest sha256=") {
		t.Fatalf("replay report incomplete:\n%s", out1.String())
	}
}

// TestSoakReportPrintsSeedAndPlan: every finding report carries the seed,
// the full plan string, and a ready-to-paste replay command.
func TestSoakReportPrintsSeedAndPlan(t *testing.T) {
	always := Invariant{Name: "always", Check: func(*Probe) string { return "tripped" }}
	var out bytes.Buffer
	rep, err := Soak(Options{
		Cases: 2, BaseSeed: 300, Cycles: testCycles,
		Extra: []Invariant{always}, MaxShrink: 8, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) < 2 {
		t.Fatalf("want a finding per case, got %d", len(rep.Findings))
	}
	s := out.String()
	for _, want := range []string{
		"VIOLATION [always]", "seed=300", "seed=301", "plan=", "replay: pfbench -replay '",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	// The printed plan string must itself parse.
	for _, f := range rep.Findings {
		if _, err := cxl.ParseFaultPlan(f.Shrunk.Plan.String()); err != nil {
			t.Fatalf("shrunk plan %q unparseable: %v", f.Shrunk.Plan.String(), err)
		}
	}
}

// TestViolationBundleResidencyCrossCheck: a tripped case ships a parseable
// postmortem bundle, and the flight recorder's device-segment evidence
// agrees with the analyzer estimates carried in the bundle's aux section.
//
// The cross-check is Little's law over the whole run.  The recorder's
// device segment for a CXL-served demand load spans memEnter→done:
// M2PCIe ingress, link transit both ways, controller, device RPQ through
// media, and the final mesh hop back to the CHA.  The analyzer's
// Q[DRd][FlexBus+MC] + Q[DRd][CXL DIMM] price almost the same span, with
// two known structural offsets:
//
//   - the analyzer's constant LinkTransit (2·FlexBus + Ctrl + 2·M2P)
//     re-prices the controller and one M2P leg that the measured
//     packing-buffer and ingress occupancy integrals already contain, and
//   - the mesh hop returning data to the CHA is booked under CompCHA,
//     not the device components.
//
// So the recorder-side occupancy L_flight = Σ devResidency / clocks must
// equal Q_flex + Q_dimm + λ·(Mesh − Ctrl − M2P), with λ the CXL
// demand-load rate.  A fault-free pointer chase keeps the comparison
// tight: one outstanding load, no prefetch training, no dirty victims
// extending completions.
func TestViolationBundleResidencyCrossCheck(t *testing.T) {
	plan := &cxl.FaultPlan{Seed: 9}
	c := Case{Seed: 9, Plan: plan, Workload: "chase", Cycles: DefaultCycles}
	trip := Invariant{Name: "forced", Check: func(*Probe) string { return "harvest a bundle" }}
	res, err := Run(c, []Invariant{trip}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violates("forced") {
		t.Fatalf("forced invariant did not trip: %+v", res.Violations)
	}
	if res.Bundle == nil {
		t.Fatal("violating case produced no bundle")
	}

	b, err := obs.ReadBundle(bytes.NewReader(res.Bundle))
	if err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if b.Trigger != "chaos-violation" {
		t.Fatalf("trigger = %q", b.Trigger)
	}
	if b.FaultPlan != plan.String() {
		t.Fatalf("bundle plan %q, want %q", b.FaultPlan, plan.String())
	}
	if !b.Flight.Enabled || b.Flight.Records == 0 || len(b.Flight.Tail) == 0 {
		t.Fatalf("flight section empty: records=%d tail=%d", b.Flight.Records, len(b.Flight.Tail))
	}

	var aux struct {
		Clocks float64            `json:"clocks"`
		Queues map[string]float64 `json:"queues"`
	}
	if err := json.Unmarshal(b.Aux, &aux); err != nil {
		t.Fatalf("aux does not parse: %v", err)
	}
	if aux.Clocks == 0 {
		t.Fatal("aux carries no run length")
	}

	loads := b.Flight.Classes[obs.FlightLoad]
	cxlIdx := int(sim.SrvCXL)
	n := float64(loads.ByLoc[cxlIdx])
	if n == 0 {
		t.Fatal("no CXL-served demand loads recorded")
	}
	lFlight := float64(loads.DevByLoc[cxlIdx]) / aux.Clocks
	cfg := chaosConfig(plan)
	k := core.ConstsFor(cfg)
	correction := k.Mesh - float64(cfg.CXLCtrlLat+cfg.M2PLat)
	lambda := n / aux.Clocks
	lAnalyzer := aux.Queues["drd_flexbus_mc"] + aux.Queues["drd_cxl_dimm"] + lambda*correction
	if lAnalyzer == 0 {
		t.Fatal("analyzer estimates in aux are zero")
	}
	if rel := math.Abs(lFlight-lAnalyzer) / lAnalyzer; rel > 0.10 {
		t.Fatalf("device occupancy mismatch: flight %.4f vs analyzer %.4f (%.1f%% off)",
			lFlight, lAnalyzer, 100*rel)
	}

	// The promoted spans individually tell the same story: each tail
	// record's device residency matches the analyzer-implied per-request
	// wait W = (Q_flex+Q_dimm)/λ + correction.  The chase workload has a
	// near-constant request latency, so even the promoted tail (by
	// construction the slowest requests) stays within the same 10%.
	wAnalyzer := (aux.Queues["drd_flexbus_mc"]+aux.Queues["drd_cxl_dimm"])/lambda + correction
	checked := 0
	for _, tr := range b.Flight.Tail {
		if int(tr.Loc) != cxlIdx || tr.Class != obs.FlightLoad {
			continue
		}
		checked++
		devRes := float64(tr.Latency() - uint64(tr.MemEnter))
		if rel := math.Abs(devRes-wAnalyzer) / wAnalyzer; rel > 0.10 {
			t.Fatalf("promoted span seq=%d device residency %.0f vs analyzer wait %.0f (%.1f%% off)",
				tr.Seq, devRes, wAnalyzer, 100*rel)
		}
	}
	if checked == 0 {
		t.Fatal("no promoted CXL load spans to cross-check")
	}
}

// TestCleanRunShipsNoBundle: bundles are violation postmortems, not a tax
// on healthy cases.
func TestCleanRunShipsNoBundle(t *testing.T) {
	c, err := GenCase(100, testCycles)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("seed 100 tripped: %+v", res.Violations)
	}
	if res.Bundle != nil {
		t.Fatal("clean run carried a bundle")
	}
}

// TestRunContainsInvariantPanic: a panicking monitor becomes a "panic"
// violation, not a process crash.
func TestRunContainsInvariantPanic(t *testing.T) {
	bomb := Invariant{Name: "bomb", Check: func(*Probe) string { panic("monitor bug") }}
	c, err := GenCase(5, testCycles)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, []Invariant{bomb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violates("panic") {
		t.Fatalf("panic not contained: %+v", res.Violations)
	}
}

func TestParseReplaySpec(t *testing.T) {
	seed, plan, err := ParseReplaySpec("42,seed=42,crc-m2s=0.01")
	if err != nil || seed != 42 || plan != "seed=42,crc-m2s=0.01" {
		t.Fatalf("got seed=%d plan=%q err=%v", seed, plan, err)
	}
	if _, _, err := ParseReplaySpec("noseed"); err == nil {
		t.Fatal("spec without comma accepted")
	}
	if _, _, err := ParseReplaySpec("x,plan"); err == nil {
		t.Fatal("non-numeric seed accepted")
	}
	seed, plan, err = ParseReplaySpec("7,healthy")
	if err != nil || seed != 7 || plan != "healthy" {
		t.Fatalf("healthy spec: seed=%d plan=%q err=%v", seed, plan, err)
	}
}

// TestMulticoreRowReplayable: the multicore matrix row — both cores on
// parallel window lanes — runs under a seeded fault plan, and replaying
// the same (seed, plan) pair reproduces a byte-identical report.
func TestMulticoreRowReplayable(t *testing.T) {
	var seed uint64
	for s := uint64(1); ; s++ {
		if workloadFor(s) == "multicore" {
			seed = s
			break
		}
	}
	c, err := GenCase(seed, testCycles)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workload != "multicore" {
		t.Fatalf("seed %d workload = %q", seed, c.Workload)
	}
	res, err := Run(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("multicore row violation [%s]: %s", v.Invariant, v.Detail)
	}
	var out1, out2 bytes.Buffer
	if _, err := Replay(&out1, seed, c.Plan.String(), c.Cycles, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(&out2, seed, c.Plan.String(), c.Cycles, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatalf("multicore replay output not byte-identical:\n%s\n----\n%s",
			out1.String(), out2.String())
	}
}

package chaos

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pathfinder/internal/experiments"
)

// Options tunes a soak run.
type Options struct {
	Cases    int    // cases to generate and run
	BaseSeed uint64 // case i uses seed BaseSeed+i
	Cycles   uint64 // simulated cycles per case (0 = DefaultCycles)

	// Extra invariant monitors evaluated alongside the built-ins — tests
	// inject deliberately trippable monitors here to exercise the
	// shrink-and-replay pipeline end to end.
	Extra []Invariant

	// MaxShrink bounds candidate runs per finding (0 = 64).
	MaxShrink int

	// CycleBudget is the per-case supervision budget in simulated cycles
	// (0 = unlimited); a case that exceeds it is cut off and reported as a
	// deadline failure, not a finding.
	CycleBudget uint64

	// Out receives finding reports as they are confirmed (nil = discard).
	Out io.Writer
}

// Finding is one confirmed invariant violation with its minimized
// reproducer.
type Finding struct {
	Case       Case
	Violation  Violation
	Shrunk     Case
	ShrinkRuns int
}

// Report aggregates a soak run.
type Report struct {
	Cases    int
	Findings []Finding
	Tasks    *experiments.RunReport // per-case supervision outcomes
}

// Render prints the seed and full plan string of every finding — the
// contract is that anything a soak reports can be replayed verbatim.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "chaos: soaked %d cases, %d findings\n", r.Cases, len(r.Findings))
	for i := range r.Findings {
		writeFinding(w, &r.Findings[i])
	}
	if failed := r.Tasks.Failed(); len(failed) > 0 {
		fmt.Fprintf(w, "chaos: supervision: %s\n", r.Tasks.Summary())
	}
}

func writeFinding(w io.Writer, f *Finding) {
	fmt.Fprintf(w, "chaos: VIOLATION [%s] seed=%d workload=%s plan=%q\n",
		f.Violation.Invariant, f.Case.Seed, f.Case.Workload, f.Case.Plan.String())
	fmt.Fprintf(w, "chaos:   detail: %s\n", f.Violation.Detail)
	fmt.Fprintf(w, "chaos:   shrunk after %d runs: seed=%d plan=%q\n",
		f.ShrinkRuns, f.Shrunk.Seed, f.Shrunk.Plan.String())
	fmt.Fprintf(w, "chaos:   replay: pfbench -replay '%d,%s'\n",
		f.Shrunk.Seed, f.Shrunk.Plan.String())
}

// runChecked runs a case with the run-twice replay: the straight leg
// checkpoints the machine at its midpoint, and the suffix is replayed on a
// fork of the frozen image — re-simulating only half the case instead of
// all of it.  Diverging suffix digests trip the replay-divergence
// invariant (nondeterminism or a restore-equivalence break).  When the
// case cannot be checkpointed (too short, a pending closure, a
// non-forkable generator), it falls back to the full same-seed second run
// compared end to end.
func runChecked(c Case, extra []Invariant, charge func(uint64) error) (*Result, error) {
	fp := &forkProbe{}
	res, err := runCase(c, extra, charge, fp)
	if err != nil {
		return res, err
	}
	if fp.cp == nil {
		res2, err := Run(c, extra, charge)
		if err != nil {
			return res, err
		}
		if !bytes.Equal(res.Digest, res2.Digest) {
			h1, h2 := sha256.Sum256(res.Digest), sha256.Sum256(res2.Digest)
			res.Violations = append(res.Violations, Violation{
				Invariant: "replay-divergence",
				Detail: fmt.Sprintf("same-seed runs produced different PMU digests (%d vs %d bytes, sha %x vs %x)",
					len(res.Digest), len(res2.Digest), h1[:4], h2[:4]),
			})
		}
		return res, nil
	}
	if len(fp.straight) > 0 && len(fp.forked) > 0 && !bytes.Equal(fp.straight, fp.forked) {
		h1, h2 := sha256.Sum256(fp.straight), sha256.Sum256(fp.forked)
		res.Violations = append(res.Violations, Violation{
			Invariant: "replay-divergence",
			Detail: fmt.Sprintf("forked replay from the cycle-%d checkpoint diverged from the straight run (suffix digests %d vs %d bytes, sha %x vs %x)",
				fp.at, len(fp.straight), len(fp.forked), h1[:4], h2[:4]),
		})
	}
	return res, nil
}

// Soak generates opt.Cases seeded cases and runs them under the
// supervised pool: a panicking or runaway case is contained as a task
// failure while the rest of the soak proceeds.  Each violation is
// shrunk to a minimal reproducing plan and reported with its seed.
func Soak(opt Options) (*Report, error) {
	if opt.Cases <= 0 {
		opt.Cases = 1
	}
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	findings := make([][]Finding, opt.Cases)

	taskRep := experiments.Supervise(experiments.SuperviseOptions{
		Label:       "chaos-soak",
		Seed:        opt.BaseSeed,
		CycleBudget: opt.CycleBudget,
	}, opt.Cases, func(i int, tc *experiments.TaskCtx) error {
		c, err := GenCase(opt.BaseSeed+uint64(i), opt.Cycles)
		if err != nil {
			return err
		}
		res, err := runChecked(c, opt.Extra, tc.Charge)
		if err != nil {
			return err
		}
		for _, v := range res.Violations {
			shrunk, runs := Shrink(c, v.Invariant, opt.MaxShrink, func(cand Case) bool {
				r, rerr := runChecked(cand, opt.Extra, nil)
				return rerr == nil && r.Violates(v.Invariant)
			})
			findings[i] = append(findings[i], Finding{
				Case: c, Violation: v, Shrunk: shrunk, ShrinkRuns: runs,
			})
		}
		return nil
	})

	rep := &Report{Cases: opt.Cases, Tasks: taskRep}
	for _, fs := range findings {
		rep.Findings = append(rep.Findings, fs...)
	}
	rep.Render(out)
	return rep, nil
}

// ParseReplaySpec splits the "seed,plan" argument of -replay at the first
// comma; the plan half is itself a comma-separated knob list.
func ParseReplaySpec(spec string) (uint64, string, error) {
	seedStr, planStr, ok := strings.Cut(spec, ",")
	if !ok {
		return 0, "", fmt.Errorf("chaos: replay spec %q is not 'seed,plan'", spec)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(seedStr), 0, 64)
	if err != nil {
		return 0, "", fmt.Errorf("chaos: replay seed: %v", err)
	}
	return seed, strings.TrimSpace(planStr), nil
}

// Replay re-runs a reported (seed, plan) pair and writes a deterministic
// report: the case header, every violation, and the digest hash.  Two
// replays of the same spec produce byte-identical output.
func Replay(w io.Writer, seed uint64, planStr string, cycles uint64, extra []Invariant) (*Result, error) {
	c, err := CaseFor(seed, planStr, cycles)
	if err != nil {
		return nil, err
	}
	res, err := runChecked(c, extra, nil)
	if err != nil {
		return res, err
	}
	fmt.Fprintf(w, "chaos: replay seed=%d workload=%s cycles=%d plan=%q\n",
		c.Seed, c.Workload, c.Cycles, c.Plan.String())
	for _, v := range res.Violations {
		fmt.Fprintf(w, "chaos: VIOLATION [%s] seed=%d plan=%q\n", v.Invariant, c.Seed, c.Plan.String())
		fmt.Fprintf(w, "chaos:   detail: %s\n", v.Detail)
	}
	if len(res.Violations) == 0 {
		fmt.Fprintf(w, "chaos: no violations\n")
	}
	fmt.Fprintf(w, "chaos: digest sha256=%x (%d bytes)\n", sha256.Sum256(res.Digest), len(res.Digest))
	return res, nil
}

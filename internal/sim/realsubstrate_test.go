package sim

import (
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

// TestRealSubstratesRun drives the real-algorithm substrates (CSR BFS and
// hash-table KV) through the machine and checks their traffic signatures:
// the BFS mixes prefetchable edge scans with dependent vertex lookups; the
// KV store produces probe-chain loads plus record-body traffic.
func TestRealSubstratesRun(t *testing.T) {
	as := testSpace(t)
	cfg := smallConfig()

	// BFS over a CXL-resident graph.
	bfsApp, ok := workload.Lookup("BFS-CSR")
	if !ok {
		t.Fatal("BFS-CSR missing from catalog")
	}
	r1, _ := as.Alloc(16<<20, mem.Fixed(2))
	m := New(cfg, as)
	m.Attach(0, workload.NewLimit(bfsApp.Generator(workload.Region{Base: r1.Base, Size: r1.Size}, 3), 80_000))
	deadline := m.Now() + 400_000_000
	for m.Core(0).Running() && m.Now() < deadline {
		m.Run(2_000_000)
	}
	m.Sync()
	b := m.Core(0).Bank()
	if b.Read(pmu.MemInstAllLoads) == 0 || b.Read(pmu.MemInstAllStores) == 0 {
		t.Fatal("BFS issued no loads or no stores")
	}
	// Edge scans train the prefetchers; vertex lookups miss to CXL.
	if b.Read(pmu.OCRL1DHWPF[pmu.ScnAny])+b.Read(pmu.OCRL2HWPFDRd[pmu.ScnAny]) == 0 {
		t.Fatal("BFS edge scans triggered no hardware prefetch")
	}
	if b.Read(pmu.OCRDemandDataRd[pmu.ScnMissCXL]) == 0 {
		t.Fatal("BFS vertex lookups never reached CXL")
	}

	// KV store on local memory.
	kvApp, ok := workload.Lookup("YCSB-C-HT")
	if !ok {
		t.Fatal("YCSB-C-HT missing from catalog")
	}
	r2, _ := as.Alloc(16<<20, mem.Fixed(0))
	m2 := New(cfg, as)
	m2.Attach(0, workload.NewLimit(kvApp.Generator(workload.Region{Base: r2.Base, Size: r2.Size}, 5), 60_000))
	deadline = m2.Now() + 200_000_000
	for m2.Core(0).Running() && m2.Now() < deadline {
		m2.Run(2_000_000)
	}
	m2.Sync()
	b2 := m2.Core(0).Bank()
	if b2.Read(pmu.MemInstAllLoads) == 0 {
		t.Fatal("KV issued no loads")
	}
	// Zipf popularity: the hot records concentrate into the caches.
	hits := float64(b2.Read(pmu.MemLoadL1Hit))
	loads := float64(b2.Read(pmu.MemInstAllLoads))
	if hits/loads < 0.3 {
		t.Fatalf("KV L1 hit rate %.2f — hot set not forming", hits/loads)
	}
}

package sim

import (
	"testing"
	"testing/quick"

	"pathfinder/internal/mem"
	"pathfinder/internal/workload"
)

// collectOwners scans every core's private caches for line la and returns
// the cores holding it in an ownership state (M or E).
func collectOwners(m *Machine, la uint64) []int {
	var owners []int
	for _, c := range m.cores {
		for _, cache := range []*Cache{c.l1, c.l2} {
			if ln := cache.Peek(la); ln != nil && (ln.State == Modified || ln.State == Exclusive) {
				owners = append(owners, c.id)
				break
			}
		}
	}
	return owners
}

// TestSingleWriterInvariant drives two cores over a shared region with a
// random load/store mix and asserts the MESIF single-writer property on
// every line afterwards: at most one core owns any line.
func TestSingleWriterInvariant(t *testing.T) {
	f := func(seed uint64, mix uint8) bool {
		as := mem.NewAddressSpace(12, []mem.Node{
			{ID: 0, Kind: mem.LocalDRAM, Capacity: 1 << 30},
			{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 1 << 30},
		})
		r, err := as.Alloc(256<<10, mem.Fixed(mem.NodeID(seed%2)))
		if err != nil {
			return false
		}
		cfg := smallConfig()
		cfg.Cores = 2
		m := New(cfg, as)
		frac := float64(mix%100) / 100
		wr := workload.Region{Base: r.Base, Size: r.Size}
		g0 := workload.NewStream(wr, 1, frac, seed|1)
		g0.Reuse = 2
		m.Attach(0, workload.NewLimit(g0, 4000))
		g1 := workload.NewGUPS(wr, 1, 0, 0, seed|3)
		m.Attach(1, workload.NewLimit(g1, 4000))
		m.Run(60_000_000)

		for a := r.Base; a < r.Base+r.Size; a += mem.LineSize {
			if owners := collectOwners(m, a); len(owners) > 1 {
				t.Logf("line %#x owned by cores %v", a, owners)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheBoundedOccupancy: random insert/invalidate sequences never
// exceed capacity, never duplicate a tag, and victims appear exactly when
// a full set must evict.
func TestCacheBoundedOccupancy(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCache(4096, 4) // 16 sets x 4 ways
		live := make(map[uint64]bool)
		for _, o := range ops {
			la := uint64(o%512) * 64
			switch o % 3 {
			case 0, 1:
				c.Insert(la, State(1+o%4))
				live[la] = true
				if c.HasVictim {
					if !live[c.Victim.Tag] {
						return false // evicted something never inserted
					}
					delete(live, c.Victim.Tag)
				}
			case 2:
				if _, had := c.Invalidate(la); had {
					delete(live, la)
				}
			}
		}
		if c.Occupied() != len(live) {
			return false
		}
		if c.Occupied() > c.Sets()*c.Ways() {
			return false
		}
		for la := range live {
			if c.Peek(la) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInclusionAfterBackInvalidation: after an LLC victim's
// back-invalidation, no core retains the line privately.
func TestInclusionAfterBackInvalidation(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(32<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.LLCSize = 512 << 10 // tiny LLC: constant evictions
	cfg.LLCSlices = 2
	m := New(cfg, as)
	g := workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 1, 0.3, 5)
	m.Attach(0, workload.NewLimit(g, 30000))
	m.Run(100_000_000)

	// Every line a core holds privately must still be present in the LLC
	// (inclusion), modulo the functional-timing approximation of lines
	// filled in the current instant.
	violations := 0
	checked := 0
	c := m.cores[0]
	for a := r.Base; a < r.Base+r.Size; a += mem.LineSize {
		inPrivate := c.l1.Peek(a) != nil || c.l2.Peek(a) != nil
		if !inPrivate {
			continue
		}
		checked++
		s := m.slices[mem.SliceOf(a, len(m.slices))]
		if s.llc.Peek(a) == nil {
			violations++
		}
	}
	if checked == 0 {
		t.Fatal("nothing cached to check")
	}
	if frac := float64(violations) / float64(checked); frac > 0.02 {
		t.Fatalf("inclusion violated for %.1f%% of %d private lines", frac*100, checked)
	}
}

package sim

import (
	"pathfinder/internal/cxl"
	"pathfinder/internal/obs"
	"pathfinder/internal/pmu"
)

// server is a work-conserving FCFS resource with a fixed per-item service
// time: the standard next-free-clock model for bandwidth-limited links and
// channels.  The clock is fractional so sub-cycle service times (high
// bandwidths) are not quantized away.
type server struct {
	nextFree float64
	service  float64
}

// acquire returns the service start time for an item arriving at arrival
// and advances the resource clock.
func (s *server) acquire(arrival Cycles) Cycles {
	start := float64(arrival)
	if s.nextFree > start {
		start = s.nextFree
	}
	s.nextFree = start + s.service
	return Cycles(start)
}

// byteServer is a bandwidth resource whose service time scales with the
// transferred size — the FlexBus link, whose flit-level cost differs
// between header-only messages (Req/NDR) and data-carrying ones (RwD/DRS).
type byteServer struct {
	nextFree float64
	perByte  float64 // cycles per wire byte
}

// acquire returns the transfer start time for size wire bytes arriving at
// arrival and advances the link clock.
func (s *byteServer) acquire(arrival Cycles, size float64) Cycles {
	start := float64(arrival)
	if s.nextFree > start {
		start = s.nextFree
	}
	s.nextFree = start + size*s.perByte
	return Cycles(start)
}

// boundedQueue computes FCFS admission into a finite buffer without
// per-cycle simulation: the k-th admission can enter once the (k-cap)-th
// entry has departed, so a ring of the last cap departure times yields the
// earliest admission instant.
type boundedQueue struct {
	dep []Cycles
	idx int
}

func newBoundedQueue(capacity int) *boundedQueue {
	if capacity <= 0 {
		return &boundedQueue{}
	}
	return &boundedQueue{dep: make([]Cycles, capacity)}
}

// admit returns the earliest time an item arriving at arrival can enter.
func (q *boundedQueue) admit(arrival Cycles) Cycles {
	if len(q.dep) == 0 {
		return arrival
	}
	if t := q.dep[q.idx]; t > arrival {
		return t
	}
	return arrival
}

// commit records the departure time of the item just admitted.  Departures
// must be committed in admission order (FCFS).
func (q *boundedQueue) commit(depart Cycles) {
	if len(q.dep) == 0 {
		return
	}
	q.dep[q.idx] = depart
	q.idx++
	if q.idx == len(q.dep) {
		q.idx = 0
	}
}

// ---------------------------------------------------------------------------
// Scenario tables: ServeLoc -> counter sub-event lists.
// ---------------------------------------------------------------------------

// drdScnTable maps a serve location to the nine-way DRd/OCR scenario
// sub-events it increments.  hit_llc means "served by a cache on this
// socket"; the finer local/snc/peer split is carried by the
// mem_load_l3_hit_retired family.
var drdScnTable = [srvCount][]int{
	SrvLLC:        {pmu.ScnAny, pmu.ScnHit},
	SrvPeerCache:  {pmu.ScnAny, pmu.ScnHit},
	SrvSNCLLC:     {pmu.ScnAny, pmu.ScnHit},
	SrvRemoteLLC:  {pmu.ScnAny, pmu.ScnMiss, pmu.ScnMissRemote},
	SrvLocalDRAM:  {pmu.ScnAny, pmu.ScnMiss, pmu.ScnMissDDR, pmu.ScnMissLocal, pmu.ScnMissLocalDDR},
	SrvRemoteDRAM: {pmu.ScnAny, pmu.ScnMiss, pmu.ScnMissDDR, pmu.ScnMissRemote, pmu.ScnMissRemoteDDR},
	SrvCXL:        {pmu.ScnAny, pmu.ScnMiss, pmu.ScnMissCXL},
}

// rfoScnTable is the six-way RFO scenario equivalent.
var rfoScnTable = [srvCount][]int{
	SrvLLC:        {pmu.RFOAny, pmu.RFOHit},
	SrvPeerCache:  {pmu.RFOAny, pmu.RFOHit},
	SrvSNCLLC:     {pmu.RFOAny, pmu.RFOHit},
	SrvRemoteLLC:  {pmu.RFOAny, pmu.RFOMiss, pmu.RFOMissRemote},
	SrvLocalDRAM:  {pmu.RFOAny, pmu.RFOMiss, pmu.RFOMissLocal},
	SrvRemoteDRAM: {pmu.RFOAny, pmu.RFOMiss, pmu.RFOMissRemote},
	SrvCXL:        {pmu.RFOAny, pmu.RFOMiss, pmu.RFOMissCXL},
}

// iaScnTable is the four-way all-requests TOR scenario equivalent.
var iaScnTable = [srvCount][]int{
	SrvLLC:        {pmu.IAAll, pmu.IAHit},
	SrvPeerCache:  {pmu.IAAll, pmu.IAHit},
	SrvSNCLLC:     {pmu.IAAll, pmu.IAHit},
	SrvRemoteLLC:  {pmu.IAAll, pmu.IAMiss},
	SrvLocalDRAM:  {pmu.IAAll, pmu.IAMiss},
	SrvRemoteDRAM: {pmu.IAAll, pmu.IAMiss},
	SrvCXL:        {pmu.IAAll, pmu.IAMiss, pmu.IAMissCXL},
}

// ocrFamilyOf returns the core-PMU offcore-response family for a request
// class, or nil when the class has none (writebacks use
// ocr.modified_write.any_response instead).
func ocrFamilyOf(class ReqClass) pmu.Family {
	switch class {
	case ClassDRd, ClassSWPF:
		return pmu.OCRDemandDataRd
	case ClassRFO:
		return pmu.OCRRFO
	case ClassL1PF:
		return pmu.OCRL1DHWPF
	case ClassL2PFDRd:
		return pmu.OCRL2HWPFDRd
	case ClassL2PFRFO:
		return pmu.OCRL2HWPFRFO
	}
	return nil
}

// ---------------------------------------------------------------------------
// CHA slice: an LLC slice, its snoop-filter presence bits, and a TOR with
// per-class occupancy trackers.
// ---------------------------------------------------------------------------

// torFamily bundles the insert counters and occupancy/not-empty trackers of
// one TOR request-class family.
type torFamily struct {
	inserts pmu.Family
	occ     []*pmu.OccTracker // indexed by scenario
}

func newTorFamily(bank *pmu.Bank, inserts, occ, ne pmu.Family) *torFamily {
	f := &torFamily{inserts: inserts, occ: make([]*pmu.OccTracker, len(inserts))}
	for i := range inserts {
		f.occ[i] = pmu.NewOccTracker(bank, occ[i], ne[i], -1, 0)
	}
	return f
}

// chaSlice is one LLC slice with its caching-and-home-agent bookkeeping.
type chaSlice struct {
	id      int
	cluster int
	llc     *Cache
	bank    *pmu.Bank

	ia, drd, drdPref, rfo, rfoPref *torFamily
	wbmtoi                         *pmu.OccTracker
}

func newCHASlice(id, cluster int, llcBytes, ways int, bank *pmu.Bank) *chaSlice {
	s := &chaSlice{
		id:      id,
		cluster: cluster,
		llc:     NewCache(llcBytes, ways),
		bank:    bank,
	}
	s.ia = newTorFamily(bank, pmu.TORInsertsIA, pmu.TOROccupancyIA, pmu.TORCyclesNEIA)
	s.drd = newTorFamily(bank, pmu.TORInsertsIADRd, pmu.TOROccupancyIADRd, pmu.TORCyclesNEIADRd)
	s.drdPref = newTorFamily(bank, pmu.TORInsertsIADRdPref, pmu.TOROccupancyIADRdPref, pmu.TORCyclesNEIADRdPref)
	s.rfo = newTorFamily(bank, pmu.TORInsertsIARFO, pmu.TOROccupancyIARFO, pmu.TORCyclesNEIARFO)
	s.rfoPref = newTorFamily(bank, pmu.TORInsertsIARFOPref, pmu.TOROccupancyIARFOPref, pmu.TORCyclesNEIARFOPref)
	s.wbmtoi = pmu.NewOccTracker(bank, pmu.TOROccupancyIAWBMToI, -1, -1, 0)
	return s
}

// torEnter is the evTOREnter payload: the insert counters and occupancy
// rising edges of one TOR residency.  The class/location scenario lists are
// re-derived from the static tables, so the event carries no closure state.
func (s *chaSlice) torEnter(now Cycles, class ReqClass, loc ServeLoc) {
	fam := s.torClassFamily(class)
	scns := drdScnTable[loc]
	if class.IsRFOLike() {
		scns = rfoScnTable[loc]
	}
	for _, scn := range scns {
		s.bank.Inc(fam.inserts[scn])
		fam.occ[scn].Update(now, +1)
	}
	for _, scn := range iaScnTable[loc] {
		s.bank.Inc(s.ia.inserts[scn])
		s.ia.occ[scn].Update(now, +1)
	}
}

// torPulse is the evTORPulse payload: one whole TOR residency — the
// insert counters and rising edges at now, with the falling edges queued
// inside each tracker for cycle leave.
func (s *chaSlice) torPulse(now, leave Cycles, class ReqClass, loc ServeLoc) {
	fam := s.torClassFamily(class)
	scns := drdScnTable[loc]
	if class.IsRFOLike() {
		scns = rfoScnTable[loc]
	}
	for _, scn := range scns {
		s.bank.Inc(fam.inserts[scn])
		fam.occ[scn].Update(uint64(now), +1)
		fam.occ[scn].Release(uint64(leave))
	}
	for _, scn := range iaScnTable[loc] {
		s.bank.Inc(s.ia.inserts[scn])
		s.ia.occ[scn].Update(uint64(now), +1)
		s.ia.occ[scn].Release(uint64(leave))
	}
}

// torLeave is the evTORLeave payload: the falling occupancy edges.
func (s *chaSlice) torLeave(now Cycles, class ReqClass, loc ServeLoc) {
	fam := s.torClassFamily(class)
	scns := drdScnTable[loc]
	if class.IsRFOLike() {
		scns = rfoScnTable[loc]
	}
	for _, scn := range scns {
		fam.occ[scn].Update(now, -1)
	}
	for _, scn := range iaScnTable[loc] {
		s.ia.occ[scn].Update(now, -1)
	}
}

// torClassFamily returns the TOR family tracking the given request class.
func (s *chaSlice) torClassFamily(class ReqClass) *torFamily {
	switch class {
	case ClassDRd, ClassSWPF:
		return s.drd
	case ClassRFO:
		return s.rfo
	case ClassL1PF, ClassL2PFDRd:
		return s.drdPref
	case ClassL2PFRFO:
		return s.rfoPref
	}
	return nil
}

// sync advances all occupancy trackers to now so a snapshot observes
// up-to-date integrals.
func (s *chaSlice) sync(now Cycles) {
	for _, f := range []*torFamily{s.ia, s.drd, s.drdPref, s.rfo, s.rfoPref} {
		for _, t := range f.occ {
			t.Advance(now)
		}
	}
	s.wbmtoi.Advance(now)
	s.bank.Add(pmu.CHAClockticks, 0) // clockticks are set by the machine
}

// ---------------------------------------------------------------------------
// IMC channel.
// ---------------------------------------------------------------------------

type imcChannel struct {
	bank *pmu.Bank
	bus  server // channel data bus (bandwidth)
	lat  Cycles // media latency

	rpq, wpq       *boundedQueue
	rpqOcc, wpqOcc *pmu.OccTracker
}

func newIMCChannel(bank *pmu.Bank, service float64, lat Cycles, rpqEntries, wpqEntries int) *imcChannel {
	return &imcChannel{
		bank:   bank,
		bus:    server{service: service},
		lat:    lat,
		rpq:    newBoundedQueue(rpqEntries),
		wpq:    newBoundedQueue(wpqEntries),
		rpqOcc: pmu.NewOccTracker(bank, pmu.RPQOccupancy, pmu.RPQCyclesNE, -1, rpqEntries),
		wpqOcc: pmu.NewOccTracker(bank, pmu.WPQOccupancy, pmu.WPQCyclesNE, -1, wpqEntries),
	}
}

// read services a line read arriving at arrival and returns the data-ready
// time.  Counter updates are scheduled on eng so trackers observe
// chronological order.
func (ch *imcChannel) read(eng *Engine, arrival Cycles) Cycles {
	admit := ch.rpq.admit(arrival)
	start := ch.bus.acquire(admit)
	data := start + ch.lat
	ch.rpq.commit(data) // RPQ entry is held until data returns
	eng.obsAt(admit, evIMCReadAdmit, ch, 0, uint64(data))
	return data
}

// write services a line write (posted).  It returns the WPQ admission time
// — the instant the queue could accept the write, which backpressures the
// evicting fill when the queue is full — and the media drain time.
func (ch *imcChannel) write(eng *Engine, arrival Cycles) (admitted, drained Cycles) {
	admit := ch.wpq.admit(arrival)
	start := ch.bus.acquire(admit)
	done := start + ch.lat
	ch.wpq.commit(done)
	eng.obsAt(admit, evIMCWriteAdmit, ch, 0, uint64(done))
	return admit, done
}

func (ch *imcChannel) sync(now Cycles) {
	ch.rpqOcc.Advance(now)
	ch.wpqOcc.Advance(now)
}

// ---------------------------------------------------------------------------
// CXL port: the M2PCIe/FlexBus host side plus the attached Type-3 device.
// ---------------------------------------------------------------------------

type cxlPort struct {
	cfg *Config

	m2pBank *pmu.Bank
	devBank *pmu.Bank

	ingress *pmu.OccTracker // M2PCIe ingress queue (mesh -> link)
	linkTx  byteServer      // host -> device link bandwidth
	linkRx  byteServer      // device -> host link bandwidth

	// Link reliability: the fault plan (nil = healthy), the per-direction
	// transmission index feeding its deterministic corruption draws, the
	// LRSM retry-buffer size, and the occupancy tracker observing flits
	// parked awaiting acknowledgement.
	plan         *cxl.FaultPlan
	txIdx        [2]uint64
	retryEntries int
	retryOcc     *pmu.OccTracker

	// qos integrates the CXL 3.x DevLoad telemetry over the device-side
	// queue pressure (RPQ + WPQ + packing buffers).
	qos     *cxl.LoadTracker
	qosBase [4]uint64 // cycles already exported to the bank

	packReq                 *boundedQueue // device Mem Request ingress packing buffer
	packData                *boundedQueue // device Mem Data ingress packing buffer
	packReqOcc, packDataOcc *pmu.OccTracker

	devRPQ, devWPQ       *boundedQueue
	devRPQOcc, devWPQOcc *pmu.OccTracker
	media                server // device media bandwidth

	// RAS escalation state.  All three evolve in request-issue order, which
	// the single-threaded engine makes deterministic, so same-seed replays
	// produce byte-identical counter streams.
	poisonSeen  uint64 // poisoned reads counted toward the viral threshold
	viral       bool   // device is in viral containment
	viralUntil  Cycles // reset instant clearing viral (0 = permanent)
	removalSeen bool   // root port already counted the surprise removal
}

func newCXLPort(cfg *Config, m2pBank, devBank *pmu.Bank) *cxlPort {
	perByte := cfg.serviceCycles(cfg.FlexBusGBs) / 64 // cycles per wire byte
	retryEntries := cfg.LinkRetryBufEntries
	if retryEntries <= 0 {
		retryEntries = cxl.DefaultRetryBufEntries
	}
	return &cxlPort{
		cfg:     cfg,
		m2pBank: m2pBank,
		devBank: devBank,
		ingress: pmu.NewOccTracker(m2pBank, pmu.M2PRxOccupancy, pmu.M2PRxCyclesNE, -1, 0),
		linkTx:  byteServer{perByte: perByte},
		linkRx:  byteServer{perByte: perByte},
		qos:     cxl.NewLoadTracker(maxInt(cfg.CXLRPQEntries, cfg.CXLWPQEntries) + cfg.PackBufEntries),

		plan:         cfg.Faults,
		retryEntries: retryEntries,
		retryOcc: pmu.NewOccTracker(devBank, pmu.CXLLinkRetryBufOcc,
			pmu.CXLLinkRetryBufNE, -1, retryEntries),

		packReq:  newBoundedQueue(cfg.PackBufEntries),
		packData: newBoundedQueue(cfg.PackBufEntries),
		packReqOcc: pmu.NewOccTracker(devBank, pmu.CXLRxPackBufOccReq,
			pmu.CXLRxPackBufNEReq, pmu.CXLRxPackBufFullReq, cfg.PackBufEntries),
		packDataOcc: pmu.NewOccTracker(devBank, pmu.CXLRxPackBufOccData,
			pmu.CXLRxPackBufNEData, pmu.CXLRxPackBufFullData, cfg.PackBufEntries),

		devRPQ: newBoundedQueue(cfg.CXLRPQEntries),
		devWPQ: newBoundedQueue(cfg.CXLWPQEntries),
		devRPQOcc: pmu.NewOccTracker(devBank, pmu.CXLDevRPQOccupancy,
			pmu.CXLDevRPQCyclesNE, -1, cfg.CXLRPQEntries),
		devWPQOcc: pmu.NewOccTracker(devBank, pmu.CXLDevWPQOccupancy,
			pmu.CXLDevWPQCyclesNE, -1, cfg.CXLWPQEntries),
		media: server{service: cfg.serviceCycles(cfg.CXLMediaGBs)},
	}
}

// linkMaxAttempts bounds per-transfer replay attempts in the timing model;
// a transfer corrupted that many consecutive times is assumed to survive
// the subsequent link retraining (the protocol-level Link surfaces
// ErrLinkDown instead, but the timing model must always make progress).
const linkMaxAttempts = 16

// flitsOf returns the whole flits a transfer of size wire bytes parks in
// the retry buffer.
func flitsOf(size float64) int {
	n := int(size) / cxl.FlitSize
	if float64(n*cxl.FlitSize) < size {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// linkXfer serializes size wire bytes onto one link direction, applying
// the fault plan: a corrupted transfer is detected by the receiver's CRC
// one link crossing later, Nak'd back, and the retry buffer's outstanding
// window is replayed through the same byte server — replay bytes consume
// real wire bandwidth, so every later message queues behind them and the
// inflation shows up in M2PCIe/packing-buffer occupancy.  Returns the
// start of the final (successful) serialization, a drop-in for
// byteServer.acquire.
func (p *cxlPort) linkXfer(eng *Engine, srv *byteServer, dir cxl.Direction, ready Cycles, size float64) Cycles {
	start := srv.acquire(ready, size)
	if p.plan.Empty() {
		return start
	}
	rec := eng.trace()

	// The transfer's flits sit in the retry buffer from first transmission
	// until the cumulative ack returns, one link round trip after arrival.
	flits := flitsOf(size)
	eng.obsAt(start, evOcc, p.retryOcc, int32(flits), 0)

	// A Nak rewinds the sender to the lost flit, retransmitting the
	// flits in flight behind it — on average half the retry window.
	replayBytes := float64(p.retryEntries/2) * cxl.FlitSize
	for attempt := 0; attempt < linkMaxAttempts; attempt++ {
		idx := p.txIdx[dir]
		p.txIdx[dir]++
		if !p.plan.Corrupts(dir, idx, uint64(start)) {
			break
		}
		// CRC failure lands at the receiver a crossing later; the Nak
		// crosses back; the replayed window then queues on the wire with
		// this transfer riding at its tail.
		nakBack := start + 2*p.cfg.FlexBusLat
		reStart := srv.acquire(nakBack, replayBytes+size)
		eng.obsAt(start+p.cfg.FlexBusLat, evCXLCRC, p, 0, uint64(replayBytes+size))
		prev := start
		start = reStart + Cycles(replayBytes*srv.perByte)
		if rec != nil {
			rec.Span(obs.StageLRSM, prev, start)
		}
	}
	ack := start + 2*p.cfg.FlexBusLat
	eng.obsAt(ack, evOcc, p.retryOcc, int32(-flits), 0)
	return start
}

// removedFastFailLat is the host-side cost of the fast-fail path: once the
// root port has isolated a removed device, accesses are rejected at the
// M2PCIe boundary with a synthesized error completion instead of waiting a
// full discovery timeout on a dead link.
const removedFastFailLat = 32

// viralAt reports whether the device is in viral containment at t,
// clearing the state first when the reset window has elapsed.
func (p *cxlPort) viralAt(t Cycles) bool {
	if !p.viral {
		return false
	}
	if p.viralUntil > 0 && t >= p.viralUntil {
		// Host-initiated reset: the device leaves containment and the
		// poison count starts over.
		p.viral = false
		p.poisonSeen = 0
		return false
	}
	return true
}

// notePoison accounts one poisoned read at time t and trips viral
// containment when the plan's threshold is crossed.
func (p *cxlPort) notePoison(eng *Engine, t Cycles) {
	p.poisonSeen++
	if !p.viral && p.plan.ViralEnabled() && p.poisonSeen >= p.plan.ViralThreshold {
		p.viral = true
		p.viralUntil = 0
		if p.plan.ViralReset > 0 {
			p.viralUntil = t + Cycles(p.plan.ViralReset)
		}
		eng.obsAt(t, evBankInc, p.devBank, int32(pmu.CXLDevViralEntries), 0)
	}
}

// noteRemoval counts the surprise removal once, at the instant the root
// port first learns the device is gone.
func (p *cxlPort) noteRemoval(eng *Engine, t Cycles) {
	if p.removalSeen {
		return
	}
	p.removalSeen = true
	eng.obsAt(t, evBankInc, p.m2pBank, int32(pmu.M2PDevRemoved), 0)
}

// fastFail completes an access to an isolated device at the root port: a
// synthesized error completion after a short host-side delay, never
// touching the link or the (dark) device bank.
func (p *cxlPort) fastFail(eng *Engine, arrival Cycles) Cycles {
	done := arrival + p.cfg.M2PLat + removedFastFailLat
	eng.obsAt(arrival, evCXLArrive, p, 0, 0)
	eng.obsAt(done, evOcc, p.ingress, -1, 0)
	eng.obsAt(done, evBankInc, p.m2pBank, int32(pmu.M2PFastFails), 0)
	eng.obsAt(done, evBankInc, p.m2pBank, int32(pmu.M2PErrCompletions), 0)
	p.noteRemoval(eng, done)
	return done
}

// ctrlDelay returns the device-controller latency for a request reaching
// it at t, inflated by an active completion-timeout episode.
func (p *cxlPort) ctrlDelay(eng *Engine, t Cycles) Cycles {
	lat := p.cfg.CXLCtrlLat
	if p.plan.TimeoutAt(uint64(t)) {
		lat += Cycles(p.plan.Penalty())
		eng.obsAt(t, evBankInc, p.devBank, int32(pmu.CXLDevTimeouts), 0)
	}
	return lat
}

// mediaAcquire claims a media service slot at t, paying a second slot (a
// halved service rate) while a DevLoad-throttle episode is active.
func (p *cxlPort) mediaAcquire(eng *Engine, t Cycles) Cycles {
	start := p.media.acquire(t)
	if p.plan.ThrottledAt(uint64(start)) {
		start = p.media.acquire(start)
		slot := uint64(p.media.service + 0.5)
		eng.obsAt(start, evBankAdd, p.devBank, int32(pmu.CXLDevThrottled), slot)
	}
	return start
}

// readRemoved completes a read whose request crossed the link into a
// device that vanished mid-flight: the root port waits out the discovery
// penalty on the dead link and synthesizes an error completion.  No
// device-side counters move — the device bank is dark from RemoveAt on.
func (p *cxlPort) readRemoved(eng *Engine, arrival, txStart, devArrive Cycles) Cycles {
	p.packReq.commit(devArrive) // the packing-buffer entry dies with the device
	discover := devArrive + Cycles(p.plan.RemovalPenalty())
	done := discover + p.cfg.M2PLat
	eng.obsAt(arrival, evCXLArrive, p, 0, 0)
	eng.obsAt(txStart, evOcc, p.ingress, -1, 0)
	eng.obsAt(done, evBankInc, p.m2pBank, int32(pmu.M2PErrCompletions), 0)
	p.noteRemoval(eng, discover)
	return done
}

// read performs a CXL.mem load (M2S Req -> S2M DRS) of line la arriving at
// the M2PCIe ingress at arrival, returning the host data-return time.
func (p *cxlPort) read(eng *Engine, arrival Cycles, la uint64) Cycles {
	if p.plan.IsolatedBy(uint64(arrival)) {
		return p.fastFail(eng, arrival)
	}

	// M2PCIe ingress: the entry waits for link credit, which is starved
	// when the device request packing buffer is full.
	ready := p.packReq.admit(arrival + p.cfg.M2PLat)
	txStart := p.linkXfer(eng, &p.linkTx, cxl.DirM2S, ready, cxl.BytesPerMessage(cxl.MemRd))
	devArrive := txStart + p.cfg.FlexBusLat
	if p.plan.RemovedBy(uint64(devArrive)) {
		return p.readRemoved(eng, arrival, txStart, devArrive)
	}

	// Device: packing buffer until the controller hands off to the MC.
	ctrlDone := devArrive + p.ctrlDelay(eng, devArrive)
	rpqAdmit := p.devRPQ.admit(ctrlDone)
	p.packReq.commit(rpqAdmit)

	mediaStart := p.mediaAcquire(eng, rpqAdmit)
	data := mediaStart + p.cfg.CXLMediaLat
	switch {
	case p.viralAt(devArrive):
		// Viral containment: every read completes at normal media timing
		// but returns data flagged poisoned — an error completion, not a
		// correction pass, because the device no longer trusts its media.
		eng.obsAt(data, evBankInc, p.devBank, int32(pmu.CXLDevErrCompletions), 0)
	case p.plan.Poisoned(la):
		// Poisoned media: the device's internal correction pass re-reads
		// before returning data flagged poisoned.
		data += p.cfg.CXLMediaLat
		eng.obsAt(data, evBankInc, p.devBank, int32(pmu.CXLDevPoisonRd), 0)
		p.notePoison(eng, data)
	}
	p.devRPQ.commit(data)

	// Response: S2M DRS over the link back to the host.
	rxStart := p.linkXfer(eng, &p.linkRx, cxl.DirS2M, data, cxl.BytesPerMessage(cxl.MemData))
	hostArrive := rxStart + p.cfg.FlexBusLat
	done := hostArrive + p.cfg.M2PLat

	if rec := eng.trace(); rec != nil {
		// Stage boundaries mirror the occupancy integrals AnalyzeQueues
		// reads: m2pcie = the M2PCIe ingress residency (arrival..txStart),
		// cxl_devq + cxl_media = the packing-buffer + RPQ residency
		// (devArrive..data) that prices the CXL DIMM queue estimate.
		rec.Span(obs.StageM2PCIe, arrival, txStart)
		rec.Span(obs.StageCXLLink, txStart, devArrive)
		rec.Span(obs.StageCXLDevQ, devArrive, mediaStart)
		rec.Span(obs.StageCXLMedia, mediaStart, data)
		rec.Span(obs.StageCXLRet, data, done)
	}

	eng.obsAt(arrival, evCXLArrive, p, 0, 0)
	eng.obsAt(txStart, evOcc, p.ingress, -1, 0)
	eng.obsAt(devArrive, evCXLReadDev, p, 0, 0)
	eng.obsAt(rpqAdmit, evCXLReadRPQ, p, 0, 0)
	eng.obsAt(data, evCXLReadData, p, 0, 0)
	eng.obsAt(hostArrive, evBankInc, p.m2pBank, int32(pmu.M2PTxInsertsBL), 0)
	return done
}

// write performs a CXL.mem store (M2S RwD -> S2M NDR).  It returns the
// credit-admission time (backpressure point for the evicting fill) and the
// time the write is durable at the device.
func (p *cxlPort) write(eng *Engine, arrival Cycles) (admitted, drained Cycles) {
	if p.plan.IsolatedBy(uint64(arrival)) {
		return arrival, p.fastFail(eng, arrival)
	}

	ready := p.packData.admit(arrival + p.cfg.M2PLat)
	txStart := p.linkXfer(eng, &p.linkTx, cxl.DirM2S, ready, cxl.BytesPerMessage(cxl.MemWr))
	devArrive := txStart + p.cfg.FlexBusLat
	if p.plan.RemovedBy(uint64(devArrive)) {
		// Same discovery flow as readRemoved, with the packing-data entry
		// dying alongside the device.
		p.packData.commit(devArrive)
		discover := devArrive + Cycles(p.plan.RemovalPenalty())
		done := discover + p.cfg.M2PLat
		eng.obsAt(arrival, evCXLArrive, p, 0, 0)
		eng.obsAt(txStart, evOcc, p.ingress, -1, 0)
		eng.obsAt(done, evBankInc, p.m2pBank, int32(pmu.M2PErrCompletions), 0)
		p.noteRemoval(eng, discover)
		return ready, done
	}

	ctrlDone := devArrive + p.ctrlDelay(eng, devArrive)
	wpqAdmit := p.devWPQ.admit(ctrlDone)
	p.packData.commit(wpqAdmit)

	mediaStart := p.mediaAcquire(eng, wpqAdmit)
	done := mediaStart + p.cfg.CXLMediaLat
	p.devWPQ.commit(done)

	rxStart := p.linkXfer(eng, &p.linkRx, cxl.DirS2M, mediaStart, cxl.BytesPerMessage(cxl.Cmp)) // NDR
	ackArrive := rxStart + p.cfg.FlexBusLat

	eng.obsAt(arrival, evCXLArrive, p, 0, 0)
	eng.obsAt(txStart, evOcc, p.ingress, -1, 0)
	eng.obsAt(devArrive, evCXLWriteDev, p, 0, 0)
	eng.obsAt(wpqAdmit, evCXLWriteWPQ, p, 0, 0)
	eng.obsAt(done, evCXLWriteDone, p, 0, 0)
	eng.obsAt(ackArrive, evBankInc, p.m2pBank, int32(pmu.M2PTxInsertsAK), 0)
	return ready, done
}

func (p *cxlPort) sync(now Cycles) {
	p.ingress.Advance(now)
	p.packReqOcc.Advance(now)
	p.packDataOcc.Advance(now)
	p.devRPQOcc.Advance(now)
	p.devWPQOcc.Advance(now)
	p.retryOcc.Advance(now)
	// Export the QoS telemetry residency to the device bank.
	p.qos.Advance(now)
	for i, ev := range pmu.CXLQoS {
		total := p.qos.Cycles(cxl.DevLoad(i))
		p.devBank.Add(ev, total-p.qosBase[i])
		p.qosBase[i] = total
	}
}

// devLoad returns the device's dominant QoS class so far.
func (p *cxlPort) devLoad() cxl.DevLoad { return p.qos.Dominant() }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package sim

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"pathfinder/internal/mem"
	"pathfinder/internal/workload"
)

// Window-parallel core stepping (DESIGN.md §12).
//
// The windowed scheduler takes core steps out of the event engine: each
// core's next step is mirrored on the core as (stepAt, stepSeq), where the
// seq is allocated from the engine's own counter, so pending steps remain
// exactly comparable against engine events.  The run loop repeatedly picks
// the globally earliest item by (when, seq) — reproducing the engine's
// dispatch order without paying a wheel push, bitmap scan, and dispatch per
// op — and, when several cores have steps pending before the next engine
// event, opens a parallel window.
//
// Inside a window [start, H), H = min(next engine event, RunUntil bound+1,
// start+windowSpanCap), every lane executes its cores' ops as long as they
// classify core-private: L1/LFB hit paths, M/E store commits, droppable
// software prefetches, pure think time.  Private ops of different cores
// touch disjoint state, so any wall-clock interleaving equals the
// sequential result; the one hazard is an op classified shared (it will
// mutate uncore state and peer caches at the barrier), which is why every
// commit obeys the frontier rule below.  PMU work a lane defers lands in
// its per-core observer buffer and merges into the §11 observer lane at the
// barrier; per-core bank counters are written directly (each bank has one
// writer, and counter sums commute).
//
// Frontier rule: a lane may commit its op at cycle u with commit key k only
// if every other participating core j satisfies pos_j > (u, k), where pos_j
// packs j's next-op cycle and key.  Keys are drawn from one shared counter
// at commit time; because commits at earlier cycles always complete
// wall-clock-first under this rule, key order equals the sequential engine's
// seq order, so same-cycle ties resolve exactly as the engine would have
// resolved them.  A lane that cannot ever commit this window — its op
// classified shared, or an earlier frozen frontier blocks it — parks with
// its op stashed (Core.opPending); the window closes when every lane has
// parked, the barrier merges observer buffers and re-sequences the pending
// steps, and the blocking shared op executes sequentially.
const (
	// windowSpanCap bounds H-start so the packed 32-bit relative cycle and
	// the per-window commit-key counter cannot overflow (≥1 cycle per op).
	windowSpanCap = 1 << 22

	// laneSpinBudget is how long a worker spins on the window generation
	// before blocking on its wake channel.
	laneSpinBudget = 128

	// laneIdleTimeout is how long a blocked worker waits for a window
	// before exiting; the scheduler respawns workers on demand, so an idle
	// machine holds no goroutines.
	laneIdleTimeout = 50 * time.Millisecond
)

// WindowStats aggregates the windowed scheduler's introspection counters:
// the pf_engine_window_cycles / pf_engine_barrier_merges /
// pf_engine_lane_busy_ns metric family.
type WindowStats struct {
	// Windows is the number of parallel windows opened; BarrierMerges the
	// number of barrier merge passes completed (one per window).
	Windows       uint64
	BarrierMerges uint64
	// WindowCycles is a log2 histogram of window spans: bucket i counts
	// windows whose consumed span was in [2^i, 2^(i+1)).
	WindowCycles [24]uint64
	// LaneBusyNs is the cumulative wall-clock nanoseconds each lane spent
	// executing window work.
	LaneBusyNs []uint64
}

// WindowStats returns a copy of the machine's window scheduler counters.
func (m *Machine) WindowStats() WindowStats {
	ws := m.wstat
	if m.sched != nil {
		ws.LaneBusyNs = make([]uint64, len(m.sched.busyNs))
		for i := range m.sched.busyNs {
			ws.LaneBusyNs[i] = uint64(m.sched.busyNs[i].v.Load())
		}
	}
	return ws
}

// observeWindow records one closed window of the given consumed span.
func (m *Machine) observeWindow(span Cycles) {
	m.wstat.Windows++
	m.wstat.BarrierMerges++
	b := 0
	for s := span; s > 1 && b < len(m.wstat.WindowCycles)-1; s >>= 1 {
		b++
	}
	m.wstat.WindowCycles[b]++
}

// armStep mirrors core c's next step at cycle `at`, allocating its tie-break
// seq from the engine counter — exactly the seq an evCoreStep scheduled at
// this moment would have carried.
func (m *Machine) armStep(c *Core, at Cycles) {
	m.eng.seq++
	c.stepPending = true
	c.stepAt = at
	c.stepSeq = m.eng.seq
}

// minPendingCore returns the pending core step with the smallest
// (stepAt, stepSeq), or nil.
func (m *Machine) minPendingCore() *Core {
	var best *Core
	for _, c := range m.cores {
		if !c.stepPending {
			continue
		}
		if best == nil || c.stepAt < best.stepAt ||
			(c.stepAt == best.stepAt && c.stepSeq < best.stepSeq) {
			best = c
		}
	}
	return best
}

// stepOnce executes core c's mirrored step sequentially: advance the clock
// to its cycle, run exactly one op, and re-arm the continuation.
func (m *Machine) stepOnce(c *Core) {
	eng := m.eng
	when := c.stepAt
	c.stepPending = false
	if when > eng.now {
		eng.now = when
		eng.drainObs(when)
	}
	next, _, ok := m.stepOne(c, when)
	if !ok {
		return
	}
	eng.inlineSteps++
	m.armStep(c, next)
}

// runWindowed is the windowed-mode Run loop: a merge of the mirrored core
// steps and the engine's event queue in exact (when, seq) order, executing
// core steps inline (sweep) or fanning runs of them out to parallel lanes.
func (m *Machine) runWindowed(t Cycles) {
	eng := m.eng
	eng.horizon = t
	par := m.parallelLanes()
	for {
		c := m.minPendingCore()
		eWhen, eSeq, eOk := eng.peekNext()
		if c == nil {
			// No core steps: drain engine events up to the bound.
			if !eOk || eWhen > t {
				break
			}
			eng.now = eWhen
			eng.drainObs(eWhen)
			eng.runAt(eWhen)
			continue
		}
		if eOk && eWhen <= t && (eWhen < c.stepAt || (eWhen == c.stepAt && eSeq < c.stepSeq)) {
			if eWhen == c.stepAt {
				// Same-cycle interleaving with a core step: dispatch one
				// event at a time so seq order is honored exactly.
				eng.Step()
			} else {
				eng.now = eWhen
				eng.drainObs(eWhen)
				eng.runAt(eWhen)
			}
			continue
		}
		if c.stepAt > t {
			break
		}
		if par > 1 && m.tryParallelWindow(c, t, eWhen, eOk, par) {
			continue
		}
		m.stepOnce(c)
	}
	if t > eng.now {
		eng.now = t
	}
	eng.horizon = eng.now
	eng.drainObs(eng.now)
}

// parallelLanes resolves the configured lane mode to a worker count for
// this Run slice: 0 (auto) uses GOMAXPROCS, n>1 caps at n; both cap at the
// core count.  Sweep (≤1) and engine modes return 1.
func (m *Machine) parallelLanes() int {
	n := m.lanes
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(m.cores) {
		n = len(m.cores)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// absorbCoreEvents pulls every evCoreStep out of the engine's wheel and
// heap into the core-step mirror (engine mode → windowed transition).
func (m *Machine) absorbCoreEvents() {
	eng := m.eng
	for slot := 0; slot < wheelSlots; slot++ {
		b := eng.wheel[slot]
		if len(b) == 0 {
			continue
		}
		out := b[:0]
		for _, ev := range b {
			if ev.kind == evCoreStep {
				c := ev.target.(*Core)
				c.stepPending = true
				c.stepAt = ev.when
				c.stepSeq = ev.seq
				eng.wheelLen--
				continue
			}
			out = append(out, ev)
		}
		clear(b[len(out):])
		eng.wheel[slot] = out
		if len(out) == 0 {
			eng.occupied[slot>>6] &^= 1 << uint(slot&63)
		}
	}
	out := eng.heap[:0]
	for _, ev := range eng.heap {
		if ev.kind == evCoreStep {
			c := ev.target.(*Core)
			c.stepPending = true
			c.stepAt = ev.when
			c.stepSeq = ev.seq
			continue
		}
		out = append(out, ev)
	}
	eng.heap = out
	// Re-establish the heap invariant after filtering.
	for i := len(eng.heap)/2 - 1; i >= 0; i-- {
		eng.siftDown(i)
	}
}

// flushStepMirror schedules every mirrored core step back into the engine
// (windowed → engine transition), preserving the mirror's relative order.
func (m *Machine) flushStepMirror() {
	pend := make([]*Core, 0, len(m.cores))
	for _, c := range m.cores {
		if c.stepPending {
			pend = append(pend, c)
		}
	}
	sort.Slice(pend, func(i, j int) bool {
		if pend[i].stepAt != pend[j].stepAt {
			return pend[i].stepAt < pend[j].stepAt
		}
		return pend[i].stepSeq < pend[j].stepSeq
	})
	for _, c := range pend {
		c.stepPending = false
		m.eng.at(c.stepAt, evCoreStep, c, 0, 0)
	}
}

// ---------------------------------------------------------------------------
// Core-private op classification.
// ---------------------------------------------------------------------------

// classifyPrivate fetches core c's next op into the stash and reports
// whether executing it at step cycle u touches only core-private state.
// Private ops: loads served by the L1 or merged into an in-flight LFB entry
// whose prefetcher training would issue nothing; stores committing to an
// M/E line in the L1; software prefetches that are dropped or already
// covered; pure think ops.  Everything else — the L2-and-below miss path,
// RFO upgrades, any prefetch issue — reaches shared uncore state or peer
// caches and must run at a window barrier.  stopped reports a core whose
// generator ran dry (no op fetched).
func (m *Machine) classifyPrivate(c *Core, u Cycles) (private, stopped bool) {
	if !c.running || c.gen == nil {
		return false, true
	}
	if !c.opPending {
		if !c.gen.Next(&c.op) {
			c.running = false
			return false, true
		}
		c.opPending = true
	}
	op := &c.op
	t := u + Cycles(op.Think)
	switch op.Kind {
	case workload.Load:
		la := mem.LineAddr(op.Addr)
		if c.l1.Peek(la) == nil && c.findLFB(la, t) == nil {
			return false, false // takes the miss path
		}
		return m.l1pfIdle(c, la, t), false
	case workload.Store:
		la := mem.LineAddr(op.Addr)
		ln := c.l1.Peek(la)
		return ln != nil && (ln.State == Modified || ln.State == Exclusive), false
	case workload.Prefetch:
		la := mem.LineAddr(op.Addr)
		if c.l1.Peek(la) != nil || c.findLFB(la, t) != nil {
			return true, false // covered: the prefetch is a no-op
		}
		if len(c.lfb) >= m.cfg.LFBEntries || c.pfLive(t) >= m.cfg.PFMaxInFlight {
			return true, false // droppable hint, dropped
		}
		return false, false
	}
	return true, false
}

// l1pfIdle reports whether training the L1 streamer on la at cycle t would
// issue no prefetches: every previewed candidate is cut by the in-flight or
// LFB-headroom budget, or already present in the L1/LFB.  The control flow
// mirrors trainL1PF exactly; the prunes it performs (pfLive, findLFB) are
// idempotent at fixed t, so running them during classification leaves the
// same state the sequential path would.
func (m *Machine) l1pfIdle(c *Core, la uint64, t Cycles) bool {
	c.pfScratch = c.l1pf.preview(la, c.pfScratch[:0])
	for _, cand := range c.pfScratch {
		if c.pfLive(t) >= m.cfg.PFMaxInFlight {
			return true
		}
		if len(c.lfb)+2 > m.cfg.LFBEntries {
			return true
		}
		if c.l1.Peek(cand) != nil || c.findLFB(cand, t) != nil {
			continue
		}
		return false // this candidate would issue a miss-path prefetch
	}
	return true
}

// ---------------------------------------------------------------------------
// Parallel lane scheduler.
// ---------------------------------------------------------------------------

// padUint64 is a cache-line-padded atomic counter (lane busy-ns).
type padUint64 struct {
	v atomic.Int64
	_ [56]byte
}

// laneSched owns the worker pool and per-window shared state.  The
// coordinator (the Run goroutine) doubles as lane 0; lanes 1..n-1 are
// worker goroutines that spin briefly on the window generation, then block
// on their wake channel, then exit after an idle timeout (respawned on
// demand).
type laneSched struct {
	m *Machine
	n int // lanes, including the coordinator's lane 0

	gen    atomic.Uint64 // window generation; bumped to open a window
	active atomic.Int64  // lanes still executing the current window
	armKey atomic.Uint64 // shared commit-key counter (window-relative)

	start Cycles // window base for 32-bit relative packing
	h     Cycles // exclusive window end

	coresOf [][]*Core       // lane → cores it executes
	wake    []chan struct{} // size-1 buffered, lanes 1..n-1
	alive   []atomic.Bool   // worker liveness, lanes 1..n-1
	busyNs  []padUint64

	parts []*Core // participants of the current window (coordinator-owned)
}

// newLaneSched builds the scheduler for n lanes over the machine's cores,
// distributing cores round-robin.
func newLaneSched(m *Machine, n int) *laneSched {
	s := &laneSched{
		m:       m,
		n:       n,
		coresOf: make([][]*Core, n),
		wake:    make([]chan struct{}, n),
		alive:   make([]atomic.Bool, n),
		busyNs:  make([]padUint64, n),
	}
	for i, c := range m.cores {
		li := i % n
		s.coresOf[li] = append(s.coresOf[li], c)
	}
	for i := 1; i < n; i++ {
		s.wake[i] = make(chan struct{}, 1)
	}
	return s
}

// laneFor returns the lane index core ci is assigned to.
func (s *laneSched) laneFor(ci int) int { return ci % s.n }

// parkedPos marks a core that takes no further part in the window: it never
// blocks another lane's commit.
const parkedPos = ^uint64(0)

// packPos folds a window-relative cycle and commit key into one word; the
// windowSpanCap and per-window key budget keep both in 32 bits.
func packPos(relAt Cycles, key uint64) uint64 {
	return uint64(relAt)<<32 | (key & 0xffffffff)
}

// tryParallelWindow opens a window at the earliest pending step if at least
// two cores have steps before the window end.  Returns false (and executes
// nothing) when a window is not worth opening; the caller then takes the
// sequential path.
func (m *Machine) tryParallelWindow(minC *Core, bound, eWhen Cycles, eOk bool, lanes int) bool {
	if m.tr != nil && m.tr.Enabled() {
		// Sampling mutates tracer state per op and its order is the
		// record order: lanes bail out to the exact sequential path.
		return false
	}
	start := minC.stepAt
	h := bound + 1
	if eOk && eWhen < h {
		h = eWhen
	}
	if h > start+windowSpanCap {
		h = start + windowSpanCap
	}
	if h <= start {
		return false
	}
	// The head op is about to execute at the window's minimal (cycle, key)
	// position, where nothing can block it.  If it classifies shared, the
	// whole window would commit zero ops (the head's frozen frontier parks
	// every other lane) and the scheduler would spin re-opening it: hand it
	// to the sequential path instead.  classifyPrivate stashes the fetched
	// op, so the sequential step consumes it without skipping.
	if private, _ := m.classifyPrivate(minC, start); !private {
		return false
	}
	if m.sched == nil || m.sched.n != lanes {
		m.sched = newLaneSched(m, lanes)
	}
	s := m.sched

	// Collect participants; everything else must never block a commit.
	s.parts = s.parts[:0]
	for _, c := range m.cores {
		if c.stepPending && c.running && c.stepAt < h {
			s.parts = append(s.parts, c)
			continue
		}
		c.lanePos.Store(parkedPos)
		c.laneDone.Store(true)
	}
	if len(s.parts) < 2 {
		for _, c := range s.parts {
			c.lanePos.Store(0) // no window opened; clear stale state lazily
		}
		return false
	}
	// Initial commit keys in mirror order: the engine would dispatch these
	// pending steps by (stepAt, stepSeq).
	sort.Slice(s.parts, func(i, j int) bool {
		if s.parts[i].stepAt != s.parts[j].stepAt {
			return s.parts[i].stepAt < s.parts[j].stepAt
		}
		return s.parts[i].stepSeq < s.parts[j].stepSeq
	})
	for i, c := range s.parts {
		c.laneKey = uint64(i + 1)
		c.laneOps = 0
		c.laneObs = c.laneObs[:0]
		c.lanePos.Store(packPos(c.stepAt-start, c.laneKey))
		c.laneDone.Store(false)
	}
	s.armKey.Store(uint64(len(s.parts)))
	s.start, s.h = start, h

	m.eng.laneGuard = true
	s.active.Store(int64(s.n))
	g := s.gen.Add(1)
	for i := 1; i < s.n; i++ {
		if !s.alive[i].Load() && s.alive[i].CompareAndSwap(false, true) {
			// A fresh worker starts one generation behind so it executes
			// the window that spawned it.
			go s.worker(i, g-1)
		}
		select {
		case s.wake[i] <- struct{}{}:
		default:
		}
	}
	t0 := time.Now()
	s.runLane(0)
	s.busyNs[0].v.Add(time.Since(t0).Nanoseconds())
	s.active.Add(-1)
	for s.active.Load() != 0 {
		runtime.Gosched()
	}
	m.eng.laneGuard = false

	// Barrier: merge per-core observer buffers into the §11 lane in
	// (cycle, coreID) order, fold op counts, and re-sequence the pending
	// steps in commit-key order so engine-mode comparability is restored.
	m.mergeLaneObs(s.parts)
	if m.fl.Enabled() {
		// Flight records deferred by lanes run the shared promotion
		// pipeline here, outside the lane guard, in core order.
		m.fl.MergeDeferred()
	}
	consumed := Cycles(1)
	var totalOps uint64
	for _, c := range s.parts {
		m.eng.inlineSteps += c.laneOps
		totalOps += c.laneOps
		if c.stepAt-start > consumed {
			consumed = c.stepAt - start
		}
	}
	sort.Slice(s.parts, func(i, j int) bool {
		if s.parts[i].stepAt != s.parts[j].stepAt {
			return s.parts[i].stepAt < s.parts[j].stepAt
		}
		return s.parts[i].laneKey < s.parts[j].laneKey
	})
	for _, c := range s.parts {
		if c.running && c.stepPending {
			m.eng.seq++
			c.stepSeq = m.eng.seq
		} else {
			c.stepPending = false
		}
	}
	m.observeWindow(consumed)
	if totalOps == 0 {
		// Guaranteed-progress backstop: the head pre-check above should make
		// this unreachable, but a zero-commit window must never recur at the
		// same position, so execute the earliest pending step sequentially.
		if c := m.minPendingCore(); c != nil && c.stepAt < s.h {
			m.stepOnce(c)
		}
	}
	return true
}

// mergeLaneObs feeds the lanes' deferred observer entries through the
// engine's observer lane in (cycle, coreID) order.  Each buffer is
// when-nondecreasing by construction, so a k-way head merge suffices;
// equal-cycle entries commute (§11), which is what makes the coreID
// tie-break sufficient for byte-identical digests.
func (m *Machine) mergeLaneObs(parts []*Core) {
	idx := make([]int, len(parts))
	for {
		best := -1
		var bestWhen Cycles
		for i, c := range parts {
			if idx[i] >= len(c.laneObs) {
				continue
			}
			w := c.laneObs[idx[i]].when
			if best < 0 || w < bestWhen {
				best, bestWhen = i, w
			}
		}
		if best < 0 {
			return
		}
		ev := &parts[best].laneObs[idx[best]]
		idx[best]++
		m.eng.obsAt(ev.when, ev.kind, ev.target, ev.aux, ev.arg)
	}
}

// worker is the lane goroutine body for lanes 1..n-1.  seen is the last
// window generation this worker considers handled; the spawner passes the
// previous generation so the spawning window runs immediately.
func (s *laneSched) worker(li int, seen uint64) {
	timer := time.NewTimer(laneIdleTimeout)
	defer timer.Stop()
	for {
		g := s.gen.Load()
		if g != seen {
			seen = g
			t0 := time.Now()
			s.runLane(li)
			s.busyNs[li].v.Add(time.Since(t0).Nanoseconds())
			s.active.Add(-1)
			continue
		}
		spun := false
		for i := 0; i < laneSpinBudget; i++ {
			if s.gen.Load() != g {
				spun = true
				break
			}
			runtime.Gosched()
		}
		if spun {
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(laneIdleTimeout)
		select {
		case <-s.wake[li]:
		case <-timer.C:
			// Idle: hand the lane back.  If a window raced in, re-claim it;
			// otherwise exit (the coordinator respawns on demand).
			s.alive[li].Store(false)
			if s.gen.Load() != g && s.alive[li].CompareAndSwap(false, true) {
				continue
			}
			return
		}
	}
}

// runLane executes one window's worth of work for the lane's cores,
// returning when every one of them has parked.
func (s *laneSched) runLane(li int) {
	cores := s.coresOf[li]
	for {
		live, progress := 0, false
		for _, c := range cores {
			if c.laneDone.Load() {
				continue
			}
			switch s.advance(c) {
			case laneParked:
			case laneProgress:
				live++
				progress = true
			case laneBlocked:
				live++
			}
		}
		if live == 0 {
			return
		}
		if !progress {
			runtime.Gosched()
		}
	}
}

type laneResult uint8

const (
	laneParked   laneResult = iota // done for this window
	laneProgress                   // committed at least one op
	laneBlocked                    // waiting on another lane's active frontier
)

// advance runs core c until it parks or is blocked by an active lane.
func (s *laneSched) advance(c *Core) laneResult {
	m := s.m
	res := laneParked
	for {
		u := c.stepAt
		if u >= s.h {
			c.lanePos.Store(parkedPos)
			s.park(c)
			return res
		}
		myPos := packPos(u-s.start, c.laneKey)
		// Frontier check: every other participant must be strictly later
		// (cycle, key)-wise before this op may commit.
		for _, j := range s.parts {
			if j == c {
				continue
			}
			pj := j.lanePos.Load()
			if pj > myPos {
				continue
			}
			if j.laneDone.Load() && j.lanePos.Load() <= myPos {
				// An earlier frontier is frozen for the rest of the window:
				// this core can never commit again before the barrier.
				s.park(c)
				return res
			}
			if res == laneParked {
				return laneBlocked
			}
			return laneProgress // committed something; let siblings run
		}
		private, stopped := m.classifyPrivate(c, u)
		if stopped {
			// No op exists at u: nothing runs at the barrier for this core,
			// so release the frontier instead of freezing it.
			c.stepPending = false
			c.lanePos.Store(parkedPos)
			s.park(c)
			return laneProgress
		}
		if !private {
			// Bail out: the op executes at the barrier, in global order.
			s.park(c)
			return res
		}
		next, _, ok := m.stepOne(c, u)
		if !ok {
			// The op committed and the core stopped: release the frontier.
			c.stepPending = false
			c.lanePos.Store(parkedPos)
			s.park(c)
			return laneProgress
		}
		c.laneOps++
		key := s.armKey.Add(1)
		c.laneKey = key
		c.stepAt = next
		if next >= s.h {
			c.lanePos.Store(parkedPos)
			c.laneDone.Store(true)
			return laneProgress
		}
		c.lanePos.Store(packPos(next-s.start, key))
		res = laneProgress
	}
}

// park freezes core c's frontier for the rest of the window.
func (s *laneSched) park(c *Core) {
	c.laneDone.Store(true)
}

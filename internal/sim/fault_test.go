package sim

import (
	"testing"

	"pathfinder/internal/cxl"
	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
)

// faultyPlan returns a heavy S2M corruption plan for tests.
func faultyPlan(rate float64) *cxl.FaultPlan {
	p := &cxl.FaultPlan{Seed: 42}
	p.CRCRate[cxl.DirM2S] = rate
	p.CRCRate[cxl.DirS2M] = rate
	return p
}

// runCXLReads drives dependent loads over a CXL region and returns the
// machine after syncing.
func runCXLReads(t *testing.T, cfg Config, n int, cycles Cycles) *Machine {
	t.Helper()
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	m := New(cfg, as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, n, 64, true)})
	m.Run(cycles)
	m.Sync()
	return m
}

func TestCXLFaultCountersAndLatency(t *testing.T) {
	// A dependent-load chain long enough that neither run finishes inside
	// the budget, so served-read counts reflect achieved latency.
	const n, budget = 4096, 2_000_000

	healthy := runCXLReads(t, smallConfig(), n, budget)
	hb := healthy.Bank("cxl0")
	if got := hb.Read(pmu.CXLLinkCRCErrors) + hb.Read(pmu.CXLLinkRetries); got != 0 {
		t.Fatalf("healthy link counted %d link faults", got)
	}

	cfg := smallConfig()
	cfg.Faults = faultyPlan(0.2)
	faulty := runCXLReads(t, cfg, n, budget)
	fb := faulty.Bank("cxl0")
	crc := fb.Read(pmu.CXLLinkCRCErrors)
	retries := fb.Read(pmu.CXLLinkRetries)
	replay := fb.Read(pmu.CXLLinkReplayBytes)
	if crc == 0 || retries == 0 || replay == 0 {
		t.Fatalf("faulty link left no trace: crc=%d retries=%d replay=%d", crc, retries, replay)
	}
	if occ := fb.Read(pmu.CXLLinkRetryBufOcc); occ == 0 {
		t.Fatal("retry buffer occupancy never accumulated")
	}

	// Retries must slow the workload down: fewer reads complete in the
	// same wall-clock budget.
	hCAS := hb.Read(pmu.CXLDevCASRd)
	fCAS := fb.Read(pmu.CXLDevCASRd)
	if hCAS == 0 || hCAS == n {
		t.Fatalf("budget mistuned: healthy run served %d of %d reads", hCAS, n)
	}
	if float64(fCAS) >= float64(hCAS)*0.95 {
		t.Fatalf("faults did not slow the read stream: healthy=%d faulty=%d CAS", hCAS, fCAS)
	}
}

func TestCXLFaultDeterminism(t *testing.T) {
	snap := func() map[string]uint64 {
		cfg := smallConfig()
		cfg.Faults = faultyPlan(0.02)
		m := runCXLReads(t, cfg, 256, 20_000_000)
		b := m.Bank("cxl0")
		return map[string]uint64{
			"crc":    b.Read(pmu.CXLLinkCRCErrors),
			"retry":  b.Read(pmu.CXLLinkRetries),
			"replay": b.Read(pmu.CXLLinkReplayBytes),
			"cas":    b.Read(pmu.CXLDevCASRd),
			"occ":    b.Read(pmu.CXLLinkRetryBufOcc),
		}
	}
	a, b := snap(), snap()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("counter %s diverged across identical runs: %d vs %d", k, v, b[k])
		}
	}
	if a["crc"] == 0 {
		t.Fatal("determinism test never injected a fault")
	}
}

func TestCXLTimeoutEpisode(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults = &cxl.FaultPlan{
		Seed:           1,
		Timeouts:       []cxl.Episode{{Start: 0, Len: 1 << 62}},
		TimeoutPenalty: 5000,
	}
	m := runCXLReads(t, cfg, 64, 20_000_000)
	b := m.Bank("cxl0")
	if hits := b.Read(pmu.CXLDevTimeouts); hits == 0 {
		t.Fatal("permanent timeout episode never counted")
	}

	// The penalty must dominate per-access latency: with a 5000-cycle
	// penalty per request, 64 dependent reads need >= 320k cycles.
	healthy := runCXLReads(t, smallConfig(), 64, 20_000_000)
	if h, f := healthy.Bank("cxl0").Read(pmu.CXLDevCASRd), b.Read(pmu.CXLDevCASRd); f > h {
		t.Fatalf("timeouts served more reads than healthy: %d > %d", f, h)
	}
}

func TestCXLThrottleEpisode(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults = &cxl.FaultPlan{
		Seed:      1,
		Throttles: []cxl.Episode{{Start: 0, Len: 1 << 62}},
	}
	m := runCXLReads(t, cfg, 256, 20_000_000)
	if c := m.Bank("cxl0").Read(pmu.CXLDevThrottled); c == 0 {
		t.Fatal("permanent throttle episode accumulated no throttled cycles")
	}
}

func TestCXLPoisonRange(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	cfg.Faults = &cxl.FaultPlan{Seed: 1, PoisonBase: r.Base, PoisonLen: 64 * 64}
	m := New(cfg, as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 256, 64, true)})
	m.Run(20_000_000)
	m.Sync()
	got := m.Bank("cxl0").Read(pmu.CXLDevPoisonRd)
	if got == 0 || got > 64 {
		t.Fatalf("poisoned 64 lines, counted %d poisoned reads", got)
	}
}

func TestCXLViralContainment(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	cfg.Faults = &cxl.FaultPlan{
		Seed:           1,
		PoisonBase:     r.Base,
		PoisonLen:      1 << 20, // the whole region is poisoned media
		ViralThreshold: 4,
	}
	m := New(cfg, as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 256, 64, true)})
	m.Run(20_000_000)
	m.Sync()
	b := m.Bank("cxl0")
	if got := b.Read(pmu.CXLDevViralEntries); got != 1 {
		t.Fatalf("viral entries = %d, want 1", got)
	}
	// Exactly threshold poisoned reads before containment; everything after
	// completes as an error.
	if got := b.Read(pmu.CXLDevPoisonRd); got != 4 {
		t.Fatalf("poison reads = %d, want 4 (the threshold)", got)
	}
	errs := b.Read(pmu.CXLDevErrCompletions)
	cas := b.Read(pmu.CXLDevCASRd)
	if errs == 0 || errs != cas-4 {
		t.Fatalf("err completions = %d, want CAS-4 = %d", errs, cas-4)
	}
	if !m.DeviceViral(0) {
		t.Fatal("permanent viral state not reported by DeviceViral")
	}
}

func TestCXLViralReset(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	cfg.Faults = &cxl.FaultPlan{
		Seed:           1,
		PoisonBase:     r.Base,
		PoisonLen:      1 << 20,
		ViralThreshold: 2,
		ViralReset:     20_000, // a few dependent-read round trips
	}
	m := New(cfg, as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 512, 64, true)})
	m.Run(20_000_000)
	m.Sync()
	b := m.Bank("cxl0")
	if got := b.Read(pmu.CXLDevViralEntries); got < 2 {
		t.Fatalf("viral entries = %d, want >= 2 after resets", got)
	}
	// Each containment round begins with a fresh poison count, so more than
	// one threshold's worth of poisoned reads accumulate.
	if got := b.Read(pmu.CXLDevPoisonRd); got <= 2 {
		t.Fatalf("poison reads = %d, want > threshold across resets", got)
	}
}

func TestCXLSurpriseRemoval(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	cfg.Faults = &cxl.FaultPlan{Seed: 1, RemoveAt: 200_000}
	m := New(cfg, as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 4096, 64, true)})
	m.Run(20_000_000)
	m.Sync()

	dev, host := m.Bank("cxl0"), m.Bank("m2pcie0")
	if got := host.Read(pmu.M2PDevRemoved); got != 1 {
		t.Fatalf("removals discovered = %d, want 1", got)
	}
	if host.Read(pmu.M2PErrCompletions) == 0 {
		t.Fatal("no error completions from the removal")
	}
	if host.Read(pmu.M2PFastFails) == 0 {
		t.Fatal("no fast-fails after isolation")
	}
	if !m.DeviceIsolated(0) {
		t.Fatal("removed device not reported isolated")
	}
	// The device bank went dark: it served some reads before removal and
	// none after, while the whole chain still drained (fast-fail keeps the
	// workload making progress).
	cas := dev.Read(pmu.CXLDevCASRd)
	if cas == 0 || cas >= 4096 {
		t.Fatalf("device served %d reads, want some but not all", cas)
	}
	if !m.Idle() {
		t.Fatal("machine did not drain after removal")
	}
	if cas+host.Read(pmu.M2PErrCompletions) != 4096 {
		t.Fatalf("reads unaccounted: %d served + %d errored != 4096",
			cas, host.Read(pmu.M2PErrCompletions))
	}
}

func TestCXLRASDeterminism(t *testing.T) {
	snap := func() map[string]uint64 {
		as := testSpace(t)
		r, err := as.Alloc(1<<20, mem.Fixed(2))
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig()
		cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
		cfg.Faults = &cxl.FaultPlan{
			Seed:           7,
			CRCRate:        [2]float64{0.01, 0.01},
			PoisonBase:     r.Base,
			PoisonLen:      1 << 18,
			ViralThreshold: 3,
			ViralReset:     50_000,
			RemoveAt:       1_200_000,
		}
		m := New(cfg, as)
		m.Attach(0, &opList{ops: seqLoads(r.Base, 2048, 64, true)})
		m.Run(20_000_000)
		m.Sync()
		dev, host := m.Bank("cxl0"), m.Bank("m2pcie0")
		return map[string]uint64{
			"viral":   dev.Read(pmu.CXLDevViralEntries),
			"errcomp": dev.Read(pmu.CXLDevErrCompletions),
			"poison":  dev.Read(pmu.CXLDevPoisonRd),
			"cas":     dev.Read(pmu.CXLDevCASRd),
			"removed": host.Read(pmu.M2PDevRemoved),
			"hosterr": host.Read(pmu.M2PErrCompletions),
			"fast":    host.Read(pmu.M2PFastFails),
			"crc":     dev.Read(pmu.CXLLinkCRCErrors),
		}
	}
	a, b := snap(), snap()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("counter %s diverged across identical RAS runs: %d vs %d", k, v, b[k])
		}
	}
	if a["viral"] == 0 || a["removed"] == 0 {
		t.Fatalf("RAS scenario too tame to test determinism: %+v", a)
	}
}

func TestSetFaultPlanMidRun(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	m := New(cfg, as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 4096, 64, true)})
	m.Run(1_000_000) // partial: the chain needs ~3M cycles
	m.Sync()
	if c := m.Bank("cxl0").Read(pmu.CXLLinkCRCErrors); c != 0 {
		t.Fatalf("faults before installation: %d", c)
	}
	m.SetFaultPlan(0, faultyPlan(0.1))
	m.Run(20_000_000)
	m.Sync()
	if c := m.Bank("cxl0").Read(pmu.CXLLinkCRCErrors); c == 0 {
		t.Fatal("installed plan injected nothing")
	}
}

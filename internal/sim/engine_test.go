package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestEngineWheelHeapMerge: events at the same cycle must fire in
// schedule (seq) order even when some were routed to the timing wheel
// (scheduled near the horizon) and others to the overflow heap
// (scheduled from far away) — the merge in runAt preserves the single
// global (when, seq) total order the old boxed heap provided.
func TestEngineWheelHeapMerge(t *testing.T) {
	e := NewEngine()
	target := Cycles(2 * wheelSlots)
	var got []int

	// Scheduled while target is beyond the wheel horizon: heap path.
	e.Schedule(target, func(Cycles) { got = append(got, 0) })
	e.Schedule(target, func(Cycles) { got = append(got, 1) })
	// Advance to within the horizon, then schedule at the same cycle:
	// wheel path, with larger seq than the heap events.
	e.RunUntil(target - 10)
	e.Schedule(target, func(Cycles) { got = append(got, 2) })
	// And one more far event that lands back in the heap.
	e.Schedule(target, func(Cycles) { got = append(got, 3) })

	e.RunUntil(target + 1)
	want := []int{0, 1, 2, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("same-cycle order = %v, want %v", got, want)
	}
}

// TestEngineWheelWrap exercises the wheel across several full rotations
// with nested same-cycle cascades.
func TestEngineWheelWrap(t *testing.T) {
	e := NewEngine()
	fired := 0
	var chain func(now Cycles)
	chain = func(now Cycles) {
		fired++
		if fired < 10 {
			// Hop a fraction of the wheel each time so slots wrap.
			e.Schedule(now+wheelSlots/3+7, chain)
			// Same-cycle cascade: scheduled during the drain of `now`.
			e.Schedule(now, func(Cycles) { fired++ })
		}
	}
	e.Schedule(5, chain)
	e.RunUntil(20 * wheelSlots)
	// Each hop fires the chain plus its same-cycle cascade (fired += 2),
	// so the chain observes fired = 1,3,5,7,9 before stopping at 11.
	if fired != 11 {
		t.Fatalf("fired %d events, want 11", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}

// TestEnginePastPanicMessage: the past-scheduling panic must carry
// enough context to debug the misbehaving schedule site.
func TestEnginePastPanicMessage(t *testing.T) {
	e := NewEngine()
	e.Schedule(50, func(Cycles) {})
	e.Schedule(60, func(Cycles) {})
	e.RunUntil(100)
	e.Schedule(200, func(Cycles) {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("scheduling into the past did not panic")
		}
		msg := fmt.Sprint(r)
		for _, part := range []string{"when=40", "now=100", "60 cycles behind", "1 events pending"} {
			if !strings.Contains(msg, part) {
				t.Errorf("panic message %q missing %q", msg, part)
			}
		}
	}()
	e.Schedule(40, func(Cycles) {})
}

// TestMachineBankUnknownPanics: a misnamed bank must fail loudly with
// the available names, not return nil for the caller to deref.
func TestMachineBankUnknownPanics(t *testing.T) {
	m := New(smallConfig(), testSpace(t))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown bank name did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "cxl9") || !strings.Contains(msg, "cxl0") {
			t.Errorf("panic %q should name the missing bank and the available ones", msg)
		}
	}()
	m.Bank("cxl9")
}

package sim

import (
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/workload"
)

// ckptRig builds a machine exercising all three memory paths with forkable
// generators: a store-mixed stream on local DRAM, GUPS on the CXL device,
// and a Zipf working set on the remote socket.
func ckptRig(t *testing.T) *Machine {
	t.Helper()
	as := testSpace(t)
	local, err := as.Alloc(4<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := as.Alloc(4<<20, mem.Fixed(1))
	if err != nil {
		t.Fatal(err)
	}
	cxl, err := as.Alloc(8<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	m := New(smallConfig(), as)
	m.Attach(0, workload.NewStream(workload.Region{Base: local.Base, Size: local.Size}, 2, 0.25, 1))
	m.Attach(1, workload.NewGUPS(workload.Region{Base: cxl.Base, Size: cxl.Size}, 1, 0.1, 0.5, 2))
	m.Attach(2, workload.NewZipf(workload.Region{Base: remote.Base, Size: remote.Size}, 0.9, 0.8, 4, 1, 3))
	m.Attach(3, workload.NewMix(
		workload.NewStream(workload.Region{Base: cxl.Base, Size: cxl.Size / 2}, 0, 0, 4),
		workload.NewPointerChase(workload.Region{Base: local.Base, Size: local.Size}, 2, 5),
		0.7))
	return m
}

// bankValues flattens every PMU counter of the machine after a Sync.
func bankValues(m *Machine) []uint64 {
	m.Sync()
	var out []uint64
	for _, b := range m.Banks() {
		out = append(out, b.Values()...)
	}
	return out
}

func diffBanks(t *testing.T, label string, want, got []uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: bank shapes differ (%d vs %d values)", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: counter value %d differs: want %d, got %d", label, i, want[i], got[i])
		}
	}
}

const (
	ckptWarm   = Cycles(2_000_000)
	ckptSuffix = Cycles(1_500_000)
)

// TestCheckpointRestoreEquivalence is the core restore-equivalence proof at
// the sim layer: a machine restored from a mid-run checkpoint produces
// byte-identical PMU counters to (a) a scratch machine that ran the whole
// span and (b) the source machine continuing past the checkpoint.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	scratch := ckptRig(t)
	scratch.Run(ckptWarm + ckptSuffix)
	want := bankValues(scratch)

	src := ckptRig(t)
	src.Run(ckptWarm)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cycle() != ckptWarm {
		t.Fatalf("checkpoint cycle = %d, want %d", cp.Cycle(), ckptWarm)
	}
	if cp.Bytes() <= 0 {
		t.Fatalf("checkpoint reports %d bytes", cp.Bytes())
	}

	// The source keeps running unperturbed.
	src.Run(ckptSuffix)
	diffBanks(t, "source continued", want, bankValues(src))

	// A fresh restore runs the identical suffix.
	fork := cp.Restore()
	if fork.Now() != ckptWarm {
		t.Fatalf("restored machine at cycle %d, want %d", fork.Now(), ckptWarm)
	}
	fork.Run(ckptSuffix)
	diffBanks(t, "restored", want, bankValues(fork))

	// The checkpoint is reusable: a second fork is just as good.
	fork2 := cp.Restore()
	fork2.Run(ckptSuffix)
	diffBanks(t, "second restore", want, bankValues(fork2))
}

// TestCheckpointRestoreInto proves the buffer-reusing path: restoring over
// a machine that already ran an arbitrary suffix repositions it exactly.
func TestCheckpointRestoreInto(t *testing.T) {
	src := ckptRig(t)
	src.Run(ckptWarm)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	src.Run(ckptSuffix)
	want := bankValues(src)

	m := cp.Restore()
	m.Run(ckptSuffix / 3) // dirty the machine with a partial suffix
	m.Sync()
	if err := cp.RestoreInto(m); err != nil {
		t.Fatal(err)
	}
	if m.Now() != ckptWarm {
		t.Fatalf("RestoreInto left machine at cycle %d, want %d", m.Now(), ckptWarm)
	}
	m.Run(ckptSuffix)
	diffBanks(t, "restore-into", want, bankValues(m))

	// And again, from a fully-run machine.
	if err := cp.RestoreInto(m); err != nil {
		t.Fatal(err)
	}
	m.Run(ckptSuffix)
	diffBanks(t, "restore-into twice", want, bankValues(m))
}

// TestCheckpointAcrossLaneModes forks one warmed image into every core-step
// scheduling mode; all of them must match the scratch counters (digests are
// lane-invariant, so the checkpoint must be too).
func TestCheckpointAcrossLaneModes(t *testing.T) {
	scratch := ckptRig(t)
	scratch.Run(ckptWarm + ckptSuffix)
	want := bankValues(scratch)

	src := ckptRig(t)
	src.SetLanes(2) // checkpoint under the parallel windowed scheduler
	src.Run(ckptWarm)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{-1, 1, 2} {
		m := cp.Restore()
		m.SetLanes(lanes)
		m.Run(ckptSuffix)
		diffBanks(t, "lanes", want, bankValues(m))
	}
}

// TestCheckpointRestoreThenAttachTracer proves attach-after-restore: a
// tracer attached to a restored machine sees the same records as one
// attached to a fresh machine at the same cycle.
func TestCheckpointRestoreThenAttachTracer(t *testing.T) {
	sumRecords := func(recs []obs.ReqRec) (n int, spanSum uint64) {
		for i := range recs {
			n++
			for _, sp := range recs[i].Spans() {
				spanSum += uint64(sp.Start) + uint64(sp.End) + uint64(sp.Stage)
			}
		}
		return
	}

	fresh := ckptRig(t)
	fresh.Run(ckptWarm)
	trA := obs.NewTracer(4096, 4)
	trA.Enable()
	fresh.SetTracer(trA)
	fresh.Run(ckptSuffix)
	fresh.Sync()
	wantN, wantSum := sumRecords(trA.Records())
	if wantN == 0 {
		t.Fatal("tracer on fresh machine recorded nothing")
	}

	src := ckptRig(t)
	src.Run(ckptWarm)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	m := cp.Restore()
	if m.Tracer() != nil {
		t.Fatal("restored machine came with a tracer attached")
	}
	trB := obs.NewTracer(4096, 4)
	trB.Enable()
	m.SetTracer(trB)
	m.Run(ckptSuffix)
	m.Sync()
	gotN, gotSum := sumRecords(trB.Records())
	if gotN != wantN || gotSum != wantSum {
		t.Fatalf("restored-then-attached tracer saw %d records (span sum %d), fresh saw %d (%d)",
			gotN, gotSum, wantN, wantSum)
	}
}

// TestCheckpointRestoreThenAttachFlight does the same for the flight
// recorder.
func TestCheckpointRestoreThenAttachFlight(t *testing.T) {
	attachRun := func(m *Machine) *obs.Flight {
		f := obs.NewFlight(m.Cores(), 1024, 64)
		f.Enable()
		m.SetFlight(f)
		m.Run(ckptSuffix)
		m.Sync()
		return f
	}

	fresh := ckptRig(t)
	fresh.Run(ckptWarm)
	fA := attachRun(fresh)
	if fA.RecordsTotal() == 0 {
		t.Fatal("flight recorder on fresh machine recorded nothing")
	}

	src := ckptRig(t)
	src.Run(ckptWarm)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fB := attachRun(cp.Restore())
	if fA.RecordsTotal() != fB.RecordsTotal() {
		t.Fatalf("flight records: fresh %d, restored %d", fA.RecordsTotal(), fB.RecordsTotal())
	}
	for _, cl := range []int{obs.FlightLoad, obs.FlightStore} {
		if fA.Seen(cl) != fB.Seen(cl) {
			t.Fatalf("flight class %d: fresh %d, restored %d", cl, fA.Seen(cl), fB.Seen(cl))
		}
	}
}

// TestCheckpointRejectsPendingClosure: Schedule/After closures cannot cross
// a checkpoint.
func TestCheckpointRejectsPendingClosure(t *testing.T) {
	m := ckptRig(t)
	m.Run(100_000)
	m.eng.Schedule(m.Now()+50_000, func(Cycles) {})
	if _, err := m.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded with a pending Schedule closure")
	}
	// Running past the closure makes the machine checkpointable again.
	m.Run(100_000)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after draining the closure: %v", err)
	}
}

// TestCheckpointRejectsNonForkableGenerator: attached generators must
// implement workload.Forkable.
func TestCheckpointRejectsNonForkableGenerator(t *testing.T) {
	as := testSpace(t)
	r, _ := as.Alloc(1<<20, mem.Fixed(0))
	m := New(smallConfig(), as)
	m.Attach(0, &loopGen{ops: seqLoads(r.Base, 64, 64, false)})
	m.Run(100_000)
	if _, err := m.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded with a non-Forkable generator")
	}
}

// TestRestoreIntoRejectsConfigMismatch: forks only land on machines built
// from the same spec.
func TestRestoreIntoRejectsConfigMismatch(t *testing.T) {
	src := ckptRig(t)
	src.Run(ckptWarm)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	other := smallConfig()
	other.LFBEntries++
	m := New(other, testSpace(t))
	if err := cp.RestoreInto(m); err == nil {
		t.Fatal("RestoreInto accepted a machine with a different Config")
	}
}

// TestCheckpointIdleMachine: the degenerate image (cycle 0, nothing
// attached) round-trips too.
func TestCheckpointIdleMachine(t *testing.T) {
	m := New(smallConfig(), testSpace(t))
	cp, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fork := cp.Restore()
	if fork.Now() != 0 || !fork.Idle() {
		t.Fatalf("restored idle machine: now=%d idle=%v", fork.Now(), fork.Idle())
	}
}

// FuzzCheckpointRoundTrip checkpoints at a fuzzed cycle mid-run — including
// inside hit-dominated runs, with a fault plan active, and across lane
// modes — restores, runs both to completion, and requires identical
// counters.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(uint32(1_000), int8(-1), false)
	f.Add(uint32(500_000), int8(1), true)
	f.Add(uint32(1_999_999), int8(2), false)
	f.Add(uint32(137), int8(0), true)
	f.Fuzz(func(t *testing.T, warmRaw uint32, lanes int8, withFaults bool) {
		warm := Cycles(warmRaw%2_000_000) + 1
		suffix := Cycles(750_000)
		laneMode := int(lanes % 3) // -2..2 → clamp below
		if laneMode < -1 {
			laneMode = -1
		}
		build := func() *Machine {
			as := testSpace(t)
			local, _ := as.Alloc(2<<20, mem.Fixed(0))
			cxl, _ := as.Alloc(4<<20, mem.Fixed(2))
			cfg := smallConfig()
			m := New(cfg, as)
			if withFaults {
				m.SetFaultPlan(0, faultyPlan(0.05))
			}
			m.Attach(0, workload.NewStream(workload.Region{Base: local.Base, Size: local.Size}, 1, 0.2, 11))
			m.Attach(1, workload.NewGUPS(workload.Region{Base: cxl.Base, Size: cxl.Size}, 1, 0.1, 0.5, 12))
			return m
		}
		scratch := build()
		scratch.SetLanes(laneMode)
		scratch.Run(warm + suffix)
		want := bankValues(scratch)

		src := build()
		src.SetLanes(laneMode)
		src.Run(warm)
		cp, err := src.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		fork := cp.Restore()
		fork.SetLanes(laneMode)
		fork.Run(suffix)
		got := bankValues(fork)
		if len(want) != len(got) {
			t.Fatalf("bank shapes differ (%d vs %d)", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("counter %d diverged after round-trip at cycle %d: %d vs %d",
					i, warm, want[i], got[i])
			}
		}
	})
}

package sim

import (
	"fmt"
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/workload"
)

// White-box tests for the windowed scheduler (DESIGN.md §12): the preview
// classifier's purity, window-boundary edge cases against live engine
// events, mid-run lane-mode transitions, and the tracer bail-out.

// windowRig builds a 4-core machine with one local and one CXL region.
func windowRig(t *testing.T) (*Machine, workload.Region, workload.Region) {
	t.Helper()
	as := testSpace(t)
	local, err := as.Alloc(8<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	cxlr, err := as.Alloc(8<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	m := New(smallConfig(), as)
	return m, workload.Region{Base: local.Base, Size: local.Size},
		workload.Region{Base: cxlr.Base, Size: cxlr.Size}
}

// bankSums returns every PMU counter of every bank, concatenated — a
// cheap in-package digest for mode-equivalence checks.
func bankSums(m *Machine) []uint64 {
	var out []uint64
	for _, b := range m.Banks() {
		out = append(out, b.Values()...)
	}
	return out
}

func sameSums(t *testing.T, tag string, a, b []uint64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: digest lengths differ: %d vs %d", tag, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: counter %d differs: %d vs %d", tag, i, a[i], b[i])
		}
	}
}

// TestWindowPreviewMatchesTrain drives the prefetcher over pseudorandom
// demand streams and checks, at every single access, that preview returns
// exactly the candidates train then produces, and that preview left the
// prefetcher state untouched.  This purity is what lets the window
// classifier prove "training here issues nothing" without observable
// side effects.
func TestWindowPreviewMatchesTrain(t *testing.T) {
	p := newPrefetcher(2, 16, 2)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	// Mix of strided walks (several pages, varying strides incl. negative)
	// and random jumps, so streams allocate, train, saturate, and collide.
	line := uint64(1 << 20)
	var pv, tr []uint64
	for i := 0; i < 20000; i++ {
		switch next() % 8 {
		case 0: // jump to a random page
			line = (next() % (1 << 18)) * 7
		case 1: // stride change within the page
			line += next()%5 - 2
		default: // keep walking
			stride := int64(next()%4) - 1
			line = uint64(int64(line) + stride)
		}
		la := line << mem.LineShift
		saved := *p
		pv = p.preview(la, pv[:0])
		if *p != saved {
			t.Fatalf("access %d: preview mutated prefetcher state", i)
		}
		tr = p.train(la, tr[:0])
		if fmt.Sprint(pv) != fmt.Sprint(tr) {
			t.Fatalf("access %d (la=%#x): preview=%v train=%v", i, la, pv, tr)
		}
	}
}

// TestWindowExactHBoundary pins uncore/engine interaction exactly on the
// window horizon: engine callbacks are scheduled on top of the stepping
// cadence of a multi-core run, so windows constantly close exactly at a
// live event's cycle.  Fire times and every PMU counter must match the
// dispatch-only engine.
func TestWindowExactHBoundary(t *testing.T) {
	run := func(lanes int) ([]Cycles, []uint64) {
		m, local, cxlr := windowRig(t)
		if lanes < 0 {
			m.SetRunAhead(false)
		} else {
			m.SetLanes(lanes)
		}
		m.Attach(0, workload.NewStream(local, 2, 0.2, 1))
		m.Attach(1, workload.NewStream(cxlr, 2, 0.3, 2))
		m.Attach(2, workload.NewStream(local, 1, 0, 3))
		m.Attach(3, workload.NewStream(cxlr, 3, 0.1, 4))
		var fired []Cycles
		// A dense comb of engine events: primes stress same-cycle ties with
		// core steps, the +1 cadence lands exactly on step continuations.
		for c := Cycles(1); c < 50_000; c += 97 {
			m.eng.Schedule(c, func(now Cycles) { fired = append(fired, now) })
			m.eng.Schedule(c+1, func(now Cycles) { fired = append(fired, now) })
		}
		m.Run(60_000)
		return fired, bankSums(m)
	}
	baseFired, baseSums := run(-1)
	for _, lanes := range []int{1, 2, 4} {
		fired, sums := run(lanes)
		if fmt.Sprint(fired) != fmt.Sprint(baseFired) {
			t.Fatalf("lanes=%d: engine event fire times diverge from dispatch-only run", lanes)
		}
		sameSums(t, fmt.Sprintf("lanes=%d", lanes), sums, baseSums)
	}
}

// TestWindowLaneTransitions switches scheduling modes mid-run — windowed
// parallel, engine dispatch, sweep, auto — and requires the final counters
// to match a run that never left engine mode.  This pins the
// absorbCoreEvents/flushStepMirror handoff in both directions.
func TestWindowLaneTransitions(t *testing.T) {
	drive := func(m *Machine, local, cxlr workload.Region) {
		m.Attach(0, workload.NewStream(local, 2, 0.2, 5))
		m.Attach(1, workload.NewStream(cxlr, 2, 0.1, 6))
		m.Attach(2, workload.NewPointerChase(cxlr, 2, 7))
		m.Attach(3, workload.NewStream(local, 0, 0.5, 8))
	}
	base, blocal, bcxl := windowRig(t)
	base.SetRunAhead(false)
	drive(base, blocal, bcxl)
	base.Run(400_000)

	m, local, cxlr := windowRig(t)
	m.SetLanes(2)
	drive(m, local, cxlr)
	for i, lanes := range []int{2, -1, 1, -1, 0, 4, -1, 2} {
		if lanes < 0 {
			m.SetRunAhead(false)
		} else {
			m.SetLanes(lanes)
		}
		m.Run(50_000)
		if m.Now() != Cycles((i+1)*50_000) {
			t.Fatalf("after slice %d: now=%d", i, m.Now())
		}
	}
	if m.Now() != base.Now() {
		t.Fatalf("final clocks differ: %d vs %d", m.Now(), base.Now())
	}
	sameSums(t, "transitions", bankSums(m), bankSums(base))
}

// TestWindowTracerForcesSweep: an enabled sampling tracer makes op
// execution order observable, so the parallel scheduler must stop opening
// windows and fall back to the exact sequential sweep.
func TestWindowTracerForcesSweep(t *testing.T) {
	run := func(enable bool) WindowStats {
		m, local, cxlr := windowRig(t)
		m.SetLanes(2)
		tr := obs.NewTracer(1<<12, 4)
		if enable {
			tr.Enable()
		}
		m.SetTracer(tr)
		m.Attach(0, workload.NewStream(local, 2, 0.2, 1))
		m.Attach(1, workload.NewStream(cxlr, 2, 0.2, 2))
		m.Attach(2, workload.NewStream(local, 2, 0, 3))
		m.Attach(3, workload.NewStream(cxlr, 2, 0.1, 4))
		m.Run(300_000)
		return m.WindowStats()
	}
	if ws := run(true); ws.Windows != 0 {
		t.Fatalf("enabled tracer: %d parallel windows opened (want 0)", ws.Windows)
	}
	if ws := run(false); ws.Windows == 0 {
		t.Fatal("disabled tracer: no parallel windows opened")
	}
}

// TestWindowLaneBusyAccounting: after a parallel multi-core run, the
// scheduler must report busy time for every lane it ran.
func TestWindowLaneBusyAccounting(t *testing.T) {
	m, local, cxlr := windowRig(t)
	m.SetLanes(2)
	m.Attach(0, workload.NewStream(local, 2, 0.2, 1))
	m.Attach(1, workload.NewStream(local, 2, 0.1, 2))
	m.Attach(2, workload.NewStream(cxlr, 2, 0, 3))
	m.Attach(3, workload.NewStream(local, 2, 0.3, 4))
	m.Run(500_000)
	ws := m.WindowStats()
	if ws.Windows == 0 {
		t.Skip("no parallel windows opened on this run")
	}
	if len(ws.LaneBusyNs) != 2 {
		t.Fatalf("LaneBusyNs has %d lanes, want 2", len(ws.LaneBusyNs))
	}
	for i, ns := range ws.LaneBusyNs {
		if ns == 0 {
			t.Errorf("lane %d reports zero busy time over %d windows", i, ws.Windows)
		}
	}
}

package sim

import "pathfinder/internal/mem"

// streamEntry is one tracked access stream of a stride prefetcher.
type streamEntry struct {
	page     uint64 // 4 KiB region the stream lives in
	lastLine int64
	head     int64 // next line the prefetcher will fetch
	stride   int64 // in lines
	conf     int
	valid    bool
	lru      uint64
}

// prefetcher is a multi-stream stride detector modeling the L1D "streamer"
// and the L2 stream prefetcher.  It trains on demand accesses; once a
// stream's stride has repeated trainHits times it issues up to degree
// lines per training event from a persistent stream head, running up to
// distance lines ahead of the demand stream — the distance is what lets a
// hardware prefetcher hide long (CXL) latencies.
type prefetcher struct {
	streams   [8]streamEntry
	degree    int
	distance  int
	trainHits int
	clock     uint64
}

func newPrefetcher(degree, distance, trainHits int) *prefetcher {
	if distance < degree {
		distance = degree
	}
	return &prefetcher{degree: degree, distance: distance, trainHits: trainHits}
}

// train observes a demand access to line address la and appends prefetch
// candidate line addresses to out, returning the extended slice.
// Candidates stay within the stream's 4 KiB page, mirroring the
// page-boundary restriction of hardware prefetchers.
func (p *prefetcher) train(la uint64, out []uint64) []uint64 {
	if p.degree <= 0 {
		return out
	}
	p.clock++
	page := la >> 12
	line := int64(la >> mem.LineShift)

	// Find the stream for this page, or a victim.
	var e *streamEntry
	victim := &p.streams[0]
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && s.page == page {
			e = s
			break
		}
		if !s.valid || s.lru < victim.lru {
			victim = s
		}
	}
	if e == nil {
		*victim = streamEntry{page: page, lastLine: line, valid: true, lru: p.clock}
		return out
	}
	e.lru = p.clock

	stride := line - e.lastLine
	if stride == 0 {
		return out // same line (word-granular reuse): nothing to learn
	}
	if stride == e.stride {
		e.conf++
	} else {
		e.stride = stride
		e.conf = 1
		e.head = line + stride
	}
	e.lastLine = line
	if e.conf < p.trainHits {
		return out
	}

	// Advance the stream head: never behind the demand stream, never more
	// than distance lines ahead of it.
	ahead := func(h int64) int64 { // lines of lead, in stride direction
		if e.stride > 0 {
			return h - line
		}
		return line - h
	}
	if ahead(e.head) <= 0 {
		e.head = line + e.stride
	}
	limit := int64(p.distance) * abs64(e.stride)
	for i := 0; i < p.degree; i++ {
		if ahead(e.head) > limit || e.head < 0 {
			break
		}
		nla := uint64(e.head) << mem.LineShift
		if nla>>12 != page { // do not cross the page
			break
		}
		out = append(out, nla)
		e.head += e.stride
	}
	return out
}

// preview appends the candidates train(la, out) would produce, without
// mutating any prefetcher state — the window classifier's pure twin of
// train.  The two must walk identical control flow: the classifier uses
// preview to prove a training event would issue nothing (so the op is
// core-private), then lets the real train run at commit time.
func (p *prefetcher) preview(la uint64, out []uint64) []uint64 {
	if p.degree <= 0 {
		return out
	}
	page := la >> 12
	line := int64(la >> mem.LineShift)

	var e *streamEntry
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && s.page == page {
			e = s
			break
		}
	}
	if e == nil {
		return out // train would only allocate a fresh stream
	}
	stride := line - e.lastLine
	if stride == 0 {
		return out
	}
	conf, st, head := e.conf, e.stride, e.head
	if stride == st {
		conf++
	} else {
		st = stride
		conf = 1
		head = line + stride
	}
	if conf < p.trainHits {
		return out
	}
	ahead := func(h int64) int64 {
		if st > 0 {
			return h - line
		}
		return line - h
	}
	if ahead(head) <= 0 {
		head = line + st
	}
	limit := int64(p.distance) * abs64(st)
	for i := 0; i < p.degree; i++ {
		if ahead(head) > limit || head < 0 {
			break
		}
		nla := uint64(head) << mem.LineShift
		if nla>>12 != page {
			break
		}
		out = append(out, nla)
		head += st
	}
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

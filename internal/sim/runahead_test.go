package sim

import (
	"fmt"
	"testing"

	"pathfinder/internal/pmu"
)

// TestEngineWheelBoundary pins the wheel/heap routing boundary: an event
// exactly wheelSlots-1 ahead is the farthest wheel-resident cycle, one
// past it must take the heap, and both fire in schedule order once the
// clock reaches them.
func TestEngineWheelBoundary(t *testing.T) {
	e := NewEngine()
	e.RunUntil(10) // non-zero base so slot arithmetic wraps mid-wheel
	var got []int
	edge := e.Now() + wheelSlots - 1
	e.Schedule(edge, func(Cycles) { got = append(got, 0) })
	if e.wheelLen != 1 || len(e.heap) != 0 {
		t.Fatalf("event at now+wheelSlots-1 routed to heap (wheel=%d heap=%d)",
			e.wheelLen, len(e.heap))
	}
	e.Schedule(edge+1, func(Cycles) { got = append(got, 1) })
	if len(e.heap) != 1 {
		t.Fatalf("event at now+wheelSlots routed to wheel (wheel=%d heap=%d)",
			e.wheelLen, len(e.heap))
	}
	// A same-cycle pair split across wheel and heap: the heap-resident
	// event was scheduled first and must fire first.
	e.Schedule(edge+1, func(Cycles) { got = append(got, 2) })
	e.RunUntil(edge + 2)
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Fatalf("firing order = %v, want [0 1 2]", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}

// TestEngineQuietUntilMidDrain checks the fast-path safety predicate sees
// through the consumed prefix of the bucket being drained: while the last
// same-cycle event runs, earlier entries of its own bucket must not count
// as pending, but a later-cycle event must.
func TestEngineQuietUntilMidDrain(t *testing.T) {
	e := NewEngine()
	var inA, inB []bool
	e.Schedule(100, func(Cycles) {
		// B (same cycle) is still live: nothing through 104 is quiet.
		inA = append(inA, e.quietUntil(100), e.quietUntil(104))
	})
	e.Schedule(100, func(Cycles) {
		// A and B are both consumed; only C at 105 remains.
		inB = append(inB, e.quietUntil(104), e.quietUntil(105))
	})
	e.Schedule(105, func(Cycles) {})
	e.RunUntil(200)
	if fmt.Sprint(inA) != "[false false]" {
		t.Fatalf("during A: quietUntil(100),quietUntil(104) = %v, want [false false]", inA)
	}
	if fmt.Sprint(inB) != "[true false]" {
		t.Fatalf("during B: quietUntil(104),quietUntil(105) = %v, want [true false]", inB)
	}
}

// TestEngineStepRunUntilEquivalence runs an identical mixed wheel+heap
// schedule (with same-cycle cascades) through Step-by-Step execution and
// through one RunUntil, requiring the same firing sequence and clock.
func TestEngineStepRunUntilEquivalence(t *testing.T) {
	build := func(e *Engine, log *[]string) {
		rec := func(tag string) func(Cycles) {
			return func(now Cycles) { *log = append(*log, fmt.Sprintf("%s@%d", tag, now)) }
		}
		e.Schedule(50, rec("a"))
		e.Schedule(50, func(now Cycles) {
			*log = append(*log, fmt.Sprintf("b@%d", now))
			e.Schedule(now, rec("cascade"))            // same-cycle cascade
			e.Schedule(now+wheelSlots+100, rec("far")) // heap path
		})
		e.Schedule(wheelSlots+200, rec("c"))
		e.Schedule(3, rec("first"))
	}

	var stepLog, runLog []string
	se := NewEngine()
	build(se, &stepLog)
	for se.Step() {
	}
	re := NewEngine()
	build(re, &runLog)
	re.RunUntil(2 * wheelSlots)

	if fmt.Sprint(stepLog) != fmt.Sprint(runLog) {
		t.Fatalf("Step order %v != RunUntil order %v", stepLog, runLog)
	}
	if se.Now() != wheelSlots+200 {
		t.Fatalf("Step clock = %d, want %d (last event)", se.Now(), wheelSlots+200)
	}
}

// TestObserverLaneIntegrals schedules occupancy edges through the deferred
// observer lane — near-wheel and far-heap, in scrambled order — and checks
// the tracker integrates exactly as immediate in-order updates would.
func TestObserverLaneIntegrals(t *testing.T) {
	e := NewEngine()
	b := pmu.NewBank(pmu.Default, "imc0ch0")
	tr := pmu.NewOccTracker(b, pmu.RPQOccupancy, pmu.RPQCyclesNE, -1, 0)

	far := Cycles(3 * wheelSlots)
	// Scrambled schedule order; correct time order is what must apply.
	e.obsAt(250, evOcc, tr, -1, 0)
	e.obsAt(100, evOcc, tr, +1, 0)
	e.obsAt(far+50, evOcc, tr, -1, 0)
	e.obsAt(200, evOcc, tr, +1, 0)
	e.obsAt(far, evOcc, tr, +1, 0)
	e.obsAt(300, evOcc, tr, -1, 0)

	e.RunUntil(4 * wheelSlots)
	// 1*(200-100) + 2*(250-200) + 1*(300-250) + 1*50 = 300
	if got := b.Read(pmu.RPQOccupancy); got != 300 {
		t.Fatalf("occupancy integral = %d, want 300", got)
	}
	// not-empty: (300-100) + 50 = 250
	if got := b.Read(pmu.RPQCyclesNE); got != 250 {
		t.Fatalf("not-empty cycles = %d, want 250", got)
	}
	if e.obsLen != 0 || len(e.obsFar) != 0 {
		t.Fatalf("observer lane not drained: wheel=%d far=%d", e.obsLen, len(e.obsFar))
	}
}

// TestObserverFarBeforeNearSameCycle: an entry scheduled while its cycle
// was beyond the wheel (far heap) precedes a same-cycle entry scheduled
// later from nearby.  Order is observable here because applying the -1
// first would drive the tracker negative and panic.
func TestObserverFarBeforeNearSameCycle(t *testing.T) {
	e := NewEngine()
	b := pmu.NewBank(pmu.Default, "imc0ch0")
	tr := pmu.NewOccTracker(b, pmu.RPQOccupancy, -1, -1, 0)

	target := Cycles(2 * wheelSlots)
	e.obsAt(target, evOcc, tr, +1, 0) // far at schedule time
	e.RunUntil(target - 10)
	e.obsAt(target, evOcc, tr, -1, 0) // near, same cycle, later seq
	e.RunUntil(target + 10)
	if tr.Len() != 0 {
		t.Fatalf("occupancy = %d, want 0", tr.Len())
	}
}

// TestObserverImmediateApply: an observer entry stamped at or behind the
// drain cursor applies synchronously — it is the newest bookkeeping for
// that cycle and the engine must not hold it for a future drain.
func TestObserverImmediateApply(t *testing.T) {
	e := NewEngine()
	b := pmu.NewBank(pmu.Default, "core0")
	e.RunUntil(500)
	e.obsAt(500, evBankInc, b, int32(pmu.MemLoadL1Hit), 0)
	if got := b.Read(pmu.MemLoadL1Hit); got != 1 {
		t.Fatalf("counter = %d after at-cursor obsAt, want immediate 1", got)
	}
}

// TestObserverDrainOnStep: single-stepping must settle observer work due
// by each event's cycle, so closures observe counters exactly as the
// event-per-observer engine left them.
func TestObserverDrainOnStep(t *testing.T) {
	e := NewEngine()
	b := pmu.NewBank(pmu.Default, "core0")
	e.obsAt(40, evBankInc, b, int32(pmu.MemLoadL1Hit), 0)
	var seen uint64
	e.Schedule(60, func(Cycles) { seen = b.Read(pmu.MemLoadL1Hit) })
	if !e.Step() {
		t.Fatal("no event to step")
	}
	if seen != 1 {
		t.Fatalf("closure at 60 read %d, want 1 (obs entry at 40 must drain first)", seen)
	}
}

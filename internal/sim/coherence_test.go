package sim

import (
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

// shared-line scenarios: two cores touching the same region exercise the
// MESIF directory, snoops, and back-invalidation.

func TestCoherenceRFOInvalidatesPeer(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	m := New(cfg, as)

	// Core 0 reads a line set; core 1 then writes the same lines (RFO).
	m.Attach(0, &opList{ops: seqLoads(r.Base, 256, 64, true)})
	m.Run(2_000_000)
	stores := make([]workload.Op, 256)
	for i := range stores {
		stores[i] = workload.Op{Addr: r.Base + uint64(i)*64, Kind: workload.Store, Think: 2}
	}
	m.Attach(1, &opList{ops: stores})
	m.Run(8_000_000)
	m.Sync()

	// Core 1's RFOs must have invalidated core 0's copies: a re-read by
	// core 0 misses its L1.
	m.Attach(0, &opList{ops: seqLoads(r.Base, 256, 64, true)})
	before := m.Core(0).Bank().Read(pmu.MemLoadL1Miss)
	m.Run(8_000_000)
	m.Sync()
	misses := m.Core(0).Bank().Read(pmu.MemLoadL1Miss) - before
	if misses < 200 {
		t.Fatalf("after peer RFOs, core 0 re-read missed only %d of 256 lines", misses)
	}
	// Snoop activity must be visible at the CHAs.
	var snoops uint64
	for i := 0; i < cfg.LLCSlices; i++ {
		b := m.Bank("cha" + string(rune('0'+i)))
		snoops += b.Read(pmu.SnoopsSentLocal) + b.Read(pmu.SnoopsSentRemote)
	}
	if snoops == 0 {
		t.Fatal("no snoops recorded despite cross-core sharing")
	}
}

func TestCoherencePeerServesSharedRead(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2)) // CXL-resident shared region
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	m := New(cfg, as)

	// Core 0 loads the lines (they land in LLC + its private caches).
	m.Attach(0, &opList{ops: seqLoads(r.Base, 512, 64, true)})
	m.Run(30_000_000)
	// Core 1 reads the same lines: served from the socket caches, not CXL.
	cxlBefore := m.Bank("cxl0").Read(pmu.CXLRxPackBufInsertsReq)
	m.Attach(1, &opList{ops: seqLoads(r.Base, 512, 64, true)})
	m.Run(30_000_000)
	m.Sync()
	cxlAfter := m.Bank("cxl0").Read(pmu.CXLRxPackBufInsertsReq)

	b1 := m.Core(1).Bank()
	hits := b1.Read(pmu.MemLoadL3Hit)
	if hits < 400 {
		t.Fatalf("core 1 got only %d LLC-level hits of 512 shared reads", hits)
	}
	if delta := cxlAfter - cxlBefore; delta > 100 {
		t.Fatalf("shared re-read went to the CXL device %d times", delta)
	}
	// OCR classifies those serves as socket-cache hits.
	if got := b1.Read(pmu.OCRDemandDataRd[pmu.ScnHit]); got < 400 {
		t.Fatalf("OCR hit_llc = %d", got)
	}
}

func TestWritebackBackpressure(t *testing.T) {
	// A tiny write queue on the CXL device must slow down a write-heavy
	// stream via fill backpressure (dirty-victim handoff).
	run := func(wpq int) uint64 {
		as := testSpace(t)
		r, _ := as.Alloc(32<<20, mem.Fixed(2))
		cfg := smallConfig()
		cfg.CXLWPQEntries = wpq
		cfg.PackBufEntries = wpq
		m := New(cfg, as)
		g := workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 0, 1.0, 3)
		g.Reuse = 2
		c := workload.NewCounting(g)
		m.Attach(0, c)
		m.Run(4_000_000)
		return c.Stores
	}
	fast := run(64)
	slow := run(2)
	if slow >= fast {
		t.Fatalf("tiny write queue did not slow the stream: %d vs %d stores", slow, fast)
	}
}

func TestAccessHookFires(t *testing.T) {
	as := testSpace(t)
	r, _ := as.Alloc(8<<20, mem.Fixed(2))
	m := New(smallConfig(), as)
	var reads, writes int
	m.SetAccessHook(func(core int, la uint64, write bool) {
		if core != 0 {
			t.Errorf("hook saw core %d", core)
		}
		if la < r.Base || la >= r.Base+r.Size {
			t.Errorf("hook saw out-of-region address %#x", la)
		}
		if write {
			writes++
		} else {
			reads++
		}
	})
	g := workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 1, 0.5, 9)
	m.Attach(0, workload.NewLimit(g, 20000))
	m.Run(50_000_000)
	if reads == 0 || writes == 0 {
		t.Fatalf("hook fired reads=%d writes=%d", reads, writes)
	}
	m.SetAccessHook(nil) // must not panic on further traffic
	m.Attach(0, workload.NewLimit(workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 1, 0, 10), 1000))
	m.Run(5_000_000)
}

func TestMigratePageMovesTraffic(t *testing.T) {
	as := testSpace(t)
	r, _ := as.Alloc(1<<20, mem.Fixed(2))
	m := New(smallConfig(), as)

	// Migrate every page to local; the transfer itself must appear at
	// both devices' counters.
	ps := as.PageSize()
	for a := r.Base; a < r.Base+r.Size; a += ps {
		if err := m.MigratePage(a, 0); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(1_000_000)
	m.Sync()
	if got := m.Bank("cxl0").Read(pmu.CXLDevCASRd); got == 0 {
		t.Fatal("migration reads not charged to the CXL device")
	}
	var wr uint64
	for i := 0; i < m.Config().DRAMChannels; i++ {
		wr += m.Bank("imc" + string(rune('0'+i))).Read(pmu.CASCountWr)
	}
	if wr == 0 {
		t.Fatal("migration writes not charged to the IMC")
	}

	// Subsequent traffic goes local.
	before := m.Bank("cxl0").Read(pmu.CXLRxPackBufInsertsReq)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 1024, 64, false)})
	m.Run(5_000_000)
	m.Sync()
	if got := m.Bank("cxl0").Read(pmu.CXLRxPackBufInsertsReq) - before; got != 0 {
		t.Fatalf("post-migration loads still hit CXL: %d", got)
	}
	// Migrating to the current node is a no-op.
	if err := m.MigratePage(r.Base, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEMRConfigDiffers(t *testing.T) {
	spr, emr := SPR(), EMR()
	if emr.Name != "emr" {
		t.Fatal("EMR name")
	}
	if emr.LLCSize <= spr.LLCSize {
		t.Fatal("EMR must have the larger LLC")
	}
	if emr.CXLMediaLat >= spr.CXLMediaLat {
		t.Fatal("the CZ120 ASIC should be faster than the Agilex FPGA device")
	}
	// Both must build.
	New(emr, testSpace(t))
}

func TestSyncClockticks(t *testing.T) {
	as := testSpace(t)
	r, _ := as.Alloc(1<<20, mem.Fixed(0))
	m := New(smallConfig(), as)
	m.Attach(0, &loopGen{ops: seqLoads(r.Base, 64, 64, false)})
	m.Run(123_456)
	m.Sync()
	if got := m.Bank("cha0").Read(pmu.CHAClockticks); got != 123_456 {
		t.Fatalf("CHA clockticks = %d", got)
	}
	if got := m.Bank("cxl0").Read(pmu.CXLClockticks); got != 123_456 {
		t.Fatalf("CXL clockticks = %d", got)
	}
	m.Run(1000)
	m.Sync()
	if got := m.Bank("imc0").Read(pmu.IMCClockticks); got != 124_456 {
		t.Fatalf("IMC clockticks after second sync = %d", got)
	}
}

// Property-style check: per-core load counters are conserved across the
// hierarchy for an arbitrary mixed workload.
func TestLoadCounterConservation(t *testing.T) {
	as := testSpace(t)
	r, _ := as.Alloc(8<<20, mem.Interleave{A: 0, B: 2, RatioA: 1, RatioB: 1})
	m := New(smallConfig(), as)
	g := workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 3, 0.3, 17)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, 60_000))
	m.Run(200_000_000)
	m.Sync()
	b := m.Core(0).Bank()

	loads := b.Read(pmu.MemInstAllLoads)
	l1h := b.Read(pmu.MemLoadL1Hit)
	l1m := b.Read(pmu.MemLoadL1Miss)
	if l1h+l1m != loads {
		t.Fatalf("L1 conservation: %d + %d != %d", l1h, l1m, loads)
	}
	// Demand L2 lookups = L1 misses not merged into the LFB.
	fb := b.Read(pmu.MemLoadFBHit)
	l2 := b.Read(pmu.L2AllDemandDataRd)
	if fb+l2 != l1m {
		t.Fatalf("L2 conservation: fb(%d) + l2(%d) != l1m(%d)", fb, l2, l1m)
	}
	if b.Read(pmu.L2DemandDataRdHit)+b.Read(pmu.L2DemandDataRdMiss) != l2 {
		t.Fatal("L2 hit/miss conservation")
	}
	// OCR scenarios partition the offcore demand reads.
	any := b.Read(pmu.OCRDemandDataRd[pmu.ScnAny])
	hit := b.Read(pmu.OCRDemandDataRd[pmu.ScnHit])
	miss := b.Read(pmu.OCRDemandDataRd[pmu.ScnMiss])
	if hit+miss != any {
		t.Fatalf("OCR conservation: %d + %d != %d", hit, miss, any)
	}
	local := b.Read(pmu.OCRDemandDataRd[pmu.ScnMissLocalDDR])
	cxl := b.Read(pmu.OCRDemandDataRd[pmu.ScnMissCXL])
	remote := b.Read(pmu.OCRDemandDataRd[pmu.ScnMissRemote])
	if local+cxl+remote != miss {
		t.Fatalf("OCR destination split: %d + %d + %d != %d", local, cxl, remote, miss)
	}
}

func TestRemoteIMCCounters(t *testing.T) {
	as := testSpace(t)
	r, _ := as.Alloc(8<<20, mem.Fixed(1)) // remote-socket DRAM
	cfg := smallConfig()
	m := New(cfg, as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 2048, 64, false)})
	m.Run(20_000_000)
	m.Sync()
	var cas uint64
	for i := 0; i < cfg.DRAMChannels; i++ {
		cas += m.Bank("rimc" + string(rune('0'+i))).Read(pmu.CASCountRd)
	}
	if cas == 0 {
		t.Fatal("remote IMC saw no CAS for a remote working set")
	}
	// The local IMC stays cold.
	for i := 0; i < cfg.DRAMChannels; i++ {
		if got := m.Bank("imc" + string(rune('0'+i))).Read(pmu.CASCountRd); got != 0 {
			t.Fatalf("local imc%d saw %d CAS", i, got)
		}
	}
}

package sim

import (
	"fmt"
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/workload"
)

// traceRun drives n dependent loads over the node at fix, with every
// request traced, and returns the committed records.
func traceRun(t *testing.T, cfg Config, fix mem.NodeID, n int) []obs.ReqRec {
	t.Helper()
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(fix))
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg, as)
	tr := obs.NewTracer(4096, 1)
	tr.Enable()
	m.SetTracer(tr)
	m.Attach(0, &opList{ops: seqLoads(r.Base, n, 64, true)})
	m.Run(50_000_000)
	m.Sync()
	return tr.Records()
}

func stageSpans(r *obs.ReqRec) map[obs.Stage][]obs.Span {
	out := make(map[obs.Stage][]obs.Span)
	for _, sp := range r.Spans() {
		out[sp.Stage] = append(out[sp.Stage], sp)
	}
	return out
}

func TestTracerCXLWaterfall(t *testing.T) {
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	recs := traceRun(t, cfg, 2, 64)
	if len(recs) != 64 {
		t.Fatalf("traced %d records, want 64", len(recs))
	}
	sawCXL := false
	for i := range recs {
		r := &recs[i]
		if r.Loc != SrvCXL.String() {
			continue
		}
		sawCXL = true
		byStage := stageSpans(r)
		for _, st := range []obs.Stage{obs.StageReq, obs.StageL2, obs.StageCHA,
			obs.StageM2PCIe, obs.StageCXLLink, obs.StageCXLDevQ,
			obs.StageCXLMedia, obs.StageCXLRet} {
			if len(byStage[st]) == 0 {
				t.Fatalf("record %d (loc %s) missing stage %s: %+v", r.ID, r.Loc, st, r.Spans())
			}
		}
		if len(byStage[obs.StageIMC]) != 0 {
			t.Fatalf("CXL-served record %d carries an IMC span", r.ID)
		}
		// The waterfall is ordered and nested inside the request span.
		req := byStage[obs.StageReq][0]
		link := byStage[obs.StageCXLLink][0]
		media := byStage[obs.StageCXLMedia][0]
		if link.Start < req.Start || media.End > req.End {
			t.Fatalf("device spans escape the request span: req=%+v link=%+v media=%+v",
				req, link, media)
		}
		if link.End > media.Start+1 && link.End > media.End {
			t.Fatalf("link span after media span: link=%+v media=%+v", link, media)
		}
	}
	if !sawCXL {
		t.Fatal("no CXL-served records traced")
	}
}

func TestTracerLocalDRAMUsesIMCStage(t *testing.T) {
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	recs := traceRun(t, cfg, 0, 64)
	saw := false
	for i := range recs {
		r := &recs[i]
		if r.Loc != SrvLocalDRAM.String() {
			continue
		}
		saw = true
		byStage := stageSpans(r)
		if len(byStage[obs.StageIMC]) == 0 {
			t.Fatalf("DRAM-served record %d has no IMC span: %+v", r.ID, r.Spans())
		}
		for _, st := range []obs.Stage{obs.StageM2PCIe, obs.StageCXLLink,
			obs.StageCXLDevQ, obs.StageCXLMedia} {
			if len(byStage[st]) != 0 {
				t.Fatalf("DRAM-served record %d carries CXL stage %s", r.ID, st)
			}
		}
	}
	if !saw {
		t.Fatal("no DRAM-served records traced")
	}
}

// Prefetch traffic issued while a sampled demand record is current must not
// write device stages into it: the demand's own path stays clean.
func TestTracerPrefetchDoesNotPolluteDemand(t *testing.T) {
	cfg := smallConfig() // default prefetch degrees: streams train hard
	recs := traceRun(t, cfg, 2, 256)
	for i := range recs {
		r := &recs[i]
		byStage := stageSpans(r)
		// At most one request-level span and one media visit per record: a
		// second media span could only come from a prefetch riding along.
		if len(byStage[obs.StageReq]) > 1 {
			t.Fatalf("record %d has %d req spans", r.ID, len(byStage[obs.StageReq]))
		}
		if len(byStage[obs.StageCXLMedia]) > 1 {
			t.Fatalf("record %d has %d media spans (prefetch pollution)",
				r.ID, len(byStage[obs.StageCXLMedia]))
		}
		if r.Loc == SrvL1.String() || r.Loc == SrvL2.String() || r.Loc == SrvLFB.String() {
			if len(byStage[obs.StageCXLMedia]) != 0 || len(byStage[obs.StageIMC]) != 0 {
				t.Fatalf("cache-served record %d carries device spans: %+v", r.ID, r.Spans())
			}
		}
	}
}

// The demand-seal guards must hold when the machine is configured for
// parallel window lanes: an enabled tracer forces the sequential sweep
// (windows would scramble op order), but the sweep still runs multi-core
// interleaved stepping with prefetchers training hard — a sampled record
// on one core stays current while other cores (and its own prefetches)
// issue device traffic, and none of it may leak into the sealed waterfall.
func TestTracerDemandSealUnderWindowLanes(t *testing.T) {
	m, local, cxlr := windowRig(t) // default prefetch degrees: streams train
	m.SetLanes(2)
	tr := obs.NewTracer(1<<13, 1)
	tr.Enable()
	m.SetTracer(tr)
	m.Attach(0, workload.NewStream(cxlr, 2, 0.2, 1))
	m.Attach(1, workload.NewStream(cxlr, 2, 0.1, 2))
	m.Attach(2, workload.NewStream(local, 2, 0, 3))
	m.Attach(3, workload.NewStream(cxlr, 2, 0.3, 4))
	m.Run(300_000)
	m.Sync()

	if ws := m.WindowStats(); ws.Windows != 0 {
		t.Fatalf("enabled tracer under SetLanes(2) opened %d parallel windows", ws.Windows)
	}
	recs := tr.Records()
	if len(recs) == 0 {
		t.Fatal("no records traced")
	}
	for i := range recs {
		r := &recs[i]
		byStage := stageSpans(r)
		if len(byStage[obs.StageReq]) > 1 {
			t.Fatalf("record %d has %d req spans", r.ID, len(byStage[obs.StageReq]))
		}
		// One device visit max: extra media/IMC spans could only come from
		// prefetch or cross-core traffic filed into a stale record.
		if len(byStage[obs.StageCXLMedia]) > 1 {
			t.Fatalf("record %d has %d media spans (demand-seal breach)",
				r.ID, len(byStage[obs.StageCXLMedia]))
		}
		if len(byStage[obs.StageIMC]) > 1 {
			t.Fatalf("record %d has %d IMC spans (demand-seal breach)",
				r.ID, len(byStage[obs.StageIMC]))
		}
		if len(byStage[obs.StageCXLMedia]) > 0 && len(byStage[obs.StageIMC]) > 0 {
			t.Fatalf("record %d (loc %s) carries both IMC and CXL media spans", r.ID, r.Loc)
		}
		if r.Loc == SrvL1.String() || r.Loc == SrvL2.String() || r.Loc == SrvLFB.String() {
			if len(byStage[obs.StageCXLMedia]) != 0 || len(byStage[obs.StageIMC]) != 0 {
				t.Fatalf("cache-served record %d carries device spans: %+v", r.ID, r.Spans())
			}
		}
		// Spans nest inside the request envelope.
		if req, ok := byStage[obs.StageReq]; ok {
			for _, sp := range r.Spans() {
				if sp.Start < req[0].Start || sp.End > req[0].End {
					t.Fatalf("record %d: span %+v escapes request envelope %+v", r.ID, sp, req[0])
				}
			}
		}
	}
}

func TestTracerDisabledRecordsNothing(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	m := New(smallConfig(), as)
	tr := obs.NewTracer(64, 1) // attached but never enabled
	m.SetTracer(tr)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 128, 64, true)})
	m.Run(10_000_000)
	if got := tr.Records(); len(got) != 0 {
		t.Fatalf("disabled tracer committed %d records", len(got))
	}
}

// Tracing must not perturb simulated timing: PMU counters are identical
// with tracing off, sampled, and full-rate.
func TestTracerDoesNotPerturbTiming(t *testing.T) {
	run := func(every int) map[string]uint64 {
		as := testSpace(t)
		r, err := as.Alloc(1<<20, mem.Fixed(2))
		if err != nil {
			t.Fatal(err)
		}
		m := New(smallConfig(), as)
		if every > 0 {
			tr := obs.NewTracer(256, every)
			tr.Enable()
			m.SetTracer(tr)
		}
		ops := seqLoads(r.Base, 512, 64, true)
		for i := range ops {
			if i%3 == 0 {
				ops[i].Kind = workload.Store
			}
		}
		m.Attach(0, &opList{ops: ops})
		m.Run(20_000_000)
		m.Sync()
		out := make(map[string]uint64)
		for _, b := range m.Banks() {
			for ev, v := range b.Values() {
				if v != 0 {
					out[fmt.Sprintf("%s/%d", b.Name(), ev)] = v
				}
			}
		}
		return out
	}
	base := run(0)
	for _, every := range []int{1, 7} {
		got := run(every)
		if len(got) != len(base) {
			t.Fatalf("every=%d: %d nonzero counters vs %d untraced", every, len(got), len(base))
		}
		for k, v := range base {
			if got[k] != v {
				t.Fatalf("every=%d: counter %s = %d, untraced %d", every, k, got[k], v)
			}
		}
	}
}

package sim

import (
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

// opList is a finite generator over a fixed op slice (test helper).
type opList struct {
	ops []workload.Op
	i   int
}

func (g *opList) Next(op *workload.Op) bool {
	if g.i >= len(g.ops) {
		return false
	}
	*op = g.ops[g.i]
	g.i++
	return true
}

// loopGen replays a fixed op slice forever.
type loopGen struct {
	ops []workload.Op
	i   int
}

func (g *loopGen) Next(op *workload.Op) bool {
	*op = g.ops[g.i]
	g.i++
	if g.i == len(g.ops) {
		g.i = 0
	}
	return true
}

func seqLoads(base uint64, n int, stride uint64, dep bool) []workload.Op {
	ops := make([]workload.Op, n)
	for i := range ops {
		ops[i] = workload.Op{Addr: base + uint64(i)*stride, Kind: workload.Load, Dep: dep, Think: 2}
	}
	return ops
}

func testSpace(t *testing.T) *mem.AddressSpace {
	t.Helper()
	return mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.RemoteDRAM, Socket: 1, Capacity: 8 << 30},
		{ID: 2, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
	})
}

func smallConfig() Config {
	c := SPR()
	c.Cores = 4
	c.LLCSlices = 8
	c.LLCSize = 4 << 20
	return c
}

// --- Engine ---------------------------------------------------------------

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func(Cycles) { got = append(got, 3) })
	e.Schedule(10, func(Cycles) { got = append(got, 1) })
	e.Schedule(20, func(Cycles) { got = append(got, 2) })
	e.Schedule(10, func(Cycles) { got = append(got, 11) }) // same time: FIFO by seq
	e.RunUntil(25)
	if len(got) != 3 || got[0] != 1 || got[1] != 11 || got[2] != 2 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %d", e.Now())
	}
	e.RunUntil(100)
	if len(got) != 4 || got[3] != 3 {
		t.Fatalf("after second run: %v", got)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Cycles
	e.Schedule(5, func(now Cycles) {
		fired = append(fired, now)
		e.Schedule(now+5, func(n2 Cycles) { fired = append(fired, n2) })
	})
	e.RunUntil(20)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEnginePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e := NewEngine()
	e.Schedule(10, func(Cycles) {})
	e.RunUntil(10)
	e.Schedule(5, func(Cycles) {})
}

// --- Cache ----------------------------------------------------------------

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4096, 4) // 16 sets
	if c.Lookup(0) != nil {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0, Exclusive)
	ln := c.Lookup(0)
	if ln == nil || ln.State != Exclusive {
		t.Fatal("inserted line not found")
	}
	if c.HasVictim {
		t.Fatal("victim from empty set")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2*64, 2) // 1 set, 2 ways
	c.Insert(0x000, Exclusive)
	c.Insert(0x040, Exclusive)
	c.Lookup(0x000) // make 0x40 the LRU
	c.Insert(0x080, Modified)
	if !c.HasVictim || c.Victim.Tag != 0x040 {
		t.Fatalf("victim = %+v (HasVictim=%v)", c.Victim, c.HasVictim)
	}
	if c.Lookup(0x000) == nil || c.Lookup(0x080) == nil || c.Peek(0x040) != nil {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestCacheInsertInPlace(t *testing.T) {
	c := NewCache(4096, 4)
	c.Insert(0x100, Shared)
	c.Insert(0x100, Modified)
	if c.HasVictim {
		t.Fatal("in-place update produced a victim")
	}
	if c.Occupied() != 1 {
		t.Fatalf("occupied = %d", c.Occupied())
	}
	if c.Peek(0x100).State != Modified {
		t.Fatal("state not updated")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(4096, 4)
	c.Insert(0x200, Modified)
	st, ok := c.Invalidate(0x200)
	if !ok || st != Modified {
		t.Fatalf("Invalidate = %v, %v", st, ok)
	}
	if _, ok := c.Invalidate(0x200); ok {
		t.Fatal("double invalidate succeeded")
	}
}

func TestCacheSetsPowerOfTwo(t *testing.T) {
	c := NewCache(48<<10, 12) // 48 KB / 12 ways = 64 sets
	if c.Sets() != 64 {
		t.Fatalf("Sets = %d, want 64", c.Sets())
	}
	if c.Ways() != 12 {
		t.Fatalf("Ways = %d", c.Ways())
	}
}

// --- server / boundedQueue --------------------------------------------------

func TestServerFCFS(t *testing.T) {
	s := server{service: 10}
	if got := s.acquire(100); got != 100 {
		t.Fatalf("first acquire = %d", got)
	}
	if got := s.acquire(100); got != 110 {
		t.Fatalf("second acquire = %d", got)
	}
	if got := s.acquire(200); got != 200 {
		t.Fatalf("idle acquire = %d", got)
	}
}

func TestBoundedQueueAdmission(t *testing.T) {
	q := newBoundedQueue(2)
	if got := q.admit(10); got != 10 {
		t.Fatalf("admit into empty = %d", got)
	}
	q.commit(50)
	if got := q.admit(11); got != 11 {
		t.Fatalf("second admit = %d", got)
	}
	q.commit(60)
	// Third admission must wait for the first departure (50).
	if got := q.admit(12); got != 50 {
		t.Fatalf("third admit = %d, want 50", got)
	}
	q.commit(70)
	if got := q.admit(55); got != 60 {
		t.Fatalf("fourth admit = %d, want 60", got)
	}
}

func TestBoundedQueueUnbounded(t *testing.T) {
	q := newBoundedQueue(0)
	if got := q.admit(7); got != 7 {
		t.Fatalf("unbounded admit = %d", got)
	}
	q.commit(100) // must not panic
}

// --- Prefetcher -------------------------------------------------------------

func TestPrefetcherTrainsOnStride(t *testing.T) {
	p := newPrefetcher(2, 8, 2)
	var out []uint64
	out = p.train(0x0000, out[:0])
	out = p.train(0x0040, out[:0])
	if len(out) != 0 {
		t.Fatalf("prefetched before confidence: %v", out)
	}
	out = p.train(0x0080, out[:0])
	if len(out) != 2 || out[0] != 0x00c0 || out[1] != 0x0100 {
		t.Fatalf("prefetch candidates = %#v", out)
	}
}

func TestPrefetcherPageBound(t *testing.T) {
	p := newPrefetcher(4, 8, 1)
	var out []uint64
	p.train(0xf80, out[:0])
	out = p.train(0xfc0, out[:0])
	// Next lines 0x1000.. cross the 4 KiB page: nothing emitted.
	if len(out) != 0 {
		t.Fatalf("crossed page: %#v", out)
	}
}

func TestPrefetcherMultiStream(t *testing.T) {
	p := newPrefetcher(1, 8, 1)
	var out []uint64
	// Two interleaved streams in different pages.
	p.train(0x0000, out[:0])
	p.train(0x10000, out[:0])
	out = p.train(0x0040, out[:0])
	if len(out) != 1 || out[0] != 0x0080 {
		t.Fatalf("stream A candidates = %#v", out)
	}
	out = p.train(0x10040, out[:0])
	if len(out) != 1 || out[0] != 0x10080 {
		t.Fatalf("stream B candidates = %#v", out)
	}
}

// --- Machine integration ----------------------------------------------------

func TestMachineLocalLoads(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	m := New(smallConfig(), as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 4096, 64, false)})
	m.Run(3_000_000)
	m.Sync()

	b := m.Core(0).Bank()
	loads := b.Read(pmu.MemInstAllLoads)
	if loads != 4096 {
		t.Fatalf("loads = %d, want 4096", loads)
	}
	hits := b.Read(pmu.MemLoadL1Hit)
	misses := b.Read(pmu.MemLoadL1Miss)
	if hits+misses != loads {
		t.Fatalf("L1 hit(%d)+miss(%d) != loads(%d)", hits, misses, loads)
	}
	if misses == 0 {
		t.Fatal("sequential 64B-stride loads over 256 KiB produced no L1 misses")
	}
	// Local traffic must reach the IMC, not the CXL port.
	var cas, cxlIns uint64
	for i := 0; i < m.Config().DRAMChannels; i++ {
		cas += m.Bank("imc" + string(rune('0'+i))).Read(pmu.CASCountRd)
	}
	cxlIns = m.Bank("cxl0").Read(pmu.CXLRxPackBufInsertsReq)
	if cas == 0 {
		t.Fatal("no DRAM CAS commands for local working set")
	}
	if cxlIns != 0 {
		t.Fatalf("CXL device saw %d requests for a local working set", cxlIns)
	}
}

func TestMachineCXLLoads(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	m := New(smallConfig(), as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 4096, 64, false)})
	m.Run(10_000_000)
	m.Sync()

	if got := m.Bank("cxl0").Read(pmu.CXLRxPackBufInsertsReq); got == 0 {
		t.Fatal("no CXL M2S requests for a CXL working set")
	}
	if got := m.Bank("m2pcie0").Read(pmu.M2PTxInsertsBL); got == 0 {
		t.Fatal("no CXL data responses at the M2PCIe egress")
	}
	// The IMC read path must stay cold (paper Fig. 4-a: CXL bypasses IMC).
	for i := 0; i < m.Config().DRAMChannels; i++ {
		if cas := m.Bank("imc" + string(rune('0'+i))).Read(pmu.CASCountRd); cas != 0 {
			t.Fatalf("imc%d saw %d read CAS for a CXL-only stream", i, cas)
		}
	}
}

// avgLoadLatency runs n dependent pointer-stride loads over the region and
// returns the average retired-load latency in cycles.
func avgLoadLatency(t *testing.T, as *mem.AddressSpace, base uint64, span uint64) float64 {
	t.Helper()
	cfg := smallConfig()
	cfg.L1PFDegree = 0 // latency measurement: no prefetching
	cfg.L2PFDegree = 0
	m := New(cfg, as)
	// Large stride dependent loads: mostly cache misses.
	n := 2000
	ops := make([]workload.Op, n)
	addr := base
	for i := range ops {
		ops[i] = workload.Op{Addr: addr, Kind: workload.Load, Dep: true, Think: 1}
		addr += 4096 + 64 // new page and set each access
		if addr >= base+span-4096 {
			addr = base + uint64(i%7)*128
		}
	}
	m.Attach(0, &opList{ops: ops})
	m.Run(100_000_000)
	m.Sync()
	b := m.Core(0).Bank()
	lat := b.Read(pmu.MemTransLoadLatency)
	cnt := b.Read(pmu.MemTransLoadCount)
	if cnt == 0 {
		t.Fatal("no loads retired")
	}
	return float64(lat) / float64(cnt)
}

func TestLatencyOrdering(t *testing.T) {
	as := testSpace(t)
	local, err := as.Alloc(64<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := as.Alloc(64<<20, mem.Fixed(1))
	if err != nil {
		t.Fatal(err)
	}
	cxl, err := as.Alloc(64<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	lLocal := avgLoadLatency(t, as, local.Base, local.Size)
	lRemote := avgLoadLatency(t, as, remote.Base, remote.Size)
	lCXL := avgLoadLatency(t, as, cxl.Base, cxl.Size)
	if !(lLocal < lRemote && lRemote < lCXL) {
		t.Fatalf("latency ordering violated: local=%.0f remote=%.0f cxl=%.0f", lLocal, lRemote, lCXL)
	}
	// The paper's §2.3: CXL ~3.4x local latency.  Accept a broad band.
	ratio := lCXL / lLocal
	if ratio < 2 || ratio > 6 {
		t.Fatalf("CXL/local latency ratio = %.2f, want within [2, 6]", ratio)
	}
}

func TestStoreBufferStalls(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(32<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.SBEntries = 8
	m := New(cfg, as)
	// Write-only stream of misses: every store needs a CXL RFO.
	n := 4000
	ops := make([]workload.Op, n)
	for i := range ops {
		ops[i] = workload.Op{Addr: r.Base + uint64(i)*4096, Kind: workload.Store, Think: 1}
	}
	m.Attach(0, &opList{ops: ops})
	m.Run(200_000_000)
	m.Sync()
	b := m.Core(0).Bank()
	sb := b.Read(pmu.ResourceStallsSB) + b.Read(pmu.ExeBoundOnStores)
	if sb == 0 {
		t.Fatal("write-only CXL stream produced no SB-full stalls")
	}
	if b.Read(pmu.MemInstAllStores) != uint64(n) {
		t.Fatalf("stores = %d", b.Read(pmu.MemInstAllStores))
	}
	// Stores reach the CXL device as M2S RwD writebacks eventually; at
	// minimum, RFOs reach it as reads.
	if m.Bank("cxl0").Read(pmu.CXLRxPackBufInsertsReq) == 0 {
		t.Fatal("no CXL traffic from store stream")
	}
}

func TestHWPrefetchCounters(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(8<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	m := New(smallConfig(), as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 8192, 64, false)})
	m.Run(20_000_000)
	m.Sync()
	b := m.Core(0).Bank()
	if got := b.Read(pmu.OCRL1DHWPF[pmu.ScnAny]); got == 0 {
		t.Fatal("sequential stream triggered no L1 hardware prefetches")
	}
	if got := b.Read(pmu.L2HWPFHit) + b.Read(pmu.L2HWPFMiss); got == 0 {
		t.Fatal("no L2 prefetch activity")
	}
}

func TestSWPrefetchCounters(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	m := New(cfg, as)
	ops := make([]workload.Op, 0, 500)
	for i := 0; i < 250; i++ {
		a := r.Base + uint64(i)*4096
		ops = append(ops,
			workload.Op{Addr: a, Kind: workload.Prefetch, Think: 1},
			workload.Op{Addr: a, Kind: workload.Load, Dep: true, Think: 40},
		)
	}
	m.Attach(0, &opList{ops: ops})
	m.Run(50_000_000)
	m.Sync()
	b := m.Core(0).Bank()
	if got := b.Read(pmu.SWPrefetchT0); got != 250 {
		t.Fatalf("sw_prefetch_access.t0 = %d, want 250", got)
	}
	// Prefetch-then-load should produce LFB merge hits or L1 hits.
	if b.Read(pmu.MemLoadFBHit)+b.Read(pmu.MemLoadL1Hit) == 0 {
		t.Fatal("software prefetches never helped a load")
	}
}

func TestTORConservation(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(16<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	m := New(smallConfig(), as)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 4096, 4096, true)})
	m.Run(100_000_000)
	m.Sync()
	var all, hit, miss uint64
	for i := 0; i < m.Config().LLCSlices; i++ {
		b := m.Bank("cha" + string(rune('0'+i)))
		all += b.Read(pmu.TORInsertsIADRd[pmu.ScnAny])
		hit += b.Read(pmu.TORInsertsIADRd[pmu.ScnHit])
		miss += b.Read(pmu.TORInsertsIADRd[pmu.ScnMiss])
	}
	if all == 0 {
		t.Fatal("no TOR DRd inserts")
	}
	if hit+miss != all {
		t.Fatalf("TOR conservation: hit(%d)+miss(%d) != all(%d)", hit, miss, all)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		as := testSpace(t)
		r, _ := as.Alloc(4<<20, mem.Interleave{A: 0, B: 2, RatioA: 1, RatioB: 1})
		m := New(smallConfig(), as)
		ops := seqLoads(r.Base, 2048, 192, false)
		for i := range ops {
			if i%3 == 0 {
				ops[i].Kind = workload.Store
			}
		}
		m.Attach(0, &opList{ops: ops})
		m.Attach(1, &opList{ops: seqLoads(r.Base+1<<20, 2048, 64, true)})
		m.Run(30_000_000)
		m.Sync()
		var out []uint64
		for _, b := range m.Banks() {
			out = append(out, b.Values()...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("bank shapes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at value %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestAttachDetach(t *testing.T) {
	as := testSpace(t)
	r, _ := as.Alloc(1<<20, mem.Fixed(0))
	m := New(smallConfig(), as)
	m.Attach(0, &loopGen{ops: seqLoads(r.Base, 64, 64, false)})
	m.Run(10_000)
	if !m.Core(0).Running() {
		t.Fatal("core not running after Attach")
	}
	m.Detach(0)
	m.Sync()
	before := m.Core(0).Bank().Read(pmu.MemInstAllLoads)
	m.Run(100_000)
	m.Sync()
	after := m.Core(0).Bank().Read(pmu.MemInstAllLoads)
	if after != before {
		t.Fatalf("detached core kept issuing: %d -> %d", before, after)
	}
}

func TestConfigValidatePanics(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.LLCSlices = 3; c.SNCClusters = 2 },
		func(c *Config) { c.LFBEntries = 0 },
		func(c *Config) { c.DRAMChannels = 0 },
		func(c *Config) { c.GHz = 0 },
	}
	for i, mut := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config did not panic", i)
				}
			}()
			cfg := SPR()
			mut(&cfg)
			New(cfg, testSpace(t))
		}()
	}
}

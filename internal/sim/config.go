package sim

import "pathfinder/internal/cxl"

// Config describes a simulated machine.  The two stock configurations,
// SPR and EMR, are calibrated against the paper's testbeds (§5.1) and its
// Intel-MLC measurements (§2.3): local DDR5 ≈ 103 ns / 131 GB/s,
// cross-socket ≈ 164 ns / 94 GB/s, CXL ≈ 355 ns / 17.6 GB/s.
type Config struct {
	Name    string
	Cores   int
	Sockets int     // modeled sockets (workloads run on socket 0)
	GHz     float64 // core clock; cycles are counted at this clock

	// Cache geometry.  Sizes in bytes, line size mem.LineSize.
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	LLCSize, LLCWays int
	LLCSlices        int
	SNCClusters      int // sub-NUMA clusters per socket (slices split evenly)

	// Core queue structures.
	LFBEntries int // line fill buffer (bounds demand-miss MLP)
	SBEntries  int // store buffer
	SQEntries  int // super queue (L2 -> uncore)

	// Load-to-use latencies in cycles (idle, cumulative segments).
	L1Lat     Cycles // L1D hit
	L2Lat     Cycles // additional to reach L2 data
	LLCLat    Cycles // additional to reach the home LLC slice
	SNCExtra  Cycles // additional when the home slice is in the distant cluster
	SnoopLat  Cycles // additional to pull a line from another core's private cache
	RemoteLLC Cycles // additional to reach the other socket's LLC
	MeshLat   Cycles // LLC slice -> memory-controller mesh traversal
	L1TagLat  Cycles // L1D tag lookup on a miss (PFAnalyzer's W_tag)
	L2TagLat  Cycles // L2 tag lookup on a miss
	LLCTagLat Cycles // LLC tag/directory lookup on a miss

	// Local DDR (per socket).
	DRAMChannels  int
	DRAMLat       Cycles  // CAS-to-data media latency
	DRAMChanGBs   float64 // per-channel bandwidth
	RPQEntries    int
	WPQEntries    int
	RemoteDRAMLat Cycles // additional cycles for the cross-socket hop
	RemoteDRAMGBs float64

	// CXL path.
	CXLDevices     int
	M2PLat         Cycles  // mesh -> M2PCIe ingress processing
	FlexBusLat     Cycles  // link one-way flit latency
	FlexBusGBs     float64 // link bandwidth (per direction)
	CXLCtrlLat     Cycles  // device controller command handling
	CXLMediaLat    Cycles  // device media access
	CXLMediaGBs    float64 // device media bandwidth
	PackBufEntries int     // ingress packing buffer entries (req and data each)
	CXLRPQEntries  int
	CXLWPQEntries  int

	// Link reliability.  LinkRetryBufEntries bounds the flits a direction
	// may have in flight awaiting ack (the LRSM retry buffer); Faults, when
	// non-nil, injects the configured deterministic fault schedule into
	// every CXL port.  A nil plan is a healthy link with zero overhead.
	LinkRetryBufEntries int
	Faults              *cxl.FaultPlan

	// Hardware prefetchers.
	L1PFDegree    int // lines issued per training event (0 disables)
	L1PFDistance  int // max lines the L1 stream head runs ahead
	L2PFDegree    int
	L2PFDistance  int
	PFTrainHits   int // sequential-stride observations before streaming
	PFMaxInFlight int // outstanding prefetches per core

	// SB drain bandwidth: minimum cycles between store retirements when
	// draining to an already-owned line.
	SBDrainCycles Cycles
}

// nsToCycles converts nanoseconds to cycles at the configured clock.
func (c *Config) nsToCycles(ns float64) Cycles {
	return Cycles(ns * c.GHz)
}

// serviceCycles returns the per-line service time of a resource with the
// given bandwidth in GB/s: the (fractional) cycles to transfer one 64-byte
// line.
func (c *Config) serviceCycles(gbs float64) float64 {
	if gbs <= 0 {
		return 0
	}
	return 64.0 / gbs * c.GHz // GB/s == B/ns
}

// SPR returns the Sapphire Rapids testbed configuration: dual-socket Xeon
// Gold 6438Y+ (32 cores at 2.0 GHz, 48 KB L1D, 2 MB L2, 60 MB LLC, SNC on)
// with an Agilex-based 16 GB DDR4 CXL Type-3 device.
func SPR() Config {
	return Config{
		Name:    "spr",
		Cores:   32,
		Sockets: 2,
		GHz:     2.0,

		L1DSize: 48 << 10, L1DWays: 12,
		L2Size: 2 << 20, L2Ways: 16,
		LLCSize: 60 << 20, LLCWays: 12,
		LLCSlices:   32,
		SNCClusters: 2,

		LFBEntries: 16,
		SBEntries:  56,
		SQEntries:  32,

		L1Lat:     5,
		L2Lat:     14,
		LLCLat:    33,
		SNCExtra:  14,
		SnoopLat:  28,
		RemoteLLC: 90,
		MeshLat:   18,
		L1TagLat:  4,
		L2TagLat:  10,
		LLCTagLat: 12,

		DRAMChannels:  8,
		DRAMLat:       126, // calibrated: idle local load-to-use ~103 ns
		DRAMChanGBs:   16.4,
		RPQEntries:    64,
		WPQEntries:    64,
		RemoteDRAMLat: 61, // calibrated: cross-socket ~164 ns
		RemoteDRAMGBs: 94.4,

		CXLDevices:     1,
		M2PLat:         24,
		FlexBusLat:     120, // one-way; two crossings per access
		FlexBusGBs:     32,
		CXLCtrlLat:     140,  // FPGA-based device controller is slow
		CXLMediaLat:    202,  // calibrated: CXL load-to-use ~355 ns
		CXLMediaGBs:    17.8, // media ceiling; delivered ~17.6 under queueing
		PackBufEntries: 48,
		CXLRPQEntries:  48,
		CXLWPQEntries:  48,

		LinkRetryBufEntries: 32,

		L1PFDegree:    2,
		L1PFDistance:  10,
		L2PFDegree:    4,
		L2PFDistance:  40,
		PFTrainHits:   2,
		PFMaxInFlight: 48,

		SBDrainCycles: 2,
	}
}

// EMR returns the Emerald Rapids testbed configuration: dual-socket Xeon
// Gold 6530 (32 cores, 160 MB LLC) with Micron CZ120 CXL DIMMs.  The larger
// LLC is the paper's explanation for EMR's smaller stall increases (§3.6);
// the CZ120 ASIC controller is faster than the SPR testbed's FPGA device.
func EMR() Config {
	c := SPR()
	c.Name = "emr"
	c.LLCSize = 160 << 20
	c.LLCWays = 16
	c.DRAMChanGBs = 17.5
	c.CXLCtrlLat = 60
	c.CXLMediaLat = 110
	c.CXLMediaGBs = 28
	return c
}

// Validate checks configuration invariants, returning a descriptive panic
// on first use rather than corrupting a run; it is called by New.
func (c *Config) validate() {
	switch {
	case c.Cores <= 0:
		panic("sim: config needs at least one core")
	case c.LLCSlices <= 0 || c.LLCSlices%max(1, c.SNCClusters) != 0:
		panic("sim: LLC slices must divide evenly into SNC clusters")
	case c.LFBEntries <= 0 || c.SBEntries <= 0:
		panic("sim: LFB and SB must have entries")
	case c.DRAMChannels <= 0:
		panic("sim: need at least one DRAM channel")
	case c.GHz <= 0:
		panic("sim: clock must be positive")
	}
	if err := c.Faults.Validate(); err != nil {
		panic("sim: " + err.Error())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package sim

import (
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

// TestMultiDeviceRouting exercises a pooled configuration with two CXL
// Type-3 devices: traffic routes by page placement, and each device's
// counters see only its own flows.
func TestMultiDeviceRouting(t *testing.T) {
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
		{ID: 2, Kind: mem.CXLDRAM, Device: 1, Capacity: 8 << 30},
	})
	r0, _ := as.Alloc(4<<20, mem.Fixed(1))
	r1, _ := as.Alloc(4<<20, mem.Fixed(2))
	cfg := smallConfig()
	cfg.CXLDevices = 2
	m := New(cfg, as)

	m.Attach(0, &opList{ops: seqLoads(r0.Base, 2048, 64, false)})
	m.Attach(1, &opList{ops: seqLoads(r1.Base, 2048, 64, false)})
	m.Run(30_000_000)
	m.Sync()

	d0 := m.Bank("cxl0").Read(pmu.CXLRxPackBufInsertsReq)
	d1 := m.Bank("cxl1").Read(pmu.CXLRxPackBufInsertsReq)
	if d0 == 0 || d1 == 0 {
		t.Fatalf("device traffic: d0=%d d1=%d", d0, d1)
	}
	// Both ports report their own M2PCIe traffic.
	if m.Bank("m2pcie0").Read(pmu.M2PTxInsertsBL) == 0 ||
		m.Bank("m2pcie1").Read(pmu.M2PTxInsertsBL) == 0 {
		t.Fatal("per-port M2PCIe counters missing traffic")
	}
	// Rough symmetry: identical workloads on identical devices.
	ratio := float64(d0) / float64(d1)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("device load asymmetric: %d vs %d", d0, d1)
	}
}

// TestMultiDeviceIsolation verifies that saturating one device leaves the
// other's latency unaffected (independent queues and links).
func TestMultiDeviceIsolation(t *testing.T) {
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
		{ID: 2, Kind: mem.CXLDRAM, Device: 1, Capacity: 8 << 30},
	})
	victim, _ := as.Alloc(8<<20, mem.Fixed(2))
	cfg := smallConfig()
	cfg.CXLDevices = 2
	m := New(cfg, as)

	// Saturate device 0 from three cores.
	for c := 0; c < 3; c++ {
		r, _ := as.Alloc(8<<20, mem.Fixed(1))
		m.Attach(c, workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 0, 0, uint64(c+1)))
	}
	// A latency-sensitive chase on device 1.
	m.Attach(3, workload.NewPointerChase(workload.Region{Base: victim.Base, Size: victim.Size}, 1, 9))
	m.Run(6_000_000)
	m.Sync()

	b := m.Core(3).Bank()
	lat := float64(b.Read(pmu.MemTransLoadLatency)) / float64(b.Read(pmu.MemTransLoadCount))
	// Idle CXL load-to-use is ~710 cycles; cross-device interference would
	// push this far higher.
	if lat > 900 {
		t.Fatalf("victim latency %f cycles despite independent device", lat)
	}
	if m.DevLoad(1).String() == "" {
		t.Fatal("device 1 QoS class unavailable")
	}
}

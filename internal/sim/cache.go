package sim

import (
	"fmt"

	"pathfinder/internal/mem"
)

// State is a MESIF coherence state.
type State uint8

// Coherence states of the Intel-style MESIF protocol (§2.2).
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	Forward
)

// String returns the single-letter state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Forward:
		return "F"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Line is one cache line's bookkeeping: tag, coherence state, an LRU stamp,
// and — in the LLC, which doubles as the snoop filter — a presence bitmap of
// cores holding a private copy.
type Line struct {
	Tag      uint64 // line address (full address, line aligned)
	State    State
	Presence uint64 // cores with a private copy (LLC/SF only)
	stamp    uint64
}

// Cache is a set-associative, write-back cache over line-granular tags.
// It is purely functional (no timing): the machine composes timing around
// lookups and fills.
type Cache struct {
	ways    int
	setMask uint64
	lines   []Line // sets * ways, set-major
	stamp   uint64

	// mru is the per-set way predictor: the way of the last hit (or
	// insert) in each set.  Hit-dominated lookups check it before
	// scanning the ways — temporal reuse makes it right most of the
	// time, turning the common hit into a single tag compare.
	mru []uint8

	// Victim carries eviction results out of Insert without allocating.
	Victim    Line
	HasVictim bool
}

// NewCache builds a cache of the given total size in bytes and
// associativity.  The set count is forced to a power of two (sizes round
// down), matching hardware indexing.
func NewCache(size, ways int) *Cache {
	if size <= 0 || ways <= 0 {
		panic("sim: cache needs positive size and ways")
	}
	sets := size / (mem.LineSize * ways)
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	if ways > 256 {
		panic("sim: cache associativity above 256 breaks the way predictor")
	}
	return &Cache{
		ways:    ways,
		setMask: uint64(sets - 1),
		lines:   make([]Line, sets*ways),
		mru:     make([]uint8, sets),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.lines) / c.ways }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// setIdx returns the set index of line address la.
func (c *Cache) setIdx(la uint64) uint64 {
	return (la >> mem.LineShift) & c.setMask
}

// setOf returns the slice of ways for the set containing line address la.
func (c *Cache) setOf(la uint64) []Line {
	base := int(c.setIdx(la)) * c.ways
	return c.lines[base : base+c.ways]
}

// Lookup returns the line holding la, bumping its LRU recency, or nil on
// miss.  la must be line aligned.  The predicted (last-hit) way is probed
// first, so lookups with temporal reuse cost one tag compare instead of a
// scan of every way.
func (c *Cache) Lookup(la uint64) *Line {
	si := c.setIdx(la)
	base := int(si) * c.ways
	if l := &c.lines[base+int(c.mru[si])]; l.State != Invalid && l.Tag == la {
		c.stamp++
		l.stamp = c.stamp
		return l
	}
	set := c.lines[base : base+c.ways]
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == la {
			c.stamp++
			set[i].stamp = c.stamp
			c.mru[si] = uint8(i)
			return &set[i]
		}
	}
	return nil
}

// Peek returns the line holding la without touching recency, or nil.  The
// predicted way is probed first; the predictor itself is left untouched
// (Peek models snoops and presence checks, not demand reuse).
func (c *Cache) Peek(la uint64) *Line {
	si := c.setIdx(la)
	base := int(si) * c.ways
	if l := &c.lines[base+int(c.mru[si])]; l.State != Invalid && l.Tag == la {
		return l
	}
	set := c.lines[base : base+c.ways]
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == la {
			return &set[i]
		}
	}
	return nil
}

// Insert places la with the given state, evicting the LRU way if the set is
// full.  The evicted line, if any, is exposed via Victim/HasVictim (valid
// until the next Insert).  Inserting an already-present line updates its
// state in place.  It returns the inserted line.
func (c *Cache) Insert(la uint64, st State) *Line {
	c.HasVictim = false
	si := c.setIdx(la)
	set := c.lines[int(si)*c.ways : int(si+1)*c.ways]
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == la {
			set[i].State = st
			c.stamp++
			set[i].stamp = c.stamp
			c.mru[si] = uint8(i)
			return &set[i]
		}
	}
	// Miss: evict the first invalid way, else the least recently used.
	vi := -1
	for i := range set {
		w := &set[i]
		if w.State == Invalid {
			vi = i
			break
		}
		if vi < 0 || w.stamp < set[vi].stamp {
			vi = i
		}
	}
	victim := &set[vi]
	if victim.State != Invalid {
		c.Victim = *victim
		c.HasVictim = true
	}
	c.stamp++
	*victim = Line{Tag: la, State: st, stamp: c.stamp}
	c.mru[si] = uint8(vi)
	return victim
}

// Invalidate removes la, returning its previous state and whether it was
// present.
func (c *Cache) Invalidate(la uint64) (State, bool) {
	set := c.setOf(la)
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == la {
			st := set[i].State
			set[i] = Line{}
			return st, true
		}
	}
	return Invalid, false
}

// Occupied counts valid lines (test and introspection helper).
func (c *Cache) Occupied() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			n++
		}
	}
	return n
}

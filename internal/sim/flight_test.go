package sim

import (
	"fmt"
	"testing"

	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/workload"
)

// flightRun drives n dependent loads (every third op a store) over the
// node at fix with an enabled flight recorder attached.
func flightRun(t *testing.T, cfg Config, fix mem.NodeID, n int) (*Machine, *obs.Flight) {
	t.Helper()
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(fix))
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg, as)
	f := obs.NewFlight(cfg.Cores, 1024, 64)
	f.Enable()
	m.SetFlight(f)
	ops := seqLoads(r.Base, n, 64, true)
	for i := range ops {
		if i%3 == 0 {
			ops[i].Kind = workload.Store
		}
	}
	m.Attach(0, &opList{ops: ops})
	m.Run(50_000_000)
	m.Sync()
	return m, f
}

func TestFlightRecordsCompletions(t *testing.T) {
	cfg := smallConfig()
	cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	_, f := flightRun(t, cfg, 2, 256)

	// Every demand op completes exactly once; prefetchers are off, so the
	// record count is the op count.
	if got := f.RecordsTotal(); got != 256 {
		t.Fatalf("recorded %d requests, want 256", got)
	}
	if f.Seen(obs.FlightLoad) == 0 || f.Seen(obs.FlightStore) == 0 {
		t.Fatalf("class split lost: loads=%d stores=%d",
			f.Seen(obs.FlightLoad), f.Seen(obs.FlightStore))
	}
	if f.Seen(obs.FlightLoad)+f.Seen(obs.FlightStore) != 256 {
		t.Fatalf("classes sum to %d, want 256",
			f.Seen(obs.FlightLoad)+f.Seen(obs.FlightStore))
	}

	sawCXL := false
	for _, r := range f.CoreRecords(0) {
		if r.Done <= r.Issue {
			t.Fatalf("record %+v has non-positive latency", r)
		}
		lat := r.Latency()
		// Stage deltas are offsets from issue and must stay ordered and
		// inside the request envelope when present.
		if r.TOREnter > 0 && r.L2Start > 0 && r.TOREnter < r.L2Start {
			t.Fatalf("record %+v: TOR before L2", r)
		}
		if r.MemEnter > 0 && r.TOREnter > 0 && r.MemEnter < r.TOREnter {
			t.Fatalf("record %+v: mem entry before TOR", r)
		}
		if uint64(r.MemEnter) > lat {
			t.Fatalf("record %+v: mem entry beyond completion", r)
		}
		if ServeLoc(r.Loc) == SrvCXL {
			sawCXL = true
			if r.MemEnter == 0 {
				t.Fatalf("CXL-served record %+v never entered the memory path", r)
			}
		}
	}
	if !sawCXL {
		t.Fatal("no CXL-served records captured")
	}
}

func TestFlightDisabledRecordsNothing(t *testing.T) {
	as := testSpace(t)
	r, err := as.Alloc(1<<20, mem.Fixed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	m := New(cfg, as)
	f := obs.NewFlight(cfg.Cores, 64, 8) // attached but never enabled
	m.SetFlight(f)
	m.Attach(0, &opList{ops: seqLoads(r.Base, 128, 64, true)})
	m.Run(10_000_000)
	m.Sync()
	if got := f.RecordsTotal(); got != 0 {
		t.Fatalf("disabled recorder filed %d records", got)
	}
}

func TestFlightUndersizedPanics(t *testing.T) {
	as := testSpace(t)
	m := New(smallConfig(), as) // 4 cores
	defer func() {
		if recover() == nil {
			t.Fatal("attaching a 1-core recorder to a 4-core machine did not panic")
		}
	}()
	m.SetFlight(obs.NewFlight(1, 64, 8))
}

// The flight recorder must be timing-neutral: every PMU counter identical
// with the recorder detached, attached-disabled, and attached-enabled —
// across the dispatch-only engine, the sequential sweep, and parallel
// window lanes.  Unlike the tracer, an enabled recorder must NOT force the
// scheduler out of parallel windows.
func TestFlightDoesNotPerturbTiming(t *testing.T) {
	run := func(lanes int, flight bool) ([]uint64, uint64) {
		m, local, cxlr := windowRig(t)
		if lanes < 0 {
			m.SetRunAhead(false)
		} else {
			m.SetLanes(lanes)
		}
		var f *obs.Flight
		if flight {
			f = obs.NewFlight(m.Cores(), 512, 32)
			f.Enable()
			m.SetFlight(f)
		}
		m.Attach(0, workload.NewStream(local, 2, 0.2, 1))
		m.Attach(1, workload.NewStream(cxlr, 2, 0.3, 2))
		m.Attach(2, workload.NewPointerChase(cxlr, 2, 3))
		m.Attach(3, workload.NewStream(local, 1, 0.1, 4))
		m.Run(300_000)
		m.Sync()
		var recs uint64
		if f != nil {
			recs = f.RecordsTotal()
		}
		return bankSums(m), recs
	}

	base, _ := run(-1, false)
	var recCounts []uint64
	for _, tc := range []struct {
		lanes  int
		flight bool
	}{{-1, true}, {1, true}, {2, true}, {1, false}, {2, false}} {
		sums, recs := run(tc.lanes, tc.flight)
		sameSums(t, fmt.Sprintf("lanes=%d flight=%v", tc.lanes, tc.flight), sums, base)
		if tc.flight {
			if recs == 0 {
				t.Fatalf("lanes=%d: enabled recorder saw nothing", tc.lanes)
			}
			recCounts = append(recCounts, recs)
		}
	}
	// Identical timing means identical completion counts in every lane mode.
	for i := 1; i < len(recCounts); i++ {
		if recCounts[i] != recCounts[0] {
			t.Fatalf("record counts diverge across lane modes: %v", recCounts)
		}
	}
}

// An enabled flight recorder keeps parallel windows open (only the tracer
// forces the sequential sweep), and the deferred barrier path files the
// same per-core records the inline path does.
func TestFlightWindowLanesStayParallel(t *testing.T) {
	run := func(lanes int) (*Machine, *obs.Flight) {
		m, local, cxlr := windowRig(t)
		m.SetLanes(lanes)
		f := obs.NewFlight(m.Cores(), 4096, 64)
		f.Enable()
		m.SetFlight(f)
		m.Attach(0, workload.NewStream(local, 2, 0.2, 1))
		m.Attach(1, workload.NewStream(cxlr, 2, 0.2, 2))
		m.Attach(2, workload.NewStream(local, 2, 0, 3))
		m.Attach(3, workload.NewStream(cxlr, 2, 0.1, 4))
		m.Run(300_000)
		m.Sync()
		return m, f
	}

	mPar, fPar := run(2)
	if ws := mPar.WindowStats(); ws.Windows == 0 {
		t.Fatal("flight recorder suppressed parallel windows")
	}
	mSeq, fSeq := run(1)
	if ws := mSeq.WindowStats(); ws.Windows != 0 {
		t.Fatalf("sweep mode opened %d windows", ws.Windows)
	}

	// Per-core ring contents are identical across modes up to the shared
	// pipeline's sequence stamp: same completions, same stage deltas, same
	// per-core order.
	for c := 0; c < mPar.Cores(); c++ {
		a, b := fPar.CoreRecords(c), fSeq.CoreRecords(c)
		if len(a) != len(b) {
			t.Fatalf("core %d: %d records parallel vs %d sweep", c, len(a), len(b))
		}
		for i := range a {
			ra, rb := a[i], b[i]
			ra.Seq, rb.Seq = 0, 0
			if ra != rb {
				t.Fatalf("core %d record %d differs: parallel %+v vs sweep %+v", c, i, ra, rb)
			}
		}
	}
	if fPar.RecordsTotal() != fSeq.RecordsTotal() {
		t.Fatalf("record totals differ: %d vs %d", fPar.RecordsTotal(), fSeq.RecordsTotal())
	}
}

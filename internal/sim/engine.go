// Package sim is a discrete-event simulator of a CXL-equipped server: cores
// (with store buffer, line-fill buffer, and hardware prefetchers), a
// three-level cache hierarchy with a MESIF-like directory, CHA/LLC slices
// with a Table-of-Requests, the mesh, integrated memory controllers, the
// M2PCIe/FlexBus I/O path, and CXL Type-3 devices with ingress/egress
// packing buffers and a device-side memory controller.
//
// Every architectural module owns a pmu.Bank and increments the counters of
// the paper's Tables 1-4 as requests traverse it, so the profiler layers
// above observe the machine exactly the way PathFinder observes real
// hardware: through PMU reads only.
//
// Timing uses a functional-first, timing-annotated discrete-event model:
// cache state changes happen in issue order while queueing and bandwidth
// contention are modeled with per-resource next-free clocks and occupancy
// integrators, which yields cycle-granular counter semantics without
// per-cycle ticking.
package sim

import (
	"fmt"
	"math/bits"

	"pathfinder/internal/obs"
	"pathfinder/internal/pmu"
)

// Cycles is a point in simulated time, in core clock cycles.
type Cycles = uint64

// evKind selects the pre-bound payload an event dispatches to.  The hot
// schedule sites (core stepping, queue-occupancy edges, IMC and CXL
// completions) use dedicated kinds so scheduling allocates nothing; evFunc
// is the general closure fallback for cold paths and tests.
type evKind uint8

const (
	evFunc      evKind = iota // fn(now)
	evCoreStep                // target *Core: execute the next workload op
	evOcc                     // target *pmu.OccTracker: Update(now, aux)
	evBusyBegin               // target *pmu.BusyTracker
	evBusyEnd
	evPFDone  // target *Core: one hardware/software prefetch retired
	evBankInc // target *pmu.Bank: Inc(Event(aux))
	evBankAdd // target *pmu.Bank: Add(Event(aux), arg)
	evServe   // target *Core: retired-load/OCR serve counters, aux=class|loc
	evTOREnter
	evTORLeave // target *chaSlice: TOR insert/occupancy edges, aux=class|loc
	evWBInsert // target *chaSlice: writeback TOR inserts, aux=transition
	evIMCReadAdmit
	evIMCWriteAdmit // target *imcChannel: RPQ/WPQ insert + CAS counters
	evCXLArrive     // target *cxlPort: M2PCIe ingress insert
	evCXLReadDev
	evCXLReadRPQ
	evCXLReadData
	evCXLWriteDev
	evCXLWriteWPQ
	evCXLWriteDone // target *cxlPort: device-side read/write stages
	evCXLCRC       // target *cxlPort: link CRC error + replay, arg=bytes
)

// event is a scheduled action: either a pre-bound payload (kind != evFunc)
// or a callback.  target always holds a pointer, so boxing it in the
// interface never allocates.
type event struct {
	when   Cycles
	seq    uint64 // tie-breaker for deterministic ordering
	arg    uint64
	target any
	fn     func(now Cycles)
	aux    int32
	kind   evKind
}

// The near-horizon timing wheel: one slot per cycle for the next wheelSlots
// cycles.  The dominant event delays (cache latencies, queue residencies,
// DRAM/CXL media trips) are well under this horizon, so most events take
// the O(1) wheel path; only far-future events pay the O(log n) heap.
const (
	wheelBits  = 12
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64
)

// Engine is the discrete-event core: a timing wheel for near events and a
// flat binary min-heap (ordered by when, then seq) for far ones.
type Engine struct {
	now  Cycles
	seq  uint64
	mach *Machine // payload dispatch context (nil for bare engines)

	heap []event // far-horizon events, (when, seq)-ordered binary heap

	wheel    [][]event // wheelSlots buckets; a bucket holds one `when` only
	occupied [wheelWords]uint64
	wheelLen int
}

// NewEngine returns an engine at cycle zero.
func NewEngine() *Engine {
	return &Engine{wheel: make([][]event, wheelSlots)}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycles { return e.now }

// trace returns the machine's current traced request, or nil when no
// request is being traced or its memory-device stages are already sealed.
// Device modules (imcChannel, cxlPort) record through this so prefetches
// and victim writebacks issued while a record is current cannot pollute
// the demand request's waterfall.
func (e *Engine) trace() *obs.ReqRec {
	if e.mach == nil {
		return nil
	}
	r := e.mach.cur
	if r == nil || r.MemSealed() {
		return nil
	}
	return r
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) + e.wheelLen }

// Schedule runs fn at cycle when.  Scheduling in the past is a simulator
// bug and panics.
func (e *Engine) Schedule(when Cycles, fn func(now Cycles)) {
	e.checkPast(when)
	e.seq++
	e.push(event{when: when, seq: e.seq, kind: evFunc, fn: fn})
}

// After runs fn d cycles from now.
func (e *Engine) After(d Cycles, fn func(now Cycles)) {
	e.Schedule(e.now+d, fn)
}

// at schedules a pre-bound payload event; the hot-path twin of Schedule.
func (e *Engine) at(when Cycles, kind evKind, target any, aux int32, arg uint64) {
	e.checkPast(when)
	e.seq++
	e.push(event{when: when, seq: e.seq, kind: kind, target: target, aux: aux, arg: arg})
}

func (e *Engine) checkPast(when Cycles) {
	if when < e.now {
		panic(fmt.Sprintf(
			"sim: scheduling into the past: when=%d now=%d (%d cycles behind, %d events pending)",
			when, e.now, e.now-when, e.Pending()))
	}
}

// push routes an event to the wheel (near horizon) or the heap (far).
func (e *Engine) push(ev event) {
	if ev.when-e.now < wheelSlots {
		slot := int(ev.when) & wheelMask
		e.wheel[slot] = append(e.wheel[slot], ev)
		e.occupied[slot>>6] |= 1 << uint(slot&63)
		e.wheelLen++
		return
	}
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
}

func evLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && evLess(&h[r], &h[l]) {
			m = r
		}
		if !evLess(&h[m], &h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (e *Engine) heapPop() event {
	h := e.heap
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release target/fn references
	e.heap = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return ev
}

// wheelNextWhen returns the earliest wheel-resident cycle, scanning the
// occupancy bitmap forward from now (wrapping once around the horizon).
func (e *Engine) wheelNextWhen() (Cycles, bool) {
	if e.wheelLen == 0 {
		return 0, false
	}
	start := int(e.now) & wheelMask
	wi := start >> 6
	mask := ^uint64(0) << uint(start&63)
	for i := 0; i <= wheelWords; i++ {
		if w := e.occupied[wi] & mask; w != 0 {
			slot := wi<<6 + bits.TrailingZeros64(w)
			return e.wheel[slot][0].when, true
		}
		mask = ^uint64(0)
		wi++
		if wi == wheelWords {
			wi = 0
		}
	}
	return 0, false
}

// nextWhen returns the earliest scheduled cycle across wheel and heap.
func (e *Engine) nextWhen() (Cycles, bool) {
	when := ^Cycles(0)
	ok := false
	if len(e.heap) > 0 {
		when, ok = e.heap[0].when, true
	}
	if w, wok := e.wheelNextWhen(); wok && w < when {
		when, ok = w, true
	}
	return when, ok
}

// runAt executes every event scheduled for exactly cycle `when`, merging
// the wheel bucket and same-cycle heap entries in seq order so determinism
// matches a single global priority queue.  Events scheduled for `when`
// during execution (same-cycle cascades) are appended to the bucket and
// drained in the same pass.
func (e *Engine) runAt(when Cycles) {
	slot := int(when) & wheelMask
	i := 0
	for {
		haveW := i < len(e.wheel[slot])
		haveH := len(e.heap) > 0 && e.heap[0].when == when
		var ev event
		switch {
		case haveW && (!haveH || e.wheel[slot][i].seq < e.heap[0].seq):
			ev = e.wheel[slot][i]
			i++
		case haveH:
			ev = e.heapPop()
		default:
			if i > 0 {
				b := e.wheel[slot]
				clear(b) // release target/fn references
				e.wheel[slot] = b[:0]
				e.occupied[slot>>6] &^= 1 << uint(slot&63)
				e.wheelLen -= i
			}
			return
		}
		e.dispatch(&ev, when)
	}
}

// Step executes the earliest event, returning false when none remain.
func (e *Engine) Step() bool {
	when, ok := e.nextWhen()
	if !ok {
		return false
	}
	e.now = when
	slot := int(when) & wheelMask
	haveW := len(e.wheel[slot]) > 0
	haveH := len(e.heap) > 0 && e.heap[0].when == when
	var ev event
	if haveW && (!haveH || e.wheel[slot][0].seq < e.heap[0].seq) {
		b := e.wheel[slot]
		ev = b[0]
		n := copy(b, b[1:])
		b[n] = event{}
		e.wheel[slot] = b[:n]
		if n == 0 {
			e.occupied[slot>>6] &^= 1 << uint(slot&63)
		}
		e.wheelLen--
	} else {
		ev = e.heapPop()
	}
	e.dispatch(&ev, when)
	return true
}

// RunUntil executes events up to and including cycle t, then advances the
// clock to t.  Events scheduled during execution are honored if they fall
// within the horizon.
func (e *Engine) RunUntil(t Cycles) {
	for {
		when, ok := e.nextWhen()
		if !ok || when > t {
			break
		}
		e.now = when
		e.runAt(when)
	}
	if t > e.now {
		e.now = t
	}
}

// packClassLoc folds a request class and serve location into an event aux.
func packClassLoc(class ReqClass, loc ServeLoc) int32 {
	return int32(class)<<8 | int32(loc)
}

func unpackClassLoc(aux int32) (ReqClass, ServeLoc) {
	return ReqClass(aux >> 8), ServeLoc(aux & 0xff)
}

// dispatch runs one event.  The payload kinds inline the bodies that were
// per-event closures before the allocation-free rewrite; evFunc remains
// the general path.
func (e *Engine) dispatch(ev *event, now Cycles) {
	switch ev.kind {
	case evFunc:
		ev.fn(now)
	case evCoreStep:
		e.mach.coreStep(ev.target.(*Core), now)
	case evOcc:
		ev.target.(*pmu.OccTracker).Update(now, int(ev.aux))
	case evBusyBegin:
		ev.target.(*pmu.BusyTracker).Begin(now)
	case evBusyEnd:
		ev.target.(*pmu.BusyTracker).End(now)
	case evPFDone:
		ev.target.(*Core).pfInFlight--
	case evBankInc:
		ev.target.(*pmu.Bank).Inc(pmu.Event(ev.aux))
	case evBankAdd:
		ev.target.(*pmu.Bank).Add(pmu.Event(ev.aux), ev.arg)
	case evServe:
		class, loc := unpackClassLoc(ev.aux)
		ev.target.(*Core).serveRetired(class, loc)
	case evTOREnter:
		class, loc := unpackClassLoc(ev.aux)
		ev.target.(*chaSlice).torEnter(now, class, loc)
	case evTORLeave:
		class, loc := unpackClassLoc(ev.aux)
		ev.target.(*chaSlice).torLeave(now, class, loc)
	case evWBInsert:
		s := ev.target.(*chaSlice)
		s.bank.Inc(pmu.TORInsertsIAWB[int(ev.aux)])
		s.bank.Inc(pmu.TORInsertsIA[pmu.IAAll])
	case evIMCReadAdmit:
		ch := ev.target.(*imcChannel)
		ch.bank.Inc(pmu.RPQInserts)
		ch.bank.Inc(pmu.CASCountRd)
		ch.bank.Inc(pmu.CASCountAll)
		ch.rpqOcc.Update(now, +1)
	case evIMCWriteAdmit:
		ch := ev.target.(*imcChannel)
		ch.bank.Inc(pmu.WPQInserts)
		ch.bank.Inc(pmu.CASCountWr)
		ch.bank.Inc(pmu.CASCountAll)
		ch.wpqOcc.Update(now, +1)
	case evCXLArrive:
		p := ev.target.(*cxlPort)
		p.m2pBank.Inc(pmu.M2PRxInserts)
		p.ingress.Update(now, +1)
	case evCXLReadDev:
		p := ev.target.(*cxlPort)
		p.devBank.Inc(pmu.CXLRxPackBufInsertsReq)
		p.packReqOcc.Update(now, +1)
		p.qos.Update(now, +1)
	case evCXLReadRPQ:
		p := ev.target.(*cxlPort)
		p.packReqOcc.Update(now, -1)
		p.devBank.Inc(pmu.CXLDevRPQInserts)
		p.devRPQOcc.Update(now, +1)
	case evCXLReadData:
		p := ev.target.(*cxlPort)
		p.devRPQOcc.Update(now, -1)
		p.qos.Update(now, -1)
		p.devBank.Inc(pmu.CXLDevCASRd)
		p.devBank.Inc(pmu.CXLTxPackBufInsertsData)
	case evCXLWriteDev:
		p := ev.target.(*cxlPort)
		p.devBank.Inc(pmu.CXLRxPackBufInsertsData)
		p.packDataOcc.Update(now, +1)
		p.qos.Update(now, +1)
	case evCXLWriteWPQ:
		p := ev.target.(*cxlPort)
		p.packDataOcc.Update(now, -1)
		p.devBank.Inc(pmu.CXLDevWPQInserts)
		p.devWPQOcc.Update(now, +1)
	case evCXLWriteDone:
		p := ev.target.(*cxlPort)
		p.devWPQOcc.Update(now, -1)
		p.qos.Update(now, -1)
		p.devBank.Inc(pmu.CXLDevCASWr)
		p.devBank.Inc(pmu.CXLTxPackBufInsertsReq)
	case evCXLCRC:
		p := ev.target.(*cxlPort)
		p.devBank.Inc(pmu.CXLLinkCRCErrors)
		p.devBank.Inc(pmu.CXLLinkRetries)
		p.devBank.Add(pmu.CXLLinkReplayBytes, ev.arg)
	}
}

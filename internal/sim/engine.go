// Package sim is a discrete-event simulator of a CXL-equipped server: cores
// (with store buffer, line-fill buffer, and hardware prefetchers), a
// three-level cache hierarchy with a MESIF-like directory, CHA/LLC slices
// with a Table-of-Requests, the mesh, integrated memory controllers, the
// M2PCIe/FlexBus I/O path, and CXL Type-3 devices with ingress/egress
// packing buffers and a device-side memory controller.
//
// Every architectural module owns a pmu.Bank and increments the counters of
// the paper's Tables 1-4 as requests traverse it, so the profiler layers
// above observe the machine exactly the way PathFinder observes real
// hardware: through PMU reads only.
//
// Timing uses a functional-first, timing-annotated discrete-event model:
// cache state changes happen in issue order while queueing and bandwidth
// contention are modeled with per-resource next-free clocks and occupancy
// integrators, which yields cycle-granular counter semantics without
// per-cycle ticking.
package sim

import (
	"fmt"
	"math/bits"

	"pathfinder/internal/obs"
	"pathfinder/internal/pmu"
)

// Cycles is a point in simulated time, in core clock cycles.
type Cycles = uint64

// evKind selects the pre-bound payload an event dispatches to.  The hot
// schedule sites (core stepping, queue-occupancy edges, IMC and CXL
// completions) use dedicated kinds so scheduling allocates nothing; evFunc
// is the general closure fallback for cold paths and tests.
type evKind uint8

const (
	evFunc      evKind = iota // fn(now)
	evCoreStep                // target *Core: execute the next workload op
	evOcc                     // target *pmu.OccTracker: Update(now, aux)
	evOccPulse                // target *pmu.OccTracker: Update(now, +1) + Release(arg)
	evLFBDemand               // target *Core: lfbOcc + missL1Busy pulses, release at arg
	evORODemand               // target *Core: oroData + oroDemand pulses, release at arg
	evBusyBegin               // target *pmu.BusyTracker
	evBusyEnd
	evBusyPulse // target *pmu.BusyTracker: Begin(now) + Release(arg)
	evBankInc   // target *pmu.Bank: Inc(Event(aux))
	evBankAdd   // target *pmu.Bank: Add(Event(aux), arg)
	evServe     // target *Core: retired-load/OCR serve counters, aux=class|loc
	evTOREnter
	evTORLeave // target *chaSlice: TOR insert/occupancy edges, aux=class|loc
	evTORPulse // target *chaSlice: TOR enter at now, leave queued at arg
	evWBInsert // target *chaSlice: writeback TOR inserts, aux=transition
	evIMCReadAdmit
	evIMCWriteAdmit // target *imcChannel: RPQ/WPQ insert + CAS counters
	evCXLArrive     // target *cxlPort: M2PCIe ingress insert
	evCXLReadDev
	evCXLReadRPQ
	evCXLReadData
	evCXLWriteDev
	evCXLWriteWPQ
	evCXLWriteDone // target *cxlPort: device-side read/write stages
	evCXLCRC       // target *cxlPort: link CRC error + replay, arg=bytes
)

// event is a scheduled action: either a pre-bound payload (kind != evFunc)
// or a callback.  target always holds a pointer, so boxing it in the
// interface never allocates.
type event struct {
	when   Cycles
	seq    uint64 // tie-breaker for deterministic ordering
	arg    uint64
	target any
	fn     func(now Cycles)
	aux    int32
	kind   evKind
}

// obsEvent is one deferred observer action: a pre-bound PMU payload (a
// counter increment or an occupancy/busy-tracker edge) stamped with the
// cycle it describes.  Observer entries are pure functions of PMU state —
// nothing in the simulation reads the counters they touch between
// observation points — so they can be applied lazily in bulk instead of
// paying an event-engine round-trip each.
type obsEvent struct {
	target any
	when   Cycles
	arg    uint64
	aux    int32
	kind   evKind
}

// obsFarEvent wraps a beyond-the-turn observer entry with its schedule
// order, the tie-break among same-cycle far entries in the heap.
type obsFarEvent struct {
	ev  obsEvent
	seq uint64
}

// The near-horizon timing wheel: one slot per cycle for the next wheelSlots
// cycles.  The dominant event delays (cache latencies, queue residencies,
// DRAM/CXL media trips) are well under this horizon, so most events take
// the O(1) wheel path; only far-future events pay the O(log n) heap.
const (
	wheelBits  = 12
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64
)

// The observer lane gets a much wider wheel than the event engine.  Event
// delays are bounded by device latencies, but observer completion entries
// ride the *backlogged* service times of saturated CXL/IMC queues, which
// run tens of thousands of cycles ahead of the clock under backpressure.
// Keeping those on the O(1) wheel path instead of the O(log n) far heap is
// worth the extra slot headers (~1.5 MiB per engine).
const (
	obsWheelBits  = 16
	obsWheelSlots = 1 << obsWheelBits
	obsWheelMask  = obsWheelSlots - 1
	obsWheelWords = obsWheelSlots / 64
)

// Engine is the discrete-event core: a timing wheel for near events and a
// flat binary min-heap (ordered by when, then seq) for far ones.
type Engine struct {
	now  Cycles
	seq  uint64
	mach *Machine // payload dispatch context (nil for bare engines)

	heap []event // far-horizon events, (when, seq)-ordered binary heap

	// wheel buckets normally hold one `when` each; while the run-ahead
	// fast path advances the clock mid-drain, a bucket may additionally
	// accumulate entries for later wheel rotations (when-nondecreasing in
	// append order, so the head is always the bucket minimum).
	wheel    [][]event
	occupied [wheelWords]uint64
	wheelLen int

	// Run-ahead state.  horizon is the active RunUntil bound; runAhead
	// gates the core-stepping fast path (tests force it off to prove PMU
	// equivalence).  drainSlot/drainConsumed expose how far runAt has
	// consumed the bucket it is draining, so quietUntil can tell
	// already-dispatched prefix entries from live ones mid-dispatch.
	horizon       Cycles
	runAhead      bool
	laneGuard     bool // set while parallel lanes run; engine access panics
	drainSlot     int
	drainConsumed int

	// Fast-path observability: ops executed inline by the run-ahead loop
	// versus events dispatched through the engine (the
	// pf_engine_inline_steps / pf_engine_dispatched_events counter pair).
	inlineSteps uint64
	dispatched  uint64

	// The observer lane: PMU bookkeeping (bank increments, occupancy and
	// busy edges) scheduled for a future cycle but carrying no simulation
	// side effects.  These entries never enter the event wheel or heap,
	// so they neither wake the engine nor block the run-ahead fast path;
	// they are applied in exact (when, schedule-order) order by drainObs
	// at every observation point (RunUntil exit, Step exit, Sync, DevLoad,
	// before any evFunc closure, and at every clock advance).  obsLast is
	// the drain cursor: every entry with when <= obsLast has been applied.
	//
	// Because the lane is drained whenever the clock advances, every
	// pending wheel entry's when lies in (obsLast, obsLast+obsWheelSlots):
	// one wheel turn.  A slot therefore holds entries of exactly one
	// cycle (appended in schedule order), and walking occupied slots
	// forward from the cursor visits entries in global cycle order — no
	// sorting anywhere on the hot path.  Entries scheduled beyond the
	// turn go to obsFar, a (when, seq) min-heap; a far entry's seq is
	// always below any wheel entry's for the same cycle (near-eligibility
	// only grows as the clock advances), so draining the far heap up to
	// each slot's cycle before the slot preserves schedule order exactly.
	obsWheel [][]obsEvent
	obsOcc   [obsWheelWords]uint64
	obsLen   int // wheel-resident entries
	obsFar   []obsFarEvent
	obsSeq   uint64
	obsLast  Cycles
}

// NewEngine returns an engine at cycle zero.
func NewEngine() *Engine {
	e := &Engine{
		wheel:     make([][]event, wheelSlots),
		obsWheel:  make([][]obsEvent, obsWheelSlots),
		runAhead:  true,
		drainSlot: -1,
	}
	// Seed every observer slot with capacity 2 carved from one flat arena.
	// Lazy growth would spread ~4 allocations per touched slot over the
	// first wheel turn — construction-time cost leaking into measured
	// steady state; only slots that ever exceed two same-cycle entries
	// fall back to the ordinary append-grow path.
	arena := make([]obsEvent, 2*obsWheelSlots)
	for i := range e.obsWheel {
		e.obsWheel[i] = arena[2*i : 2*i : 2*i+2]
	}
	return e
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycles { return e.now }

// trace returns the machine's current traced request, or nil when no
// request is being traced or its memory-device stages are already sealed.
// Device modules (imcChannel, cxlPort) record through this so prefetches
// and victim writebacks issued while a record is current cannot pollute
// the demand request's waterfall.
func (e *Engine) trace() *obs.ReqRec {
	if e.mach == nil {
		return nil
	}
	r := e.mach.cur
	if r == nil || r.MemSealed() {
		return nil
	}
	return r
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) + e.wheelLen }

// Schedule runs fn at cycle when.  Scheduling in the past is a simulator
// bug and panics.
func (e *Engine) Schedule(when Cycles, fn func(now Cycles)) {
	e.checkPast(when)
	e.seq++
	e.push(event{when: when, seq: e.seq, kind: evFunc, fn: fn})
}

// After runs fn d cycles from now.
func (e *Engine) After(d Cycles, fn func(now Cycles)) {
	e.Schedule(e.now+d, fn)
}

// at schedules a pre-bound payload event; the hot-path twin of Schedule.
func (e *Engine) at(when Cycles, kind evKind, target any, aux int32, arg uint64) {
	e.checkPast(when)
	e.seq++
	e.push(event{when: when, seq: e.seq, kind: kind, target: target, aux: aux, arg: arg})
}

// obsAt schedules a deferred observer action for cycle `when`.  Unlike at,
// the entry bypasses the event engine entirely: it is buffered on the
// observer wheel and applied by drainObs at the next observation point at
// or after `when`.  Entries at or behind the drain cursor apply
// immediately — they are the newest bookkeeping for that cycle, so
// in-order application is preserved.
func (e *Engine) obsAt(when Cycles, kind evKind, target any, aux int32, arg uint64) {
	e.checkPast(when)
	if when <= e.obsLast {
		ev := obsEvent{target: target, when: when, arg: arg, aux: aux, kind: kind}
		e.applyObs(&ev)
		return
	}
	if when-e.now < obsWheelSlots {
		slot := int(when) & obsWheelMask
		e.obsWheel[slot] = append(e.obsWheel[slot],
			obsEvent{target: target, when: when, arg: arg, aux: aux, kind: kind})
		e.obsOcc[slot>>6] |= 1 << uint(slot&63)
		e.obsLen++
		return
	}
	e.obsSeq++
	e.obsFar = append(e.obsFar, obsFarEvent{
		ev:  obsEvent{target: target, when: when, arg: arg, aux: aux, kind: kind},
		seq: e.obsSeq,
	})
	e.obsSiftUp(len(e.obsFar) - 1)
}

// drainObs applies every buffered observer entry with when <= ts, in
// nondecreasing when order (same-cycle entries in schedule order), and
// advances the drain cursor to ts.  Because the cursor rides the clock,
// the occupied-slot window it scans is as narrow as the advance itself —
// one word of the occupancy bitmap for a typical inline step.
func (e *Engine) drainObs(ts Cycles) {
	if ts <= e.obsLast {
		return
	}
	if e.obsLen == 0 {
		if len(e.obsFar) > 0 {
			e.drainFarUpTo(ts)
		}
		e.obsLast = ts
		return
	}
	// Every pending wheel when is in (obsLast, obsLast+obsWheelSlots); cap
	// the scan at one full turn — beyond it there is nothing to find.
	endC := ts
	if m := e.obsLast + obsWheelSlots - 1; endC > m {
		endC = m
	}
	start := int(e.obsLast+1) & obsWheelMask
	n := int(endC - e.obsLast) // slots in the window
	wi := start >> 6
	first := start & 63
	for n > 0 {
		span := 64 - first
		mask := ^uint64(0) << uint(first)
		if n < span {
			mask &= ^uint64(0) >> uint(64-(first+n))
			span = n
		}
		w := e.obsOcc[wi] & mask
		for w != 0 {
			slot := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			b := e.obsWheel[slot]
			if len(e.obsFar) > 0 {
				e.drainFarUpTo(b[0].when)
			}
			for i := range b {
				e.applyObs(&b[i])
			}
			e.obsLen -= len(b)
			clear(b) // release target references
			e.obsWheel[slot] = b[:0]
			e.obsOcc[slot>>6] &^= 1 << uint(slot&63)
		}
		n -= span
		first = 0
		wi++
		if wi == obsWheelWords {
			wi = 0
		}
	}
	if len(e.obsFar) > 0 {
		e.drainFarUpTo(ts)
	}
	e.obsLast = ts
}

// drainFarUpTo applies far-heap entries due at or before w.
func (e *Engine) drainFarUpTo(w Cycles) {
	for len(e.obsFar) > 0 && e.obsFar[0].ev.when <= w {
		ev := e.obsFarPop()
		e.applyObs(&ev.ev)
	}
}

func obsLess(a, b *obsFarEvent) bool {
	if a.ev.when != b.ev.when {
		return a.ev.when < b.ev.when
	}
	return a.seq < b.seq
}

func (e *Engine) obsSiftUp(i int) {
	h := e.obsFar
	for i > 0 {
		p := (i - 1) / 2
		if !obsLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (e *Engine) obsFarPop() obsFarEvent {
	h := e.obsFar
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = obsFarEvent{} // release target reference
	e.obsFar = h[:n]
	if n > 1 {
		h = e.obsFar
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && obsLess(&h[r], &h[l]) {
				m = r
			}
			if !obsLess(&h[m], &h[i]) {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	return ev
}

func (e *Engine) checkPast(when Cycles) {
	if e.laneGuard {
		// Lanes execute only core-private work; anything that reaches the
		// engine from inside an open parallel window is an op the window
		// classifier wrongly treated as private.
		panic("sim: engine touched from a parallel lane (op misclassified as core-private)")
	}
	if when < e.now {
		panic(fmt.Sprintf(
			"sim: scheduling into the past: when=%d now=%d (%d cycles behind, %d events pending)",
			when, e.now, e.now-when, e.Pending()))
	}
}

// push routes an event to the wheel (near horizon) or the heap (far).
func (e *Engine) push(ev event) {
	if ev.when-e.now < wheelSlots {
		slot := int(ev.when) & wheelMask
		e.wheel[slot] = append(e.wheel[slot], ev)
		e.occupied[slot>>6] |= 1 << uint(slot&63)
		e.wheelLen++
		return
	}
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
}

func evLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && evLess(&h[r], &h[l]) {
			m = r
		}
		if !evLess(&h[m], &h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (e *Engine) heapPop() event {
	h := e.heap
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release target/fn references
	e.heap = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return ev
}

// wheelNext returns the earliest wheel-resident event, scanning the
// occupancy bitmap forward from now (wrapping once around the horizon).
// Bucket entries are when-nondecreasing and same-cycle entries append in
// seq order, so the head of the first occupied bucket is the wheel minimum.
func (e *Engine) wheelNext() (*event, bool) {
	if e.wheelLen == 0 {
		return nil, false
	}
	start := int(e.now) & wheelMask
	wi := start >> 6
	mask := ^uint64(0) << uint(start&63)
	for i := 0; i <= wheelWords; i++ {
		if w := e.occupied[wi] & mask; w != 0 {
			slot := wi<<6 + bits.TrailingZeros64(w)
			return &e.wheel[slot][0], true
		}
		mask = ^uint64(0)
		wi++
		if wi == wheelWords {
			wi = 0
		}
	}
	return nil, false
}

// wheelNextWhen returns the earliest wheel-resident cycle.
func (e *Engine) wheelNextWhen() (Cycles, bool) {
	if ev, ok := e.wheelNext(); ok {
		return ev.when, true
	}
	return 0, false
}

// nextWhen returns the earliest scheduled cycle across wheel and heap.
func (e *Engine) nextWhen() (Cycles, bool) {
	when := ^Cycles(0)
	ok := false
	if len(e.heap) > 0 {
		when, ok = e.heap[0].when, true
	}
	if w, wok := e.wheelNextWhen(); wok && w < when {
		when, ok = w, true
	}
	return when, ok
}

// peekNext returns the (when, seq) of the earliest scheduled event across
// wheel and heap without removing it.  The windowed scheduler compares it
// against pending core steps to reproduce the engine's exact dispatch
// order, including same-cycle seq interleavings.
func (e *Engine) peekNext() (when Cycles, seq uint64, ok bool) {
	if len(e.heap) > 0 {
		when, seq, ok = e.heap[0].when, e.heap[0].seq, true
	}
	if ev, wok := e.wheelNext(); wok && (!ok || ev.when < when || (ev.when == when && ev.seq < seq)) {
		when, seq, ok = ev.when, ev.seq, true
	}
	return when, seq, ok
}

// runAt executes every event scheduled for exactly cycle `when`, merging
// the wheel bucket and same-cycle heap entries in seq order so determinism
// matches a single global priority queue.  Events scheduled for `when`
// during execution (same-cycle cascades) are appended to the bucket and
// drained in the same pass.
//
// The drain exposes its progress through drainSlot/drainConsumed so the
// core-stepping fast path (quietUntil) can see through the
// already-dispatched prefix of the bucket.  A dispatched handler may
// advance the clock via run-ahead; the drain then stops — any entries left
// in the bucket were pushed for later wheel rotations while the clock
// moved and stay queued.  The bucket's occupancy bit is dropped the moment
// its last entry is taken (push re-sets it on a same-cycle cascade), so
// the bitmap never shows a consumed-only bucket as live.
func (e *Engine) runAt(when Cycles) {
	slot := int(when) & wheelMask
	e.drainSlot, e.drainConsumed = slot, 0
	i := 0
	for e.now == when {
		b := e.wheel[slot]
		haveW := i < len(b) && b[i].when == when
		haveH := len(e.heap) > 0 && e.heap[0].when == when
		if haveW && (!haveH || b[i].seq < e.heap[0].seq) {
			ev := b[i]
			i++
			e.drainConsumed = i
			if i == len(b) {
				e.occupied[slot>>6] &^= 1 << uint(slot&63)
			}
			e.dispatch(&ev, when)
		} else if haveH {
			ev := e.heapPop()
			e.dispatch(&ev, when)
		} else {
			break
		}
	}
	if i > 0 {
		// Release the consumed prefix.  Entries past it belong to future
		// cycles (wheel-wrap collisions pushed while run-ahead advanced
		// the clock past `when`) and keep the slot occupied — push set
		// the bit when it appended them.
		b := e.wheel[slot]
		rem := copy(b, b[i:])
		clear(b[rem:]) // release target/fn references
		e.wheel[slot] = b[:rem]
		e.wheelLen -= i
	}
	e.drainSlot, e.drainConsumed = -1, 0
}

// Step executes the earliest event, returning false when none remain.
func (e *Engine) Step() bool {
	when, ok := e.nextWhen()
	if !ok {
		return false
	}
	e.now = when
	// Settle observer work due by the new cycle before dispatching: the
	// cursor must ride the clock so pending entries stay within one
	// wheel turn of it (the single-cycle-per-slot invariant).
	e.drainObs(when)
	slot := int(when) & wheelMask
	haveW := len(e.wheel[slot]) > 0 && e.wheel[slot][0].when == when
	haveH := len(e.heap) > 0 && e.heap[0].when == when
	var ev event
	if haveW && (!haveH || e.wheel[slot][0].seq < e.heap[0].seq) {
		b := e.wheel[slot]
		ev = b[0]
		n := copy(b, b[1:])
		b[n] = event{}
		e.wheel[slot] = b[:n]
		if n == 0 {
			e.occupied[slot>>6] &^= 1 << uint(slot&63)
		}
		e.wheelLen--
	} else {
		ev = e.heapPop()
	}
	e.dispatch(&ev, when)
	// Settle deferred observer work so state between single steps matches
	// the engine that ran every observer as an event.
	e.drainObs(e.now)
	return true
}

// RunUntil executes events up to and including cycle t, then advances the
// clock to t.  Events scheduled during execution are honored if they fall
// within the horizon.  While the loop runs, t is published as the engine's
// run-ahead horizon: the core-stepping fast path may advance the clock
// inline up to t, but never beyond it.
func (e *Engine) RunUntil(t Cycles) {
	e.horizon = t
	for {
		when, ok := e.nextWhen()
		if !ok || when > t {
			break
		}
		e.now = when
		e.drainObs(when)
		e.runAt(when)
	}
	if t > e.now {
		e.now = t
	}
	// Leave no stale future horizon behind: a later Step must execute
	// exactly one event, never run ahead on the strength of an old bound.
	e.horizon = e.now
	// Apply all deferred observer bookkeeping the run produced, so callers
	// observe counters exactly as the event-per-observer engine left them.
	e.drainObs(e.now)
}

// quietUntil reports whether no live event — wheel or heap, beyond the
// already-dispatched prefix of the bucket being drained — is scheduled at
// or before cycle t.  This is the run-ahead safety check: when it holds,
// a core step at t would have been the globally next event anyway, so
// executing it inline (advancing the clock directly) preserves the event
// interleaving, and with it every PMU counter, exactly.
func (e *Engine) quietUntil(t Cycles) bool {
	if len(e.heap) > 0 && e.heap[0].when <= t {
		return false
	}
	if e.wheelLen == e.drainConsumed {
		return true // every wheel entry is the current drain's consumed prefix
	}
	// Live wheel entries all land within [now, now+wheelSlots) and the
	// occupancy bitmap carries no stale bits (runAt drops a bucket's bit
	// with its last entry), so any occupied slot in the circular window
	// [now, t] holds an event at or before t.
	if t-e.now >= wheelSlots-1 {
		return false
	}
	start := int(e.now) & wheelMask
	n := int(t-e.now) + 1 // slots to inspect
	wi := start >> 6
	first := start & 63
	for n > 0 {
		span := 64 - first
		mask := ^uint64(0) << uint(first)
		if n < span {
			mask &= ^uint64(0) >> uint(64-(first+n))
			span = n
		}
		if e.occupied[wi]&mask != 0 {
			return false
		}
		n -= span
		first = 0
		wi++
		if wi == wheelWords {
			wi = 0
		}
	}
	return true
}

// packClassLoc folds a request class and serve location into an event aux.
func packClassLoc(class ReqClass, loc ServeLoc) int32 {
	return int32(class)<<8 | int32(loc)
}

func unpackClassLoc(aux int32) (ReqClass, ServeLoc) {
	return ReqClass(aux >> 8), ServeLoc(aux & 0xff)
}

// dispatch runs one event.  The payload kinds inline the bodies that were
// per-event closures before the allocation-free rewrite; evFunc remains
// the general path.
func (e *Engine) dispatch(ev *event, now Cycles) {
	e.dispatched++
	switch ev.kind {
	case evFunc:
		// Closures observe simulator state (counters, DevLoad, fault
		// plans), so buffered observer work up to now must be visible —
		// exactly as it was when every observer ran as an engine event.
		e.drainObs(now)
		ev.fn(now)
	case evCoreStep:
		e.mach.coreStep(ev.target.(*Core), now)
	default:
		// Observer kinds scheduled as real events (tests, cold paths)
		// share the deferred-application payload code.
		e.applyObs(&obsEvent{when: now, arg: ev.arg, target: ev.target, aux: ev.aux, kind: ev.kind})
	}
}

// applyObs performs one observer action at its stamped cycle.  Payloads
// are pure PMU bookkeeping: bank counter increments and occupancy/busy
// tracker edges.  Entries for equal cycles commute, so drain order only
// has to be correct across distinct cycles.
func (e *Engine) applyObs(ev *obsEvent) {
	now := ev.when
	switch ev.kind {
	case evOcc:
		ev.target.(*pmu.OccTracker).Update(now, int(ev.aux))
	case evOccPulse:
		tr := ev.target.(*pmu.OccTracker)
		tr.Update(now, +1)
		tr.Release(ev.arg)
	case evLFBDemand:
		c := ev.target.(*Core)
		c.lfbOcc.Update(now, +1)
		c.lfbOcc.Release(ev.arg)
		c.missL1Busy.Begin(now)
		c.missL1Busy.Release(ev.arg)
	case evORODemand:
		c := ev.target.(*Core)
		c.oroData.Update(now, +1)
		c.oroData.Release(ev.arg)
		c.oroDemand.Update(now, +1)
		c.oroDemand.Release(ev.arg)
	case evBusyPulse:
		tr := ev.target.(*pmu.BusyTracker)
		tr.Begin(now)
		tr.Release(ev.arg)
	case evBusyBegin:
		ev.target.(*pmu.BusyTracker).Begin(now)
	case evBusyEnd:
		ev.target.(*pmu.BusyTracker).End(now)
	case evBankInc:
		ev.target.(*pmu.Bank).Inc(pmu.Event(ev.aux))
	case evBankAdd:
		ev.target.(*pmu.Bank).Add(pmu.Event(ev.aux), ev.arg)
	case evServe:
		class, loc := unpackClassLoc(ev.aux)
		ev.target.(*Core).serveRetired(class, loc)
	case evTOREnter:
		class, loc := unpackClassLoc(ev.aux)
		ev.target.(*chaSlice).torEnter(now, class, loc)
	case evTORLeave:
		class, loc := unpackClassLoc(ev.aux)
		ev.target.(*chaSlice).torLeave(now, class, loc)
	case evTORPulse:
		class, loc := unpackClassLoc(ev.aux)
		ev.target.(*chaSlice).torPulse(now, Cycles(ev.arg), class, loc)
	case evWBInsert:
		s := ev.target.(*chaSlice)
		s.bank.Inc(pmu.TORInsertsIAWB[int(ev.aux)])
		s.bank.Inc(pmu.TORInsertsIA[pmu.IAAll])
	case evIMCReadAdmit:
		ch := ev.target.(*imcChannel)
		ch.bank.Inc(pmu.RPQInserts)
		ch.bank.Inc(pmu.CASCountRd)
		ch.bank.Inc(pmu.CASCountAll)
		ch.rpqOcc.Update(now, +1)
		ch.rpqOcc.Release(ev.arg)
	case evIMCWriteAdmit:
		ch := ev.target.(*imcChannel)
		ch.bank.Inc(pmu.WPQInserts)
		ch.bank.Inc(pmu.CASCountWr)
		ch.bank.Inc(pmu.CASCountAll)
		ch.wpqOcc.Update(now, +1)
		ch.wpqOcc.Release(ev.arg)
	case evCXLArrive:
		p := ev.target.(*cxlPort)
		p.m2pBank.Inc(pmu.M2PRxInserts)
		p.ingress.Update(now, +1)
	case evCXLReadDev:
		p := ev.target.(*cxlPort)
		p.devBank.Inc(pmu.CXLRxPackBufInsertsReq)
		p.packReqOcc.Update(now, +1)
		p.qos.Update(now, +1)
	case evCXLReadRPQ:
		p := ev.target.(*cxlPort)
		p.packReqOcc.Update(now, -1)
		p.devBank.Inc(pmu.CXLDevRPQInserts)
		p.devRPQOcc.Update(now, +1)
	case evCXLReadData:
		p := ev.target.(*cxlPort)
		p.devRPQOcc.Update(now, -1)
		p.qos.Update(now, -1)
		p.devBank.Inc(pmu.CXLDevCASRd)
		p.devBank.Inc(pmu.CXLTxPackBufInsertsData)
	case evCXLWriteDev:
		p := ev.target.(*cxlPort)
		p.devBank.Inc(pmu.CXLRxPackBufInsertsData)
		p.packDataOcc.Update(now, +1)
		p.qos.Update(now, +1)
	case evCXLWriteWPQ:
		p := ev.target.(*cxlPort)
		p.packDataOcc.Update(now, -1)
		p.devBank.Inc(pmu.CXLDevWPQInserts)
		p.devWPQOcc.Update(now, +1)
	case evCXLWriteDone:
		p := ev.target.(*cxlPort)
		p.devWPQOcc.Update(now, -1)
		p.qos.Update(now, -1)
		p.devBank.Inc(pmu.CXLDevCASWr)
		p.devBank.Inc(pmu.CXLTxPackBufInsertsReq)
	case evCXLCRC:
		p := ev.target.(*cxlPort)
		p.devBank.Inc(pmu.CXLLinkCRCErrors)
		p.devBank.Inc(pmu.CXLLinkRetries)
		p.devBank.Add(pmu.CXLLinkReplayBytes, ev.arg)
	}
}

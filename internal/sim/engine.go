// Package sim is a discrete-event simulator of a CXL-equipped server: cores
// (with store buffer, line-fill buffer, and hardware prefetchers), a
// three-level cache hierarchy with a MESIF-like directory, CHA/LLC slices
// with a Table-of-Requests, the mesh, integrated memory controllers, the
// M2PCIe/FlexBus I/O path, and CXL Type-3 devices with ingress/egress
// packing buffers and a device-side memory controller.
//
// Every architectural module owns a pmu.Bank and increments the counters of
// the paper's Tables 1-4 as requests traverse it, so the profiler layers
// above observe the machine exactly the way PathFinder observes real
// hardware: through PMU reads only.
//
// Timing uses a functional-first, timing-annotated discrete-event model:
// cache state changes happen in issue order while queueing and bandwidth
// contention are modeled with per-resource next-free clocks and occupancy
// integrators, which yields cycle-granular counter semantics without
// per-cycle ticking.
package sim

import "container/heap"

// Cycles is a point in simulated time, in core clock cycles.
type Cycles = uint64

// event is a scheduled callback.
type event struct {
	when Cycles
	seq  uint64 // tie-breaker for deterministic ordering
	fn   func(now Cycles)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event core: a time-ordered heap of callbacks.
type Engine struct {
	h   eventHeap
	now Cycles
	seq uint64
}

// NewEngine returns an engine at cycle zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycles { return e.now }

// Schedule runs fn at cycle when.  Scheduling in the past is a simulator
// bug and panics.
func (e *Engine) Schedule(when Cycles, fn func(now Cycles)) {
	if when < e.now {
		panic("sim: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.h, event{when: when, seq: e.seq, fn: fn})
}

// After runs fn d cycles from now.
func (e *Engine) After(d Cycles, fn func(now Cycles)) {
	e.Schedule(e.now+d, fn)
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.h) }

// Step executes the earliest event, returning false when none remain.
func (e *Engine) Step() bool {
	if len(e.h) == 0 {
		return false
	}
	ev := heap.Pop(&e.h).(event)
	e.now = ev.when
	ev.fn(e.now)
	return true
}

// RunUntil executes events up to and including cycle t, then advances the
// clock to t.  Events scheduled during execution are honored if they fall
// within the horizon.
func (e *Engine) RunUntil(t Cycles) {
	for len(e.h) > 0 && e.h[0].when <= t {
		ev := heap.Pop(&e.h).(event)
		e.now = ev.when
		ev.fn(e.now)
	}
	if t > e.now {
		e.now = t
	}
}
